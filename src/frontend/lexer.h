#ifndef PATHFINDER_FRONTEND_LEXER_H_
#define PATHFINDER_FRONTEND_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"

namespace pathfinder::frontend {

/// Token kinds. XQuery keywords are contextual, so the lexer emits them
/// as kName and the parser matches on the spelling.
enum class Tok : uint8_t {
  kEof,
  kName,    // NCName or prefix:NCName (text)
  kInt,     // ival
  kDbl,     // dval
  kStr,     // string literal, decoded (text)
  kDollar,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kColonEq,     // :=
  kColonColon,  // ::
  kSlash,
  kSlashSlash,
  kAt,
  kDot,
  kDotDot,
  kEq,
  kNe,  // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kLtLt,  // <<
  kGtGt,  // >>
  kPlus,
  kMinus,
  kStar,
  kPipe,
  kQuestion,
  kDirectElemStart,  // '<' immediately followed by a name char
  kDirectCloseStart, // '</'
};

const char* TokName(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // kName, kStr
  int64_t ival = 0;   // kInt
  double dval = 0;    // kDbl
  size_t begin = 0;   // byte offset of the token in the input
  size_t end = 0;     // one past the last byte
  int line = 1;
};

/// Pull lexer over the query text.
///
/// Besides normal token mode it exposes raw character access
/// (`RawPeek`/`RawGet`/`SeekTo`), which the parser uses to scan direct
/// XML constructors — those are whitespace- and brace-sensitive and
/// cannot be tokenized context-free.
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Current lookahead token.
  const Token& Cur() const { return cur_; }

  /// Advance to the next token. Returns lexing errors (bad string
  /// literal, stray character).
  Status Advance();

  /// Switch back to token mode at byte offset `pos` (used after raw
  /// scanning) and lex the token there.
  Status SeekTo(size_t pos);

  // Raw character access for the direct-constructor scanner.
  bool RawAtEnd(size_t pos) const { return pos >= input_.size(); }
  char RawPeek(size_t pos) const {
    return pos < input_.size() ? input_[pos] : '\0';
  }
  std::string_view RawSlice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }
  size_t InputSize() const { return input_.size(); }

  int line() const { return line_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XQuery line " + std::to_string(cur_.line) +
                              ": " + msg);
  }

 private:
  Status Lex();
  void SkipWsAndComments();

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
};

}  // namespace pathfinder::frontend

#endif  // PATHFINDER_FRONTEND_LEXER_H_

#include "bat/kernel.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "bat/item_ops.h"

namespace pathfinder::bat {

namespace {

// Morsel sizing for the operators that are NOT tuning-aware (gather,
// theta join, distinct/difference). Fixed constants — NEVER derived
// from the thread count — so chunk boundaries, and with them every
// chunk-indexed merge, are identical at every pool size (see
// ThreadPool's determinism contract). The tuning-aware kernels obey
// the same contract with KernelTuning values in place of constants:
// chunk boundaries depend on (n, grain) only.
constexpr size_t kMorselRows = 4096;
constexpr size_t kThetaPairsPerMorsel = size_t{1} << 16;
constexpr size_t kGroupAggParRows = 8192;

// Distinct/difference hash partitions (power of two). PartitionOf
// remixes the key hash so that e.g. libstdc++'s identity
// std::hash<int64_t> still spreads consecutive keys across partitions.
constexpr size_t kJoinPartitions = 32;

// Fibonacci remix: one multiply spreads entropy into the top bits,
// which the radix partitioning reads.
inline uint64_t MixHash(size_t h) {
  return static_cast<uint64_t>(h) * 0x9E3779B97F4A7C15ull;
}

inline size_t PartitionOf(size_t h) {
  return static_cast<size_t>(MixHash(h) >> 59);  // top log2(32) bits
}

// Wall-clock for the optional KernelPhases accounting. The kernels
// only call this when a phases pointer was passed.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoll(s, nullptr, 10);
}

}  // namespace

KernelTuning KernelTuning::Clamped() const {
  KernelTuning kt = *this;
  kt.radix_bits = std::clamp(kt.radix_bits, 1, 12);
  kt.morsel_rows =
      std::clamp<uint32_t>(kt.morsel_rows, 64, uint32_t{1} << 20);
  kt.sort_chunk_rows =
      std::clamp<uint32_t>(kt.sort_chunk_rows, 256, uint32_t{1} << 22);
  return kt;
}

const KernelTuning& KernelTuning::Default() {
  static const KernelTuning kt = [] {
    KernelTuning t;
    t.radix_bits =
        static_cast<int>(EnvInt64("PF_RADIX_BITS", t.radix_bits));
    t.morsel_rows = static_cast<uint32_t>(std::clamp<int64_t>(
        EnvInt64("PF_MORSEL_ROWS", t.morsel_rows), 1, int64_t{1} << 30));
    t.sort_chunk_rows = static_cast<uint32_t>(std::clamp<int64_t>(
        EnvInt64("PF_SORT_CHUNK_ROWS", t.sort_chunk_rows), 1,
        int64_t{1} << 30));
    return t.Clamped();
  }();
  return kt;
}

namespace {

// Append a fixed-width, type-tagged encoding of cell (c, row) to `out`.
// Representation equality of encodings == representation equality of
// cells, which is what distinct/difference on surrogate columns need.
void AppendCellKey(std::string* out, const Column& c, size_t row) {
  char buf[1 + sizeof(uint64_t)];
  uint64_t v = 0;
  switch (c.type()) {
    case ColType::kInt:
      buf[0] = 'i';
      v = static_cast<uint64_t>(c.ints()[row]);
      break;
    case ColType::kDbl:
      buf[0] = 'd';
      std::memcpy(&v, &c.dbls()[row], sizeof(double));
      break;
    case ColType::kStr:
      buf[0] = 's';
      v = c.strs()[row];
      break;
    case ColType::kBool:
      buf[0] = 'b';
      v = c.bools()[row];
      break;
    case ColType::kItem: {
      const Item& it = c.items()[row];
      buf[0] = static_cast<char>('A' + static_cast<int>(it.kind));
      v = it.raw;
      break;
    }
  }
  std::memcpy(buf + 1, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

Result<std::vector<const Column*>> ResolveCols(
    const Table& t, const std::vector<std::string>& names) {
  std::vector<const Column*> cols;
  if (names.empty()) {
    for (size_t i = 0; i < t.num_cols(); ++i) cols.push_back(t.col(i).get());
    return cols;
  }
  for (const auto& n : names) {
    int i = t.FindCol(n);
    if (i < 0) return Status::Internal("kernel: no column '" + n + "'");
    cols.push_back(t.col(static_cast<size_t>(i)).get());
  }
  return cols;
}

std::string RowKey(const std::vector<const Column*>& cols, size_t row) {
  std::string key;
  key.reserve(cols.size() * 9);
  for (const Column* c : cols) AppendCellKey(&key, *c, row);
  return key;
}

// Three-way comparison of two rows under the given key columns; ties at
// all keys return 0 (stable sort then preserves input order). `desc`
// (parallel to cols, optional) flips individual keys.
Result<int> CompareRows(const std::vector<const Column*>& cols, size_t ra,
                        size_t rb, const StringPool& pool,
                        const std::vector<uint8_t>& desc = {}) {
  size_t ki = 0;
  for (const Column* c : cols) {
    int flip = (ki < desc.size() && desc[ki]) ? -1 : 1;
    ++ki;
    switch (c->type()) {
      case ColType::kInt: {
        int64_t a = c->ints()[ra], b = c->ints()[rb];
        if (a != b) return (a < b ? -1 : 1) * flip;
        break;
      }
      case ColType::kDbl: {
        double a = c->dbls()[ra], b = c->dbls()[rb];
        if (a != b) return (a < b ? -1 : 1) * flip;
        break;
      }
      case ColType::kStr: {
        StrId a = c->strs()[ra], b = c->strs()[rb];
        if (a != b) {
          int cmp = pool.Get(a).compare(pool.Get(b));
          if (cmp != 0) return (cmp < 0 ? -1 : 1) * flip;
        }
        break;
      }
      case ColType::kBool: {
        int a = c->bools()[ra], b = c->bools()[rb];
        if (a != b) return (a < b ? -1 : 1) * flip;
        break;
      }
      case ColType::kItem: {
        int cmp = ItemOrder(c->items()[ra], c->items()[rb], pool);
        if (cmp != 0) return cmp * flip;
        break;
      }
    }
  }
  return 0;
}

}  // namespace

IdxVec FilterIndices(const Column& pred, ThreadPool* tp,
                     const KernelTuning& kt) {
  assert(pred.type() == ColType::kBool);
  const auto& b = pred.bools();
  const size_t morsel = kt.Clamped().morsel_rows;
  IdxVec out;
  if (tp == nullptr || b.size() < 2 * morsel) {
    // One counting pass sizes the output exactly; the scatter loop is
    // branch-free (the write is unconditional, the cursor advances by
    // the predicate byte) and terminates by hit count, so both passes
    // vectorize.
    size_t hits = 0;
    for (uint8_t v : b) hits += v ? 1 : 0;
    out.resize(hits);
    size_t w = 0;
    for (size_t i = 0; w < hits; ++i) {
      out[w] = static_cast<RowIdx>(i);
      w += b[i] ? 1 : 0;
    }
    return out;
  }
  // Two-pass parallel filter: per-morsel popcount, exclusive prefix to
  // output offsets, then each morsel scatters its hits into its own
  // slice — row order preserved, no inter-chunk contention. The
  // scatter writes every candidate row id at the cursor and advances
  // only on a hit (misses are overwritten by the next candidate): no
  // per-element branch, contiguous writes, and the hit count bound
  // from the popcount pass stops the loop exactly at the slice end, so
  // no write ever crosses into the next chunk's slice.
  size_t chunks = ThreadPool::NumChunks(b.size(), morsel);
  std::vector<size_t> offs(chunks + 1, 0);
  ParallelFor(tp, b.size(), morsel,
              [&](size_t c, size_t lo, size_t hi) {
                size_t n = 0;
                for (size_t i = lo; i < hi; ++i) n += b[i] ? 1 : 0;
                offs[c + 1] = n;
              });
  for (size_t c = 0; c < chunks; ++c) offs[c + 1] += offs[c];
  out.resize(offs[chunks]);
  ParallelFor(tp, b.size(), morsel,
              [&](size_t c, size_t lo, size_t) {
                size_t w = offs[c];
                const size_t wend = offs[c + 1];
                for (size_t i = lo; w < wend; ++i) {
                  out[w] = static_cast<RowIdx>(i);
                  w += b[i] ? 1 : 0;
                }
              });
  return out;
}

namespace {

template <typename T>
void GatherInto(const std::vector<T>& src, const IdxVec& idx,
                std::vector<T>* dst, ThreadPool* tp) {
  // Exact-size allocation + positional writes: each morsel fills its
  // own disjoint slice of the result.
  dst->resize(idx.size());
  ParallelFor(tp, idx.size(), kMorselRows,
              [&](size_t, size_t lo, size_t hi) {
                for (size_t k = lo; k < hi; ++k) (*dst)[k] = src[idx[k]];
              });
}

}  // namespace

ColumnPtr Gather(const Column& c, const IdxVec& idx, ThreadPool* tp) {
  switch (c.type()) {
    case ColType::kInt: {
      auto out = Column::MakeInt();
      GatherInto(c.ints(), idx, &out->ints(), tp);
      return out;
    }
    case ColType::kDbl: {
      auto out = Column::MakeDbl();
      GatherInto(c.dbls(), idx, &out->dbls(), tp);
      return out;
    }
    case ColType::kStr: {
      auto out = Column::MakeStr();
      GatherInto(c.strs(), idx, &out->strs(), tp);
      return out;
    }
    case ColType::kBool: {
      auto out = Column::MakeBool();
      GatherInto(c.bools(), idx, &out->bools(), tp);
      return out;
    }
    case ColType::kItem: {
      auto out = Column::MakeItem();
      GatherInto(c.items(), idx, &out->items(), tp);
      return out;
    }
  }
  return nullptr;
}

Table GatherTable(const Table& t, const IdxVec& idx, ThreadPool* tp) {
  Table out;
  for (size_t i = 0; i < t.num_cols(); ++i) {
    out.AddCol(t.name(i), Gather(*t.col(i), idx, tp));
  }
  return out;
}

namespace {

// Fused filter scatter: each morsel writes its surviving rows straight
// into its pre-computed slice of the output column. Same branch-free
// cursor loop as FilterIndices — unconditional write, conditional
// advance, hit-count bound.
template <typename T>
void FilterInto(const std::vector<T>& src, const std::vector<uint8_t>& b,
                const std::vector<size_t>& offs, size_t morsel,
                std::vector<T>* dst, ThreadPool* tp) {
  dst->resize(offs.back());
  ParallelFor(tp, b.size(), morsel, [&](size_t c, size_t lo, size_t) {
    size_t w = offs[c];
    const size_t wend = offs[c + 1];
    for (size_t i = lo; w < wend; ++i) {
      (*dst)[w] = src[i];
      w += b[i] ? 1 : 0;
    }
  });
}

ColumnPtr FilterColumn(const Column& c, const std::vector<uint8_t>& b,
                       const std::vector<size_t>& offs, size_t morsel,
                       ThreadPool* tp) {
  auto out = std::make_shared<Column>(c.type());
  switch (c.type()) {
    case ColType::kInt:
      FilterInto(c.ints(), b, offs, morsel, &out->ints(), tp);
      break;
    case ColType::kDbl:
      FilterInto(c.dbls(), b, offs, morsel, &out->dbls(), tp);
      break;
    case ColType::kStr:
      FilterInto(c.strs(), b, offs, morsel, &out->strs(), tp);
      break;
    case ColType::kBool:
      FilterInto(c.bools(), b, offs, morsel, &out->bools(), tp);
      break;
    case ColType::kItem:
      FilterInto(c.items(), b, offs, morsel, &out->items(), tp);
      break;
  }
  return out;
}

}  // namespace

Table FilterGather(const Table& t, const Column& pred, ThreadPool* tp,
                   const KernelTuning& kt) {
  assert(pred.type() == ColType::kBool);
  const auto& b = pred.bools();
  const size_t morsel = kt.Clamped().morsel_rows;
  // Per-morsel popcount + exclusive prefix sizes every column's output
  // exactly; the surviving-row positions are recomputed per column
  // instead of being staged in an index vector (cheap: the predicate
  // scan is branch-free and stays in cache per morsel).
  size_t chunks = ThreadPool::NumChunks(b.size(), morsel);
  std::vector<size_t> offs(chunks + 1, 0);
  ParallelFor(tp, b.size(), morsel, [&](size_t c, size_t lo, size_t hi) {
    size_t n = 0;
    for (size_t i = lo; i < hi; ++i) n += b[i] ? 1 : 0;
    offs[c + 1] = n;
  });
  for (size_t c = 0; c < chunks; ++c) offs[c + 1] += offs[c];
  Table out;
  for (size_t i = 0; i < t.num_cols(); ++i) {
    out.AddCol(t.name(i), FilterColumn(*t.col(i), b, offs, morsel, tp));
  }
  return out;
}

namespace {

// See HashJoinIndices: canonical representation for item join keys,
// mirroring ItemCompareValue's equality: numbers (and numeric-looking
// strings/untyped atomics) compare by double value, everything else by
// string identity.
Item CanonicalJoinKey(const Item& it, const StringPool& pool) {
  switch (it.kind) {
    case ItemKind::kInt:
      return Item::Dbl(static_cast<double>(it.AsInt()));
    case ItemKind::kUntyped:
    case ItemKind::kStr: {
      auto d = ItemToDouble(it, pool);
      if (d.ok()) return Item::Dbl(*d);
      return Item::Str(it.AsStr());
    }
    default:
      return it;
  }
}

// Slot/chain sentinels of the radix join's per-partition tables.
constexpr uint32_t kEmptySlot = 0xffffffffu;
constexpr uint32_t kChainEnd = 0xffffffffu;

// Shared skeleton of the typed hash-join branches, emitting pairs
// grouped by probe-side chunk. Below the morsel threshold a plain
// serial map join runs; above it the radix-partitioned join runs at
// EVERY thread count (tp == nullptr executes the same morsels inline),
// so the path choice — like the chunk boundaries — is a function of
// the input sizes only. Three phases, none sharing a mutable
// structure:
//   partition: each build-side morsel histograms rows by the top
//              radix_bits of the remixed key hash; a partition-major
//              exclusive prefix (chunk order within each partition)
//              turns the counts into disjoint scatter cursors, so each
//              partition's row list comes out contiguous and in
//              ascending global row order;
//   build:     one task per partition builds a private linear-probe
//              table over its rows: a slot holds the head/tail of an
//              insertion-ordered chain per key, so every key's row
//              list is ascending = the serial build order. The slot
//              index comes from hash bits disjoint from the partition
//              bits;
//   probe:     each probe-side morsel walks its rows' chains and emits
//              pairs into its own chunk; chunk-ordered concatenation
//              reproduces the serial left-major pair order exactly.
template <typename Key, typename Hash, typename LKeyFn, typename RKeyFn>
void HashJoinTyped(size_t nl, size_t nr, const LKeyFn& lkey,
                   const RKeyFn& rkey, JoinPairChunks* out, ThreadPool* tp,
                   const KernelTuning& kt, KernelPhases* phases) {
  Hash hasher;
  const size_t morsel = kt.morsel_rows;
  if (nl < morsel && nr < morsel) {
    using Map = std::unordered_map<Key, IdxVec, Hash>;
    out->li.resize(1);
    out->ri.resize(1);
    IdxVec& lv = out->li[0];
    IdxVec& rv = out->ri[0];
    Map ht;
    ht.reserve(nr * 2);
    for (size_t j = 0; j < nr; ++j) {
      ht[rkey(j)].push_back(static_cast<RowIdx>(j));
    }
    for (size_t i = 0; i < nl; ++i) {
      auto it = ht.find(lkey(i));
      if (it == ht.end()) continue;
      for (RowIdx j : it->second) {
        lv.push_back(static_cast<RowIdx>(i));
        rv.push_back(j);
      }
    }
    out->total = lv.size();
    return;
  }
  const int bits = kt.radix_bits;
  const size_t nparts = size_t{1} << bits;
  int64_t t0 = phases != nullptr ? NowNs() : 0;

  // Partition phase. The remixed hash is computed once per build row:
  // the top `bits` select the partition, bits 32..63 (disjoint from
  // the partition bits for any realistic per-partition capacity) seed
  // the slot index later.
  size_t bchunks = ThreadPool::NumChunks(nr, morsel);
  std::vector<uint16_t> pid(nr);
  std::vector<uint32_t> slot_hash(nr);
  std::vector<size_t> hist(bchunks * nparts, 0);
  ParallelFor(tp, nr, morsel, [&](size_t c, size_t lo, size_t hi) {
    size_t* h = &hist[c * nparts];
    for (size_t j = lo; j < hi; ++j) {
      uint64_t x = MixHash(hasher(rkey(j)));
      uint16_t p = static_cast<uint16_t>(x >> (64 - bits));
      pid[j] = p;
      slot_hash[j] = static_cast<uint32_t>(x >> 32);
      ++h[p];
    }
  });
  std::vector<size_t> pstart(nparts + 1, 0);
  {
    size_t run = 0;
    for (size_t p = 0; p < nparts; ++p) {
      pstart[p] = run;
      for (size_t c = 0; c < bchunks; ++c) {
        size_t cnt = hist[c * nparts + p];
        hist[c * nparts + p] = run;  // becomes the (c, p) scatter cursor
        run += cnt;
      }
    }
    pstart[nparts] = run;
  }
  std::vector<RowIdx> part_rows(nr);
  ParallelFor(tp, nr, morsel, [&](size_t c, size_t lo, size_t hi) {
    size_t* cur = &hist[c * nparts];
    for (size_t j = lo; j < hi; ++j) {
      part_rows[cur[pid[j]]++] = static_cast<RowIdx>(j);
    }
  });
  if (phases != nullptr) {
    int64_t t1 = NowNs();
    phases->partition_ns += t1 - t0;
    t0 = t1;
  }

  // Build phase: per-partition private tables, flat arrays only.
  struct PartTable {
    std::vector<uint32_t> head;  // slot -> first local row of its key
    std::vector<uint32_t> tail;  // slot -> last local row of its key
    std::vector<uint32_t> next;  // local row -> next row of same key
    uint32_t mask = 0;
  };
  std::vector<PartTable> tables(nparts);
  ParallelFor(tp, nparts, 1, [&](size_t p, size_t, size_t) {
    size_t cnt = pstart[p + 1] - pstart[p];
    if (cnt == 0) return;
    size_t cap = 16;
    while (cap < cnt * 2) cap <<= 1;
    PartTable& pt = tables[p];
    pt.mask = static_cast<uint32_t>(cap - 1);
    pt.head.assign(cap, kEmptySlot);
    pt.tail.assign(cap, 0);
    pt.next.assign(cnt, kChainEnd);
    const RowIdx* rows = part_rows.data() + pstart[p];
    for (uint32_t t = 0; t < cnt; ++t) {
      RowIdx j = rows[t];
      uint32_t s = slot_hash[j] & pt.mask;
      for (;;) {
        uint32_t h = pt.head[s];
        if (h == kEmptySlot) {
          pt.head[s] = t;
          pt.tail[s] = t;
          break;
        }
        if (rkey(rows[h]) == rkey(j)) {
          pt.next[pt.tail[s]] = t;
          pt.tail[s] = t;
          break;
        }
        s = (s + 1) & pt.mask;
      }
    }
  });
  if (phases != nullptr) {
    int64_t t1 = NowNs();
    phases->build_ns += t1 - t0;
    t0 = t1;
  }

  // Probe phase.
  size_t pchunks = ThreadPool::NumChunks(nl, morsel);
  out->li.resize(pchunks);
  out->ri.resize(pchunks);
  ParallelFor(tp, nl, morsel, [&](size_t c, size_t lo, size_t hi) {
    IdxVec& lv = out->li[c];
    IdxVec& rv = out->ri[c];
    for (size_t i = lo; i < hi; ++i) {
      Key k = lkey(i);
      uint64_t x = MixHash(hasher(k));
      size_t p = static_cast<size_t>(x >> (64 - bits));
      const PartTable& pt = tables[p];
      if (pt.head.empty()) continue;
      const RowIdx* rows = part_rows.data() + pstart[p];
      uint32_t s = static_cast<uint32_t>(x >> 32) & pt.mask;
      for (;;) {
        uint32_t h = pt.head[s];
        if (h == kEmptySlot) break;
        if (rkey(rows[h]) == k) {
          for (uint32_t t = h; t != kChainEnd; t = pt.next[t]) {
            lv.push_back(static_cast<RowIdx>(i));
            rv.push_back(rows[t]);
          }
          break;
        }
        s = (s + 1) & pt.mask;
      }
    }
  });
  for (const IdxVec& lv : out->li) out->total += lv.size();
  if (phases != nullptr) phases->probe_ns += NowNs() - t0;
}

// Exclusive prefix offsets of a chunked pair list.
std::vector<size_t> ChunkOffsets(const std::vector<IdxVec>& chunks) {
  std::vector<size_t> offs(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    offs[c + 1] = offs[c] + chunks[c].size();
  }
  return offs;
}

// Flatten pair chunks into global index vectors (the legacy *Indices
// result). A single chunk is moved, not copied, so the serial paths
// cost what they did before the chunked refactor.
void FlattenPairs(JoinPairChunks&& pc, IdxVec* li, IdxVec* ri,
                  ThreadPool* tp) {
  if (pc.li.size() == 1) {
    *li = std::move(pc.li[0]);
    *ri = std::move(pc.ri[0]);
    return;
  }
  std::vector<size_t> offs = ChunkOffsets(pc.li);
  li->resize(offs.back());
  ri->resize(offs.back());
  ParallelFor(tp, pc.li.size(), 1, [&](size_t c, size_t, size_t) {
    std::copy(pc.li[c].begin(), pc.li[c].end(), li->begin() + offs[c]);
    std::copy(pc.ri[c].begin(), pc.ri[c].end(), ri->begin() + offs[c]);
  });
}

}  // namespace

Status HashJoinPairsChunked(const Column& l, const Column& r,
                            const StringPool& pool, JoinPairChunks* out,
                            ThreadPool* tp, const KernelTuning& kt,
                            KernelPhases* phases) {
  if (l.type() != r.type()) {
    return Status::Internal("hash join key type mismatch");
  }
  const KernelTuning ktc = kt.Clamped();
  *out = JoinPairChunks{};
  switch (l.type()) {
    case ColType::kInt: {
      const auto& lv = l.ints();
      const auto& rv = r.ints();
      HashJoinTyped<int64_t, std::hash<int64_t>>(
          lv.size(), rv.size(), [&](size_t i) { return lv[i]; },
          [&](size_t j) { return rv[j]; }, out, tp, ktc, phases);
      return Status::OK();
    }
    case ColType::kStr: {
      const auto& lv = l.strs();
      const auto& rv = r.strs();
      HashJoinTyped<StrId, std::hash<StrId>>(
          lv.size(), rv.size(), [&](size_t i) { return lv[i]; },
          [&](size_t j) { return rv[j]; }, out, tp, ktc, phases);
      return Status::OK();
    }
    case ColType::kItem: {
      // Value-join keys are canonicalized so that XQuery general
      // comparison semantics hold across representations: integers
      // compare as doubles, untyped atomics as their typed
      // interpretation (number if parseable, string otherwise).
      const auto& lv = l.items();
      const auto& rv = r.items();
      std::vector<Item> lc(lv.size()), rc(rv.size());
      ParallelFor(tp, lv.size(), ktc.morsel_rows,
                  [&](size_t, size_t lo, size_t hi) {
                    for (size_t i = lo; i < hi; ++i) {
                      lc[i] = CanonicalJoinKey(lv[i], pool);
                    }
                  });
      ParallelFor(tp, rv.size(), ktc.morsel_rows,
                  [&](size_t, size_t lo, size_t hi) {
                    for (size_t j = lo; j < hi; ++j) {
                      rc[j] = CanonicalJoinKey(rv[j], pool);
                    }
                  });
      HashJoinTyped<Item, ItemHash>(
          lc.size(), rc.size(), [&](size_t i) { return lc[i]; },
          [&](size_t j) { return rc[j]; }, out, tp, ktc, phases);
      return Status::OK();
    }
    default:
      return Status::Internal("hash join key must be int/str/item");
  }
}

Status HashJoinIndices(const Column& l, const Column& r,
                       const StringPool& pool, IdxVec* li, IdxVec* ri,
                       ThreadPool* tp, const KernelTuning& kt,
                       KernelPhases* phases) {
  li->clear();
  ri->clear();
  JoinPairChunks pc;
  PF_RETURN_NOT_OK(HashJoinPairsChunked(l, r, pool, &pc, tp, kt, phases));
  FlattenPairs(std::move(pc), li, ri, tp);
  return Status::OK();
}

Status ThetaJoinPairsChunked(const Column& l, const Column& r, CmpOp op,
                             const StringPool& pool, JoinPairChunks* out,
                             ThreadPool* tp) {
  // Materialize both sides as doubles once, then nested-loop compare.
  // The paper notes (Section 3.4) that theta-join output here is
  // inherently quadratic in the input, so the loop is not the bottleneck
  // — but the pair space splits cleanly into left-row morsels whose
  // chunk order reproduces the serial i-major pair order.
  auto materialize = [&](const Column& c) -> Result<std::vector<double>> {
    std::vector<double> v;
    v.reserve(c.size());
    switch (c.type()) {
      case ColType::kInt:
        for (int64_t x : c.ints()) v.push_back(static_cast<double>(x));
        return v;
      case ColType::kDbl:
        return std::vector<double>(c.dbls());
      case ColType::kItem:
        for (const Item& it : c.items()) {
          PF_ASSIGN_OR_RETURN(double d, ItemToDouble(it, pool));
          v.push_back(d);
        }
        return v;
      default:
        return Status::Internal("theta join key must be numeric");
    }
  };
  *out = JoinPairChunks{};
  auto finish = [out] {
    for (const IdxVec& lv : out->li) out->total += lv.size();
    return Status::OK();
  };
  auto lm = materialize(l);
  auto rm = materialize(r);
  if (!lm.ok() || !rm.ok()) {
    // Non-numeric keys (e.g. string inequality): fall back to generic
    // value comparison per pair.
    if (l.type() != ColType::kItem || r.type() != ColType::kItem) {
      return !lm.ok() ? lm.status() : rm.status();
    }
    const auto& la = l.items();
    const auto& ra = r.items();
    auto keep_of = [op](int c) {
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return false;
    };
    if (tp == nullptr || la.size() * ra.size() < 2 * kThetaPairsPerMorsel) {
      out->li.resize(1);
      out->ri.resize(1);
      for (size_t i = 0; i < la.size(); ++i) {
        for (size_t j = 0; j < ra.size(); ++j) {
          PF_ASSIGN_OR_RETURN(int c, ItemCompareValue(la[i], ra[j], pool));
          if (keep_of(c)) {
            out->li[0].push_back(static_cast<RowIdx>(i));
            out->ri[0].push_back(static_cast<RowIdx>(j));
          }
        }
      }
      return finish();
    }
    // Left-row morsels sized to a fixed pair budget (a function of the
    // input sizes only, never the thread count).
    size_t grain = std::max<size_t>(
        1, kThetaPairsPerMorsel / std::max<size_t>(1, ra.size()));
    size_t chunks = ThreadPool::NumChunks(la.size(), grain);
    out->li.resize(chunks);
    out->ri.resize(chunks);
    PF_RETURN_NOT_OK(ParallelForStatus(
        tp, la.size(), grain,
        [&](size_t c, size_t lo, size_t hi) -> Status {
          for (size_t i = lo; i < hi; ++i) {
            for (size_t j = 0; j < ra.size(); ++j) {
              PF_ASSIGN_OR_RETURN(int cmp,
                                  ItemCompareValue(la[i], ra[j], pool));
              if (keep_of(cmp)) {
                out->li[c].push_back(static_cast<RowIdx>(i));
                out->ri[c].push_back(static_cast<RowIdx>(j));
              }
            }
          }
          return Status::OK();
        }));
    return finish();
  }
  std::vector<double> lv = std::move(lm).value();
  std::vector<double> rv = std::move(rm).value();
  auto test = [op](double a, double b) {
    switch (op) {
      case CmpOp::kEq:
        return a == b;
      case CmpOp::kNe:
        return a != b;
      case CmpOp::kLt:
        return a < b;
      case CmpOp::kLe:
        return a <= b;
      case CmpOp::kGt:
        return a > b;
      case CmpOp::kGe:
        return a >= b;
    }
    return false;
  };
  if (tp == nullptr || lv.size() * rv.size() < 2 * kThetaPairsPerMorsel) {
    out->li.resize(1);
    out->ri.resize(1);
    for (size_t i = 0; i < lv.size(); ++i) {
      for (size_t j = 0; j < rv.size(); ++j) {
        if (test(lv[i], rv[j])) {
          out->li[0].push_back(static_cast<RowIdx>(i));
          out->ri[0].push_back(static_cast<RowIdx>(j));
        }
      }
    }
    return finish();
  }
  size_t grain = std::max<size_t>(
      1, kThetaPairsPerMorsel / std::max<size_t>(1, rv.size()));
  size_t chunks = ThreadPool::NumChunks(lv.size(), grain);
  out->li.resize(chunks);
  out->ri.resize(chunks);
  ParallelFor(tp, lv.size(), grain, [&](size_t c, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < rv.size(); ++j) {
        if (test(lv[i], rv[j])) {
          out->li[c].push_back(static_cast<RowIdx>(i));
          out->ri[c].push_back(static_cast<RowIdx>(j));
        }
      }
    }
  });
  return finish();
}

Status ThetaJoinIndices(const Column& l, const Column& r, CmpOp op,
                        const StringPool& pool, IdxVec* li, IdxVec* ri,
                        ThreadPool* tp) {
  li->clear();
  ri->clear();
  JoinPairChunks pc;
  PF_RETURN_NOT_OK(ThetaJoinPairsChunked(l, r, op, pool, &pc, tp));
  FlattenPairs(std::move(pc), li, ri, tp);
  return Status::OK();
}

namespace {

// Gather src rows named by chunked pair indices straight into each
// chunk's output slice (one task per chunk: chunk pair counts vary, so
// row-range chunking would misalign with `offs`).
template <typename T>
void GatherChunksInto(const std::vector<T>& src,
                      const std::vector<IdxVec>& idx,
                      const std::vector<size_t>& offs, std::vector<T>* dst,
                      ThreadPool* tp) {
  dst->resize(offs.back());
  ParallelFor(tp, idx.size(), 1, [&](size_t c, size_t, size_t) {
    size_t w = offs[c];
    for (RowIdx k : idx[c]) (*dst)[w++] = src[k];
  });
}

ColumnPtr GatherChunks(const Column& c, const std::vector<IdxVec>& idx,
                       const std::vector<size_t>& offs, ThreadPool* tp) {
  auto out = std::make_shared<Column>(c.type());
  switch (c.type()) {
    case ColType::kInt:
      GatherChunksInto(c.ints(), idx, offs, &out->ints(), tp);
      break;
    case ColType::kDbl:
      GatherChunksInto(c.dbls(), idx, offs, &out->dbls(), tp);
      break;
    case ColType::kStr:
      GatherChunksInto(c.strs(), idx, offs, &out->strs(), tp);
      break;
    case ColType::kBool:
      GatherChunksInto(c.bools(), idx, offs, &out->bools(), tp);
      break;
    case ColType::kItem:
      GatherChunksInto(c.items(), idx, offs, &out->items(), tp);
      break;
  }
  return out;
}

Table JoinGatherTables(const Table& l, const Table& r,
                       const JoinPairChunks& pc, ThreadPool* tp) {
  std::vector<size_t> offs = ChunkOffsets(pc.li);
  Table out;
  for (size_t i = 0; i < l.num_cols(); ++i) {
    out.AddCol(l.name(i), GatherChunks(*l.col(i), pc.li, offs, tp));
  }
  for (size_t i = 0; i < r.num_cols(); ++i) {
    out.AddCol(r.name(i), GatherChunks(*r.col(i), pc.ri, offs, tp));
  }
  return out;
}

}  // namespace

Status HashJoinGather(const Table& l, const Table& r, const Column& lk,
                      const Column& rk, const StringPool& pool, Table* out,
                      ThreadPool* tp, const KernelTuning& kt) {
  JoinPairChunks pc;
  PF_RETURN_NOT_OK(HashJoinPairsChunked(lk, rk, pool, &pc, tp, kt));
  *out = JoinGatherTables(l, r, pc, tp);
  return Status::OK();
}

Status ThetaJoinGather(const Table& l, const Table& r, const Column& lk,
                       const Column& rk, CmpOp op, const StringPool& pool,
                       Table* out, ThreadPool* tp) {
  JoinPairChunks pc;
  PF_RETURN_NOT_OK(ThetaJoinPairsChunked(lk, rk, op, pool, &pc, tp));
  *out = JoinGatherTables(l, r, pc, tp);
  return Status::OK();
}

namespace {

// Merge-path split: the number of A elements among the first `diag`
// outputs of a stable merge of A (na elements) and B (nb elements)
// under `less`, with ties taken from A — exactly std::merge's rule.
// Splitting one merge at several diagonals and merging the pieces
// therefore reproduces the full std::merge output piecewise.
template <typename Less>
size_t MergeSplit(const RowIdx* a, size_t na, const RowIdx* b, size_t nb,
                  size_t diag, const Less& less) {
  size_t lo = diag > nb ? diag - nb : 0;
  size_t hi = std::min(diag, na);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    // a[mid] precedes b[diag-1-mid] in the merge iff !(b < a).
    if (!less(b[diag - 1 - mid], a[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<IdxVec> SortPerm(const Table& t, const std::vector<std::string>& keys,
                        const StringPool& pool,
                        const std::vector<uint8_t>& desc, ThreadPool* tp,
                        const KernelTuning& kt, KernelPhases* phases) {
  PF_ASSIGN_OR_RETURN(std::vector<const Column*> cols, ResolveCols(t, keys));
  const size_t run = kt.Clamped().sort_chunk_rows;
  IdxVec perm(t.rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<RowIdx>(i);
  size_t n = perm.size();
  // Fast path: operator outputs are frequently already key-ordered
  // (staircase join emits document order, unions of ordered inputs stay
  // grouped), so one linear pre-check saves the O(n log n) sort. The
  // check itself is chunked: each morsel tests its adjacent pairs
  // (including the pair straddling the next chunk's boundary).
  std::atomic<bool> sorted{true};
  PF_RETURN_NOT_OK(ParallelForStatus(
      tp, n > 0 ? n - 1 : 0, run,
      [&](size_t, size_t lo, size_t hi) -> Status {
        if (!sorted.load(std::memory_order_relaxed)) return Status::OK();
        for (size_t i = lo; i < hi; ++i) {
          PF_ASSIGN_OR_RETURN(int cmp,
                              CompareRows(cols, i, i + 1, pool, desc));
          if (cmp > 0) {
            sorted.store(false, std::memory_order_relaxed);
            break;
          }
        }
        return Status::OK();
      }));
  if (sorted.load(std::memory_order_relaxed)) return perm;
  if (tp == nullptr || n < 2 * run) {
    Status st = Status::OK();
    std::stable_sort(perm.begin(), perm.end(), [&](RowIdx a, RowIdx b) {
      auto cmp = CompareRows(cols, a, b, pool, desc);
      if (!cmp.ok()) {
        if (st.ok()) st = cmp.status();
        return false;
      }
      return *cmp < 0;
    });
    if (!st.ok()) return st;
    return perm;
  }
  // Parallel merge sort. Phase 1: stable-sort fixed-size runs
  // concurrently.
  int64_t t0 = phases != nullptr ? NowNs() : 0;
  PF_RETURN_NOT_OK(ParallelForStatus(
      tp, n, run, [&](size_t, size_t lo, size_t hi) -> Status {
        Status st = Status::OK();
        std::stable_sort(perm.begin() + static_cast<ptrdiff_t>(lo),
                         perm.begin() + static_cast<ptrdiff_t>(hi),
                         [&](RowIdx a, RowIdx b) {
                           auto cmp = CompareRows(cols, a, b, pool, desc);
                           if (!cmp.ok()) {
                             if (st.ok()) st = cmp.status();
                             return false;
                           }
                           return *cmp < 0;
                         });
        return st;
      }));
  if (phases != nullptr) {
    int64_t t1 = NowNs();
    phases->partition_ns += t1 - t0;
    t0 = t1;
  }
  // Phase 2: merge adjacent runs level by level, but split every
  // pairwise merge into independent output segments of `run` rows via
  // merge-path binary search — the top levels (including the final
  // whole-array merge) parallelize as well as the bottom ones, leaving
  // no serial merge phase. std::merge takes the left (= lower-run)
  // element on ties and MergeSplit uses the same rule, so the final
  // permutation is exactly the serial stable sort's.
  IdxVec buf(n);
  IdxVec* src = &perm;
  IdxVec* dst = &buf;
  struct Seg {
    size_t a, mid, b;       // merge input: [a, mid) with [mid, b)
    size_t out_lo, out_hi;  // output segment within [a, b)
  };
  std::vector<Seg> segs;
  for (size_t width = run; width < n; width *= 2) {
    segs.clear();
    for (size_t a = 0; a < n; a += 2 * width) {
      size_t mid = std::min(n, a + width);
      size_t b = std::min(n, a + 2 * width);
      for (size_t lo = a; lo < b; lo += run) {
        segs.push_back({a, mid, b, lo, std::min(b, lo + run)});
      }
    }
    PF_RETURN_NOT_OK(ParallelForStatus(
        tp, segs.size(), 1, [&](size_t si, size_t, size_t) -> Status {
          const Seg& sg = segs[si];
          Status st = Status::OK();
          auto less = [&](RowIdx x, RowIdx y) {
            auto cmp = CompareRows(cols, x, y, pool, desc);
            if (!cmp.ok()) {
              if (st.ok()) st = cmp.status();
              return false;
            }
            return *cmp < 0;
          };
          const RowIdx* av = src->data() + sg.a;
          size_t na = sg.mid - sg.a;
          const RowIdx* bv = src->data() + sg.mid;
          size_t nb = sg.b - sg.mid;
          size_t i0 = MergeSplit(av, na, bv, nb, sg.out_lo - sg.a, less);
          size_t i1 = MergeSplit(av, na, bv, nb, sg.out_hi - sg.a, less);
          // A comparator error makes the split diagonals meaningless
          // (and possibly inverted) — stop before handing them to
          // std::merge.
          if (!st.ok()) return st;
          size_t j0 = (sg.out_lo - sg.a) - i0;
          size_t j1 = (sg.out_hi - sg.a) - i1;
          std::merge(av + i0, av + i1, bv + j0, bv + j1,
                     dst->begin() + static_cast<ptrdiff_t>(sg.out_lo),
                     less);
          return st;
        }));
    std::swap(src, dst);
  }
  if (src != &perm) perm = std::move(*src);
  if (phases != nullptr) phases->merge_ns += NowNs() - t0;
  return perm;
}

Result<IdxVec> DistinctIndices(const Table& t,
                               const std::vector<std::string>& keys,
                               ThreadPool* tp) {
  PF_ASSIGN_OR_RETURN(std::vector<const Column*> cols, ResolveCols(t, keys));
  size_t n = t.rows();
  if (tp == nullptr || n < 2 * kMorselRows) {
    std::unordered_set<std::string> seen;
    seen.reserve(n * 2);
    IdxVec out;
    for (size_t r = 0; r < n; ++r) {
      if (seen.insert(RowKey(cols, r)).second) {
        out.push_back(static_cast<RowIdx>(r));
      }
    }
    return out;
  }
  // Parallel first-occurrence marking. Rows are hash-partitioned per
  // morsel; each partition then scans its rows visiting morsels in
  // chunk order — within a partition rows therefore arrive in ascending
  // global row order, so the per-partition set marks exactly the rows
  // the serial scan would keep. Distinct partitions never share a row,
  // so the byte-per-row marks vector is written race-free.
  size_t chunks = ThreadPool::NumChunks(n, kMorselRows);
  std::vector<std::string> rowkeys(n);
  std::vector<std::vector<IdxVec>> buckets(
      chunks, std::vector<IdxVec>(kJoinPartitions));
  std::hash<std::string_view> hasher;
  ParallelFor(tp, n, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    auto& bk = buckets[c];
    for (size_t r = lo; r < hi; ++r) {
      rowkeys[r] = RowKey(cols, r);
      bk[PartitionOf(hasher(rowkeys[r]))].push_back(static_cast<RowIdx>(r));
    }
  });
  std::vector<uint8_t> first(n, 0);
  ParallelFor(tp, kJoinPartitions, 1, [&](size_t p, size_t, size_t) {
    std::unordered_set<std::string_view> seen;
    for (size_t c = 0; c < chunks; ++c) {
      for (RowIdx r : buckets[c][p]) {
        if (seen.insert(rowkeys[r]).second) first[r] = 1;
      }
    }
  });
  // Two-pass collect: per-morsel counts, exclusive prefix, scatter into
  // exact output slices — kept rows stay in row order.
  std::vector<size_t> counts(chunks, 0);
  ParallelFor(tp, n, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    size_t cnt = 0;
    for (size_t r = lo; r < hi; ++r) cnt += first[r];
    counts[c] = cnt;
  });
  std::vector<size_t> offs(chunks + 1, 0);
  for (size_t c = 0; c < chunks; ++c) offs[c + 1] = offs[c] + counts[c];
  IdxVec out(offs.back());
  ParallelFor(tp, n, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    size_t o = offs[c];
    for (size_t r = lo; r < hi; ++r) {
      if (first[r]) out[o++] = static_cast<RowIdx>(r);
    }
  });
  return out;
}

Result<ColumnPtr> Mark(const Table& t, const std::vector<std::string>& part,
                       const std::vector<std::string>& order,
                       const StringPool& pool,
                       const std::vector<uint8_t>& order_desc,
                       ThreadPool* tp, const KernelTuning& kt) {
  std::vector<std::string> sort_keys = part;
  sort_keys.insert(sort_keys.end(), order.begin(), order.end());
  std::vector<uint8_t> desc(part.size(), 0);
  if (!order_desc.empty()) {
    desc.insert(desc.end(), order_desc.begin(), order_desc.end());
  } else {
    desc.insert(desc.end(), order.size(), 0);
  }
  PF_ASSIGN_OR_RETURN(IdxVec perm,
                      SortPerm(t, sort_keys, pool, desc, tp, kt));
  // Empty `part` means one global partition. (ResolveCols expands an
  // empty list to all columns — the Distinct convention, not ours.)
  std::vector<const Column*> pcols;
  if (!part.empty()) {
    PF_ASSIGN_OR_RETURN(pcols, ResolveCols(t, part));
  }
  auto out = Column::MakeInt(t.rows());
  out->ints().assign(t.rows(), 0);
  int64_t counter = 0;
  for (size_t k = 0; k < perm.size(); ++k) {
    bool new_part = (k == 0);
    if (!new_part && !pcols.empty()) {
      PF_ASSIGN_OR_RETURN(int cmp,
                          CompareRows(pcols, perm[k - 1], perm[k], pool));
      new_part = (cmp != 0);
    }
    if (new_part) counter = 0;
    out->ints()[perm[k]] = ++counter;
  }
  return out;
}

Result<IdxVec> DifferenceIndices(const Table& a, const Table& b,
                                 const std::vector<std::string>& keys,
                                 ThreadPool* tp) {
  PF_ASSIGN_OR_RETURN(std::vector<const Column*> acols,
                      ResolveCols(a, keys));
  size_t na = a.rows();
  size_t nb = b.rows();
  if (nb == 0) {
    // Nothing can be subtracted: a \ ∅ = a. Skip key encoding entirely
    // and hand back the identity index vector.
    IdxVec out(na);
    for (size_t r = 0; r < na; ++r) out[r] = static_cast<RowIdx>(r);
    return out;
  }
  PF_ASSIGN_OR_RETURN(std::vector<const Column*> bcols,
                      ResolveCols(b, keys));
  if (tp == nullptr || (na < 2 * kMorselRows && nb < 2 * kMorselRows)) {
    std::unordered_set<std::string> present;
    present.reserve(nb * 2);
    for (size_t r = 0; r < nb; ++r) present.insert(RowKey(bcols, r));
    IdxVec out;
    for (size_t r = 0; r < na; ++r) {
      if (!present.count(RowKey(acols, r))) {
        out.push_back(static_cast<RowIdx>(r));
      }
    }
    return out;
  }
  // Parallel anti-semijoin: build hash-partitioned key sets from b
  // (set membership is order-free, so partition builds need no chunk
  // discipline), then probe a's morsels independently and collect the
  // kept rows with the two-pass prefix pattern — output order is a's
  // row order, identical to the serial scan.
  size_t bchunks = ThreadPool::NumChunks(nb, kMorselRows);
  std::vector<std::string> bkeys(nb);
  std::vector<std::vector<IdxVec>> buckets(
      bchunks, std::vector<IdxVec>(kJoinPartitions));
  std::hash<std::string_view> hasher;
  ParallelFor(tp, nb, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    auto& bk = buckets[c];
    for (size_t r = lo; r < hi; ++r) {
      bkeys[r] = RowKey(bcols, r);
      bk[PartitionOf(hasher(bkeys[r]))].push_back(static_cast<RowIdx>(r));
    }
  });
  std::vector<std::unordered_set<std::string_view>> parts(kJoinPartitions);
  ParallelFor(tp, kJoinPartitions, 1, [&](size_t p, size_t, size_t) {
    for (size_t c = 0; c < bchunks; ++c) {
      for (RowIdx r : buckets[c][p]) parts[p].insert(bkeys[r]);
    }
  });
  size_t achunks = ThreadPool::NumChunks(na, kMorselRows);
  std::vector<uint8_t> keep(na, 0);
  std::vector<size_t> counts(achunks, 0);
  ParallelFor(tp, na, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    size_t cnt = 0;
    std::string key;
    for (size_t r = lo; r < hi; ++r) {
      key.clear();
      for (const Column* col : acols) AppendCellKey(&key, *col, r);
      const auto& ht = parts[PartitionOf(hasher(key))];
      if (ht.find(std::string_view(key)) == ht.end()) {
        keep[r] = 1;
        ++cnt;
      }
    }
    counts[c] = cnt;
  });
  std::vector<size_t> offs(achunks + 1, 0);
  for (size_t c = 0; c < achunks; ++c) offs[c + 1] = offs[c] + counts[c];
  IdxVec out(offs.back());
  ParallelFor(tp, na, kMorselRows, [&](size_t c, size_t lo, size_t hi) {
    size_t o = offs[c];
    for (size_t r = lo; r < hi; ++r) {
      if (keep[r]) out[o++] = static_cast<RowIdx>(r);
    }
  });
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  Table out;
  for (size_t i = 0; i < a.num_cols(); ++i) {
    int bi = b.FindCol(a.name(i));
    if (bi < 0) {
      return Status::Internal("union: right side lacks column '" +
                              a.name(i) + "'");
    }
    const Column& ca = *a.col(i);
    const Column& cb = *b.col(static_cast<size_t>(bi));
    if (ca.type() != cb.type()) {
      return Status::Internal("union: column type mismatch on '" +
                              a.name(i) + "'");
    }
    auto merged = std::make_shared<Column>(ca.type());
    switch (ca.type()) {
      case ColType::kInt:
        merged->ints() = ca.ints();
        merged->ints().insert(merged->ints().end(), cb.ints().begin(),
                              cb.ints().end());
        break;
      case ColType::kDbl:
        merged->dbls() = ca.dbls();
        merged->dbls().insert(merged->dbls().end(), cb.dbls().begin(),
                              cb.dbls().end());
        break;
      case ColType::kStr:
        merged->strs() = ca.strs();
        merged->strs().insert(merged->strs().end(), cb.strs().begin(),
                              cb.strs().end());
        break;
      case ColType::kBool:
        merged->bools() = ca.bools();
        merged->bools().insert(merged->bools().end(), cb.bools().begin(),
                               cb.bools().end());
        break;
      case ColType::kItem:
        merged->items() = ca.items();
        merged->items().insert(merged->items().end(), cb.items().begin(),
                               cb.items().end());
        break;
    }
    out.AddCol(a.name(i), std::move(merged));
  }
  return out;
}

Result<Table> GroupAgg(const Table& t, const std::string& group_col,
                       const std::string& val_col, AggKind kind,
                       const StringPool& pool, const std::string& out_group,
                       const std::string& out_val, ThreadPool* tp,
                       const KernelTuning& kt, KernelPhases* phases) {
  PF_ASSIGN_OR_RETURN(ColumnPtr gcol, t.GetCol(group_col));
  if (gcol->type() != ColType::kInt) {
    return Status::Internal("group column must be int");
  }
  const Column* vcol = nullptr;
  if (kind != AggKind::kCount || !val_col.empty()) {
    PF_ASSIGN_OR_RETURN(ColumnPtr v, t.GetCol(val_col));
    if (v->type() != ColType::kItem) {
      return Status::Internal("aggregate value column must be item");
    }
    vcol = v.get();
  }

  struct Acc {
    int64_t count = 0;
    double dsum = 0;
    int64_t isum = 0;
    bool all_int = true;
    Item extreme{};
    bool has_extreme = false;
  };

  const auto& groups = gcol->ints();
  size_t n = t.rows();

  auto accumulate = [&](Acc* a, size_t r) -> Status {
    a->count++;
    if (vcol == nullptr) return Status::OK();
    const Item& v = vcol->items()[r];
    switch (kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg: {
        PF_ASSIGN_OR_RETURN(double d, ItemToDouble(v, pool));
        a->dsum += d;
        if (v.kind == ItemKind::kInt) {
          a->isum += v.AsInt();
        } else {
          a->all_int = false;
        }
        break;
      }
      case AggKind::kMax:
      case AggKind::kMin: {
        if (!a->has_extreme) {
          a->extreme = v;
          a->has_extreme = true;
        } else {
          PF_ASSIGN_OR_RETURN(int cmp,
                              ItemCompareValue(v, a->extreme, pool));
          if ((kind == AggKind::kMax && cmp > 0) ||
              (kind == AggKind::kMin && cmp < 0)) {
            a->extreme = v;
          }
        }
        break;
      }
    }
    return Status::OK();
  };

  std::vector<int64_t> group_order;
  std::unordered_map<int64_t, Acc> accs;

  if (n < kGroupAggParRows) {
    accs.reserve(n * 2);
    for (size_t r = 0; r < n; ++r) {
      auto [it, inserted] = accs.try_emplace(groups[r]);
      if (inserted) group_order.push_back(groups[r]);
      PF_RETURN_NOT_OK(accumulate(&it->second, r));
    }
  } else {
    // Morsel-wise partial aggregation. The algorithm switch above and
    // the morsel split both depend on the row count ONLY — the grain is
    // deliberately the FIXED kMorselRows, never the tuning — so the FP
    // sum association, and therefore the result bytes, are the same at
    // every thread count AND every tuning (tp == nullptr runs the same
    // morsels inline).
    struct Partial {
      std::vector<int64_t> order;
      std::unordered_map<int64_t, Acc> accs;
    };
    size_t chunks = ThreadPool::NumChunks(n, kMorselRows);
    std::vector<Partial> parts(chunks);
    int64_t t0 = phases != nullptr ? NowNs() : 0;
    PF_RETURN_NOT_OK(ParallelForStatus(
        tp, n, kMorselRows, [&](size_t c, size_t lo, size_t hi) -> Status {
          Partial& p = parts[c];
          for (size_t r = lo; r < hi; ++r) {
            auto [it, inserted] = p.accs.try_emplace(groups[r]);
            if (inserted) p.order.push_back(groups[r]);
            PF_RETURN_NOT_OK(accumulate(&it->second, r));
          }
          return Status::OK();
        }));
    if (phases != nullptr) {
      int64_t t1 = NowNs();
      phases->partition_ns += t1 - t0;
      t0 = t1;
    }
    // Partitioned combine: groups are radix-partitioned across
    // 2^radix_bits private merge maps, so no shared map is built.
    // Each chunk's group list is bucketed by partition first (storing
    // positions, so per-partition scans still see ascending chunk
    // positions); each partition then folds its groups' partials
    // visiting chunks in ascending order — per group that is exactly
    // the chunk-order fold the serial merge performed, so the FP
    // association is unchanged. The first (chunk, pos) sighting of
    // each group is recorded, and sorting those keys rebuilds the
    // global first-appearance group order: every group's first
    // sighting is unique, and (chunk, pos) ascending is precisely
    // "first appearance over the concatenated morsels".
    const int bits = kt.Clamped().radix_bits;
    const size_t nparts = size_t{1} << bits;
    std::vector<std::vector<uint32_t>> pbuckets(chunks * nparts);
    ParallelFor(tp, chunks, 1, [&](size_t c, size_t, size_t) {
      const auto& order = parts[c].order;
      for (size_t pos = 0; pos < order.size(); ++pos) {
        size_t p = static_cast<size_t>(
            MixHash(static_cast<size_t>(order[pos])) >> (64 - bits));
        pbuckets[c * nparts + p].push_back(static_cast<uint32_t>(pos));
      }
    });
    struct First {
      uint32_t chunk;
      uint32_t pos;
      int64_t g;
    };
    std::vector<std::unordered_map<int64_t, Acc>> pmerged(nparts);
    std::vector<std::vector<First>> pfirsts(nparts);
    PF_RETURN_NOT_OK(ParallelForStatus(
        tp, nparts, 1, [&](size_t p, size_t, size_t) -> Status {
          auto& merged = pmerged[p];
          auto& firsts = pfirsts[p];
          for (size_t c = 0; c < chunks; ++c) {
            for (uint32_t pos : pbuckets[c * nparts + p]) {
              int64_t g = parts[c].order[pos];
              const Acc& src = parts[c].accs.at(g);
              auto [it, inserted] = merged.try_emplace(g);
              Acc& dst = it->second;
              if (inserted) {
                dst = src;
                firsts.push_back({static_cast<uint32_t>(c), pos, g});
                continue;
              }
              dst.count += src.count;
              dst.dsum += src.dsum;
              dst.isum += src.isum;
              dst.all_int = dst.all_int && src.all_int;
              if (src.has_extreme) {
                if (!dst.has_extreme) {
                  dst.extreme = src.extreme;
                  dst.has_extreme = true;
                } else {
                  PF_ASSIGN_OR_RETURN(
                      int cmp,
                      ItemCompareValue(src.extreme, dst.extreme, pool));
                  // Strict comparison: on ties the earlier morsel's
                  // item stays, matching the serial first-wins rule.
                  if ((kind == AggKind::kMax && cmp > 0) ||
                      (kind == AggKind::kMin && cmp < 0)) {
                    dst.extreme = src.extreme;
                  }
                }
              }
            }
          }
          return Status::OK();
        }));
    size_t ngroups = 0;
    for (const auto& f : pfirsts) ngroups += f.size();
    std::vector<First> firsts;
    firsts.reserve(ngroups);
    for (auto& f : pfirsts) {
      firsts.insert(firsts.end(), f.begin(), f.end());
    }
    std::sort(firsts.begin(), firsts.end(),
              [](const First& a, const First& b) {
                return a.chunk != b.chunk ? a.chunk < b.chunk
                                          : a.pos < b.pos;
              });
    group_order.reserve(ngroups);
    for (const First& f : firsts) group_order.push_back(f.g);
    // The partition maps are disjoint, so moving their nodes into the
    // output map never collides.
    accs.reserve(ngroups * 2);
    for (auto& m : pmerged) accs.merge(m);
    if (phases != nullptr) phases->merge_ns += NowNs() - t0;
  }

  auto out_g = Column::MakeInt(group_order.size());
  auto out_v = Column::MakeItem(group_order.size());
  for (int64_t g : group_order) {
    const Acc& a = accs[g];
    out_g->ints().push_back(g);
    switch (kind) {
      case AggKind::kCount:
        out_v->items().push_back(Item::Int(a.count));
        break;
      case AggKind::kSum:
        out_v->items().push_back(a.all_int ? Item::Int(a.isum)
                                           : Item::Dbl(a.dsum));
        break;
      case AggKind::kAvg:
        out_v->items().push_back(
            Item::Dbl(a.dsum / static_cast<double>(a.count)));
        break;
      case AggKind::kMax:
      case AggKind::kMin:
        out_v->items().push_back(a.extreme);
        break;
    }
  }
  Table out;
  out.AddCol(out_group, std::move(out_g));
  out.AddCol(out_val, std::move(out_v));
  return out;
}

}  // namespace pathfinder::bat

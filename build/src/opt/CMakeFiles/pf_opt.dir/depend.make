# Empty dependencies file for pf_opt.
# This may be replaced when dependencies are built.

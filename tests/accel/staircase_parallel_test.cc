// Parallel staircase join must be indistinguishable from the serial
// evaluation: identical result sequences AND identical statistics, for
// every axis, at several pool sizes. Runs on a generated XMark instance
// large enough that the morsel-parallel scan paths actually engage
// (the grain thresholds are a few thousand rows/contexts).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/step.h"
#include "xmark/generator.h"

namespace pathfinder::accel {
namespace {

using xml::Document;
using xml::Pre;

constexpr Axis kAllAxes[] = {
    Axis::kChild,          Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kSelf,
    Axis::kParent,         Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kPreceding,      Axis::kFollowingSibling,
    Axis::kPrecedingSibling, Axis::kAttribute,
};

class StaircaseParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool_ = new StringPool;
    auto d = xmark::GenerateXMark(0.02, 42, pool_);
    ASSERT_TRUE(d.ok());
    doc_ = new Document(std::move(*d));
    ASSERT_GT(doc_->num_nodes(), 50000u);
  }

  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
    delete pool_;
    pool_ = nullptr;
  }

  // Deterministic spread of `n` non-attribute contexts across the
  // document (same idiom as bench_staircase).
  static std::vector<Pre> SpreadContexts(size_t n) {
    std::vector<Pre> contexts;
    Pre step = std::max<Pre>(1, doc_->num_nodes() / static_cast<Pre>(n));
    for (Pre v = 1; v < doc_->num_nodes() && contexts.size() < n;
         v += step) {
      Pre u = v;
      while (u < doc_->num_nodes() && doc_->IsAttr(u)) ++u;
      if (u < doc_->num_nodes() &&
          (contexts.empty() || contexts.back() < u)) {
        contexts.push_back(u);
      }
    }
    return contexts;
  }

  static void ExpectIdentical(const std::vector<Pre>& contexts, Axis axis,
                              const NodeTest& test) {
    std::vector<Pre> serial_out;
    StaircaseStats serial_st;
    StaircaseJoin(*doc_, contexts, axis, test, &serial_out, &serial_st,
                  nullptr);
    ThreadPool pool2(2), pool7(7);
    for (ThreadPool* tp : {&pool2, &pool7}) {
      std::vector<Pre> out;
      StaircaseStats st;
      StaircaseJoin(*doc_, contexts, axis, test, &out, &st, tp);
      EXPECT_EQ(out, serial_out) << AxisName(axis);
      EXPECT_EQ(st.contexts_in, serial_st.contexts_in) << AxisName(axis);
      EXPECT_EQ(st.contexts_pruned, serial_st.contexts_pruned)
          << AxisName(axis);
      EXPECT_EQ(st.nodes_scanned, serial_st.nodes_scanned)
          << AxisName(axis);
      EXPECT_EQ(st.results, serial_st.results) << AxisName(axis);
    }
  }

  static StringPool* pool_;
  static Document* doc_;
};

StringPool* StaircaseParallelTest::pool_ = nullptr;
Document* StaircaseParallelTest::doc_ = nullptr;

TEST_F(StaircaseParallelTest, AllAxesManyContexts) {
  std::vector<Pre> contexts = SpreadContexts(5000);
  ASSERT_GT(contexts.size(), 3000u);
  for (Axis axis : kAllAxes) {
    ExpectIdentical(contexts, axis, NodeTest::Element());
    ExpectIdentical(contexts, axis, NodeTest::AnyKind());
  }
}

TEST_F(StaircaseParallelTest, SingleRootContextSplitsTheScan) {
  // One context covering the whole document: the flat segment
  // decomposition must still split the scan into morsels (this is the
  // //x case that dominates real query plans).
  std::vector<Pre> contexts = {1};
  ExpectIdentical(contexts, Axis::kDescendant, NodeTest::Element());
  ExpectIdentical(contexts, Axis::kDescendantOrSelf, NodeTest::AnyKind());
  ExpectIdentical(contexts, Axis::kFollowing, NodeTest::Element());
}

TEST_F(StaircaseParallelTest, RightmostContextPreceding) {
  std::vector<Pre> contexts = {doc_->num_nodes() - 1};
  ExpectIdentical(contexts, Axis::kPreceding, NodeTest::Element());
}

TEST_F(StaircaseParallelTest, NestedContextsPruneBeforeParallelScan) {
  // Mix covering and covered contexts: pruning (serial) must produce
  // the same survivor set the parallel scan then decomposes.
  std::vector<Pre> contexts = SpreadContexts(2000);
  std::vector<Pre> nested;
  for (Pre v : contexts) {
    nested.push_back(v);
    // Also add v's first child when it has one (a covered context).
    Pre end = v + doc_->size(v);
    for (Pre w = v + 1; w <= end && nested.size() < 4000; ++w) {
      if (!doc_->IsAttr(w)) {
        nested.push_back(w);
        break;
      }
    }
  }
  std::sort(nested.begin(), nested.end());
  nested.erase(std::unique(nested.begin(), nested.end()), nested.end());
  for (Axis axis : {Axis::kDescendant, Axis::kDescendantOrSelf,
                    Axis::kAncestor, Axis::kChild}) {
    ExpectIdentical(nested, axis, NodeTest::Element());
  }
}

}  // namespace
}  // namespace pathfinder::accel

#include "xml/path_summary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "xml/database.h"
#include "xml/parser.h"
#include "xml/tree_builder.h"

namespace pathfinder::xml {
namespace {

using StepAxis = PathSummary::StepAxis;
using StepTest = PathSummary::StepTest;

Document Parse(std::string_view text, StringPool* pool) {
  auto doc = ParseXml(text, pool);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

// Path id of the chain root/tag1/tag2/... (elements only), -1 if absent.
int32_t FindPath(const PathSummary& sum, const StringPool& pool,
                 const std::vector<std::string>& tags) {
  int32_t cur = 0;
  for (const std::string& tag : tags) {
    int32_t next = -1;
    for (int32_t c : sum.path(cur).children) {
      const PathNode& p = sum.path(c);
      if (!p.is_attr && pool.Get(p.tag) == tag) {
        next = c;
        break;
      }
    }
    if (next < 0) return -1;
    cur = next;
  }
  return cur;
}

// Every element/attribute pre of `doc` appears in exactly one partition
// slice, each slice is strictly ascending, levels/kinds agree with the
// owning path, and path counts sum to the partition store size.
void CheckPartitionInvariants(const Document& doc, const PathSummary& sum) {
  std::set<Pre> seen;
  uint64_t total = 0;
  for (int32_t id = 0; id < static_cast<int32_t>(sum.num_paths()); ++id) {
    const PathNode& p = sum.path(id);
    size_t len = 0;
    const Pre* part = sum.partition(id, &len);
    if (id == 0) {
      EXPECT_EQ(len, 0u);
      continue;
    }
    EXPECT_EQ(len, p.count);
    total += len;
    for (size_t i = 0; i < len; ++i) {
      Pre v = part[i];
      if (i > 0) EXPECT_LT(part[i - 1], v) << "partition not sorted";
      EXPECT_TRUE(seen.insert(v).second) << "pre " << v << " in two partitions";
      EXPECT_EQ(doc.level(v), p.level);
      EXPECT_EQ(doc.prop(v), p.tag);
      EXPECT_EQ(doc.IsAttr(v), p.is_attr);
    }
  }
  EXPECT_EQ(total, sum.partitions().size());
  // Exactly the element + attribute nodes are partitioned.
  for (Pre v = 0; v < doc.num_nodes(); ++v) {
    bool partitioned =
        doc.kind(v) == NodeKind::kElem || doc.kind(v) == NodeKind::kAttr;
    EXPECT_EQ(seen.count(v) > 0, partitioned) << "pre " << v;
  }
}

TEST(PathSummaryTest, MinimalDocument) {
  StringPool pool;
  Document doc = Parse("<a/>", &pool);
  PathSummary sum = BuildPathSummary(doc);
  ASSERT_EQ(sum.num_paths(), 2u);
  EXPECT_EQ(sum.num_element_paths(), 1u);
  EXPECT_EQ(sum.path(0).parent, -1);
  const PathNode& a = sum.path(1);
  EXPECT_EQ(pool.Get(a.tag), "a");
  EXPECT_EQ(a.parent, 0);
  EXPECT_EQ(a.level, 1);
  EXPECT_EQ(a.count, 1u);
  EXPECT_FALSE(a.is_attr);
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, SameTagDifferentPathsStayDistinct) {
  StringPool pool;
  // /a/b occurs twice, /a/c/b once: same tag, two distinct paths.
  Document doc = Parse("<a><b/><b/><c><b/></c></a>", &pool);
  PathSummary sum = BuildPathSummary(doc);
  int32_t ab = FindPath(sum, pool, {"a", "b"});
  int32_t acb = FindPath(sum, pool, {"a", "c", "b"});
  ASSERT_GE(ab, 0);
  ASSERT_GE(acb, 0);
  EXPECT_NE(ab, acb);
  EXPECT_EQ(sum.path(ab).count, 2u);
  EXPECT_EQ(sum.path(acb).count, 1u);
  StrId b_tag = sum.path(ab).tag;
  const std::vector<int32_t>* by_tag = sum.ElementPathsByTag(b_tag);
  ASSERT_NE(by_tag, nullptr);
  EXPECT_EQ(*by_tag, (std::vector<int32_t>{ab, acb}));
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, AttributePaths) {
  StringPool pool;
  Document doc = Parse("<a id=\"1\"><b id=\"2\" x=\"3\"/><b id=\"4\"/></a>",
                       &pool);
  PathSummary sum = BuildPathSummary(doc);
  int32_t a = FindPath(sum, pool, {"a"});
  int32_t b = FindPath(sum, pool, {"a", "b"});
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  int attr_paths = 0;
  for (int32_t id = 0; id < static_cast<int32_t>(sum.num_paths()); ++id) {
    if (sum.path(id).is_attr) ++attr_paths;
  }
  EXPECT_EQ(attr_paths, 3);  // /a/@id, /a/b/@id, /a/b/@x
  // @id occurs on two distinct paths.
  int32_t id_attr = -1;
  for (int32_t c : sum.path(b).children) {
    if (sum.path(c).is_attr && pool.Get(sum.path(c).tag) == "id") id_attr = c;
  }
  ASSERT_GE(id_attr, 0);
  EXPECT_EQ(sum.path(id_attr).count, 2u);
  const std::vector<int32_t>* by_name = sum.AttrPathsByName(sum.path(id_attr).tag);
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->size(), 2u);
  // Attribute paths are not element paths.
  EXPECT_EQ(sum.num_element_paths(), sum.num_paths() - 1 - attr_paths);
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, RecursiveNestingMakesOnePathPerDepth) {
  StringPool pool;
  // section nested inside section: recursion the tag-level DocStats
  // cannot distinguish, but the summary keeps one path per depth.
  std::string text = "<doc>";
  constexpr int kDepth = 12;
  for (int i = 0; i < kDepth; ++i) text += "<section><title/>";
  for (int i = 0; i < kDepth; ++i) text += "</section>";
  text += "</doc>";
  Document doc = Parse(text, &pool);
  PathSummary sum = BuildPathSummary(doc);
  StrId sec = sum.path(FindPath(sum, pool, {"doc", "section"})).tag;
  const std::vector<int32_t>* secs = sum.ElementPathsByTag(sec);
  ASSERT_NE(secs, nullptr);
  EXPECT_EQ(secs->size(), static_cast<size_t>(kDepth));
  for (int32_t id : *secs) EXPECT_EQ(sum.path(id).count, 1u);
  // Levels 2, 3, ..., kDepth + 1.
  std::vector<int> levels;
  for (int32_t id : *secs) levels.push_back(sum.path(id).level);
  std::sort(levels.begin(), levels.end());
  for (int i = 0; i < kDepth; ++i) EXPECT_EQ(levels[i], i + 2);
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, DeepNestingChain) {
  StringPool pool;
  constexpr int kDepth = 200;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "<e" + std::to_string(i) + ">";
  for (int i = kDepth - 1; i >= 0; --i)
    text += "</e" + std::to_string(i) + ">";
  Document doc = Parse(text, &pool);
  PathSummary sum = BuildPathSummary(doc);
  EXPECT_EQ(sum.num_paths(), static_cast<size_t>(kDepth) + 1);
  EXPECT_EQ(sum.num_element_paths(), static_cast<size_t>(kDepth));
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, MixedContentCountsTextChildren) {
  StringPool pool;
  Document doc = Parse(
      "<p>lead<b>bold</b>mid<i>ital</i>tail<b>more</b></p>", &pool);
  PathSummary sum = BuildPathSummary(doc);
  int32_t p = FindPath(sum, pool, {"p"});
  int32_t b = FindPath(sum, pool, {"p", "b"});
  int32_t i = FindPath(sum, pool, {"p", "i"});
  ASSERT_GE(p, 0);
  ASSERT_GE(b, 0);
  ASSERT_GE(i, 0);
  EXPECT_EQ(sum.path(p).text_children, 3u);  // lead, mid, tail
  EXPECT_EQ(sum.path(b).count, 2u);
  EXPECT_EQ(sum.path(b).text_children, 2u);  // bold, more
  EXPECT_EQ(sum.path(i).text_children, 1u);
  EXPECT_EQ(sum.TextCountOf({p, b, i}), 6u);
  CheckPartitionInvariants(doc, sum);
}

TEST(PathSummaryTest, CommentsAndPIsAreNotPartitioned) {
  StringPool pool;
  Document doc =
      Parse("<a><!--c--><b/><?pi data?><b>t</b></a>", &pool);
  PathSummary sum = BuildPathSummary(doc);
  int32_t b = FindPath(sum, pool, {"a", "b"});
  ASSERT_GE(b, 0);
  EXPECT_EQ(sum.path(b).count, 2u);
  CheckPartitionInvariants(doc, sum);
}

// --- ResolveStep -------------------------------------------------------

class ResolveStepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = Parse(
        "<site><regions><africa><item id=\"1\"><name/></item>"
        "<item id=\"2\"><name/></item></africa>"
        "<asia><item id=\"3\"><name/></item></asia></regions>"
        "<people><person id=\"4\"><name/></person></people></site>",
        &pool_);
    sum_ = BuildPathSummary(doc_);
  }

  std::vector<int32_t> Resolve(StepAxis axis, StepTest test,
                               const std::string& name,
                               const std::vector<int32_t>& in) {
    std::vector<int32_t> out;
    sum_.ResolveStep(axis, test, name.empty() ? 0 : pool_.Intern(name), in,
                     &out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end());
    return out;
  }

  StringPool pool_;
  Document doc_;
  PathSummary sum_;
};

TEST_F(ResolveStepTest, ChildName) {
  auto site = Resolve(StepAxis::kChild, StepTest::kName, "site", {0});
  ASSERT_EQ(site.size(), 1u);
  auto regions = Resolve(StepAxis::kChild, StepTest::kName, "regions", site);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(sum_.CountOf(regions), 1u);
  EXPECT_TRUE(
      Resolve(StepAxis::kChild, StepTest::kName, "nosuch", site).empty());
}

TEST_F(ResolveStepTest, ChildWildcardSelectsAllElementChildren) {
  auto site = Resolve(StepAxis::kChild, StepTest::kName, "site", {0});
  auto kids = Resolve(StepAxis::kChild, StepTest::kElement, "", site);
  EXPECT_EQ(kids.size(), 2u);  // regions, people
}

TEST_F(ResolveStepTest, DescendantName) {
  auto items = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  EXPECT_EQ(items.size(), 2u);  // africa/item and asia/item paths
  EXPECT_EQ(sum_.CountOf(items), 3u);
  auto names = Resolve(StepAxis::kDescendant, StepTest::kName, "name", {0});
  EXPECT_EQ(names.size(), 3u);  // under africa/item, asia/item, person
  EXPECT_EQ(sum_.CountOf(names), 4u);
}

TEST_F(ResolveStepTest, DescendantOrSelfIncludesInput) {
  auto items = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  auto orself =
      Resolve(StepAxis::kDescendantOrSelf, StepTest::kName, "item", items);
  EXPECT_EQ(orself, items);
  auto all = Resolve(StepAxis::kDescendantOrSelf, StepTest::kElement, "",
                     items);
  EXPECT_EQ(sum_.CountOf(all), 3u + 3u);  // items plus their name children
}

TEST_F(ResolveStepTest, SelfFiltersByTest) {
  auto items = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  EXPECT_EQ(Resolve(StepAxis::kSelf, StepTest::kName, "item", items), items);
  EXPECT_TRUE(
      Resolve(StepAxis::kSelf, StepTest::kName, "name", items).empty());
  EXPECT_EQ(Resolve(StepAxis::kSelf, StepTest::kAnyNode, "", items), items);
}

TEST_F(ResolveStepTest, AttributeAxis) {
  auto items = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  auto ids = Resolve(StepAxis::kAttribute, StepTest::kName, "id", items);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(sum_.CountOf(ids), 3u);
  for (int32_t id : ids) EXPECT_TRUE(sum_.path(id).is_attr);
  // * and node() on the attribute axis both select every attribute.
  EXPECT_EQ(Resolve(StepAxis::kAttribute, StepTest::kElement, "", items), ids);
  EXPECT_EQ(Resolve(StepAxis::kAttribute, StepTest::kAnyNode, "", items), ids);
}

TEST_F(ResolveStepTest, AttributesHaveNoChildren) {
  auto ids = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  ids = Resolve(StepAxis::kAttribute, StepTest::kName, "id", ids);
  EXPECT_TRUE(Resolve(StepAxis::kChild, StepTest::kElement, "", ids).empty());
  EXPECT_TRUE(
      Resolve(StepAxis::kDescendant, StepTest::kElement, "", ids).empty());
}

TEST_F(ResolveStepTest, GatherPartitionsIsDocumentOrdered) {
  auto items = Resolve(StepAxis::kDescendant, StepTest::kName, "item", {0});
  std::vector<Pre> pres;
  size_t n = sum_.GatherPartitions(items, 0, doc_.num_nodes() - 1, &pres);
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(pres.size(), 3u);
  EXPECT_TRUE(std::is_sorted(pres.begin(), pres.end()));
  for (Pre v : pres) {
    EXPECT_EQ(doc_.kind(v), NodeKind::kElem);
    EXPECT_EQ(pool_.Get(doc_.prop(v)), "item");
  }
  // Range restriction: clip to the second item onwards.
  std::vector<Pre> tail;
  sum_.GatherPartitions(items, pres[1], doc_.num_nodes() - 1, &tail);
  EXPECT_EQ(tail, (std::vector<Pre>{pres[1], pres[2]}));
  std::vector<Pre> none;
  EXPECT_EQ(sum_.GatherPartitions(items, pres[2] + 1, pres[2], &none), 0u);
}

// --- Randomized invariants --------------------------------------------

void BuildRandomTree(Rng* rng, TreeBuilder* b, int depth) {
  int kids = static_cast<int>(rng->Range(0, depth > 4 ? 1 : 4));
  for (int i = 0; i < kids; ++i) {
    switch (rng->Below(5)) {
      case 0:
        b->Text("t" + std::to_string(rng->Below(50)));
        break;
      case 1:
        b->Comment("c");
        break;
      default: {
        b->StartElem("e" + std::to_string(rng->Below(4)));
        if (rng->Chance(0.4)) {
          b->Attr("k" + std::to_string(rng->Below(3)), "v");
        }
        BuildRandomTree(rng, b, depth + 1);
        b->EndElem();
        break;
      }
    }
  }
}

class RandomSummaryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSummaryTest, PartitionInvariantsHold) {
  StringPool pool;
  Rng rng(GetParam());
  TreeBuilder b(&pool);
  b.StartElem("root");
  BuildRandomTree(&rng, &b, 0);
  b.EndElem();
  auto doc = std::move(b).Finish().value();
  PathSummary sum = BuildPathSummary(doc);
  CheckPartitionInvariants(doc, sum);
  EXPECT_GT(sum.MemoryBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSummaryTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(PathSummaryTest, DatabasePublishesSummary) {
  Database db;
  Document doc = Parse("<a><b/></a>", db.pool());
  FragId id = db.AddDocument("d.xml", std::move(doc));
  const Document& stored = db.doc(id);
  ASSERT_NE(stored.summary(), nullptr);
  EXPECT_EQ(stored.summary()->num_element_paths(), 2u);
  EXPECT_NE(stored.shared_summary(), nullptr);
}

}  // namespace
}  // namespace pathfinder::xml

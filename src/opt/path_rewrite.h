#ifndef PATHFINDER_OPT_PATH_REWRITE_H_
#define PATHFINDER_OPT_PATH_REWRITE_H_

#include "algebra/op.h"
#include "base/result.h"

namespace pathfinder::opt {

struct PathRewriteStats {
  /// Step chains collapsed into kPathScan operators.
  int chains_collapsed = 0;
};

/// Collapse maximal chains of purely *structural* axis steps rooted at
/// a document access into single kPathScan operators, so the executor
/// can answer them directly from the document's path summary
/// (xml/path_summary.h) instead of running one staircase join per step.
///
/// A chain is matched top-down from its outermost kStep: each link must
/// be a step over a structural axis (child, descendant,
/// descendant-or-self, self, attribute) with an element-shaped node
/// test (name, element, or — for non-final links only — any-kind),
/// separated from the next link by row-shape-preserving plumbing
/// (identity iter/item projections, rownum/rank/attach/sort), and the
/// innermost link's context must be a kDocRoot. Chains shorter than
/// two steps are left alone (the staircase join's own partition pruning
/// already covers single steps).
///
/// The rewrite is purely structural — it needs no statistics and no
/// database — and preserves results exactly: kPathScan is defined as
/// the composition of its steps. Returns a fresh DAG where chains were
/// collapsed; untouched subtrees are shared with the input.
Result<algebra::OpPtr> RewritePathChains(const algebra::OpPtr& root,
                                         PathRewriteStats* stats = nullptr);

}  // namespace pathfinder::opt

#endif  // PATHFINDER_OPT_PATH_REWRITE_H_

#ifndef PATHFINDER_XML_DATABASE_H_
#define PATHFINDER_XML_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/string_pool.h"
#include "xml/document.h"

namespace pathfinder::xml {

/// Id of a document fragment. Persistent documents get dense ids
/// starting at 0; fragments constructed during query evaluation are
/// appended after them (see engine::FragmentStore).
using FragId = uint32_t;

/// The persistent store: loaded documents plus the shared property
/// StringPool (the paper's property BATs).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Register a document under `name` (the fn:doc argument).
  FragId AddDocument(const std::string& name, Document doc);

  /// Parse and register.
  Result<FragId> LoadXml(const std::string& name, std::string_view xml);

  Result<FragId> FindDocument(const std::string& name) const;

  size_t num_documents() const { return docs_.size(); }
  const Document& doc(FragId id) const { return *docs_[id]; }
  const std::string& doc_name(FragId id) const { return names_[id]; }

  StringPool* pool() { return &pool_; }
  const StringPool& pool() const { return pool_; }

  /// Storage accounting (Sec. 3.1): encoding columns + unique property
  /// payload bytes.
  size_t EncodingBytes() const;
  size_t PoolPayloadBytes() const { return pool_.payload_bytes(); }

  /// Monotonic content version, bumped on every document (re)registration.
  /// Caches keyed on query/document content compare generations and drop
  /// their entries when the store changed (see engine::QueryCache).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  StringPool pool_;
  std::atomic<uint64_t> generation_{0};
  std::vector<std::unique_ptr<Document>> docs_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, FragId> by_name_;
};

}  // namespace pathfinder::xml

#endif  // PATHFINDER_XML_DATABASE_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/op.cc" "src/algebra/CMakeFiles/pf_algebra.dir/op.cc.o" "gcc" "src/algebra/CMakeFiles/pf_algebra.dir/op.cc.o.d"
  "/root/repo/src/algebra/print.cc" "src/algebra/CMakeFiles/pf_algebra.dir/print.cc.o" "gcc" "src/algebra/CMakeFiles/pf_algebra.dir/print.cc.o.d"
  "/root/repo/src/algebra/schema.cc" "src/algebra/CMakeFiles/pf_algebra.dir/schema.cc.o" "gcc" "src/algebra/CMakeFiles/pf_algebra.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pf_base.dir/DependInfo.cmake"
  "/root/repo/build/src/bat/CMakeFiles/pf_bat.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/pf_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/pf_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

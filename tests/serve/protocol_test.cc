// Line-protocol tests: JSON parsing, frame validation, wire round
// trips against a live server, and a seeded protocol fuzzer — garbage
// on the socket must never crash or hang pf_serve; every connection
// ends in a clean error reply or a clean close.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "xml/database.h"

namespace pathfinder::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ScalarsRoundTrip) {
  auto v = ParseJson(R"({"a":1.5,"b":"x\ny","c":true,"d":null,"e":[1,2]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("a")->num, 1.5);
  EXPECT_EQ(v->Find("b")->str, "x\ny");
  EXPECT_TRUE(v->Find("c")->b);
  EXPECT_EQ(v->Find("d")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v->Find("e")->elems.size(), 2u);
  EXPECT_EQ(v->Find("e")->elems[1].num, 2.0);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, UnicodeEscapes) {
  auto v = ParseJson(R"("a\u00e9\ud83d\ude00b")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str, "a\xC3\xA9\xF0\x9F\x98\x80"
                    "b");
}

TEST(JsonTest, RejectsMalformed) {
  const char* bad[] = {
      "",        "{",        "[1,",       "{\"a\":}",   "tru",
      "1.2.3",   "\"\\x\"",  "\"\\ud800\"", "01x",      "{\"a\":1}extra",
      "\"unterminated", "nan", "[1 2]",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(ParseJson(s).ok()) << "accepted: " << s;
  }
}

TEST(JsonTest, DepthCapStopsNestingBombs) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '[';
  for (int i = 0; i < 500; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonQuote("a\"b\\c\n\x01"), "\"a\\\"b\\\\c\\n\\u0001\"");
  auto back = ParseJson(JsonQuote("a\"b\\c\n\x01"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->str, "a\"b\\c\n\x01");
}

// ------------------------------------------------------------- framing --

TEST(ParseRequestTest, AllVerbs) {
  auto ping = ParseRequest(R"({"op":"ping"})");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, Verb::kPing);

  auto reg = ParseRequest(R"({"op":"register","name":"d.xml","xml":"<a/>"})");
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->verb, Verb::kRegister);
  EXPECT_EQ(reg->name, "d.xml");
  EXPECT_EQ(reg->xml, "<a/>");

  auto q = ParseRequest(R"({"op":"query","id":"q1","q":"1+2","doc":"d.xml"})");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->verb, Verb::kQuery);
  EXPECT_EQ(q->id, "q1");
  EXPECT_EQ(q->query, "1+2");
  EXPECT_EQ(q->doc, "d.xml");

  auto c = ParseRequest(R"({"op":"cancel","id":"q1"})");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->verb, Verb::kCancel);

  auto s = ParseRequest(R"({"op":"stats"})");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->verb, Verb::kStats);
}

TEST(ParseRequestTest, UpdateFrames) {
  auto ins = ParseRequest(
      R"({"op":"update","id":"u1","doc":"d.xml","action":"insert",)"
      R"("target":1,"position":2,"xml":"<d/>"})");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->verb, Verb::kUpdate);
  EXPECT_EQ(ins->id, "u1");
  EXPECT_EQ(ins->doc, "d.xml");
  EXPECT_EQ(ins->action, "insert");
  EXPECT_EQ(ins->target, 1);
  EXPECT_EQ(ins->position, 2);
  EXPECT_EQ(ins->xml, "<d/>");

  // Position is optional and defaults to append.
  auto del = ParseRequest(
      R"({"op":"update","id":"u2","doc":"d.xml","action":"delete","target":4})");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->action, "delete");
  EXPECT_EQ(del->target, 4);
  EXPECT_EQ(del->position, -1);

  // Replace with an omitted value clears the node's content.
  auto rep = ParseRequest(
      R"({"op":"update","id":"u3","doc":"d.xml","action":"replace",)"
      R"("target":3,"value":"9"})");
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->action, "replace");
  EXPECT_EQ(rep->value, "9");
  auto clear = ParseRequest(
      R"({"op":"update","id":"u4","doc":"d.xml","action":"replace","target":3})");
  ASSERT_TRUE(clear.ok());
  EXPECT_TRUE(clear->value.empty());
}

TEST(ParseRequestTest, RejectsBadUpdateFrames) {
  const char* bad[] = {
      // missing target
      R"({"op":"update","id":"u","doc":"d","action":"delete"})",
      // negative / overflowing / mistyped target
      R"({"op":"update","id":"u","doc":"d","action":"delete","target":-1})",
      R"({"op":"update","id":"u","doc":"d","action":"delete","target":4294967296})",
      R"({"op":"update","id":"u","doc":"d","action":"delete","target":"1"})",
      // unknown action
      R"({"op":"update","id":"u","doc":"d","action":"rename","target":1})",
      // insert without a fragment
      R"({"op":"update","id":"u","doc":"d","action":"insert","target":1})",
      // mistyped replace value / position
      R"({"op":"update","id":"u","doc":"d","action":"replace","target":1,"value":7})",
      R"({"op":"update","id":"u","doc":"d","action":"delete","target":1,"position":"x"})",
      // missing or empty id / doc
      R"({"op":"update","doc":"d","action":"delete","target":1})",
      R"({"op":"update","id":"","doc":"d","action":"delete","target":1})",
      R"({"op":"update","id":"u","action":"delete","target":1})",
      R"({"op":"update","id":"u","doc":"","action":"delete","target":1})",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(ParseRequest(s).ok()) << "accepted: " << s;
  }
}

TEST(ParseRequestTest, RejectsBadFrames) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                                  // not an object
      R"({"q":"1+2"})",                           // missing op
      R"({"op":"frobnicate"})",                   // unknown verb
      R"({"op":"query","id":"q1"})",              // missing q
      R"({"op":"query","q":"1"})",                // missing id
      R"({"op":"query","id":"","q":"1"})",        // empty id
      R"({"op":"query","id":7,"q":"1"})",         // mistyped id
      R"({"op":"query","id":"a","q":"1","doc":3})",  // mistyped doc
      R"({"op":"register","name":"d.xml"})",      // missing xml
      R"({"op":"register","name":"","xml":""})",  // empty name
      R"({"op":"cancel"})",                       // missing id
  };
  for (const char* s : bad) {
    EXPECT_FALSE(ParseRequest(s).ok()) << "accepted: " << s;
  }
}

// ------------------------------------------------------------ the wire --

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Options o;
    o.max_line_bytes = 1 << 16;  // small cap so oversized is testable
    server_ = std::make_unique<Server>(&db_, o);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }

  JsonValue Call(const std::string& frame) {
    auto r = client_.Call(frame);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << frame;
    return r.ok() ? std::move(r.value()) : JsonValue{};
  }

  xml::Database db_;
  std::unique_ptr<Server> server_;
  Client client_;
};

TEST_F(WireTest, PingRegisterQueryStatsRoundTrip) {
  EXPECT_EQ(Call(Client::PingFrame()).Find("op")->str, "pong");

  JsonValue reg = Call(Client::RegisterFrame(
      "d.xml", "<a><b>1</b><b>2</b><b>3</b></a>"));
  EXPECT_TRUE(reg.Find("ok")->b);

  JsonValue q = Call(Client::QueryFrame("q1", "count(/a/b)", "d.xml"));
  ASSERT_NE(q.Find("ok"), nullptr);
  EXPECT_TRUE(q.Find("ok")->b);
  EXPECT_EQ(q.Find("id")->str, "q1");
  EXPECT_EQ(q.Find("result")->str, "3");
  ASSERT_NE(q.Find("plan_cache_hit"), nullptr);
  ASSERT_NE(q.Find("ms"), nullptr);

  JsonValue st = Call(Client::StatsFrame());
  EXPECT_TRUE(st.Find("ok")->b);
  EXPECT_EQ(st.Find("completed")->AsInt(), 1);
  EXPECT_EQ(st.Find("registers")->AsInt(), 1);
  EXPECT_EQ(st.Find("inflight")->AsInt(), 0);
}

TEST_F(WireTest, QueryErrorIsTypedAndKeepsConnection) {
  JsonValue q = Call(Client::QueryFrame("q1", "1 +"));
  EXPECT_FALSE(q.Find("ok")->b);
  EXPECT_EQ(q.Find("error")->str, "invalid_query");
  EXPECT_EQ(q.Find("id")->str, "q1");

  JsonValue q2 = Call(Client::QueryFrame("q2", "doc(\"nope.xml\")/x"));
  EXPECT_FALSE(q2.Find("ok")->b);
  EXPECT_EQ(q2.Find("error")->str, "not_found");

  EXPECT_EQ(Call(Client::PingFrame()).Find("op")->str, "pong");
}

TEST_F(WireTest, MalformedFramesGetProtocolErrorAndConnectionSurvives) {
  const char* bad[] = {"this is not json", R"({"op":"nope"})",
                       R"({"op":"query","id":"x"})", "{{{{", ""};
  for (const char* frame : bad) {
    auto r = client_.Call(frame);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->Find("ok")->b);
    EXPECT_EQ(r->Find("error")->str, "protocol") << frame;
  }
  EXPECT_EQ(Call(Client::PingFrame()).Find("op")->str, "pong");
}

TEST_F(WireTest, CancelUnknownIdAnswersNotFound) {
  JsonValue c = Call(Client::CancelFrame("never-sent"));
  EXPECT_TRUE(c.Find("ok")->b);
  EXPECT_FALSE(c.Find("found")->b);
}

TEST_F(WireTest, OversizedFrameClosesConnectionWithError) {
  std::string huge((1 << 16) + 100, 'x');
  ASSERT_TRUE(client_.SendLine(huge).ok());
  auto r = client_.ReadLine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto parsed = ParseJson(*r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->str, "protocol");
  // The server closed the line-unrecoverable connection...
  auto eof = client_.ReadLine();
  EXPECT_FALSE(eof.ok());
  // ...but keeps serving new ones.
  Client fresh;
  ASSERT_TRUE(fresh.Connect(server_->port()).ok());
  auto pong = fresh.Call(Client::PingFrame());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->Find("op")->str, "pong");
}

// -------------------------------------------------------------- fuzzer --

// Random bytes, truncated frames, and mutated valid frames must never
// crash or hang the server: after each burst the connection either
// still answers a ping or was cleanly closed, and a fresh connection
// always works.
TEST(ProtocolFuzzTest, GarbageNeverCrashesOrHangsTheServer) {
  xml::Database db;
  ASSERT_TRUE(db.LoadXml("d.xml", "<a><b>1</b></a>").ok());
  Server::Options o;
  o.max_line_bytes = 4096;
  Server server(&db, o);
  ASSERT_TRUE(server.Start().ok());

  Rng rng(20260809);
  const std::string valid =
      Client::QueryFrame("fz", "count(/a/b)", "d.xml");
  for (int round = 0; round < 120; ++round) {
    Client c;
    ASSERT_TRUE(c.Connect(server.port()).ok()) << "round " << round;
    int burst = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < burst; ++i) {
      std::string frame;
      switch (rng.Below(3)) {
        case 0: {  // pure garbage
          size_t len = rng.Below(300);
          for (size_t j = 0; j < len; ++j) {
            char b = static_cast<char>(rng.Below(256));
            if (b == '\n') b = '?';
            frame += b;
          }
          break;
        }
        case 1: {  // mutated valid frame
          frame = valid;
          size_t flips = 1 + rng.Below(5);
          for (size_t j = 0; j < flips && !frame.empty(); ++j) {
            char b = static_cast<char>(rng.Below(256));
            if (b == '\n') b = '!';
            frame[rng.Below(frame.size())] = b;
          }
          break;
        }
        default: {  // structurally valid JSON, nonsense fields
          frame = "{\"op\":\"" + std::to_string(rng.Next()) + "\",\"x\":" +
                  std::to_string(static_cast<int64_t>(rng.Below(1000))) + "}";
          break;
        }
      }
      ASSERT_TRUE(c.SendLine(frame).ok());
      // Each garbage line draws exactly one reply (or a clean close).
      auto reply = c.ReadLine(10000);
      if (!reply.ok()) {
        EXPECT_EQ(reply.status().code(), StatusCode::kNotFound)
            << "round " << round << ": " << reply.status().ToString();
        break;  // server closed (e.g. oversized); that's a clean end
      }
      auto parsed = ParseJson(*reply);
      ASSERT_TRUE(parsed.ok())
          << "server emitted invalid JSON: " << *reply;
    }
    // Liveness: the server still answers on a fresh connection.
    if (round % 20 == 0) {
      Client fresh;
      ASSERT_TRUE(fresh.Connect(server.port()).ok());
      auto pong = fresh.Call(Client::PingFrame());
      ASSERT_TRUE(pong.ok()) << pong.status().ToString();
      EXPECT_EQ(pong->Find("op")->str, "pong");
    }
  }
  // And real work still succeeds after the bombardment.
  Client c;
  ASSERT_TRUE(c.Connect(server.port()).ok());
  auto q = c.Call(Client::QueryFrame("after", "count(/a/b)", "d.xml"));
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Find("ok")->b);
  EXPECT_EQ(q->Find("result")->str, "1");
}

// Truncated frames (no newline) must not wedge the reader: closing the
// connection mid-frame is handled as a normal disconnect.
TEST(ProtocolFuzzTest, TruncatedFrameThenCloseIsClean) {
  xml::Database db;
  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 10; ++i) {
    Client c;
    ASSERT_TRUE(c.Connect(server.port()).ok());
    ASSERT_TRUE(c.SendRaw(R"({"op":"ping")").ok());  // no newline
    c.Close();
  }
  Client c;
  ASSERT_TRUE(c.Connect(server.port()).ok());
  auto pong = c.Call(Client::PingFrame());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->Find("op")->str, "pong");
}

}  // namespace
}  // namespace pathfinder::serve

#ifndef PATHFINDER_ALGEBRA_OP_H_
#define PATHFINDER_ALGEBRA_OP_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/axis.h"
#include "bat/kernel.h"

namespace pathfinder::algebra {

/// Operator kinds of the paper's Table 1 algebra (plus the doc access
/// and serialization plumbing every plan needs).
///
/// The algebra is deliberately "assembly-style" (paper Sec. 2): π never
/// eliminates duplicates, every ∪ is disjoint by construction, every ⋈
/// is an equi-join — restrictions the optimizer exploits.
enum class OpKind : uint8_t {
  kLitTable,       // literal table: schema + constant rows
  kProject,        // π  — column projection/renaming/duplication
  kAttach,         // π with an attached constant column (MIL: project)
  kSelect,         // σ  — keep rows whose BOOL column is true
  kDisjointUnion,  // ∪̇
  kDifference,     // \  — anti-join on key columns
  kDistinct,       // δ  — duplicate elimination on key columns
  kEquiJoin,       // ⋈  — hash equi-join, one key column per side
  kThetaJoin,      // comparison join (used for Q11/Q12-style >)
  kCross,          // ×
  kRowNum,         // %  — row numbering per partition, by order keys
  kStep,           // staircase join: axis step on an (iter, item) input
  kDocRoot,        // fn:doc — document name item to root node item
  kElemConstr,     // ε  — element construction (name × content)
  kTextConstr,     // τ  — text node construction
  kFun1,           // unary map operator  ~
  kFun2,           // binary map operator ~
  kAggr,           // grouped aggregate (count/sum/avg/max/min) per iter
  kStrJoin,        // fn:string-join: content x separator -> one string/iter
  kAttrConstr,     // attribute node construction (static name)
  kSort,           // re-order rows by key columns (join-order restoration)
  kRank,           // append the input row position as an INT column
  kPathScan,       // structural step chain answered from the path summary
  kSerialize,      // plan root: materialize the (iter,pos,item) result
};

const char* OpKindName(OpKind k);

/// Number of OpKind enumerators (bound for per-kind stat arrays).
inline constexpr size_t kOpKindCount =
    static_cast<size_t>(OpKind::kSerialize) + 1;

/// Row-local, single-input operators the executor may fuse into a
/// morsel-driven pipeline fragment: σ, π, constant attach, and the
/// unary/binary map operators. Everything else (kStep, kRowNum, kAggr,
/// kDistinct, constructors, set ops, ...) breaks pipelines — it needs
/// cross-row or cross-iteration context and must see a materialized
/// input BAT.
bool IsPipelineMapOp(OpKind k);

/// Join kinds that may *head* a pipeline fragment: the probe produces
/// (left,right) row pairs that flow into the fused chain without the
/// join result ever being materialized.
bool IsPipelineJoinOp(OpKind k);

/// Unary map operators.
enum class Fun1 : uint8_t {
  kNot,         // BOOL -> BOOL
  kBoolToItem,  // BOOL -> ITEM (xs:boolean item)
  kItemToBool,  // ITEM -> BOOL (effective boolean value of one item)
  kData,        // ITEM -> ITEM: atomize (nodes -> untypedAtomic string value)
  kStringFn,    // ITEM -> ITEM: fn:string
  kNumberFn,    // ITEM -> ITEM: fn:number (double)
  kNeg,         // ITEM -> ITEM: unary minus
  kNameFn,      // ITEM -> ITEM: fn:local-name / fn:name of a node
  kStrLen,      // ITEM -> ITEM: fn:string-length
  kIntToItem,   // INT  -> ITEM: wrap a counter column as xs:integer items
  kRootNode,    // ITEM -> ITEM: fn:root of a node (its document node)
  // Dynamic kind tests (typeswitch): ITEM -> BOOL.
  kIsElement,
  kIsAttribute,
  kIsText,
  kIsNode,
  kIsInt,
  kIsDouble,
  kIsString,
  kIsBool,
};

const char* Fun1Name(Fun1 f);

/// Binary map operators (the paper's ~ row).
enum class Fun2 : uint8_t {
  kAdd,       // ITEM x ITEM -> ITEM
  kSub,
  kMul,
  kDiv,
  kIdiv,
  kMod,
  kCmpEq,     // ITEM x ITEM -> BOOL  (value comparison, numeric promotion)
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kIs,        // node identity            -> BOOL
  kBefore,    // document order <<        -> BOOL
  kAfter,     // document order >>        -> BOOL
  kContains,    // fn:contains            -> BOOL
  kStartsWith,  // fn:starts-with         -> BOOL
  kConcat,      // fn:concat  ITEM x ITEM -> ITEM
  kSubstrFrom,  // fn:substring(s, start)     ITEM x ITEM -> ITEM
  kSubstrLen,   // first `len` chars of s     ITEM x ITEM -> ITEM
  kAnd,         // BOOL x BOOL -> BOOL
  kOr,          // BOOL x BOOL -> BOOL
};

const char* Fun2Name(Fun2 f);

struct Op;
using OpPtr = std::shared_ptr<Op>;

/// One axis step of a kPathScan chain (see the PathScan builder).
struct PathStep {
  accel::Axis axis = accel::Axis::kChild;
  accel::NodeTest test;
};

/// One node of an algebra plan DAG.
///
/// A deliberately plain struct: all parameter fields live side by side
/// (plans are hundreds of nodes at most, so the footprint is
/// irrelevant), which keeps construction, printing and rewriting simple.
/// Which fields are meaningful depends on `kind` — see the builder
/// functions below for the per-operator contracts.
struct Op {
  OpKind kind;
  std::vector<OpPtr> children;

  // kProject: (new name, source column) pairs.
  std::vector<std::pair<std::string, std::string>> proj;

  // Column parameters: kSelect (col = predicate), kEquiJoin/kThetaJoin
  // (col ⋈ col2), kRowNum/kAttach/kFun*/kAggr (out = result column).
  std::string col, col2, out;

  // kRowNum: partition keys / order keys (order_desc[i] marks key i as
  // descending). kDistinct, kDifference: keys.
  std::vector<std::string> part, order, keys;
  std::vector<uint8_t> order_desc;

  // kStep parameters.
  accel::Axis axis = accel::Axis::kChild;
  accel::NodeTest test;

  // kPathScan: the collapsed step chain, applied in order to the
  // child's (iter, item) rows.
  std::vector<PathStep> path;

  // Function / comparison / aggregate selectors.
  Fun1 fun1 = Fun1::kNot;
  Fun2 fun2 = Fun2::kAdd;
  bat::CmpOp cmp = bat::CmpOp::kEq;
  bat::AggKind agg = bat::AggKind::kCount;

  // kLitTable / kAttach: schema and constant cells. Cells are stored as
  // Items; INT columns hold kInt items, BOOL columns kBool items.
  std::vector<std::string> names;
  std::vector<bat::ColType> types;
  std::vector<std::vector<Item>> rows;  // row-major
  Item attach_val{ItemKind::kInt, 0};

  /// Stable id for printing/diffing (assigned by the builder).
  int id = 0;

  // Pipeline-fragment annotation, set by opt::AnnotatePipelines and
  // consumed by the executor when QueryContext::pipeline is on. A
  // fragment is a maximal chain of fusable operators executed as one
  // morsel-driven pass; only the tail's output is materialized as a
  // BAT. -1 = not part of any fused fragment (legacy per-operator
  // evaluation).
  int pipe_frag = -1;
  bool pipe_tail = false;

  // Subplan-result cache annotation, set by engine::AnnotateCacheCandidates
  // on freshly built plans. A candidate roots a pure (constructor-free),
  // document-derived subtree whose materialized result may be reused
  // across queries; `cache_hash` is its structural hash (the cache key,
  // see algebra/hash.h). 0 / false on unannotated plans.
  uint64_t cache_hash = 0;
  bool cache_cand = false;

  // Document dependencies of this subtree, also set by
  // AnnotateCacheCandidates (on candidates and the plan root only):
  // the sorted, de-duplicated fn:doc name strings the subtree may
  // read. `cache_docs_unknown` marks a subtree whose document names
  // could not be resolved statically (a computed fn:doc argument) —
  // such an entry depends on every document. Structural hash/equality
  // ignore both fields, like all execution annotations.
  std::vector<std::string> cache_docs;
  bool cache_docs_unknown = false;

  // True iff no operator in this subtree can read a node's *value*
  // (atomization, string functions, aggregates, theta-join compares,
  // serialization): the subtree's result is a function of document
  // structure alone. Set by AnnotateCacheCandidates alongside the
  // dependency sets; the cache repairs such entries across content-only
  // document updates instead of evicting them. Ignored by structural
  // hash/equality like all execution annotations.
  bool cache_value_free = false;
};

/// Number of distinct operator nodes in the DAG under `root`
/// (the paper's plan-size metric: "Q8 compiles to a plan DAG of 120
/// operators").
size_t CountOps(const OpPtr& root);

/// Collect the DAG's nodes bottom-up (children before parents).
std::vector<Op*> TopoOrder(const OpPtr& root);

// ---------------------------------------------------------------------
// Builder functions. These are the only way plans are constructed, so
// invariants (child counts, parameter shapes) are centralized here.

OpPtr LitTable(std::vector<std::string> names,
               std::vector<bat::ColType> types,
               std::vector<std::vector<Item>> rows);
/// Empty table with the standard (iter INT, pos INT, item ITEM) schema.
OpPtr EmptySeq();
OpPtr Project(OpPtr child,
              std::vector<std::pair<std::string, std::string>> proj);
OpPtr Attach(OpPtr child, std::string name, bat::ColType type, Item value);
OpPtr Select(OpPtr child, std::string bool_col);
OpPtr DisjointUnion(OpPtr a, OpPtr b);
OpPtr Difference(OpPtr a, OpPtr b, std::vector<std::string> keys);
OpPtr Distinct(OpPtr child, std::vector<std::string> keys);
OpPtr EquiJoin(OpPtr a, OpPtr b, std::string acol, std::string bcol);
OpPtr ThetaJoin(OpPtr a, OpPtr b, std::string acol, std::string bcol,
                bat::CmpOp cmp);
OpPtr Cross(OpPtr a, OpPtr b);
OpPtr RowNum(OpPtr child, std::string out, std::vector<std::string> part,
             std::vector<std::string> order,
             std::vector<uint8_t> order_desc = {});
OpPtr Step(OpPtr child, accel::Axis axis, accel::NodeTest test);
OpPtr DocRoot(OpPtr child);
/// Collapsed chain of purely structural steps over the child's
/// (iter, item) rows — semantically identical to applying kStep for
/// each entry of `path` in order, but evaluated in one operator so the
/// executor can answer it from a document's path summary (and fall
/// back to successive staircase joins when no summary is available).
/// Produced only by the opt/ path rewrite; `path` must be non-empty.
OpPtr PathScan(OpPtr child, std::vector<PathStep> path);
/// name: (iter, item STR-item) singleton per iter; content: (iter, pos,
/// item). Result: (iter, item node).
OpPtr ElemConstr(OpPtr name, OpPtr content);
OpPtr TextConstr(OpPtr child);
/// Construct one attribute node named `name` per iter of `content`
/// (whose atomized items, joined with spaces, form the value).
OpPtr AttrConstr(OpPtr content, std::string name);
/// fn:string-join: per iter of `content` (iter,pos,item), join the
/// stringified items with the iter's `sep` singleton (iter,pos,item).
/// Result: (iter, item).
OpPtr StrJoin(OpPtr content, OpPtr sep);
/// Stable re-ordering of the rows by `order` columns (order_desc[i]
/// marks key i as descending; empty = all ascending). Schema and row
/// multiset are unchanged. The join optimizer uses it over kRank
/// columns to restore the original row order after reordering joins.
OpPtr Sort(OpPtr child, std::vector<std::string> order,
           std::vector<uint8_t> order_desc = {});
/// Append the input row position (1-based) as INT column `out`.
/// Unlike kRowNum with empty partition/order, the rank is the
/// *physical* input position — a globally unique key independent of
/// the other columns.
OpPtr Rank(OpPtr child, std::string out);
OpPtr MapFun1(OpPtr child, Fun1 f, std::string in, std::string out);
OpPtr MapFun2(OpPtr child, Fun2 f, std::string in1, std::string in2,
              std::string out);
/// Aggregate `val_col` of child grouped by `part_col`; result schema
/// (part_col INT, out ITEM). Groups absent from child are absent from
/// the result (the compiler patches empty groups explicitly).
OpPtr Aggr(OpPtr child, bat::AggKind agg, std::string part_col,
           std::string val_col, std::string out);
OpPtr Serialize(OpPtr child);

}  // namespace pathfinder::algebra

#endif  // PATHFINDER_ALGEBRA_OP_H_

#ifndef PATHFINDER_ACCEL_AXIS_H_
#define PATHFINDER_ACCEL_AXIS_H_

#include <cstdint>
#include <string>

#include "base/string_pool.h"
#include "xml/document.h"

namespace pathfinder::accel {

/// XPath axes supported by the step compiler (paper Table 2, full axis
/// feature set).
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
  kAttribute,
};

const char* AxisName(Axis a);

/// Whether results of this axis are emitted in ascending pre order when
/// contexts are processed in ascending pre order (reverse axes are not).
bool AxisIsForward(Axis a);

/// XPath node test.
struct NodeTest {
  enum class Kind : uint8_t {
    kAnyKind,   // node()
    kElement,   // element() or * on a non-attribute axis
    kText,      // text()
    kComment,   // comment()
    kPi,        // processing-instruction()
    kName,      // name test: element (or attribute on attribute axis)
                // with prop == name
  };
  Kind kind = Kind::kAnyKind;
  StrId name = 0;  // valid when kind == kName

  static NodeTest AnyKind() { return {Kind::kAnyKind, 0}; }
  static NodeTest Element() { return {Kind::kElement, 0}; }
  static NodeTest Text() { return {Kind::kText, 0}; }
  static NodeTest Comment() { return {Kind::kComment, 0}; }
  static NodeTest Pi() { return {Kind::kPi, 0}; }
  static NodeTest Name(StrId n) { return {Kind::kName, n}; }

  std::string ToString(const StringPool& pool) const;
};

/// Does node v of doc satisfy the test in the context of `axis`?
/// (On the attribute axis a name test matches attribute names; on all
/// other axes it matches element tags, and attributes never match.)
bool MatchesTest(const xml::Document& doc, xml::Pre v, Axis axis,
                 const NodeTest& test);

}  // namespace pathfinder::accel

#endif  // PATHFINDER_ACCEL_AXIS_H_

file(REMOVE_RECURSE
  "libpf_base.a"
)

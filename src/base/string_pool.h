#ifndef PATHFINDER_BASE_STRING_POOL_H_
#define PATHFINDER_BASE_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pathfinder {

/// Id of an interned string. Dense, starting at 0.
using StrId = uint32_t;

/// Append-only interning pool.
///
/// This is the "property BAT" of the paper's Section 3.1: node properties
/// (tag names, text content, attribute values) are kept unique here and
/// referenced by surrogate (StrId). Nodes with identical properties share
/// the same surrogate, which both avoids string comparisons at query time
/// and reduces storage.
///
/// Thread safety: `Get` is wait-free and may run concurrently with
/// `Intern`/`Find` on other threads; `Intern` and `Find` serialize on an
/// internal mutex. Storage is a two-level directory of fixed-size string
/// blocks: a published id's block pointer and slot are written before the
/// id escapes the mutex, and neither ever moves afterwards, so readers
/// never observe a slot under construction. Note that the *numbering* of
/// ids depends on interning order (and hence on morsel scheduling); ids
/// must therefore only be used for equality and resolved to content
/// before any ordering or serialization decision.
class StringPool {
 public:
  StringPool();
  ~StringPool();
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Intern `s`, returning its (possibly pre-existing) surrogate.
  StrId Intern(std::string_view s);

  /// Look up an already-interned string; returns false if absent.
  bool Find(std::string_view s, StrId* id) const;

  /// The string for a surrogate. `id` must be valid (obtained from a
  /// prior Intern/Find whose completion happens-before this call).
  std::string_view Get(StrId id) const {
    const std::string* block =
        blocks_[id >> kBlockBits].load(std::memory_order_acquire);
    return block[id & kBlockMask];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Total bytes of unique string payload (for storage accounting).
  size_t payload_bytes() const;

 private:
  static constexpr size_t kBlockBits = 13;  // 8192 strings per block
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kBlockMask = kBlockSize - 1;
  static constexpr size_t kMaxBlocks = size_t{1} << 15;  // 2^28 strings

  // Directory of lazily-allocated blocks. Fixed-size so readers index it
  // without synchronizing on growth.
  std::unique_ptr<std::atomic<const std::string*>[]> blocks_;
  std::atomic<size_t> size_{0};

  mutable std::mutex mu_;
  // Guarded by mu_. Keys view into block slots, whose addresses are
  // stable for the pool's lifetime.
  std::unordered_map<std::string_view, StrId> index_;
  size_t payload_bytes_ = 0;
};

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_STRING_POOL_H_

// Shredder demo: shows the XPath Accelerator relational encoding
// (paper Sec. 2, "Tree encoding") for a document — the
// pre|size|level|kind|name|value table that every axis step becomes a
// range selection over.
//
//   ./shredder                       # a built-in example document
//   ./shredder '<a><b/>text</a>'     # your own XML

#include <cstdio>
#include <string>

#include "xml/database.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace pathfinder;

  std::string input = argc > 1 ? argv[1] : R"(
    <auction id="a7">
      <seller person="p12"/>
      <bid order="1">13.50</bid>
      <bid order="2">14.25</bid>
      <note>fast <b>shipping</b></note>
    </auction>)";

  xml::Database db;
  auto parsed = db.LoadXml("input.xml", input);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const xml::Document& doc = db.doc(*parsed);

  static const char* kKinds[] = {"doc", "elem", "attr",
                                 "text", "comment", "pi"};
  std::printf("%5s %5s %5s %-8s %-14s %s\n", "pre", "size", "level",
              "kind", "name", "value");
  for (xml::Pre v = 0; v < doc.num_nodes(); ++v) {
    std::string name, value;
    switch (doc.kind(v)) {
      case xml::NodeKind::kElem:
      case xml::NodeKind::kPi:
        name = db.pool()->Get(doc.prop(v));
        break;
      case xml::NodeKind::kAttr:
        name = db.pool()->Get(doc.prop(v));
        value = db.pool()->Get(doc.value(v));
        break;
      case xml::NodeKind::kText:
      case xml::NodeKind::kComment:
        value = db.pool()->Get(doc.value(v));
        break;
      default:
        break;
    }
    std::printf("%5u %5u %5u %-8s %-14s %s\n", v, doc.size(v),
                doc.level(v), kKinds[static_cast<int>(doc.kind(v))],
                name.c_str(), value.c_str());
  }

  std::printf("\nregion queries (paper Sec. 2):\n");
  std::printf("  descendants of v = the %u rows following pre(v)\n",
              doc.size(1));
  std::printf("  serialized back: %s\n",
              xml::SerializeDocument(doc, *db.pool()).c_str());
  std::printf("  encoding: %zu bytes structure, %zu bytes unique "
              "property payload\n", doc.EncodingBytes(),
              db.PoolPayloadBytes());
  return 0;
}

#include "serve/client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace pathfinder::serve {

Status Client::Connect(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    Close();
    return st;
  }
  return Status::OK();
}

Status Client::SendLine(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  return SendRaw(framed);
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Internal("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> Client::ReadLine(int timeout_ms) {
  if (fd_ < 0) return Status::Internal("client not connected");
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    if (left <= 0) return Status::Timeout("client read timed out");
    pollfd p{fd_, POLLIN, 0};
    int pr = ::poll(&p, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) return Status::Timeout("client read timed out");
    char tmp[16384];
    ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n == 0) return Status::NotFound("eof");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    buf_.append(tmp, static_cast<size_t>(n));
  }
}

Result<JsonValue> Client::Call(std::string_view line, int timeout_ms) {
  PF_RETURN_NOT_OK(SendLine(line));
  PF_ASSIGN_OR_RETURN(std::string reply, ReadLine(timeout_ms));
  return ParseJson(reply);
}

void Client::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

std::string Client::PingFrame() { return R"({"op":"ping"})"; }

std::string Client::RegisterFrame(std::string_view name,
                                  std::string_view xml) {
  std::string out = R"({"op":"register","name":)";
  AppendJsonString(&out, name);
  out += ",\"xml\":";
  AppendJsonString(&out, xml);
  out += '}';
  return out;
}

std::string Client::QueryFrame(std::string_view id, std::string_view query,
                               std::string_view doc) {
  std::string out = R"({"op":"query","id":)";
  AppendJsonString(&out, id);
  out += ",\"q\":";
  AppendJsonString(&out, query);
  if (!doc.empty()) {
    out += ",\"doc\":";
    AppendJsonString(&out, doc);
  }
  out += '}';
  return out;
}

std::string Client::UpdateFrame(std::string_view id, std::string_view doc,
                                std::string_view action, uint32_t target,
                                int32_t position, std::string_view xml,
                                std::string_view value) {
  std::string out = R"({"op":"update","id":)";
  AppendJsonString(&out, id);
  out += ",\"doc\":";
  AppendJsonString(&out, doc);
  out += ",\"action\":";
  AppendJsonString(&out, action);
  out += ",\"target\":";
  out += std::to_string(target);
  if (position >= 0) {
    out += ",\"position\":";
    out += std::to_string(position);
  }
  if (!xml.empty()) {
    out += ",\"xml\":";
    AppendJsonString(&out, xml);
  }
  if (action == "replace") {
    out += ",\"value\":";
    AppendJsonString(&out, value);
  }
  out += '}';
  return out;
}

std::string Client::CancelFrame(std::string_view id) {
  std::string out = R"({"op":"cancel","id":)";
  AppendJsonString(&out, id);
  out += '}';
  return out;
}

std::string Client::StatsFrame() { return R"({"op":"stats"})"; }

}  // namespace pathfinder::serve

# Empty dependencies file for api_smoke_test.
# This may be replaced when dependencies are built.

#include <gtest/gtest.h>

#include "algebra/schema.h"
#include "api/pathfinder.h"
#include "compiler/compile.h"
#include "engine/executor.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"
#include "runtime/serialize.h"

namespace pathfinder::compiler {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  frontend::ExprPtr Core(const std::string& q) {
    auto mod = frontend::ParseQuery(q);
    EXPECT_TRUE(mod.ok()) << mod.status().ToString();
    auto core = frontend::Normalize(*mod, {});
    EXPECT_TRUE(core.ok()) << core.status().ToString();
    return *core;
  }

  /// Compile without optimization and execute; returns the raw result
  /// table (iter, pos, item).
  bat::Table Exec(const std::string& q, CompileStats* stats = nullptr,
                  bool join_recognition = true) {
    CompileOptions opts;
    opts.join_recognition = join_recognition;
    auto plan = Compile(Core(q), &db_, opts, stats);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << " for: " << q;
    ctx_ = std::make_unique<engine::QueryContext>(&db_);
    auto t = engine::Execute(*plan, ctx_.get());
    EXPECT_TRUE(t.ok()) << t.status().ToString() << " for: " << q;
    return t.ok() ? *t : bat::Table{};
  }

  xml::Database db_;
  std::unique_ptr<engine::QueryContext> ctx_;
};

// Paper Figure 3(g): the overall result of the nested iteration in
// scope s0 is ((110,210,120,220)) at iters 1, positions 1..4.
TEST_F(CompilerTest, PaperFigure3ResultEncoding) {
  bat::Table t =
      Exec("for $v in (10,20), $w in (100,200) return $v + $w");
  ASSERT_EQ(t.rows(), 4u);
  auto iter = t.GetCol("iter").value()->ints();
  auto pos = t.GetCol("pos").value()->ints();
  auto item = t.GetCol("item").value()->items();
  EXPECT_EQ(iter, (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(pos, (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(item[0].AsInt(), 110);
  EXPECT_EQ(item[1].AsInt(), 210);
  EXPECT_EQ(item[2].AsInt(), 120);
  EXPECT_EQ(item[3].AsInt(), 220);
}

// Paper Figure 3(a): a literal sequence in the top-level scope s0 has
// constant iter 1 and positions 1..n.
TEST_F(CompilerTest, TopLevelSequenceEncoding) {
  bat::Table t = Exec("(10, 20)");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.GetCol("iter").value()->ints(),
            (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(t.GetCol("pos").value()->ints(), (std::vector<int64_t>{1, 2}));
}

// Paper Figure 5 is for $v in (10,20) return $v + 100.
TEST_F(CompilerTest, PaperFigure5Result) {
  bat::Table t = Exec("for $v in (10,20) return $v + 100");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.GetCol("item").value()->items()[0].AsInt(), 110);
  EXPECT_EQ(t.GetCol("item").value()->items()[1].AsInt(), 120);
}

TEST_F(CompilerTest, CompiledPlansValidate) {
  const char* queries[] = {
      "1",
      "(1, 2.5, \"x\")",
      "for $v in (1,2) where $v = 1 return $v",
      "if (1 = 1) then \"y\" else \"n\"",
      "count((1,2,3))",
      "sum(())",
      "let $x := (1,2) return ($x, $x)",
      "for $a in (1,2) for $b in (3,4) order by $b descending, $a "
      "return $a * $b",
      "typeswitch (5) case xs:integer return \"int\" default return \"o\"",
      "some $x in (1,2,3) satisfies $x = 2",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    auto plan = Compile(Core(q), &db_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(algebra::ValidatePlan(*plan).ok());
    EXPECT_EQ((*plan)->kind, algebra::OpKind::kSerialize);
  }
}

TEST_F(CompilerTest, EmptyForProducesEmptyResult) {
  EXPECT_EQ(Exec("for $v in () return $v + 1").rows(), 0u);
}

TEST_F(CompilerTest, LetOfEmptyStillEvaluatesReturn) {
  bat::Table t = Exec("let $v := () return count($v)");
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.GetCol("item").value()->items()[0].AsInt(), 0);
}

TEST_F(CompilerTest, WhereFiltersIterations) {
  bat::Table t = Exec("for $v in (1,2,3,4) where $v > 2 return $v");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.GetCol("item").value()->items()[0].AsInt(), 3);
  EXPECT_EQ(t.GetCol("item").value()->items()[1].AsInt(), 4);
}

TEST_F(CompilerTest, PositionalVariable) {
  bat::Table t = Exec("for $v at $i in (7,8,9) return $i * 10 + $v");
  ASSERT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.GetCol("item").value()->items()[0].AsInt(), 17);
  EXPECT_EQ(t.GetCol("item").value()->items()[2].AsInt(), 39);
}

TEST_F(CompilerTest, NestedFlworScopesMapBack) {
  bat::Table t = Exec(
      "for $a in (1,2) return (for $b in (10,20) return $a * $b)");
  ASSERT_EQ(t.rows(), 4u);
  auto items = t.GetCol("item").value()->items();
  EXPECT_EQ(items[0].AsInt(), 10);
  EXPECT_EQ(items[1].AsInt(), 20);
  EXPECT_EQ(items[2].AsInt(), 20);
  EXPECT_EQ(items[3].AsInt(), 40);
}

TEST_F(CompilerTest, JoinRecognitionFiresOnWhereEquality) {
  CompileStats stats;
  Exec("for $a in (1,2,3) "
       "let $hits := for $b in (2,3,4) where $b = $a return $b "
       "return count($hits)",
       &stats);
  EXPECT_EQ(stats.joins_recognized, 1);
}

TEST_F(CompilerTest, JoinRecognitionOffCompilesSamePlanResult) {
  CompileStats on_stats, off_stats;
  bat::Table on = Exec(
      "for $a in (1,2,3) "
      "let $h := for $b in (2,3,4) where $b = $a return $b "
      "return count($h)",
      &on_stats, /*join_recognition=*/true);
  bat::Table off = Exec(
      "for $a in (1,2,3) "
      "let $h := for $b in (2,3,4) where $b = $a return $b "
      "return count($h)",
      &off_stats, /*join_recognition=*/false);
  EXPECT_EQ(on_stats.joins_recognized, 1);
  EXPECT_EQ(off_stats.joins_recognized, 0);
  ASSERT_EQ(on.rows(), off.rows());
  for (size_t i = 0; i < on.rows(); ++i) {
    EXPECT_EQ(on.GetCol("item").value()->items()[i],
              off.GetCol("item").value()->items()[i]);
  }
}

TEST_F(CompilerTest, ThetaJoinRecognition) {
  CompileStats stats;
  bat::Table t = Exec(
      "for $a in (10, 20, 30) "
      "let $smaller := for $b in (5, 15, 25) where $b < $a return $b "
      "return count($smaller)",
      &stats);
  EXPECT_EQ(stats.joins_recognized, 1);
  auto items = t.GetCol("item").value()->items();
  EXPECT_EQ(items[0].AsInt(), 1);  // {5}
  EXPECT_EQ(items[1].AsInt(), 2);  // {5,15}
  EXPECT_EQ(items[2].AsInt(), 3);  // {5,15,25}
}

TEST_F(CompilerTest, OrderByReordersWithinIteration) {
  bat::Table t = Exec(
      "for $v in (3,1,2) order by $v descending return $v * 10");
  auto items = t.GetCol("item").value()->items();
  EXPECT_EQ(items[0].AsInt(), 30);
  EXPECT_EQ(items[1].AsInt(), 20);
  EXPECT_EQ(items[2].AsInt(), 10);
}

TEST_F(CompilerTest, UnsupportedCoreConstructDiagnosed) {
  // Attribute constructor outside element content is a compile error.
  auto attr = frontend::MakeExpr(frontend::ExprKind::kAttrConstr);
  attr->sval = "x";
  auto r = Compile(attr, &db_);
  EXPECT_FALSE(r.ok());
}

// The paper reports plan sizes in the hundreds before optimization;
// check our compiler is in that regime for a join query (Q8-shaped).
TEST_F(CompilerTest, PlanSizesAreSubstantialBeforeOptimization) {
  ASSERT_TRUE(
      db_.LoadXml("s.xml", "<site><a id=\"1\"/><b ref=\"1\"/></site>")
          .ok());
  frontend::NormalizeOptions nopts;
  nopts.context_doc = "s.xml";
  auto mod = frontend::ParseQuery(
      "for $p in /site/a let $t := for $c in /site/b "
      "where $c/@ref = $p/@id return $c return count($t)");
  ASSERT_TRUE(mod.ok());
  auto core = frontend::Normalize(*mod, nopts);
  ASSERT_TRUE(core.ok());
  auto plan = Compile(*core, &db_);
  ASSERT_TRUE(plan.ok());
  size_t n = algebra::CountOps(*plan);
  EXPECT_GT(n, 40u);
  EXPECT_LT(n, 400u);
}

}  // namespace
}  // namespace pathfinder::compiler

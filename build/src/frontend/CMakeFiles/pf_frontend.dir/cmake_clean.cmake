file(REMOVE_RECURSE
  "CMakeFiles/pf_frontend.dir/ast.cc.o"
  "CMakeFiles/pf_frontend.dir/ast.cc.o.d"
  "CMakeFiles/pf_frontend.dir/lexer.cc.o"
  "CMakeFiles/pf_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/pf_frontend.dir/normalize.cc.o"
  "CMakeFiles/pf_frontend.dir/normalize.cc.o.d"
  "CMakeFiles/pf_frontend.dir/parser.cc.o"
  "CMakeFiles/pf_frontend.dir/parser.cc.o.d"
  "libpf_frontend.a"
  "libpf_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

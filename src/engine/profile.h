#ifndef PATHFINDER_ENGINE_PROFILE_H_
#define PATHFINDER_ENGINE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/op.h"
#include "base/string_pool.h"

namespace pathfinder::engine {

/// One node of the per-operator execution profile tree. The tree
/// mirrors the executed plan DAG exactly as the plan printer renders
/// it: the first visit of a shared subplan carries its children,
/// repeat visits are emitted as `shared_ref` leaves (cf. the "^id"
/// references of algebra::PlanToText).
///
/// Row/byte/morsel fields describe the operator's *materialized*
/// output. Operators evaluated inside a fused pipeline fragment never
/// materialize: interior members carry `fused = true` and -1 row
/// counts, and the fragment's whole wall time, morsel count and output
/// size are attributed to the fragment tail (whose `pipe_frag` ties
/// the members together).
struct OperatorProfile {
  int op_id = 0;                       ///< algebra::Op::id
  algebra::OpKind kind = algebra::OpKind::kSerialize;
  std::string label;                   ///< algebra::OpLabel rendering
  int pipe_frag = -1;                  ///< fragment membership (-1 = none)
  bool fused = false;    ///< interior of a fused fragment (no own BAT)
  bool shared_ref = false;  ///< repeat visit of a shared subplan
  /// Result served from the cross-query subplan cache: the subtree was
  /// not executed, so the node is rendered as a leaf (no children) and
  /// wall_ns only covers the cache lookup.
  bool cached = false;
  int64_t wall_ns = 0;   ///< evaluation wall time (0 for fused/refs)
  int64_t in_rows = 0;   ///< sum of child output rows (-1 = unknown)
  int64_t out_rows = 0;  ///< materialized output rows (-1 = not mat.)
  int64_t out_bytes = 0;  ///< output column payload bytes
  int64_t morsels = 0;   ///< morsel count of the evaluation
  std::vector<OperatorProfile> children;
};

using OperatorProfilePtr = std::unique_ptr<OperatorProfile>;

/// Raw per-Op measurements the executor records while a query runs;
/// BuildProfileTree folds them into the plan-shaped tree above.
struct OpProfileRec {
  int64_t wall_ns = 0;
  int64_t out_rows = -1;
  int64_t out_bytes = 0;
  int64_t morsels = 0;
  bool fused = false;
  bool cached = false;  ///< served from the subplan-result cache
};

/// Fold the recorded measurements into a profile tree shaped like the
/// plan under `root` (children before parents exactly as executed).
OperatorProfilePtr BuildProfileTree(
    const algebra::OpPtr& root,
    const std::unordered_map<const algebra::Op*, OpProfileRec>& recs,
    const StringPool& pool);

/// Machine-readable rendering of a profile tree: one JSON object per
/// operator with "children" nested arrays (schema documented in
/// DESIGN.md "Operator profiling").
std::string ProfileToJson(const OperatorProfile& p);

/// Monotonic nanosecond timestamp for profile collection. Every call
/// bumps a process-wide counter so tests can prove the profiling-off
/// hot path performs no timer calls at all.
int64_t ProfileNowNs();

/// Number of ProfileNowNs invocations process-wide.
int64_t ProfileTimerCalls();

/// Process-wide default for profile collection: the PF_PROFILE
/// environment variable, read once. Off unless set to a value other
/// than "0" (profiling is opt-in; the executor's hot path stays
/// timer-free by default).
bool ProfileDefault();

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_PROFILE_H_

// Join-optimizer differential harness.
//
// The join-graph pass (PF_JOINOPT / QueryOptions::join_opt) — key-based
// distinct removal, selection pushdown through mapping joins, and
// cost-based cluster reordering — promises byte-identical serialized
// results to the untouched plan at every thread count. This suite
// locks that down three ways:
//
//   1. Every XMark query, join_opt on vs. off, at 1/2/7 threads.
//   2. Join-shape queries (multi-way value joins, literal filters,
//      theta joins, existential predicates), same matrix.
//   3. The pass must actually fire: the optimizer counters reported
//      for representative queries are pinned to be nonzero, so a
//      regression that silently disables the pass fails here, not in
//      the benchmarks.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/pathfinder.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace pathfinder {
namespace {

xml::Database* Db() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    auto doc = xmark::GenerateXMark(0.002, 42, d->pool());
    if (!doc.ok()) {
      ADD_FAILURE() << "XMark generation failed: "
                    << doc.status().ToString();
      return d;
    }
    d->AddDocument("auction.xml", std::move(*doc));
    return d;
  }();
  return db;
}

std::string RunConfig(const std::string& query, int join_opt, int threads,
                      opt::OptimizeStats* stats = nullptr) {
  Pathfinder pf(Db());
  QueryOptions opts;
  opts.context_doc = "auction.xml";
  opts.join_opt = join_opt;
  opts.num_threads = threads;
  auto r = pf.Run(query, opts);
  if (!r.ok()) return "<error: " + r.status().ToString() + ">";
  if (stats != nullptr) *stats = r->opt_stats;
  auto s = r->Serialize();
  if (!s.ok()) return "<error: " + s.status().ToString() + ">";
  return *s;
}

void ExpectAllConfigsIdentical(const std::string& query) {
  // Baseline: join_opt off, serial — the untouched optimized plan.
  const std::string base = RunConfig(query, /*join_opt=*/0, /*threads=*/1);
  ASSERT_EQ(base.find("<error"), std::string::npos) << base;
  for (int threads : {1, 2, 7}) {
    EXPECT_EQ(RunConfig(query, /*join_opt=*/1, threads), base)
        << "join_opt=1 diverged at threads=" << threads;
    EXPECT_EQ(RunConfig(query, /*join_opt=*/0, threads), base)
        << "join_opt=0 diverged at threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// 1. XMark queries.

class XMarkJoinOptTest : public ::testing::TestWithParam<int> {};

TEST_P(XMarkJoinOptTest, JoinOptMatchesBaseline) {
  const xmark::XMarkQuery& q = xmark::GetXMarkQuery(GetParam());
  ExpectAllConfigsIdentical(q.text);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, XMarkJoinOptTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// 2. Join-shape queries: the plan patterns the pass rewrites.

struct JoinCase {
  const char* name;
  const char* query;
};

const JoinCase kJoinCases[] = {
    {"ThreeWayValueJoinLiteralOnItem",
     "for $p in /site/people/person "
     "for $a in /site/closed_auctions/closed_auction "
     "for $i in /site/regions/namerica/item "
     "where $a/buyer/@person = $p/@id and $a/itemref/@item = $i/@id "
     "and $i/payment = \"Creditcard\" "
     "return <r>{$p/name/text()}</r>"},
    {"ThreeWayValueJoinLiteralOnPerson",
     "for $a in /site/closed_auctions/closed_auction "
     "for $p in /site/people/person "
     "for $i in /site/regions//item "
     "where $p/@id = $a/buyer/@person and $i/@id = $a/itemref/@item "
     "and $p/profile/@income > 80000 "
     "return <r>{$i/name/text()}</r>"},
    {"PointLookup",
     "for $b in /site/people/person where $b/@id = \"person4\" "
     "return $b/profile/@income"},
    {"TwoWayJoinWithLiteral",
     "for $p in /site/people/person "
     "for $a in /site/closed_auctions/closed_auction "
     "where $a/buyer/@person = $p/@id and $p/@id = \"person1\" "
     "return <r>{$a/price/text()}</r>"},
    {"ThetaJoin",
     "for $p in /site/people/person "
     "for $i in /site/open_auctions/open_auction "
     "where $p/profile/@income > $i/initial return $p/name"},
    {"LiteralBothSidesOfAnd",
     "for $i in /site/regions//item "
     "where $i/payment = \"Creditcard\" and $i/quantity = \"2\" "
     "return $i/name/text()"},
    {"ExistentialJoin",
     "for $p in /site/people/person "
     "where some $w in /site/people/person/watches/watch/@open_auction "
     "satisfies $w = $p/@id return $p/name"},
    {"SelfJoinSameDoc",
     "for $a in /site/closed_auctions/closed_auction "
     "for $b in /site/closed_auctions/closed_auction "
     "where $a/buyer/@person = $b/seller/@person "
     "return <r>{$a/price/text()}</r>"},
};

class JoinShapeTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinShapeTest, JoinOptMatchesBaseline) {
  ExpectAllConfigsIdentical(GetParam().query);
}

INSTANTIATE_TEST_SUITE_P(Shapes, JoinShapeTest,
                         ::testing::ValuesIn(kJoinCases),
                         [](const ::testing::TestParamInfo<JoinCase>& i) {
                           return std::string(i.param.name);
                         });

// ---------------------------------------------------------------------------
// 3. The pass fires. These counters pin the rewrite reach on known
// shapes; update them deliberately when the pass is extended.

TEST(JoinOptFires, ClustersDetectedOnValueJoin) {
  opt::OptimizeStats st;
  std::string out = RunConfig(kJoinCases[0].query, 1, 1, &st);
  ASSERT_EQ(out.find("<error"), std::string::npos) << out;
  EXPECT_GT(st.join_clusters, 0);
  EXPECT_GT(st.key_distincts_removed, 0);
  EXPECT_GT(st.selects_pushed, 0);
}

TEST(JoinOptFires, SelectPushdownOnLiteralFilter) {
  // The literal comparison must be a *secondary* predicate: with a
  // single conjunct the compiler turns it into the value join itself
  // and there is no select to push.
  opt::OptimizeStats st;
  std::string out = RunConfig(kJoinCases[1].query, 1, 1, &st);
  ASSERT_EQ(out.find("<error"), std::string::npos) << out;
  EXPECT_GT(st.selects_pushed, 0);
}

TEST(JoinOptFires, OffMeansAllCountersZero) {
  opt::OptimizeStats st;
  std::string out = RunConfig(kJoinCases[0].query, 0, 1, &st);
  ASSERT_EQ(out.find("<error"), std::string::npos) << out;
  EXPECT_EQ(st.join_clusters, 0);
  EXPECT_EQ(st.joins_reordered, 0);
  EXPECT_EQ(st.selects_pushed, 0);
  EXPECT_EQ(st.key_distincts_removed, 0);
}

}  // namespace
}  // namespace pathfinder

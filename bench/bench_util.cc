#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "xmark/generator.h"
#include "xml/serializer.h"

namespace pathfinder::bench {

std::vector<double> ScaleFactors() {
  const char* env = std::getenv("PF_XMARK_SF_LIST");
  if (env == nullptr) return {0.0005, 0.002, 0.01, 0.05};
  std::vector<double> out;
  std::string s(env);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double ms = TimeMs(fn);
    if (ms < best) best = ms;
  }
  return best;
}

namespace {

std::map<double, std::unique_ptr<xml::Database>>& DbCache() {
  static auto* cache = new std::map<double, std::unique_ptr<xml::Database>>();
  return *cache;
}

}  // namespace

xml::Database* XMarkDb(double sf) {
  auto& cache = DbCache();
  auto it = cache.find(sf);
  if (it != cache.end()) return it->second.get();
  auto db = std::make_unique<xml::Database>();
  auto doc = xmark::GenerateXMark(sf, 42, db->pool());
  if (!doc.ok()) {
    std::fprintf(stderr, "XMark generation failed: %s\n",
                 doc.status().ToString().c_str());
    std::exit(1);
  }
  db->AddDocument("auction.xml", std::move(*doc));
  xml::Database* ptr = db.get();
  cache.emplace(sf, std::move(db));
  return ptr;
}

size_t XMarkXmlBytes(double sf) {
  static auto* memo = new std::map<double, size_t>();
  auto it = memo->find(sf);
  if (it != memo->end()) return it->second;
  xml::Database* db = XMarkDb(sf);
  size_t bytes = xml::SerializeDocument(db->doc(0), *db->pool()).size();
  memo->emplace(sf, bytes);
  return bytes;
}

std::string FmtMs(double ms) {
  char buf[32];
  if (ms < 0) return "DNF";
  if (ms < 10) {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  } else if (ms < 100) {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  }
  return buf;
}

std::string FmtFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", f);
  return buf;
}

}  // namespace pathfinder::bench

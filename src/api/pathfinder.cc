#include "api/pathfinder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "algebra/hash.h"
#include "algebra/print.h"
#include "engine/executor.h"
#include "frontend/canonical.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"
#include "runtime/serialize.h"

namespace pathfinder {

namespace {

std::string FmtProfileNs(int64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

void IndexProfile(
    const engine::OperatorProfile& p,
    std::unordered_map<int, const engine::OperatorProfile*>* by_id) {
  by_id->emplace(p.op_id, &p);
  for (const auto& c : p.children) IndexProfile(c, by_id);
}

/// Plan-cache key fingerprint: exactly the options that change the
/// built plan (context document, join recognition, optimizer, CSE,
/// join-graph pass, pipeline annotation). Execution-only knobs —
/// threads, staircase, profiling, the cache switches themselves —
/// produce identical plans and share entries.
std::string KeyFingerprint(const QueryOptions& o, bool cse, bool pipeline,
                           bool join_opt, bool path_summary) {
  std::string f;
  f += o.join_recognition ? 'j' : '-';
  f += o.optimize ? 'o' : '-';
  f += cse ? 'c' : '-';
  f += pipeline ? 'p' : '-';
  f += join_opt ? 'g' : '-';
  f += path_summary ? 's' : '-';
  f += '|';
  f += std::to_string(o.context_doc.size());
  f += ':';
  f += o.context_doc;
  f += '|';
  return f;
}

void SectionToJson(const char* name, const engine::CacheSectionStats& s,
                   std::string* out) {
  *out += '"';
  *out += name;
  *out += "\": {\"hits\": ";
  *out += std::to_string(s.hits);
  *out += ", \"misses\": ";
  *out += std::to_string(s.misses);
  *out += ", \"evictions\": ";
  *out += std::to_string(s.evictions);
  *out += ", \"entries\": ";
  *out += std::to_string(s.entries);
  *out += ", \"bytes\": ";
  *out += std::to_string(s.bytes);
  *out += "}";
}

}  // namespace

Result<std::string> QueryResult::Serialize() const {
  return runtime::SerializeSequence(*ctx, items);
}

std::string QueryResult::ProfileText() const {
  if (profile == nullptr || plan_opt == nullptr || ctx == nullptr) return "";
  std::unordered_map<int, const engine::OperatorProfile*> by_id;
  IndexProfile(*profile, &by_id);
  std::ostringstream head;
  head << "# opt: " << opt_stats.ops_before << "->" << opt_stats.ops_after
       << " ops, " << opt_stats.cse_merges << " cse merges, "
       << opt_stats.rounds << " rounds\n";
  head << "# joinopt: " << opt_stats.join_clusters << " clusters, "
       << opt_stats.joins_reordered << " reordered, "
       << opt_stats.selects_pushed << " selects pushed, "
       << opt_stats.key_distincts_removed << " key distincts removed\n";
  head << "# pathsum: " << opt_stats.structural_answers
       << " chains collapsed, " << scj_stats.structural_answers
       << " structural answers, " << scj_stats.path_partitions_pruned
       << " partitions pruned\n";
  head << "# cache: plan " << (plan_cache_hit ? "hit" : "miss")
       << ", subplan " << subplan_cache_hits << " hits / "
       << subplan_cache_misses << " misses; resident "
       << cache_stats.plan.entries << " plans ("
       << cache_stats.plan.bytes << " B), " << cache_stats.subplan.entries
       << " subplans (" << cache_stats.subplan.bytes << " B), "
       << (cache_stats.plan.evictions + cache_stats.subplan.evictions)
       << " evictions, budget " << cache_stats.budget_bytes << " B\n";
  head << "# cache: " << subplan_cache_admitted << " admitted / "
       << subplan_cache_rejects << " rejected (floor "
       << cache_stats.min_cost_us << " us), "
       << cache_stats.per_doc_invalidations
       << " per-doc invalidations over " << cache_stats.invalidations
       << " store changes\n";
  return head.str() +
         algebra::PlanToTextAnnotated(
             plan_opt, *ctx->pool(), [&](const algebra::Op& op) -> std::string {
               auto it = by_id.find(op.id);
               if (it == by_id.end()) return "";
               const engine::OperatorProfile& p = *it->second;
               if (p.fused) return "[fused]";
               std::ostringstream os;
               os << "[";
               if (p.cached) os << "cached, ";
               os << FmtProfileNs(p.wall_ns) << ", ";
               if (p.in_rows >= 0) os << p.in_rows << "->";
               os << p.out_rows << " rows, " << p.morsels << " morsels, "
                  << p.out_bytes << " B]";
               return os.str();
             });
}

std::string QueryResult::ProfileJson() const {
  if (profile == nullptr) return "";
  std::string out = "{\"opt_stats\": {\"ops_before\": ";
  out += std::to_string(opt_stats.ops_before);
  out += ", \"ops_after\": ";
  out += std::to_string(opt_stats.ops_after);
  out += ", \"projections_fused\": ";
  out += std::to_string(opt_stats.projections_fused);
  out += ", \"dead_columns_pruned\": ";
  out += std::to_string(opt_stats.dead_columns_pruned);
  out += ", \"distincts_removed\": ";
  out += std::to_string(opt_stats.distincts_removed);
  out += ", \"unions_simplified\": ";
  out += std::to_string(opt_stats.unions_simplified);
  out += ", \"cse_merges\": ";
  out += std::to_string(opt_stats.cse_merges);
  out += ", \"rounds\": ";
  out += std::to_string(opt_stats.rounds);
  out += ", \"join_clusters\": ";
  out += std::to_string(opt_stats.join_clusters);
  out += ", \"joins_reordered\": ";
  out += std::to_string(opt_stats.joins_reordered);
  out += ", \"selects_pushed\": ";
  out += std::to_string(opt_stats.selects_pushed);
  out += ", \"key_distincts_removed\": ";
  out += std::to_string(opt_stats.key_distincts_removed);
  out += ", \"structural_answers\": ";
  out += std::to_string(opt_stats.structural_answers);
  out += "}, \"pathsum\": {\"chains_collapsed\": ";
  out += std::to_string(opt_stats.structural_answers);
  out += ", \"structural_answers\": ";
  out += std::to_string(scj_stats.structural_answers);
  out += ", \"path_partitions_pruned\": ";
  out += std::to_string(scj_stats.path_partitions_pruned);
  out += "}, \"cache\": {\"plan_hit\": ";
  out += plan_cache_hit ? "true" : "false";
  out += ", \"subplan_hits\": ";
  out += std::to_string(subplan_cache_hits);
  out += ", \"subplan_misses\": ";
  out += std::to_string(subplan_cache_misses);
  out += ", \"subplan_admitted\": ";
  out += std::to_string(subplan_cache_admitted);
  out += ", \"subplan_rejects\": ";
  out += std::to_string(subplan_cache_rejects);
  out += ", ";
  SectionToJson("plan", cache_stats.plan, &out);
  out += ", ";
  SectionToJson("subplan", cache_stats.subplan, &out);
  out += ", \"invalidations\": ";
  out += std::to_string(cache_stats.invalidations);
  out += ", \"per_doc_invalidations\": ";
  out += std::to_string(cache_stats.per_doc_invalidations);
  out += ", \"admission_rejects\": ";
  out += std::to_string(cache_stats.admission_rejects);
  out += ", \"budget_bytes\": ";
  out += std::to_string(cache_stats.budget_bytes);
  out += ", \"min_cost_us\": ";
  out += std::to_string(cache_stats.min_cost_us);
  out += ", \"subplan_entries\": [";
  // Resident subplan section, MRU-first, capped to keep the JSON small.
  for (size_t i = 0; i < cache_stats.subplan_entries.size() && i < 32; ++i) {
    const engine::SubplanEntryCost& e = cache_stats.subplan_entries[i];
    if (i > 0) out += ", ";
    out += "{\"hash\": ";
    out += std::to_string(e.hash);
    out += ", \"bytes\": ";
    out += std::to_string(e.bytes);
    out += ", \"cost_us\": ";
    out += std::to_string(e.cost_us);
    out += "}";
  }
  out += "]}, \"plan\": ";
  out += engine::ProfileToJson(*profile);
  out += "}";
  return out;
}

Result<frontend::ExprPtr> Pathfinder::Translate(
    const std::string& query, const QueryOptions& opts) const {
  PF_ASSIGN_OR_RETURN(frontend::Module mod, frontend::ParseQuery(query));
  frontend::NormalizeOptions nopts;
  nopts.context_doc = opts.context_doc;
  return frontend::Normalize(mod, nopts);
}

Result<algebra::OpPtr> Pathfinder::CompilePlan(
    const frontend::ExprPtr& core, const QueryOptions& opts,
    compiler::CompileStats* stats) const {
  compiler::CompileOptions copts;
  copts.join_recognition = opts.join_recognition;
  return compiler::Compile(core, db_, copts, stats);
}

Result<QueryResult> Pathfinder::Run(const std::string& query,
                                    const QueryOptions& opts) const {
  QueryResult res;
  bool pipeline =
      opts.pipeline < 0 ? engine::PipelineDefault() : opts.pipeline != 0;
  bool cse =
      opts.optimize && (opts.cse < 0 ? opt::CseDefault() : opts.cse != 0);
  bool join_opt =
      opts.optimize &&
      (opts.join_opt < 0 ? opt::JoinOptDefault() : opts.join_opt != 0);
  // Unlike cse/join_opt this is not gated on `optimize`: the staircase
  // partition pruning and the summary-backed cost model apply to
  // unoptimized plans too; only the kPathScan rewrite needs the
  // optimizer.
  bool path_summary =
      opts.path_summary < 0 ? opt::PathSumDefault() : opts.path_summary != 0;
  engine::QueryCache* cache = cache_.get();
  if (opts.cache_budget_bytes >= 0) {
    cache->SetBudget(static_cast<size_t>(opts.cache_budget_bytes));
  }
  // Both cache sections are gated on a nonzero byte budget; within
  // that, each can be forced on/off per query.
  bool budget_on = cache->budget() > 0;
  bool plan_cache =
      budget_on && (opts.plan_cache < 0 || opts.plan_cache != 0);
  bool subplan_cache =
      budget_on && (opts.subplan_cache < 0 || opts.subplan_cache != 0);
  if (opts.cache_min_cost_us >= 0) {
    cache->SetMinCostUs(opts.cache_min_cost_us);
  }
  uint64_t cache_generation = 0;
  if (plan_cache || subplan_cache) {
    // Per-document invalidation: drops exactly the entries depending
    // on a document name whose version changed since the cache last
    // saw the store; entries over untouched documents stay, and with
    // cache_repair on, content-only updates evict nothing — plan
    // entries survive and value-free subplan entries are repaired.
    bool repair = opts.cache_repair < 0 ? engine::CacheRepairDefault()
                                        : opts.cache_repair != 0;
    xml::Database::DocVersions v = db_->Versions();
    cache->BeginQuery(v.generation, v.docs, repair);
    cache_generation = v.generation;
  }

  std::string raw_key, core_key;
  engine::PlanEntryPtr entry;
  if (plan_cache) {
    raw_key = "r:" + KeyFingerprint(opts, cse, pipeline, join_opt,
                                    path_summary) +
              query;
    entry = cache->LookupPlan(raw_key);
  }
  if (!entry) {
    PF_ASSIGN_OR_RETURN(res.core, Translate(query, opts));
    if (plan_cache) {
      // Tier 2: a differently spelled query with the same Core shares
      // the entry; remember the raw spelling for next time.
      core_key = "c:" + KeyFingerprint(opts, cse, pipeline, join_opt,
                                       path_summary) +
                 frontend::CanonicalCoreText(res.core);
      entry = cache->LookupPlan(core_key);
      if (entry) cache->AliasPlan(raw_key, entry);
    }
  }
  if (entry) {
    // Cached plans are shared and may be executing concurrently; they
    // are used exactly as published, never re-annotated.
    res.plan_cache_hit = true;
    res.core = entry->core;
    res.plan = entry->plan;
    res.plan_opt = entry->plan_opt;
    res.compile_stats = entry->compile_stats;
    res.opt_stats = entry->opt_stats;
    res.pipeline_stats = entry->pipeline_stats;
  } else {
    PF_ASSIGN_OR_RETURN(res.plan,
                        CompilePlan(res.core, opts, &res.compile_stats));
    if (opts.optimize) {
      opt::OptimizeOptions oopts;
      oopts.cse = cse;
      oopts.join_opt = join_opt;
      oopts.path_summary = path_summary;
      oopts.db = db_;
      PF_ASSIGN_OR_RETURN(res.plan_opt,
                          opt::Optimize(res.plan, &res.opt_stats, oopts));
    } else {
      res.plan_opt = res.plan;
    }
    if (pipeline) {
      PF_RETURN_NOT_OK(
          opt::AnnotatePipelines(res.plan_opt, &res.pipeline_stats));
    }
    if (plan_cache || subplan_cache) {
      engine::AnnotateCacheCandidates(res.plan_opt, *db_->pool());
    }
    if (plan_cache) {
      engine::PlanCacheEntry pe;
      pe.core = res.core;
      pe.plan = res.plan;
      pe.plan_opt = res.plan_opt;
      pe.compile_stats = res.compile_stats;
      pe.opt_stats = res.opt_stats;
      pe.pipeline_stats = res.pipeline_stats;
      pe.bytes = algebra::ApproxPlanBytes(res.plan) +
                 algebra::ApproxPlanBytes(res.plan_opt) + core_key.size();
      // The plan's document dependencies (root annotation): the entry
      // survives registrations of unrelated documents.
      pe.doc_deps = res.plan_opt->cache_docs;
      pe.doc_deps_unknown = res.plan_opt->cache_docs_unknown;
      entry = cache->InsertPlan(raw_key, core_key, std::move(pe));
      // Insert-if-absent: on a concurrent race the resident entry wins
      // so every executor shares one (immutably annotated) DAG.
      res.core = entry->core;
      res.plan = entry->plan;
      res.plan_opt = entry->plan_opt;
    }
  }

  res.ctx = std::make_unique<engine::QueryContext>(db_);
  res.ctx->use_staircase = opts.use_staircase;
  res.ctx->path_summary = path_summary;
  res.ctx->pipeline = pipeline;
  res.ctx->profile =
      opts.profile < 0 ? engine::ProfileDefault() : opts.profile != 0;
  res.ctx->SetNumThreads(opts.num_threads);
  {
    // Kernel tuning: -1 keeps the env-derived process default per
    // field; overrides are clamped once here so the kernels and the
    // fused-fragment morsel sizing see consistent values. All three
    // are result-neutral (and execution-only: they are deliberately
    // NOT part of the plan-cache key).
    bat::KernelTuning kt = res.ctx->tuning;
    if (opts.radix_bits >= 0) kt.radix_bits = opts.radix_bits;
    if (opts.morsel_rows >= 0) {
      kt.morsel_rows = static_cast<uint32_t>(
          std::min<int64_t>(opts.morsel_rows, int64_t{1} << 30));
    }
    if (opts.sort_chunk_rows >= 0) {
      kt.sort_chunk_rows = static_cast<uint32_t>(
          std::min<int64_t>(opts.sort_chunk_rows, int64_t{1} << 30));
    }
    res.ctx->tuning = kt.Clamped();
  }
  if (subplan_cache) {
    res.ctx->result_cache = cache;
    res.ctx->cache_generation = cache_generation;
  }
  {
    // Cancellation/limit plumbing: a caller-supplied token is used as
    // is; a timeout without one arms the context-owned token. Both are
    // polled at the executor's cooperative checkpoints.
    engine::CancelToken* token = opts.cancel_token;
    if (opts.timeout_ms >= 0) {
      if (token == nullptr) token = &res.ctx->owned_cancel_token;
      token->SetDeadline(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(opts.timeout_ms));
    }
    res.ctx->cancel_token = token;
    if (opts.mem_limit_bytes >= 0) {
      res.ctx->mem_limit_bytes = opts.mem_limit_bytes;
    }
    res.ctx->op_probe = opts.op_probe;
  }
  PF_ASSIGN_OR_RETURN(bat::Table t,
                      engine::Execute(res.plan_opt, res.ctx.get()));
  PF_ASSIGN_OR_RETURN(res.items, runtime::TableToSequence(t));
  res.scj_stats = res.ctx->scj_stats;
  res.pipe_stats = res.ctx->pipe_stats;
  res.subplan_cache_hits = res.ctx->subplan_cache_hits;
  res.subplan_cache_misses = res.ctx->subplan_cache_misses;
  res.subplan_cache_admitted = res.ctx->subplan_cache_admitted;
  res.subplan_cache_rejects = res.ctx->subplan_cache_rejects;
  if (plan_cache || subplan_cache) res.cache_stats = cache->Stats();
  res.profile = std::move(res.ctx->profile_result);
  return res;
}

}  // namespace pathfinder

#ifndef PATHFINDER_ENGINE_NODE_BUILD_H_
#define PATHFINDER_ENGINE_NODE_BUILD_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "bat/item.h"
#include "engine/query_context.h"
#include "xml/tree_builder.h"

namespace pathfinder::engine {

/// Runtime for the ε/τ constructors (paper Table 1).

/// Deep-copy the subtree rooted at `v` of `src` into `builder`
/// (document nodes copy their children).
void CopySubtree(const xml::Document& src, xml::Pre v,
                 xml::TreeBuilder* builder);

/// Construct one element node named `name` whose content is `items`
/// (in sequence order). XQuery content rules: attribute items become
/// attributes; nodes are deep-copied; runs of adjacent atomics are
/// joined with single spaces into one text node.
/// Returns the new node item.
Result<Item> BuildElement(QueryContext* ctx, const std::string& name,
                          const std::vector<Item>& items);

/// Construct a text node with the given content.
Item BuildText(QueryContext* ctx, const std::string& content);

/// Construct a standalone attribute node name="value".
Item BuildAttribute(QueryContext* ctx, const std::string& name,
                    const std::string& value);

/// The string value of a node item (attributes: their value; elements:
/// concatenated descendant text).
std::string NodeStringValue(const QueryContext& ctx, const Item& node);

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_NODE_BUILD_H_

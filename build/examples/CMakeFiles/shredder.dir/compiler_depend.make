# Empty compiler generated dependencies file for shredder.
# This may be replaced when dependencies are built.

// Kernel microbenchmarks (E8): throughput of the column-store bulk
// operators the algebra executes on — the back-end viability argument
// of paper Sec. 2 ("very efficiently implementable on any relational
// DBMS").

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "bat/kernel.h"

namespace pathfinder::bat {
namespace {

ColumnPtr RandomInts(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  auto c = Column::MakeInt(n);
  for (size_t i = 0; i < n; ++i) {
    c->ints().push_back(
        static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain))));
  }
  return c;
}

ColumnPtr RandomItems(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  auto c = Column::MakeItem(n);
  for (size_t i = 0; i < n; ++i) {
    c->items().push_back(Item::Int(
        static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)))));
  }
  return c;
}

void BM_FilterGather(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto pred = Column::MakeBool(n);
  for (size_t i = 0; i < n; ++i) pred->bools().push_back(rng.Chance(0.5));
  auto vals = RandomInts(n, 1000, 2);
  for (auto _ : state) {
    IdxVec idx = FilterIndices(*pred);
    benchmark::DoNotOptimize(Gather(*vals, idx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_FilterGather)->Range(1 << 10, 1 << 20);

void BM_HashJoinInt(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  StringPool pool;
  auto l = RandomInts(n, static_cast<int64_t>(n), 3);
  auto r = RandomInts(n, static_cast<int64_t>(n), 4);
  IdxVec li, ri;
  for (auto _ : state) {
    auto st = HashJoinIndices(*l, *r, pool, &li, &ri);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashJoinInt)->Range(1 << 10, 1 << 19);

void BM_HashJoinItems(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  StringPool pool;
  auto l = RandomItems(n, static_cast<int64_t>(n), 5);
  auto r = RandomItems(n, static_cast<int64_t>(n), 6);
  IdxVec li, ri;
  for (auto _ : state) {
    auto st = HashJoinIndices(*l, *r, pool, &li, &ri);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashJoinItems)->Range(1 << 10, 1 << 18);

void BM_MarkPartitioned(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  StringPool pool;
  Table t;
  t.AddCol("part", RandomInts(n, 64, 7));
  t.AddCol("key", RandomInts(n, 1 << 20, 8));
  for (auto _ : state) {
    auto col = Mark(t, {"part"}, {"key"}, pool);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_MarkPartitioned)->Range(1 << 10, 1 << 18);

void BM_MarkPresorted(benchmark::State& state) {
  // The sorted fast path the staircase join output hits.
  size_t n = static_cast<size_t>(state.range(0));
  StringPool pool;
  Table t;
  auto c = Column::MakeInt(n);
  for (size_t i = 0; i < n; ++i) {
    c->ints().push_back(static_cast<int64_t>(i / 16));
  }
  t.AddCol("part", std::move(c));
  for (auto _ : state) {
    auto col = Mark(t, {"part"}, {}, pool);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_MarkPresorted)->Range(1 << 10, 1 << 18);

void BM_DistinctInts(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Table t;
  t.AddCol("k", RandomInts(n, 256, 9));
  for (auto _ : state) {
    auto idx = DistinctIndices(t, {"k"});
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DistinctInts)->Range(1 << 10, 1 << 18);

void BM_GroupAggSum(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  StringPool pool;
  Table t;
  t.AddCol("g", RandomInts(n, 1024, 10));
  t.AddCol("v", RandomItems(n, 100, 11));
  for (auto _ : state) {
    auto r = GroupAgg(t, "g", "v", AggKind::kSum, pool, "g", "s");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_GroupAggSum)->Range(1 << 10, 1 << 18);

}  // namespace
}  // namespace pathfinder::bat

BENCHMARK_MAIN();

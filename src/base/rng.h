#ifndef PATHFINDER_BASE_RNG_H_
#define PATHFINDER_BASE_RNG_H_

#include <cstdint>

namespace pathfinder {

/// Deterministic xorshift64* PRNG.
///
/// Used by the XMark generator and the property-test drivers so that
/// every run (and every platform) produces identical documents and
/// workloads — a requirement for reproducible benchmark rows.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_RNG_H_

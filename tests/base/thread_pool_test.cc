#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pathfinder {
namespace {

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&](size_t, size_t, size_t) { called = true; });
  ParallelFor(nullptr, 0, 16, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NumChunksMatchesCeilDiv) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 4), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 4), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(4, 4), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 4), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(17, 4), 5u);
}

// The determinism contract: chunk boundaries are a function of (n,
// grain) only — never of the pool size. Every ordered-merge in the
// kernel relies on this.
TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  constexpr size_t kN = 1000, kGrain = 64;
  auto boundaries = [&](ThreadPool* pool) {
    size_t chunks = ThreadPool::NumChunks(kN, kGrain);
    std::vector<std::pair<size_t, size_t>> b(chunks);
    ParallelFor(pool, kN, kGrain,
                [&](size_t c, size_t lo, size_t hi) { b[c] = {lo, hi}; });
    return b;
  };
  auto serial = boundaries(nullptr);
  for (int threads : {1, 2, 3, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(boundaries(&pool), serial) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, EveryIndexCoveredExactlyOnce) {
  ThreadPool pool(7);
  constexpr size_t kN = 100001;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(kN, 97, [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPoolTest, ExceptionFromLowestChunkWins) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.ParallelFor(64, 1, [&](size_t c, size_t, size_t) {
        if (c == 3) throw std::runtime_error("chunk3");
        if (c == 40) throw std::runtime_error("chunk40");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk3");
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16, kInner = 100;
  std::vector<std::vector<int>> sums(kOuter, std::vector<int>(kInner, 0));
  pool.ParallelFor(kOuter, 1, [&](size_t c, size_t, size_t) {
    // A worker thread re-entering ParallelFor must not block on the
    // pool (deadlock) — it runs its chunks inline.
    pool.ParallelFor(kInner, 8, [&](size_t, size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) sums[c][i] += 1;
    });
  });
  for (const auto& row : sums) {
    for (int v : row) EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPoolTest, ParallelForStatusReturnsLowestIndexError) {
  ThreadPool pool(3);
  Status st = pool.ParallelForStatus(10, 1, [&](size_t c, size_t,
                                                size_t) -> Status {
    if (c == 2) return Status::Internal("err2");
    if (c == 7) return Status::Internal("err7");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("err2"), std::string::npos);

  // The free-function dispatcher has identical semantics serially.
  Status st2 = ParallelForStatus(nullptr, 10, 1,
                                 [&](size_t c, size_t, size_t) -> Status {
                                   return c == 5 ? Status::Internal("err5")
                                                 : Status::OK();
                                 });
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.message().find("err5"), std::string::npos);
}

TEST(ThreadPoolTest, ConcurrentExternalCallersSerialize) {
  ThreadPool pool(4);
  constexpr size_t kN = 20000;
  std::vector<int> a(kN, 0), b(kN, 0);
  std::thread t1([&] {
    for (int rep = 0; rep < 10; ++rep) {
      pool.ParallelFor(kN, 256, [&](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ++a[i];
      });
    }
  });
  std::thread t2([&] {
    for (int rep = 0; rep < 10; ++rep) {
      pool.ParallelFor(kN, 256, [&](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ++b[i];
      });
    }
  });
  t1.join();
  t2.join();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], 10);
    ASSERT_EQ(b[i], 10);
  }
}

TEST(ThreadPoolTest, DefaultNumThreadsHonorsEnv) {
  ::setenv("PF_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 5);
  ::setenv("PF_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  ::unsetenv("PF_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace pathfinder

#ifndef PATHFINDER_BASELINE_INTERP_H_
#define PATHFINDER_BASELINE_INTERP_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "bat/item.h"
#include "engine/query_context.h"
#include "frontend/ast.h"

namespace pathfinder::baseline {

/// Options for the navigational engine.
struct BaselineOptions {
  /// Document a leading "/" refers to.
  std::string context_doc;
};

struct BaselineResult {
  std::vector<Item> items;
  /// Owns constructed fragments referenced by `items`.
  std::unique_ptr<engine::QueryContext> ctx;

  Result<std::string> Serialize() const;
};

/// The X-Hive/DB stand-in (see DESIGN.md): a conventional navigational
/// XQuery engine. It shares Pathfinder's frontend (parser + Core
/// normalizer) but evaluates Core directly, item at a time:
///
///  * FLWOR clauses run as nested loops ("in a sense only do nested
///    loop, i.e., recursive, processing" — paper Sec. 2),
///  * axis steps traverse the tree per context node,
///  * value-based joins degenerate to nested loops (no join
///    recognition), which is exactly the behaviour the paper measures
///    for X-Hive on XMark Q8–Q12.
///
/// It doubles as the correctness oracle for the relational engine: both
/// implement the same dialect with identical (documented) semantics.
class Baseline {
 public:
  explicit Baseline(xml::Database* db) : db_(db) {}

  /// Parse, normalize, and interpret a query.
  Result<BaselineResult> Run(const std::string& query,
                             const BaselineOptions& opts = {}) const;

  /// Interpret an already normalized Core expression.
  Result<BaselineResult> RunCore(const frontend::ExprPtr& core) const;

 private:
  xml::Database* db_;
};

}  // namespace pathfinder::baseline

#endif  // PATHFINDER_BASELINE_INTERP_H_

#ifndef PATHFINDER_BASE_RESULT_H_
#define PATHFINDER_BASE_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "base/status.h"

namespace pathfinder {

/// Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result<T>: construct implicitly from a T or from a
/// Status; access the value only after checking ok().
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, like
  // arrow::Result, so `return value;` and `return SomeError();` both work.
  Result(T value) : v_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Evaluate a Result expression; on error propagate the Status, otherwise
/// bind the value to `lhs`.
#define PF_ASSIGN_OR_RETURN(lhs, expr)                       \
  PF_ASSIGN_OR_RETURN_IMPL(                                  \
      PF_RESULT_CONCAT(_pf_result_, __LINE__), lhs, expr)

#define PF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define PF_RESULT_CONCAT_INNER(a, b) a##b
#define PF_RESULT_CONCAT(a, b) PF_RESULT_CONCAT_INNER(a, b)

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_RESULT_H_

#include <gtest/gtest.h>

#include "api/pathfinder.h"
#include "baseline/interp.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace pathfinder::xmark {
namespace {

TEST(XMarkCountsTest, ScalesLinearly) {
  XMarkCounts c1 = XMarkCounts::ForScaleFactor(1.0);
  EXPECT_EQ(c1.items, 21750);
  EXPECT_EQ(c1.people, 25500);
  EXPECT_EQ(c1.open_auctions, 12000);
  EXPECT_EQ(c1.closed_auctions, 9750);
  EXPECT_EQ(c1.categories, 1000);
  XMarkCounts c01 = XMarkCounts::ForScaleFactor(0.1);
  EXPECT_EQ(c01.items, 2175);
  // Tiny scale factors still produce at least one of each entity.
  XMarkCounts tiny = XMarkCounts::ForScaleFactor(0.0000001);
  EXPECT_GE(tiny.people, 1);
}

TEST(XMarkGeneratorTest, DeterministicForSeed) {
  StringPool p1, p2;
  auto d1 = GenerateXMark(0.001, 7, &p1);
  auto d2 = GenerateXMark(0.001, 7, &p2);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->num_nodes(), d2->num_nodes());
  EXPECT_EQ(xml::SerializeDocument(*d1, p1),
            xml::SerializeDocument(*d2, p2));
}

TEST(XMarkGeneratorTest, DifferentSeedsDiffer) {
  StringPool p1, p2;
  auto d1 = GenerateXMark(0.001, 7, &p1);
  auto d2 = GenerateXMark(0.001, 8, &p2);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_NE(xml::SerializeDocument(*d1, p1),
            xml::SerializeDocument(*d2, p2));
}

TEST(XMarkGeneratorTest, ValidEncoding) {
  StringPool pool;
  auto doc = GenerateXMark(0.005, 42, &pool);
  ASSERT_TRUE(doc.ok());
  std::string err;
  EXPECT_TRUE(doc->Validate(&err)) << err;
}

TEST(XMarkGeneratorTest, SchemaLandmarksPresent) {
  xml::Database db;
  auto doc = GenerateXMark(0.002, 1, db.pool());
  ASSERT_TRUE(doc.ok());
  db.AddDocument("a.xml", std::move(*doc));
  Pathfinder pf(&db);
  QueryOptions o;
  o.context_doc = "a.xml";
  auto count = [&](const std::string& q) -> int64_t {
    auto r = pf.Run("count(" + q + ")", o);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " " << q;
    return r.ok() ? r->items[0].AsInt() : -1;
  };
  XMarkCounts c = XMarkCounts::ForScaleFactor(0.002);
  EXPECT_EQ(count("/site/regions/*"), 6);  // six continents
  EXPECT_EQ(count("/site//item"), c.items);
  EXPECT_EQ(count("/site/people/person"), c.people);
  EXPECT_EQ(count("/site/open_auctions/open_auction"), c.open_auctions);
  EXPECT_EQ(count("/site/closed_auctions/closed_auction"),
            c.closed_auctions);
  EXPECT_EQ(count("/site/categories/category"), c.categories);
  // References resolve: every closed auction buyer is a person id.
  auto r = pf.Run(
      "every $b in /site/closed_auctions/closed_auction/buyer satisfies "
      "exists(/site/people/person[@id = $b/@person])",
      o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->items[0].AsBool());
}

TEST(XMarkGeneratorTest, RoundTripsThroughParser) {
  StringPool pool;
  auto doc = GenerateXMark(0.001, 3, &pool);
  ASSERT_TRUE(doc.ok());
  std::string serialized = xml::SerializeDocument(*doc, pool);
  StringPool pool2;
  auto reparsed = xml::ParseXml(serialized, &pool2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_nodes(), doc->num_nodes());
}

TEST(XMarkQueriesTest, TwentyQueriesWithTitles) {
  const auto& qs = XMarkQueries();
  ASSERT_EQ(qs.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(qs[static_cast<size_t>(i)].number, i + 1);
    EXPECT_NE(qs[static_cast<size_t>(i)].title, nullptr);
    EXPECT_EQ(&GetXMarkQuery(i + 1), &qs[static_cast<size_t>(i)]);
  }
}

/// The headline correctness result: all 20 XMark queries produce
/// identical output on the relational engine and the navigational
/// baseline.
class XMarkDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  static xml::Database* db() {
    static xml::Database* db = [] {
      auto* d = new xml::Database();
      auto doc = GenerateXMark(0.003, 42, d->pool());
      EXPECT_TRUE(doc.ok());
      d->AddDocument("auction.xml", std::move(*doc));
      return d;
    }();
    return db;
  }
};

TEST_P(XMarkDifferentialTest, EnginesAgree) {
  const XMarkQuery& q = GetXMarkQuery(GetParam());
  Pathfinder pf(db());
  QueryOptions po;
  po.context_doc = "auction.xml";
  auto pr = pf.Run(q.text, po);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  auto ps = pr->Serialize();
  ASSERT_TRUE(ps.ok());

  baseline::Baseline bl(db());
  baseline::BaselineOptions bo;
  bo.context_doc = "auction.xml";
  auto br = bl.Run(q.text, bo);
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  auto bs = br->Serialize();
  ASSERT_TRUE(bs.ok());

  EXPECT_EQ(*ps, *bs) << "Q" << q.number << ": " << q.title;
  EXPECT_EQ(pr->items.size(), br->items.size());
}

TEST_P(XMarkDifferentialTest, OptimizerAndAblationsPreserveResults) {
  const XMarkQuery& q = GetXMarkQuery(GetParam());
  Pathfinder pf(db());
  QueryOptions base;
  base.context_doc = "auction.xml";
  auto reference = pf.Run(q.text, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto ref_s = reference->Serialize();
  ASSERT_TRUE(ref_s.ok());

  for (int mask = 0; mask < 3; ++mask) {
    QueryOptions o = base;
    o.join_recognition = mask != 0;
    o.optimize = mask != 1;
    o.use_staircase = mask != 2;
    auto r = pf.Run(q.text, o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto s = r->Serialize();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, *ref_s) << "Q" << q.number << " mask=" << mask;
  }
}

// Seed/scale robustness: a different document (seed 7, sf 0.001) must
// also be differential-clean on a representative query subset.
TEST(XMarkSecondSeedTest, EnginesAgree) {
  xml::Database db;
  auto doc = GenerateXMark(0.001, 7, db.pool());
  ASSERT_TRUE(doc.ok());
  db.AddDocument("auction.xml", std::move(*doc));
  Pathfinder pf(&db);
  baseline::Baseline bl(&db);
  QueryOptions po;
  po.context_doc = "auction.xml";
  baseline::BaselineOptions bo;
  bo.context_doc = "auction.xml";
  for (int qn : {1, 3, 6, 8, 11, 14, 19, 20}) {
    const XMarkQuery& q = GetXMarkQuery(qn);
    SCOPED_TRACE(q.number);
    auto pr = pf.Run(q.text, po);
    ASSERT_TRUE(pr.ok()) << pr.status().ToString();
    auto br = bl.Run(q.text, bo);
    ASSERT_TRUE(br.ok()) << br.status().ToString();
    EXPECT_EQ(*pr->Serialize(), *br->Serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, XMarkDifferentialTest,
                         ::testing::Range(1, 21),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "Q" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace pathfinder::xmark

file(REMOVE_RECURSE
  "libpf_opt.a"
)

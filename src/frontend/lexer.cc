#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

namespace pathfinder::frontend {

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEof:
      return "<eof>";
    case Tok::kName:
      return "name";
    case Tok::kInt:
      return "integer";
    case Tok::kDbl:
      return "double";
    case Tok::kStr:
      return "string";
    case Tok::kDollar:
      return "$";
    case Tok::kLParen:
      return "(";
    case Tok::kRParen:
      return ")";
    case Tok::kLBracket:
      return "[";
    case Tok::kRBracket:
      return "]";
    case Tok::kLBrace:
      return "{";
    case Tok::kRBrace:
      return "}";
    case Tok::kComma:
      return ",";
    case Tok::kSemicolon:
      return ";";
    case Tok::kColonEq:
      return ":=";
    case Tok::kColonColon:
      return "::";
    case Tok::kSlash:
      return "/";
    case Tok::kSlashSlash:
      return "//";
    case Tok::kAt:
      return "@";
    case Tok::kDot:
      return ".";
    case Tok::kDotDot:
      return "..";
    case Tok::kEq:
      return "=";
    case Tok::kNe:
      return "!=";
    case Tok::kLt:
      return "<";
    case Tok::kLe:
      return "<=";
    case Tok::kGt:
      return ">";
    case Tok::kGe:
      return ">=";
    case Tok::kLtLt:
      return "<<";
    case Tok::kGtGt:
      return ">>";
    case Tok::kPlus:
      return "+";
    case Tok::kMinus:
      return "-";
    case Tok::kStar:
      return "*";
    case Tok::kPipe:
      return "|";
    case Tok::kQuestion:
      return "?";
    case Tok::kDirectElemStart:
      return "<tag";
    case Tok::kDirectCloseStart:
      return "</";
  }
  return "?";
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) {}

void Lexer::SkipWsAndComments() {
  for (;;) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      if (input_[pos_] == '\n') ++line_;
      ++pos_;
    }
    // XQuery comments (: ... :) nest.
    if (pos_ + 1 < input_.size() && input_[pos_] == '(' &&
        input_[pos_ + 1] == ':') {
      int depth = 0;
      while (pos_ < input_.size()) {
        if (pos_ + 1 < input_.size() && input_[pos_] == '(' &&
            input_[pos_ + 1] == ':') {
          ++depth;
          pos_ += 2;
        } else if (pos_ + 1 < input_.size() && input_[pos_] == ':' &&
                   input_[pos_ + 1] == ')') {
          --depth;
          pos_ += 2;
          if (depth == 0) break;
        } else {
          if (input_[pos_] == '\n') ++line_;
          ++pos_;
        }
      }
      continue;
    }
    break;
  }
}

Status Lexer::Advance() { return Lex(); }

Status Lexer::SeekTo(size_t pos) {
  pos_ = pos;
  return Lex();
}

Status Lexer::Lex() {
  SkipWsAndComments();
  cur_ = Token{};
  cur_.line = line_;
  cur_.begin = pos_;
  if (pos_ >= input_.size()) {
    cur_.kind = Tok::kEof;
    cur_.end = pos_;
    return Status::OK();
  }
  char c = input_[pos_];
  auto single = [&](Tok t) {
    cur_.kind = t;
    ++pos_;
    cur_.end = pos_;
    return Status::OK();
  };
  auto pair = [&](Tok t) {
    cur_.kind = t;
    pos_ += 2;
    cur_.end = pos_;
    return Status::OK();
  };
  char n = pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(n)))) {
    size_t start = pos_;
    bool is_dbl = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ < input_.size() && input_[pos_] == '.' &&
        !(pos_ + 1 < input_.size() && input_[pos_ + 1] == '.')) {
      is_dbl = true;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < input_.size() &&
        (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      is_dbl = true;
      ++pos_;
      if (pos_ < input_.size() &&
          (input_[pos_] == '+' || input_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    std::string text(input_.substr(start, pos_ - start));
    cur_.end = pos_;
    if (is_dbl) {
      cur_.kind = Tok::kDbl;
      cur_.dval = std::strtod(text.c_str(), nullptr);
    } else {
      cur_.kind = Tok::kInt;
      cur_.ival = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  if (IsNameStart(c)) {
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    // prefix:name (but not "name::" which is an axis).
    if (pos_ + 1 < input_.size() && input_[pos_] == ':' &&
        input_[pos_ + 1] != ':' && IsNameStart(input_[pos_ + 1])) {
      ++pos_;
      while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    }
    cur_.kind = Tok::kName;
    cur_.text = std::string(input_.substr(start, pos_ - start));
    cur_.end = pos_;
    return Status::OK();
  }

  if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string out;
    while (pos_ < input_.size()) {
      char d = input_[pos_];
      if (d == quote) {
        // Doubled quote is an escaped quote.
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == quote) {
          out += quote;
          pos_ += 2;
          continue;
        }
        ++pos_;
        cur_.kind = Tok::kStr;
        cur_.text = std::move(out);
        cur_.end = pos_;
        return Status::OK();
      }
      if (d == '\n') ++line_;
      out += d;
      ++pos_;
    }
    return Status::ParseError("XQuery line " + std::to_string(line_) +
                              ": unterminated string literal");
  }

  switch (c) {
    case '$':
      return single(Tok::kDollar);
    case '(':
      return single(Tok::kLParen);
    case ')':
      return single(Tok::kRParen);
    case '[':
      return single(Tok::kLBracket);
    case ']':
      return single(Tok::kRBracket);
    case '{':
      return single(Tok::kLBrace);
    case '}':
      return single(Tok::kRBrace);
    case ',':
      return single(Tok::kComma);
    case ';':
      return single(Tok::kSemicolon);
    case ':':
      if (n == '=') return pair(Tok::kColonEq);
      if (n == ':') return pair(Tok::kColonColon);
      return Status::ParseError("XQuery line " + std::to_string(line_) +
                                ": stray ':'");
    case '/':
      if (n == '/') return pair(Tok::kSlashSlash);
      return single(Tok::kSlash);
    case '@':
      return single(Tok::kAt);
    case '.':
      if (n == '.') return pair(Tok::kDotDot);
      return single(Tok::kDot);
    case '=':
      return single(Tok::kEq);
    case '!':
      if (n == '=') return pair(Tok::kNe);
      return Status::ParseError("XQuery line " + std::to_string(line_) +
                                ": stray '!'");
    case '<':
      if (n == '<') return pair(Tok::kLtLt);
      if (n == '=') return pair(Tok::kLe);
      if (n == '/') return pair(Tok::kDirectCloseStart);
      if (IsNameStart(n)) return single(Tok::kDirectElemStart);
      return single(Tok::kLt);
    case '>':
      if (n == '>') return pair(Tok::kGtGt);
      if (n == '=') return pair(Tok::kGe);
      return single(Tok::kGt);
    case '+':
      return single(Tok::kPlus);
    case '-':
      return single(Tok::kMinus);
    case '*':
      return single(Tok::kStar);
    case '|':
      return single(Tok::kPipe);
    case '?':
      return single(Tok::kQuestion);
    default:
      return Status::ParseError("XQuery line " + std::to_string(line_) +
                                ": unexpected character '" +
                                std::string(1, c) + "'");
  }
}

}  // namespace pathfinder::frontend

# Empty dependencies file for pf_base.
# This may be replaced when dependencies are built.

#include "base/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace pathfinder {

namespace {

// Set while a thread executes chunks of some job; a nested ParallelFor
// from such a thread runs inline instead of blocking on the pool.
thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
    if (stop_) return;
    seen = job_seq_;
    std::shared_ptr<Job> job = job_;
    lk.unlock();
    if (job) RunChunks(job.get());
    lk.lock();
  }
}

void ThreadPool::RunChunks(Job* job) {
  bool was_worker = tls_in_worker;
  tls_in_worker = true;
  while (true) {
    size_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->chunks) break;
    size_t lo = c * job->grain;
    size_t hi = std::min(job->n, lo + job->grain);
    try {
      (*job->fn)(c, lo, hi);
    } catch (...) {
      job->errs[c] = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (++job->done == job->chunks) done_cv_.notify_all();
  }
  tls_in_worker = was_worker;
}

void ThreadPool::RunSerial(size_t n, size_t grain, size_t chunks,
                           const ChunkFn& fn) {
  // Same all-chunks-run + lowest-index-exception semantics as the pool
  // path, so callers observe identical behavior either way.
  std::exception_ptr first_err;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = c * grain;
    size_t hi = std::min(n, lo + grain);
    try {
      fn(c, lo, hi);
    } catch (...) {
      if (!first_err) first_err = std::current_exception();
    }
  }
  if (first_err) std::rethrow_exception(first_err);
}

void ThreadPool::ParallelFor(size_t n, size_t grain, const ChunkFn& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  size_t chunks = NumChunks(n, grain);
  if (num_threads_ == 1 || chunks == 1 || tls_in_worker) {
    RunSerial(n, grain, chunks, fn);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->chunks = chunks;
  job->errs.resize(chunks);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  RunChunks(job.get());  // the caller participates
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return job->done == job->chunks; });
  }
  for (std::exception_ptr& e : job->errs) {
    if (e) std::rethrow_exception(e);
  }
}

Status ThreadPool::ParallelForStatus(size_t n, size_t grain,
                                     const ChunkStatusFn& fn) {
  std::vector<Status> sts(NumChunks(n, grain));
  ParallelFor(n, grain, [&](size_t c, size_t lo, size_t hi) {
    sts[c] = fn(c, lo, hi);
  });
  for (Status& s : sts) PF_RETURN_NOT_OK(s);
  return Status::OK();
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("PF_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool* ThreadPool::Default() {
  static const int n = DefaultNumThreads();
  if (n <= 1) return nullptr;
  static ThreadPool pool(n);
  return &pool;
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const ThreadPool::ChunkFn& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, fn);
    return;
  }
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::exception_ptr first_err;
  size_t chunks = ThreadPool::NumChunks(n, grain);
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = c * grain;
    size_t hi = std::min(n, lo + grain);
    try {
      fn(c, lo, hi);
    } catch (...) {
      if (!first_err) first_err = std::current_exception();
    }
  }
  if (first_err) std::rethrow_exception(first_err);
}

Status ParallelForStatus(ThreadPool* pool, size_t n, size_t grain,
                         const ThreadPool::ChunkStatusFn& fn) {
  std::vector<Status> sts(ThreadPool::NumChunks(n, grain));
  ParallelFor(pool, n, grain, [&](size_t c, size_t lo, size_t hi) {
    sts[c] = fn(c, lo, hi);
  });
  for (Status& s : sts) PF_RETURN_NOT_OK(s);
  return Status::OK();
}

}  // namespace pathfinder

// Path-summary benchmark & gate: the structural XMark queries (Q1-Q7)
// with path summaries (PF_PATHSUM) on and off, plus a multi-document
// corpus scenario where one plan touches several per-document
// summaries.
//
// Hard gates (exit 1), in both full and --smoke mode:
//   * byte-identity: every query serializes identically with summaries
//     on and off, at 1, 2, and 7 threads (the machinery must be
//     invisible in the result bytes);
//   * counters fire: the pure structural chains collapse to path scans
//     and the name-test staircase joins prune partitions (per-query
//     floors below);
//   * off means off: path_summary=0 keeps all pathsum counters at 0;
//   * the emitted BENCH_pathsum.json re-reads and parses.
//
// Timing gates (full mode only — smoke timings are microseconds of
// noise): with a warmed plan cache no query may regress past
// off/on < 0.70, and the geomean over Q1-Q7 must show a measurable win
// (>= 1.05). The wins concentrate in the chain-heavy queries where a
// handful of partition lookups replace full staircase scans.
//
// Usage:
//   --smoke   sf 0.002, identity/counters/JSON gates only

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/pathfinder.h"
#include "bench/bench_util.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/database.h"

namespace pathfinder::bench {
namespace {

struct PathQuery {
  std::string name;
  std::string text;
  int min_chains = 0;           // opt_stats.structural_answers floor
  size_t min_structural = 0;    // scj_stats.structural_answers floor
  size_t min_pruned = 0;        // scj_stats.path_partitions_pruned floor
};

std::vector<PathQuery> Queries() {
  std::vector<PathQuery> qs;
  for (int qn = 1; qn <= 7; ++qn) {
    PathQuery q;
    q.name = "Q" + std::to_string(qn);
    q.text = xmark::GetXMarkQuery(qn).text;
    // Structure, not scale, determines the floors: Q1-Q6 open with a
    // pure root-anchored chain of >= 2 steps that collapses to a path
    // scan; Q7's only chain is the single step /site (not collapsible)
    // but its three descendant scans prune to tag partitions.
    if (qn == 7) {
      q.min_pruned = 1;
    } else {
      q.min_chains = 1;
      q.min_structural = 1;
    }
    qs.push_back(std::move(q));
  }
  // Pure chain + aggregate: answered from partitions alone.
  qs.push_back({"C1", "count(/site/regions/africa/item)", 1, 1, 0});
  qs.push_back({"C2", "/site/open_auctions/open_auction/bidder/increase", 1,
                1, 0});
  // Non-root contexts: not rewritable, but the descendant scan prunes.
  qs.push_back({"P1",
                "for $a in /site/open_auctions/open_auction "
                "return count($a//keyword)",
                1, 1, 1});
  return qs;
}

struct QueryReport {
  std::string name;
  double on_ms = 0, off_ms = 0;
  int chains = 0;
  size_t structural = 0, pruned = 0;
};

int RunIdentityAndCounters(xml::Database* db,
                           const std::vector<PathQuery>& queries,
                           std::vector<QueryReport>* reports) {
  int failures = 0;
  for (const PathQuery& q : queries) {
    Pathfinder pf(db);
    QueryReport rep;
    rep.name = q.name;
    std::string baseline;
    for (int on : {0, 1}) {
      for (int threads : {1, 2, 7}) {
        QueryOptions o;
        o.context_doc = "auction.xml";
        o.path_summary = on;
        o.num_threads = threads;
        o.plan_cache = 0;    // both variants must pass the optimizer
        o.subplan_cache = 0;  // counters require real execution, not replay
        auto r = pf.Run(q.text, o);
        if (!r.ok()) {
          std::fprintf(stderr, "FAIL %s pathsum=%d threads=%d: %s\n",
                       q.name.c_str(), on, threads,
                       r.status().ToString().c_str());
          return -1;
        }
        auto s = r->Serialize();
        if (!s.ok()) {
          std::fprintf(stderr, "FAIL %s: serialize\n", q.name.c_str());
          return -1;
        }
        if (baseline.empty()) {
          baseline = *s;
        } else if (*s != baseline) {
          std::fprintf(stderr,
                       "FAIL %s: pathsum=%d threads=%d changed the result "
                       "bytes\n",
                       q.name.c_str(), on, threads);
          ++failures;
        }
        if (on == 0 && (r->opt_stats.structural_answers != 0 ||
                        r->scj_stats.structural_answers != 0 ||
                        r->scj_stats.path_partitions_pruned != 0)) {
          std::fprintf(stderr,
                       "FAIL %s: pathsum counters nonzero with summaries "
                       "off\n",
                       q.name.c_str());
          ++failures;
        }
        if (on == 1 && threads == 1) {
          rep.chains = r->opt_stats.structural_answers;
          rep.structural = r->scj_stats.structural_answers;
          rep.pruned = r->scj_stats.path_partitions_pruned;
        }
      }
    }
    if (rep.chains < q.min_chains || rep.structural < q.min_structural ||
        rep.pruned < q.min_pruned) {
      std::fprintf(stderr,
                   "FAIL %s: counters below floor (chains %d/%d, "
                   "structural %zu/%zu, pruned %zu/%zu)\n",
                   q.name.c_str(), rep.chains, q.min_chains, rep.structural,
                   q.min_structural, rep.pruned, q.min_pruned);
      ++failures;
    }
    reports->push_back(std::move(rep));
  }
  return failures;
}

// Registers one XMark instance named corpus<i>.xml; returns false on
// generation failure.
bool AddCorpusDoc(double sf, uint64_t seed, int index, xml::Database* db) {
  auto doc = xmark::GenerateXMark(sf, seed, db->pool());
  if (!doc.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 doc.status().ToString().c_str());
    return false;
  }
  db->AddDocument("corpus" + std::to_string(index) + ".xml",
                  std::move(*doc));
  return true;
}

// Multi-document corpus: three XMark instances under distinct names,
// one summary each; a single plan crossing all three must consume every
// summary and stay byte-identical on/off.
int RunCorpusScenario(double sf, bool smoke, double* on_ms, double* off_ms) {
  static xml::Database* db = nullptr;
  if (db == nullptr) {
    db = new xml::Database();
    for (int i = 0; i < 3; ++i) {
      if (!AddCorpusDoc(sf / 2, 100 + i, i, db)) return -1;
    }
  }
  const std::string query =
      "count(doc(\"corpus0.xml\")/site/regions/africa/item) + "
      "count(doc(\"corpus1.xml\")/site/regions/asia/item) + "
      "count(doc(\"corpus2.xml\")//keyword)";
  Pathfinder pf(db);
  std::string baseline;
  for (int on : {0, 1}) {
    for (int threads : {1, 2, 7}) {
      QueryOptions o;
      o.path_summary = on;
      o.num_threads = threads;
      o.plan_cache = 0;
      o.subplan_cache = 0;
      auto r = pf.Run(query, o);
      if (!r.ok()) {
        std::fprintf(stderr, "FAIL corpus pathsum=%d threads=%d: %s\n", on,
                     threads, r.status().ToString().c_str());
        return -1;
      }
      auto s = r->Serialize();
      if (!s.ok()) return -1;
      if (baseline.empty()) {
        baseline = *s;
      } else if (*s != baseline) {
        std::fprintf(stderr,
                     "FAIL corpus: pathsum=%d threads=%d changed the result "
                     "bytes\n",
                     on, threads);
        return 1;
      }
      if (on == 1 && threads == 1 &&
          r->opt_stats.structural_answers < 2) {
        std::fprintf(stderr,
                     "FAIL corpus: expected >= 2 collapsed chains across "
                     "documents, got %d\n",
                     r->opt_stats.structural_answers);
        return 1;
      }
    }
  }
  int reps = smoke ? 1 : 5;
  for (int on : {1, 0}) {
    QueryOptions o;
    o.path_summary = on;
    o.num_threads = 1;
    o.subplan_cache = 0;
    auto warm = pf.Run(query, o);
    if (!warm.ok()) return -1;
    double ms = BestOfMs(reps, [&] {
      auto r = pf.Run(query, o);
      if (!r.ok()) std::exit(1);
    });
    *(on ? on_ms : off_ms) = ms;
  }
  return 0;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  double sf = smoke ? 0.002 : ScaleFactors().back();
  xml::Database* db = XMarkDb(sf);
  std::vector<PathQuery> queries = Queries();

  std::printf("Path summaries (PF_PATHSUM) on XMark sf %g\n\n", sf);
  std::printf("%-5s %10s %10s %8s %7s %11s %8s\n", "query", "on", "off",
              "off/on", "chains", "structural", "pruned");

  std::vector<QueryReport> reports;
  int failures = RunIdentityAndCounters(db, queries, &reports);
  if (failures < 0) return 1;

  // Warm-plan timing: plan cache on, so the optimizer cost is paid once
  // and the comparison is execution of path scans + pruned staircases
  // vs. full staircase scans.
  int reps = smoke ? 1 : 5;
  for (size_t i = 0; i < queries.size(); ++i) {
    const PathQuery& q = queries[i];
    QueryReport& rep = reports[i];
    for (int on : {1, 0}) {
      Pathfinder pf(db);
      QueryOptions o;
      o.context_doc = "auction.xml";
      o.path_summary = on;
      o.num_threads = 1;
      o.subplan_cache = 0;  // time the execution, not a cache replay
      auto warm = pf.Run(q.text, o);  // populate the plan cache
      if (!warm.ok()) {
        std::fprintf(stderr, "FAIL %s warmup\n", q.name.c_str());
        return 1;
      }
      double ms = BestOfMs(reps, [&] {
        auto r = pf.Run(q.text, o);
        if (!r.ok()) std::exit(1);
      });
      (on ? rep.on_ms : rep.off_ms) = ms;
    }
    std::printf("%-5s %10s %10s %7.2fx %7d %11zu %8zu\n", rep.name.c_str(),
                FmtMs(rep.on_ms).c_str(), FmtMs(rep.off_ms).c_str(),
                rep.on_ms > 0 ? rep.off_ms / rep.on_ms : 0.0, rep.chains,
                rep.structural, rep.pruned);
    std::fflush(stdout);
  }

  double corpus_on = 0, corpus_off = 0;
  int corpus_rc = RunCorpusScenario(sf, smoke, &corpus_on, &corpus_off);
  if (corpus_rc < 0) return 1;
  failures += corpus_rc;
  std::printf("%-5s %10s %10s %7.2fx   (3-document corpus)\n", "M1",
              FmtMs(corpus_on).c_str(), FmtMs(corpus_off).c_str(),
              corpus_on > 0 ? corpus_off / corpus_on : 0.0);

  // Timing gates (full mode): never slower per query, measurable
  // geomean win over the structural XMark subset Q1-Q7.
  if (!smoke) {
    double log_sum = 0;
    int structural_n = 0;
    for (const QueryReport& rep : reports) {
      double ratio = rep.on_ms > 0 ? rep.off_ms / rep.on_ms : 1.0;
      if (ratio < 0.70) {
        std::fprintf(stderr, "FAIL %s: summaries-on is %.2fx of off\n",
                     rep.name.c_str(), ratio);
        ++failures;
      }
      if (rep.name[0] == 'Q') {
        log_sum += std::log(ratio);
        ++structural_n;
      }
    }
    double geomean = std::exp(log_sum / structural_n);
    std::printf("\ngeomean off/on (Q1-Q7): %.3fx\n", geomean);
    if (geomean < 1.05) {
      std::fprintf(stderr, "FAIL geomean %.3f < 1.05\n", geomean);
      ++failures;
    }
  }

  // Emit + re-read the JSON report.
  const char* path = "BENCH_pathsum.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\"sf\": %g, \"queries\": [", sf);
  for (size_t i = 0; i < reports.size(); ++i) {
    const QueryReport& r = reports[i];
    std::fprintf(f,
                 "%s\n  {\"query\": \"%s\", \"on_ms\": %.3f, \"off_ms\": "
                 "%.3f, \"ratio\": %.3f, \"chains\": %d, \"structural\": "
                 "%zu, \"pruned\": %zu}",
                 i ? "," : "", r.name.c_str(), r.on_ms, r.off_ms,
                 r.on_ms > 0 ? r.off_ms / r.on_ms : 0.0, r.chains,
                 r.structural, r.pruned);
  }
  std::fprintf(f,
               "\n], \"corpus\": {\"docs\": 3, \"on_ms\": %.3f, "
               "\"off_ms\": %.3f}}\n",
               corpus_on, corpus_off);
  std::fclose(f);
  std::printf("wrote %s\n", path);

  f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot re-read %s\n", path);
    return 1;
  }
  std::string contents;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(f);
  if (!ValidJsonDocument(contents)) {
    std::fprintf(stderr, "%s: emitted JSON does not parse\n", path);
    return 1;
  }
  std::printf("%s parses as valid JSON (%zu bytes)\n", path,
              contents.size());

  if (failures > 0) {
    std::fprintf(stderr, "\n%d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main(int argc, char** argv) {
  return pathfinder::bench::Main(argc, argv);
}

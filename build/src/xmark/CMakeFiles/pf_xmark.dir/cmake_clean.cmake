file(REMOVE_RECURSE
  "CMakeFiles/pf_xmark.dir/generator.cc.o"
  "CMakeFiles/pf_xmark.dir/generator.cc.o.d"
  "CMakeFiles/pf_xmark.dir/queries.cc.o"
  "CMakeFiles/pf_xmark.dir/queries.cc.o.d"
  "libpf_xmark.a"
  "libpf_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

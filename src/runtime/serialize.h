#ifndef PATHFINDER_RUNTIME_SERIALIZE_H_
#define PATHFINDER_RUNTIME_SERIALIZE_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "bat/table.h"
#include "engine/query_context.h"

namespace pathfinder::runtime {

/// Extract the item sequence from an executed (iter, pos, item) result
/// table (already sorted by the Serialize operator). Top-level queries
/// run in the single iteration 1.
Result<std::vector<Item>> TableToSequence(const bat::Table& t);

/// XQuery serialization of one item: nodes render as XML, atomics as
/// their lexical value.
Result<std::string> SerializeItem(const engine::QueryContext& ctx,
                                  const Item& item);

/// Serialize a whole sequence; adjacent atomic values are separated by
/// single spaces (W3C XML serialization of sequences).
Result<std::string> SerializeSequence(const engine::QueryContext& ctx,
                                      const std::vector<Item>& items);

}  // namespace pathfinder::runtime

#endif  // PATHFINDER_RUNTIME_SERIALIZE_H_

#ifndef PATHFINDER_SERVE_HOOKS_H_
#define PATHFINDER_SERVE_HOOKS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "engine/query_context.h"

namespace pathfinder::serve {

/// Fault-injection seams for the serve test harness. Every failure
/// mode the server must survive — slow clients, mid-frame disconnects,
/// timeouts inside a specific kernel, cancel racing completion — is
/// made deterministically reproducible by blocking or firing at these
/// points instead of relying on wall-clock races.
///
/// All hooks may be invoked concurrently from session, worker, and
/// executor threads; installers must make their closures thread-safe.
/// An empty std::function means "no injection" and costs one branch.
struct ServeTestHooks {
  /// What an injected writer fault does to the next send().
  enum class WriteFault : uint8_t {
    kNone,   // write normally
    kDrop,   // swallow the bytes (report success, send nothing)
    kClose,  // shut the connection down instead of writing (close-at-byte)
  };

  /// Called before every recv() on a session socket. Sleep inside to
  /// model a slow client trickling bytes into the server.
  std::function<void(uint64_t session_id)> before_read;

  /// Called before every send() chunk with the count of bytes already
  /// written on that connection; the returned fault is applied to this
  /// chunk. Returning kClose at byte N is the "close-at-byte"
  /// injection: the client sees a mid-frame disconnect.
  std::function<WriteFault(uint64_t session_id, int64_t bytes_written)>
      on_write;

  /// Forwarded to every query's executor checkpoint (see
  /// engine::OpProbe): fires with each operator about to run and the
  /// query's cancel token. Cancellation-at-operator lives here — fire
  /// token->Cancel()/Timeout() when the target operator kind appears,
  /// or block to hold a query at a known plan position.
  engine::OpProbe at_operator;

  /// Called when a session's read loop ends (client disconnected or
  /// the frame limit closed the connection).
  std::function<void(uint64_t session_id)> on_disconnect;

  /// Called after a query job fully finished: response write attempted,
  /// inflight slot reclaimed. `error` is empty for success, else the
  /// wire error token.
  std::function<void(uint64_t session_id, const std::string& query_id,
                     const std::string& error)>
      on_query_done;
};

}  // namespace pathfinder::serve

#endif  // PATHFINDER_SERVE_HOOKS_H_

#ifndef PATHFINDER_SERVE_CLIENT_H_
#define PATHFINDER_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "serve/json.h"

namespace pathfinder::serve {

/// Minimal blocking client for the pf_serve line protocol, used by the
/// serve tests and bench_serve. Reads are poll()-timed so a server bug
/// (or an injected fault) fails a test with a Timeout status instead of
/// hanging it.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& o) noexcept : fd_(o.fd_), buf_(std::move(o.buf_)) {
    o.fd_ = -1;
  }
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:port.
  Status Connect(int port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send one raw frame; '\n' is appended.
  Status SendLine(std::string_view line);

  /// Send exactly these bytes (no framing) — for mid-frame fault tests.
  Status SendRaw(std::string_view bytes);

  /// Read one '\n'-terminated frame (newline stripped). Times out with
  /// Status::Timeout; a server-side close yields Status::NotFound("eof").
  Result<std::string> ReadLine(int timeout_ms = 5000);

  /// SendLine + ReadLine + ParseJson of the response.
  Result<JsonValue> Call(std::string_view line, int timeout_ms = 5000);

  /// Half-close the write side (server sees EOF; responses still flow).
  void CloseSend();

  /// Full close (server sees the disconnect).
  void Close();

  // --- convenience request builders -------------------------------------

  static std::string PingFrame();
  static std::string RegisterFrame(std::string_view name,
                                   std::string_view xml);
  static std::string QueryFrame(std::string_view id, std::string_view query,
                                std::string_view doc = {});
  /// `action` is "insert" | "delete" | "replace"; `xml` rides with
  /// insert, `value` with replace, `position` < 0 means append.
  static std::string UpdateFrame(std::string_view id, std::string_view doc,
                                 std::string_view action, uint32_t target,
                                 int32_t position = -1,
                                 std::string_view xml = {},
                                 std::string_view value = {});
  static std::string CancelFrame(std::string_view id);
  static std::string StatsFrame();

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned frame
};

}  // namespace pathfinder::serve

#endif  // PATHFINDER_SERVE_CLIENT_H_

#include "opt/optimize.h"

#include <cstdlib>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "algebra/hash.h"
#include "algebra/schema.h"
#include "opt/join_graph.h"
#include "opt/path_rewrite.h"

namespace pathfinder::opt {

namespace {

namespace alg = pathfinder::algebra;
using alg::Op;
using alg::OpKind;
using alg::OpPtr;
using ColSet = std::set<std::string>;

// ---------------------------------------------------------------------
// Dead-column analysis: which output columns of each node does any
// consumer actually read?

struct Required {
  std::unordered_map<const Op*, ColSet> req;

  void Add(const Op* op, const std::string& c) { req[op].insert(c); }
  void AddAll(const Op* op, const ColSet& cs) {
    req[op].insert(cs.begin(), cs.end());
  }
  void AddSchema(const Op* op, const alg::Schema& s) {
    for (const auto& [n, t] : s.cols) req[op].insert(n);
  }
};

Result<Required> AnalyzeRequired(
    const OpPtr& root,
    const std::unordered_map<const Op*, alg::Schema>& schemas) {
  Required r;
  std::vector<Op*> order = alg::TopoOrder(root);
  // Root needs its full schema.
  r.AddSchema(root.get(), schemas.at(root.get()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Op* op = *it;
    const ColSet& R = r.req[op];
    auto child = [&](size_t i) { return op->children[i].get(); };
    switch (op->kind) {
      case OpKind::kLitTable:
        break;
      case OpKind::kProject:
        for (const auto& [nw, old] : op->proj) {
          if (R.count(nw)) r.Add(child(0), old);
        }
        break;
      case OpKind::kAttach: {
        ColSet cs = R;
        cs.erase(op->out);
        r.AddAll(child(0), cs);
        break;
      }
      case OpKind::kSelect: {
        r.AddAll(child(0), R);
        r.Add(child(0), op->col);
        break;
      }
      case OpKind::kDisjointUnion:
        // Both sides must keep identical schemas; narrowing only one
        // side (whichever happens to be a Project) would desynchronize
        // them, so require the full width from both.
        r.AddSchema(child(0), schemas.at(child(0)));
        r.AddSchema(child(1), schemas.at(child(1)));
        break;
      case OpKind::kDifference: {
        r.AddAll(child(0), R);
        for (const auto& k : op->keys) {
          r.Add(child(0), k);
          r.Add(child(1), k);
        }
        break;
      }
      case OpKind::kDistinct: {
        if (op->keys.empty()) {
          r.AddSchema(child(0), schemas.at(child(0)));
        } else {
          r.AddAll(child(0), R);
          for (const auto& k : op->keys) r.Add(child(0), k);
        }
        break;
      }
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
      case OpKind::kCross: {
        const alg::Schema& sa = schemas.at(child(0));
        const alg::Schema& sb = schemas.at(child(1));
        for (const auto& c : R) {
          if (sa.Has(c)) r.Add(child(0), c);
          if (sb.Has(c)) r.Add(child(1), c);
        }
        if (op->kind != OpKind::kCross) {
          r.Add(child(0), op->col);
          r.Add(child(1), op->col2);
        } else {
          // A side with nothing required still contributes its row
          // count; keep its first column.
          if (r.req[child(0)].empty() && !sa.cols.empty()) {
            r.Add(child(0), sa.cols[0].first);
          }
          if (r.req[child(1)].empty() && !sb.cols.empty()) {
            r.Add(child(1), sb.cols[0].first);
          }
        }
        break;
      }
      case OpKind::kRowNum: {
        ColSet cs = R;
        cs.erase(op->out);
        r.AddAll(child(0), cs);
        for (const auto& k : op->part) r.Add(child(0), k);
        for (const auto& k : op->order) r.Add(child(0), k);
        break;
      }
      case OpKind::kStep:
      case OpKind::kDocRoot:
      case OpKind::kPathScan:
        r.Add(child(0), "iter");
        r.Add(child(0), "item");
        break;
      case OpKind::kElemConstr:
        r.Add(child(0), "iter");
        r.Add(child(0), "item");
        r.Add(child(1), "iter");
        r.Add(child(1), "pos");
        r.Add(child(1), "item");
        break;
      case OpKind::kTextConstr:
      case OpKind::kAttrConstr:
        r.Add(child(0), "iter");
        r.Add(child(0), "pos");
        r.Add(child(0), "item");
        break;
      case OpKind::kStrJoin:
        r.Add(child(0), "iter");
        r.Add(child(0), "pos");
        r.Add(child(0), "item");
        r.Add(child(1), "iter");
        r.Add(child(1), "item");
        break;
      case OpKind::kFun1: {
        ColSet cs = R;
        cs.erase(op->out);
        r.AddAll(child(0), cs);
        r.Add(child(0), op->col);
        break;
      }
      case OpKind::kFun2: {
        ColSet cs = R;
        cs.erase(op->out);
        r.AddAll(child(0), cs);
        r.Add(child(0), op->col);
        r.Add(child(0), op->col2);
        break;
      }
      case OpKind::kAggr:
        r.Add(child(0), op->col);
        if (!op->col2.empty()) r.Add(child(0), op->col2);
        break;
      case OpKind::kSort: {
        r.AddAll(child(0), R);
        for (const auto& k : op->order) r.Add(child(0), k);
        break;
      }
      case OpKind::kRank: {
        ColSet cs = R;
        cs.erase(op->out);
        r.AddAll(child(0), cs);
        break;
      }
      case OpKind::kSerialize:
        r.Add(child(0), "iter");
        r.Add(child(0), "pos");
        r.Add(child(0), "item");
        break;
    }
  }
  return r;
}

// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// CSE / DAG-ification: hash-consing over the plan.
//
// Rebuilds the DAG bottom-up, replacing every node with a canonical
// representative: children are canonicalized first, so two subtrees are
// structurally equal exactly when their local parameters match (under
// the canonical orderings of algebra/hash.h) and their canonical
// children are the *same nodes*. Buckets are keyed by the combined
// hash; collisions fall back to LocalParamsEqual.

class CseMerger {
 public:
  OpPtr Rec(const OpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return it->second;
    std::vector<OpPtr> kids;
    kids.reserve(op->children.size());
    bool kid_changed = false;
    for (const auto& c : op->children) {
      OpPtr nc = Rec(c);
      kid_changed |= nc.get() != c.get();
      kids.push_back(std::move(nc));
    }
    OpPtr node = op;
    if (kid_changed) {
      node = std::make_shared<Op>(*op);
      node->children = std::move(kids);
    }
    uint64_t h = alg::LocalParamsHash(*node);
    for (const auto& c : node->children) {
      h = alg::CombineChildHash(h, rep_hash_.at(c.get()));
    }
    for (const OpPtr& cand : buckets_[h]) {
      if (cand.get() == node.get()) continue;
      if (cand->children.size() != node->children.size()) continue;
      bool same_kids = true;
      for (size_t i = 0; i < cand->children.size(); ++i) {
        if (cand->children[i].get() != node->children[i].get()) {
          same_kids = false;
          break;
        }
      }
      if (!same_kids || !alg::LocalParamsEqual(*cand, *node)) continue;
      ++merges_;
      memo_[op.get()] = cand;
      return cand;
    }
    buckets_[h].push_back(node);
    rep_hash_[node.get()] = h;
    memo_[op.get()] = node;
    return node;
  }

  int merges() const { return merges_; }

 private:
  std::unordered_map<const Op*, OpPtr> memo_;       // orig -> representative
  std::unordered_map<const Op*, uint64_t> rep_hash_;
  std::unordered_map<uint64_t, std::vector<OpPtr>> buckets_;
  int merges_ = 0;
};

// ---------------------------------------------------------------------

class Optimizer {
 public:
  Optimizer(OptimizeStats* stats, const OptimizeOptions& opts)
      : stats_(stats), opts_(opts) {}

  Result<OpPtr> Run(OpPtr cur) {
    if (stats_) {
      *stats_ = OptimizeStats{};  // a reused struct must not accumulate
      stats_->ops_before = alg::CountOps(cur);
    }
    for (int round = 0; round < 8; ++round) {
      if (stats_) stats_->rounds = round + 1;
      changed_ = false;
      PF_ASSIGN_OR_RETURN(cur, Pass(cur));
      if (!changed_) break;
    }
    if (opts_.path_summary) {
      // After the fixpoint (step chains are now in their canonical
      // scjoin/rownum/project shape) and before the join pass (so the
      // collapsed chains participate in join costing as single cheap
      // operators).
      PathRewriteStats ps;
      PF_ASSIGN_OR_RETURN(cur, RewritePathChains(cur, &ps));
      if (stats_) stats_->structural_answers = ps.chains_collapsed;
      if (ps.chains_collapsed > 0) {
        // The plumbing between collapsed links is now dead; let the
        // peephole clean it up.
        for (int round = 0; round < 2; ++round) {
          changed_ = false;
          PF_ASSIGN_OR_RETURN(cur, Pass(cur));
          if (!changed_) break;
        }
      }
    }
    if (opts_.join_opt) {
      JoinOptStats js;
      PF_ASSIGN_OR_RETURN(
          cur, IsolateAndReorderJoins(cur, opts_.db, &js,
                                      opts_.path_summary ? 1 : 0));
      if (stats_) {
        stats_->join_clusters = js.join_clusters;
        stats_->joins_reordered = js.joins_reordered;
        stats_->selects_pushed = js.selects_pushed;
        stats_->key_distincts_removed = js.key_distincts_removed;
      }
      if (js.joins_reordered > 0 || js.selects_pushed > 0 ||
          js.key_distincts_removed > 0) {
        // Clean up the rebuilt regions (fresh rename projections fuse,
        // unused leaf columns die).
        for (int round = 0; round < 2; ++round) {
          changed_ = false;
          PF_ASSIGN_OR_RETURN(cur, Pass(cur));
          if (!changed_) break;
        }
      }
    }
    if (opts_.cse) {
      CseMerger cse;
      cur = cse.Rec(cur);
      if (stats_) stats_->cse_merges = cse.merges();
    }
    PF_RETURN_NOT_OK(alg::ValidatePlan(cur));
    if (stats_) stats_->ops_after = alg::CountOps(cur);
    return cur;
  }

 private:
  /// One rewrite pass: recompute schemas and requirements, then rebuild
  /// the DAG bottom-up applying local rules.
  Result<OpPtr> Pass(const OpPtr& root) {
    schemas_.clear();
    PF_RETURN_NOT_OK(alg::InferSchemas(root, &schemas_).status());
    PF_ASSIGN_OR_RETURN(required_, AnalyzeRequired(root, schemas_));
    memo_.clear();
    return RebuildRec(root);
  }

  Result<OpPtr> RebuildRec(const OpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return it->second;
    std::vector<OpPtr> kids;
    bool kid_changed = false;
    for (const auto& c : op->children) {
      PF_ASSIGN_OR_RETURN(OpPtr nc, RebuildRec(c));
      kid_changed |= nc.get() != c.get();
      kids.push_back(std::move(nc));
    }
    OpPtr node = op;
    if (kid_changed) {
      node = std::make_shared<Op>(*op);
      node->children = kids;
      changed_ = true;
    }
    PF_ASSIGN_OR_RETURN(OpPtr rewritten, RewriteNode(node, op.get()));
    memo_[op.get()] = rewritten;
    return rewritten;
  }

  /// Local rules; `orig` is the pre-rebuild node (key for required_).
  Result<OpPtr> RewriteNode(OpPtr op, const Op* orig) {
    // Rule: drop dead projection entries.
    if (op->kind == OpKind::kProject) {
      const ColSet& R = required_.req[orig];
      if (!R.empty() && R.size() < op->proj.size()) {
        std::vector<std::pair<std::string, std::string>> kept;
        for (const auto& pr : op->proj) {
          if (R.count(pr.first)) kept.push_back(pr);
        }
        if (!kept.empty() && kept.size() < op->proj.size()) {
          // Count the entries dropped, before the clone narrows proj.
          if (stats_) {
            stats_->dead_columns_pruned +=
                static_cast<int>(op->proj.size() - kept.size());
          }
          op = CloneWith(op, [&](Op* n) { n->proj = kept; });
        }
      }
    }

    // Rule: π∘π fusion.
    if (op->kind == OpKind::kProject &&
        op->children[0]->kind == OpKind::kProject) {
      const Op& inner = *op->children[0];
      std::vector<std::pair<std::string, std::string>> fused;
      bool ok = true;
      for (const auto& [nw, mid] : op->proj) {
        const std::string* src = nullptr;
        for (const auto& [m, old] : inner.proj) {
          if (m == mid) {
            src = &old;
            break;
          }
        }
        if (!src) {
          ok = false;
          break;
        }
        fused.emplace_back(nw, *src);
      }
      if (ok) {
        OpPtr nw = alg::Project(inner.children[0], fused);
        if (stats_) stats_->projections_fused++;
        changed_ = true;
        op = nw;
      }
    }

    // Rule: π over attach whose attached column is not projected.
    if (op->kind == OpKind::kProject &&
        op->children[0]->kind == OpKind::kAttach) {
      const Op& att = *op->children[0];
      bool uses = false;
      for (const auto& [nw, old] : op->proj) {
        if (old == att.out) {
          uses = true;
          break;
        }
      }
      if (!uses) {
        OpPtr nw = alg::Project(att.children[0], op->proj);
        if (stats_) stats_->dead_columns_pruned++;
        changed_ = true;
        op = nw;
      }
    }

    // Rule: identity projection.
    if (op->kind == OpKind::kProject) {
      const alg::Schema* cs = FindSchema(op->children[0]);
      if (cs && cs->cols.size() == op->proj.size()) {
        bool identity = true;
        for (size_t i = 0; i < op->proj.size(); ++i) {
          if (op->proj[i].first != op->proj[i].second ||
              op->proj[i].second != cs->cols[i].first) {
            identity = false;
            break;
          }
        }
        if (identity) {
          changed_ = true;
          if (stats_) stats_->projections_fused++;
          return op->children[0];
        }
      }
    }

    // Rule: δ after a staircase join is a no-op (scj output is
    // duplicate-free and doc-ordered per iter).
    if (op->kind == OpKind::kDistinct && IsDistinctFree(op)) {
      changed_ = true;
      if (stats_) stats_->distincts_removed++;
      return op->children[0];
    }

    // Rule: ∪ with a statically empty side.
    if (op->kind == OpKind::kDisjointUnion) {
      auto is_empty = [](const OpPtr& c) {
        return c->kind == OpKind::kLitTable && c->rows.empty();
      };
      if (is_empty(op->children[1])) {
        changed_ = true;
        if (stats_) stats_->unions_simplified++;
        return op->children[0];
      }
      if (is_empty(op->children[0])) {
        // Keep the left schema's column order.
        const alg::Schema* sl = FindSchema(op->children[0]);
        if (sl) {
          std::vector<std::pair<std::string, std::string>> proj;
          for (const auto& [n, t] : sl->cols) proj.emplace_back(n, n);
          changed_ = true;
          if (stats_) stats_->unions_simplified++;
          return alg::Project(op->children[1], proj);
        }
      }
    }

    return op;
  }

  /// Does this δ's input provably contain no duplicate (keys)-tuples?
  /// Walks down through row-preserving operators that keep the key
  /// columns intact, looking for a Step (whose (iter, item) output is a
  /// set) or an equal-keyed Distinct.
  bool IsDistinctFree(const OpPtr& dist) {
    // Track where each key column came from while descending.
    std::vector<std::string> keys = dist->keys;
    if (keys.empty()) return false;
    const Op* cur = dist->children[0].get();
    for (int guard = 0; guard < 64; ++guard) {
      switch (cur->kind) {
        case OpKind::kProject: {
          std::vector<std::string> mapped;
          for (const auto& k : keys) {
            const std::string* src = nullptr;
            for (const auto& [nw, old] : cur->proj) {
              if (nw == k) {
                src = &old;
                break;
              }
            }
            if (!src) return false;
            mapped.push_back(*src);
          }
          keys = mapped;
          cur = cur->children[0].get();
          break;
        }
        case OpKind::kRowNum:
        case OpKind::kAttach:
        case OpKind::kFun1:
        case OpKind::kFun2: {
          // Row-preserving; key columns must not be the new column.
          for (const auto& k : keys) {
            if (k == cur->out) return false;
          }
          cur = cur->children[0].get();
          break;
        }
        case OpKind::kStep:
        case OpKind::kPathScan: {
          // Both emit the duplicate-free set {(iter, item)}.
          std::set<std::string> ks(keys.begin(), keys.end());
          return ks == std::set<std::string>{"iter", "item"};
        }
        case OpKind::kDistinct: {
          std::set<std::string> ks(keys.begin(), keys.end());
          std::set<std::string> ds(cur->keys.begin(), cur->keys.end());
          return !ds.empty() && ds == ks;
        }
        default:
          return false;
      }
    }
    return false;
  }

  const alg::Schema* FindSchema(const OpPtr& op) {
    auto it = schemas_.find(op.get());
    if (it != schemas_.end()) return &it->second;
    // Nodes created during this pass: infer on demand.
    auto r = alg::InferSchemas(op, &schemas_);
    if (!r.ok()) return nullptr;
    return &schemas_.at(op.get());
  }

  template <typename Fn>
  OpPtr CloneWith(const OpPtr& op, Fn&& fn) {
    auto nw = std::make_shared<Op>(*op);
    fn(nw.get());
    changed_ = true;
    return nw;
  }

  OptimizeStats* stats_;
  OptimizeOptions opts_;
  bool changed_ = false;
  std::unordered_map<const Op*, alg::Schema> schemas_;
  Required required_;
  std::unordered_map<const Op*, OpPtr> memo_;
};

}  // namespace

Result<algebra::OpPtr> Optimize(const algebra::OpPtr& root,
                                OptimizeStats* stats,
                                const OptimizeOptions& opts) {
  Optimizer o(stats, opts);
  return o.Run(root);
}

Result<algebra::OpPtr> CseMerge(const algebra::OpPtr& root, int* merges) {
  CseMerger cse;
  OpPtr merged = cse.Rec(root);
  if (merges) *merges += cse.merges();
  PF_RETURN_NOT_OK(alg::ValidatePlan(merged));
  return merged;
}

bool CseDefault() {
  static const bool kOn = [] {
    const char* e = std::getenv("PF_CSE");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return kOn;
}

bool JoinOptDefault() {
  static const bool kOn = [] {
    const char* e = std::getenv("PF_JOINOPT");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return kOn;
}

bool PathSumDefault() {
  static const bool kOn = [] {
    const char* e = std::getenv("PF_PATHSUM");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return kOn;
}

}  // namespace pathfinder::opt

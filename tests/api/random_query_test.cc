#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/pathfinder.h"
#include "base/rng.h"
#include "baseline/interp.h"
#include "xml/database.h"

namespace pathfinder {
namespace {

/// Random-query differential fuzzing: generate syntactically valid
/// queries from a grammar covering the supported dialect, run them on
/// the relational engine (several knob configurations) and the
/// navigational baseline, and require byte-identical serialization.
///
/// The generator only produces value expressions whose semantics are
/// defined in our dialect (e.g. comparisons between atomizable
/// operands), so every generated query must succeed on both engines.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Query() {
    depth_ = 0;
    vars_ = {};
    return SeqExpr();
  }

 private:
  std::string Pick(const std::vector<std::string>& opts) {
    return opts[rng_.Below(opts.size())];
  }

  std::string FreshVar() {
    std::string v = "v" + std::to_string(var_counter_++);
    vars_.push_back(v);
    return v;
  }

  /// A path producing element nodes of the fixture document.
  std::string NodePath() {
    // Occasionally stack extra value predicates on a base path: each
    // predicate compiles to its own select (plus attach/fun maps), so
    // these produce the deep σ→map chains the pipelined executor fuses.
    if (rng_.Chance(0.3)) return DeepNodePath();
    return Pick({
        "//item",
        "//dept",
        "/shop/dept/item",
        "//item[@price > 4]",
        "//order",
        "(//item)[2]",
        "//dept[1]/item",
        "//item/following-sibling::*",
        "//note/ancestor::dept",
    });
  }

  /// A multi-predicate path: base step plus 1..3 value predicates,
  /// optionally continued by a trailing step. Predicates compare
  /// against attributes that may be absent on some elements — a
  /// comparison with the empty sequence is false, which both engines
  /// must agree on.
  std::string DeepNodePath() {
    std::string p = Pick({"//item", "/shop/dept/item", "//dept/item"});
    size_t preds = rng_.Range(1, 3);
    for (size_t i = 0; i < preds; ++i) {
      p += Pick({
          "[@price > 2]",
          "[@price < 50]",
          "[@price >= 3]",
          "[contains(@sku, \"a\")]",
          "[contains(@sku, \"t\")]",
          "[contains(string(.), \"a\")]",
          "[exists(@sku)]",
          "[not(@price = 30)]",
      });
    }
    if (rng_.Chance(0.4)) p += Pick({"/@sku", "/@price", "/note"});
    return p;
  }

  /// An expression producing numbers (possibly a sequence).
  std::string NumExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"1", "2", "7", "41", "3.5", "0"});
    } else {
      switch (rng_.Below(7)) {
        case 0:
          out = "(" + NumExpr() + " + " + NumExpr() + ")";
          break;
        case 1:
          out = "(" + NumExpr() + " * " + NumExpr() + ")";
          break;
        case 2:
          out = "count(" + NodePath() + ")";
          break;
        case 3:
          out = "sum(" + NodePath() + "/@price)";
          break;
        case 4:
          out = "string-length(" + StrExpr() + ")";
          break;
        case 5:
          if (!vars_.empty()) {
            out = "count($" + Pick(vars_) + ")";
            break;
          }
          [[fallthrough]];
        default:
          out = Pick({"1", "2", "7", "41", "3.5", "0"});
          break;
      }
    }
    --depth_;
    return out;
  }

  std::string StrExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"\"a\"", "\"gold\"", "\"\""});
    } else {
      switch (rng_.Below(4)) {
        case 0:
          out = "string((" + NodePath() + ")[1])";
          break;
        case 1:
          out = "concat(" + StrExpr() + ", " + StrExpr() + ")";
          break;
        case 2:
          out = "string(" + NumExpr() + ")";
          break;
        default:
          out = Pick({"\"a\"", "\"ham\"", "\"x\""});
          break;
      }
    }
    --depth_;
    return out;
  }

  std::string BoolExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"true()", "false()"});
    } else {
      switch (rng_.Below(6)) {
        case 0:
          out = "(" + NumExpr() + " " + Pick({"<", "<=", "=", ">", ">="}) +
                " " + NumExpr() + ")";
          break;
        case 1:
          out = "contains(" + StrExpr() + ", " + StrExpr() + ")";
          break;
        case 2:
          out = "empty(" + NodePath() + ")";
          break;
        case 3:
          out = "(" + BoolExpr() + " " + Pick({"and", "or"}) + " " +
                BoolExpr() + ")";
          break;
        case 4:
          out = "not(" + BoolExpr() + ")";
          break;
        default:
          out = "exists(" + NodePath() + ")";
          break;
      }
    }
    --depth_;
    return out;
  }

  /// Any single expression.
  std::string Single() {
    ++depth_;
    std::string out;
    switch (depth_ > 3 ? rng_.Below(3) : rng_.Below(8)) {
      case 0:
        out = NumExpr();
        break;
      case 1:
        out = StrExpr();
        break;
      case 2:
        out = BoolExpr();
        break;
      case 3:
        out = Flwor();
        break;
      case 4:
        out = "if (" + BoolExpr() + ") then " + Single() + " else " +
              Single();
        break;
      case 5:
        out = NodePath();
        break;
      case 6:
        out = "<w n=\"{ " + NumExpr() + " }\">{ " + Single() + " }</w>";
        break;
      default:
        out = "data((" + NodePath() + ")[1]/@sku)";
        break;
    }
    --depth_;
    return out;
  }

  std::string Flwor() {
    size_t vars_before = vars_.size();
    // The domain is generated BEFORE the variable becomes visible.
    std::string domain = rng_.Chance(0.5)
                             ? NodePath()
                             : "(" + NumExpr() + ", " + NumExpr() + ")";
    std::string v = FreshVar();
    std::string q = "for $" + v + " in " + domain + " ";
    if (rng_.Chance(0.4)) {
      std::string init = Single();  // before the binding is visible
      std::string lv = FreshVar();
      q += "let $" + lv + " := " + init + " ";
    }
    if (rng_.Chance(0.5)) {
      // Sometimes a multi-conjunct where clause: each conjunct becomes
      // its own select over the loop relation, extending the fusable
      // chain.
      std::string cond = BoolExpr();
      size_t extra = rng_.Chance(0.4) ? rng_.Range(1, 2) : 0;
      for (size_t i = 0; i < extra; ++i) cond += " and " + BoolExpr();
      q += "where " + cond + " ";
    }
    if (rng_.Chance(0.3)) {
      q += "order by " + NumExpr() + (rng_.Chance(0.5) ? " descending" : "") +
           " ";
    }
    q += "return " + Single();
    vars_.resize(vars_before);  // out of scope after the FLWOR
    return q;
  }

  std::string SeqExpr() {
    int n = static_cast<int>(rng_.Range(1, 2));
    std::string q;
    for (int i = 0; i < n; ++i) {
      if (i) q += ", ";
      q += Single();
    }
    return n > 1 ? "(" + q + ")" : q;
  }

  Rng rng_;
  int depth_ = 0;
  int var_counter_ = 0;
  std::vector<std::string> vars_;
};

xml::Database* ShopDb() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    auto r = d->LoadXml("shop.xml", R"(
<shop>
  <dept name="fruit">
    <item sku="a1" price="3">apple</item>
    <item sku="a2" price="7">pear<note>ripe</note></item>
  </dept>
  <dept name="tools">
    <item sku="t1" price="30">hammer</item>
    <item sku="t2" price="3">nail</item>
  </dept>
  <orders><order ref="a1" qty="2"/><order ref="t2" qty="500"/></orders>
</shop>)");
    EXPECT_TRUE(r.ok());
    return d;
  }();
  return db;
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static xml::Database* db() { return ShopDb(); }
};

TEST_P(RandomQueryTest, EnginesAgreeOnGeneratedQueries) {
  QueryGen gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    std::string q = gen.Query();
    SCOPED_TRACE(q);

    baseline::Baseline bl(db());
    baseline::BaselineOptions bo;
    bo.context_doc = "shop.xml";
    auto br = bl.Run(q, bo);
    ASSERT_TRUE(br.ok()) << br.status().ToString();
    auto bs = br->Serialize();
    ASSERT_TRUE(bs.ok());

    Pathfinder pf(db());
    // Masks 0-2 toggle compiler knobs (mask 0 runs the process-default
    // pipeline setting); 3 forces materialized, 4 forces pipelined with
    // two worker threads — the pipelined-vs-materialized differential
    // over the whole random dialect. Masks 5-6 re-run representative
    // configurations with profiling on: collection must never perturb
    // results, and the profile tree must materialize. Masks 7-9 sweep
    // the cache/CSE knobs: 7 disables CSE, 8 forces both caches on with
    // a budget small enough to churn (all masks share this Pathfinder,
    // so 8 is served against a cache warmed by earlier masks), 9 pins
    // both caches off.
    for (int mask = 0; mask < 10; ++mask) {
      QueryOptions o;
      o.context_doc = "shop.xml";
      o.join_recognition = mask != 1;
      o.optimize = mask != 2;
      if (mask == 3) o.pipeline = 0;
      if (mask == 4) {
        o.pipeline = 1;
        o.num_threads = 2;
      }
      o.profile = mask >= 5 && mask < 7 ? 1 : 0;  // pin ambient PF_PROFILE
      if (mask == 6) {
        o.pipeline = 1;
        o.num_threads = 2;
      }
      if (mask == 7) o.cse = 0;
      if (mask == 8) {
        o.plan_cache = 1;
        o.subplan_cache = 1;
        o.cache_budget_bytes = 1 << 20;
      }
      if (mask == 9) {
        o.plan_cache = 0;
        o.subplan_cache = 0;
      }
      auto pr = pf.Run(q, o);
      ASSERT_TRUE(pr.ok()) << pr.status().ToString() << " mask=" << mask;
      auto ps = pr->Serialize();
      ASSERT_TRUE(ps.ok());
      ASSERT_EQ(*ps, *bs) << "mask=" << mask;
      if (mask >= 5 && mask < 7) {
        ASSERT_NE(pr->profile, nullptr) << "mask=" << mask;
        EXPECT_FALSE(pr->ProfileJson().empty()) << "mask=" << mask;
      } else {
        EXPECT_EQ(pr->profile, nullptr) << "mask=" << mask;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range<uint64_t>(1, 46));

// Multi-predicate paths must compile to fragments the executor fuses
// as chains of length >= 3 — the generator rules above exist to hit
// this shape, so pin it down on handcrafted instances.
TEST(DeepChainFusion, HandcraftedChainsFuse) {
  Pathfinder pf(ShopDb());
  QueryOptions o;
  o.context_doc = "shop.xml";
  o.pipeline = 1;
  const char* kDeep[] = {
      "//item[@price > 2][@price < 50][contains(@sku, \"a\")]",
      "for $v in //item where $v/@price > 2 and contains($v/@sku, \"t\") "
      "return $v/@sku",
  };
  for (const char* q : kDeep) {
    auto r = pf.Run(q, o);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    EXPECT_GT(r->pipe_stats.fragments, 0) << q;
    EXPECT_GE(r->pipe_stats.max_chain, 3) << q;
  }
}

}  // namespace
}  // namespace pathfinder

#ifndef PATHFINDER_API_PATHFINDER_H_
#define PATHFINDER_API_PATHFINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "accel/step.h"
#include "algebra/op.h"
#include "base/result.h"
#include "compiler/compile.h"
#include "engine/query_context.h"
#include "frontend/ast.h"
#include "opt/optimize.h"
#include "opt/pipeline.h"
#include "xml/database.h"

namespace pathfinder {

/// Per-query knobs (defaults reproduce the paper's configuration).
struct QueryOptions {
  /// Document a leading "/" refers to (fn:doc(...) otherwise).
  std::string context_doc;
  /// Compiler join recognition (ablation E7).
  bool join_recognition = true;
  /// Peephole plan optimization (E5).
  bool optimize = true;
  /// Staircase join vs naive region selection for steps (ablation E6).
  bool use_staircase = true;
  /// Worker threads for morsel-parallel operator evaluation. 0 = the
  /// process default (PF_THREADS env var, else hardware concurrency);
  /// 1 = the exact serial code paths. Results are identical at every
  /// setting.
  int num_threads = 0;
  /// Pipelined execution: fuse chains of row-local operators (σ, π,
  /// attach, ~ maps, join probes) into single morsel-driven passes so
  /// intermediate BATs are never materialized. -1 = the process
  /// default (PF_PIPELINE env var; on unless set to "0"), 0 = off
  /// (materialize every operator), 1 = on. Results are identical
  /// either way.
  int pipeline = -1;
  /// Per-operator execution profiling: wall time, row/byte counts and
  /// morsel counts for every plan operator. -1 = the process default
  /// (PF_PROFILE env var; OFF unless set to a value other than "0"),
  /// 0 = off, 1 = on. When off, the executor performs no timer calls.
  int profile = -1;
};

/// A completed query: the result sequence plus every intermediate stage
/// for inspection (the demo's "under the hood" hooks, paper Sec. 4).
struct QueryResult {
  std::vector<Item> items;

  frontend::ExprPtr core;        // normalized XQuery Core
  algebra::OpPtr plan;           // compiled plan (before optimization)
  algebra::OpPtr plan_opt;       // executed plan
  compiler::CompileStats compile_stats;
  opt::OptimizeStats opt_stats;
  accel::StaircaseStats scj_stats;
  opt::PipelineStats pipeline_stats;       // fragment annotation counters
  engine::PipelineExecStats pipe_stats;    // fused execution counters

  /// Per-operator execution profile (QueryOptions::profile / PF_PROFILE);
  /// null when profiling was off.
  engine::OperatorProfilePtr profile;

  /// Owns fragments constructed during evaluation; `items` referencing
  /// constructed nodes stay valid while this lives.
  std::unique_ptr<engine::QueryContext> ctx;

  /// Serialize the result sequence to XML/text.
  Result<std::string> Serialize() const;

  /// The executed plan with each operator's profile rendered inline
  /// ("" when profiling was off).
  std::string ProfileText() const;

  /// The profile tree as JSON ("" when profiling was off).
  std::string ProfileJson() const;
};

/// Facade over the full stack: parse -> normalize -> loop-lift ->
/// optimize -> execute on the column store -> serialize.
class Pathfinder {
 public:
  explicit Pathfinder(xml::Database* db) : db_(db) {}

  /// Parse and normalize only (the demo's Core output).
  Result<frontend::ExprPtr> Translate(const std::string& query,
                                      const QueryOptions& opts = {}) const;

  /// Compile a normalized core expression to an (unoptimized) plan.
  Result<algebra::OpPtr> CompilePlan(const frontend::ExprPtr& core,
                                     const QueryOptions& opts = {},
                                     compiler::CompileStats* stats =
                                         nullptr) const;

  /// End-to-end evaluation.
  Result<QueryResult> Run(const std::string& query,
                          const QueryOptions& opts = {}) const;

  xml::Database* db() const { return db_; }

 private:
  xml::Database* db_;
};

}  // namespace pathfinder

#endif  // PATHFINDER_API_PATHFINDER_H_

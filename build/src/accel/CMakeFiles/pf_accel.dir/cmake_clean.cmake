file(REMOVE_RECURSE
  "CMakeFiles/pf_accel.dir/axis.cc.o"
  "CMakeFiles/pf_accel.dir/axis.cc.o.d"
  "CMakeFiles/pf_accel.dir/step.cc.o"
  "CMakeFiles/pf_accel.dir/step.cc.o.d"
  "libpf_accel.a"
  "libpf_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpf_baseline.a"
)

#include "xml/stats.h"

#include <algorithm>
#include <unordered_set>

#include "xml/document.h"

namespace pathfinder::xml {

uint32_t DocStats::MaxChildrenAnyParent(StrId child_tag) const {
  uint32_t mx = 0;
  for (const auto& [key, n] : max_children) {
    if (static_cast<StrId>(key & 0xFFFFFFFFu) == child_tag) {
      mx = std::max(mx, n);
    }
  }
  return mx;
}

uint32_t DocStats::MaxTextChildrenAnyTag() const {
  uint32_t mx = 0;
  for (const auto& [tag, ts] : tags) mx = std::max(mx, ts.max_text_children);
  return mx;
}

DocStats ComputeDocStats(const Document& doc) {
  DocStats s;
  const auto& levels = doc.levels();
  const auto& kinds = doc.kinds();
  const auto& sizes = doc.sizes();
  const auto& props = doc.props();
  const auto& values = doc.values();
  const Pre n = doc.num_nodes();
  s.total_nodes = n;

  // One open frame per ancestor of the current node. Attributes sit at
  // level(owner)+1 like child nodes do, so the level-driven stack pop
  // handles them uniformly; they are counted against the owner frame
  // but (being size 0) never push a frame of their own.
  struct Frame {
    StrId tag = DocStats::kDocParent;  // kDocParent for the document node
    bool is_elem_or_doc = false;
    std::unordered_map<StrId, uint32_t> child_elems;
    std::unordered_map<StrId, uint32_t> own_attrs;
    uint32_t text_children = 0;
  };
  std::vector<Frame> stack;

  // Distinct-value accumulators (surrogates are pooled, so equal
  // strings share ids and a set of StrIds counts distinct contents).
  std::unordered_map<StrId, std::unordered_set<StrId>> attr_values;
  std::unordered_map<StrId, std::unordered_set<StrId>> text_values;

  auto close_frame = [&s](Frame& f) {
    if (!f.is_elem_or_doc) return;
    for (const auto& [ctag, cnt] : f.child_elems) {
      uint32_t& mx = s.max_children[DocStats::EdgeKey(f.tag, ctag)];
      mx = std::max(mx, cnt);
    }
    for (const auto& [aname, cnt] : f.own_attrs) {
      DocStats::AttrStats& as = s.attrs[aname];
      as.max_per_owner = std::max(as.max_per_owner, cnt);
    }
    if (f.tag != DocStats::kDocParent) {
      DocStats::TagStats& ts = s.tags[f.tag];
      ts.max_text_children = std::max(ts.max_text_children, f.text_children);
    }
  };

  for (Pre v = 0; v < n; ++v) {
    uint16_t level = levels[v];
    while (stack.size() > level) {
      close_frame(stack.back());
      stack.pop_back();
    }
    NodeKind kind = static_cast<NodeKind>(kinds[v]);
    s.kind_counts[static_cast<size_t>(kind)]++;
    if (s.level_counts.size() <= level) s.level_counts.resize(level + 1, 0);
    s.level_counts[level]++;

    Frame* parent = stack.empty() ? nullptr : &stack.back();
    switch (kind) {
      case NodeKind::kDoc: {
        Frame f;
        f.tag = DocStats::kDocParent;
        f.is_elem_or_doc = true;
        stack.push_back(std::move(f));
        continue;
      }
      case NodeKind::kElem: {
        DocStats::TagStats& ts = s.tags[props[v]];
        ts.count++;
        ts.subtree_nodes += static_cast<uint64_t>(sizes[v]) + 1;
        if (parent != nullptr && parent->is_elem_or_doc) {
          parent->child_elems[props[v]]++;
        }
        Frame f;
        f.tag = props[v];
        f.is_elem_or_doc = true;
        stack.push_back(std::move(f));
        continue;
      }
      case NodeKind::kAttr: {
        DocStats::AttrStats& as = s.attrs[props[v]];
        as.count++;
        attr_values[props[v]].insert(values[v]);
        if (parent != nullptr && parent->is_elem_or_doc) {
          parent->own_attrs[props[v]]++;
        }
        break;
      }
      case NodeKind::kText: {
        if (parent != nullptr && parent->is_elem_or_doc &&
            parent->tag != DocStats::kDocParent) {
          parent->text_children++;
          text_values[parent->tag].insert(values[v]);
        }
        break;
      }
      case NodeKind::kComment:
      case NodeKind::kPi:
        break;
    }
    // Non-element nodes with children do not exist; nodes with size > 0
    // other than elem/doc would need a frame, but the encoding
    // guarantees size 0 for attr/text/comment/pi. Still, push a dummy
    // frame for robustness if a malformed node claims a subtree.
    if (sizes[v] > 0) {
      Frame f;
      f.is_elem_or_doc = false;
      stack.push_back(std::move(f));
    }
  }
  while (!stack.empty()) {
    close_frame(stack.back());
    stack.pop_back();
  }

  for (auto& [name, vals] : attr_values) {
    s.attrs[name].distinct_values = vals.size();
  }
  for (auto& [tag, vals] : text_values) {
    s.tags[tag].distinct_text_values = vals.size();
  }
  return s;
}

}  // namespace pathfinder::xml

// Ablation E6 (paper Sec. 2 "XPath axes" / [7]): staircase join vs
// tree-unaware per-context region selection vs pointer-DOM navigation,
// for axis steps over growing context sequences on an XMark instance.
//
// Expected shape: for the recursive axes the staircase join's pruning +
// single-scan evaluation keeps the cost near O(doc), while the naive
// strategy rescans overlapping regions per context node and the DOM
// walks pointers; the gap widens with the context count.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "accel/step.h"
#include "baseline/dom.h"
#include "bench/bench_util.h"

namespace pathfinder::bench {
namespace {

using accel::Axis;
using accel::NodeTest;
using xml::Pre;

int Main() {
  double sf = ScaleFactors().back();
  xml::Database* db = XMarkDb(sf);
  const xml::Document& doc = db->doc(0);
  baseline::Dom dom(doc);

  std::printf("Staircase join ablation on XMark sf=%g (%u nodes)\n\n", sf,
              doc.num_nodes());
  std::printf("%-18s %9s %12s %12s %12s %10s %10s\n", "axis", "contexts",
              "staircase", "naive", "dom", "pruned", "scanned");

  struct Case {
    Axis axis;
    NodeTest test;
  };
  std::vector<Case> cases = {
      {Axis::kDescendant, NodeTest::Element()},
      {Axis::kDescendantOrSelf, NodeTest::AnyKind()},
      {Axis::kAncestor, NodeTest::Element()},
      {Axis::kChild, NodeTest::Element()},
      {Axis::kFollowing, NodeTest::Element()},
      {Axis::kPreceding, NodeTest::Element()},
  };

  for (const Case& c : cases) {
    for (size_t num_ctx : {16u, 256u, 4096u}) {
      // Deterministic spread of element contexts over the document.
      std::vector<Pre> contexts;
      Pre step = std::max<Pre>(1, doc.num_nodes() /
                                      static_cast<Pre>(num_ctx));
      for (Pre v = 1; v < doc.num_nodes() && contexts.size() < num_ctx;
           v += step) {
        Pre u = v;
        while (u < doc.num_nodes() && doc.IsAttr(u)) ++u;
        if (u < doc.num_nodes() &&
            (contexts.empty() || contexts.back() < u)) {
          contexts.push_back(u);
        }
      }

      std::vector<Pre> out;
      accel::StaircaseStats stats;
      double scj_ms = BestOfMs(3, [&] {
        out.clear();
        stats.Reset();
        accel::StaircaseJoin(doc, contexts, c.axis, c.test, &out, &stats);
      });
      size_t scj_results = out.size();

      double naive_ms = BestOfMs(3, [&] {
        out.clear();
        for (Pre v : contexts) {
          accel::NaiveStep(doc, v, c.axis, c.test, &out);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
      });
      if (out.size() != scj_results) {
        std::fprintf(stderr, "MISMATCH on %s\n", accel::AxisName(c.axis));
        return 1;
      }

      double dom_ms = BestOfMs(3, [&] {
        std::vector<baseline::DomNode*> nodes;
        for (Pre v : contexts) {
          baseline::DomStep(dom.node(v), c.axis, c.test, &nodes);
        }
        std::sort(nodes.begin(), nodes.end(),
                  [](auto* a, auto* b) { return a->pre < b->pre; });
        nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      });

      std::printf("%-18s %9zu %12s %12s %12s %10zu %10zu\n",
                  accel::AxisName(c.axis), contexts.size(),
                  FmtMs(scj_ms).c_str(), FmtMs(naive_ms).c_str(),
                  FmtMs(dom_ms).c_str(), stats.contexts_pruned,
                  stats.nodes_scanned);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n'pruned' = context nodes removed by the staircase pruning "
      "phase; 'scanned' = encoding rows touched. For the recursive axes "
      "the scanned count stays bounded by the document size regardless "
      "of the context count — the paper's tree-awareness claim.\n");
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main() { return pathfinder::bench::Main(); }

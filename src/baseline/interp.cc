#include "baseline/interp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include <unordered_map>

#include "accel/step.h"
#include "baseline/dom.h"
#include "bat/item_ops.h"
#include "engine/node_build.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"
#include "runtime/serialize.h"

namespace pathfinder::baseline {

namespace {

using frontend::BinOp;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprPtr;
using Seq = std::vector<Item>;

class Interp {
 public:
  explicit Interp(engine::QueryContext* ctx) : ctx_(ctx) {}

  Result<Seq> Eval(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kIntLit:
        return Seq{Item::Int(e->ival)};
      case ExprKind::kDblLit:
        return Seq{Item::Dbl(e->dval)};
      case ExprKind::kStrLit:
        return Seq{Item::Str(ctx_->pool()->Intern(e->sval))};
      case ExprKind::kEmpty:
        return Seq{};
      case ExprKind::kSequence: {
        Seq out;
        for (const auto& c : e->children) {
          PF_ASSIGN_OR_RETURN(Seq s, Eval(c));
          out.insert(out.end(), s.begin(), s.end());
        }
        return out;
      }
      case ExprKind::kVar: {
        auto it = env_.find(e->sval);
        if (it == env_.end()) {
          return Status::Internal("baseline: unbound variable $" + e->sval);
        }
        return it->second;
      }
      case ExprKind::kFlwor:
        return EvalFlwor(e);
      case ExprKind::kIf: {
        PF_ASSIGN_OR_RETURN(bool c, Ebv(e->children[0]));
        return Eval(e->children[c ? 1 : 2]);
      }
      case ExprKind::kTypeswitch:
        return EvalTypeswitch(e);
      case ExprKind::kBinOp:
        return EvalBinOp(e);
      case ExprKind::kUnaryMinus: {
        PF_ASSIGN_OR_RETURN(Seq s, Eval(e->children[0]));
        Seq out;
        for (const Item& it : s) {
          PF_ASSIGN_OR_RETURN(Item a, Atomize(it));
          if (a.kind == ItemKind::kInt) {
            out.push_back(Item::Int(-a.AsInt()));
          } else {
            PF_ASSIGN_OR_RETURN(double d,
                                bat::ItemToDouble(a, *ctx_->pool()));
            out.push_back(Item::Dbl(-d));
          }
        }
        return out;
      }
      case ExprKind::kAxisStep: {
        PF_ASSIGN_OR_RETURN(Seq ctxseq, Eval(e->children[0]));
        accel::NodeTest test = MakeTest(e->test);
        Seq out;
        std::vector<DomNode*> res;
        for (const Item& c : ctxseq) {
          if (!c.IsNode()) {
            return Status::TypeError(
                "baseline: path step on an atomic value");
          }
          Dom* dom = GetDom(c.NodeFrag());
          res.clear();
          DomStep(dom->node(c.NodePre()), e->axis, test, &res);
          for (DomNode* n : res) {
            out.push_back(n->kind == xml::NodeKind::kAttr
                              ? Item::Attr(c.NodeFrag(), n->pre)
                              : Item::Node(c.NodeFrag(), n->pre));
          }
        }
        return out;
      }
      case ExprKind::kFunCall:
        return EvalCall(e);
      case ExprKind::kElemConstr:
        return EvalElem(e);
      case ExprKind::kAttrConstr: {
        PF_ASSIGN_OR_RETURN(std::string v, PartsToString(e->children));
        return Seq{engine::BuildAttribute(ctx_, e->sval, v)};
      }
      case ExprKind::kTextConstr: {
        PF_ASSIGN_OR_RETURN(Seq s, Eval(e->children[0]));
        PF_ASSIGN_OR_RETURN(std::string v, SeqToString(s));
        return Seq{engine::BuildText(ctx_, v)};
      }
      case ExprKind::kDdo: {
        PF_ASSIGN_OR_RETURN(Seq s, Eval(e->children[0]));
        // Same ordering as the relational ddo (Distinct + RowNum over
        // ItemOrder): document order for nodes.
        std::stable_sort(s.begin(), s.end(),
                         [this](const Item& a, const Item& b) {
                           int c = bat::ItemOrder(a, b, *ctx_->pool());
                           if (c != 0) return c < 0;
                           return a.kind < b.kind;
                         });
        s.erase(std::unique(s.begin(), s.end(),
                            [this](const Item& a, const Item& b) {
                              return a == b;
                            }),
                s.end());
        return s;
      }
      default:
        return Status::Internal(
            std::string("baseline: unexpected core node ") +
            frontend::ExprKindName(e->kind));
    }
  }

 private:
  accel::NodeTest MakeTest(const frontend::StepTest& t) {
    using K = frontend::StepTest::Kind;
    switch (t.kind) {
      case K::kAnyKind:
        return accel::NodeTest::AnyKind();
      case K::kElement:
        return accel::NodeTest::Element();
      case K::kText:
        return accel::NodeTest::Text();
      case K::kComment:
        return accel::NodeTest::Comment();
      case K::kPi:
        return accel::NodeTest::Pi();
      case K::kName:
        return accel::NodeTest::Name(ctx_->pool()->Intern(t.name));
    }
    return accel::NodeTest::AnyKind();
  }

  /// DOMs are materialized lazily, once per fragment, and navigated by
  /// pointer from then on — the baseline never touches the accelerator
  /// encoding after this point.
  Dom* GetDom(uint32_t frag) {
    auto it = doms_.find(frag);
    if (it != doms_.end()) return it->second.get();
    auto dom = std::make_unique<Dom>(ctx_->doc(frag));
    Dom* ptr = dom.get();
    doms_.emplace(frag, std::move(dom));
    return ptr;
  }

  Result<Item> Atomize(const Item& it) {
    if (!it.IsNode()) return it;
    Dom* dom = GetDom(it.NodeFrag());
    return Item::Untyped(ctx_->pool()->Intern(
        DomStringValue(dom->node(it.NodePre()), *ctx_->pool())));
  }

  Result<std::string> ItemString(const Item& it) {
    if (it.IsNode()) {
      Dom* dom = GetDom(it.NodeFrag());
      return DomStringValue(dom->node(it.NodePre()), *ctx_->pool());
    }
    PF_ASSIGN_OR_RETURN(StrId s, bat::ItemToString(it, ctx_->pool()));
    return std::string(ctx_->pool()->Get(s));
  }

  Result<std::string> SeqToString(const Seq& s) {
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      PF_ASSIGN_OR_RETURN(std::string v, ItemString(s[i]));
      if (i) out += ' ';
      out += v;
    }
    return out;
  }

  Result<std::string> PartsToString(const std::vector<ExprPtr>& parts) {
    std::string out;
    for (const auto& p : parts) {
      PF_ASSIGN_OR_RETURN(Seq s, Eval(p));
      // Attribute value parts concatenate without separators between
      // parts; items within one enclosed expression join with spaces.
      PF_ASSIGN_OR_RETURN(std::string v, SeqToString(s));
      out += v;
    }
    return out;
  }

  /// Effective boolean value, matching the relational engine's
  /// existential rule: true iff some item is truthy (nodes are truthy).
  Result<bool> Ebv(const ExprPtr& e) {
    PF_ASSIGN_OR_RETURN(Seq s, Eval(e));
    for (const Item& it : s) {
      PF_ASSIGN_OR_RETURN(bool b, bat::ItemToBool(it, *ctx_->pool()));
      if (b) return true;
    }
    return false;
  }

  using OrderedChunks = std::vector<std::pair<std::vector<Item>, Seq>>;

  Result<Seq> EvalFlwor(const ExprPtr& e) {
    if (e->order_keys.empty()) {
      Seq out;
      PF_RETURN_NOT_OK(FlworClause(e, 0, &out, nullptr));
      return out;
    }
    // Ordered FLWOR: collect (keys, result chunk) per binding tuple,
    // stable-sort by the keys, then concatenate.
    OrderedChunks chunks;
    Seq unused;
    PF_RETURN_NOT_OK(FlworClause(e, 0, &unused, &chunks));
    std::stable_sort(
        chunks.begin(), chunks.end(),
        [this, &e](const auto& a, const auto& b) {
          for (size_t i = 0; i < a.first.size(); ++i) {
            int c = bat::ItemOrder(a.first[i], b.first[i], *ctx_->pool());
            if (!e->order_keys[i].ascending) c = -c;
            if (c != 0) return c < 0;
          }
          return false;
        });
    Seq res;
    for (auto& [keys, chunk] : chunks) {
      res.insert(res.end(), chunk.begin(), chunk.end());
    }
    return res;
  }

  /// Nested-loop FLWOR evaluation — one recursive call per clause, one
  /// iteration per binding (the navigational engine's defining trait).
  /// `chunks` is non-null for the ordering pass of THIS flwor only;
  /// nested FLWORs inside clause/return expressions are unaffected.
  Status FlworClause(const ExprPtr& e, size_t ci, Seq* out,
                     OrderedChunks* chunks) {
    if (ci == e->clauses.size()) {
      if (e->where) {
        PF_ASSIGN_OR_RETURN(bool keep, Ebv(e->where));
        if (!keep) return Status::OK();
      }
      if (chunks != nullptr) {
        std::vector<Item> keys;
        for (const auto& k : e->order_keys) {
          PF_ASSIGN_OR_RETURN(Seq ks, Eval(k.key));
          if (ks.empty()) {
            keys.push_back(Item::Bool(false));  // empty least
          } else {
            PF_ASSIGN_OR_RETURN(Item a, Atomize(ks[0]));
            keys.push_back(a);
          }
        }
        PF_ASSIGN_OR_RETURN(Seq r, Eval(e->children[0]));
        chunks->emplace_back(std::move(keys), std::move(r));
        return Status::OK();
      }
      PF_ASSIGN_OR_RETURN(Seq r, Eval(e->children[0]));
      out->insert(out->end(), r.begin(), r.end());
      return Status::OK();
    }
    const frontend::ForLetClause& c = e->clauses[ci];
    PF_ASSIGN_OR_RETURN(Seq dom, Eval(c.expr));
    if (c.is_let) {
      ScopedBind bind(this, c.var, std::move(dom));
      return FlworClause(e, ci + 1, out, chunks);
    }
    for (size_t i = 0; i < dom.size(); ++i) {
      ScopedBind bind(this, c.var, Seq{dom[i]});
      std::unique_ptr<ScopedBind> posbind;
      if (!c.pos_var.empty()) {
        posbind = std::make_unique<ScopedBind>(
            this, c.pos_var, Seq{Item::Int(static_cast<int64_t>(i + 1))});
      }
      PF_RETURN_NOT_OK(FlworClause(e, ci + 1, out, chunks));
    }
    return Status::OK();
  }

  Result<Seq> EvalTypeswitch(const ExprPtr& e) {
    PF_ASSIGN_OR_RETURN(Seq s, Eval(e->children[0]));
    for (const auto& c : e->cases) {
      bool match = false;
      if (c.type == frontend::TypeCase::Type::kDefault) {
        match = true;
      } else if (!s.empty()) {
        match = MatchCase(s[0], c);
      }
      if (!match) continue;
      if (!c.var.empty()) {
        ScopedBind bind(this, c.var, s);
        return Eval(c.body);
      }
      return Eval(c.body);
    }
    return Seq{};
  }

  bool MatchCase(const Item& it, const frontend::TypeCase& c) {
    using T = frontend::TypeCase::Type;
    switch (c.type) {
      case T::kNode:
        return it.IsNode();
      case T::kAttribute:
        return it.kind == ItemKind::kAttr;
      case T::kElement: {
        if (it.kind != ItemKind::kNode) return false;
        const xml::Document& d = ctx_->doc(it.NodeFrag());
        if (d.kind(it.NodePre()) != xml::NodeKind::kElem) return false;
        if (c.elem_name.empty()) return true;
        return ctx_->pool()->Get(d.prop(it.NodePre())) == c.elem_name;
      }
      case T::kText:
        return it.kind == ItemKind::kNode &&
               ctx_->doc(it.NodeFrag()).kind(it.NodePre()) ==
                   xml::NodeKind::kText;
      case T::kInteger:
        return it.kind == ItemKind::kInt;
      case T::kDouble:
        return it.kind == ItemKind::kDbl;
      case T::kString:
        return it.IsStringLike();
      case T::kBoolean:
        return it.kind == ItemKind::kBool;
      case T::kDefault:
        return true;
    }
    return false;
  }

  Result<int> CompareValues(const Item& a0, const Item& b0) {
    PF_ASSIGN_OR_RETURN(Item a, Atomize(a0));
    PF_ASSIGN_OR_RETURN(Item b, Atomize(b0));
    return bat::ItemCompareValue(a, b, *ctx_->pool());
  }

  Result<Seq> EvalBinOp(const ExprPtr& e) {
    switch (e->op) {
      case BinOp::kAnd: {
        PF_ASSIGN_OR_RETURN(bool a, Ebv(e->children[0]));
        PF_ASSIGN_OR_RETURN(bool b, Ebv(e->children[1]));
        return Seq{Item::Bool(a && b)};
      }
      case BinOp::kOr: {
        PF_ASSIGN_OR_RETURN(bool a, Ebv(e->children[0]));
        PF_ASSIGN_OR_RETURN(bool b, Ebv(e->children[1]));
        return Seq{Item::Bool(a || b)};
      }
      default:
        break;
    }
    PF_ASSIGN_OR_RETURN(Seq a, Eval(e->children[0]));
    PF_ASSIGN_OR_RETURN(Seq b, Eval(e->children[1]));
    switch (e->op) {
      case BinOp::kGenEq:
      case BinOp::kGenNe:
      case BinOp::kGenLt:
      case BinOp::kGenLe:
      case BinOp::kGenGt:
      case BinOp::kGenGe: {
        // Existential over all pairs — the nested-loop "join".
        for (const Item& x : a) {
          for (const Item& y : b) {
            PF_ASSIGN_OR_RETURN(int c, CompareValues(x, y));
            bool r = false;
            switch (e->op) {
              case BinOp::kGenEq:
                r = c == 0;
                break;
              case BinOp::kGenNe:
                r = c != 0;
                break;
              case BinOp::kGenLt:
                r = c < 0;
                break;
              case BinOp::kGenLe:
                r = c <= 0;
                break;
              case BinOp::kGenGt:
                r = c > 0;
                break;
              default:
                r = c >= 0;
                break;
            }
            if (r) return Seq{Item::Bool(true)};
          }
        }
        return Seq{Item::Bool(false)};
      }
      case BinOp::kValEq:
      case BinOp::kValNe:
      case BinOp::kValLt:
      case BinOp::kValLe:
      case BinOp::kValGt:
      case BinOp::kValGe: {
        Seq out;
        for (const Item& x : a) {
          for (const Item& y : b) {
            PF_ASSIGN_OR_RETURN(int c, CompareValues(x, y));
            bool r = false;
            switch (e->op) {
              case BinOp::kValEq:
                r = c == 0;
                break;
              case BinOp::kValNe:
                r = c != 0;
                break;
              case BinOp::kValLt:
                r = c < 0;
                break;
              case BinOp::kValLe:
                r = c <= 0;
                break;
              case BinOp::kValGt:
                r = c > 0;
                break;
              default:
                r = c >= 0;
                break;
            }
            out.push_back(Item::Bool(r));
          }
        }
        return out;
      }
      case BinOp::kIs:
      case BinOp::kBefore:
      case BinOp::kAfter: {
        Seq out;
        for (const Item& x : a) {
          for (const Item& y : b) {
            if (!x.IsNode() || !y.IsNode()) {
              return Status::TypeError(
                  "baseline: node comparison on non-nodes");
            }
            bool r = e->op == BinOp::kIs
                         ? x == y
                         : (e->op == BinOp::kBefore ? x.raw < y.raw
                                                    : x.raw > y.raw);
            out.push_back(Item::Bool(r));
          }
        }
        return out;
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kIdiv:
      case BinOp::kMod: {
        Seq out;
        for (const Item& x0 : a) {
          for (const Item& y0 : b) {
            PF_ASSIGN_OR_RETURN(Item x, Atomize(x0));
            PF_ASSIGN_OR_RETURN(Item y, Atomize(y0));
            PF_ASSIGN_OR_RETURN(Item r, Arith(e->op, x, y));
            out.push_back(r);
          }
        }
        return out;
      }
      default:
        return Status::Internal("baseline: unexpected binop");
    }
  }

  Result<Item> Arith(BinOp op, const Item& a, const Item& b) {
    bool both_int = a.kind == ItemKind::kInt && b.kind == ItemKind::kInt;
    PF_ASSIGN_OR_RETURN(double da, bat::ItemToDouble(a, *ctx_->pool()));
    PF_ASSIGN_OR_RETURN(double db, bat::ItemToDouble(b, *ctx_->pool()));
    switch (op) {
      case BinOp::kAdd:
        return both_int ? Item::Int(a.AsInt() + b.AsInt())
                        : Item::Dbl(da + db);
      case BinOp::kSub:
        return both_int ? Item::Int(a.AsInt() - b.AsInt())
                        : Item::Dbl(da - db);
      case BinOp::kMul:
        return both_int ? Item::Int(a.AsInt() * b.AsInt())
                        : Item::Dbl(da * db);
      case BinOp::kDiv:
        if (db == 0.0) return Status::TypeError("division by zero");
        return Item::Dbl(da / db);
      case BinOp::kIdiv:
        if (db == 0.0) return Status::TypeError("integer division by zero");
        return Item::Int(static_cast<int64_t>(da / db));
      case BinOp::kMod:
        if (db == 0.0) return Status::TypeError("modulo by zero");
        if (both_int) return Item::Int(a.AsInt() % b.AsInt());
        return Item::Dbl(std::fmod(da, db));
      default:
        return Status::Internal("not arithmetic");
    }
  }

  Result<Seq> EvalElem(const ExprPtr& e) {
    PF_ASSIGN_OR_RETURN(Seq names, Eval(e->children[0]));
    if (names.empty()) return Seq{};
    PF_ASSIGN_OR_RETURN(std::string name, ItemString(names[0]));
    Seq content;
    for (size_t i = 1; i < e->children.size(); ++i) {
      PF_ASSIGN_OR_RETURN(Seq s, Eval(e->children[i]));
      content.insert(content.end(), s.begin(), s.end());
    }
    PF_ASSIGN_OR_RETURN(Item node,
                        engine::BuildElement(ctx_, name, content));
    return Seq{node};
  }

  Result<Seq> EvalCall(const ExprPtr& e) {
    const std::string& f = e->sval;
    if (f == "true") return Seq{Item::Bool(true)};
    if (f == "false") return Seq{Item::Bool(false)};

    std::vector<Seq> args;
    for (const auto& a : e->children) {
      PF_ASSIGN_OR_RETURN(Seq s, Eval(a));
      args.push_back(std::move(s));
    }

    if (f == "doc") {
      if (args[0].empty()) return Seq{};
      PF_ASSIGN_OR_RETURN(std::string name, ItemString(args[0][0]));
      PF_ASSIGN_OR_RETURN(xml::FragId frag,
                          ctx_->db()->FindDocument(name));
      return Seq{Item::Node(frag, 0)};
    }
    if (f == "root") {
      Seq out;
      for (const Item& it : args[0]) {
        if (!it.IsNode()) {
          return Status::TypeError("fn:root on a non-node");
        }
        out.push_back(Item::Node(it.NodeFrag(), 0));
      }
      return out;
    }
    if (f == "data") {
      Seq out;
      for (const Item& it : args[0]) {
        PF_ASSIGN_OR_RETURN(Item a, Atomize(it));
        out.push_back(a);
      }
      return out;
    }
    if (f == "string") {
      if (args[0].empty()) {
        return Seq{Item::Str(ctx_->pool()->Intern(""))};
      }
      Seq out;
      for (const Item& it : args[0]) {
        PF_ASSIGN_OR_RETURN(std::string s, ItemString(it));
        out.push_back(Item::Str(ctx_->pool()->Intern(s)));
      }
      return out;
    }
    if (f == "number") {
      if (args[0].empty()) {
        return Seq{Item::Dbl(std::numeric_limits<double>::quiet_NaN())};
      }
      Seq out;
      for (const Item& it : args[0]) {
        PF_ASSIGN_OR_RETURN(Item a, Atomize(it));
        auto d = bat::ItemToDouble(a, *ctx_->pool());
        out.push_back(Item::Dbl(
            d.ok() ? *d : std::numeric_limits<double>::quiet_NaN()));
      }
      return out;
    }
    if (f == "count") {
      return Seq{Item::Int(static_cast<int64_t>(args[0].size()))};
    }
    if (f == "sum" || f == "avg" || f == "max" || f == "min") {
      if (args[0].empty()) {
        if (f == "sum") return Seq{Item::Int(0)};
        return Seq{};
      }
      double acc = 0;
      int64_t iacc = 0;
      bool all_int = true;
      Item extreme{};
      bool first = true;
      for (const Item& it0 : args[0]) {
        PF_ASSIGN_OR_RETURN(Item it, Atomize(it0));
        if (f == "max" || f == "min") {
          if (first) {
            extreme = it;
            first = false;
          } else {
            PF_ASSIGN_OR_RETURN(
                int c, bat::ItemCompareValue(it, extreme, *ctx_->pool()));
            if ((f == "max" && c > 0) || (f == "min" && c < 0)) {
              extreme = it;
            }
          }
          continue;
        }
        PF_ASSIGN_OR_RETURN(double d, bat::ItemToDouble(it, *ctx_->pool()));
        acc += d;
        if (it.kind == ItemKind::kInt) {
          iacc += it.AsInt();
        } else {
          all_int = false;
        }
      }
      if (f == "sum") {
        return Seq{all_int ? Item::Int(iacc) : Item::Dbl(acc)};
      }
      if (f == "avg") {
        return Seq{Item::Dbl(acc / static_cast<double>(args[0].size()))};
      }
      return Seq{extreme};
    }
    if (f == "empty") return Seq{Item::Bool(args[0].empty())};
    if (f == "exists") return Seq{Item::Bool(!args[0].empty())};
    if (f == "not" || f == "boolean") {
      bool b = false;
      for (const Item& it : args[0]) {
        PF_ASSIGN_OR_RETURN(bool x, bat::ItemToBool(it, *ctx_->pool()));
        if (x) {
          b = true;
          break;
        }
      }
      return Seq{Item::Bool(f == "not" ? !b : b)};
    }
    if (f == "contains" || f == "starts-with") {
      std::string x, y;
      if (!args[0].empty()) {
        PF_ASSIGN_OR_RETURN(x, ItemString(args[0][0]));
      }
      if (!args[1].empty()) {
        PF_ASSIGN_OR_RETURN(y, ItemString(args[1][0]));
      }
      bool r = f == "contains" ? x.find(y) != std::string::npos
                               : x.substr(0, y.size()) == y;
      return Seq{Item::Bool(r)};
    }
    if (f == "concat") {
      std::string out;
      for (const auto& a : args) {
        if (!a.empty()) {
          PF_ASSIGN_OR_RETURN(std::string s, ItemString(a[0]));
          out += s;
        }
      }
      return Seq{Item::Str(ctx_->pool()->Intern(out))};
    }
    if (f == "string-length") {
      // Mapped over every item, like fn:string (see fn:name above).
      if (args[0].empty()) return Seq{Item::Int(0)};
      Seq out;
      for (const Item& it : args[0]) {
        PF_ASSIGN_OR_RETURN(std::string s, ItemString(it));
        out.push_back(Item::Int(static_cast<int64_t>(s.size())));
      }
      return out;
    }
    if (f == "substring") {
      // Mapped over every item of the first argument (bulk map
      // semantics, see fn:name above); start/length use the first item.
      double start = 1;
      if (!args[1].empty()) {
        PF_ASSIGN_OR_RETURN(Item a, Atomize(args[1][0]));
        PF_ASSIGN_OR_RETURN(start, bat::ItemToDouble(a, *ctx_->pool()));
      }
      double lend = 0;
      if (args.size() == 3 && !args[2].empty()) {
        PF_ASSIGN_OR_RETURN(Item a, Atomize(args[2][0]));
        PF_ASSIGN_OR_RETURN(lend, bat::ItemToDouble(a, *ctx_->pool()));
      }
      Seq inputs = args[0];
      if (inputs.empty()) {
        inputs.push_back(Item::Str(ctx_->pool()->Intern("")));
      }
      Seq out;
      for (const Item& it : inputs) {
        PF_ASSIGN_OR_RETURN(std::string str, ItemString(it));
        int64_t b = static_cast<int64_t>(std::llround(start));
        if (b < 1) b = 1;
        std::string r;
        if (static_cast<size_t>(b) <= str.size()) {
          r = str.substr(static_cast<size_t>(b - 1));
        }
        if (args.size() == 3) {
          int64_t len = static_cast<int64_t>(std::llround(lend));
          r = len > 0 ? r.substr(0, static_cast<size_t>(len)) : "";
        }
        out.push_back(Item::Str(ctx_->pool()->Intern(r)));
      }
      return out;
    }
    if (f == "string-join") {
      std::string sep;
      if (!args[1].empty()) {
        PF_ASSIGN_OR_RETURN(sep, ItemString(args[1][0]));
      }
      std::string joined;
      for (size_t i = 0; i < args[0].size(); ++i) {
        PF_ASSIGN_OR_RETURN(std::string s, ItemString(args[0][i]));
        if (i) joined += sep;
        joined += s;
      }
      return Seq{Item::Str(ctx_->pool()->Intern(joined))};
    }
    if (f == "distinct-values") {
      Seq out;
      for (const Item& it0 : args[0]) {
        PF_ASSIGN_OR_RETURN(Item it, Atomize(it0));
        bool seen = false;
        for (const Item& o : out) {
          if (o == it) {
            seen = true;
            break;
          }
        }
        if (!seen) out.push_back(it);
      }
      return out;
    }
    if (f == "zero-or-one" || f == "exactly-one") return args[0];
    if (f == "name" || f == "local-name") {
      // Like fn:string, mapped over every item (matching the relational
      // engine's bulk map semantics; strict W3C cardinality checks are
      // out of scope — see DESIGN.md).
      if (args[0].empty()) {
        return Seq{Item::Str(ctx_->pool()->Intern(""))};
      }
      Seq out;
      for (const Item& it : args[0]) {
        if (!it.IsNode()) {
          return Status::TypeError("fn:name on a non-node");
        }
        const xml::Document& d = ctx_->doc(it.NodeFrag());
        xml::Pre v = it.NodePre();
        xml::NodeKind k = d.kind(v);
        StrId s = (k == xml::NodeKind::kElem ||
                   k == xml::NodeKind::kAttr || k == xml::NodeKind::kPi)
                      ? d.prop(v)
                      : ctx_->pool()->Intern("");
        out.push_back(Item::Str(s));
      }
      return out;
    }
    return Status::Internal("baseline: unsupported function " + f);
  }

  class ScopedBind {
   public:
    ScopedBind(Interp* in, const std::string& var, Seq value)
        : in_(in), var_(var) {
      auto it = in->env_.find(var);
      had_ = it != in->env_.end();
      if (had_) old_ = std::move(it->second);
      in->env_[var] = std::move(value);
    }
    ~ScopedBind() {
      if (had_) {
        in_->env_[var_] = std::move(old_);
      } else {
        in_->env_.erase(var_);
      }
    }

   private:
    Interp* in_;
    std::string var_;
    bool had_ = false;
    Seq old_;
  };

  engine::QueryContext* ctx_;
  std::map<std::string, Seq> env_;
  std::unordered_map<uint32_t, std::unique_ptr<Dom>> doms_;
};

}  // namespace

Result<std::string> BaselineResult::Serialize() const {
  return runtime::SerializeSequence(*ctx, items);
}

Result<BaselineResult> Baseline::Run(const std::string& query,
                                     const BaselineOptions& opts) const {
  PF_ASSIGN_OR_RETURN(frontend::Module mod, frontend::ParseQuery(query));
  frontend::NormalizeOptions nopts;
  nopts.context_doc = opts.context_doc;
  PF_ASSIGN_OR_RETURN(frontend::ExprPtr core,
                      frontend::Normalize(mod, nopts));
  return RunCore(core);
}

Result<BaselineResult> Baseline::RunCore(
    const frontend::ExprPtr& core) const {
  BaselineResult res;
  res.ctx = std::make_unique<engine::QueryContext>(db_);
  Interp interp(res.ctx.get());
  PF_ASSIGN_OR_RETURN(res.items, interp.Eval(core));
  return res;
}

}  // namespace pathfinder::baseline

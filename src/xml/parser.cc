#include "xml/parser.h"

#include <cctype>
#include <string>

#include "xml/tree_builder.h"

namespace pathfinder::xml {

namespace {

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }
  char Get() {
    char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool Consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Get();
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Get();
    }
  }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return s_.substr(from, to - from);
  }
  size_t line() const { return line_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML line " + std::to_string(line_) + ": " +
                              msg);
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Result<std::string_view> ParseName(Cursor* cur) {
  size_t start = cur->pos();
  if (!IsNameStart(cur->Peek())) return cur->Error("expected name");
  while (IsNameChar(cur->Peek())) cur->Get();
  return cur->Slice(start, cur->pos());
}

}  // namespace

Result<std::string> DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c != '&') {
      out += c;
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "amp") {
      out += '&';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::string_view digits = ent.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      unsigned long cp = 0;
      for (char d : digits) {
        int dv;
        if (d >= '0' && d <= '9') {
          dv = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          dv = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          dv = d - 'A' + 10;
        } else {
          return Status::ParseError("bad character reference");
        }
        cp = cp * static_cast<unsigned long>(base) +
             static_cast<unsigned long>(dv);
      }
      // UTF-8 encode.
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      return Status::ParseError("unknown entity &" + std::string(ent) +
                                ";");
    }
    i = semi;
  }
  return out;
}

namespace {

Status ParseAttrs(Cursor* cur, TreeBuilder* builder) {
  for (;;) {
    cur->SkipWs();
    char c = cur->Peek();
    if (c == '>' || c == '/' || c == '\0') return Status::OK();
    PF_ASSIGN_OR_RETURN(std::string_view name, ParseName(cur));
    cur->SkipWs();
    if (!cur->Consume("=")) return cur->Error("expected '=' in attribute");
    cur->SkipWs();
    char quote = cur->Peek();
    if (quote != '"' && quote != '\'') {
      return cur->Error("attribute value must be quoted");
    }
    cur->Get();
    size_t start = cur->pos();
    while (!cur->AtEnd() && cur->Peek() != quote) cur->Get();
    if (cur->AtEnd()) return cur->Error("unterminated attribute value");
    std::string_view raw = cur->Slice(start, cur->pos());
    cur->Get();  // closing quote
    PF_ASSIGN_OR_RETURN(std::string value, DecodeEntities(raw));
    builder->Attr(name, value);
  }
}

}  // namespace

Result<Document> ParseXml(std::string_view input, StringPool* pool) {
  Cursor cur(input);
  TreeBuilder builder(pool);
  std::vector<std::string_view> open_tags;
  std::string pending_text;

  auto flush_text = [&]() -> Status {
    if (pending_text.empty()) return Status::OK();
    // Whitespace-only text between elements outside any content is
    // insignificant only at top level; inside elements we keep it if it
    // contains non-whitespace, drop pure formatting whitespace (XMark
    // documents use indentation that is not query-relevant).
    bool all_ws = true;
    for (char c : pending_text) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_ws = false;
        break;
      }
    }
    if (!all_ws) builder.Text(pending_text);
    pending_text.clear();
    return Status::OK();
  };

  while (!cur.AtEnd()) {
    if (cur.Peek() != '<') {
      size_t start = cur.pos();
      while (!cur.AtEnd() && cur.Peek() != '<') cur.Get();
      PF_ASSIGN_OR_RETURN(std::string text,
                          DecodeEntities(cur.Slice(start, cur.pos())));
      pending_text += text;
      continue;
    }
    // '<...'
    if (cur.Consume("<?")) {
      PF_RETURN_NOT_OK(flush_text());
      PF_ASSIGN_OR_RETURN(std::string_view target, ParseName(&cur));
      size_t start = cur.pos();
      while (!cur.AtEnd() && !(cur.Peek() == '?' && cur.Peek(1) == '>')) {
        cur.Get();
      }
      if (cur.AtEnd()) return cur.Error("unterminated processing instruction");
      std::string_view content = cur.Slice(start, cur.pos());
      cur.Consume("?>");
      if (target != "xml") {  // skip the XML declaration
        size_t b = content.find_first_not_of(" \t\r\n");
        builder.Pi(target,
                   b == std::string_view::npos ? "" : content.substr(b));
      }
      continue;
    }
    if (cur.Consume("<!--")) {
      PF_RETURN_NOT_OK(flush_text());
      size_t start = cur.pos();
      while (!cur.AtEnd() && !(cur.Peek() == '-' && cur.Peek(1) == '-' &&
                               cur.Peek(2) == '>')) {
        cur.Get();
      }
      if (cur.AtEnd()) return cur.Error("unterminated comment");
      builder.Comment(cur.Slice(start, cur.pos()));
      cur.Consume("-->");
      continue;
    }
    if (cur.Consume("<![CDATA[")) {
      size_t start = cur.pos();
      while (!cur.AtEnd() && !(cur.Peek() == ']' && cur.Peek(1) == ']' &&
                               cur.Peek(2) == '>')) {
        cur.Get();
      }
      if (cur.AtEnd()) return cur.Error("unterminated CDATA section");
      pending_text += cur.Slice(start, cur.pos());
      cur.Consume("]]>");
      continue;
    }
    if (cur.Consume("<!")) {
      // DOCTYPE or similar: skip to matching '>'.
      int depth = 1;
      while (!cur.AtEnd() && depth > 0) {
        char c = cur.Get();
        if (c == '<') ++depth;
        if (c == '>') --depth;
      }
      continue;
    }
    if (cur.Consume("</")) {
      PF_RETURN_NOT_OK(flush_text());
      PF_ASSIGN_OR_RETURN(std::string_view name, ParseName(&cur));
      cur.SkipWs();
      if (!cur.Consume(">")) return cur.Error("expected '>' in end tag");
      if (open_tags.empty()) {
        return cur.Error("unmatched end tag </" + std::string(name) + ">");
      }
      if (open_tags.back() != name) {
        return cur.Error("end tag </" + std::string(name) +
                         "> does not match <" +
                         std::string(open_tags.back()) + ">");
      }
      open_tags.pop_back();
      builder.EndElem();
      continue;
    }
    // Start tag.
    cur.Consume("<");
    PF_RETURN_NOT_OK(flush_text());
    PF_ASSIGN_OR_RETURN(std::string_view name, ParseName(&cur));
    builder.StartElem(name);
    PF_RETURN_NOT_OK(ParseAttrs(&cur, &builder));
    if (cur.Consume("/>")) {
      builder.EndElem();
      continue;
    }
    if (!cur.Consume(">")) return cur.Error("expected '>' in start tag");
    open_tags.push_back(name);
  }
  PF_RETURN_NOT_OK(flush_text());
  if (!open_tags.empty()) {
    return cur.Error("unclosed element <" + std::string(open_tags.back()) +
                     ">");
  }
  return std::move(builder).Finish();
}

}  // namespace pathfinder::xml

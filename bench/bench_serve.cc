// Query-server benchmark: a many-client open-loop workload against
// pf_serve. C client connections each send XMark queries on a fixed
// arrival schedule (latency is measured from the *scheduled* send
// time, so server-side queueing is charged to the server, open-loop
// style), against either an in-process server (default) or an already
// running pf_serve (--port).
//
// Every response is checked byte-for-byte against a reference captured
// during warmup; any mismatch, error reply, or dropped connection
// counts as a failed request. Emits BENCH_serve.json with QPS and
// p50/p99 latency plus the shared cache's cross-client hit counters.
//
//   --smoke       small scale factor and short run, then gate: the
//                 emitted JSON parses, zero failed requests, and the
//                 warm cross-client plan-cache hit rate is > 0 — the
//                 CI gate.
//   --port N      drive an external pf_serve on 127.0.0.1:N
//   --sf X        XMark scale factor      (default 0.05, smoke 0.01)
//   --clients N   concurrent connections  (default 8)
//   --seconds S   measured duration       (default 5, smoke 2)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "serve/client.h"
#include "serve/server.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/database.h"
#include "xml/serializer.h"

namespace pathfinder::bench {
namespace {

using serve::Client;
using serve::Server;

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct ClientReport {
  std::vector<double> latencies_ms;
  int64_t requests = 0;
  int64_t failed = 0;
  int64_t plan_hits = 0;
  std::string first_error;
};

int Run(int argc, char** argv) {
  bool smoke = false;
  int ext_port = 0;
  double sf = 0.05;
  int clients = 8;
  double seconds = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      sf = 0.01;
      seconds = 2.0;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      ext_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  // The document ships over the wire — identical path for in-process
  // and external servers.
  std::string xml;
  {
    xml::Database scratch;
    auto doc = xmark::GenerateXMark(sf, /*seed=*/42, scratch.pool());
    if (!doc.ok()) {
      std::fprintf(stderr, "generate: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    xml = xml::SerializeDocument(*doc, *scratch.pool());
  }
  std::printf("bench_serve: sf %g (%zu XML bytes), %d clients, %.0fs %s\n",
              sf, xml.size(), clients, seconds,
              ext_port ? "(external server)" : "(in-process server)");

  xml::Database db;
  std::unique_ptr<Server> inproc;
  int port = ext_port;
  if (ext_port == 0) {
    inproc = std::make_unique<Server>(&db, Server::Options::FromEnv());
    Status st = inproc->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
      return 1;
    }
    port = inproc->port();
  }

  const auto& queries = xmark::XMarkQueries();
  const char* kDoc = "bench-auction.xml";

  // Warmup connection: register the document, capture reference bytes
  // for every query (and warm the shared plan cache), and measure the
  // mean latency that calibrates the open-loop arrival rate.
  std::vector<std::string> expected(queries.size());
  double warm_mean_ms = 0;
  {
    Client c;
    Status st = c.Connect(port);
    if (!st.ok()) {
      std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
      return 1;
    }
    auto reg = c.Call(Client::RegisterFrame(kDoc, xml), /*timeout_ms=*/300000);
    if (!reg.ok() || reg->Find("ok") == nullptr || !reg->Find("ok")->AsBool()) {
      std::fprintf(stderr, "register failed\n");
      return 1;
    }
    Clock::time_point w0 = Clock::now();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto r = c.Call(Client::QueryFrame("warm-" + std::to_string(qi),
                                         queries[qi].text, kDoc),
                      /*timeout_ms=*/300000);
      if (!r.ok() || !r->Find("ok")->AsBool()) {
        std::fprintf(stderr, "warmup Q%zu failed\n", qi + 1);
        return 1;
      }
      expected[qi] = r->Find("result")->str;
    }
    warm_mean_ms = MsSince(w0) / static_cast<double>(queries.size());
  }
  // Per-connection arrival interval: ~80% of a connection's serial
  // capacity, so the aggregate load is high but sustainable.
  double interval_ms = std::max(0.5, warm_mean_ms * 1.25);
  std::printf("warm mean %.2f ms/query -> open-loop interval %.2f ms "
              "per connection\n",
              warm_mean_ms, interval_ms);

  std::vector<ClientReport> reports(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&, ci] {
      ClientReport& rep = reports[static_cast<size_t>(ci)];
      Client c;
      Status st = c.Connect(port);
      if (!st.ok()) {
        rep.failed = 1;
        rep.first_error = st.ToString();
        return;
      }
      Rng rng(7000 + static_cast<uint64_t>(ci));
      Clock::time_point t0 = Clock::now();
      auto end = t0 + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(seconds));
      int64_t i = 0;
      while (Clock::now() < end) {
        auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         static_cast<double>(i) * interval_ms));
        std::this_thread::sleep_until(scheduled);
        size_t qi = rng.Below(queries.size());
        std::string id = "c" + std::to_string(ci) + "-" + std::to_string(i);
        ++rep.requests;
        auto r = c.Call(Client::QueryFrame(id, queries[qi].text, kDoc),
                        /*timeout_ms=*/300000);
        double latency = std::chrono::duration<double, std::milli>(
                             Clock::now() - scheduled)
                             .count();
        const serve::JsonValue* ok = r.ok() ? r->Find("ok") : nullptr;
        if (ok == nullptr || !ok->AsBool() ||
            r->Find("result")->str != expected[qi]) {
          ++rep.failed;
          if (rep.first_error.empty()) {
            rep.first_error =
                id + ": " + (r.ok() ? "bad response" : r.status().ToString());
          }
          ++i;
          continue;
        }
        if (r->Find("plan_cache_hit")->AsBool()) ++rep.plan_hits;
        rep.latencies_ms.push_back(latency);
        ++i;
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<double> lat;
  int64_t requests = 0, failed = 0, plan_hits = 0;
  for (const ClientReport& rep : reports) {
    requests += rep.requests;
    failed += rep.failed;
    plan_hits += rep.plan_hits;
    lat.insert(lat.end(), rep.latencies_ms.begin(), rep.latencies_ms.end());
    if (!rep.first_error.empty()) {
      std::fprintf(stderr, "client error: %s\n", rep.first_error.c_str());
    }
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&lat](double p) {
    if (lat.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * static_cast<double>(lat.size() - 1));
    return lat[idx];
  };
  double qps = seconds > 0 ? static_cast<double>(lat.size()) / seconds : 0;
  double p50 = pct(0.50), p99 = pct(0.99);
  double hit_rate =
      requests > 0 ? static_cast<double>(plan_hits) /
                         static_cast<double>(requests)
                   : 0;

  // Cross-client counters from the server itself.
  int64_t srv_plan_hits = 0, srv_subplan_hits = 0;
  {
    Client c;
    if (c.Connect(port).ok()) {
      auto st = c.Call(Client::StatsFrame());
      if (st.ok() && st->Find("plan_cache_hits") != nullptr) {
        srv_plan_hits = st->Find("plan_cache_hits")->AsInt();
        srv_subplan_hits = st->Find("subplan_cache_hits")->AsInt();
      }
    }
  }

  std::printf("requests %lld  failed %lld  qps %.1f  p50 %.2f ms  "
              "p99 %.2f ms  plan-hit rate %.2f\n",
              static_cast<long long>(requests),
              static_cast<long long>(failed), qps, p50, p99, hit_rate);

  const char* path = "BENCH_serve.json";
  {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f,
                 "{\"sf\": %g, \"clients\": %d, \"seconds\": %g,\n"
                 " \"requests\": %lld, \"failed\": %lld, \"qps\": %.2f,\n"
                 " \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n"
                 " \"plan_hit_rate\": %.4f, \"server_plan_cache_hits\": %lld,"
                 " \"server_subplan_cache_hits\": %lld}\n",
                 sf, clients, seconds, static_cast<long long>(requests),
                 static_cast<long long>(failed), qps, p50, p99, hit_rate,
                 static_cast<long long>(srv_plan_hits),
                 static_cast<long long>(srv_subplan_hits));
    std::fclose(f);
  }

  if (smoke) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    if (!ValidJsonDocument(ss.str())) {
      std::fprintf(stderr, "smoke: %s is not valid JSON\n", path);
      return 1;
    }
    if (requests == 0) {
      std::fprintf(stderr, "smoke: no requests completed\n");
      return 1;
    }
    if (failed != 0) {
      std::fprintf(stderr, "smoke: %lld failed requests\n",
                   static_cast<long long>(failed));
      return 1;
    }
    if (hit_rate <= 0) {
      std::fprintf(stderr, "smoke: warm plan-cache hit rate is zero — "
                           "no cross-client reuse\n");
      return 1;
    }
    std::printf("smoke: OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main(int argc, char** argv) { return pathfinder::bench::Run(argc, argv); }

#ifndef PATHFINDER_OPT_PIPELINE_H_
#define PATHFINDER_OPT_PIPELINE_H_

#include "algebra/op.h"
#include "base/status.h"

namespace pathfinder::opt {

/// Counters describing one plan's pipeline annotation (copied into
/// QueryResult for tests and EXPLAIN output).
struct PipelineStats {
  int fragments = 0;      ///< fused fragments annotated
  int fused_ops = 0;      ///< operators inside those fragments
  int longest_chain = 0;  ///< member count of the longest fragment
};

/// Identify maximal fusable operator chains in the plan DAG and record
/// them on Op::pipe_frag / Op::pipe_tail (any prior annotation is
/// discarded).
///
/// A fragment grows upward from a head — an equi/theta join (probe →
/// gather) or any row-local map operator (σ/π/attach/~) — through
/// row-local map operators, as long as each extension consumes its
/// child's output exclusively (a shared subplan must be materialized
/// for its other consumers, so it ends the chain). kStep, kRowNum,
/// kAggr, kDistinct and every other operator kind always break
/// pipelines. Singleton fragments survive only where a fused kernel
/// exists (σ → FilterGather, joins → probe+gather); a lone π/attach/~
/// runs the legacy per-operator path.
///
/// The executor evaluates each fragment tail as one morsel-driven pass,
/// materializing only the tail's output BAT.
Status AnnotatePipelines(const algebra::OpPtr& root,
                         PipelineStats* stats = nullptr);

}  // namespace pathfinder::opt

#endif  // PATHFINDER_OPT_PIPELINE_H_

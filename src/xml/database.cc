#include "xml/database.h"

#include "xml/parser.h"

namespace pathfinder::xml {

FragId Database::AddDocument(const std::string& name, Document doc) {
  FragId id = static_cast<FragId>(docs_.size());
  docs_.push_back(std::make_unique<Document>(std::move(doc)));
  names_.push_back(name);
  by_name_[name] = id;
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

Result<FragId> Database::LoadXml(const std::string& name,
                                 std::string_view xml) {
  PF_ASSIGN_OR_RETURN(Document doc, ParseXml(xml, &pool_));
  return AddDocument(name, std::move(doc));
}

Result<FragId> Database::FindDocument(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second;
}

size_t Database::EncodingBytes() const {
  size_t total = 0;
  for (const auto& d : docs_) total += d->EncodingBytes();
  return total;
}

}  // namespace pathfinder::xml

#include <gtest/gtest.h>

#include "algebra/schema.h"
#include "api/pathfinder.h"
#include "engine/executor.h"
#include "opt/optimize.h"
#include "runtime/serialize.h"

namespace pathfinder::opt {
namespace {

namespace alg = pathfinder::algebra;
using alg::OpPtr;

class OptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadXml("d.xml",
                            "<r><x k=\"1\">a</x><x k=\"2\">b</x>"
                            "<y ref=\"2\"/></r>")
                    .ok());
  }

  /// Compile unoptimized, optimize, check both plans produce the same
  /// result, and return the stats.
  OptimizeStats CheckPreserves(const std::string& q) {
    Pathfinder pf(&db_);
    QueryOptions o;
    o.context_doc = "d.xml";
    o.optimize = false;
    auto unopt = pf.Run(q, o);
    EXPECT_TRUE(unopt.ok()) << unopt.status().ToString() << " q=" << q;

    OptimizeStats stats;
    auto plan = Optimize(unopt->plan, &stats);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(alg::ValidatePlan(*plan).ok());
    EXPECT_LE(stats.ops_after, stats.ops_before);

    engine::QueryContext ctx(&db_);
    auto t = engine::Execute(*plan, &ctx);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    auto items = runtime::TableToSequence(*t);
    EXPECT_TRUE(items.ok());
    auto s1 = runtime::SerializeSequence(ctx, *items);
    auto s2 = unopt->Serialize();
    EXPECT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(*s1, *s2) << "optimizer changed the result of: " << q;
    return stats;
  }

  xml::Database db_;
};

TEST_F(OptTest, ShrinksTypicalPlans) {
  const char* queries[] = {
      "for $v in (10,20) return $v + 100",
      "//x",
      "for $a in //x where $a/@k = \"1\" return $a/text()",
      "count(//x)",
      "for $a in //x order by $a/@k descending return <v>{ $a/text() }</v>",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    OptimizeStats stats = CheckPreserves(q);
    EXPECT_LT(stats.ops_after, stats.ops_before)
        << "no reduction for: " << q;
  }
}

TEST_F(OptTest, RemovesDistinctAfterStaircaseJoin) {
  // Build the ddo pattern directly: Distinct over a projected/rownum'd
  // staircase join output (the compiler emits Step without the Distinct
  // nowadays, but hand-written or older plans still carry it).
  namespace a = alg;
  OpPtr ctxt = a::LitTable({"iter", "item"},
                           {bat::ColType::kInt, bat::ColType::kItem},
                           {{Item::Int(1), Item::Node(0, 0)}});
  OpPtr step = a::Step(ctxt, accel::Axis::kDescendant,
                       accel::NodeTest::AnyKind());
  OpPtr rn = a::RowNum(step, "pos", {"iter"}, {"item"});
  OpPtr prj = a::Project(rn, {{"iter", "iter"}, {"item", "item"}});
  OpPtr dist = a::Distinct(prj, {"iter", "item"});
  OptimizeStats stats;
  auto opt = Optimize(dist, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_GE(stats.distincts_removed, 1);
}

TEST_F(OptTest, FusesProjections) {
  OptimizeStats stats =
      CheckPreserves("for $v in (1,2,3) return $v * 2");
  EXPECT_GE(stats.projections_fused, 1);
}

TEST_F(OptTest, ResultPreservedOnWholeCorpus) {
  const char* queries[] = {
      "(1, \"a\", 2.5)",
      "for $a in //x, $b in //y return ($a/@k, $b/@ref)",
      "if (//y) then count(//x) else 0",
      "sum(//x/@k)",
      "for $a in //x let $m := for $b in //y "
      "where $b/@ref = $a/@k return $b return count($m)",
      "<wrap>{ //x[1] }</wrap>",
      "typeswitch (//x[1]) case element() return 1 default return 0",
      "distinct-values((//x/@k, \"1\"))",
      "some $a in //x satisfies $a/@k = \"2\"",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    CheckPreserves(q);
  }
}

TEST_F(OptTest, IdempotentFixpoint) {
  Pathfinder pf(&db_);
  QueryOptions o;
  o.context_doc = "d.xml";
  o.optimize = false;
  auto r = pf.Run("for $a in //x where $a/@k = \"1\" return $a", o);
  ASSERT_TRUE(r.ok());
  OptimizeStats s1, s2;
  auto p1 = Optimize(r->plan, &s1);
  ASSERT_TRUE(p1.ok());
  auto p2 = Optimize(*p1, &s2);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(s2.ops_before, s2.ops_after);
}

TEST_F(OptTest, StatsReportBeforeAfter) {
  Pathfinder pf(&db_);
  QueryOptions o;
  o.context_doc = "d.xml";
  auto r = pf.Run("//x", o);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->opt_stats.ops_before, 0u);
  EXPECT_GT(r->opt_stats.ops_after, 0u);
  EXPECT_LE(r->opt_stats.ops_after, r->opt_stats.ops_before);
}

}  // namespace
}  // namespace pathfinder::opt

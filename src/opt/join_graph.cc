#include "opt/join_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <bit>
#include <cmath>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/schema.h"
#include "opt/cost.h"
#include "xml/database.h"
#include "xml/document.h"
#include "xml/stats.h"

namespace pathfinder::opt {

namespace alg = pathfinder::algebra;
using alg::JoinCluster;
using alg::Op;
using alg::OpKind;
using alg::OpPtr;

algebra::StepUniqueness MakeStepUniqueness(const xml::Database* db) {
  if (db == nullptr) return nullptr;
  return [db](accel::Axis axis, const accel::NodeTest& test) -> bool {
    size_t n = db->num_documents();
    if (n == 0) return false;
    for (size_t i = 0; i < n; ++i) {
      const xml::DocStats* s = db->doc(static_cast<xml::FragId>(i)).stats();
      if (s == nullptr) return false;
      switch (axis) {
        case accel::Axis::kChild:
          if (test.kind == accel::NodeTest::Kind::kName) {
            if (s->MaxChildrenAnyParent(test.name) > 1) return false;
          } else if (test.kind == accel::NodeTest::Kind::kText) {
            if (s->MaxTextChildrenAnyTag() > 1) return false;
          } else {
            return false;
          }
          break;
        case accel::Axis::kAttribute: {
          if (test.kind != accel::NodeTest::Kind::kName) return false;
          auto it = s->attrs.find(test.name);
          if (it != s->attrs.end() && it->second.max_per_owner > 1) {
            return false;
          }
          break;
        }
        default:
          return false;
      }
    }
    return true;
  };
}

namespace {

OpPtr Stitch(const OpPtr& root,
             const std::unordered_map<const Op*, OpPtr>& repl);

// ---------------------------------------------------------------------
// Pass 1: key-based distinct removal.

OpPtr RemoveKeyDistincts(const OpPtr& root, const alg::KeyAnalysis& ka,
                         JoinOptStats* stats) {
  std::unordered_map<const Op*, OpPtr> memo;
  std::function<OpPtr(const OpPtr&)> rec = [&](const OpPtr& op) -> OpPtr {
    auto it = memo.find(op.get());
    if (it != memo.end()) return it->second;
    std::vector<OpPtr> kids;
    bool changed = false;
    for (const auto& c : op->children) {
      OpPtr nc = rec(c);
      changed |= nc.get() != c.get();
      kids.push_back(std::move(nc));
    }
    OpPtr node = op;
    if (op->kind == OpKind::kDistinct && !op->keys.empty() &&
        ka.CoversKey(op->children[0].get(), op->keys)) {
      // The input provably carries no duplicate keys-tuples, and
      // DistinctIndices keeps first occurrences, so dropping the
      // operator preserves the exact row sequence.
      node = kids[0];
      if (stats != nullptr) stats->key_distincts_removed++;
    } else if (changed) {
      node = std::make_shared<Op>(*op);
      node->children = std::move(kids);
    }
    memo[op.get()] = node;
    return node;
  };
  return rec(root);
}

// ---------------------------------------------------------------------
// Pass 2: selection pushdown through mapping joins.
//
// The loop-lifting compiler evaluates a comparison by mapping both
// operands into one iteration space (eqjoin iter=iter'), computing the
// predicate as a fun1/fun2/attach/project chain over the join output
// and filtering with a select:
//
//   select b / fun2 b=(item eq r) / eqjoin iter=i / ...
//
// When every join-output column the predicate reads lives on ONE join
// input — columns from the other input are admissible too if they are
// row-independent, i.e. derived purely from attach constants or 1-row
// literal tables (the compiler's shape for comparison with a literal)
// — a copy of the predicate + select is planted below the join on that
// input, followed by a schema-restoring project. The original select
// stays put: it is a no-op on the pre-filtered stream, so downstream
// schemas and plan shape are untouched. Order safety: a pair survives
// the upper select iff its filtered-side row passes the pushed filter,
// and surviving pairs keep their relative order, so results stay
// byte-identical.

/// Rebuild column `col` of `op`'s output on top of `base` under the
/// name `out`, provided its value is row-independent (derived only
/// from attach constants / 1-row literal tables through fun chains).
/// Returns nullptr when the column is not provably constant.
OpPtr BuildConstCol(const Op* op, const std::string& col, OpPtr base,
                    const std::string& out,
                    const std::unordered_map<const Op*, alg::Schema>& schemas,
                    int depth) {
  if (depth > 24 || base == nullptr) return nullptr;
  switch (op->kind) {
    case OpKind::kAttach:
      if (op->out == col) {
        return alg::Attach(std::move(base), out, op->types[0],
                           op->attach_val);
      }
      return BuildConstCol(op->children[0].get(), col, std::move(base), out,
                           schemas, depth + 1);
    case OpKind::kLitTable: {
      if (op->rows.size() != 1) return nullptr;
      for (size_t i = 0; i < op->names.size(); ++i) {
        if (op->names[i] == col) {
          return alg::Attach(std::move(base), out, op->types[i],
                             op->rows[0][i]);
        }
      }
      return nullptr;
    }
    case OpKind::kProject:
      for (const auto& [nw, old] : op->proj) {
        if (nw == col) {
          return BuildConstCol(op->children[0].get(), old, std::move(base),
                               out, schemas, depth + 1);
        }
      }
      return nullptr;
    case OpKind::kFun1: {
      if (op->out != col) {
        return BuildConstCol(op->children[0].get(), col, std::move(base),
                             out, schemas, depth + 1);
      }
      OpPtr in = BuildConstCol(op->children[0].get(), op->col,
                               std::move(base), out + "i", schemas,
                               depth + 1);
      if (in == nullptr) return nullptr;
      return alg::MapFun1(std::move(in), op->fun1, out + "i", out);
    }
    case OpKind::kFun2: {
      if (op->out != col) {
        return BuildConstCol(op->children[0].get(), col, std::move(base),
                             out, schemas, depth + 1);
      }
      OpPtr a = BuildConstCol(op->children[0].get(), op->col,
                              std::move(base), out + "a", schemas,
                              depth + 1);
      OpPtr b = BuildConstCol(op->children[0].get(), op->col2, std::move(a),
                              out + "b", schemas, depth + 1);
      if (b == nullptr) return nullptr;
      return alg::MapFun2(std::move(b), op->fun2, out + "a", out + "b", out);
    }
    case OpKind::kSelect:
    case OpKind::kDistinct:
      // Filtering / deduplication preserves per-row constancy.
      return BuildConstCol(op->children[0].get(), col, std::move(base), out,
                           schemas, depth + 1);
    case OpKind::kRowNum:
    case OpKind::kRank:
      if (op->out == col) return nullptr;  // row-dependent by definition
      return BuildConstCol(op->children[0].get(), col, std::move(base), out,
                           schemas, depth + 1);
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin: {
      for (int s = 0; s < 2; ++s) {
        auto it = schemas.find(op->children[s].get());
        if (it == schemas.end()) continue;
        for (const auto& [n, t] : it->second.cols) {
          if (n == col) {
            return BuildConstCol(op->children[s].get(), col, std::move(base),
                                 out, schemas, depth + 1);
          }
        }
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

/// Symbolic form of the predicate chain between a select and the join
/// it filters: a small expression tree whose leaves are join-output
/// columns or attach constants.
struct PredExpr {
  enum class Kind { kJoinCol, kConst, kFun1, kFun2 } kind;
  std::string col;                          // kJoinCol
  bat::ColType ctype = bat::ColType::kItem;  // kConst
  Item cval{ItemKind::kInt, 0};              // kConst
  alg::Fun1 f1 = alg::Fun1::kNot;
  alg::Fun2 f2 = alg::Fun2::kAdd;
  std::shared_ptr<PredExpr> a, b;
};
using PredExprPtr = std::shared_ptr<PredExpr>;

void CollectJoinCols(const PredExprPtr& e, std::vector<std::string>* out) {
  if (e->kind == PredExpr::Kind::kJoinCol) {
    if (std::find(out->begin(), out->end(), e->col) == out->end()) {
      out->push_back(e->col);
    }
  }
  if (e->a) CollectJoinCols(e->a, out);
  if (e->b) CollectJoinCols(e->b, out);
}

/// One select pushed through one join per call site, applied
/// repeatedly until no select moves.
struct SelectPusher {
  JoinOptStats* stats;
  std::set<int> done;  // select ids already handled (clones keep the id)

  /// Symbolically evaluate the chain (bottom-up) to express the
  /// select's predicate column over the join's output columns.
  PredExprPtr EvalChain(const std::vector<const Op*>& chain,
                        const alg::Schema& join_schema,
                        const std::string& pred_col) {
    std::unordered_map<std::string, PredExprPtr> env;
    for (const auto& [n, t] : join_schema.cols) {
      auto e = std::make_shared<PredExpr>();
      e->kind = PredExpr::Kind::kJoinCol;
      e->col = n;
      env[n] = e;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Op* c = *it;
      switch (c->kind) {
        case OpKind::kProject: {
          std::unordered_map<std::string, PredExprPtr> next;
          for (const auto& [nw, old] : c->proj) {
            auto oit = env.find(old);
            if (oit == env.end()) return nullptr;
            next[nw] = oit->second;
          }
          env = std::move(next);
          break;
        }
        case OpKind::kAttach: {
          auto e = std::make_shared<PredExpr>();
          e->kind = PredExpr::Kind::kConst;
          e->ctype = c->types[0];
          e->cval = c->attach_val;
          env[c->out] = e;
          break;
        }
        case OpKind::kFun1: {
          auto ait = env.find(c->col);
          if (ait == env.end()) return nullptr;
          auto e = std::make_shared<PredExpr>();
          e->kind = PredExpr::Kind::kFun1;
          e->f1 = c->fun1;
          e->a = ait->second;
          env[c->out] = e;
          break;
        }
        case OpKind::kFun2: {
          auto ait = env.find(c->col);
          auto bit = env.find(c->col2);
          if (ait == env.end() || bit == env.end()) return nullptr;
          auto e = std::make_shared<PredExpr>();
          e->kind = PredExpr::Kind::kFun2;
          e->f2 = c->fun2;
          e->a = ait->second;
          e->b = bit->second;
          env[c->out] = e;
          break;
        }
        default:
          return nullptr;
      }
    }
    auto pit = env.find(pred_col);
    return pit == env.end() ? nullptr : pit->second;
  }

  /// Emit ops computing `e` on top of `*base`; returns the column name
  /// holding the result (empty string = failure).
  std::string Emit(const PredExprPtr& e, OpPtr* base, int sel_id,
                   int* fresh,
                   const std::unordered_map<std::string, std::string>& ren) {
    auto name = [&] {
      return "jp" + std::to_string(sel_id) + "_" + std::to_string((*fresh)++);
    };
    switch (e->kind) {
      case PredExpr::Kind::kJoinCol: {
        auto it = ren.find(e->col);
        return it == ren.end() ? e->col : it->second;
      }
      case PredExpr::Kind::kConst: {
        std::string n = name();
        *base = alg::Attach(std::move(*base), n, e->ctype, e->cval);
        return n;
      }
      case PredExpr::Kind::kFun1: {
        std::string in = Emit(e->a, base, sel_id, fresh, ren);
        if (in.empty()) return "";
        std::string n = name();
        *base = alg::MapFun1(std::move(*base), e->f1, in, n);
        return n;
      }
      case PredExpr::Kind::kFun2: {
        std::string in1 = Emit(e->a, base, sel_id, fresh, ren);
        std::string in2 = Emit(e->b, base, sel_id, fresh, ren);
        if (in1.empty() || in2.empty()) return "";
        std::string n = name();
        *base = alg::MapFun2(std::move(*base), e->f2, in1, in2, n);
        return n;
      }
    }
    return "";
  }

  /// Re-emit one original chain op verbatim on top of `base`.
  OpPtr Reemit(const Op* c, OpPtr base) {
    switch (c->kind) {
      case OpKind::kProject:
        return alg::Project(std::move(base), c->proj);
      case OpKind::kAttach:
        return alg::Attach(std::move(base), c->out, c->types[0],
                           c->attach_val);
      case OpKind::kFun1:
        return alg::MapFun1(std::move(base), c->fun1, c->col, c->out);
      case OpKind::kFun2:
        return alg::MapFun2(std::move(base), c->fun2, c->col, c->col2,
                            c->out);
      default:
        return nullptr;
    }
  }

  /// Try to push `sel`'s predicate below `join` onto side `s`. Columns
  /// in `other` come from side 1-s and must be reconstructible as
  /// constants. Returns the replacement for `sel`, or nullptr.
  OpPtr TrySide(const Op* sel, const std::vector<const Op*>& chain,
                const Op* join, int s, const PredExprPtr& pred,
                const std::vector<std::string>& other,
                const std::unordered_map<const Op*, alg::Schema>& schemas) {
    OpPtr side = join->children[s];
    std::unordered_map<std::string, std::string> ren;
    for (const auto& c : other) {
      std::string fresh_name = "jp" + std::to_string(sel->id) + "_" + c;
      side = BuildConstCol(join->children[1 - s].get(), c, std::move(side),
                           fresh_name, schemas, 0);
      if (side == nullptr) return nullptr;
      ren[c] = fresh_name;
    }
    int fresh = 0;
    std::string pcol = Emit(pred, &side, sel->id, &fresh, ren);
    if (pcol.empty()) return nullptr;
    side = alg::Select(std::move(side), pcol);  // fresh id: can cascade
    std::vector<std::pair<std::string, std::string>> proj;
    for (const auto& [n, t] : schemas.at(join->children[s].get()).cols) {
      proj.emplace_back(n, n);
    }
    side = alg::Project(std::move(side), std::move(proj));
    OpPtr l = s == 0 ? side : join->children[0];
    OpPtr r = s == 0 ? join->children[1] : side;
    OpPtr cur = join->kind == OpKind::kEquiJoin
                    ? alg::EquiJoin(std::move(l), std::move(r), join->col,
                                    join->col2)
                    : alg::ThetaJoin(std::move(l), std::move(r), join->col,
                                     join->col2, join->cmp);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      cur = Reemit(*it, std::move(cur));
      if (cur == nullptr) return nullptr;
    }
    // The original select stays on top (a no-op on the pre-filtered
    // stream) so the subtree's schema is exactly what it was. Clone it
    // to keep its id: `done` then skips it on later rounds.
    auto top = std::make_shared<Op>(*sel);
    top->children = {std::move(cur)};
    return top;
  }

  Result<OpPtr> Run(OpPtr cur) {
    for (int round = 0; round < 4; ++round) {
      std::unordered_map<const Op*, alg::Schema> schemas;
      PF_RETURN_NOT_OK(alg::InferSchemas(cur, &schemas).status());
      std::vector<Op*> order = alg::TopoOrder(cur);
      std::unordered_map<const Op*, int> consumers;
      for (Op* op : order) {
        consumers[op];
        for (const auto& c : op->children) consumers[c.get()]++;
      }
      std::unordered_map<const Op*, OpPtr> repl;
      const bool dbg = std::getenv("PF_JOINOPT_DEBUG") != nullptr;
      for (Op* op : order) {
        if (op->kind != OpKind::kSelect || done.count(op->id) != 0) continue;
        // Walk the predicate-computing chain down to a join.
        std::vector<const Op*> chain;
        const Op* d = op->children[0].get();
        while ((d->kind == OpKind::kFun1 || d->kind == OpKind::kFun2 ||
                d->kind == OpKind::kAttach ||
                d->kind == OpKind::kProject) &&
               consumers.at(d) == 1 && chain.size() < 8) {
          chain.push_back(d);
          d = d->children[0].get();
        }
        if (chain.empty()) {
          if (dbg)
            fprintf(stderr, "[jp] sel#%d: empty chain (child kind %d)\n",
                    op->id, static_cast<int>(op->children[0]->kind));
          continue;
        }
        if ((d->kind != OpKind::kEquiJoin &&
             d->kind != OpKind::kThetaJoin) ||
            consumers.at(d) != 1) {
          if (dbg)
            fprintf(stderr,
                    "[jp] sel#%d: chain=%zu ends at #%d kind %d cons %d\n",
                    op->id, chain.size(), d->id, static_cast<int>(d->kind),
                    consumers.at(d));
          continue;
        }
        PredExprPtr pred = EvalChain(chain, schemas.at(d), op->col);
        if (pred == nullptr) {
          if (dbg) fprintf(stderr, "[jp] sel#%d: EvalChain failed\n", op->id);
          continue;
        }
        std::vector<std::string> needed;
        CollectJoinCols(pred, &needed);
        if (needed.empty()) continue;  // constant predicate: leave alone
        std::vector<std::string> froml, fromr;
        bool known = true;
        for (const auto& n : needed) {
          bool inl = false, inr = false;
          for (const auto& [cn, t] : schemas.at(d->children[0].get()).cols) {
            if (cn == n) inl = true;
          }
          for (const auto& [cn, t] : schemas.at(d->children[1].get()).cols) {
            if (cn == n) inr = true;
          }
          if (inl) {
            froml.push_back(n);
          } else if (inr) {
            fromr.push_back(n);
          } else {
            known = false;
            break;
          }
        }
        if (!known) continue;
        OpPtr r;
        if (fromr.empty()) {
          r = TrySide(op, chain, d, 0, pred, {}, schemas);
        } else if (froml.empty()) {
          r = TrySide(op, chain, d, 1, pred, {}, schemas);
        } else {
          r = TrySide(op, chain, d, 0, pred, fromr, schemas);
          if (r == nullptr) r = TrySide(op, chain, d, 1, pred, froml, schemas);
        }
        if (r == nullptr) continue;
        done.insert(op->id);
        repl[op] = std::move(r);
        if (stats != nullptr) stats->selects_pushed++;
      }
      if (repl.empty()) break;
      cur = Stitch(cur, repl);
    }
    return cur;
  }
};

// ---------------------------------------------------------------------
// Pass 3: cluster costing and reordering.

std::string JgName(int leaf, const std::string& col) {
  return "jg" + std::to_string(leaf) + "_" + col;
}

bat::CmpOp FlipCmp(bat::CmpOp c) {
  switch (c) {
    case bat::CmpOp::kLt:
      return bat::CmpOp::kGt;
    case bat::CmpOp::kLe:
      return bat::CmpOp::kGe;
    case bat::CmpOp::kGt:
      return bat::CmpOp::kLt;
    case bat::CmpOp::kGe:
      return bat::CmpOp::kLe;
    case bat::CmpOp::kEq:
    case bat::CmpOp::kNe:
      return c;
  }
  return c;
}

/// Per-cluster cost model: multiplicative cardinalities over the leaf
/// tree. card(S) = prod(leaf cards in S) * prod(selectivities of edges
/// inside S) — split-independent, so the DP is well-defined.
struct ClusterModel {
  int n = 0;
  std::vector<double> leaf_card;             // select-reduced
  std::vector<double> edge_sel;              // per edge, <= 1 (theta 1/3)
  std::vector<std::vector<std::pair<int, int>>> adj;  // leaf -> (edge, other)

  double SubsetCard(uint32_t mask, const JoinCluster& cl) const {
    double card = 1.0;
    for (int i = 0; i < n; ++i) {
      if (mask >> i & 1) card *= leaf_card[i];
    }
    for (size_t e = 0; e < cl.edges.size(); ++e) {
      if ((mask >> cl.edges[e].left.leaf & 1) &&
          (mask >> cl.edges[e].right.leaf & 1)) {
        card *= edge_sel[e];
      }
    }
    return std::max(card, 0.05);
  }

  double JoinCost(bool equi, double lc, double rc, double out) const {
    return equi ? lc + rc + out : lc * rc;
  }
};

ClusterModel BuildModel(const JoinCluster& cl, CardinalityEstimator& est) {
  ClusterModel m;
  m.n = static_cast<int>(cl.leaves.size());
  m.adj.resize(m.n);
  std::vector<const OpEstimate*> le(m.n);
  m.leaf_card.resize(m.n);
  for (int i = 0; i < m.n; ++i) {
    le[i] = &est.Estimate(cl.leaves[i].get());
    m.leaf_card[i] = le[i]->rows;
  }
  for (const auto& s : cl.selects) {
    m.leaf_card[s.leaf] = std::max(m.leaf_card[s.leaf] * 0.5, 0.05);
  }
  for (size_t e = 0; e < cl.edges.size(); ++e) {
    const auto& ed = cl.edges[e];
    double sel;
    if (!ed.equi) {
      sel = 1.0 / 3.0;
    } else {
      double ln = -1, rn = -1;
      if (auto it = le[ed.left.leaf]->ndv.find(ed.left.col);
          it != le[ed.left.leaf]->ndv.end()) {
        ln = it->second;
      }
      if (auto it = le[ed.right.leaf]->ndv.find(ed.right.col);
          it != le[ed.right.leaf]->ndv.end()) {
        rn = it->second;
      }
      double denom = std::max(ln, rn);
      if (denom <= 0) {
        denom = std::sqrt(std::max(
            {le[ed.left.leaf]->rows, le[ed.right.leaf]->rows, 1.0}));
      }
      sel = 1.0 / std::max(denom, 1.0);
    }
    m.edge_sel.push_back(sel);
    m.adj[ed.left.leaf].emplace_back(static_cast<int>(e), ed.right.leaf);
    m.adj[ed.right.leaf].emplace_back(static_cast<int>(e), ed.left.leaf);
  }
  return m;
}

/// Cost of a fixed join shape (with selects already pushed): returns
/// {output card, cumulative cost}.
struct TreeCost {
  double card = 0;
  double cost = 0;
};

TreeCost CostShape(const JoinCluster& cl, const ClusterModel& m, int ni,
                   uint32_t* mask_out) {
  const JoinCluster::ShapeNode& nd = cl.nodes[ni];
  if (nd.leaf >= 0) {
    *mask_out = 1u << nd.leaf;
    return {m.leaf_card[nd.leaf], 0.0};
  }
  uint32_t lm = 0, rm = 0;
  TreeCost l = CostShape(cl, m, nd.left, &lm);
  TreeCost r = CostShape(cl, m, nd.right, &rm);
  uint32_t sm = lm | rm;
  *mask_out = sm;
  double card = m.SubsetCard(sm, cl);
  double cost = l.cost + r.cost +
                m.JoinCost(cl.edges[nd.edge].equi, l.card, r.card, card);
  return {card, cost};
}

/// DPsub over connected subsets of the leaf tree. Every connected
/// bipartition of a connected subset is crossed by exactly one edge,
/// so enumerating the edges inside each subset enumerates its splits.
struct DpChoice {
  int edge = -1;
  uint32_t lmask = 0;  // build/left side
};

struct DpResult {
  double cost = 0;
  std::vector<DpChoice> choice;  // per mask
};

uint32_t Component(const ClusterModel& m, uint32_t mask, int start,
                   int skip_edge) {
  uint32_t comp = 1u << start;
  std::vector<int> stack = {start};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (const auto& [e, o] : m.adj[v]) {
      if (e == skip_edge) continue;
      if (!(mask >> o & 1) || (comp >> o & 1)) continue;
      comp |= 1u << o;
      stack.push_back(o);
    }
  }
  return comp;
}

DpResult RunDp(const JoinCluster& cl, const ClusterModel& m) {
  uint32_t full = (1u << m.n) - 1;
  std::vector<double> cost(full + 1, -1.0);
  DpResult res;
  res.choice.assign(full + 1, {});
  for (int i = 0; i < m.n; ++i) cost[1u << i] = 0.0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton
    int first = std::countr_zero(mask);
    if (Component(m, mask, first, -1) != mask) continue;  // not connected
    double best = -1.0;
    DpChoice bc;
    for (size_t e = 0; e < cl.edges.size(); ++e) {
      int a = cl.edges[e].left.leaf, b = cl.edges[e].right.leaf;
      if (!(mask >> a & 1) || !(mask >> b & 1)) continue;
      uint32_t la = Component(m, mask, a, static_cast<int>(e));
      uint32_t lb = mask ^ la;
      if (!(lb >> b & 1)) continue;  // edge not a cut of this subset
      if (cost[la] < 0 || cost[lb] < 0) continue;
      double ca = m.SubsetCard(la, cl);
      double cb = m.SubsetCard(lb, cl);
      double out = m.SubsetCard(mask, cl);
      double c = cost[la] + cost[lb] +
                 m.JoinCost(cl.edges[e].equi, ca, cb, out);
      // Deterministic orientation: smaller side builds (left); ties
      // break toward the side holding the edge's original left leaf.
      uint32_t lmask = ca < cb ? la : cb < ca ? lb : la;
      if (best < 0 || c < best - 1e-12 ||
          (std::abs(c - best) <= 1e-12 &&
           (static_cast<int>(e) < bc.edge ||
            (static_cast<int>(e) == bc.edge && lmask < bc.lmask)))) {
        best = c;
        bc = {static_cast<int>(e), lmask};
      }
    }
    cost[mask] = best;
    res.choice[mask] = bc;
  }
  res.cost = cost[full];
  return res;
}

/// Build the replacement subtree for one cluster.
class ClusterRebuilder {
 public:
  ClusterRebuilder(const JoinCluster& cl,
                   const std::unordered_map<const Op*, alg::Schema>& schemas)
      : cl_(cl), schemas_(schemas) {
    used_.resize(cl.leaves.size());
    for (const auto& [name, ref] : cl.output) Use(ref);
    for (const auto& e : cl.edges) {
      Use(e.left);
      Use(e.right);
    }
    for (const auto& s : cl.selects) Use(s);
  }

  /// Leaf -> rename to the unified jg column space -> pushed selects
  /// -> optional rank column.
  OpPtr PrepareLeaf(int i, bool rank) {
    std::vector<std::pair<std::string, std::string>> proj;
    for (const auto& col : used_[i]) proj.emplace_back(JgName(i, col), col);
    OpPtr cur = alg::Project(cl_.leaves[i], std::move(proj));
    for (const auto& s : cl_.selects) {
      if (s.leaf == i) cur = alg::Select(cur, JgName(i, s.col));
    }
    if (rank) cur = alg::Rank(cur, RankCol(i));
    return cur;
  }

  static std::string RankCol(int i) { return JgName(i, "#rank"); }

  OpPtr Join(OpPtr l, OpPtr r, const JoinCluster::Edge& e, bool flipped) {
    const auto& a = flipped ? e.right : e.left;
    const auto& b = flipped ? e.left : e.right;
    std::string ac = JgName(a.leaf, a.col);
    std::string bc = JgName(b.leaf, b.col);
    if (e.equi) return alg::EquiJoin(std::move(l), std::move(r), ac, bc);
    return alg::ThetaJoin(std::move(l), std::move(r), ac, bc,
                          flipped ? FlipCmp(e.cmp) : e.cmp);
  }

  /// Original shape, selects pushed (order-preserving: select pushdown
  /// below a join filters the same rows out of the same left-major
  /// pair sequence).
  OpPtr BuildTierA() {
    std::vector<OpPtr> prepared;
    for (size_t i = 0; i < cl_.leaves.size(); ++i) {
      prepared.push_back(PrepareLeaf(static_cast<int>(i), false));
    }
    std::function<OpPtr(int)> build = [&](int ni) -> OpPtr {
      const auto& nd = cl_.nodes[ni];
      if (nd.leaf >= 0) return prepared[nd.leaf];
      return Join(build(nd.left), build(nd.right), cl_.edges[nd.edge],
                  false);
    };
    return Finish(build(static_cast<int>(cl_.nodes.size()) - 1));
  }

  /// DP shape + per-leaf ranks + order-restoring sort.
  OpPtr BuildTierB(const DpResult& dp) {
    std::vector<OpPtr> prepared;
    for (size_t i = 0; i < cl_.leaves.size(); ++i) {
      prepared.push_back(PrepareLeaf(static_cast<int>(i), true));
    }
    std::function<OpPtr(uint32_t)> build = [&](uint32_t mask) -> OpPtr {
      if ((mask & (mask - 1)) == 0) return prepared[std::countr_zero(mask)];
      const DpChoice& ch = dp.choice[mask];
      OpPtr l = build(ch.lmask);
      OpPtr r = build(mask ^ ch.lmask);
      const auto& e = cl_.edges[ch.edge];
      bool flipped = !(ch.lmask >> e.left.leaf & 1);
      return Join(std::move(l), std::move(r), e, flipped);
    };
    uint32_t full = (1u << cl_.leaves.size()) - 1;
    OpPtr tree = build(full);
    // Per output row the rank tuple (in original leaf order) is unique,
    // so this sort totally orders the result — back to the exact
    // sequence the original left-deep evaluation produces.
    std::vector<std::string> order;
    for (size_t i = 0; i < cl_.leaves.size(); ++i) {
      order.push_back(RankCol(static_cast<int>(i)));
    }
    return Finish(alg::Sort(std::move(tree), std::move(order)));
  }

 private:
  void Use(const JoinCluster::ColRef& ref) {
    auto& u = used_[ref.leaf];
    if (std::find(u.begin(), u.end(), ref.col) == u.end()) {
      u.push_back(ref.col);
    }
  }

  /// Restore the cluster root's exact output schema (names and order).
  OpPtr Finish(OpPtr cur) {
    std::vector<std::pair<std::string, std::string>> proj;
    for (const auto& [name, ref] : cl_.output) {
      proj.emplace_back(name, JgName(ref.leaf, ref.col));
    }
    return alg::Project(std::move(cur), std::move(proj));
  }

  const JoinCluster& cl_;
  const std::unordered_map<const Op*, alg::Schema>& schemas_;
  std::vector<std::vector<std::string>> used_;  // per leaf, ordered
};

/// Re-stitch the plan, swapping every cluster root for its replacement.
/// Replacement subtrees are traversed too: a cluster's leaf may itself
/// be another (multi-consumer) cluster's root.
OpPtr Stitch(const OpPtr& root,
             const std::unordered_map<const Op*, OpPtr>& repl) {
  std::unordered_map<const Op*, OpPtr> memo;
  std::function<OpPtr(const OpPtr&)> rec = [&](const OpPtr& op) -> OpPtr {
    auto it = memo.find(op.get());
    if (it != memo.end()) return it->second;
    OpPtr target = op;
    if (auto r = repl.find(op.get()); r != repl.end()) target = r->second;
    std::vector<OpPtr> kids;
    bool kid_changed = false;
    for (const auto& c : target->children) {
      OpPtr nc = rec(c);
      kid_changed |= nc.get() != c.get();
      kids.push_back(std::move(nc));
    }
    OpPtr out = target;
    if (kid_changed) {
      out = std::make_shared<Op>(*target);
      out->children = std::move(kids);
    }
    memo[op.get()] = out;
    return out;
  };
  return rec(root);
}

}  // namespace

Result<algebra::OpPtr> IsolateAndReorderJoins(const algebra::OpPtr& root,
                                              const xml::Database* db,
                                              JoinOptStats* stats,
                                              int use_path_summary) {
  // 1. Stats-backed key inference -> distinct removal.
  alg::KeyAnalysis ka = alg::InferKeys(root, MakeStepUniqueness(db));
  OpPtr cur = RemoveKeyDistincts(root, ka, stats);

  // 2. Selection pushdown through mapping joins.
  {
    SelectPusher sp{stats, {}};
    PF_ASSIGN_OR_RETURN(cur, sp.Run(std::move(cur)));
  }

  // 3. Join clusters.
  std::unordered_map<const Op*, alg::Schema> schemas;
  PF_RETURN_NOT_OK(alg::InferSchemas(cur, &schemas).status());
  std::vector<JoinCluster> clusters = CollectJoinClusters(cur, schemas);
  if (clusters.empty()) return cur;

  CardinalityEstimator est(db, use_path_summary);
  std::unordered_map<const Op*, OpPtr> repl;
  for (const JoinCluster& cl : clusters) {
    if (stats != nullptr) stats->join_clusters++;
    ClusterModel model = BuildModel(cl, est);
    uint32_t mask = 0;
    TreeCost orig =
        CostShape(cl, model, static_cast<int>(cl.nodes.size()) - 1, &mask);
    DpResult dp = RunDp(cl, model);
    ClusterRebuilder rb(cl, schemas);
    // The DP optimum includes the original shape, so dp.cost <=
    // orig.cost always; reorder only when it wins by >30% even after
    // paying for the order-restoring sort.
    double sort_cost =
        2.0 * model.SubsetCard((1u << model.n) - 1, cl) * model.n;
    bool reorder = dp.cost >= 0 && dp.cost + sort_cost < 0.7 * orig.cost;
    if (reorder) {
      repl[cl.root] = rb.BuildTierB(dp);
      if (stats != nullptr) {
        stats->joins_reordered++;
        stats->selects_pushed += static_cast<int>(cl.selects.size());
      }
    } else if (!cl.selects.empty()) {
      repl[cl.root] = rb.BuildTierA();
      if (stats != nullptr) {
        stats->selects_pushed += static_cast<int>(cl.selects.size());
      }
    }
  }
  if (!repl.empty()) cur = Stitch(cur, repl);
  PF_RETURN_NOT_OK(alg::ValidatePlan(cur));
  return cur;
}

}  // namespace pathfinder::opt

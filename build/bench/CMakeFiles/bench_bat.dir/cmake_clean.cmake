file(REMOVE_RECURSE
  "CMakeFiles/bench_bat.dir/bench_bat.cc.o"
  "CMakeFiles/bench_bat.dir/bench_bat.cc.o.d"
  "bench_bat"
  "bench_bat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

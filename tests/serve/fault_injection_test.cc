// Fault-injection tests: every failure mode the server must survive is
// reproduced deterministically through the ServeTestHooks seams — no
// sleeps, no wall-clock races. After each injected fault the server
// must remain fully serviceable.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "algebra/op.h"
#include "api/pathfinder.h"
#include "engine/query_context.h"
#include "serve/client.h"
#include "serve/hooks.h"
#include "serve/server.h"
#include "xml/database.h"
#include "xml/update.h"

namespace pathfinder::serve {
namespace {

constexpr const char* kDocXml =
    "<a><b id=\"1\">x</b><b id=\"2\">y</b><b id=\"3\">z</b><c>3</c></a>";

// ------------------------------------------------- direct API budgets --

class ApiLimitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadXml("d.xml", kDocXml).ok());
  }
  xml::Database db_;
};

TEST_F(ApiLimitsTest, PreFiredTokenCancelsBeforeAnyWork) {
  Pathfinder pf(&db_);
  engine::CancelToken token;
  token.Cancel();
  QueryOptions o;
  o.context_doc = "d.xml";
  o.cancel_token = &token;
  auto r = pf.Run("count(//b)", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(r.status().error_class(), ErrorClass::kCancelled);
}

TEST_F(ApiLimitsTest, ZeroTimeoutFiresAtFirstCheckpoint) {
  Pathfinder pf(&db_);
  QueryOptions o;
  o.context_doc = "d.xml";
  o.timeout_ms = 0;
  auto r = pf.Run("count(//b)", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.status().error_class(), ErrorClass::kTimeout);
}

TEST_F(ApiLimitsTest, TinyMemoryBudgetIsResourceExhausted) {
  Pathfinder pf(&db_);
  QueryOptions o;
  o.context_doc = "d.xml";
  o.mem_limit_bytes = 1;
  auto r = pf.Run("for $v in (1,2,3) return $v + 1", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status().error_class(), ErrorClass::kResourceExhausted);
  // The same engine still answers the same query without the budget.
  QueryOptions ok;
  ok.context_doc = "d.xml";
  ASSERT_TRUE(pf.Run("for $v in (1,2,3) return $v + 1", ok).ok());
}

// ------------------------------------------------------- server seams --

/// Blocks queries at their first executor checkpoint while armed; a
/// blocked query un-blocks when the gate is released OR its cancel
/// token fires (the cancel is delivered by another thread, so the wait
/// re-checks the token on a short tick — the tick is a liveness detail,
/// the ORDER of events stays fully deterministic).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;
  int entered = 0;

  void Arm() {
    std::lock_guard<std::mutex> lock(mu);
    armed = true;
    entered = 0;
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    armed = false;
    cv.notify_all();
  }
  void WaitEntered(int n = 1) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
  void Probe(const algebra::Op&, engine::CancelToken* token) {
    std::unique_lock<std::mutex> lock(mu);
    if (!armed) return;
    ++entered;
    cv.notify_all();
    while (armed && (token == nullptr || !token->fired())) {
      cv.wait_for(lock, std::chrono::milliseconds(2));
    }
  }
};

/// Completion signal: RunJob finished (slot reclaimed, write attempted).
struct DoneTracker {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<std::string, std::string>> done;  // id -> error

  void Record(const std::string& id, const std::string& error) {
    std::lock_guard<std::mutex> lock(mu);
    done.emplace_back(id, error);
    cv.notify_all();
  }
  std::string WaitFor(const std::string& id) {
    std::unique_lock<std::mutex> lock(mu);
    std::string error;
    cv.wait(lock, [&] {
      for (auto& [i, e] : done) {
        if (i == id) {
          error = e;
          return true;
        }
      }
      return false;
    });
    return error;
  }
};

class FaultServerTest : public ::testing::Test {
 protected:
  void StartServer(int max_inflight = 2, int queue_depth = 8) {
    ASSERT_TRUE(db_.LoadXml("d.xml", kDocXml).ok());
    hooks_.at_operator = [this](const algebra::Op& op,
                                engine::CancelToken* token) {
      if (probe_) probe_(op, token);
      gate_.Probe(op, token);
    };
    hooks_.on_query_done = [this](uint64_t, const std::string& id,
                                  const std::string& error) {
      tracker_.Record(id, error);
    };
    hooks_.on_write = [this](uint64_t, int64_t) {
      return write_fault_.load();
    };
    Server::Options o;
    o.max_inflight = max_inflight;
    o.queue_depth = queue_depth;
    o.hooks = &hooks_;
    // Keep plans fully re-executed: counters below assume no cross-test
    // cache interference inside the shared server.
    o.query_options.plan_cache = 0;
    o.query_options.subplan_cache = 0;
    server_ = std::make_unique<Server>(&db_, o);
    ASSERT_TRUE(server_->Start().ok());
  }

  // The inflight gauge drops just AFTER a response is written, so a
  // client that has read every reply may still observe the slot for an
  // instant; quiescence is an eventually-true gauge, not an ordering
  // guarantee.
  void WaitQuiesced() {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      ServerStats st = server_->Stats();
      if (st.inflight == 0 && st.queued == 0) return;
      if (std::chrono::steady_clock::now() > deadline) {
        FAIL() << "server never quiesced: inflight=" << st.inflight
               << " queued=" << st.queued;
      }
      std::this_thread::yield();
    }
  }

  // Session teardown cancels that session's in-flight tokens BEFORE the
  // disconnect counter bumps, so once this returns any job the departed
  // client left queued is provably doomed to a pre-execution cancel.
  void WaitDisconnected(int64_t n = 1) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server_->Stats().disconnects < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        FAIL() << "disconnect never observed";
      }
      std::this_thread::yield();
    }
  }

  void ExpectServiceable() {
    Client c;
    ASSERT_TRUE(c.Connect(server_->port()).ok());
    auto q = c.Call(Client::QueryFrame("alive", "count(//b)", "d.xml"));
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ASSERT_NE(q->Find("ok"), nullptr);
    EXPECT_TRUE(q->Find("ok")->AsBool());
    EXPECT_EQ(q->Find("result")->str, "3");
    WaitQuiesced();
  }

  xml::Database db_;
  ServeTestHooks hooks_;
  Gate gate_;
  DoneTracker tracker_;
  std::function<void(const algebra::Op&, engine::CancelToken*)> probe_;
  std::atomic<ServeTestHooks::WriteFault> write_fault_{
      ServeTestHooks::WriteFault::kNone};
  std::unique_ptr<Server> server_;
};

TEST_F(FaultServerTest, ClientDisconnectMidQueryReclaimsSlot) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  gate_.Arm();
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  gate_.WaitEntered();
  c.Close();  // client walks away while its query is executing
  // The reader notices, cancels the query, and the slot frees up.
  EXPECT_EQ(tracker_.WaitFor("q1"), "cancelled");
  gate_.Release();
  ServerStats st = server_->Stats();
  EXPECT_EQ(st.cancelled, 1);
  EXPECT_GE(st.disconnects, 1);
  ExpectServiceable();
}

// Wall-time budget firing inside each kernel family. The probe arms the
// token's timeout exactly when the target operator kind is reached, so
// the abort point is a precise plan position, not a race.
TEST_F(FaultServerTest, TimeoutFiresInsideEachKernelFamily) {
  StartServer();
  struct Family {
    const char* name;
    const char* query;
    algebra::OpKind target;
  };
  const Family families[] = {
      {"step", "//b", algebra::OpKind::kStep},
      {"agg", "count(//b)", algebra::OpKind::kAggr},
      {"sort", "for $v in (3,1,2) order by $v descending return $v",
       algebra::OpKind::kRowNum},
      {"join",
       "for $a in (1,2,3) let $h := for $b in (2,3,4) where $b = $a "
       "return $b return count($h)",
       algebra::OpKind::kEquiJoin},
  };
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  for (const Family& f : families) {
    std::atomic<bool> armed{true};
    std::atomic<bool> seen{false};
    std::mutex mu;  // serializes seen-kind bookkeeping under TSan
    probe_ = [&](const algebra::Op& op, engine::CancelToken* token) {
      std::lock_guard<std::mutex> lock(mu);
      if (armed.load() && op.kind == f.target && token != nullptr) {
        seen.store(true);
        token->Timeout();
      }
    };
    auto r = c.Call(Client::QueryFrame(f.name, f.query, "d.xml"));
    ASSERT_TRUE(r.ok()) << f.name << ": " << r.status().ToString();
    ASSERT_NE(r->Find("ok"), nullptr) << f.name;
    EXPECT_FALSE(r->Find("ok")->AsBool()) << f.name;
    EXPECT_EQ(r->Find("error")->str, "timeout") << f.name;
    EXPECT_TRUE(seen.load())
        << f.name << ": plan never reached " << algebra::OpKindName(f.target);
    armed.store(false);
    // The same query without the injected deadline completes fine.
    auto ok = c.Call(Client::QueryFrame(std::string(f.name) + "-ok", f.query,
                                        "d.xml"));
    ASSERT_TRUE(ok.ok()) << f.name;
    EXPECT_TRUE(ok->Find("ok")->AsBool()) << f.name;
  }
  probe_ = nullptr;
  EXPECT_EQ(server_->Stats().timeouts, 4);
  ExpectServiceable();
}

TEST_F(FaultServerTest, CancelBeforeCompletionIsFoundAndAborts) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  gate_.Arm();
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  gate_.WaitEntered();  // q1 is provably executing, held at an operator
  auto cancel = c.Call(Client::CancelFrame("q1"));
  ASSERT_TRUE(cancel.ok());
  EXPECT_TRUE(cancel->Find("found")->AsBool());
  // The held query now observes the fired token and aborts.
  auto r = c.ReadLine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto parsed = ParseJson(*r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_EQ(parsed->Find("error")->str, "cancelled");
  gate_.Release();
  EXPECT_EQ(server_->Stats().cancelled, 1);
  ExpectServiceable();
}

TEST_F(FaultServerTest, CancelAfterCompletionIsNotFound) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  auto q = c.Call(Client::QueryFrame("q1", "count(//b)", "d.xml"));
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Find("ok")->AsBool());
  // The response has been read, so the id is deterministically retired.
  auto cancel = c.Call(Client::CancelFrame("q1"));
  ASSERT_TRUE(cancel.ok());
  EXPECT_FALSE(cancel->Find("found")->AsBool());
  EXPECT_EQ(server_->Stats().cancelled, 0);
  ExpectServiceable();
}

TEST_F(FaultServerTest, AdmissionOverflowAnswersTypedBusy) {
  StartServer(/*max_inflight=*/1, /*queue_depth=*/1);
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  gate_.Arm();
  // q1 occupies the only worker; q2 fills the only queue slot.
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  gate_.WaitEntered();
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q2", "count(//c)", "d.xml")).ok());
  // Give q2 time to be enqueued is not needed: the session thread
  // enqueues it before reading the next frame off the same connection,
  // so by the time q3 is handled the queue is full — deterministically.
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q3", "count(//b)", "d.xml")).ok());
  auto r = c.ReadLine();  // q3's rejection, written by the session thread
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto busy = ParseJson(*r);
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy->Find("ok")->AsBool());
  EXPECT_EQ(busy->Find("id")->str, "q3");
  EXPECT_EQ(busy->Find("error")->str, "busy");
  gate_.Release();
  // q1 and q2 drain in order on the single worker.
  for (const char* id : {"q1", "q2"}) {
    auto line = c.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto resp = ParseJson(*line);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->Find("ok")->AsBool()) << id;
    EXPECT_EQ(resp->Find("id")->str, id);
  }
  ServerStats st = server_->Stats();
  EXPECT_EQ(st.busy_rejects, 1);
  EXPECT_EQ(st.completed, 2);
  ExpectServiceable();
}

TEST_F(FaultServerTest, DroppedResponseBytesDoNotWedgeTheServer) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  write_fault_.store(ServeTestHooks::WriteFault::kDrop);
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  // The query completes server-side; its response bytes evaporate.
  EXPECT_EQ(tracker_.WaitFor("q1"), "");
  EXPECT_EQ(server_->Stats().completed, 1);
  auto nothing = c.ReadLine(200);
  EXPECT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kTimeout);
  // Heal the link: traffic flows again on the same connection.
  write_fault_.store(ServeTestHooks::WriteFault::kNone);
  auto pong = c.Call(Client::PingFrame());
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->Find("op")->str, "pong");
  ExpectServiceable();
}

TEST_F(FaultServerTest, ConnectionClosedMidResponseStaysServiceable) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  write_fault_.store(ServeTestHooks::WriteFault::kClose);
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  // The injected close lands on the response write: the query itself
  // finished, the client sees a mid-frame disconnect.
  EXPECT_EQ(tracker_.WaitFor("q1"), "");
  EXPECT_EQ(server_->Stats().completed, 1);
  auto eof = c.ReadLine();
  EXPECT_FALSE(eof.ok());
  write_fault_.store(ServeTestHooks::WriteFault::kNone);
  ExpectServiceable();
}

TEST_F(FaultServerTest, GracefulShutdownDrainsInflightQueries) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  gate_.Arm();
  ASSERT_TRUE(c.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  gate_.WaitEntered();
  // Shut down while q1 is held mid-execution; drain must complete it
  // and flush its response before tearing the connection down.
  std::thread shutdown([&] { server_->Shutdown(); });
  gate_.Release();
  auto r = c.ReadLine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto resp = ParseJson(*r);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->Find("ok")->AsBool());
  EXPECT_EQ(resp->Find("result")->str, "3");
  shutdown.join();
  EXPECT_EQ(server_->Stats().completed, 1);
}

// ------------------------------------------------------ update verb --

// kDocXml pre ranks: 0=doc 1=<a> 2=<b> 3=@id 4=text ... 11=<c> 12=text;
// 13 nodes, 5 elements.

// Pins the update path on for a test's lifetime, so these suites hold
// under an ambient PF_UPDATES=0 CI lane too (the kill-switch test
// flips the same seam the other way).
struct ForceUpdatesOn {
  ForceUpdatesOn() { xml::SetUpdatesEnabledForTest(1); }
  ~ForceUpdatesOn() { xml::SetUpdatesEnabledForTest(-1); }
};

TEST_F(FaultServerTest, UpdateVerbAppliesAndNewQueriesSeeIt) {
  ForceUpdatesOn enabled;
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  auto ins = c.Call(
      Client::UpdateFrame("u1", "d.xml", "insert", /*target=*/1,
                          /*position=*/-1, "<d/>"));
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_TRUE(ins->Find("ok")->AsBool());
  EXPECT_EQ(ins->Find("op")->str, "update");
  EXPECT_EQ(ins->Find("id")->str, "u1");
  EXPECT_TRUE(ins->Find("structural")->AsBool());
  EXPECT_EQ(ins->Find("nodes_before")->AsInt(), 13);
  EXPECT_EQ(ins->Find("nodes_after")->AsInt(), 14);
  auto q = c.Call(Client::QueryFrame("q1", "count(//*)", "d.xml"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Find("result")->str, "6");
  // Content-only replace: rewrite the first <b>'s id attribute in place.
  auto rep = c.Call(Client::UpdateFrame("u2", "d.xml", "replace",
                                        /*target=*/3, /*position=*/-1,
                                        /*xml=*/{}, /*value=*/"9"));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->Find("ok")->AsBool());
  EXPECT_FALSE(rep->Find("structural")->AsBool());
  EXPECT_EQ(rep->Find("nodes_after")->AsInt(), 14);
  auto q2 = c.Call(
      Client::QueryFrame("q2", "count(//b[@id = \"9\"])", "d.xml"));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->Find("result")->str, "1");
  // Updates against a name nobody registered are a typed not_found.
  auto miss = c.Call(Client::UpdateFrame("u3", "ghost.xml", "delete", 1));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->Find("ok")->AsBool());
  EXPECT_EQ(miss->Find("error")->str, "not_found");
  ServerStats st = server_->Stats();
  EXPECT_EQ(st.updates, 3);
  EXPECT_EQ(st.updates_applied, 2);
  // The stats verb carries the new counters on the wire.
  auto stats = c.Call(Client::StatsFrame());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("updates")->AsInt(), 3);
  EXPECT_EQ(stats->Find("updates_applied")->AsInt(), 2);
  ExpectServiceable();
}

// A query held at its first axis step has already bound its document
// snapshot (fn:doc resolves inside the kDocRoot operator, which ran
// before the step's checkpoint fired). An update racing past it must
// neither block on the reader nor leak into its result.
TEST_F(FaultServerTest, UpdateRacingQueryReadsItsOwnSnapshot) {
  ForceUpdatesOn enabled;
  StartServer();
  std::mutex mu;
  std::condition_variable cv;
  bool armed = true;
  bool entered = false;
  probe_ = [&](const algebra::Op& op, engine::CancelToken* token) {
    std::unique_lock<std::mutex> lock(mu);
    if (!armed) return;
    if (op.kind != algebra::OpKind::kStep &&
        op.kind != algebra::OpKind::kPathScan) {
      return;  // let kDocRoot (and everything below the step) run
    }
    entered = true;
    cv.notify_all();
    while (armed && (token == nullptr || !token->fired())) {
      cv.wait_for(lock, std::chrono::milliseconds(2));
    }
  };
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  ASSERT_TRUE(
      c.SendLine(Client::QueryFrame("q1", "count(//*)", "d.xml")).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return entered; }))
        << "query never reached an axis-step operator";
  }
  // The update completes while q1 is held — writers never wait for
  // readers; the old snapshot stays pinned by the running query.
  Client w;
  ASSERT_TRUE(w.Connect(server_->port()).ok());
  auto up = w.Call(Client::UpdateFrame("u1", "d.xml", "insert",
                                       /*target=*/1, /*position=*/-1,
                                       "<d/>"));
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_TRUE(up->Find("ok")->AsBool());
  {
    std::lock_guard<std::mutex> lock(mu);
    armed = false;
    cv.notify_all();
  }
  auto r = c.ReadLine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto resp = ParseJson(*r);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->Find("ok")->AsBool());
  EXPECT_EQ(resp->Find("result")->str, "5");  // pre-update element count
  auto after = w.Call(Client::QueryFrame("q2", "count(//*)", "d.xml"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("result")->str, "6");  // fresh queries see it
  probe_ = nullptr;
  ExpectServiceable();
}

TEST_F(FaultServerTest, DisconnectCancelsQueuedUpdateBeforeItApplies) {
  ForceUpdatesOn enabled;
  StartServer(/*max_inflight=*/1, /*queue_depth=*/8);
  Client blocker;
  ASSERT_TRUE(blocker.Connect(server_->port()).ok());
  gate_.Arm();
  ASSERT_TRUE(
      blocker.SendLine(Client::QueryFrame("q1", "count(//b)", "d.xml")).ok());
  gate_.WaitEntered();  // the only worker is provably held
  Client w;
  ASSERT_TRUE(w.Connect(server_->port()).ok());
  ASSERT_TRUE(w.SendLine(Client::UpdateFrame("u1", "d.xml", "insert",
                                             /*target=*/1, /*position=*/-1,
                                             "<d/>"))
                  .ok());
  w.Close();  // walk away with the update still queued
  WaitDisconnected();  // u1's token is now fired, before any execution
  gate_.Release();
  EXPECT_EQ(tracker_.WaitFor("q1"), "");
  EXPECT_EQ(tracker_.WaitFor("u1"), "cancelled");
  ServerStats st = server_->Stats();
  EXPECT_EQ(st.updates, 1);
  EXPECT_EQ(st.updates_applied, 0);
  EXPECT_EQ(st.cancelled, 1);
  // No snapshot was published: the document is bit-for-bit untouched.
  Client check;
  ASSERT_TRUE(check.Connect(server_->port()).ok());
  auto q = check.Call(Client::QueryFrame("q2", "count(//*)", "d.xml"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Find("result")->str, "5");
  ExpectServiceable();
}

TEST_F(FaultServerTest, LostUpdateResponseStillPublishesTheSnapshot) {
  ForceUpdatesOn enabled;
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  write_fault_.store(ServeTestHooks::WriteFault::kClose);
  ASSERT_TRUE(c.SendLine(Client::UpdateFrame("u1", "d.xml", "insert",
                                             /*target=*/1, /*position=*/-1,
                                             "<d/>"))
                  .ok());
  // The update finished server-side; only its acknowledgement died.
  EXPECT_EQ(tracker_.WaitFor("u1"), "");
  EXPECT_EQ(server_->Stats().updates_applied, 1);
  auto eof = c.ReadLine();
  EXPECT_FALSE(eof.ok());
  write_fault_.store(ServeTestHooks::WriteFault::kNone);
  // The snapshot outlives the lost ack: a fresh client sees it.
  Client check;
  ASSERT_TRUE(check.Connect(server_->port()).ok());
  auto q = check.Call(Client::QueryFrame("q2", "count(//*)", "d.xml"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Find("result")->str, "6");
  ExpectServiceable();
}

TEST_F(FaultServerTest, UpdatesDisabledAnswerTypedInvalidQuery) {
  ForceUpdatesOn enabled;  // restores the seam even on early exit
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  xml::SetUpdatesEnabledForTest(0);
  auto r = c.Call(Client::UpdateFrame("u1", "d.xml", "delete",
                                      /*target=*/11));
  xml::SetUpdatesEnabledForTest(1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->Find("ok")->AsBool());
  EXPECT_EQ(r->Find("error")->str, "invalid_query");
  ServerStats st = server_->Stats();
  EXPECT_EQ(st.updates, 1);
  EXPECT_EQ(st.updates_applied, 0);
  EXPECT_EQ(st.failed, 1);
  // The very same frame succeeds once the kill switch lifts.
  auto ok2 = c.Call(Client::UpdateFrame("u2", "d.xml", "delete",
                                        /*target=*/11));
  ASSERT_TRUE(ok2.ok());
  EXPECT_TRUE(ok2->Find("ok")->AsBool());
  EXPECT_TRUE(ok2->Find("structural")->AsBool());
  ExpectServiceable();  // deleting <c> leaves count(//b) at 3
}

}  // namespace
}  // namespace pathfinder::serve

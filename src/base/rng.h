#ifndef PATHFINDER_BASE_RNG_H_
#define PATHFINDER_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace pathfinder {

/// Deterministic xorshift64* PRNG.
///
/// Used by the XMark generator and the property-test drivers so that
/// every run (and every platform) produces identical documents and
/// workloads — a requirement for reproducible benchmark rows.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-skewed integer in [0, n): rank k is drawn with probability
  /// ~ 1/(k+1)^s (continuous inverse-CDF approximation of the bounded
  /// Zipf law; exact enough for workload skew, and exactly one Next()
  /// per draw so sequences stay reproducible). Requires n > 0 and
  /// s > 1. Skewed-key workloads use this to load one hash partition
  /// far heavier than the rest.
  uint64_t Zipf(uint64_t n, double s) {
    // H(x) = integral of x^-s: the CDF of the continuous law on
    // [0.5, n + 0.5]; invert a uniform draw over its range.
    auto h = [s](double x) {
      return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
    };
    const double lo = h(0.5);
    const double hi = h(static_cast<double>(n) + 0.5);
    double u = lo + NextDouble() * (hi - lo);
    double x = std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    return k - 1;
  }

 private:
  uint64_t state_;
};

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_RNG_H_

#include "api/pathfinder.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "algebra/print.h"
#include "engine/executor.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"
#include "runtime/serialize.h"

namespace pathfinder {

namespace {

std::string FmtProfileNs(int64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

void IndexProfile(
    const engine::OperatorProfile& p,
    std::unordered_map<int, const engine::OperatorProfile*>* by_id) {
  by_id->emplace(p.op_id, &p);
  for (const auto& c : p.children) IndexProfile(c, by_id);
}

}  // namespace

Result<std::string> QueryResult::Serialize() const {
  return runtime::SerializeSequence(*ctx, items);
}

std::string QueryResult::ProfileText() const {
  if (profile == nullptr || plan_opt == nullptr || ctx == nullptr) return "";
  std::unordered_map<int, const engine::OperatorProfile*> by_id;
  IndexProfile(*profile, &by_id);
  return algebra::PlanToTextAnnotated(
      plan_opt, *ctx->pool(), [&](const algebra::Op& op) -> std::string {
        auto it = by_id.find(op.id);
        if (it == by_id.end()) return "";
        const engine::OperatorProfile& p = *it->second;
        if (p.fused) return "[fused]";
        std::ostringstream os;
        os << "[" << FmtProfileNs(p.wall_ns) << ", ";
        if (p.in_rows >= 0) os << p.in_rows << "->";
        os << p.out_rows << " rows, " << p.morsels << " morsels, "
           << p.out_bytes << " B]";
        return os.str();
      });
}

std::string QueryResult::ProfileJson() const {
  if (profile == nullptr) return "";
  return engine::ProfileToJson(*profile);
}

Result<frontend::ExprPtr> Pathfinder::Translate(
    const std::string& query, const QueryOptions& opts) const {
  PF_ASSIGN_OR_RETURN(frontend::Module mod, frontend::ParseQuery(query));
  frontend::NormalizeOptions nopts;
  nopts.context_doc = opts.context_doc;
  return frontend::Normalize(mod, nopts);
}

Result<algebra::OpPtr> Pathfinder::CompilePlan(
    const frontend::ExprPtr& core, const QueryOptions& opts,
    compiler::CompileStats* stats) const {
  compiler::CompileOptions copts;
  copts.join_recognition = opts.join_recognition;
  return compiler::Compile(core, db_, copts, stats);
}

Result<QueryResult> Pathfinder::Run(const std::string& query,
                                    const QueryOptions& opts) const {
  QueryResult res;
  PF_ASSIGN_OR_RETURN(res.core, Translate(query, opts));
  PF_ASSIGN_OR_RETURN(res.plan,
                      CompilePlan(res.core, opts, &res.compile_stats));
  if (opts.optimize) {
    PF_ASSIGN_OR_RETURN(res.plan_opt,
                        opt::Optimize(res.plan, &res.opt_stats));
  } else {
    res.plan_opt = res.plan;
  }
  bool pipeline =
      opts.pipeline < 0 ? engine::PipelineDefault() : opts.pipeline != 0;
  if (pipeline) {
    PF_RETURN_NOT_OK(
        opt::AnnotatePipelines(res.plan_opt, &res.pipeline_stats));
  }
  res.ctx = std::make_unique<engine::QueryContext>(db_);
  res.ctx->use_staircase = opts.use_staircase;
  res.ctx->pipeline = pipeline;
  res.ctx->profile =
      opts.profile < 0 ? engine::ProfileDefault() : opts.profile != 0;
  res.ctx->SetNumThreads(opts.num_threads);
  PF_ASSIGN_OR_RETURN(bat::Table t,
                      engine::Execute(res.plan_opt, res.ctx.get()));
  PF_ASSIGN_OR_RETURN(res.items, runtime::TableToSequence(t));
  res.scj_stats = res.ctx->scj_stats;
  res.pipe_stats = res.ctx->pipe_stats;
  res.profile = std::move(res.ctx->profile_result);
  return res;
}

}  // namespace pathfinder

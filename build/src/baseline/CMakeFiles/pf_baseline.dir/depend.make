# Empty dependencies file for pf_baseline.
# This may be replaced when dependencies are built.

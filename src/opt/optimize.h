#ifndef PATHFINDER_OPT_OPTIMIZE_H_
#define PATHFINDER_OPT_OPTIMIZE_H_

#include "algebra/op.h"
#include "base/result.h"

namespace pathfinder::opt {

struct OptimizeStats {
  size_t ops_before = 0;
  size_t ops_after = 0;
  int projections_fused = 0;
  int dead_columns_pruned = 0;
  int distincts_removed = 0;
  int unions_simplified = 0;
  int rounds = 0;
};

/// Peephole optimizer over the algebra DAG (paper Sec. 2: "This
/// complexity may significantly be reduced by peep-hole style
/// optimization [5]").
///
/// Rewrites, iterated to a fixpoint:
///  * π∘π fusion (the loop-lifting compiler emits long renaming chains),
///  * dead projection entries (columns no consumer reads are dropped),
///  * π over attach when the attached column is dead,
///  * δ elimination after a staircase join (its output is already
///    duplicate-free and document-ordered per iter — the operator's
///    postcondition, paper Sec. 2),
///  * ∪ with a statically empty side.
///
/// The result is a fresh DAG; the input plan is not modified. Every
/// rewrite preserves the plan's result (verified by the equivalence
/// test-suite in tests/opt/).
Result<algebra::OpPtr> Optimize(const algebra::OpPtr& root,
                                OptimizeStats* stats = nullptr);

}  // namespace pathfinder::opt

#endif  // PATHFINDER_OPT_OPTIMIZE_H_

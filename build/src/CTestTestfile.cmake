# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("bat")
subdirs("xml")
subdirs("accel")
subdirs("algebra")
subdirs("frontend")
subdirs("compiler")
subdirs("opt")
subdirs("engine")
subdirs("runtime")
subdirs("baseline")
subdirs("xmark")
subdirs("api")

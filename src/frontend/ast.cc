#include "frontend/ast.h"

#include <sstream>

namespace pathfinder::frontend {

const char* ExprKindName(ExprKind k) {
  switch (k) {
    case ExprKind::kIntLit:
      return "int";
    case ExprKind::kDblLit:
      return "double";
    case ExprKind::kStrLit:
      return "string";
    case ExprKind::kEmpty:
      return "empty";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kVar:
      return "var";
    case ExprKind::kContextItem:
      return "context-item";
    case ExprKind::kRootCtx:
      return "root";
    case ExprKind::kFlwor:
      return "flwor";
    case ExprKind::kIf:
      return "if";
    case ExprKind::kTypeswitch:
      return "typeswitch";
    case ExprKind::kBinOp:
      return "binop";
    case ExprKind::kUnaryMinus:
      return "neg";
    case ExprKind::kAxisStep:
      return "step";
    case ExprKind::kFunCall:
      return "call";
    case ExprKind::kElemConstr:
      return "element";
    case ExprKind::kAttrConstr:
      return "attribute";
    case ExprKind::kTextConstr:
      return "text";
    case ExprKind::kDdo:
      return "ddo";
    case ExprKind::kSome:
      return "some";
    case ExprKind::kEvery:
      return "every";
  }
  return "?";
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kOr:
      return "or";
    case BinOp::kAnd:
      return "and";
    case BinOp::kGenEq:
      return "=";
    case BinOp::kGenNe:
      return "!=";
    case BinOp::kGenLt:
      return "<";
    case BinOp::kGenLe:
      return "<=";
    case BinOp::kGenGt:
      return ">";
    case BinOp::kGenGe:
      return ">=";
    case BinOp::kValEq:
      return "eq";
    case BinOp::kValNe:
      return "ne";
    case BinOp::kValLt:
      return "lt";
    case BinOp::kValLe:
      return "le";
    case BinOp::kValGt:
      return "gt";
    case BinOp::kValGe:
      return "ge";
    case BinOp::kIs:
      return "is";
    case BinOp::kBefore:
      return "<<";
    case BinOp::kAfter:
      return ">>";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "div";
    case BinOp::kIdiv:
      return "idiv";
    case BinOp::kMod:
      return "mod";
    case BinOp::kUnion:
      return "|";
  }
  return "?";
}

std::string StepTest::ToString() const {
  switch (kind) {
    case Kind::kAnyKind:
      return "node()";
    case Kind::kElement:
      return "*";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return "processing-instruction()";
    case Kind::kName:
      return name;
  }
  return "?";
}

ExprPtr MakeExpr(ExprKind kind, std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->children = std::move(children);
  return e;
}

namespace {

void Print(const ExprPtr& e, int indent, std::ostringstream& os) {
  auto pad = [&](int n) {
    for (int i = 0; i < n; ++i) os << "  ";
  };
  pad(indent);
  if (!e) {
    os << "(null)\n";
    return;
  }
  os << ExprKindName(e->kind);
  switch (e->kind) {
    case ExprKind::kIntLit:
      os << " " << e->ival;
      break;
    case ExprKind::kDblLit:
      os << " " << e->dval;
      break;
    case ExprKind::kStrLit:
    case ExprKind::kVar:
    case ExprKind::kFunCall:
    case ExprKind::kAttrConstr:
      os << " " << e->sval;
      break;
    case ExprKind::kBinOp:
      os << " " << BinOpName(e->op);
      break;
    case ExprKind::kAxisStep:
      os << " " << accel::AxisName(e->axis) << "::" << e->test.ToString();
      break;
    case ExprKind::kSome:
    case ExprKind::kEvery:
      os << " $" << e->sval;
      break;
    default:
      break;
  }
  os << "\n";
  if (e->kind == ExprKind::kFlwor) {
    for (const auto& c : e->clauses) {
      pad(indent + 1);
      os << (c.is_let ? "let $" : "for $") << c.var;
      if (!c.pos_var.empty()) os << " at $" << c.pos_var;
      os << " :=\n";
      Print(c.expr, indent + 2, os);
    }
    if (e->where) {
      pad(indent + 1);
      os << "where\n";
      Print(e->where, indent + 2, os);
    }
    for (const auto& k : e->order_keys) {
      pad(indent + 1);
      os << "order by" << (k.ascending ? "" : " descending") << "\n";
      Print(k.key, indent + 2, os);
    }
    pad(indent + 1);
    os << "return\n";
    Print(e->children[0], indent + 2, os);
    return;
  }
  if (e->kind == ExprKind::kTypeswitch) {
    Print(e->children[0], indent + 1, os);
    for (const auto& c : e->cases) {
      pad(indent + 1);
      os << "case " << static_cast<int>(c.type);
      if (!c.var.empty()) os << " $" << c.var;
      os << "\n";
      Print(c.body, indent + 2, os);
    }
    return;
  }
  for (const auto& c : e->children) Print(c, indent + 1, os);
  for (const auto& p : e->preds) {
    pad(indent + 1);
    os << "predicate\n";
    Print(p, indent + 2, os);
  }
}

}  // namespace

std::string ExprToString(const ExprPtr& e, int indent) {
  std::ostringstream os;
  Print(e, indent, os);
  return os.str();
}

}  // namespace pathfinder::frontend

#ifndef PATHFINDER_BENCH_BENCH_UTIL_H_
#define PATHFINDER_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "xml/database.h"

namespace pathfinder::bench {

/// Scale factors swept by the XMark experiments. Overridable via the
/// PF_XMARK_SF_LIST environment variable (comma-separated), e.g.
///   PF_XMARK_SF_LIST=0.01,0.1,1.0 ./bench_table3
/// The defaults keep a full sweep under a couple of minutes; the shapes
/// (who wins, scaling exponents) are scale-invariant.
std::vector<double> ScaleFactors();

/// Wall-clock milliseconds of one invocation of `fn`.
double TimeMs(const std::function<void()>& fn);

/// Best of `reps` timed runs (paper-style hot timing).
double BestOfMs(int reps, const std::function<void()>& fn);

/// Generate (once per process) and register the XMark instance for `sf`
/// under the name "auction.xml" in a dedicated database. The database
/// stays alive for the process lifetime.
xml::Database* XMarkDb(double sf);

/// Serialized XML byte size of the sf instance (memoized).
size_t XMarkXmlBytes(double sf);

/// Format helpers for the report tables.
std::string FmtMs(double ms);
std::string FmtFactor(double f);

/// Minimal recursive-descent JSON well-formedness check (no DOM) — the
/// smoke gate every BENCH_*.json emitter runs on its own output.
bool ValidJsonDocument(const std::string& s);

}  // namespace pathfinder::bench

#endif  // PATHFINDER_BENCH_BENCH_UTIL_H_

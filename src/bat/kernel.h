#ifndef PATHFINDER_BAT_KERNEL_H_
#define PATHFINDER_BAT_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/thread_pool.h"
#include "bat/table.h"

namespace pathfinder::bat {

/// Row index into a Table (tables stay < 4G rows at our scales).
using RowIdx = uint32_t;
using IdxVec = std::vector<RowIdx>;

/// Comparison operators used by selections and theta joins.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Tuning for the partitioned parallel kernels. The process default is
/// read from the environment once (PF_RADIX_BITS, PF_MORSEL_ROWS,
/// PF_SORT_CHUNK_ROWS); QueryOptions can override per query. Every
/// setting is RESULT-NEUTRAL: the radix join emits the exact serial
/// pair order at any partition count, the merge sort reproduces
/// std::stable_sort at any run length, and GroupAgg's floating-point
/// association is pinned to a fixed internal grain — so the bytes
/// never depend on the tuning, only the speed does.
struct KernelTuning {
  /// log2 of the join/aggregation partition count (clamped to [1, 12];
  /// 2^bits private hash tables are built per join).
  int radix_bits = 6;
  /// Morsel grain (rows) for filters, joins and fused pipeline
  /// fragments (clamped to [64, 1<<20]).
  uint32_t morsel_rows = 4096;
  /// Initial sorted-run length and merge-split grain for SortPerm
  /// (clamped to [256, 1<<22]).
  uint32_t sort_chunk_rows = 8192;

  /// Clamped copy of *this (what the kernels actually use).
  KernelTuning Clamped() const;

  /// Env-derived process default (PF_RADIX_BITS, PF_MORSEL_ROWS,
  /// PF_SORT_CHUNK_ROWS), computed once.
  static const KernelTuning& Default();
};

/// Per-phase wall times of one partitioned-kernel invocation, filled
/// only when a caller passes a non-null pointer (the hot path performs
/// no timer calls otherwise). Which slots a kernel fills:
///   hash join:  partition_ns (radix scatter), build_ns (per-partition
///               tables), probe_ns (probe + pair emission)
///   sort:       partition_ns (parallel run sorts), merge_ns
///               (merge-path levels)
///   group agg:  partition_ns (morsel partials), merge_ns
///               (partitioned combine + ordered rebuild)
struct KernelPhases {
  int64_t partition_ns = 0;
  int64_t build_ns = 0;
  int64_t probe_ns = 0;
  int64_t merge_ns = 0;
};

// Every bulk operator takes an optional ThreadPool. nullptr (the
// default) runs the serial code path; a pool evaluates row morsels in
// parallel with deterministic, ordered merges — the result is
// byte-identical at every thread count (see DESIGN.md "Parallel
// execution" for the invariants each operator maintains).

/// Indices of rows whose BOOL predicate cell is true, in row order.
IdxVec FilterIndices(const Column& pred, ThreadPool* tp = nullptr,
                     const KernelTuning& kt = KernelTuning::Default());

/// Positional fetch: result[i] = c[idx[i]]  (MonetDB leftfetchjoin).
ColumnPtr Gather(const Column& c, const IdxVec& idx,
                 ThreadPool* tp = nullptr);

/// Gather every column of `t` — i.e., select the given rows.
Table GatherTable(const Table& t, const IdxVec& idx,
                  ThreadPool* tp = nullptr);

/// Fused σ+gather: the rows of `t` whose BOOL predicate cell is true,
/// in row order — equivalent to GatherTable(t, FilterIndices(pred)) but
/// scatters each column directly into its exact output slice, skipping
/// the intermediate index vector. Backbone of singleton-σ pipeline
/// fragments.
Table FilterGather(const Table& t, const Column& pred,
                   ThreadPool* tp = nullptr,
                   const KernelTuning& kt = KernelTuning::Default());

/// Matching join row pairs grouped by probe-side chunk, in chunk order:
/// concatenating (li[c], ri[c]) over all c yields exactly the pair list
/// HashJoinIndices / ThetaJoinIndices emit. Fused pipeline fragments
/// consume the chunks directly — one morsel per chunk — instead of
/// materializing a global pair vector and a joined table.
struct JoinPairChunks {
  std::vector<IdxVec> li, ri;
  size_t total = 0;  ///< sum of li[c].size() over all chunks
};

/// Chunked-pair form of HashJoinIndices (same key/canonicalization
/// semantics, same deterministic pair order).
Status HashJoinPairsChunked(const Column& l, const Column& r,
                            const StringPool& pool, JoinPairChunks* out,
                            ThreadPool* tp = nullptr,
                            const KernelTuning& kt = KernelTuning::Default(),
                            KernelPhases* phases = nullptr);

/// Chunked-pair form of ThetaJoinIndices.
Status ThetaJoinPairsChunked(const Column& l, const Column& r, CmpOp op,
                             const StringPool& pool, JoinPairChunks* out,
                             ThreadPool* tp = nullptr);

/// Fused probe+gather equi-join: the joined table (left columns first,
/// then right columns, names preserved) built straight from the pair
/// chunks — the global pair index vectors are never materialized.
Status HashJoinGather(const Table& l, const Table& r, const Column& lk,
                      const Column& rk, const StringPool& pool, Table* out,
                      ThreadPool* tp = nullptr,
                      const KernelTuning& kt = KernelTuning::Default());

/// Fused probe+gather theta join (see ThetaJoinIndices for semantics).
Status ThetaJoinGather(const Table& l, const Table& r, const Column& lk,
                       const Column& rk, CmpOp op, const StringPool& pool,
                       Table* out, ThreadPool* tp = nullptr);

/// Hash equi-join on one key column per side. Emits matching row pairs:
/// for each left row in order, all matching right rows in right order
/// (so the left order is the major result order, as the loop-lifting
/// compilation relies on). Key columns must have identical type, one of
/// INT, STR, ITEM.
/// `pool` is used to canonicalize ITEM keys (untyped atomics join under
/// their typed interpretation, integers under their double value).
/// Above the morsel threshold both sides go through the radix-
/// partitioned path (even serially): the build side is scattered into
/// 2^radix_bits partitions by key-hash radix, one private flat hash
/// table is built per partition (insertion-ordered chains, so every
/// key's row list is ascending), and probe-side morsels emit pairs
/// partition-locally; chunk-ordered concatenation reproduces the exact
/// serial left-major pair order.
Status HashJoinIndices(const Column& l, const Column& r,
                       const StringPool& pool, IdxVec* li, IdxVec* ri,
                       ThreadPool* tp = nullptr,
                       const KernelTuning& kt = KernelTuning::Default(),
                       KernelPhases* phases = nullptr);

/// Theta join on a comparison predicate with numeric promotion
/// (used for the paper's Q11/Q12-style `>` joins whose output is
/// inherently quadratic). Key columns INT, DBL or ITEM.
Status ThetaJoinIndices(const Column& l, const Column& r, CmpOp op,
                        const StringPool& pool, IdxVec* li, IdxVec* ri,
                        ThreadPool* tp = nullptr);

/// Stable sort permutation by key columns (lexicographic). `pool` is
/// needed to order STR/ITEM keys. `desc` (optional, parallel to `keys`)
/// flips the direction of individual keys. Parallel evaluation is a
/// full parallel merge sort: fixed-size runs are stable-sorted
/// concurrently, then every merge level splits each pairwise merge
/// into independent output segments via merge-path binary search —
/// the final level parallelizes too, leaving no serial merge phase.
/// Ties take the lower-run element, which reproduces the serial
/// stable sort permutation exactly.
Result<IdxVec> SortPerm(const Table& t, const std::vector<std::string>& keys,
                        const StringPool& pool,
                        const std::vector<uint8_t>& desc = {},
                        ThreadPool* tp = nullptr,
                        const KernelTuning& kt = KernelTuning::Default(),
                        KernelPhases* phases = nullptr);

/// First-occurrence row indices per distinct key tuple, in row order.
/// Empty `keys` means all columns. Parallel evaluation hash-partitions
/// the rows per morsel; each partition keeps its rows in ascending row
/// order, so first-occurrence winners match the serial scan exactly.
Result<IdxVec> DistinctIndices(const Table& t,
                               const std::vector<std::string>& keys,
                               ThreadPool* tp = nullptr);

/// Row numbering (the paper's % operator / MonetDB mark): a new INT
/// column counting 1,2,... per `part` partition in `order`-key order
/// (stable w.r.t. existing row order). Result is aligned with t's rows.
Result<ColumnPtr> Mark(const Table& t, const std::vector<std::string>& part,
                       const std::vector<std::string>& order,
                       const StringPool& pool,
                       const std::vector<uint8_t>& order_desc = {},
                       ThreadPool* tp = nullptr,
                       const KernelTuning& kt = KernelTuning::Default());

/// Rows of `a` whose key tuple does not appear in `b` (paper's \).
/// An empty `b` short-circuits to the identity index vector. Parallel
/// evaluation builds the probe sets hash-partitioned from b and probes
/// a's morsels independently; the kept-row order is a's row order.
Result<IdxVec> DifferenceIndices(const Table& a, const Table& b,
                                 const std::vector<std::string>& keys,
                                 ThreadPool* tp = nullptr);

/// Append b's rows under a's schema (paper's disjoint union; the caller
/// guarantees disjointness). b must contain every column of a, matched
/// by name.
Result<Table> UnionAll(const Table& a, const Table& b);

/// Grouped aggregate over an INT group column and an ITEM value column.
enum class AggKind { kCount, kSum, kAvg, kMax, kMin };

/// Returns a table (group INT, value ITEM) with one row per group present
/// in `t`, groups in first-appearance order. For kCount, `val_col` may be
/// empty. Numeric aggregation promotes via ItemToDouble; a sum over only
/// kInt items stays integer.
/// Above a fixed row threshold the aggregation runs morsel-wise
/// (thread-local partials over a FIXED internal grain, so
/// floating-point sums are associated identically at every thread
/// count and tuning) and the partials are combined in parallel: groups
/// are radix-partitioned across 2^radix_bits private combine maps,
/// each partition folds its groups' partials in chunk order, and the
/// global first-appearance group order is rebuilt from recorded
/// (chunk, position) keys — no shared map is ever built.
Result<Table> GroupAgg(const Table& t, const std::string& group_col,
                       const std::string& val_col, AggKind kind,
                       const StringPool& pool, const std::string& out_group,
                       const std::string& out_val,
                       ThreadPool* tp = nullptr,
                       const KernelTuning& kt = KernelTuning::Default(),
                       KernelPhases* phases = nullptr);

}  // namespace pathfinder::bat

#endif  // PATHFINDER_BAT_KERNEL_H_

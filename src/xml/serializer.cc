#include "xml/serializer.h"

namespace pathfinder::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void SerializeRange(const Document& doc, Pre begin, Pre end_inclusive,
                    const StringPool& pool, std::string* out) {
  // Iterative pre-order walk over the encoding: levels tell us when to
  // emit end tags. open[] holds pre ranks of currently open elements.
  std::vector<Pre> open;
  for (Pre v = begin; v <= end_inclusive; ++v) {
    // Close elements whose subtree ended before v.
    while (!open.empty() && open.back() + doc.size(open.back()) < v) {
      *out += "</";
      *out += pool.Get(doc.prop(open.back()));
      *out += ">";
      open.pop_back();
    }
    switch (doc.kind(v)) {
      case NodeKind::kDoc:
        break;  // transparent
      case NodeKind::kElem: {
        *out += "<";
        *out += pool.Get(doc.prop(v));
        // Attributes follow immediately at level(v)+1 with kind kAttr.
        Pre a = v + 1;
        while (a <= v + doc.size(v) && doc.kind(a) == NodeKind::kAttr &&
               doc.level(a) == doc.level(v) + 1) {
          *out += " ";
          *out += pool.Get(doc.prop(a));
          *out += "=\"";
          *out += EscapeAttr(pool.Get(doc.value(a)));
          *out += "\"";
          ++a;
        }
        // Self-close childless elements (attributes are not children).
        if (a > v + doc.size(v)) {
          *out += "/>";
          v = v + doc.size(v);  // skip the attribute rows
        } else {
          *out += ">";
          open.push_back(v);
        }
        break;
      }
      case NodeKind::kAttr:
        break;  // rendered with its owner element
      case NodeKind::kText:
        *out += EscapeText(pool.Get(doc.value(v)));
        break;
      case NodeKind::kComment:
        *out += "<!--";
        *out += pool.Get(doc.value(v));
        *out += "-->";
        break;
      case NodeKind::kPi:
        *out += "<?";
        *out += pool.Get(doc.prop(v));
        *out += " ";
        *out += pool.Get(doc.value(v));
        *out += "?>";
        break;
    }
  }
  while (!open.empty()) {
    *out += "</";
    *out += pool.Get(doc.prop(open.back()));
    *out += ">";
    open.pop_back();
  }
}

}  // namespace

std::string SerializeSubtree(const Document& doc, Pre v,
                             const StringPool& pool) {
  std::string out;
  if (doc.kind(v) == NodeKind::kAttr) {
    // Lone attributes serialize as name="value" (diagnostic form).
    out += pool.Get(doc.prop(v));
    out += "=\"";
    out += EscapeAttr(pool.Get(doc.value(v)));
    out += "\"";
    return out;
  }
  SerializeRange(doc, v, v + doc.size(v), pool, &out);
  return out;
}

std::string SerializeDocument(const Document& doc, const StringPool& pool) {
  return SerializeSubtree(doc, 0, pool);
}

}  // namespace pathfinder::xml

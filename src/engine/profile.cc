#include "engine/profile.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <unordered_set>

#include "algebra/print.h"

namespace pathfinder::engine {

namespace {

std::atomic<int64_t> g_timer_calls{0};

void JsonEscape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void Build(const algebra::OpPtr& op,
           const std::unordered_map<const algebra::Op*, OpProfileRec>& recs,
           const StringPool& pool,
           std::unordered_set<const algebra::Op*>* seen,
           OperatorProfile* out) {
  out->op_id = op->id;
  out->kind = op->kind;
  out->label = algebra::OpLabel(*op, pool);
  out->pipe_frag = op->pipe_frag;
  auto it = recs.find(op.get());
  if (it != recs.end()) {
    const OpProfileRec& r = it->second;
    out->fused = r.fused;
    out->cached = r.cached;
    out->wall_ns = r.wall_ns;
    out->out_rows = r.out_rows;
    out->out_bytes = r.out_bytes;
    out->morsels = r.morsels;
  }
  // Input rows = sum of child output rows; unknown (-1) as soon as one
  // child never materialized (fused interior of a fragment).
  out->in_rows = 0;
  for (const auto& c : op->children) {
    auto cit = recs.find(c.get());
    if (cit == recs.end() || cit->second.out_rows < 0) {
      out->in_rows = -1;
      break;
    }
    out->in_rows += cit->second.out_rows;
  }
  if (!seen->insert(op.get()).second) {
    out->shared_ref = true;
    return;  // shared subplan: children rendered at the first visit
  }
  if (out->cached) {
    // The subtree below a cache hit never ran; render the hit as a leaf.
    return;
  }
  out->children.resize(op->children.size());
  for (size_t i = 0; i < op->children.size(); ++i) {
    Build(op->children[i], recs, pool, seen, &out->children[i]);
  }
}

void ToJson(const OperatorProfile& p, std::string* out) {
  *out += "{\"op\": ";
  *out += std::to_string(p.op_id);
  *out += ", \"kind\": \"";
  *out += algebra::OpKindName(p.kind);
  *out += "\", \"label\": \"";
  JsonEscape(p.label, out);
  *out += "\", \"frag\": ";
  *out += std::to_string(p.pipe_frag);
  *out += ", \"fused\": ";
  *out += p.fused ? "true" : "false";
  *out += ", \"shared_ref\": ";
  *out += p.shared_ref ? "true" : "false";
  *out += ", \"cached\": ";
  *out += p.cached ? "true" : "false";
  *out += ", \"wall_ns\": ";
  *out += std::to_string(p.wall_ns);
  *out += ", \"in_rows\": ";
  *out += std::to_string(p.in_rows);
  *out += ", \"out_rows\": ";
  *out += std::to_string(p.out_rows);
  *out += ", \"out_bytes\": ";
  *out += std::to_string(p.out_bytes);
  *out += ", \"morsels\": ";
  *out += std::to_string(p.morsels);
  *out += ", \"children\": [";
  for (size_t i = 0; i < p.children.size(); ++i) {
    if (i) *out += ", ";
    ToJson(p.children[i], out);
  }
  *out += "]}";
}

}  // namespace

OperatorProfilePtr BuildProfileTree(
    const algebra::OpPtr& root,
    const std::unordered_map<const algebra::Op*, OpProfileRec>& recs,
    const StringPool& pool) {
  auto tree = std::make_unique<OperatorProfile>();
  std::unordered_set<const algebra::Op*> seen;
  Build(root, recs, pool, &seen, tree.get());
  return tree;
}

std::string ProfileToJson(const OperatorProfile& p) {
  std::string out;
  ToJson(p, &out);
  return out;
}

int64_t ProfileNowNs() {
  g_timer_calls.fetch_add(1, std::memory_order_relaxed);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ProfileTimerCalls() {
  return g_timer_calls.load(std::memory_order_relaxed);
}

bool ProfileDefault() {
  static const bool on = [] {
    const char* e = std::getenv("PF_PROFILE");
    return e != nullptr && std::string_view(e) != "0";
  }();
  return on;
}

}  // namespace pathfinder::engine

#include "engine/cache.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "algebra/hash.h"

namespace pathfinder::engine {

namespace alg = pathfinder::algebra;

namespace {

/// Does the sorted dependency list intersect the changed-name set?
bool DepsHit(const std::vector<std::string>& deps, bool unknown,
             const std::unordered_set<std::string>& changed) {
  if (unknown) return true;
  for (const auto& d : deps) {
    if (changed.count(d)) return true;
  }
  return false;
}

/// Lower cost density: does `a` buy less evaluation time per resident
/// byte than `b`? Cross-multiplied in 128 bits so densities compare
/// exactly (no float ties).
bool LowerDensity(int64_t a_cost, size_t a_bytes, int64_t b_cost,
                  size_t b_bytes) {
  return static_cast<unsigned __int128>(a_cost) * b_bytes <
         static_cast<unsigned __int128>(b_cost) * a_bytes;
}

/// Re-point every cached node item whose fragment id appears in `remap`
/// at the corresponding updated snapshot. Columns reachable from a
/// Table are immutable by convention (in-flight queries and other
/// cached tables may share them), so a touched column is replaced by a
/// fresh one; untouched columns stay shared.
void RemapTableFrags(bat::Table* t,
                     const std::unordered_map<uint32_t, uint32_t>& remap) {
  for (size_t i = 0; i < t->num_cols(); ++i) {
    const bat::ColumnPtr& c = t->col(i);
    if (c == nullptr || c->type() != bat::ColType::kItem) continue;
    const std::vector<Item>& in = c->items();
    bool touched = false;
    for (const Item& item : in) {
      if (item.IsNode() && remap.count(item.NodeFrag())) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    auto fresh = bat::Column::MakeItem(in.size());
    std::vector<Item>& out = fresh->items();
    for (const Item& item : in) {
      if (item.IsNode()) {
        auto rit = remap.find(item.NodeFrag());
        if (rit != remap.end()) {
          // Content-only updates keep pre ranks bit-identical, so only
          // the frag half of the payload moves; the item kind (element
          // vs attribute reference) is preserved.
          out.push_back(item.kind == ItemKind::kAttr
                            ? Item::Attr(rit->second, item.NodePre())
                            : Item::Node(rit->second, item.NodePre()));
          continue;
        }
      }
      out.push_back(item);
    }
    t->SetCol(i, std::move(fresh));
  }
}

}  // namespace

// --- QueryCache -----------------------------------------------------------

QueryCache::QueryCache(size_t budget_bytes)
    : budget_(budget_bytes), min_cost_ns_(CacheDefaultMinCostUs() * 1000) {}

void QueryCache::BeginQuery(
    uint64_t db_generation,
    const std::vector<xml::Database::DocVersion>& doc_versions, bool repair) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_seen_ && generation_ != db_generation) {
    stats_.invalidations++;
    InvalidateDocsLocked(doc_versions, repair);
  }
  if (!generation_seen_ || generation_ != db_generation) {
    doc_versions_.clear();
    for (const auto& d : doc_versions) {
      doc_versions_[d.name] = DocSync{d.structure, d.content, d.frag};
    }
  }
  generation_ = db_generation;
  generation_seen_ = true;
}

void QueryCache::InvalidateDocsLocked(
    const std::vector<xml::Database::DocVersion>& doc_versions, bool repair) {
  // structural = names whose pre numbering may have moved: new names,
  // structure-version moves, names that disappeared since the last
  // sync — plus every content move when repair is off. content = names
  // that took only a content move (leaf replace-value; pre ranks
  // bit-identical); their old frag -> new frag pairs form the node-item
  // repair map.
  std::unordered_set<std::string> structural;
  std::unordered_set<std::string> content;
  std::unordered_map<uint32_t, uint32_t> frag_remap;
  std::unordered_set<std::string_view> present;
  for (const auto& d : doc_versions) {
    present.insert(d.name);
    auto it = doc_versions_.find(d.name);
    if (it == doc_versions_.end() || it->second.structure != d.structure) {
      structural.insert(d.name);
    } else if (it->second.content != d.content) {
      if (repair) {
        content.insert(d.name);
        frag_remap[it->second.frag] = d.frag;
      } else {
        structural.insert(d.name);
      }
    }
  }
  for (const auto& [name, sync] : doc_versions_) {
    if (!present.count(name)) structural.insert(name);
  }
  if (structural.empty() && content.empty()) return;
  // Plan entries reference documents by *name*, never by fragment id,
  // and the optimizer decisions baked into them (key inference, join
  // order) derive from document structure — so they survive a pure
  // content move (even unknown-dependency ones: a stale join order is
  // a performance question, never a correctness one) and drop only on
  // structural change.
  if (!structural.empty()) {
    for (auto it = plan_lru_.begin(); it != plan_lru_.end();) {
      const PlanCacheEntry& e = **it;
      if (!DepsHit(e.doc_deps, e.doc_deps_unknown, structural)) {
        ++it;
        continue;
      }
      for (const auto& k : e.keys) plan_map_.erase(k);
      stats_.plan.bytes -= static_cast<int64_t>(e.bytes);
      stats_.plan.entries--;
      stats_.per_doc_invalidations++;
      it = plan_lru_.erase(it);
    }
  }
  for (auto it = sub_lru_.begin(); it != sub_lru_.end();) {
    bool drop = DepsHit(it->docs, it->docs_unknown, structural);
    bool content_hit = !drop && DepsHit(it->docs, it->docs_unknown, content);
    if (content_hit && it->value_free && !it->docs_unknown) {
      // Structure-only result over a content-moved document: repair in
      // place. The resident entry's items reference the frag recorded
      // at the last sync (the InsertSubplan generation guard refuses
      // anything staler), so the remap is exact. `bytes` stays as
      // charged — the fresh columns replace same-sized ones.
      RemapTableFrags(&it->table, frag_remap);
      stats_.subplan_repairs++;
      ++it;
      continue;
    }
    if (!drop && !content_hit) {
      ++it;
      continue;
    }
    auto next = std::next(it);
    EraseSubLocked(it);
    stats_.per_doc_invalidations++;
    it = next;
  }
}

PlanEntryPtr QueryCache::LookupPlan(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plan_map_.find(key);
  if (it == plan_map_.end()) {
    stats_.plan.misses++;
    return nullptr;
  }
  stats_.plan.hits++;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  return *it->second;
}

void QueryCache::AliasPlan(const std::string& key, const PlanEntryPtr& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_map_.count(key)) return;
  // Locate the resident list node via one of the entry's known keys; if
  // the entry was evicted between lookup and alias, do nothing.
  for (const auto& k : entry->keys) {
    auto it = plan_map_.find(k);
    if (it == plan_map_.end() || *it->second != entry) continue;
    plan_map_.emplace(key, it->second);
    // The alias key is part of the entry's footprint: recorded on the
    // entry too, so eviction releases exactly what residency charged.
    auto* e = const_cast<PlanCacheEntry*>(entry.get());
    e->keys.push_back(key);
    e->bytes += key.size();
    stats_.plan.bytes += static_cast<int64_t>(key.size());
    return;
  }
}

PlanEntryPtr QueryCache::InsertPlan(const std::string& raw_key,
                                    const std::string& core_key,
                                    PlanCacheEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Insert-if-absent: a concurrent query may have published the same
  // plan first; the resident entry wins (all executors then share one
  // annotated DAG).
  if (auto it = plan_map_.find(raw_key); it != plan_map_.end()) {
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return *it->second;
  }
  if (auto it = plan_map_.find(core_key); it != plan_map_.end()) {
    PlanEntryPtr resident = *it->second;
    plan_map_.emplace(raw_key, it->second);
    auto* e = const_cast<PlanCacheEntry*>(resident.get());
    e->keys.push_back(raw_key);
    e->bytes += raw_key.size();
    stats_.plan.bytes += static_cast<int64_t>(raw_key.size());
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return resident;
  }
  entry.keys = {raw_key};
  if (core_key != raw_key) entry.keys.push_back(core_key);
  entry.bytes += raw_key.size() + core_key.size();
  auto shared = std::make_shared<const PlanCacheEntry>(std::move(entry));
  if (shared->bytes > PlanBudgetLocked()) return shared;  // never fits
  EvictPlanLocked(shared->bytes);
  plan_lru_.push_front(shared);
  for (const auto& k : shared->keys) plan_map_.emplace(k, plan_lru_.begin());
  stats_.plan.bytes += static_cast<int64_t>(shared->bytes);
  stats_.plan.entries++;
  return shared;
}

void QueryCache::EvictPlanLocked(size_t needed) {
  while (!plan_lru_.empty() &&
         static_cast<size_t>(stats_.plan.bytes) + needed >
             PlanBudgetLocked()) {
    const PlanEntryPtr& victim = plan_lru_.back();
    for (const auto& k : victim->keys) plan_map_.erase(k);
    stats_.plan.bytes -= static_cast<int64_t>(victim->bytes);
    stats_.plan.entries--;
    plan_lru_.pop_back();
    stats_.plan.evictions++;
  }
}

bool QueryCache::LookupSubplan(const algebra::Op& op, bat::Table* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_map_.find(op.cache_hash);
  if (it != sub_map_.end()) {
    for (SubLru::iterator e : it->second) {
      // Hash match is a candidate only: confirm with the deep
      // structural check before serving (collisions must never swap
      // one query's subtree for another's).
      if (alg::StructurallyEqual(*e->subtree, op)) {
        sub_lru_.splice(sub_lru_.begin(), sub_lru_, e);
        *out = e->table;  // shallow: columns shared, immutable
        stats_.subplan.hits++;
        return true;
      }
    }
  }
  stats_.subplan.misses++;
  return false;
}

bool QueryCache::InsertSubplan(const algebra::OpPtr& subtree,
                               const bat::Table& t, int64_t cost_ns,
                               uint64_t db_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  // A query that synced before a registration may finish (and publish)
  // after the invalidation sweep: its result would reintroduce stale
  // bytes the sweep just removed, so it is dropped.
  if (generation_seen_ && db_generation != generation_) return true;
  uint64_t hash = subtree->cache_hash;
  auto it = sub_map_.find(hash);
  if (it != sub_map_.end()) {
    for (SubLru::iterator e : it->second) {
      if (alg::StructurallyEqual(*e->subtree, *subtree)) return true;  // raced
    }
  }
  // Cost-based admission: a candidate that evaluated faster than the
  // floor is cheaper to recompute than to let it displace real work.
  if (min_cost_ns_ > 0 && cost_ns < min_cost_ns_) {
    stats_.admission_rejects++;
    return false;
  }
  SubEntry entry;
  entry.hash = hash;
  entry.subtree = subtree;
  entry.table = t;
  entry.bytes = t.AllocBytes() + alg::ApproxPlanBytes(subtree);
  entry.cost_ns = cost_ns;
  entry.docs = subtree->cache_docs;
  entry.docs_unknown = subtree->cache_docs_unknown;
  entry.value_free = subtree->cache_value_free;
  if (entry.bytes > SubBudgetLocked()) return true;  // would never fit
  EvictSubLocked(entry.bytes);
  stats_.subplan.bytes += static_cast<int64_t>(entry.bytes);
  stats_.subplan.entries++;
  sub_lru_.push_front(std::move(entry));
  sub_map_[hash].push_back(sub_lru_.begin());
  return true;
}

void QueryCache::EraseSubLocked(SubLru::iterator it) {
  auto& bucket = sub_map_[it->hash];
  for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
    if (*bit == it) {
      bucket.erase(bit);
      break;
    }
  }
  if (bucket.empty()) sub_map_.erase(it->hash);
  stats_.subplan.bytes -= static_cast<int64_t>(it->bytes);
  stats_.subplan.entries--;
  sub_lru_.erase(it);
}

void QueryCache::EvictSubLocked(size_t needed) {
  while (!sub_lru_.empty() &&
         static_cast<size_t>(stats_.subplan.bytes) + needed >
             SubBudgetLocked()) {
    // Victim: lowest cost density (evaluation ns per resident byte);
    // equal densities fall back to least recently used. Scanning back
    // to front and replacing only on a strictly lower density yields
    // exactly that entry.
    auto victim = std::prev(sub_lru_.end());
    for (auto it = std::prev(sub_lru_.end()); it != sub_lru_.begin();) {
      --it;
      if (LowerDensity(it->cost_ns, it->bytes, victim->cost_ns,
                       victim->bytes)) {
        victim = it;
      }
    }
    EraseSubLocked(victim);
    stats_.subplan.evictions++;
  }
}

CacheStats QueryCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.budget_bytes = static_cast<int64_t>(budget_);
  s.min_cost_us = min_cost_ns_ / 1000;
  s.subplan_entries.reserve(sub_lru_.size());
  for (const SubEntry& e : sub_lru_) {
    s.subplan_entries.push_back(SubplanEntryCost{
        e.hash, static_cast<int64_t>(e.bytes), e.cost_ns / 1000});
  }
  return s;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void QueryCache::ClearLocked() {
  // Resident state goes; cumulative hit/miss/eviction counters stay.
  plan_map_.clear();
  plan_lru_.clear();
  sub_map_.clear();
  sub_lru_.clear();
  stats_.plan.entries = 0;
  stats_.plan.bytes = 0;
  stats_.subplan.entries = 0;
  stats_.subplan.bytes = 0;
}

void QueryCache::SetBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  EvictPlanLocked(0);
  EvictSubLocked(0);
}

size_t QueryCache::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void QueryCache::SetMinCostUs(int64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  min_cost_ns_ = us * 1000;
}

int64_t QueryCache::min_cost_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_cost_ns_ / 1000;
}

std::vector<std::string> QueryCache::ResidentPlanKeysForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(plan_map_.size());
  for (const auto& [k, it] : plan_map_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- candidate annotation -------------------------------------------------

namespace {

/// Operators whose results depend on per-query state: node construction
/// allocates fragment ids from the query's FragmentStore, so identical
/// subtrees yield different (correct) items on every run.
bool IsImpure(alg::OpKind k) {
  return k == alg::OpKind::kElemConstr || k == alg::OpKind::kTextConstr ||
         k == alg::OpKind::kAttrConstr;
}

/// Operators that can synthesize or transform string values. If one of
/// these feeds a DocRoot's name input, the document name may be a
/// string no constant scan can predict, so the dependency set is
/// unresolvable (the subtree then depends on every document).
bool ComputesStrings(alg::OpKind k) {
  return k == alg::OpKind::kFun1 || k == alg::OpKind::kFun2 ||
         k == alg::OpKind::kStrJoin || k == alg::OpKind::kAggr;
}

/// Operators that can read a node's *value* (atomization, string
/// synthesis, value comparison, serialization). A subtree free of
/// these computes a function of document structure alone — pre ranks,
/// sizes, levels, kinds, tag properties — all of which a content-only
/// update provably keeps bit-identical, so its cached result can be
/// repaired (frag re-pointing) instead of evicted. Structural joins,
/// selections over precomputed booleans, sorts, row numbering, and
/// projections only route items; they never look inside the value
/// column. kThetaJoin is included because its predicate compares cell
/// values generically; kFun1 conservatively covers name/string/number
/// accessors alike.
bool ReadsNodeValues(alg::OpKind k) {
  return k == alg::OpKind::kFun1 || k == alg::OpKind::kFun2 ||
         k == alg::OpKind::kAggr || k == alg::OpKind::kStrJoin ||
         k == alg::OpKind::kThetaJoin || k == alg::OpKind::kSerialize;
}

struct DepSet {
  std::vector<std::string> names;  // sorted, unique
  bool unknown = false;
};

void AddName(DepSet* d, std::string name) {
  auto it = std::lower_bound(d->names.begin(), d->names.end(), name);
  if (it != d->names.end() && *it == name) return;
  d->names.insert(it, std::move(name));
}

void MergeDeps(DepSet* into, const DepSet& from) {
  into->unknown = into->unknown || from.unknown;
  for (const auto& n : from.names) AddName(into, n);
}

/// The fn:doc names a DocRoot may resolve: every string constant in its
/// name-input subtree (Attach values and LitTable cells). Those are the
/// only string sources among the remaining operators — π/σ/joins/etc.
/// route items but never mint them — so the collection is exhaustive
/// unless a string-computing operator appears (or no constant exists at
/// all), which degrades to `unknown`.
DepSet DocRootNames(const alg::Op& docroot, const StringPool& pool) {
  DepSet d;
  std::vector<const alg::Op*> stack = {docroot.children[0].get()};
  std::unordered_set<const alg::Op*> seen;
  auto add_item = [&](const Item& it) {
    if (it.IsStringLike()) AddName(&d, std::string(pool.Get(it.AsStr())));
  };
  while (!stack.empty()) {
    const alg::Op* op = stack.back();
    stack.pop_back();
    if (!seen.insert(op).second) continue;
    if (ComputesStrings(op->kind)) d.unknown = true;
    if (op->kind == alg::OpKind::kAttach) add_item(op->attach_val);
    for (const auto& row : op->rows) {
      for (const Item& cell : row) add_item(cell);
    }
    for (const auto& c : op->children) stack.push_back(c.get());
  }
  if (d.names.empty()) d.unknown = true;
  return d;
}

}  // namespace

void AnnotateCacheCandidates(const algebra::OpPtr& root,
                             const StringPool& pool) {
  std::vector<alg::Op*> order = alg::TopoOrder(root);
  std::unordered_map<const alg::Op*, bool> pure, has_doc, value_free;
  std::unordered_map<const alg::Op*, DepSet> deps;
  for (alg::Op* op : order) {
    bool p = !IsImpure(op->kind);
    bool d = op->kind == alg::OpKind::kStep ||
             op->kind == alg::OpKind::kDocRoot ||
             op->kind == alg::OpKind::kPathScan;
    bool vf = !ReadsNodeValues(op->kind);
    DepSet ds;
    for (const auto& c : op->children) {
      p = p && pure.at(c.get());
      d = d || has_doc.at(c.get());
      vf = vf && value_free.at(c.get());
      MergeDeps(&ds, deps.at(c.get()));
    }
    if (op->kind == alg::OpKind::kDocRoot) {
      MergeDeps(&ds, DocRootNames(*op, pool));
    }
    pure[op] = p;
    has_doc[op] = d;
    value_free[op] = vf;
    deps[op] = std::move(ds);
    op->cache_cand = false;
    op->cache_hash = 0;
    op->cache_docs.clear();
    op->cache_docs_unknown = false;
    op->cache_value_free = false;
  }
  // Candidates: maximal pure document-derived subtrees (pure child of
  // an impure parent, or a pure root), plus every pure Step — axis
  // steps are the expensive, highly reusable unit, worth a cache entry
  // even in the middle of a larger pure region.
  auto mark = [&](alg::Op* op) {
    op->cache_cand = pure.at(op) && has_doc.at(op);
  };
  for (alg::Op* op : order) {
    if (op->kind == alg::OpKind::kStep ||
        op->kind == alg::OpKind::kPathScan) {
      mark(op);
    }
    if (!pure.at(op)) {
      for (const auto& c : op->children) mark(c.get());
    }
  }
  mark(root.get());
  std::unordered_map<const alg::Op*, uint64_t> hashes;
  alg::StructuralHashes(root, &hashes);
  for (alg::Op* op : order) {
    if (op->cache_cand) op->cache_hash = hashes.at(op);
    // Dependency annotations go on candidates (the subplan cache reads
    // them at insert) and on the root (the plan cache's entry-level
    // dependency set).
    if (op->cache_cand || op == root.get()) {
      const DepSet& ds = deps.at(op);
      op->cache_docs = ds.names;
      op->cache_docs_unknown = ds.unknown;
      op->cache_value_free = value_free.at(op);
    }
  }
}

size_t CacheDefaultBudgetBytes() {
  static const size_t kBytes = [] {
    const char* e = std::getenv("PF_CACHE_MB");
    if (e == nullptr || *e == '\0') return size_t{64} << 20;
    long mb = std::strtol(e, nullptr, 10);
    if (mb <= 0) return size_t{0};
    return static_cast<size_t>(mb) << 20;
  }();
  return kBytes;
}

int64_t CacheDefaultMinCostUs() {
  static const int64_t kUs = [] {
    const char* e = std::getenv("PF_CACHE_MIN_COST_US");
    if (e == nullptr || *e == '\0') return int64_t{100};
    long us = std::strtol(e, nullptr, 10);
    if (us <= 0) return int64_t{0};
    return static_cast<int64_t>(us);
  }();
  return kUs;
}

bool CacheRepairDefault() {
  static const bool kOn = [] {
    const char* e = std::getenv("PF_CACHE_REPAIR");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return kOn;
}

}  // namespace pathfinder::engine

# Empty compiler generated dependencies file for pf_xml.
# This may be replaced when dependencies are built.

#include "algebra/op.h"

#include <atomic>
#include <unordered_set>

namespace pathfinder::algebra {

namespace {

std::atomic<int> g_next_id{1};

OpPtr NewOp(OpKind kind, std::vector<OpPtr> children) {
  auto op = std::make_shared<Op>();
  op->kind = kind;
  op->children = std::move(children);
  op->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  return op;
}

}  // namespace

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kLitTable:
      return "table";
    case OpKind::kProject:
      return "project";
    case OpKind::kAttach:
      return "attach";
    case OpKind::kSelect:
      return "select";
    case OpKind::kDisjointUnion:
      return "union";
    case OpKind::kDifference:
      return "difference";
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kEquiJoin:
      return "eqjoin";
    case OpKind::kThetaJoin:
      return "thetajoin";
    case OpKind::kCross:
      return "cross";
    case OpKind::kRowNum:
      return "rownum";
    case OpKind::kStep:
      return "scjoin";
    case OpKind::kDocRoot:
      return "doc";
    case OpKind::kElemConstr:
      return "element";
    case OpKind::kTextConstr:
      return "text";
    case OpKind::kFun1:
      return "fun1";
    case OpKind::kFun2:
      return "fun2";
    case OpKind::kAggr:
      return "aggr";
    case OpKind::kStrJoin:
      return "string-join";
    case OpKind::kAttrConstr:
      return "attribute";
    case OpKind::kSort:
      return "sort";
    case OpKind::kRank:
      return "rank";
    case OpKind::kPathScan:
      return "pathscan";
    case OpKind::kSerialize:
      return "serialize";
  }
  return "?";
}

bool IsPipelineMapOp(OpKind k) {
  switch (k) {
    case OpKind::kProject:
    case OpKind::kAttach:
    case OpKind::kSelect:
    case OpKind::kFun1:
    case OpKind::kFun2:
      return true;
    default:
      return false;
  }
}

bool IsPipelineJoinOp(OpKind k) {
  return k == OpKind::kEquiJoin || k == OpKind::kThetaJoin;
}

const char* Fun1Name(Fun1 f) {
  switch (f) {
    case Fun1::kNot:
      return "not";
    case Fun1::kBoolToItem:
      return "bool2item";
    case Fun1::kItemToBool:
      return "item2bool";
    case Fun1::kData:
      return "data";
    case Fun1::kStringFn:
      return "string";
    case Fun1::kNumberFn:
      return "number";
    case Fun1::kNeg:
      return "neg";
    case Fun1::kNameFn:
      return "name";
    case Fun1::kStrLen:
      return "string-length";
    case Fun1::kIntToItem:
      return "int2item";
    case Fun1::kRootNode:
      return "root";
    case Fun1::kIsElement:
      return "is-element";
    case Fun1::kIsAttribute:
      return "is-attribute";
    case Fun1::kIsText:
      return "is-text";
    case Fun1::kIsNode:
      return "is-node";
    case Fun1::kIsInt:
      return "is-int";
    case Fun1::kIsDouble:
      return "is-double";
    case Fun1::kIsString:
      return "is-string";
    case Fun1::kIsBool:
      return "is-bool";
  }
  return "?";
}

const char* Fun2Name(Fun2 f) {
  switch (f) {
    case Fun2::kAdd:
      return "+";
    case Fun2::kSub:
      return "-";
    case Fun2::kMul:
      return "*";
    case Fun2::kDiv:
      return "div";
    case Fun2::kIdiv:
      return "idiv";
    case Fun2::kMod:
      return "mod";
    case Fun2::kCmpEq:
      return "eq";
    case Fun2::kCmpNe:
      return "ne";
    case Fun2::kCmpLt:
      return "lt";
    case Fun2::kCmpLe:
      return "le";
    case Fun2::kCmpGt:
      return "gt";
    case Fun2::kCmpGe:
      return "ge";
    case Fun2::kIs:
      return "is";
    case Fun2::kBefore:
      return "<<";
    case Fun2::kAfter:
      return ">>";
    case Fun2::kContains:
      return "contains";
    case Fun2::kStartsWith:
      return "starts-with";
    case Fun2::kConcat:
      return "concat";
    case Fun2::kSubstrFrom:
      return "substring-from";
    case Fun2::kSubstrLen:
      return "substring-len";
    case Fun2::kAnd:
      return "and";
    case Fun2::kOr:
      return "or";
  }
  return "?";
}

size_t CountOps(const OpPtr& root) { return TopoOrder(root).size(); }

std::vector<Op*> TopoOrder(const OpPtr& root) {
  std::vector<Op*> order;
  std::unordered_set<const Op*> seen;
  // Iterative post-order to survive deep (unoptimized) plans.
  struct Frame {
    Op* op;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (root) stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (seen.count(f.op)) {
      stack.pop_back();
      continue;
    }
    if (f.next_child < f.op->children.size()) {
      Op* child = f.op->children[f.next_child++].get();
      if (!seen.count(child)) stack.push_back({child, 0});
      continue;
    }
    seen.insert(f.op);
    order.push_back(f.op);
    stack.pop_back();
  }
  return order;
}

OpPtr LitTable(std::vector<std::string> names,
               std::vector<bat::ColType> types,
               std::vector<std::vector<Item>> rows) {
  auto op = NewOp(OpKind::kLitTable, {});
  op->names = std::move(names);
  op->types = std::move(types);
  op->rows = std::move(rows);
  return op;
}

OpPtr EmptySeq() {
  return LitTable({"iter", "pos", "item"},
                  {bat::ColType::kInt, bat::ColType::kInt,
                   bat::ColType::kItem},
                  {});
}

OpPtr Project(OpPtr child,
              std::vector<std::pair<std::string, std::string>> proj) {
  auto op = NewOp(OpKind::kProject, {std::move(child)});
  op->proj = std::move(proj);
  return op;
}

OpPtr Attach(OpPtr child, std::string name, bat::ColType type, Item value) {
  auto op = NewOp(OpKind::kAttach, {std::move(child)});
  op->out = std::move(name);
  op->types = {type};
  op->attach_val = value;
  return op;
}

OpPtr Select(OpPtr child, std::string bool_col) {
  auto op = NewOp(OpKind::kSelect, {std::move(child)});
  op->col = std::move(bool_col);
  return op;
}

OpPtr DisjointUnion(OpPtr a, OpPtr b) {
  return NewOp(OpKind::kDisjointUnion, {std::move(a), std::move(b)});
}

OpPtr Difference(OpPtr a, OpPtr b, std::vector<std::string> keys) {
  auto op = NewOp(OpKind::kDifference, {std::move(a), std::move(b)});
  op->keys = std::move(keys);
  return op;
}

OpPtr Distinct(OpPtr child, std::vector<std::string> keys) {
  auto op = NewOp(OpKind::kDistinct, {std::move(child)});
  op->keys = std::move(keys);
  return op;
}

OpPtr EquiJoin(OpPtr a, OpPtr b, std::string acol, std::string bcol) {
  auto op = NewOp(OpKind::kEquiJoin, {std::move(a), std::move(b)});
  op->col = std::move(acol);
  op->col2 = std::move(bcol);
  return op;
}

OpPtr ThetaJoin(OpPtr a, OpPtr b, std::string acol, std::string bcol,
                bat::CmpOp cmp) {
  auto op = NewOp(OpKind::kThetaJoin, {std::move(a), std::move(b)});
  op->col = std::move(acol);
  op->col2 = std::move(bcol);
  op->cmp = cmp;
  return op;
}

OpPtr Cross(OpPtr a, OpPtr b) {
  return NewOp(OpKind::kCross, {std::move(a), std::move(b)});
}

OpPtr RowNum(OpPtr child, std::string out, std::vector<std::string> part,
             std::vector<std::string> order,
             std::vector<uint8_t> order_desc) {
  auto op = NewOp(OpKind::kRowNum, {std::move(child)});
  op->out = std::move(out);
  op->part = std::move(part);
  op->order = std::move(order);
  op->order_desc = std::move(order_desc);
  return op;
}

OpPtr Step(OpPtr child, accel::Axis axis, accel::NodeTest test) {
  auto op = NewOp(OpKind::kStep, {std::move(child)});
  op->axis = axis;
  op->test = test;
  return op;
}

OpPtr DocRoot(OpPtr child) { return NewOp(OpKind::kDocRoot, {std::move(child)}); }

OpPtr PathScan(OpPtr child, std::vector<PathStep> path) {
  auto op = NewOp(OpKind::kPathScan, {std::move(child)});
  op->path = std::move(path);
  return op;
}

OpPtr ElemConstr(OpPtr name, OpPtr content) {
  return NewOp(OpKind::kElemConstr, {std::move(name), std::move(content)});
}

OpPtr TextConstr(OpPtr child) {
  return NewOp(OpKind::kTextConstr, {std::move(child)});
}

OpPtr AttrConstr(OpPtr content, std::string name) {
  auto op = NewOp(OpKind::kAttrConstr, {std::move(content)});
  op->out = std::move(name);
  return op;
}

OpPtr StrJoin(OpPtr content, OpPtr sep) {
  return NewOp(OpKind::kStrJoin, {std::move(content), std::move(sep)});
}

OpPtr Sort(OpPtr child, std::vector<std::string> order,
           std::vector<uint8_t> order_desc) {
  auto op = NewOp(OpKind::kSort, {std::move(child)});
  op->order = std::move(order);
  op->order_desc = std::move(order_desc);
  return op;
}

OpPtr Rank(OpPtr child, std::string out) {
  auto op = NewOp(OpKind::kRank, {std::move(child)});
  op->out = std::move(out);
  return op;
}

OpPtr MapFun1(OpPtr child, Fun1 f, std::string in, std::string out) {
  auto op = NewOp(OpKind::kFun1, {std::move(child)});
  op->fun1 = f;
  op->col = std::move(in);
  op->out = std::move(out);
  return op;
}

OpPtr MapFun2(OpPtr child, Fun2 f, std::string in1, std::string in2,
              std::string out) {
  auto op = NewOp(OpKind::kFun2, {std::move(child)});
  op->fun2 = f;
  op->col = std::move(in1);
  op->col2 = std::move(in2);
  op->out = std::move(out);
  return op;
}

OpPtr Aggr(OpPtr child, bat::AggKind agg, std::string part_col,
           std::string val_col, std::string out) {
  auto op = NewOp(OpKind::kAggr, {std::move(child)});
  op->agg = agg;
  op->col = std::move(part_col);
  op->col2 = std::move(val_col);
  op->out = std::move(out);
  return op;
}

OpPtr Serialize(OpPtr child) {
  return NewOp(OpKind::kSerialize, {std::move(child)});
}

}  // namespace pathfinder::algebra

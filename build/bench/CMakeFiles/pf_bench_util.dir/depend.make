# Empty dependencies file for pf_bench_util.
# This may be replaced when dependencies are built.

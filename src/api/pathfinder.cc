#include "api/pathfinder.h"

#include "engine/executor.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"
#include "runtime/serialize.h"

namespace pathfinder {

Result<std::string> QueryResult::Serialize() const {
  return runtime::SerializeSequence(*ctx, items);
}

Result<frontend::ExprPtr> Pathfinder::Translate(
    const std::string& query, const QueryOptions& opts) const {
  PF_ASSIGN_OR_RETURN(frontend::Module mod, frontend::ParseQuery(query));
  frontend::NormalizeOptions nopts;
  nopts.context_doc = opts.context_doc;
  return frontend::Normalize(mod, nopts);
}

Result<algebra::OpPtr> Pathfinder::CompilePlan(
    const frontend::ExprPtr& core, const QueryOptions& opts,
    compiler::CompileStats* stats) const {
  compiler::CompileOptions copts;
  copts.join_recognition = opts.join_recognition;
  return compiler::Compile(core, db_, copts, stats);
}

Result<QueryResult> Pathfinder::Run(const std::string& query,
                                    const QueryOptions& opts) const {
  QueryResult res;
  PF_ASSIGN_OR_RETURN(res.core, Translate(query, opts));
  PF_ASSIGN_OR_RETURN(res.plan,
                      CompilePlan(res.core, opts, &res.compile_stats));
  if (opts.optimize) {
    PF_ASSIGN_OR_RETURN(res.plan_opt,
                        opt::Optimize(res.plan, &res.opt_stats));
  } else {
    res.plan_opt = res.plan;
  }
  bool pipeline =
      opts.pipeline < 0 ? engine::PipelineDefault() : opts.pipeline != 0;
  if (pipeline) {
    PF_RETURN_NOT_OK(
        opt::AnnotatePipelines(res.plan_opt, &res.pipeline_stats));
  }
  res.ctx = std::make_unique<engine::QueryContext>(db_);
  res.ctx->use_staircase = opts.use_staircase;
  res.ctx->pipeline = pipeline;
  res.ctx->SetNumThreads(opts.num_threads);
  PF_ASSIGN_OR_RETURN(bat::Table t,
                      engine::Execute(res.plan_opt, res.ctx.get()));
  PF_ASSIGN_OR_RETURN(res.items, runtime::TableToSequence(t));
  res.scj_stats = res.ctx->scj_stats;
  res.pipe_stats = res.ctx->pipe_stats;
  return res;
}

}  // namespace pathfinder

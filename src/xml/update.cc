#include "xml/update.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/parser.h"
#include "xml/path_summary.h"
#include "xml/stats.h"

namespace pathfinder::xml {

namespace {

std::atomic<int> g_updates_override{-1};

/// Find the child path of `parent` with the given label; -1 if absent.
int32_t FindChildPath(const std::vector<PathNode>& nodes, int32_t parent,
                      StrId tag, bool is_attr) {
  for (int32_t c : nodes[static_cast<size_t>(parent)].children) {
    const PathNode& cn = nodes[static_cast<size_t>(c)];
    if (cn.tag == tag && cn.is_attr == is_attr) return c;
  }
  return -1;
}

int32_t FindOrAddChildPath(std::vector<PathNode>* nodes, int32_t parent,
                           StrId tag, bool is_attr) {
  int32_t found = FindChildPath(*nodes, parent, tag, is_attr);
  if (found >= 0) return found;
  int32_t id = static_cast<int32_t>(nodes->size());
  PathNode n;
  n.tag = tag;
  n.parent = parent;
  n.level = static_cast<uint16_t>(
      (*nodes)[static_cast<size_t>(parent)].level + 1);
  n.is_attr = is_attr;
  nodes->push_back(std::move(n));
  (*nodes)[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

}  // namespace

bool UpdatesEnabled() {
  int o = g_updates_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool kOn = [] {
    const char* e = std::getenv("PF_UPDATES");
    return e == nullptr || *e == '\0' || std::string_view(e) != "0";
  }();
  return kOn;
}

void SetUpdatesEnabledForTest(int enabled) {
  g_updates_override.store(enabled, std::memory_order_relaxed);
}

/// All splice internals; friend of Document and PathSummary.
class DocumentSplicer {
 public:
  static Result<SplicedDoc> Apply(const Document& base, StringPool* pool,
                                  const NodeUpdate& u);

 private:
  /// The patch: rows [at, at + removed) of the base are replaced by the
  /// `ins_*` rows (levels already absolute), all under node `parent`
  /// (the deepest surviving ancestor of the spliced range, whose size —
  /// and its ancestors' sizes — absorb the row-count delta).
  struct Splice {
    Pre at = 0;
    Pre removed = 0;
    Pre parent = 0;
    std::vector<uint32_t> ins_size;
    std::vector<uint16_t> ins_level;
    std::vector<uint8_t> ins_kind;
    std::vector<StrId> ins_prop;
    std::vector<StrId> ins_value;
  };

  static Document BuildSpliced(const Document& base, const Splice& sp);
  static void RepairStats(const Document& base, const Document& fresh,
                          const Splice& sp, DocStats* s);
  static PathSummary RepairSummary(const PathSummary& old,
                                   const Document& base,
                                   const Document& fresh, const Splice& sp);
  static int32_t PathOf(const std::vector<PathNode>& nodes,
                        const Document& base, Pre v);
};

Document DocumentSplicer::BuildSpliced(const Document& base,
                                       const Splice& sp) {
  const Pre n = base.num_nodes();
  const Pre k = static_cast<Pre>(sp.ins_size.size());
  const int64_t delta =
      static_cast<int64_t>(k) - static_cast<int64_t>(sp.removed);
  Document d;
  auto splice = [&](auto& dst, const auto& src, const auto& ins) {
    dst.reserve(static_cast<size_t>(n) - sp.removed + k);
    dst.insert(dst.end(), src.begin(), src.begin() + sp.at);
    dst.insert(dst.end(), ins.begin(), ins.end());
    dst.insert(dst.end(), src.begin() + sp.at + sp.removed, src.end());
  };
  splice(d.size_, base.sizes(), sp.ins_size);
  splice(d.level_, base.levels(), sp.ins_level);
  splice(d.kind_, base.kinds(), sp.ins_kind);
  splice(d.prop_, base.props(), sp.ins_prop);
  splice(d.value_, base.values(), sp.ins_value);
  // The ancestor chain of the splice absorbs the row-count delta; every
  // ancestor precedes the splice point, so chain pres are stable.
  if (delta != 0) {
    Pre a = sp.parent;
    for (;;) {
      d.size_[a] = static_cast<uint32_t>(
          static_cast<int64_t>(d.size_[a]) + delta);
      if (a == 0) break;
      Pre up;
      bool ok = base.Parent(a, &up);
      assert(ok);
      (void)ok;
      a = up;
    }
  }
  return d;
}

void DocumentSplicer::RepairStats(const Document& base, const Document& fresh,
                                  const Splice& sp, DocStats* s) {
  const Pre k = static_cast<Pre>(sp.ins_size.size());
  const int64_t delta =
      static_cast<int64_t>(k) - static_cast<int64_t>(sp.removed);

  // Removed rows: exact count rollback. Maxima and distinct estimates
  // deliberately stay put — they remain sound upper bounds.
  for (Pre v = sp.at; v < sp.at + sp.removed; ++v) {
    NodeKind kind = base.kind(v);
    s->total_nodes--;
    s->kind_counts[static_cast<size_t>(kind)]--;
    s->level_counts[base.level(v)]--;
    if (kind == NodeKind::kElem) {
      DocStats::TagStats& ts = s->tags[base.prop(v)];
      ts.count--;
      ts.subtree_nodes -= static_cast<uint64_t>(base.size(v)) + 1;
    } else if (kind == NodeKind::kAttr) {
      s->attrs[base.prop(v)].count--;
    }
  }

  // Ancestor chain: every element ancestor's subtree grew/shrank by
  // delta, which its tag's subtree_nodes tracks exactly.
  if (delta != 0) {
    Pre a = sp.parent;
    for (;;) {
      if (base.kind(a) == NodeKind::kElem) {
        s->tags[base.prop(a)].subtree_nodes += delta;
      }
      if (a == 0) break;
      Pre up;
      base.Parent(a, &up);
      a = up;
    }
  }

  // Inserted rows: one frame-driven pass (the ComputeDocStats walk,
  // confined to the fresh rows) folds exact counts and recomputes the
  // maxima of every parent that lives *inside* the insertion. Text and
  // attribute values bump the distinct estimates by one each — an upper
  // bound on the true distinct growth.
  struct Frame {
    StrId tag = 0;
    std::unordered_map<StrId, uint32_t> child_elems;
    std::unordered_map<StrId, uint32_t> own_attrs;
    uint32_t text_children = 0;
  };
  std::vector<Frame> stack;
  auto close_frame = [&s](Frame& f) {
    for (const auto& [ctag, cnt] : f.child_elems) {
      uint32_t& mx = s->max_children[DocStats::EdgeKey(f.tag, ctag)];
      mx = std::max(mx, cnt);
    }
    for (const auto& [aname, cnt] : f.own_attrs) {
      DocStats::AttrStats& as = s->attrs[aname];
      as.max_per_owner = std::max(as.max_per_owner, cnt);
    }
    DocStats::TagStats& ts = s->tags[f.tag];
    ts.max_text_children = std::max(ts.max_text_children, f.text_children);
  };
  const uint16_t parent_level = fresh.level(sp.parent);
  const StrId parent_tag = fresh.kind(sp.parent) == NodeKind::kDoc
                               ? DocStats::kDocParent
                               : fresh.prop(sp.parent);
  for (Pre v = sp.at; v < sp.at + k; ++v) {
    NodeKind kind = fresh.kind(v);
    uint16_t level = fresh.level(v);
    size_t rel = static_cast<size_t>(level - parent_level);  // >= 1
    while (stack.size() > rel - 1) {
      close_frame(stack.back());
      stack.pop_back();
    }
    s->total_nodes++;
    s->kind_counts[static_cast<size_t>(kind)]++;
    if (s->level_counts.size() <= level) s->level_counts.resize(level + 1, 0);
    s->level_counts[level]++;
    Frame* pf = stack.empty() ? nullptr : &stack.back();
    switch (kind) {
      case NodeKind::kElem: {
        DocStats::TagStats& ts = s->tags[fresh.prop(v)];
        ts.count++;
        ts.subtree_nodes += static_cast<uint64_t>(fresh.size(v)) + 1;
        if (pf != nullptr) pf->child_elems[fresh.prop(v)]++;
        Frame f;
        f.tag = fresh.prop(v);
        stack.push_back(std::move(f));
        break;
      }
      case NodeKind::kAttr: {
        DocStats::AttrStats& as = s->attrs[fresh.prop(v)];
        as.count++;
        as.distinct_values++;  // upper bound
        if (pf != nullptr) pf->own_attrs[fresh.prop(v)]++;
        break;
      }
      case NodeKind::kText: {
        StrId owner = pf != nullptr ? pf->tag : parent_tag;
        if (pf != nullptr) pf->text_children++;
        if (owner != DocStats::kDocParent) {
          s->tags[owner].distinct_text_values++;  // upper bound
        }
        break;
      }
      default:
        break;
    }
  }
  while (!stack.empty()) {
    close_frame(stack.back());
    stack.pop_back();
  }

  // The insertion parent's own fan-out changed: recount its direct
  // children in the fresh snapshot and max-merge. (Deletes skip this —
  // a shrink can never invalidate an upper bound.)
  if (k > 0) {
    std::unordered_map<StrId, uint32_t> child_elems, own_attrs;
    uint32_t text_children = 0;
    Pre end = sp.parent + fresh.size(sp.parent);
    Pre v = sp.parent + 1;
    while (v <= end && fresh.IsAttr(v) &&
           fresh.level(v) == parent_level + 1) {
      own_attrs[fresh.prop(v)]++;
      ++v;
    }
    while (v <= end) {
      if (fresh.kind(v) == NodeKind::kElem) child_elems[fresh.prop(v)]++;
      if (fresh.kind(v) == NodeKind::kText) text_children++;
      v += fresh.size(v) + 1;
    }
    for (const auto& [ctag, cnt] : child_elems) {
      uint32_t& mx = s->max_children[DocStats::EdgeKey(parent_tag, ctag)];
      mx = std::max(mx, cnt);
    }
    for (const auto& [aname, cnt] : own_attrs) {
      DocStats::AttrStats& as = s->attrs[aname];
      as.max_per_owner = std::max(as.max_per_owner, cnt);
    }
    if (parent_tag != DocStats::kDocParent) {
      DocStats::TagStats& ts = s->tags[parent_tag];
      ts.max_text_children = std::max(ts.max_text_children, text_children);
    }
  }

  // Exactness discipline: a fresh ComputeDocStats never carries
  // trailing-zero level slots.
  while (!s->level_counts.empty() && s->level_counts.back() == 0) {
    s->level_counts.pop_back();
  }
}

int32_t DocumentSplicer::PathOf(const std::vector<PathNode>& nodes,
                                const Document& base, Pre v) {
  std::vector<StrId> chain;
  Pre cur = v;
  while (cur != 0) {
    chain.push_back(base.prop(cur));
    Pre up;
    bool ok = base.Parent(cur, &up);
    assert(ok);
    (void)ok;
    cur = up;
  }
  int32_t id = 0;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    id = FindChildPath(nodes, id, *it, false);
    assert(id >= 0 && "node path missing from summary");
  }
  return id;
}

PathSummary DocumentSplicer::RepairSummary(const PathSummary& old,
                                           const Document& base,
                                           const Document& fresh,
                                           const Splice& sp) {
  PathSummary s = old;  // trie nodes, indexes; partitions rebuilt below
  const Pre k = static_cast<Pre>(sp.ins_size.size());
  const int64_t delta =
      static_cast<int64_t>(k) - static_cast<int64_t>(sp.removed);
  const size_t old_paths = s.nodes_.size();

  // Phase 1: per-path surviving pres, split at the splice point. Kept
  // heads stay, tails shift by the row-count delta, spliced-out pres
  // drop. Document order within each partition is preserved because
  // every head pre < at <= every inserted pre < every shifted tail pre.
  std::vector<std::vector<Pre>> heads(old_paths), tails(old_paths);
  for (size_t id = 1; id < old_paths; ++id) {
    size_t len;
    const Pre* p = s.partition(static_cast<int32_t>(id), &len);
    for (size_t i = 0; i < len; ++i) {
      Pre pre = p[i];
      if (pre < sp.at) {
        heads[id].push_back(pre);
      } else if (pre >= sp.at + sp.removed) {
        tails[id].push_back(static_cast<Pre>(
            static_cast<int64_t>(pre) + delta));
      }
    }
  }

  const int32_t parent_path = PathOf(s.nodes_, base, sp.parent);
  const uint16_t parent_level = base.level(sp.parent);

  // Phase 2: removed rows surrender their text-child counts (their
  // element/attribute memberships already vanished with their pres).
  {
    std::vector<int32_t> pstack;
    for (Pre v = sp.at; v < sp.at + sp.removed; ++v) {
      size_t rel = static_cast<size_t>(base.level(v) - parent_level);
      while (pstack.size() > rel - 1) pstack.pop_back();
      int32_t top = pstack.empty() ? parent_path : pstack.back();
      switch (base.kind(v)) {
        case NodeKind::kElem:
          pstack.push_back(
              FindChildPath(s.nodes_, top, base.prop(v), false));
          assert(pstack.back() >= 0);
          break;
        case NodeKind::kText:
          if (top > 0) s.nodes_[static_cast<size_t>(top)].text_children--;
          break;
        default:
          break;
      }
    }
  }

  // Phase 3: inserted rows join (or create) their paths.
  {
    std::vector<int32_t> pstack;
    auto list_for = [&](int32_t id) -> std::vector<Pre>& {
      if (static_cast<size_t>(id) >= heads.size()) {
        heads.resize(id + 1);
        tails.resize(id + 1);
      }
      return heads[static_cast<size_t>(id)];
    };
    for (Pre v = sp.at; v < sp.at + k; ++v) {
      size_t rel = static_cast<size_t>(fresh.level(v) - parent_level);
      while (pstack.size() > rel - 1) pstack.pop_back();
      int32_t top = pstack.empty() ? parent_path : pstack.back();
      switch (fresh.kind(v)) {
        case NodeKind::kElem: {
          int32_t id = FindOrAddChildPath(&s.nodes_, top, fresh.prop(v),
                                          false);
          list_for(id).push_back(v);
          pstack.push_back(id);
          break;
        }
        case NodeKind::kAttr: {
          int32_t id = FindOrAddChildPath(&s.nodes_, top, fresh.prop(v),
                                          true);
          list_for(id).push_back(v);
          break;
        }
        case NodeKind::kText:
          if (top > 0) s.nodes_[static_cast<size_t>(top)].text_children++;
          break;
        default:
          break;
      }
    }
  }
  if (heads.size() < s.nodes_.size()) {
    heads.resize(s.nodes_.size());
    tails.resize(s.nodes_.size());
  }

  // Phase 4: flatten head ++ tail per path back into the contiguous
  // partition store; counts follow the partitions exactly. Paths whose
  // last node vanished stay in the trie with an empty partition — every
  // consumer treats an empty slice as "tag absent here", so keeping the
  // path is sound and preserves path ids.
  s.part_.clear();
  size_t total = 0;
  for (size_t id = 1; id < s.nodes_.size(); ++id) {
    total += heads[id].size() + tails[id].size();
  }
  s.part_.reserve(total);
  for (size_t id = 0; id < s.nodes_.size(); ++id) {
    PathNode& p = s.nodes_[id];
    p.part_begin = s.part_.size();
    if (id == 0) continue;
    s.part_.insert(s.part_.end(), heads[id].begin(), heads[id].end());
    s.part_.insert(s.part_.end(), tails[id].begin(), tails[id].end());
    p.count = static_cast<uint32_t>(heads[id].size() + tails[id].size());
  }

  // Phase 5: register paths minted by the insertion. New ids are larger
  // than every existing id, so push_back keeps the by-tag lists sorted.
  for (size_t id = old_paths; id < s.nodes_.size(); ++id) {
    const PathNode& p = s.nodes_[id];
    if (p.is_attr) {
      s.attr_by_name_[p.tag].push_back(static_cast<int32_t>(id));
    } else {
      s.elem_by_tag_[p.tag].push_back(static_cast<int32_t>(id));
      s.num_element_paths_++;
    }
  }
  return s;
}

Result<SplicedDoc> DocumentSplicer::Apply(const Document& base,
                                          StringPool* pool,
                                          const NodeUpdate& u) {
  const Pre n = base.num_nodes();
  if (u.target >= n) {
    return Status::InvalidArgument("update target " +
                                   std::to_string(u.target) +
                                   " out of range (document has " +
                                   std::to_string(n) + " nodes)");
  }
  const NodeKind tkind = base.kind(u.target);

  // Content-only fast path: replacing the value of a leaf node touches
  // one cell of the value column — structure, stats counts and the path
  // summary are untouched (the summary is *shared* with the base).
  if (u.kind == NodeUpdate::Kind::kReplaceValue &&
      tkind != NodeKind::kElem) {
    if (tkind == NodeKind::kDoc) {
      return Status::InvalidArgument(
          "cannot replace the value of the document node");
    }
    SplicedDoc out;
    Document d;
    d.size_ = base.sizes();
    d.level_ = base.levels();
    d.kind_ = base.kinds();
    d.prop_ = base.props();
    d.value_ = base.values();
    d.value_[u.target] = pool->Intern(u.value);
    if (base.stats() != nullptr) {
      DocStats s = *base.stats();
      if (tkind == NodeKind::kAttr) {
        s.attrs[base.prop(u.target)].distinct_values++;  // upper bound
      } else if (tkind == NodeKind::kText) {
        Pre p;
        if (base.Parent(u.target, &p) && base.kind(p) == NodeKind::kElem) {
          s.tags[base.prop(p)].distinct_text_values++;  // upper bound
        }
      }
      d.set_stats(std::move(s));
    }
    d.summary_ = base.shared_summary();
    out.doc = std::move(d);
    out.structural = false;
    out.at = u.target;
    out.removed = 1;
    out.inserted = 1;
    return out;
  }

  Splice sp;
  switch (u.kind) {
    case NodeUpdate::Kind::kDelete: {
      if (u.target == 0) {
        return Status::InvalidArgument("cannot delete the document node");
      }
      Pre parent;
      base.Parent(u.target, &parent);
      if (parent == 0 && tkind == NodeKind::kElem) {
        // The document node must keep at least one element child.
        uint32_t root_elems = 0;
        Pre v = 1;
        while (v < n) {
          if (base.kind(v) == NodeKind::kElem) root_elems++;
          v += base.size(v) + 1;
        }
        if (root_elems <= 1) {
          return Status::InvalidArgument(
              "cannot delete the document's only root element");
        }
      }
      sp.at = u.target;
      sp.removed = base.size(u.target) + 1;
      sp.parent = parent;
      break;
    }
    case NodeUpdate::Kind::kReplaceValue: {
      // Element: its content becomes the single text node `value`.
      Pre end = u.target + base.size(u.target);
      Pre first = u.target + 1;
      while (first <= end && base.IsAttr(first) &&
             base.level(first) == base.level(u.target) + 1) {
        ++first;
      }
      sp.at = first;
      sp.removed = end + 1 - first;
      sp.parent = u.target;
      if (!u.value.empty()) {
        sp.ins_size.push_back(0);
        sp.ins_level.push_back(
            static_cast<uint16_t>(base.level(u.target) + 1));
        sp.ins_kind.push_back(static_cast<uint8_t>(NodeKind::kText));
        sp.ins_prop.push_back(0);
        sp.ins_value.push_back(pool->Intern(u.value));
      }
      break;
    }
    case NodeUpdate::Kind::kInsertChild: {
      if (tkind != NodeKind::kElem) {
        return Status::InvalidArgument(
            "insert target must be an element node");
      }
      PF_ASSIGN_OR_RETURN(Document frag, ParseXml(u.xml, pool));
      const Pre fn = frag.num_nodes();
      uint16_t max_level = 0;
      for (Pre v = 1; v < fn; ++v) {
        max_level = std::max(max_level, frag.level(v));
      }
      const uint16_t tlevel = base.level(u.target);
      if (static_cast<uint32_t>(tlevel) + max_level > 0xFFFF) {
        return Status::InvalidArgument(
            "insert would exceed the maximum tree depth");
      }
      // Insertion point: before the position-th child (attributes come
      // first and always stay with the element), append past the end.
      Pre end = u.target + base.size(u.target);
      Pre v = u.target + 1;
      while (v <= end && base.IsAttr(v) && base.level(v) == tlevel + 1) {
        ++v;
      }
      Pre at = end + 1;
      if (u.position >= 0) {
        int32_t idx = 0;
        while (v <= end) {
          if (idx == u.position) {
            at = v;
            break;
          }
          v += base.size(v) + 1;
          ++idx;
        }
      }
      sp.at = at;
      sp.removed = 0;
      sp.parent = u.target;
      sp.ins_size.reserve(fn - 1);
      for (Pre f = 1; f < fn; ++f) {
        sp.ins_size.push_back(frag.size(f));
        sp.ins_level.push_back(
            static_cast<uint16_t>(frag.level(f) + tlevel));
        sp.ins_kind.push_back(static_cast<uint8_t>(frag.kind(f)));
        sp.ins_prop.push_back(frag.prop(f));
        sp.ins_value.push_back(frag.value(f));
      }
      break;
    }
  }

  SplicedDoc out;
  out.structural = true;
  out.at = sp.at;
  out.removed = sp.removed;
  out.inserted = static_cast<Pre>(sp.ins_size.size());
  Document fresh = BuildSpliced(base, sp);
  if (base.stats() != nullptr) {
    DocStats s = *base.stats();
    RepairStats(base, fresh, sp, &s);
    fresh.set_stats(std::move(s));
  }
  if (base.summary() != nullptr) {
    fresh.set_summary(RepairSummary(*base.summary(), base, fresh, sp));
  }
  out.doc = std::move(fresh);
  return out;
}

Result<SplicedDoc> ApplyNodeUpdate(const Document& base, StringPool* pool,
                                   const NodeUpdate& u) {
  return DocumentSplicer::Apply(base, pool, u);
}

Result<UpdateResult> ApplyUpdate(Database* db, const std::string& name,
                                 const NodeUpdate& u) {
  if (!UpdatesEnabled()) {
    return Status::NotSupported(
        "document updates are disabled (PF_UPDATES=0)");
  }
  // Updaters serialize on the store's update lock for the whole
  // read-splice-publish cycle, so two concurrent updates never splice
  // off the same base snapshot (one would silently undo the other).
  // Queries never take this lock.
  auto lock = db->LockForUpdate();
  PF_ASSIGN_OR_RETURN(FragId cur, db->FindDocument(name));
  const Document& base = db->doc(cur);
  PF_ASSIGN_OR_RETURN(SplicedDoc sp, ApplyNodeUpdate(base, db->pool(), u));
  UpdateResult r;
  r.structural = sp.structural;
  r.nodes_before = base.num_nodes();
  r.nodes_after = sp.doc.num_nodes();
  r.frag = db->PublishUpdate(name, std::move(sp.doc), sp.structural);
  return r;
}

}  // namespace pathfinder::xml

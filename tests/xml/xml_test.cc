#include <gtest/gtest.h>

#include "base/rng.h"
#include "xml/database.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree_builder.h"

namespace pathfinder::xml {
namespace {

// --- TreeBuilder -------------------------------------------------------

TEST(TreeBuilderTest, MinimalDocument) {
  StringPool pool;
  TreeBuilder b(&pool);
  b.StartElem("a");
  b.EndElem();
  auto doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 2u);
  EXPECT_EQ(doc->kind(0), NodeKind::kDoc);
  EXPECT_EQ(doc->kind(1), NodeKind::kElem);
  EXPECT_EQ(doc->size(0), 1u);
  EXPECT_EQ(doc->size(1), 0u);
  EXPECT_EQ(doc->level(1), 1);
  std::string err;
  EXPECT_TRUE(doc->Validate(&err)) << err;
}

TEST(TreeBuilderTest, SizesAndLevelsNest) {
  StringPool pool;
  TreeBuilder b(&pool);
  b.StartElem("a");        // pre 1
  b.Attr("id", "1");       // pre 2
  b.StartElem("b");        // pre 3
  b.Text("hi");            // pre 4
  b.EndElem();
  b.StartElem("c");        // pre 5
  b.EndElem();
  b.EndElem();
  auto doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 6u);
  EXPECT_EQ(doc->size(1), 4u);   // a contains id, b, hi, c
  EXPECT_EQ(doc->size(3), 1u);   // b contains hi
  EXPECT_EQ(doc->level(2), 2);   // attribute below a
  EXPECT_EQ(doc->level(4), 3);   // text below b
  EXPECT_TRUE(doc->IsAttr(2));
  std::string err;
  EXPECT_TRUE(doc->Validate(&err)) << err;
}

TEST(TreeBuilderTest, UnclosedElementFails) {
  StringPool pool;
  TreeBuilder b(&pool);
  b.StartElem("a");
  EXPECT_FALSE(std::move(b).Finish().ok());
}

TEST(TreeBuilderTest, EmptyDocumentFails) {
  StringPool pool;
  TreeBuilder b(&pool);
  EXPECT_FALSE(std::move(b).Finish().ok());
}

// --- Parent / StringValue -----------------------------------------------

TEST(DocumentTest, ParentChain) {
  StringPool pool;
  TreeBuilder b(&pool);
  b.StartElem("a");
  b.StartElem("b");
  b.Text("t");
  b.EndElem();
  b.EndElem();
  auto doc = std::move(b).Finish().value();
  Pre p;
  ASSERT_TRUE(doc.Parent(3, &p));  // text -> b
  EXPECT_EQ(p, 2u);
  ASSERT_TRUE(doc.Parent(2, &p));  // b -> a
  EXPECT_EQ(p, 1u);
  ASSERT_TRUE(doc.Parent(1, &p));  // a -> doc node
  EXPECT_EQ(p, 0u);
  EXPECT_FALSE(doc.Parent(0, &p));
}

TEST(DocumentTest, StringValueConcatenatesDescendantText) {
  StringPool pool;
  auto doc = ParseXml("<a>x<b>y</b>z</a>", &pool).value();
  EXPECT_EQ(doc.StringValue(1, pool), "xyz");
}

// --- Parser --------------------------------------------------------------

TEST(ParserTest, ParsesElementsAttributesText) {
  StringPool pool;
  auto doc = ParseXml(R"(<a x="1" y="two"><b>text</b></a>)", &pool);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->num_nodes(), 6u);  // doc, a, @x, @y, b, text
  EXPECT_EQ(pool.Get(doc->prop(1)), "a");
  EXPECT_EQ(pool.Get(doc->prop(2)), "x");
  EXPECT_EQ(pool.Get(doc->value(2)), "1");
  EXPECT_EQ(pool.Get(doc->value(5)), "text");
}

TEST(ParserTest, EntityDecoding) {
  StringPool pool;
  auto doc = ParseXml("<a>&lt;x&gt; &amp; &#65;&#x42;</a>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringValue(1, pool), "<x> & AB");
}

TEST(ParserTest, CdataSection) {
  StringPool pool;
  auto doc = ParseXml("<a><![CDATA[<not-a-tag> & raw]]></a>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringValue(1, pool), "<not-a-tag> & raw");
}

TEST(ParserTest, CommentsAndPis) {
  StringPool pool;
  auto doc = ParseXml("<a><!-- note --><?target data?></a>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->kind(2), NodeKind::kComment);
  EXPECT_EQ(doc->kind(3), NodeKind::kPi);
  EXPECT_EQ(pool.Get(doc->prop(3)), "target");
}

TEST(ParserTest, XmlDeclAndDoctypeSkipped) {
  StringPool pool;
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a SYSTEM \"x\"><a/>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 2u);
}

TEST(ParserTest, SelfClosingAndNesting) {
  StringPool pool;
  auto doc = ParseXml("<a><b/><c><d/></c></a>", &pool);
  ASSERT_TRUE(doc.ok());
  std::string err;
  EXPECT_TRUE(doc->Validate(&err)) << err;
  EXPECT_EQ(doc->size(1), 3u);  // b, c, d
}

TEST(ParserTest, WhitespaceOnlyTextDropped) {
  StringPool pool;
  auto doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 4u);  // doc, a, b, c — no text nodes
}

TEST(ParserTest, MixedContentPreserved) {
  StringPool pool;
  auto doc = ParseXml("<a>pre <b>mid</b> post</a>", &pool);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringValue(1, pool), "pre mid post");
}

TEST(ParserTest, ErrorsAreDiagnosed) {
  StringPool pool;
  EXPECT_FALSE(ParseXml("<a><b></a>", &pool).ok());    // mismatched
  EXPECT_FALSE(ParseXml("<a>", &pool).ok());           // unclosed
  EXPECT_FALSE(ParseXml("<a x=1/>", &pool).ok());      // unquoted attr
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>", &pool).ok());
  EXPECT_FALSE(ParseXml("</a>", &pool).ok());          // stray end tag
}

TEST(ParserTest, DecodeEntitiesStandalone) {
  EXPECT_EQ(*DecodeEntities("a&amp;b"), "a&b");
  EXPECT_EQ(*DecodeEntities("&quot;&apos;"), "\"'");
  EXPECT_FALSE(DecodeEntities("&bogus;").ok());
  EXPECT_FALSE(DecodeEntities("&#xZZ;").ok());
}

// --- Serializer round trip -----------------------------------------------

TEST(SerializerTest, RoundTripSimple) {
  StringPool pool;
  const char* xml = R"(<a x="1"><b>text &amp; more</b><c/></a>)";
  auto doc = ParseXml(xml, &pool).value();
  EXPECT_EQ(SerializeDocument(doc, pool), xml);
}

TEST(SerializerTest, EscapesSpecials) {
  StringPool pool;
  TreeBuilder b(&pool);
  b.StartElem("a");
  b.Attr("q", "say \"hi\" & <go>");
  b.Text("1 < 2 & 3 > 2");
  b.EndElem();
  auto doc = std::move(b).Finish().value();
  EXPECT_EQ(SerializeDocument(doc, pool),
            "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\">"
            "1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(SerializerTest, SerializeSubtree) {
  StringPool pool;
  auto doc = ParseXml("<a><b>x</b><c>y</c></a>", &pool).value();
  EXPECT_EQ(SerializeSubtree(doc, 2, pool), "<b>x</b>");
  EXPECT_EQ(SerializeSubtree(doc, 4, pool), "<c>y</c>");
}

TEST(SerializerTest, LoneAttribute) {
  StringPool pool;
  auto doc = ParseXml("<a k=\"v\"/>", &pool).value();
  EXPECT_EQ(SerializeSubtree(doc, 2, pool), "k=\"v\"");
}

// Property: parse(serialize(parse(x))) == parse(x) for random documents.
class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

void BuildRandomTree(Rng* rng, TreeBuilder* b, int depth) {
  int kids = static_cast<int>(rng->Range(0, depth > 3 ? 1 : 3));
  bool last_was_text = false;
  for (int i = 0; i < kids; ++i) {
    switch (rng->Below(4)) {
      case 0:
        // Adjacent text nodes would merge on reparse; keep them apart.
        if (last_was_text) {
          b->Comment("sep");
        }
        b->Text("t" + std::to_string(rng->Below(50)));
        last_was_text = true;
        break;
      case 1:
        b->Comment("c");
        last_was_text = false;
        break;
      default: {
        last_was_text = false;
        b->StartElem("e" + std::to_string(rng->Below(5)));
        if (rng->Chance(0.5)) {
          b->Attr("k" + std::to_string(rng->Below(3)),
                  "v" + std::to_string(rng->Below(9)));
        }
        BuildRandomTree(rng, b, depth + 1);
        b->EndElem();
        break;
      }
    }
  }
}

TEST_P(RoundTripTest, SerializeParseStable) {
  StringPool pool;
  Rng rng(GetParam());
  TreeBuilder b(&pool);
  b.StartElem("root");
  BuildRandomTree(&rng, &b, 0);
  b.EndElem();
  auto doc = std::move(b).Finish().value();
  std::string err;
  ASSERT_TRUE(doc.Validate(&err)) << err;

  std::string s1 = SerializeDocument(doc, pool);
  auto doc2 = ParseXml(s1, &pool);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString() << "\n" << s1;
  ASSERT_TRUE(doc2->Validate(&err)) << err;
  EXPECT_EQ(SerializeDocument(*doc2, pool), s1);
  EXPECT_EQ(doc2->num_nodes(), doc.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<uint64_t>(1, 25));

// --- Database --------------------------------------------------------------

TEST(DatabaseTest, LoadAndFind) {
  Database db;
  auto id = db.LoadXml("d.xml", "<r><x/></r>");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*db.FindDocument("d.xml"), *id);
  EXPECT_FALSE(db.FindDocument("missing.xml").ok());
  EXPECT_EQ(db.num_documents(), 1u);
  EXPECT_GT(db.EncodingBytes(), 0u);
}

TEST(DatabaseTest, SurrogateSharingAcrossDocuments) {
  Database db;
  ASSERT_TRUE(db.LoadXml("a.xml", "<tag>shared text</tag>").ok());
  size_t before = db.PoolPayloadBytes();
  ASSERT_TRUE(db.LoadXml("b.xml", "<tag>shared text</tag>").ok());
  // Identical tags and text share surrogates: no new payload.
  EXPECT_EQ(db.PoolPayloadBytes(), before);
}

}  // namespace
}  // namespace pathfinder::xml

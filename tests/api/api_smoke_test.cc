#include "api/pathfinder.h"

#include <gtest/gtest.h>

#include "xml/database.h"

namespace pathfinder {
namespace {

class ApiSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.LoadXml("books.xml", R"(
      <bib>
        <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
        <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
        <book year="1999"><title>XML Query</title><price>49.90</price></book>
      </bib>)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::string Run(const std::string& q, QueryOptions opts = {}) {
    Pathfinder pf(&db_);
    auto r = pf.Run(q, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for query: " << q;
    if (!r.ok()) return "<error: " + r.status().ToString() + ">";
    auto s = r->Serialize();
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return s.ok() ? *s : "<serialize error>";
  }

  xml::Database db_;
};

// Paper Figure 5: for $v in (10,20) return $v + 100.
TEST_F(ApiSmokeTest, PaperFigure5Query) {
  EXPECT_EQ(Run("for $v in (10,20) return $v + 100"), "110 120");
}

// Paper Figure 3: nested iteration.
TEST_F(ApiSmokeTest, PaperFigure3Query) {
  EXPECT_EQ(
      Run("for $v in (10,20), $w in (100,200) return $v + $w"),
      "110 210 120 220");
}

TEST_F(ApiSmokeTest, SimpleLiterals) {
  EXPECT_EQ(Run("1 + 2"), "3");
  EXPECT_EQ(Run("(1, 2, 3)"), "1 2 3");
  EXPECT_EQ(Run("\"hello\""), "hello");
  EXPECT_EQ(Run("()"), "");
}

TEST_F(ApiSmokeTest, PathQuery) {
  EXPECT_EQ(Run("doc(\"books.xml\")/bib/book[1]/title"),
            "<title>TCP/IP Illustrated</title>");
}

TEST_F(ApiSmokeTest, CountQuery) {
  EXPECT_EQ(Run("count(doc(\"books.xml\")//book)"), "3");
}

TEST_F(ApiSmokeTest, WhereAndConstructor) {
  EXPECT_EQ(Run("for $b in doc(\"books.xml\")//book "
                "where $b/@year = \"2000\" "
                "return <hit>{ $b/title/text() }</hit>"),
            "<hit>Data on the Web</hit>");
}

TEST_F(ApiSmokeTest, OrderBy) {
  EXPECT_EQ(Run("for $b in doc(\"books.xml\")//book "
                "order by $b/price descending "
                "return data($b/@year)",
                {}),
            "1994 1999 2000");
}

}  // namespace
}  // namespace pathfinder

#include "xmark/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "xml/tree_builder.h"

namespace pathfinder::xmark {

namespace {

using xml::TreeBuilder;

/// Word list standing in for XMLgen's Shakespeare vocabulary. "gold"
/// is included so Q14's full-text selection has realistic selectivity.
constexpr const char* kWords[] = {
    "against",  "age",      "allow",    "anger",    "apple",   "arm",
    "attack",   "autumn",   "banner",   "battle",   "bear",    "beauty",
    "bed",      "bell",     "bird",     "blood",    "bone",    "bound",
    "branch",   "brave",    "bread",    "breath",   "bright",  "brother",
    "burden",   "calm",     "captain",  "castle",   "cause",   "chance",
    "charge",   "cheek",    "chief",    "circle",   "cloud",   "coast",
    "cold",     "command",  "common",   "couch",    "courage", "crown",
    "current",  "danger",   "dark",     "dawn",     "dead",    "deed",
    "deep",     "degree",   "desert",   "desire",   "devil",   "dream",
    "drink",    "dust",     "eagle",    "earth",    "effect",  "empire",
    "enemy",    "evening",  "fair",     "faith",    "fancy",   "father",
    "fear",     "feast",    "fellow",   "field",    "fire",    "flame",
    "flower",   "foot",     "forest",   "fortune",  "fresh",   "friend",
    "garden",   "gentle",   "ghost",    "giant",    "gift",    "glass",
    "gold",     "grace",    "grave",    "green",    "ground",  "guard",
    "hand",     "harbor",   "heart",    "heaven",   "honor",   "hope",
    "horse",    "house",    "hunger",   "iron",     "island",  "journey",
    "judge",    "justice",  "king",     "knight",   "labor",   "ladder",
    "lake",     "laughter", "leaf",     "letter",   "light",   "lion",
    "lord",     "love",     "master",   "meadow",   "memory",  "mercy",
    "message",  "midnight", "mirror",   "moon",     "morning", "mother",
    "mountain", "music",    "nature",   "night",    "noble",   "ocean",
    "orange",   "order",    "palace",   "paper",    "pardon",  "peace",
    "pearl",    "people",   "plain",    "pleasure", "power",   "praise",
    "pride",    "prince",   "prison",   "promise",  "proud",   "purple",
    "quarrel",  "queen",    "quiet",    "rain",     "reason",  "river",
    "road",     "rock",     "rose",     "royal",    "sail",    "scholar",
    "sea",      "season",   "secret",   "shadow",   "sharp",   "shield",
    "shore",    "silence",  "silver",   "sister",   "sleep",   "smile",
    "snow",     "soldier",  "sorrow",   "spirit",   "spring",  "star",
    "steel",    "stone",    "storm",    "story",    "stream",  "strength",
    "summer",   "sun",      "sword",    "temple",   "thunder", "tide",
    "tiger",    "tongue",   "tower",    "treasure", "tree",    "trust",
    "truth",    "valley",   "velvet",   "vessel",   "victory", "voice",
    "water",    "wave",     "wealth",   "wind",     "window",  "winter",
    "wisdom",   "wonder",   "wood",     "world",    "youth",   "zeal",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kCountries[] = {
    "United States", "Germany", "Netherlands", "Japan", "France",
    "Brazil",        "Kenya",   "Australia",   "India", "Canada",
};
constexpr const char* kCities[] = {
    "Amsterdam", "Munich", "Tokyo", "Nairobi", "Boston",
    "Sydney",    "Paris",  "Recife", "Madras", "Toronto",
};
constexpr const char* kEducation[] = {
    "High School", "College", "Graduate School", "Other",
};

/// The six region subtrees and their share of the items (XMLgen
/// ratios).
struct RegionShare {
  const char* name;
  double share;
};
constexpr RegionShare kRegions[] = {
    {"africa", 0.025},   {"asia", 0.092},     {"australia", 0.101},
    {"europe", 0.276},   {"namerica", 0.460}, {"samerica", 0.046},
};

class Generator {
 public:
  Generator(double sf, uint64_t seed, StringPool* pool)
      : counts_(XMarkCounts::ForScaleFactor(sf)),
        rng_(seed ^ 0xC0FFEE),
        b_(pool) {}

  Result<xml::Document> Run() {
    b_.StartElem("site");
    Regions();
    Categories();
    Catgraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    b_.EndElem();
    return std::move(b_).Finish();
  }

 private:
  // --- text helpers ----------------------------------------------------

  const char* Word() { return kWords[rng_.Below(kNumWords)]; }

  std::string Sentence(int min_words, int max_words) {
    int n = static_cast<int>(rng_.Range(min_words, max_words));
    std::string s;
    for (int i = 0; i < n; ++i) {
      if (i) s += ' ';
      s += Word();
    }
    return s;
  }

  std::string Money(double lo, double hi) {
    double v = lo + rng_.NextDouble() * (hi - lo);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }

  std::string Ref(const char* prefix, int64_t max_id) {
    return std::string(prefix) + std::to_string(rng_.Below(
               static_cast<uint64_t>(std::max<int64_t>(max_id, 1))));
  }

  std::string Date() {
    return std::to_string(rng_.Range(1, 12)) + "/" +
           std::to_string(rng_.Range(1, 28)) + "/" +
           std::to_string(rng_.Range(1998, 2001));
  }

  std::string Time() {
    return std::to_string(rng_.Range(0, 23)) + ":" +
           std::to_string(rng_.Range(10, 59)) + ":" +
           std::to_string(rng_.Range(10, 59));
  }

  void TextElem(const char* tag, const std::string& content) {
    b_.StartElem(tag);
    b_.Text(content);
    b_.EndElem();
  }

  // --- document sections ------------------------------------------------

  /// <text> with mixed content: words, <bold>, <keyword>, <emph>.
  /// Text runs alternate strictly with inline elements so no two text
  /// nodes are adjacent (adjacent runs would merge on a reparse).
  void RichText() {
    b_.StartElem("text");
    int runs = static_cast<int>(rng_.Range(1, 3));
    for (int i = 0; i < runs; ++i) {
      b_.Text(Sentence(4, 12) + " ");
      const char* tag = rng_.Chance(0.5)
                            ? "keyword"
                            : (rng_.Chance(0.5) ? "bold" : "emph");
      if (std::string(tag) == "emph") {
        // Q15/Q16 reach keyword *inside* emph.
        b_.StartElem("emph");
        b_.StartElem("keyword");
        b_.Text(Sentence(1, 3));
        b_.EndElem();
        b_.EndElem();
      } else {
        b_.StartElem(tag);
        b_.Text(Sentence(1, 3));
        b_.EndElem();
      }
    }
    b_.Text(" " + Sentence(2, 8));
    b_.EndElem();
  }

  /// <parlist><listitem>(text | nested parlist)</listitem>+</parlist>
  void Parlist(int depth) {
    b_.StartElem("parlist");
    int n = static_cast<int>(rng_.Range(1, 3));
    for (int i = 0; i < n; ++i) {
      b_.StartElem("listitem");
      if (depth < 2 && rng_.Chance(0.35)) {
        Parlist(depth + 1);
      } else {
        RichText();
      }
      b_.EndElem();
    }
    b_.EndElem();
  }

  void Description() {
    b_.StartElem("description");
    if (rng_.Chance(0.7)) {
      RichText();
    } else {
      Parlist(0);
    }
    b_.EndElem();
  }

  void Annotation() {
    b_.StartElem("annotation");
    b_.StartElem("author");
    b_.Attr("person", Ref("person", counts_.people));
    b_.EndElem();
    Description();
    TextElem("happiness", std::to_string(rng_.Range(1, 10)));
    b_.EndElem();
  }

  void Item(int64_t id) {
    b_.StartElem("item");
    b_.Attr("id", "item" + std::to_string(id));
    TextElem("location", kCountries[rng_.Below(10)]);
    TextElem("quantity", std::to_string(rng_.Range(1, 5)));
    TextElem("name", Sentence(2, 4));
    b_.StartElem("payment");
    b_.Text(rng_.Chance(0.5) ? "Creditcard" : "Cash");
    b_.EndElem();
    Description();
    TextElem("shipping", rng_.Chance(0.5) ? "Will ship internationally"
                                          : "Buyer pays fixed shipping");
    int cats = static_cast<int>(rng_.Range(1, 3));
    for (int c = 0; c < cats; ++c) {
      b_.StartElem("incategory");
      b_.Attr("category", Ref("category", counts_.categories));
      b_.EndElem();
    }
    b_.StartElem("mailbox");
    int mails = static_cast<int>(rng_.Range(0, 2));
    for (int m = 0; m < mails; ++m) {
      b_.StartElem("mail");
      TextElem("from", Sentence(2, 3));
      TextElem("to", Sentence(2, 3));
      TextElem("date", Date());
      RichText();
      b_.EndElem();
    }
    b_.EndElem();
    b_.EndElem();
  }

  void Regions() {
    b_.StartElem("regions");
    int64_t next_id = 0;
    for (const auto& region : kRegions) {
      b_.StartElem(region.name);
      int64_t n = std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::llround(region.share *
                              static_cast<double>(counts_.items))));
      // The final region absorbs rounding drift.
      if (std::string(region.name) == "samerica") {
        n = std::max<int64_t>(1, counts_.items - next_id);
      }
      for (int64_t i = 0; i < n; ++i) Item(next_id++);
      b_.EndElem();
    }
    total_items_ = next_id;
    b_.EndElem();
  }

  void Categories() {
    b_.StartElem("categories");
    for (int64_t i = 0; i < counts_.categories; ++i) {
      b_.StartElem("category");
      b_.Attr("id", "category" + std::to_string(i));
      TextElem("name", Sentence(1, 3));
      Description();
      b_.EndElem();
    }
    b_.EndElem();
  }

  void Catgraph() {
    b_.StartElem("catgraph");
    int64_t edges = counts_.categories;
    for (int64_t i = 0; i < edges; ++i) {
      b_.StartElem("edge");
      b_.Attr("from", Ref("category", counts_.categories));
      b_.Attr("to", Ref("category", counts_.categories));
      b_.EndElem();
    }
    b_.EndElem();
  }

  void People() {
    b_.StartElem("people");
    for (int64_t i = 0; i < counts_.people; ++i) {
      b_.StartElem("person");
      b_.Attr("id", "person" + std::to_string(i));
      TextElem("name", Sentence(2, 2));
      TextElem("emailaddress",
               "mailto:" + std::string(Word()) + "@" + Word() + ".com");
      if (rng_.Chance(0.5)) {
        TextElem("phone", "+" + std::to_string(rng_.Range(1, 99)) + " (" +
                              std::to_string(rng_.Range(10, 999)) + ") " +
                              std::to_string(rng_.Range(1000000, 9999999)));
      }
      if (rng_.Chance(0.6)) {
        b_.StartElem("address");
        TextElem("street", std::to_string(rng_.Range(1, 99)) + " " +
                               Word() + " St");
        TextElem("city", kCities[rng_.Below(10)]);
        TextElem("country", kCountries[rng_.Below(10)]);
        TextElem("zipcode", std::to_string(rng_.Range(10000, 99999)));
        b_.EndElem();
      }
      if (rng_.Chance(0.5)) {
        TextElem("homepage",
                 "http://www." + std::string(Word()) + ".com/~" + Word());
      }
      if (rng_.Chance(0.5)) {
        TextElem("creditcard",
                 std::to_string(rng_.Range(1000, 9999)) + " " +
                     std::to_string(rng_.Range(1000, 9999)) + " " +
                     std::to_string(rng_.Range(1000, 9999)) + " " +
                     std::to_string(rng_.Range(1000, 9999)));
      }
      if (rng_.Chance(0.75)) {  // some persons have no profile (Q20 "na")
        b_.StartElem("profile");
        b_.Attr("income", Money(9000, 240000));
        int interests = static_cast<int>(rng_.Range(0, 4));
        for (int k = 0; k < interests; ++k) {
          b_.StartElem("interest");
          b_.Attr("category", Ref("category", counts_.categories));
          b_.EndElem();
        }
        if (rng_.Chance(0.5)) {
          TextElem("education", kEducation[rng_.Below(4)]);
        }
        if (rng_.Chance(0.5)) {
          TextElem("gender", rng_.Chance(0.5) ? "male" : "female");
        }
        TextElem("business", rng_.Chance(0.5) ? "Yes" : "No");
        if (rng_.Chance(0.4)) {
          TextElem("age", std::to_string(rng_.Range(18, 80)));
        }
        b_.EndElem();
      }
      if (rng_.Chance(0.4)) {
        b_.StartElem("watches");
        int w = static_cast<int>(rng_.Range(1, 3));
        for (int k = 0; k < w; ++k) {
          b_.StartElem("watch");
          b_.Attr("open_auction",
                  Ref("open_auction", counts_.open_auctions));
          b_.EndElem();
        }
        b_.EndElem();
      }
      b_.EndElem();
    }
    b_.EndElem();
  }

  void OpenAuctions() {
    b_.StartElem("open_auctions");
    for (int64_t i = 0; i < counts_.open_auctions; ++i) {
      b_.StartElem("open_auction");
      b_.Attr("id", "open_auction" + std::to_string(i));
      double initial = 5 + rng_.NextDouble() * 200;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", initial);
      TextElem("initial", buf);
      if (rng_.Chance(0.4)) {
        std::snprintf(buf, sizeof(buf), "%.2f", initial * 1.5);
        TextElem("reserve", buf);
      }
      int bidders = static_cast<int>(rng_.Range(0, 5));
      double current = initial;
      for (int k = 0; k < bidders; ++k) {
        b_.StartElem("bidder");
        TextElem("date", Date());
        TextElem("time", Time());
        b_.StartElem("personref");
        b_.Attr("person", Ref("person", counts_.people));
        b_.EndElem();
        double inc = 1.5 * static_cast<double>(rng_.Range(1, 20));
        current += inc;
        std::snprintf(buf, sizeof(buf), "%.2f", inc);
        TextElem("increase", buf);
        b_.EndElem();
      }
      std::snprintf(buf, sizeof(buf), "%.2f", current);
      TextElem("current", buf);
      if (rng_.Chance(0.3)) TextElem("privacy", "Yes");
      b_.StartElem("itemref");
      b_.Attr("item", Ref("item", total_items_));
      b_.EndElem();
      b_.StartElem("seller");
      b_.Attr("person", Ref("person", counts_.people));
      b_.EndElem();
      Annotation();
      TextElem("quantity", std::to_string(rng_.Range(1, 5)));
      TextElem("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      b_.StartElem("interval");
      TextElem("start", Date());
      TextElem("end", Date());
      b_.EndElem();
      b_.EndElem();
    }
    b_.EndElem();
  }

  void ClosedAuctions() {
    b_.StartElem("closed_auctions");
    for (int64_t i = 0; i < counts_.closed_auctions; ++i) {
      b_.StartElem("closed_auction");
      b_.StartElem("seller");
      b_.Attr("person", Ref("person", counts_.people));
      b_.EndElem();
      b_.StartElem("buyer");
      b_.Attr("person", Ref("person", counts_.people));
      b_.EndElem();
      b_.StartElem("itemref");
      b_.Attr("item", Ref("item", total_items_));
      b_.EndElem();
      TextElem("price", Money(5, 300));
      TextElem("date", Date());
      TextElem("quantity", std::to_string(rng_.Range(1, 5)));
      TextElem("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      Annotation();
      b_.EndElem();
    }
    b_.EndElem();
  }

  XMarkCounts counts_;
  Rng rng_;
  TreeBuilder b_;
  int64_t total_items_ = 1;
};

}  // namespace

XMarkCounts XMarkCounts::ForScaleFactor(double sf) {
  auto scaled = [sf](double base) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * sf)));
  };
  XMarkCounts c;
  c.categories = scaled(1000);
  c.items = scaled(21750);
  c.people = scaled(25500);
  c.open_auctions = scaled(12000);
  c.closed_auctions = scaled(9750);
  return c;
}

Result<xml::Document> GenerateXMark(double sf, uint64_t seed,
                                    StringPool* pool) {
  Generator gen(sf, seed, pool);
  return gen.Run();
}

}  // namespace pathfinder::xmark

#ifndef PATHFINDER_FRONTEND_AST_H_
#define PATHFINDER_FRONTEND_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "accel/axis.h"

namespace pathfinder::frontend {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression kinds. The parser produces the full set; the normalizer
/// (normalize.h) lowers surface sugar so that the compiler only sees the
/// Core subset documented per kind below.
enum class ExprKind : uint8_t {
  kIntLit,       // ival
  kDblLit,       // dval
  kStrLit,       // sval
  kEmpty,        // ()
  kSequence,     // (e1, e2, ...): children
  kVar,          // $sval
  kContextItem,  // "."            [normalized away]
  kRootCtx,      // leading "/"    [normalized to fn:root of context doc]
  kFlwor,        // clauses / where / order_keys / children[0] = return
  kIf,           // children: cond, then, else
  kTypeswitch,   // children[0] = operand; cases
  kBinOp,        // op; children: lhs, rhs
  kUnaryMinus,   // children[0]
  kAxisStep,     // children[0] = context; axis, test, preds
                 //   [Core: context is always kVar, preds empty]
  kFunCall,      // sval = function name; children = args
                 //   [Core: built-ins only; UDFs are inlined]
  kElemConstr,   // children[0] = name expr; children[1..] = content
  kAttrConstr,   // sval = attribute name; children = value parts
                 //   (only valid directly inside kElemConstr content)
  kTextConstr,   // children[0] = content expr
  kDdo,          // fs:distinct-doc-order(children[0])
  kSome,         // sval = var; children: domain, satisfies   [normalized]
  kEvery,        // likewise                                  [normalized]
};

const char* ExprKindName(ExprKind k);

/// Binary operators (surface + core).
enum class BinOp : uint8_t {
  kOr,
  kAnd,
  // General comparisons (existential over sequences).
  kGenEq,
  kGenNe,
  kGenLt,
  kGenLe,
  kGenGt,
  kGenGe,
  // Value comparisons (singleton operands).
  kValEq,
  kValNe,
  kValLt,
  kValLe,
  kValGt,
  kValGe,
  kIs,      // node identity
  kBefore,  // <<
  kAfter,   // >>
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIdiv,
  kMod,
  kUnion,   // | on node sequences
};

const char* BinOpName(BinOp op);

/// Node test with the name still a string (interning happens when the
/// compiler sees the target database's pool).
struct StepTest {
  enum class Kind : uint8_t {
    kAnyKind,
    kElement,
    kText,
    kComment,
    kPi,
    kName
  };
  Kind kind = Kind::kAnyKind;
  std::string name;

  std::string ToString() const;
};

/// One for/let clause of a FLWOR.
struct ForLetClause {
  bool is_let = false;
  std::string var;
  std::string pos_var;  // "at $p" (for clauses only; empty if absent)
  ExprPtr expr;
};

/// One "order by" key.
struct OrderKey {
  ExprPtr key;
  bool ascending = true;
};

/// One typeswitch case. Matches on the dynamic kind of a singleton.
struct TypeCase {
  enum class Type : uint8_t {
    kElement,   // element() / element(name)
    kAttribute, // attribute()
    kText,      // text()
    kNode,      // node()
    kInteger,   // xs:integer
    kDouble,    // xs:double / xs:decimal
    kString,    // xs:string
    kBoolean,   // xs:boolean
    kDefault,   // default branch
  };
  Type type = Type::kDefault;
  std::string elem_name;  // optional name for element(name)
  std::string var;        // optional "case $v as ..."
  ExprPtr body;
};

/// AST node. One plain struct for all phases (cf. algebra::Op): plans
/// and ASTs are small, uniformity beats per-kind classes for rewriting.
struct Expr {
  ExprKind kind;
  std::vector<ExprPtr> children;

  int64_t ival = 0;
  double dval = 0;
  std::string sval;

  BinOp op = BinOp::kOr;

  accel::Axis axis = accel::Axis::kChild;
  StepTest test;
  std::vector<ExprPtr> preds;

  std::vector<ForLetClause> clauses;
  ExprPtr where;
  std::vector<OrderKey> order_keys;

  std::vector<TypeCase> cases;

  int line = 0;
};

ExprPtr MakeExpr(ExprKind kind, std::vector<ExprPtr> children = {});

/// Pretty-print an expression tree (the demo's "XQuery Core equivalent"
/// output, paper Sec. 4).
std::string ExprToString(const ExprPtr& e, int indent = 0);

/// A user-defined function: declare function local:f($a, $b) { body }.
struct Function {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
};

/// A parsed query module: function declarations plus the main body.
struct Module {
  std::vector<Function> functions;
  ExprPtr body;
};

}  // namespace pathfinder::frontend

#endif  // PATHFINDER_FRONTEND_AST_H_

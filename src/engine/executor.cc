#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "accel/step.h"
#include "bat/item_ops.h"
#include "bat/kernel.h"
#include "engine/cache.h"
#include "engine/node_build.h"
#include "engine/profile.h"

namespace pathfinder::engine {

namespace {

namespace alg = pathfinder::algebra;
using alg::Fun1;
using alg::Fun2;
using alg::Op;
using alg::OpKind;
using bat::ColType;
using bat::Column;
using bat::ColumnPtr;
using bat::IdxVec;
using bat::RowIdx;
using bat::Table;

// --- item-level helpers -------------------------------------------------

/// fn:data on one item: nodes become untyped atomics carrying their
/// string value; atomics pass through.
Result<Item> AtomizeItem(QueryContext* ctx, const Item& it) {
  if (!it.IsNode()) return it;
  std::string sv = NodeStringValue(*ctx, it);
  return Item::Untyped(ctx->pool()->Intern(sv));
}

Result<Item> ArithItem(Fun2 f, const Item& a0, const Item& b0,
                       QueryContext* ctx) {
  PF_ASSIGN_OR_RETURN(Item a, AtomizeItem(ctx, a0));
  PF_ASSIGN_OR_RETURN(Item b, AtomizeItem(ctx, b0));
  bool both_int = a.kind == ItemKind::kInt && b.kind == ItemKind::kInt;
  PF_ASSIGN_OR_RETURN(double da, bat::ItemToDouble(a, *ctx->pool()));
  PF_ASSIGN_OR_RETURN(double db, bat::ItemToDouble(b, *ctx->pool()));
  switch (f) {
    case Fun2::kAdd:
      return both_int ? Item::Int(a.AsInt() + b.AsInt())
                      : Item::Dbl(da + db);
    case Fun2::kSub:
      return both_int ? Item::Int(a.AsInt() - b.AsInt())
                      : Item::Dbl(da - db);
    case Fun2::kMul:
      return both_int ? Item::Int(a.AsInt() * b.AsInt())
                      : Item::Dbl(da * db);
    case Fun2::kDiv:
      if (db == 0.0) {
        return Status::TypeError("division by zero");
      }
      return Item::Dbl(da / db);
    case Fun2::kIdiv: {
      if (db == 0.0) {
        return Status::TypeError("integer division by zero");
      }
      return Item::Int(static_cast<int64_t>(da / db));
    }
    case Fun2::kMod: {
      if (db == 0.0) {
        return Status::TypeError("modulo by zero");
      }
      if (both_int) return Item::Int(a.AsInt() % b.AsInt());
      return Item::Dbl(std::fmod(da, db));
    }
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

Result<int> CompareItems(const Item& a0, const Item& b0,
                         QueryContext* ctx) {
  PF_ASSIGN_OR_RETURN(Item a, AtomizeItem(ctx, a0));
  PF_ASSIGN_OR_RETURN(Item b, AtomizeItem(ctx, b0));
  return bat::ItemCompareValue(a, b, *ctx->pool());
}

Result<StrId> ItemAsString(QueryContext* ctx, const Item& it) {
  if (it.IsNode()) {
    return ctx->pool()->Intern(NodeStringValue(*ctx, it));
  }
  return bat::ItemToString(it, ctx->pool());
}

// --- Fun1 ----------------------------------------------------------------

Result<ColumnPtr> EvalFun1(Fun1 f, const Column& in, QueryContext* ctx) {
  size_t n = in.size();
  switch (f) {
    case Fun1::kNot: {
      auto out = Column::MakeBool(n);
      for (uint8_t b : in.bools()) out->bools().push_back(b ? 0 : 1);
      return out;
    }
    case Fun1::kBoolToItem: {
      auto out = Column::MakeItem(n);
      for (uint8_t b : in.bools()) {
        out->items().push_back(Item::Bool(b != 0));
      }
      return out;
    }
    case Fun1::kItemToBool: {
      auto out = Column::MakeBool(n);
      for (const Item& it : in.items()) {
        PF_ASSIGN_OR_RETURN(bool b, bat::ItemToBool(it, *ctx->pool()));
        out->bools().push_back(b ? 1 : 0);
      }
      return out;
    }
    case Fun1::kIntToItem: {
      auto out = Column::MakeItem(n);
      for (int64_t v : in.ints()) out->items().push_back(Item::Int(v));
      return out;
    }
    case Fun1::kData: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        PF_ASSIGN_OR_RETURN(Item a, AtomizeItem(ctx, it));
        out->items().push_back(a);
      }
      return out;
    }
    case Fun1::kStringFn: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        PF_ASSIGN_OR_RETURN(StrId s, ItemAsString(ctx, it));
        out->items().push_back(Item::Str(s));
      }
      return out;
    }
    case Fun1::kNumberFn: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        Item a = it;
        if (it.IsNode()) {
          PF_ASSIGN_OR_RETURN(a, AtomizeItem(ctx, it));
        }
        auto d = bat::ItemToDouble(a, *ctx->pool());
        out->items().push_back(Item::Dbl(
            d.ok() ? *d : std::numeric_limits<double>::quiet_NaN()));
      }
      return out;
    }
    case Fun1::kNeg: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        PF_ASSIGN_OR_RETURN(Item a, AtomizeItem(ctx, it));
        if (a.kind == ItemKind::kInt) {
          out->items().push_back(Item::Int(-a.AsInt()));
        } else {
          PF_ASSIGN_OR_RETURN(double d, bat::ItemToDouble(a, *ctx->pool()));
          out->items().push_back(Item::Dbl(-d));
        }
      }
      return out;
    }
    case Fun1::kNameFn: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        if (!it.IsNode()) {
          return Status::TypeError("fn:name on a non-node");
        }
        const xml::Document& d = ctx->doc(it.NodeFrag());
        xml::Pre v = it.NodePre();
        xml::NodeKind k = d.kind(v);
        StrId s = (k == xml::NodeKind::kElem || k == xml::NodeKind::kAttr ||
                   k == xml::NodeKind::kPi)
                      ? d.prop(v)
                      : ctx->pool()->Intern("");
        out->items().push_back(Item::Str(s));
      }
      return out;
    }
    case Fun1::kStrLen: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        PF_ASSIGN_OR_RETURN(StrId s, ItemAsString(ctx, it));
        out->items().push_back(Item::Int(
            static_cast<int64_t>(ctx->pool()->Get(s).size())));
      }
      return out;
    }
    case Fun1::kRootNode: {
      auto out = Column::MakeItem(n);
      for (const Item& it : in.items()) {
        if (!it.IsNode()) {
          return Status::TypeError("fn:root on a non-node");
        }
        out->items().push_back(Item::Node(it.NodeFrag(), 0));
      }
      return out;
    }
    case Fun1::kIsElement:
    case Fun1::kIsAttribute:
    case Fun1::kIsText:
    case Fun1::kIsNode:
    case Fun1::kIsInt:
    case Fun1::kIsDouble:
    case Fun1::kIsString:
    case Fun1::kIsBool: {
      auto out = Column::MakeBool(n);
      for (const Item& it : in.items()) {
        bool b = false;
        switch (f) {
          case Fun1::kIsNode:
            b = it.IsNode();
            break;
          case Fun1::kIsAttribute:
            b = it.kind == ItemKind::kAttr;
            break;
          case Fun1::kIsElement:
            b = it.kind == ItemKind::kNode &&
                ctx->doc(it.NodeFrag()).kind(it.NodePre()) ==
                    xml::NodeKind::kElem;
            break;
          case Fun1::kIsText:
            b = it.kind == ItemKind::kNode &&
                ctx->doc(it.NodeFrag()).kind(it.NodePre()) ==
                    xml::NodeKind::kText;
            break;
          case Fun1::kIsInt:
            b = it.kind == ItemKind::kInt;
            break;
          case Fun1::kIsDouble:
            b = it.kind == ItemKind::kDbl;
            break;
          case Fun1::kIsString:
            b = it.IsStringLike();
            break;
          case Fun1::kIsBool:
            b = it.kind == ItemKind::kBool;
            break;
          default:
            break;
        }
        out->bools().push_back(b ? 1 : 0);
      }
      return out;
    }
  }
  return Status::Internal("unhandled Fun1");
}

// --- Fun2 ----------------------------------------------------------------

Result<ColumnPtr> EvalFun2(Fun2 f, const Column& a, const Column& b,
                           QueryContext* ctx) {
  size_t n = a.size();
  switch (f) {
    case Fun2::kAnd:
    case Fun2::kOr: {
      auto out = Column::MakeBool(n);
      for (size_t i = 0; i < n; ++i) {
        bool x = a.bools()[i], y = b.bools()[i];
        out->bools().push_back((f == Fun2::kAnd ? (x && y) : (x || y)) ? 1
                                                                       : 0);
      }
      return out;
    }
    case Fun2::kAdd:
    case Fun2::kSub:
    case Fun2::kMul:
    case Fun2::kDiv:
    case Fun2::kIdiv:
    case Fun2::kMod: {
      auto out = Column::MakeItem(n);
      for (size_t i = 0; i < n; ++i) {
        PF_ASSIGN_OR_RETURN(Item r,
                            ArithItem(f, a.items()[i], b.items()[i], ctx));
        out->items().push_back(r);
      }
      return out;
    }
    case Fun2::kCmpEq:
    case Fun2::kCmpNe:
    case Fun2::kCmpLt:
    case Fun2::kCmpLe:
    case Fun2::kCmpGt:
    case Fun2::kCmpGe: {
      auto out = Column::MakeBool(n);
      for (size_t i = 0; i < n; ++i) {
        PF_ASSIGN_OR_RETURN(int c,
                            CompareItems(a.items()[i], b.items()[i], ctx));
        bool r = false;
        switch (f) {
          case Fun2::kCmpEq:
            r = c == 0;
            break;
          case Fun2::kCmpNe:
            r = c != 0;
            break;
          case Fun2::kCmpLt:
            r = c < 0;
            break;
          case Fun2::kCmpLe:
            r = c <= 0;
            break;
          case Fun2::kCmpGt:
            r = c > 0;
            break;
          default:
            r = c >= 0;
            break;
        }
        out->bools().push_back(r ? 1 : 0);
      }
      return out;
    }
    case Fun2::kIs:
    case Fun2::kBefore:
    case Fun2::kAfter: {
      auto out = Column::MakeBool(n);
      for (size_t i = 0; i < n; ++i) {
        const Item& x = a.items()[i];
        const Item& y = b.items()[i];
        if (!x.IsNode() || !y.IsNode()) {
          return Status::TypeError("node comparison on non-nodes");
        }
        bool r;
        if (f == Fun2::kIs) {
          r = x == y;
        } else if (f == Fun2::kBefore) {
          r = x.raw < y.raw;
        } else {
          r = x.raw > y.raw;
        }
        out->bools().push_back(r ? 1 : 0);
      }
      return out;
    }
    case Fun2::kContains:
    case Fun2::kStartsWith: {
      auto out = Column::MakeBool(n);
      for (size_t i = 0; i < n; ++i) {
        PF_ASSIGN_OR_RETURN(StrId xs, ItemAsString(ctx, a.items()[i]));
        PF_ASSIGN_OR_RETURN(StrId ys, ItemAsString(ctx, b.items()[i]));
        std::string_view x = ctx->pool()->Get(xs);
        std::string_view y = ctx->pool()->Get(ys);
        bool r = f == Fun2::kContains
                     ? x.find(y) != std::string_view::npos
                     : x.substr(0, y.size()) == y;
        out->bools().push_back(r ? 1 : 0);
      }
      return out;
    }
    case Fun2::kConcat: {
      auto out = Column::MakeItem(n);
      for (size_t i = 0; i < n; ++i) {
        PF_ASSIGN_OR_RETURN(StrId xs, ItemAsString(ctx, a.items()[i]));
        PF_ASSIGN_OR_RETURN(StrId ys, ItemAsString(ctx, b.items()[i]));
        std::string joined(ctx->pool()->Get(xs));
        joined += ctx->pool()->Get(ys);
        out->items().push_back(Item::Str(ctx->pool()->Intern(joined)));
      }
      return out;
    }
    case Fun2::kSubstrFrom:
    case Fun2::kSubstrLen: {
      // fn:substring semantics with 1-based, rounded positions
      // (byte-oriented: this engine treats characters as bytes).
      auto out = Column::MakeItem(n);
      for (size_t i = 0; i < n; ++i) {
        PF_ASSIGN_OR_RETURN(StrId xs, ItemAsString(ctx, a.items()[i]));
        PF_ASSIGN_OR_RETURN(Item num, AtomizeItem(ctx, b.items()[i]));
        PF_ASSIGN_OR_RETURN(double d, bat::ItemToDouble(num, *ctx->pool()));
        std::string_view s = ctx->pool()->Get(xs);
        std::string r;
        if (f == Fun2::kSubstrFrom) {
          int64_t start = static_cast<int64_t>(std::llround(d));
          if (start < 1) start = 1;
          if (static_cast<size_t>(start) <= s.size()) {
            r = std::string(s.substr(static_cast<size_t>(start - 1)));
          }
        } else {
          int64_t len = static_cast<int64_t>(std::llround(d));
          if (len > 0) {
            r = std::string(s.substr(0, static_cast<size_t>(len)));
          }
        }
        out->items().push_back(Item::Str(ctx->pool()->Intern(r)));
      }
      return out;
    }
  }
  return Status::Internal("unhandled Fun2");
}

// --- fused pipeline fragments ---------------------------------------------
//
// A pipeline fragment (annotated by opt::AnnotatePipelines) is a chain
// of row-local operators compiled here into a flat step program over
// symbolic column references. Execution is morsel-driven: each morsel
// carries row indices into the fragment's input table(s) plus any
// computed columns, flows through every step — selections compress the
// morsel in place, maps append computed columns — and only the
// fragment tail's output is materialized, by concatenating per-morsel
// outputs in chunk order (which preserves the byte-identical
// determinism guarantee: morsel boundaries depend on input sizes only,
// and all order-sensitive consumers compare string *content*, never
// StrIds, whose numbering may vary with interning order).

// Fused fragments use the same tuning-provided morsel grain as the BAT
// kernels (ctx->tuning.morsel_rows — never thread-derived), so pipeline
// morsels and kernel partitions stay aligned.

// A symbolic column: one of the fragment's input columns (left/right
// by position) or a morsel-local computed slot.
struct PipeRef {
  enum Kind : uint8_t { kLeftCol, kRightCol, kComputed };
  Kind kind = kLeftCol;
  size_t idx = 0;
};

// One fused operator application. `op` is restricted to the fusable
// row-local kinds; kProject never appears (projection is resolved at
// compile time into the output references).
struct PipeStep {
  OpKind op = OpKind::kSelect;
  PipeRef a, b;        // inputs (kSelect: a = predicate)
  size_t out_slot = 0; // computed slot written by kAttach/kFun1/kFun2
  Fun1 fun1 = Fun1::kNot;
  Fun2 fun2 = Fun2::kAdd;
  ColType attach_type = ColType::kInt;
  Item attach_val{ItemKind::kInt, 0};
};

struct PipeProgram {
  std::vector<PipeStep> steps;
  // Output schema of the fragment tail, in legacy column order.
  std::vector<std::string> out_names;
  std::vector<PipeRef> out_refs;
  std::vector<ColType> out_types;
  // Types of the computed slots (for typed empty outputs).
  std::vector<ColType> slot_types;
};

ColType Fun1ResultType(Fun1 f) {
  switch (f) {
    case Fun1::kNot:
    case Fun1::kItemToBool:
    case Fun1::kIsElement:
    case Fun1::kIsAttribute:
    case Fun1::kIsText:
    case Fun1::kIsNode:
    case Fun1::kIsInt:
    case Fun1::kIsDouble:
    case Fun1::kIsString:
    case Fun1::kIsBool:
      return ColType::kBool;
    default:
      return ColType::kItem;
  }
}

ColType Fun2ResultType(Fun2 f) {
  switch (f) {
    case Fun2::kAdd:
    case Fun2::kSub:
    case Fun2::kMul:
    case Fun2::kDiv:
    case Fun2::kIdiv:
    case Fun2::kMod:
    case Fun2::kConcat:
    case Fun2::kSubstrFrom:
    case Fun2::kSubstrLen:
      return ColType::kItem;
    default:
      return ColType::kBool;
  }
}

// Compile a fragment chain (head first, join head excluded — the
// caller feeds its pairs in as morsels) against the materialized input
// table(s). The environment tracks, per visible column name, where its
// values come from; name resolution is first-match, exactly like
// Table::FindCol on the legacy path.
Result<PipeProgram> CompileFragment(const std::vector<const Op*>& chain,
                                    const Table& left, const Table* right) {
  PipeProgram prog;
  struct EnvCol {
    std::string name;
    PipeRef ref;
    ColType type;
  };
  std::vector<EnvCol> env;
  for (size_t i = 0; i < left.num_cols(); ++i) {
    env.push_back(
        {left.name(i), {PipeRef::kLeftCol, i}, left.col(i)->type()});
  }
  if (right != nullptr) {
    for (size_t i = 0; i < right->num_cols(); ++i) {
      env.push_back(
          {right->name(i), {PipeRef::kRightCol, i}, right->col(i)->type()});
    }
  }
  auto lookup = [&env](const std::string& n) -> Result<EnvCol> {
    for (const EnvCol& c : env) {
      if (c.name == n) return c;
    }
    return Status::Internal("pipeline: no column '" + n + "'");
  };
  for (const Op* op : chain) {
    switch (op->kind) {
      case OpKind::kSelect: {
        PF_ASSIGN_OR_RETURN(EnvCol p, lookup(op->col));
        PipeStep s;
        s.op = OpKind::kSelect;
        s.a = p.ref;
        prog.steps.push_back(s);
        break;
      }
      case OpKind::kProject: {
        std::vector<EnvCol> nenv;
        nenv.reserve(op->proj.size());
        for (const auto& [nw, old] : op->proj) {
          PF_ASSIGN_OR_RETURN(EnvCol p, lookup(old));
          nenv.push_back({nw, p.ref, p.type});
        }
        env = std::move(nenv);
        break;
      }
      case OpKind::kAttach: {
        PipeStep s;
        s.op = OpKind::kAttach;
        s.out_slot = prog.slot_types.size();
        s.attach_type = op->types[0];
        s.attach_val = op->attach_val;
        prog.steps.push_back(s);
        prog.slot_types.push_back(op->types[0]);
        env.push_back(
            {op->out, {PipeRef::kComputed, s.out_slot}, op->types[0]});
        break;
      }
      case OpKind::kFun1: {
        PF_ASSIGN_OR_RETURN(EnvCol p, lookup(op->col));
        PipeStep s;
        s.op = OpKind::kFun1;
        s.fun1 = op->fun1;
        s.a = p.ref;
        s.out_slot = prog.slot_types.size();
        prog.steps.push_back(s);
        ColType t = Fun1ResultType(op->fun1);
        prog.slot_types.push_back(t);
        env.push_back({op->out, {PipeRef::kComputed, s.out_slot}, t});
        break;
      }
      case OpKind::kFun2: {
        PF_ASSIGN_OR_RETURN(EnvCol pa, lookup(op->col));
        PF_ASSIGN_OR_RETURN(EnvCol pb, lookup(op->col2));
        PipeStep s;
        s.op = OpKind::kFun2;
        s.fun2 = op->fun2;
        s.a = pa.ref;
        s.b = pb.ref;
        s.out_slot = prog.slot_types.size();
        prog.steps.push_back(s);
        ColType t = Fun2ResultType(op->fun2);
        prog.slot_types.push_back(t);
        env.push_back({op->out, {PipeRef::kComputed, s.out_slot}, t});
        break;
      }
      default:
        return Status::Internal("non-fusable operator in pipeline fragment");
    }
  }
  prog.out_names.reserve(env.size());
  for (const EnvCol& c : env) {
    prog.out_names.push_back(c.name);
    prog.out_refs.push_back(c.ref);
    prog.out_types.push_back(c.type);
  }
  return prog;
}

// One in-flight morsel: parallel row-index vectors into the fragment
// inputs (ri empty for single-input fragments) plus computed columns,
// all aligned by position.
struct PipeMorsel {
  IdxVec li, ri;
  std::vector<ColumnPtr> computed;
};

ColumnPtr ConstColumn(ColType t, const Item& v, size_t n) {
  auto col = std::make_shared<Column>(t);
  switch (t) {
    case ColType::kInt:
      col->ints().assign(n, v.AsInt());
      break;
    case ColType::kDbl:
      col->dbls().assign(n, v.AsDbl());
      break;
    case ColType::kStr:
      col->strs().assign(n, v.AsStr());
      break;
    case ColType::kBool:
      col->bools().assign(n, v.AsBool() ? 1 : 0);
      break;
    case ColType::kItem:
      col->items().assign(n, v);
      break;
  }
  return col;
}

void CompressIdx(IdxVec* v, const IdxVec& keep) {
  IdxVec out;
  out.reserve(keep.size());
  for (RowIdx k : keep) out.push_back((*v)[k]);
  *v = std::move(out);
}

// Resolve a symbolic column for the morsel's current rows: computed
// slots pass through; input columns gather the morsel's rows into a
// dense morsel-sized column (serial — the morsel IS the parallel unit).
Result<ColumnPtr> MorselColumn(const PipeMorsel& m, const Table& left,
                               const Table* right, const PipeRef& ref) {
  switch (ref.kind) {
    case PipeRef::kComputed:
      if (m.computed[ref.idx] == nullptr) {
        return Status::Internal("pipeline: computed slot read before write");
      }
      return m.computed[ref.idx];
    case PipeRef::kLeftCol:
      return bat::Gather(*left.col(ref.idx), m.li, nullptr);
    case PipeRef::kRightCol:
      return bat::Gather(*right->col(ref.idx), m.ri, nullptr);
  }
  return Status::Internal("pipeline: bad column reference");
}

Status RunMorsel(const PipeProgram& prog, const Table& left,
                 const Table* right, QueryContext* ctx, PipeMorsel* m) {
  m->computed.assign(prog.slot_types.size(), nullptr);
  for (const PipeStep& s : prog.steps) {
    size_t n = m->li.size();
    switch (s.op) {
      case OpKind::kSelect: {
        PF_ASSIGN_OR_RETURN(ColumnPtr pred,
                            MorselColumn(*m, left, right, s.a));
        const auto& bits = pred->bools();
        IdxVec keep;
        keep.reserve(n);
        for (size_t k = 0; k < n; ++k) {
          if (bits[k]) keep.push_back(static_cast<RowIdx>(k));
        }
        if (keep.size() == n) break;
        CompressIdx(&m->li, keep);
        if (!m->ri.empty()) CompressIdx(&m->ri, keep);
        for (ColumnPtr& c : m->computed) {
          if (c != nullptr) c = bat::Gather(*c, keep, nullptr);
        }
        break;
      }
      case OpKind::kAttach:
        m->computed[s.out_slot] = ConstColumn(s.attach_type, s.attach_val, n);
        break;
      case OpKind::kFun1: {
        PF_ASSIGN_OR_RETURN(ColumnPtr in, MorselColumn(*m, left, right, s.a));
        PF_ASSIGN_OR_RETURN(m->computed[s.out_slot],
                            EvalFun1(s.fun1, *in, ctx));
        break;
      }
      case OpKind::kFun2: {
        PF_ASSIGN_OR_RETURN(ColumnPtr a, MorselColumn(*m, left, right, s.a));
        PF_ASSIGN_OR_RETURN(ColumnPtr b, MorselColumn(*m, left, right, s.b));
        PF_ASSIGN_OR_RETURN(m->computed[s.out_slot],
                            EvalFun2(s.fun2, *a, *b, ctx));
        break;
      }
      default:
        return Status::Internal("pipeline: bad step kind");
    }
  }
  return Status::OK();
}

Result<std::vector<ColumnPtr>> MorselOutput(const PipeProgram& prog,
                                            const PipeMorsel& m,
                                            const Table& left,
                                            const Table* right) {
  std::vector<ColumnPtr> cols;
  cols.reserve(prog.out_refs.size());
  for (const PipeRef& ref : prog.out_refs) {
    PF_ASSIGN_OR_RETURN(ColumnPtr c, MorselColumn(m, left, right, ref));
    cols.push_back(std::move(c));
  }
  return cols;
}

void AppendColumn(Column* dst, const Column& src) {
  switch (dst->type()) {
    case ColType::kInt:
      dst->ints().insert(dst->ints().end(), src.ints().begin(),
                         src.ints().end());
      break;
    case ColType::kDbl:
      dst->dbls().insert(dst->dbls().end(), src.dbls().begin(),
                         src.dbls().end());
      break;
    case ColType::kStr:
      dst->strs().insert(dst->strs().end(), src.strs().begin(),
                         src.strs().end());
      break;
    case ColType::kBool:
      dst->bools().insert(dst->bools().end(), src.bools().begin(),
                          src.bools().end());
      break;
    case ColType::kItem:
      dst->items().insert(dst->items().end(), src.items().begin(),
                          src.items().end());
      break;
  }
}

// Materialize the fragment's output BAT: per-morsel output columns
// concatenated in chunk order.
Table ConcatChunks(const PipeProgram& prog,
                   const std::vector<std::vector<ColumnPtr>>& outs) {
  Table t;
  for (size_t c = 0; c < prog.out_refs.size(); ++c) {
    auto col = std::make_shared<Column>(prog.out_types[c]);
    for (const auto& chunk : outs) {
      AppendColumn(col.get(), *chunk[c]);
    }
    t.AddCol(prog.out_names[c], std::move(col));
  }
  return t;
}

// --- per-op evaluation ----------------------------------------------------

class Exec {
 public:
  explicit Exec(QueryContext* ctx) : ctx_(ctx) {}

  Result<Table> Run(const alg::OpPtr& root) {
    bool pipe = ctx_->pipeline;
    // Profiling is a single predictable branch per operator when off:
    // no timer calls, no map writes, no allocation on the hot path.
    bool prof = ctx_->profile;
    QueryCache* cache = ctx_->result_cache;
    // Evaluation order: iterative post-order over the DAG (children
    // before parents, each node once), pruned at subplan-cache hits —
    // a served subtree is never descended into, so its operators cost
    // nothing. Nodes it shares with the rest of the plan are still
    // reached through their other parents. Misses are remembered and
    // published after evaluation, outside any timed region.
    std::vector<const alg::OpPtr*> order;
    std::vector<const alg::OpPtr*> publish;
    {
      struct Frame {
        const alg::OpPtr* op;
        size_t child = 0;
      };
      std::unordered_set<const Op*> visited;
      std::vector<Frame> stack;
      auto enter = [&](const alg::OpPtr& p) {
        if (!visited.insert(p.get()).second) return;
        // Consult the cache at candidates only when the node owns a
        // materialized result: fused fragment interiors never do (the
        // tail evaluates the whole chain), so a hit there would leave
        // the fragment half-pruned.
        if (cache && p->cache_cand &&
            !(pipe && p->pipe_frag >= 0 && !p->pipe_tail)) {
          int64_t t0 = prof ? ProfileNowNs() : 0;
          Table t;
          if (cache->LookupSubplan(*p, &t)) {
            ctx_->subplan_cache_hits++;
            if (prof) {
              OpProfileRec& rec = recs_[p.get()];
              rec.cached = true;
              rec.wall_ns = ProfileNowNs() - t0;
              rec.out_rows = static_cast<int64_t>(t.rows());
              rec.out_bytes = static_cast<int64_t>(t.ByteSize());
            }
            memo_.emplace(p.get(), std::move(t));
            return;  // subtree served; no descent
          }
          ctx_->subplan_cache_misses++;
          publish.push_back(&p);
        }
        stack.push_back(Frame{&p});
      };
      enter(root);
      while (!stack.empty()) {
        Frame f = stack.back();
        if (f.child < (*f.op)->children.size()) {
          stack.back().child++;
          enter((*f.op)->children[f.child]);  // may grow the stack
        } else {
          order.push_back(f.op);
          stack.pop_back();
        }
      }
    }
    // Cost-based admission currency: the measured wall time of
    // evaluating each publish candidate's subtree. Those operators are
    // timed even when profiling is off — candidate nodes only, so a
    // query with no publishable candidates still runs a timer-free hot
    // path.
    std::unordered_set<const Op*> costed_ops;
    for (const alg::OpPtr* opp : publish) {
      std::vector<const Op*> dfs = {opp->get()};
      while (!dfs.empty()) {
        const Op* op = dfs.back();
        dfs.pop_back();
        if (!costed_ops.insert(op).second) continue;
        for (const auto& c : op->children) dfs.push_back(c.get());
      }
    }
    std::unordered_map<const Op*, int64_t> eval_ns;
    for (const alg::OpPtr* opp : order) {
      Op* op = opp->get();
      bool fragment = pipe && op->pipe_frag >= 0;
      // Checkpoint: probe first (it may fire the token), then the
      // cancellation/limit checks. The probe sees every operator —
      // fused interiors included — so fault injection targets the same
      // plan positions whether or not pipelining fused them.
      if (ctx_->op_probe) ctx_->op_probe(*op, ctx_->cancel_token);
      if (fragment && !op->pipe_tail) {
        // Interior fragment members never materialize: the tail
        // evaluates the whole chain in one fused pass.
        if (prof) recs_[op].fused = true;
        continue;
      }
      PF_RETURN_NOT_OK(Checkpoint());
      bool costed = !costed_ops.empty() && costed_ops.count(op) > 0;
      int64_t t0 = (prof || costed) ? ProfileNowNs() : 0;
      Table t;
      if (fragment) {
        frag_morsels_ = 0;
        PF_ASSIGN_OR_RETURN(t, EvalFragment(*op));
      } else {
        PF_ASSIGN_OR_RETURN(t, EvalOne(*op));
      }
      int64_t wall = (prof || costed) ? ProfileNowNs() - t0 : 0;
      if (costed) eval_ns.emplace(op, wall);
      if (prof) {
        OpProfileRec& rec = recs_[op];
        rec.wall_ns = wall;
        rec.out_rows = static_cast<int64_t>(t.rows());
        rec.out_bytes = static_cast<int64_t>(t.ByteSize());
        rec.morsels = fragment ? frag_morsels_ : MorselCount(*op, t);
      }
      if (ctx_->mem_limit_bytes > 0) {
        mem_charged_ += static_cast<int64_t>(t.ByteSize());
        if (mem_charged_ > ctx_->mem_limit_bytes) {
          return Status::ResourceExhausted(
              "query memory budget exceeded (" +
              std::to_string(mem_charged_) + " > " +
              std::to_string(ctx_->mem_limit_bytes) + " bytes materialized)");
        }
      }
      memo_.emplace(op, std::move(t));
    }
    if (cache) {
      for (const alg::OpPtr* opp : publish) {
        // The candidate's cost: summed eval wall time over its subtree.
        // Fragment interiors carry 0 (the tail's time covers the whole
        // chain) and subtrees pruned by nested cache hits carry 0 (a
        // conservative under-count — cheaper than re-evaluating).
        int64_t cost_ns = 0;
        std::vector<const Op*> dfs = {opp->get()};
        std::unordered_set<const Op*> seen;
        while (!dfs.empty()) {
          const Op* op = dfs.back();
          dfs.pop_back();
          if (!seen.insert(op).second) continue;
          auto it = eval_ns.find(op);
          if (it != eval_ns.end()) cost_ns += it->second;
          for (const auto& c : op->children) dfs.push_back(c.get());
        }
        if (cache->InsertSubplan(*opp, memo_.at(opp->get()), cost_ns,
                                 ctx_->cache_generation)) {
          ctx_->subplan_cache_admitted++;
        } else {
          ctx_->subplan_cache_rejects++;
        }
      }
    }
    if (prof) {
      ctx_->profile_result = BuildProfileTree(root, recs_, *ctx_->pool());
    }
    return memo_.at(root.get());
  }

 private:
  const Table& Child(const Op& op, size_t i) {
    return memo_.at(op.children[i].get());
  }

  /// Cooperative cancellation checkpoint: OK while the query may keep
  /// running. Called between operators; morsel loops poll the token
  /// directly (TokenCheck) so long fused scans abort mid-operator too.
  Status Checkpoint() {
    PF_RETURN_NOT_OK(TokenCheck());
    return Status::OK();
  }

  Status TokenCheck() {
    if (ctx_->cancel_token != nullptr) {
      PF_RETURN_NOT_OK(ctx_->cancel_token->Check());
    }
    return Status::OK();
  }

  /// Morsel decomposition of a materialized (non-fragment) operator:
  /// chunk count of its major input (largest child, or its own output
  /// for leaves) under the fixed kernel grain. Fragment tails instead
  /// report the exact number of fused morsels executed.
  int64_t MorselCount(const Op& op, const Table& out) const {
    size_t basis = out.rows();
    for (const auto& c : op.children) {
      auto it = memo_.find(c.get());
      if (it != memo_.end()) basis = std::max(basis, it->second.rows());
    }
    return static_cast<int64_t>(ThreadPool::NumChunks(basis, morsel()));
  }

  // Evaluate the fragment ending at `tail` as one fused morsel pass.
  Result<Table> EvalFragment(const Op& tail) {
    // Reconstruct the chain head-first. Interior members are exactly
    // the ops sharing the tail's fragment id along the unary spine.
    std::vector<const Op*> chain;
    for (const Op* cur = &tail;;) {
      chain.push_back(cur);
      if (alg::IsPipelineJoinOp(cur->kind)) break;
      const Op* c = cur->children[0].get();
      if (c->pipe_frag != tail.pipe_frag) break;
      cur = c;
    }
    std::reverse(chain.begin(), chain.end());

    PipelineExecStats& ps = ctx_->pipe_stats;
    ps.fragments++;
    ps.fused_ops += static_cast<int64_t>(chain.size());
    ps.max_chain =
        std::max(ps.max_chain, static_cast<int64_t>(chain.size()));
    for (const Op* op : chain) {
      ps.by_kind[static_cast<size_t>(op->kind)]++;
    }

    const Op& head = *chain.front();
    if (alg::IsPipelineJoinOp(head.kind)) {
      const Table& l = Child(head, 0);
      const Table& r = Child(head, 1);
      PF_ASSIGN_OR_RETURN(ColumnPtr lk, l.GetCol(head.col));
      PF_ASSIGN_OR_RETURN(ColumnPtr rk, r.GetCol(head.col2));
      if (chain.size() == 1) {
        // Bare join: fused probe+gather kernel, no pair vectors.
        frag_morsels_ = static_cast<int64_t>(
            ThreadPool::NumChunks(l.rows(), morsel()));
        Table out;
        if (head.kind == OpKind::kEquiJoin) {
          PF_RETURN_NOT_OK(bat::HashJoinGather(
              l, r, *lk, *rk, *ctx_->pool(), &out, tp(), kt()));
        } else {
          PF_RETURN_NOT_OK(bat::ThetaJoinGather(
              l, r, *lk, *rk, head.cmp, *ctx_->pool(), &out, tp()));
        }
        return out;
      }
      // Join-headed chain: each probe chunk's pair list is one morsel.
      bat::JoinPairChunks pc;
      if (head.kind == OpKind::kEquiJoin) {
        PF_RETURN_NOT_OK(bat::HashJoinPairsChunked(*lk, *rk, *ctx_->pool(),
                                                   &pc, tp(), kt()));
      } else {
        PF_RETURN_NOT_OK(bat::ThetaJoinPairsChunked(
            *lk, *rk, head.cmp, *ctx_->pool(), &pc, tp()));
      }
      std::vector<const Op*> body(chain.begin() + 1, chain.end());
      PF_ASSIGN_OR_RETURN(PipeProgram prog, CompileFragment(body, l, &r));
      frag_morsels_ = static_cast<int64_t>(pc.li.size());
      std::vector<std::vector<ColumnPtr>> outs(pc.li.size());
      PF_RETURN_NOT_OK(ParallelForStatus(
          tp(), pc.li.size(), 1,
          [&](size_t c, size_t, size_t) -> Status {
            PF_RETURN_NOT_OK(TokenCheck());
            PipeMorsel m;
            m.li = std::move(pc.li[c]);
            m.ri = std::move(pc.ri[c]);
            PF_RETURN_NOT_OK(RunMorsel(prog, l, &r, ctx_, &m));
            PF_ASSIGN_OR_RETURN(outs[c], MorselOutput(prog, m, l, &r));
            return Status::OK();
          }));
      return ConcatChunks(prog, outs);
    }

    // Map-headed fragment over a single input.
    const Table& in = Child(head, 0);
    frag_morsels_ = static_cast<int64_t>(
        ThreadPool::NumChunks(in.rows(), morsel()));
    if (chain.size() == 1 && head.kind == OpKind::kSelect) {
      PF_ASSIGN_OR_RETURN(ColumnPtr pred, in.GetCol(head.col));
      return bat::FilterGather(in, *pred, tp(), kt());
    }
    PF_ASSIGN_OR_RETURN(PipeProgram prog,
                        CompileFragment(chain, in, nullptr));
    size_t n = in.rows();
    std::vector<std::vector<ColumnPtr>> outs(
        ThreadPool::NumChunks(n, morsel()));
    PF_RETURN_NOT_OK(ParallelForStatus(
        tp(), n, morsel(),
        [&](size_t c, size_t lo, size_t hi) -> Status {
          PF_RETURN_NOT_OK(TokenCheck());
          PipeMorsel m;
          m.li.reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            m.li.push_back(static_cast<RowIdx>(i));
          }
          PF_RETURN_NOT_OK(RunMorsel(prog, in, nullptr, ctx_, &m));
          PF_ASSIGN_OR_RETURN(outs[c], MorselOutput(prog, m, in, nullptr));
          return Status::OK();
        }));
    return ConcatChunks(prog, outs);
  }

  Result<Table> EvalOne(const Op& op) {
    switch (op.kind) {
      case OpKind::kLitTable: {
        Table t;
        for (size_t c = 0; c < op.names.size(); ++c) {
          auto col = std::make_shared<Column>(op.types[c]);
          for (const auto& row : op.rows) {
            const Item& cell = row[c];
            switch (op.types[c]) {
              case ColType::kInt:
                col->ints().push_back(cell.AsInt());
                break;
              case ColType::kDbl:
                col->dbls().push_back(cell.AsDbl());
                break;
              case ColType::kStr:
                col->strs().push_back(cell.AsStr());
                break;
              case ColType::kBool:
                col->bools().push_back(cell.AsBool() ? 1 : 0);
                break;
              case ColType::kItem:
                col->items().push_back(cell);
                break;
            }
          }
          t.AddCol(op.names[c], std::move(col));
        }
        return t;
      }
      case OpKind::kProject: {
        const Table& in = Child(op, 0);
        Table t;
        for (const auto& [nw, old] : op.proj) {
          PF_ASSIGN_OR_RETURN(ColumnPtr c, in.GetCol(old));
          t.AddCol(nw, c);
        }
        return t;
      }
      case OpKind::kAttach: {
        const Table& in = Child(op, 0);
        Table t = in;
        size_t n = in.rows();
        auto col = std::make_shared<Column>(op.types[0]);
        switch (op.types[0]) {
          case ColType::kInt:
            col->ints().assign(n, op.attach_val.AsInt());
            break;
          case ColType::kDbl:
            col->dbls().assign(n, op.attach_val.AsDbl());
            break;
          case ColType::kStr:
            col->strs().assign(n, op.attach_val.AsStr());
            break;
          case ColType::kBool:
            col->bools().assign(n, op.attach_val.AsBool() ? 1 : 0);
            break;
          case ColType::kItem:
            col->items().assign(n, op.attach_val);
            break;
        }
        t.AddCol(op.out, std::move(col));
        return t;
      }
      case OpKind::kSelect: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(ColumnPtr pred, in.GetCol(op.col));
        IdxVec idx = bat::FilterIndices(*pred, tp(), kt());
        return bat::GatherTable(in, idx, tp());
      }
      case OpKind::kDisjointUnion:
        return bat::UnionAll(Child(op, 0), Child(op, 1));
      case OpKind::kDifference: {
        PF_ASSIGN_OR_RETURN(IdxVec idx,
                            bat::DifferenceIndices(Child(op, 0), Child(op, 1),
                                                   op.keys, tp()));
        return bat::GatherTable(Child(op, 0), idx, tp());
      }
      case OpKind::kDistinct: {
        PF_ASSIGN_OR_RETURN(
            IdxVec idx, bat::DistinctIndices(Child(op, 0), op.keys, tp()));
        return bat::GatherTable(Child(op, 0), idx, tp());
      }
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin: {
        const Table& l = Child(op, 0);
        const Table& r = Child(op, 1);
        PF_ASSIGN_OR_RETURN(ColumnPtr lk, l.GetCol(op.col));
        PF_ASSIGN_OR_RETURN(ColumnPtr rk, r.GetCol(op.col2));
        IdxVec li, ri;
        if (op.kind == OpKind::kEquiJoin) {
          PF_RETURN_NOT_OK(bat::HashJoinIndices(*lk, *rk, *ctx_->pool(),
                                                &li, &ri, tp(), kt()));
        } else {
          PF_RETURN_NOT_OK(bat::ThetaJoinIndices(
              *lk, *rk, op.cmp, *ctx_->pool(), &li, &ri, tp()));
        }
        Table t;
        for (size_t i = 0; i < l.num_cols(); ++i) {
          t.AddCol(l.name(i), bat::Gather(*l.col(i), li, tp()));
        }
        for (size_t i = 0; i < r.num_cols(); ++i) {
          t.AddCol(r.name(i), bat::Gather(*r.col(i), ri, tp()));
        }
        return t;
      }
      case OpKind::kCross: {
        const Table& l = Child(op, 0);
        const Table& r = Child(op, 1);
        IdxVec li, ri;
        li.reserve(l.rows() * r.rows());
        ri.reserve(l.rows() * r.rows());
        for (size_t i = 0; i < l.rows(); ++i) {
          for (size_t j = 0; j < r.rows(); ++j) {
            li.push_back(static_cast<bat::RowIdx>(i));
            ri.push_back(static_cast<bat::RowIdx>(j));
          }
        }
        Table t;
        for (size_t i = 0; i < l.num_cols(); ++i) {
          t.AddCol(l.name(i), bat::Gather(*l.col(i), li, tp()));
        }
        for (size_t i = 0; i < r.num_cols(); ++i) {
          t.AddCol(r.name(i), bat::Gather(*r.col(i), ri, tp()));
        }
        return t;
      }
      case OpKind::kRowNum: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(
            ColumnPtr col, bat::Mark(in, op.part, op.order, *ctx_->pool(),
                                     op.order_desc, tp(), kt()));
        Table t = in;
        t.AddCol(op.out, std::move(col));
        return t;
      }
      case OpKind::kStep:
        return EvalStep(op);
      case OpKind::kPathScan:
        return EvalPathScan(op);
      case OpKind::kDocRoot: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(ColumnPtr iter, in.GetCol("iter"));
        PF_ASSIGN_OR_RETURN(ColumnPtr item, in.GetCol("item"));
        auto out_iter = Column::MakeInt(in.rows());
        auto out_item = Column::MakeItem(in.rows());
        for (size_t i = 0; i < in.rows(); ++i) {
          const Item& it = item->items()[i];
          if (!it.IsStringLike()) {
            return Status::TypeError("fn:doc expects a string");
          }
          PF_ASSIGN_OR_RETURN(
              xml::FragId frag,
              ctx_->db()->FindDocument(
                  std::string(ctx_->pool()->Get(it.AsStr()))));
          out_iter->ints().push_back(iter->ints()[i]);
          out_item->items().push_back(Item::Node(frag, 0));
        }
        Table t;
        t.AddCol("iter", std::move(out_iter));
        t.AddCol("item", std::move(out_item));
        return t;
      }
      case OpKind::kElemConstr:
        return EvalElem(op);
      case OpKind::kTextConstr:
        return EvalTextOrAttr(op, /*is_attr=*/false);
      case OpKind::kAttrConstr:
        return EvalTextOrAttr(op, /*is_attr=*/true);
      case OpKind::kStrJoin:
        return EvalStrJoin(op);
      case OpKind::kFun1: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(ColumnPtr c, in.GetCol(op.col));
        PF_ASSIGN_OR_RETURN(ColumnPtr out, EvalFun1(op.fun1, *c, ctx_));
        Table t = in;
        t.AddCol(op.out, std::move(out));
        return t;
      }
      case OpKind::kFun2: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(ColumnPtr a, in.GetCol(op.col));
        PF_ASSIGN_OR_RETURN(ColumnPtr b, in.GetCol(op.col2));
        PF_ASSIGN_OR_RETURN(ColumnPtr out, EvalFun2(op.fun2, *a, *b, ctx_));
        Table t = in;
        t.AddCol(op.out, std::move(out));
        return t;
      }
      case OpKind::kAggr:
        return bat::GroupAgg(Child(op, 0), op.col, op.col2, op.agg,
                             *ctx_->pool(), op.col, op.out, tp(), kt());
      case OpKind::kSort: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(IdxVec perm,
                            bat::SortPerm(in, op.order, *ctx_->pool(),
                                          op.order_desc, tp(), kt()));
        return bat::GatherTable(in, perm, tp());
      }
      case OpKind::kRank: {
        const Table& in = Child(op, 0);
        size_t n = in.rows();
        auto col = Column::MakeInt(n);
        for (size_t i = 0; i < n; ++i) {
          col->ints().push_back(static_cast<int64_t>(i) + 1);
        }
        Table t = in;
        t.AddCol(op.out, std::move(col));
        return t;
      }
      case OpKind::kSerialize: {
        const Table& in = Child(op, 0);
        PF_ASSIGN_OR_RETURN(IdxVec perm,
                            bat::SortPerm(in, {"iter", "pos"}, *ctx_->pool(),
                                          {}, tp(), kt()));
        return bat::GatherTable(in, perm, tp());
      }
    }
    return Status::Internal("unhandled operator in executor");
  }

  // One (iter, fragment) context group of a Step: a slice of the
  // deduplicated context-pre vector built by the grouping scan.
  struct StepGroup {
    int64_t iter = 0;
    uint32_t frag = 0;
    size_t ctx_begin = 0, ctx_end = 0;
  };

  Result<Table> EvalStep(const Op& op) {
    const Table& in = Child(op, 0);
    PF_ASSIGN_OR_RETURN(ColumnPtr iter_c, in.GetCol("iter"));
    PF_ASSIGN_OR_RETURN(ColumnPtr item_c, in.GetCol("item"));
    const auto& iters = iter_c->ints();
    const auto& items = item_c->items();
    size_t n = in.rows();

    // Order rows by (iter, item.raw). Parallel evaluation sorts fixed
    // chunks and merges them; rows that tie are bit-identical under
    // this key, so any tie order yields the same grouping (contexts are
    // deduplicated below) and the output stays byte-identical at every
    // thread count.
    IdxVec perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<bat::RowIdx>(i);
    auto lt = [&](bat::RowIdx a, bat::RowIdx b) {
      if (iters[a] != iters[b]) return iters[a] < iters[b];
      return items[a].raw < items[b].raw;
    };
    // Run length from the kernel tuning (a function of n and the grain
    // only, never thread-derived). The merge levels split every
    // pairwise merge at output diagonals via merge-path binary search
    // (ties to the lower run, std::merge's rule), so no level — not
    // even the final whole-array merge — runs serially.
    const size_t srun = kt().sort_chunk_rows;
    ThreadPool* pool = tp();
    if (pool != nullptr && n >= 2 * srun) {
      ParallelFor(pool, n, srun, [&](size_t, size_t lo, size_t hi) {
        std::sort(perm.begin() + lo, perm.begin() + hi, lt);
      });
      auto split = [&](const bat::RowIdx* a, size_t na, const bat::RowIdx* b,
                       size_t nb, size_t diag) {
        size_t lo = diag > nb ? diag - nb : 0;
        size_t hi = std::min(diag, na);
        while (lo < hi) {
          size_t mid = lo + (hi - lo) / 2;
          if (!lt(b[diag - 1 - mid], a[mid])) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        return lo;
      };
      IdxVec buf(n);
      IdxVec* src = &perm;
      IdxVec* dst = &buf;
      struct Seg {
        size_t a, mid, b, out_lo, out_hi;
      };
      std::vector<Seg> segs;
      for (size_t width = srun; width < n; width *= 2) {
        segs.clear();
        for (size_t a = 0; a < n; a += 2 * width) {
          size_t mid = std::min(n, a + width);
          size_t b = std::min(n, a + 2 * width);
          for (size_t lo = a; lo < b; lo += srun) {
            segs.push_back({a, mid, b, lo, std::min(b, lo + srun)});
          }
        }
        ParallelFor(pool, segs.size(), 1, [&](size_t si, size_t, size_t) {
          const Seg& sg = segs[si];
          const bat::RowIdx* av = src->data() + sg.a;
          size_t na = sg.mid - sg.a;
          const bat::RowIdx* bv = src->data() + sg.mid;
          size_t nb = sg.b - sg.mid;
          size_t i0 = split(av, na, bv, nb, sg.out_lo - sg.a);
          size_t i1 = split(av, na, bv, nb, sg.out_hi - sg.a);
          size_t j0 = (sg.out_lo - sg.a) - i0;
          size_t j1 = (sg.out_hi - sg.a) - i1;
          std::merge(av + i0, av + i1, bv + j0, bv + j1,
                     dst->begin() + static_cast<ptrdiff_t>(sg.out_lo), lt);
        });
        std::swap(src, dst);
      }
      if (src != &perm) perm = std::move(*src);
    } else {
      std::sort(perm.begin(), perm.end(), lt);
    }

    // Serial grouping scan: one group per (iter, fragment) run, with
    // consecutive duplicate context nodes dropped.
    std::vector<StepGroup> groups;
    std::vector<xml::Pre> ctxs;
    size_t i = 0;
    while (i < n) {
      int64_t iter = iters[perm[i]];
      size_t j = i;
      while (j < n && iters[perm[j]] == iter) ++j;
      // Per fragment within [i, j).
      size_t k = i;
      while (k < j) {
        const Item& first = items[perm[k]];
        if (!first.IsNode()) {
          return Status::TypeError("path step applied to an atomic value");
        }
        uint32_t frag = first.NodeFrag();
        size_t begin = ctxs.size();
        size_t m = k;
        while (m < j && items[perm[m]].NodeFrag() == frag) {
          xml::Pre p = items[perm[m]].NodePre();
          if (ctxs.size() == begin || ctxs.back() != p) ctxs.push_back(p);
          ++m;
        }
        groups.push_back({iter, frag, begin, ctxs.size()});
        k = m;
      }
      i = j;
    }

    auto eval_group = [&](const StepGroup& g, std::vector<xml::Pre>* results,
                          accel::StaircaseStats* stats, ThreadPool* inner) {
      // Cancellation granularity inside the step kernel: one poll per
      // (iter, fragment) group. A fired token skips the remaining
      // groups' work; the caller below turns it into the error.
      if (ctx_->cancel_token != nullptr && ctx_->cancel_token->fired()) {
        return;
      }
      const xml::Document& doc = ctx_->doc(g.frag);
      std::vector<xml::Pre> contexts(ctxs.begin() + g.ctx_begin,
                                     ctxs.begin() + g.ctx_end);
      if (ctx_->use_staircase) {
        accel::StaircaseJoin(doc, contexts, op.axis, op.test, results, stats,
                             inner,
                             ctx_->path_summary ? doc.summary() : nullptr);
      } else {
        // Ablation baseline: per-context naive region selection, then
        // an explicit sort + duplicate elimination.
        for (xml::Pre c : contexts) {
          accel::NaiveStep(doc, c, op.axis, op.test, results);
        }
        std::sort(results->begin(), results->end());
        results->erase(std::unique(results->begin(), results->end()),
                       results->end());
      }
    };

    // Evaluate the groups. A lone group (the common single-document
    // case) keeps the pool for the staircase join's own morsel-parallel
    // scan; with many groups the groups themselves are the morsels (the
    // nested join call then runs inline) and per-group stats are folded
    // back in group order, matching the serial accumulation.
    std::vector<std::vector<xml::Pre>> gres(groups.size());
    if (groups.size() <= 1) {
      if (!groups.empty()) {
        eval_group(groups[0], &gres[0], &ctx_->scj_stats, pool);
      }
    } else {
      std::vector<accel::StaircaseStats> gstats(groups.size());
      ParallelFor(pool, groups.size(), 1,
                  [&](size_t, size_t lo, size_t hi) {
                    for (size_t g = lo; g < hi; ++g) {
                      eval_group(groups[g], &gres[g], &gstats[g], pool);
                    }
                  });
      for (const auto& s : gstats) ctx_->scj_stats.Merge(s);
    }
    PF_RETURN_NOT_OK(TokenCheck());

    // Scatter each group's results into its exact output slice.
    std::vector<size_t> off(groups.size() + 1, 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      off[g + 1] = off[g] + gres[g].size();
    }
    auto out_iter = Column::MakeInt(off.back());
    auto out_item = Column::MakeItem(off.back());
    out_iter->ints().resize(off.back());
    out_item->items().resize(off.back());
    ParallelFor(pool, groups.size(), 1, [&](size_t, size_t lo, size_t hi) {
      for (size_t g = lo; g < hi; ++g) {
        const xml::Document& doc = ctx_->doc(groups[g].frag);
        size_t o = off[g];
        for (xml::Pre r : gres[g]) {
          out_iter->ints()[o] = groups[g].iter;
          out_item->items()[o] = doc.kind(r) == xml::NodeKind::kAttr
                                     ? Item::Attr(groups[g].frag, r)
                                     : Item::Node(groups[g].frag, r);
          ++o;
        }
      }
    });
    Table t;
    t.AddCol("iter", std::move(out_iter));
    t.AddCol("item", std::move(out_item));
    return t;
  }

  static xml::PathSummary::StepAxis ToSumAxis(accel::Axis a) {
    switch (a) {
      case accel::Axis::kDescendant:
        return xml::PathSummary::StepAxis::kDescendant;
      case accel::Axis::kDescendantOrSelf:
        return xml::PathSummary::StepAxis::kDescendantOrSelf;
      case accel::Axis::kSelf:
        return xml::PathSummary::StepAxis::kSelf;
      case accel::Axis::kAttribute:
        return xml::PathSummary::StepAxis::kAttribute;
      default:
        return xml::PathSummary::StepAxis::kChild;
    }
  }

  static xml::PathSummary::StepTest ToSumTest(accel::NodeTest::Kind k) {
    switch (k) {
      case accel::NodeTest::Kind::kName:
        return xml::PathSummary::StepTest::kName;
      case accel::NodeTest::Kind::kElement:
        return xml::PathSummary::StepTest::kElement;
      default:
        return xml::PathSummary::StepTest::kAnyNode;
    }
  }

  /// Evaluate a collapsed structural chain (opt/path_rewrite.h). The
  /// child is the chain's fn:doc access, so each input row is a
  /// document root; when the document carries a path summary the whole
  /// chain is resolved on summary paths and the result is read from
  /// the tag partitions without touching the encoding
  /// (StaircaseStats::structural_answers). Fragments without a summary
  /// — or unexpected non-root contexts — fall back to one staircase
  /// join per chain step: same results, same order.
  Result<Table> EvalPathScan(const Op& op) {
    const Table& in = Child(op, 0);
    PF_ASSIGN_OR_RETURN(ColumnPtr iter_c, in.GetCol("iter"));
    PF_ASSIGN_OR_RETURN(ColumnPtr item_c, in.GetCol("item"));
    const auto& iters = iter_c->ints();
    const auto& items = item_c->items();
    size_t n = in.rows();

    // Inputs are document roots (a handful of rows per query), so the
    // grouping and the per-group evaluation run serially; stats
    // accumulate in group order at every thread count. Grouping logic
    // matches EvalStep: one group per (iter, fragment) run, consecutive
    // duplicate contexts dropped.
    IdxVec perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<bat::RowIdx>(i);
    std::sort(perm.begin(), perm.end(), [&](bat::RowIdx a, bat::RowIdx b) {
      if (iters[a] != iters[b]) return iters[a] < iters[b];
      return items[a].raw < items[b].raw;
    });
    std::vector<StepGroup> groups;
    std::vector<xml::Pre> ctxs;
    size_t i = 0;
    while (i < n) {
      int64_t iter = iters[perm[i]];
      size_t j = i;
      while (j < n && iters[perm[j]] == iter) ++j;
      size_t k = i;
      while (k < j) {
        const Item& first = items[perm[k]];
        if (!first.IsNode()) {
          return Status::TypeError("path step applied to an atomic value");
        }
        uint32_t frag = first.NodeFrag();
        size_t begin = ctxs.size();
        size_t m = k;
        while (m < j && items[perm[m]].NodeFrag() == frag) {
          xml::Pre p = items[perm[m]].NodePre();
          if (ctxs.size() == begin || ctxs.back() != p) ctxs.push_back(p);
          ++m;
        }
        groups.push_back({iter, frag, begin, ctxs.size()});
        k = m;
      }
      i = j;
    }

    std::vector<std::vector<xml::Pre>> gres(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      PF_RETURN_NOT_OK(TokenCheck());
      const StepGroup& grp = groups[g];
      const xml::Document& doc = ctx_->doc(grp.frag);
      const xml::PathSummary* sum =
          ctx_->path_summary ? doc.summary() : nullptr;
      std::vector<xml::Pre> contexts(ctxs.begin() + grp.ctx_begin,
                                     ctxs.begin() + grp.ctx_end);
      bool root_ctx = contexts.size() == 1 && contexts[0] == 0;
      if (sum != nullptr && root_ctx && doc.num_nodes() > 0) {
        std::vector<int32_t> paths = {0};
        std::vector<int32_t> next;
        for (const alg::PathStep& s : op.path) {
          sum->ResolveStep(ToSumAxis(s.axis), ToSumTest(s.test.kind),
                           s.test.name, paths, &next);
          paths.swap(next);
          if (paths.empty()) break;
        }
        sum->GatherPartitions(paths, 0, doc.num_nodes() - 1, &gres[g]);
        ctx_->scj_stats.structural_answers += 1;
        ctx_->scj_stats.contexts_in += 1;
        ctx_->scj_stats.results += gres[g].size();
      } else {
        std::vector<xml::Pre> cur = std::move(contexts);
        std::vector<xml::Pre> nxt;
        for (const alg::PathStep& s : op.path) {
          nxt.clear();
          accel::StaircaseJoin(doc, cur, s.axis, s.test, &nxt,
                               &ctx_->scj_stats, tp(), sum);
          cur.swap(nxt);
          if (cur.empty()) break;
        }
        gres[g] = std::move(cur);
      }
    }

    std::vector<size_t> off(groups.size() + 1, 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      off[g + 1] = off[g] + gres[g].size();
    }
    auto out_iter = Column::MakeInt(off.back());
    auto out_item = Column::MakeItem(off.back());
    out_iter->ints().resize(off.back());
    out_item->items().resize(off.back());
    for (size_t g = 0; g < groups.size(); ++g) {
      const xml::Document& doc = ctx_->doc(groups[g].frag);
      size_t o = off[g];
      for (xml::Pre r : gres[g]) {
        out_iter->ints()[o] = groups[g].iter;
        out_item->items()[o] = doc.kind(r) == xml::NodeKind::kAttr
                                   ? Item::Attr(groups[g].frag, r)
                                   : Item::Node(groups[g].frag, r);
        ++o;
      }
    }
    Table t;
    t.AddCol("iter", std::move(out_iter));
    t.AddCol("item", std::move(out_item));
    return t;
  }

  /// Group an (iter, pos, item) table: iters in ascending order, items
  /// per iter sorted by pos.
  Result<std::vector<std::pair<int64_t, std::vector<Item>>>> GroupContent(
      const Table& in) {
    PF_ASSIGN_OR_RETURN(IdxVec perm,
                        bat::SortPerm(in, {"iter", "pos"}, *ctx_->pool(), {},
                                      tp(), kt()));
    PF_ASSIGN_OR_RETURN(ColumnPtr iter_c, in.GetCol("iter"));
    PF_ASSIGN_OR_RETURN(ColumnPtr item_c, in.GetCol("item"));
    std::vector<std::pair<int64_t, std::vector<Item>>> groups;
    for (bat::RowIdx r : perm) {
      int64_t it = iter_c->ints()[r];
      if (groups.empty() || groups.back().first != it) {
        groups.push_back({it, {}});
      }
      groups.back().second.push_back(item_c->items()[r]);
    }
    return groups;
  }

  Result<Table> EvalElem(const Op& op) {
    const Table& names = Child(op, 0);
    const Table& content = Child(op, 1);
    PF_ASSIGN_OR_RETURN(auto content_groups, GroupContent(content));
    std::unordered_map<int64_t, size_t> content_of;
    for (size_t g = 0; g < content_groups.size(); ++g) {
      content_of[content_groups[g].first] = g;
    }

    // One element per iter of the name relation (first name row wins).
    PF_ASSIGN_OR_RETURN(
        IdxVec perm,
        bat::SortPerm(names, {"iter"}, *ctx_->pool(), {}, tp(), kt()));
    PF_ASSIGN_OR_RETURN(ColumnPtr iter_c, names.GetCol("iter"));
    PF_ASSIGN_OR_RETURN(ColumnPtr item_c, names.GetCol("item"));

    auto out_iter = Column::MakeInt();
    auto out_item = Column::MakeItem();
    static const std::vector<Item> kNoContent;
    int64_t prev_iter = 0;
    bool have_prev = false;
    for (bat::RowIdx r : perm) {
      int64_t iter = iter_c->ints()[r];
      if (have_prev && iter == prev_iter) continue;  // first row per iter
      prev_iter = iter;
      have_prev = true;
      PF_ASSIGN_OR_RETURN(StrId name_id,
                          ItemAsString(ctx_, item_c->items()[r]));
      std::string name(ctx_->pool()->Get(name_id));
      auto cg = content_of.find(iter);
      const std::vector<Item>& items =
          cg == content_of.end() ? kNoContent : content_groups[cg->second].second;
      PF_ASSIGN_OR_RETURN(Item node, BuildElement(ctx_, name, items));
      out_iter->ints().push_back(iter);
      out_item->items().push_back(node);
    }
    Table t;
    t.AddCol("iter", std::move(out_iter));
    t.AddCol("item", std::move(out_item));
    return t;
  }

  Result<Table> EvalStrJoin(const Op& op) {
    const Table& content = Child(op, 0);
    const Table& seps = Child(op, 1);
    PF_ASSIGN_OR_RETURN(auto groups, GroupContent(content));
    // Separator per iter (singleton; defaults to "" when absent).
    PF_ASSIGN_OR_RETURN(ColumnPtr sep_iter, seps.GetCol("iter"));
    PF_ASSIGN_OR_RETURN(ColumnPtr sep_item, seps.GetCol("item"));
    std::unordered_map<int64_t, StrId> sep_of;
    for (size_t i = 0; i < seps.rows(); ++i) {
      PF_ASSIGN_OR_RETURN(StrId s,
                          ItemAsString(ctx_, sep_item->items()[i]));
      sep_of.emplace(sep_iter->ints()[i], s);
    }
    auto out_iter = Column::MakeInt(groups.size());
    auto out_item = Column::MakeItem(groups.size());
    for (const auto& [iter, items] : groups) {
      auto it = sep_of.find(iter);
      std::string sep(it == sep_of.end()
                          ? ""
                          : std::string(ctx_->pool()->Get(it->second)));
      std::string joined;
      for (size_t i = 0; i < items.size(); ++i) {
        PF_ASSIGN_OR_RETURN(StrId s, ItemAsString(ctx_, items[i]));
        if (i) joined += sep;
        joined += ctx_->pool()->Get(s);
      }
      out_iter->ints().push_back(iter);
      out_item->items().push_back(
          Item::Str(ctx_->pool()->Intern(joined)));
    }
    Table t;
    t.AddCol("iter", std::move(out_iter));
    t.AddCol("item", std::move(out_item));
    return t;
  }

  Result<Table> EvalTextOrAttr(const Op& op, bool is_attr) {
    const Table& content = Child(op, 0);
    PF_ASSIGN_OR_RETURN(auto groups, GroupContent(content));
    auto out_iter = Column::MakeInt(groups.size());
    auto out_item = Column::MakeItem(groups.size());
    for (const auto& [iter, items] : groups) {
      std::string joined;
      for (size_t i = 0; i < items.size(); ++i) {
        PF_ASSIGN_OR_RETURN(StrId s, ItemAsString(ctx_, items[i]));
        if (i) joined += ' ';
        joined += ctx_->pool()->Get(s);
      }
      out_iter->ints().push_back(iter);
      out_item->items().push_back(
          is_attr ? BuildAttribute(ctx_, op.out, joined)
                  : BuildText(ctx_, joined));
    }
    Table t;
    t.AddCol("iter", std::move(out_iter));
    t.AddCol("item", std::move(out_item));
    return t;
  }

  ThreadPool* tp() const { return ctx_->thread_pool(); }
  const bat::KernelTuning& kt() const { return ctx_->tuning; }
  size_t morsel() const { return ctx_->tuning.morsel_rows; }

  QueryContext* ctx_;
  std::unordered_map<const Op*, Table> memo_;
  std::unordered_map<const Op*, OpProfileRec> recs_;  // profiling only
  int64_t frag_morsels_ = 0;  // morsels of the last fused fragment
  int64_t mem_charged_ = 0;   // materialized bytes vs ctx mem budget
};

}  // namespace

Result<Table> Execute(const algebra::OpPtr& root, QueryContext* ctx) {
  Exec exec(ctx);
  return exec.Run(root);
}

bool PipelineDefault() {
  static const bool on = [] {
    const char* e = std::getenv("PF_PIPELINE");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return on;
}

}  // namespace pathfinder::engine

# Empty dependencies file for pf_xmark.
# This may be replaced when dependencies are built.

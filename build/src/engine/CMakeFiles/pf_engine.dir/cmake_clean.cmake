file(REMOVE_RECURSE
  "CMakeFiles/pf_engine.dir/executor.cc.o"
  "CMakeFiles/pf_engine.dir/executor.cc.o.d"
  "CMakeFiles/pf_engine.dir/node_build.cc.o"
  "CMakeFiles/pf_engine.dir/node_build.cc.o.d"
  "libpf_engine.a"
  "libpf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

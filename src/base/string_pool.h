#ifndef PATHFINDER_BASE_STRING_POOL_H_
#define PATHFINDER_BASE_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pathfinder {

/// Id of an interned string. Dense, starting at 0.
using StrId = uint32_t;

/// Append-only interning pool.
///
/// This is the "property BAT" of the paper's Section 3.1: node properties
/// (tag names, text content, attribute values) are kept unique here and
/// referenced by surrogate (StrId). Nodes with identical properties share
/// the same surrogate, which both avoids string comparisons at query time
/// and reduces storage.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Intern `s`, returning its (possibly pre-existing) surrogate.
  StrId Intern(std::string_view s);

  /// Look up an already-interned string; returns false if absent.
  bool Find(std::string_view s, StrId* id) const;

  /// The string for a surrogate. `id` must be valid.
  std::string_view Get(StrId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Total bytes of unique string payload (for storage accounting).
  size_t payload_bytes() const { return payload_bytes_; }

 private:
  // deque: element addresses are stable under growth, so the string_view
  // keys in index_ stay valid (a vector would move SSO buffers on
  // reallocation).
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, StrId> index_;
  size_t payload_bytes_ = 0;
};

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_STRING_POOL_H_

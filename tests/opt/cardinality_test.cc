// Cardinality-estimator property tests.
//
// The join orderer only needs estimates that *rank* join orders, so
// these tests pin properties, not exact numbers:
//
//   1. Estimates are strictly positive for every operator of every
//      XMark plan (a zero would zero out whole subtree costs).
//   2. Selection is monotone: est(select(X)) <= est(X), and stacking
//      selections never increases the estimate.
//   3. Accuracy, loosely: the q-error between the estimate and the
//      profiler's measured out_rows on XMark sf 0.01 stays within a
//      generous bound for most operators. This is a tripwire for
//      estimator regressions (e.g. losing the document statistics),
//      not a precision claim.

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/op.h"
#include "api/pathfinder.h"
#include "bat/item.h"
#include "engine/profile.h"
#include "opt/cost.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/database.h"

namespace pathfinder {
namespace {

xml::Database* Db() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    auto doc = xmark::GenerateXMark(0.01, 42, d->pool());
    if (!doc.ok()) {
      ADD_FAILURE() << "XMark generation failed: "
                    << doc.status().ToString();
      return d;
    }
    d->AddDocument("auction.xml", std::move(*doc));
    return d;
  }();
  return db;
}

// ---------------------------------------------------------------------------
// 1. Strict positivity on every XMark plan operator.

class XMarkCardinalityTest : public ::testing::TestWithParam<int> {};

TEST_P(XMarkCardinalityTest, AllEstimatesPositive) {
  Pathfinder pf(Db());
  QueryOptions opts;
  opts.context_doc = "auction.xml";
  auto r = pf.Run(xmark::GetXMarkQuery(GetParam()).text, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto cards = opt::EstimatePlanCards(r->plan_opt, Db());
  EXPECT_GT(cards.size(), 0u);
  for (const auto& [id, rows] : cards) {
    EXPECT_GT(rows, 0.0) << "op #" << id << " estimated zero rows";
    EXPECT_TRUE(std::isfinite(rows)) << "op #" << id << " not finite";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, XMarkCardinalityTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// 2. Monotonicity under selection.

algebra::OpPtr IntTable(int n) {
  std::vector<std::vector<Item>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Item{ItemKind::kInt, i},
                    Item{ItemKind::kBool, i % 2}});
  }
  return algebra::LitTable({"a", "b"}, {bat::ColType::kInt,
                                        bat::ColType::kBool},
                           std::move(rows));
}

TEST(CardinalityMonotone, SelectNeverIncreases) {
  opt::CardinalityEstimator est(Db());
  algebra::OpPtr base = IntTable(1000);
  algebra::OpPtr sel1 = algebra::Select(base, "b");
  algebra::OpPtr sel2 = algebra::Select(sel1, "b");
  double r0 = est.Estimate(base.get()).rows;
  double r1 = est.Estimate(sel1.get()).rows;
  double r2 = est.Estimate(sel2.get()).rows;
  EXPECT_GT(r0, 0.0);
  EXPECT_LE(r1, r0);
  EXPECT_LE(r2, r1);
  EXPECT_GT(r2, 0.0);  // floored, never zero
}

TEST(CardinalityMonotone, SelectMonotoneAcrossInputSizes) {
  opt::CardinalityEstimator est(Db());
  // The estimator memoizes by Op address, so every plan must stay
  // alive for the whole comparison.
  std::vector<algebra::OpPtr> plans;
  for (int n : {10, 100, 1000, 10000}) {
    plans.push_back(algebra::Select(IntTable(n), "b"));
  }
  double prev = 0.0;
  for (const auto& p : plans) {
    double r = est.Estimate(p.get()).rows;
    EXPECT_GT(r, prev) << "larger input must not shrink the estimate";
    prev = r;
  }
}

TEST(CardinalityMonotone, JoinHelpersBehave) {
  opt::OpEstimate l, r;
  l.rows = 1000;
  r.rows = 500;
  l.ndv["k"] = 100;
  r.ndv["k"] = 50;
  double out = opt::CardinalityEstimator::EquiJoinRows(l, "k", r, "k");
  EXPECT_GT(out, 0.0);
  EXPECT_LE(out, l.rows * r.rows);
  // Known NDV beats the sqrt fallback: same inputs, no NDV.
  opt::OpEstimate l2 = l, r2 = r;
  l2.ndv.clear();
  r2.ndv.clear();
  double out2 = opt::CardinalityEstimator::EquiJoinRows(l2, "k", r2, "k");
  EXPECT_GT(out2, 0.0);
  EXPECT_EQ(opt::CardinalityEstimator::ThetaJoinRows(30, 30), 300.0);
  EXPECT_GT(opt::CardinalityEstimator::Clamp(0.0), 0.0);
}

TEST(CardinalityMonotone, NullDatabaseStillPositive) {
  opt::CardinalityEstimator est(nullptr);
  algebra::OpPtr p = algebra::Select(IntTable(100), "b");
  EXPECT_GT(est.Estimate(p.get()).rows, 0.0);
}

// ---------------------------------------------------------------------------
// 3. Q-error against measured out_rows.

void CollectActuals(const engine::OperatorProfile& p,
                    std::unordered_map<int, int64_t>* out) {
  // Only materialized, executed operators have trustworthy counts.
  if (!p.fused && !p.cached && !p.shared_ref && p.out_rows >= 0) {
    out->emplace(p.op_id, p.out_rows);
  }
  for (const auto& c : p.children) CollectActuals(c, out);
}

struct QErrorQuantiles {
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
};

// Run all XMark queries with `path_summary` (-1 = process default) and
// score estimated vs. measured out_rows across every materialized
// operator of every plan.
QErrorQuantiles MeasureQError(int path_summary) {
  std::vector<double> qerrs;
  for (int qi = 1; qi <= 20; ++qi) {
    Pathfinder pf(Db());
    QueryOptions opts;
    opts.context_doc = "auction.xml";
    opts.profile = 1;
    opts.pipeline = 0;  // materialize per-operator row counts
    opts.num_threads = 1;
    opts.path_summary = path_summary;
    opts.plan_cache = 0;  // the plan must match the estimated mode
    opts.subplan_cache = 0;
    auto r = pf.Run(xmark::GetXMarkQuery(qi).text, opts);
    EXPECT_TRUE(r.ok()) << "Q" << qi << ": " << r.status().ToString();
    if (!r.ok() || r->profile == nullptr) continue;
    auto cards = opt::EstimatePlanCards(r->plan_opt, Db(), path_summary);
    std::unordered_map<int, int64_t> actual;
    CollectActuals(*r->profile, &actual);
    EXPECT_GT(actual.size(), 0u) << "Q" << qi;
    for (const auto& [id, act] : actual) {
      auto it = cards.find(id);
      if (it == cards.end()) continue;
      // Tiny intermediates are all noise: a 1-row actual vs. a 40-row
      // estimate is irrelevant to join ranking. Only score operators
      // with some mass.
      if (act < 10) continue;
      double est = std::max(it->second, 0.05);
      double q = std::max(est / act, act / est);
      qerrs.push_back(q);
    }
  }
  EXPECT_GT(qerrs.size(), 50u) << "too few scored operators";
  std::sort(qerrs.begin(), qerrs.end());
  QErrorQuantiles out;
  if (qerrs.empty()) return out;
  out.median = qerrs[qerrs.size() / 2];
  out.p90 = qerrs[qerrs.size() * 9 / 10];
  out.p95 = qerrs[qerrs.size() * 95 / 100];
  return out;
}

TEST(CardinalityAccuracy, QErrorBoundedOnXMark) {
  // Process default: holds with path summaries on or off, so the gate
  // protects both CI lanes. Measured on sf 0.01 / seed 42:
  // median 1.12 / p90 2.87 (off), median 1.03 / p90 2.49 (on).
  QErrorQuantiles q = MeasureQError(-1);
  EXPECT_LE(q.median, 2.0) << "median q-error regressed";
  EXPECT_LE(q.p90, 8.0) << "p90 q-error regressed";
}

TEST(CardinalityAccuracy, PathSummariesTightenEstimates) {
  // With path summaries the structural steps are exact, so the gates
  // tighten well past what tag-count heuristics can reach — and the
  // summary-backed estimator must never score worse than the heuristic
  // one on the same workload.
  QErrorQuantiles on = MeasureQError(1);
  EXPECT_LE(on.median, 1.5) << "path-summary median q-error regressed";
  EXPECT_LE(on.p90, 4.0) << "path-summary p90 q-error regressed";
  EXPECT_LE(on.p95, 5.0) << "path-summary p95 q-error regressed";
  QErrorQuantiles off = MeasureQError(0);
  EXPECT_LE(on.median, off.median + 1e-9)
      << "summaries made the median q-error worse";
  EXPECT_LE(on.p90, off.p90 + 1e-9) << "summaries made the p90 q-error worse";
}

}  // namespace
}  // namespace pathfinder

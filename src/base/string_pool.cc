#include "base/string_pool.h"

namespace pathfinder {

StrId StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  payload_bytes_ += s.size();
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

bool StringPool::Find(std::string_view s, StrId* id) const {
  auto it = index_.find(s);
  if (it == index_.end()) return false;
  *id = it->second;
  return true;
}

}  // namespace pathfinder

file(REMOVE_RECURSE
  "CMakeFiles/pf_opt.dir/optimize.cc.o"
  "CMakeFiles/pf_opt.dir/optimize.cc.o.d"
  "libpf_opt.a"
  "libpf_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpf_xml.a"
)

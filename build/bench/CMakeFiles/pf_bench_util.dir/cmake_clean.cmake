file(REMOVE_RECURSE
  "CMakeFiles/pf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/pf_bench_util.dir/bench_util.cc.o.d"
  "libpf_bench_util.a"
  "libpf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bat_test.
# This may be replaced when dependencies are built.

#include <gtest/gtest.h>

#include "algebra/op.h"
#include "algebra/print.h"
#include "algebra/schema.h"
#include "base/string_pool.h"

namespace pathfinder::algebra {
namespace {

OpPtr Loop1() {
  return LitTable({"iter"}, {bat::ColType::kInt}, {{Item::Int(1)}});
}

TEST(OpTest, CountOpsCountsDagNodesOnce) {
  OpPtr shared = Loop1();
  OpPtr a = Attach(shared, "pos", bat::ColType::kInt, Item::Int(1));
  OpPtr b = Attach(shared, "pos", bat::ColType::kInt, Item::Int(2));
  OpPtr u = DisjointUnion(a, b);
  EXPECT_EQ(CountOps(u), 4u);  // shared counted once
}

TEST(OpTest, TopoOrderChildrenFirst) {
  OpPtr lit = Loop1();
  OpPtr att = Attach(lit, "pos", bat::ColType::kInt, Item::Int(1));
  OpPtr prj = Project(att, {{"iter", "iter"}});
  auto order = TopoOrder(prj);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], lit.get());
  EXPECT_EQ(order[2], prj.get());
}

TEST(OpTest, TopoOrderSurvivesDeepChains) {
  OpPtr cur = Loop1();
  for (int i = 0; i < 50000; ++i) {
    cur = Project(cur, {{"iter", "iter"}});
  }
  EXPECT_EQ(CountOps(cur), 50001u);
}

TEST(SchemaTest, InferSimplePlan) {
  OpPtr plan = Attach(
      Attach(Loop1(), "pos", bat::ColType::kInt, Item::Int(1)), "item",
      bat::ColType::kItem, Item::Int(10));
  auto s = InferSchemas(plan);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->ToString(), "iter:int | pos:int | item:item");
}

TEST(SchemaTest, RejectsUnknownColumn) {
  OpPtr bad = Select(Loop1(), "nope");
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, RejectsNonBoolPredicate) {
  OpPtr bad = Select(Loop1(), "iter");
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, RejectsJoinNameClash) {
  OpPtr bad = EquiJoin(Loop1(), Loop1(), "iter", "iter");
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, JoinConcatenatesSchemas) {
  OpPtr right = Project(Loop1(), {{"iter2", "iter"}});
  OpPtr j = EquiJoin(Loop1(), right, "iter", "iter2");
  auto s = InferSchemas(j);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "iter:int | iter2:int");
}

TEST(SchemaTest, RejectsUnionWidthMismatch) {
  OpPtr wide = Attach(Loop1(), "x", bat::ColType::kInt, Item::Int(0));
  EXPECT_FALSE(ValidatePlan(DisjointUnion(Loop1(), wide)).ok());
}

TEST(SchemaTest, RejectsDuplicateProjection) {
  OpPtr bad = Project(Loop1(), {{"a", "iter"}, {"a", "iter"}});
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, RejectsRowNumClash) {
  OpPtr bad = RowNum(Loop1(), "iter", {}, {});
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, RejectsBadLitTable) {
  // Row width mismatch.
  OpPtr bad = LitTable({"a", "b"},
                       {bat::ColType::kInt, bat::ColType::kInt},
                       {{Item::Int(1)}});
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, StepRequiresIterItem) {
  OpPtr bad = Step(Loop1(), accel::Axis::kChild, accel::NodeTest::AnyKind());
  EXPECT_FALSE(ValidatePlan(bad).ok());
}

TEST(SchemaTest, Fun2TypeChecks) {
  OpPtr ipi = Attach(
      Attach(Loop1(), "pos", bat::ColType::kInt, Item::Int(1)), "item",
      bat::ColType::kItem, Item::Int(10));
  // and on ITEM columns is invalid
  OpPtr bad = MapFun2(ipi, Fun2::kAnd, "item", "item", "b");
  EXPECT_FALSE(ValidatePlan(bad).ok());
  // arithmetic on ITEM is fine
  OpPtr ok = MapFun2(ipi, Fun2::kAdd, "item", "item", "sum");
  EXPECT_TRUE(ValidatePlan(ok).ok());
}

TEST(PrintTest, LabelsIncludeParameters) {
  StringPool pool;
  OpPtr rn = RowNum(Loop1(), "pos", {"iter"}, {});
  EXPECT_EQ(OpLabel(*rn, pool), "rownum pos:<iter>");
  OpPtr st = Step(
      Project(Loop1(), {{"iter", "iter"}}),
      accel::Axis::kDescendant, accel::NodeTest::Name(pool.Intern("item")));
  EXPECT_EQ(OpLabel(*st, pool), "scjoin descendant::item");
}

TEST(PrintTest, TextShowsSharingMarkers) {
  StringPool pool;
  OpPtr shared = Loop1();
  OpPtr u = DisjointUnion(Project(shared, {{"iter", "iter"}}),
                          Project(shared, {{"iter", "iter"}}));
  std::string text = PlanToText(u, pool);
  // The shared literal appears once in full and once as a ^ref.
  EXPECT_NE(text.find("^"), std::string::npos);
}

TEST(PrintTest, DotIsWellFormed) {
  StringPool pool;
  OpPtr plan = Serialize(Attach(
      Attach(Loop1(), "pos", bat::ColType::kInt, Item::Int(1)), "item",
      bat::ColType::kItem, Item::Int(10)));
  std::string dot = PlanToDot(plan, pool);
  EXPECT_EQ(dot.find("digraph plan {"), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace pathfinder::algebra

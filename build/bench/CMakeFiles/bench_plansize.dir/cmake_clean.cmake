file(REMOVE_RECURSE
  "CMakeFiles/bench_plansize.dir/bench_plansize.cc.o"
  "CMakeFiles/bench_plansize.dir/bench_plansize.cc.o.d"
  "bench_plansize"
  "bench_plansize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plansize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "xml/document.h"

#include <sstream>

namespace pathfinder::xml {

bool Document::Parent(Pre v, Pre* parent) const {
  if (v == 0) return false;
  uint16_t lv = level_[v];
  // The parent is the nearest preceding node with a smaller level.
  for (Pre p = v; p-- > 0;) {
    if (level_[p] < lv) {
      *parent = p;
      return true;
    }
  }
  return false;
}

std::string Document::StringValue(Pre v, const StringPool& pool) const {
  NodeKind k = kind(v);
  if (k == NodeKind::kAttr || k == NodeKind::kText ||
      k == NodeKind::kComment || k == NodeKind::kPi) {
    return std::string(pool.Get(value_[v]));
  }
  std::string out;
  Pre end = v + size_[v];
  for (Pre p = v + 1; p <= end; ++p) {
    if (kind(p) == NodeKind::kText) out += pool.Get(value_[p]);
  }
  return out;
}

size_t Document::EncodingBytes() const {
  return size_.size() * (sizeof(uint32_t) + sizeof(uint16_t) +
                         sizeof(uint8_t) + 2 * sizeof(StrId));
}

bool Document::Validate(std::string* error) const {
  auto fail = [error](const std::string& m) {
    if (error) *error = m;
    return false;
  };
  Pre n = num_nodes();
  if (n == 0) return fail("empty document");
  if (kind(0) != NodeKind::kDoc || level_[0] != 0) {
    return fail("node 0 must be the document root at level 0");
  }
  if (size_[0] != n - 1) return fail("root size must cover all nodes");
  for (Pre v = 0; v < n; ++v) {
    if (v + size_[v] >= n + (v == 0 ? 1 : 0) && v + size_[v] > n - 1) {
      return fail("subtree of node " + std::to_string(v) +
                  " exceeds document");
    }
    if (v > 0 && level_[v] == 0) {
      return fail("only the root may be at level 0");
    }
    if (IsAttr(v) && size_[v] != 0) {
      return fail("attribute " + std::to_string(v) + " has nonzero size");
    }
    if (v > 0 && level_[v] > level_[v - 1] + 1) {
      return fail("level jump at node " + std::to_string(v));
    }
  }
  // Subtrees must nest. One pass with a stack of open subtrees: when we
  // reach node w, every subtree that ended before w must have been
  // popped, w's level must be exactly (#open subtrees), and w must end
  // no later than the innermost open subtree.
  std::vector<Pre> open_ends;  // exclusive end (last pre) per open subtree
  for (Pre v = 0; v < n; ++v) {
    while (!open_ends.empty() && open_ends.back() < v) open_ends.pop_back();
    if (level_[v] != open_ends.size()) {
      return fail("node " + std::to_string(v) + " level " +
                  std::to_string(level_[v]) + " != nesting depth " +
                  std::to_string(open_ends.size()));
    }
    Pre end = v + size_[v];
    if (!open_ends.empty() && end > open_ends.back()) {
      return fail("subtree of " + std::to_string(v) +
                  " overflows its parent");
    }
    open_ends.push_back(end);
  }
  return true;
}

}  // namespace pathfinder::xml

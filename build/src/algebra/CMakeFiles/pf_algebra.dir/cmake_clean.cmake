file(REMOVE_RECURSE
  "CMakeFiles/pf_algebra.dir/op.cc.o"
  "CMakeFiles/pf_algebra.dir/op.cc.o.d"
  "CMakeFiles/pf_algebra.dir/print.cc.o"
  "CMakeFiles/pf_algebra.dir/print.cc.o.d"
  "CMakeFiles/pf_algebra.dir/schema.cc.o"
  "CMakeFiles/pf_algebra.dir/schema.cc.o.d"
  "libpf_algebra.a"
  "libpf_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef PATHFINDER_XML_UPDATE_H_
#define PATHFINDER_XML_UPDATE_H_

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/string_pool.h"
#include "xml/database.h"
#include "xml/document.h"

namespace pathfinder::xml {

/// One node-level document update (the XQuery Update primitives the
/// engine supports). Applied copy-on-write: the current Document
/// snapshot is never touched — a new snapshot is built by splicing the
/// pre|size|level columns (prefix + patched rows + shifted suffix), so
/// only the target's ancestor chain's `size` entries and the spliced
/// row range are recomputed, and queries already in flight keep reading
/// the old snapshot unsynchronized.
struct NodeUpdate {
  enum class Kind : uint8_t {
    /// Parse `xml` as a fragment and insert its root node(s) as
    /// children of element `target`, before the child at index
    /// `position` (-1 or past-the-end = append after the last child).
    /// Attributes of `target` keep preceding the inserted content.
    kInsertChild,
    /// Remove node `target` and its entire subtree (an attribute node
    /// removes just itself). The document node and the document's only
    /// root element cannot be deleted.
    kDelete,
    /// Replace the *value* of `target` with `value`: for
    /// text/comment/PI/attribute nodes this is a pure content change
    /// (the tree shape, and therefore every pre rank, is unchanged);
    /// for an element it replaces the element's content with the
    /// single text node `value` (empty = no content), which is a
    /// structural change.
    kReplaceValue,
  };

  Kind kind = Kind::kReplaceValue;
  /// Pre rank of the target node in the *current* snapshot.
  Pre target = 0;
  /// kInsertChild: child index to insert before; -1 = append.
  int32_t position = -1;
  /// kInsertChild: the XML fragment to insert (one root element).
  std::string xml;
  /// kReplaceValue: the new content.
  std::string value;
};

/// A spliced snapshot plus what the splice did — the doc-level update
/// primitive (no Database involved; the model tests drive it directly).
/// `doc` carries incrementally repaired stats and path summary:
///  * counts (total/kind/level, per-tag count + subtree_nodes, per-attr
///    count) and the path summary's partitions/counts/text counts are
///    maintained *exactly*;
///  * the structural maxima (max_children / max_text_children /
///    max_per_owner) and the distinct-value estimates are maintained as
///    sound upper bounds: inserts recount the touched parents, deletes
///    keep the old maxima. Key inference only ever needs "max <= 1"
///    proofs, so an upper bound never breaks correctness, and the
///    distinct counts feed the cost model only.
struct SplicedDoc {
  Document doc;
  /// False iff the update changed only the `value` column (pre ranks,
  /// sizes, levels, kinds and props are bit-identical to the base).
  bool structural = true;
  /// Replaced row range of the base: [at, at + removed) became
  /// `inserted` fresh rows (for a content-only update, removed ==
  /// inserted == 1 and only the value changed).
  Pre at = 0;
  Pre removed = 0;
  Pre inserted = 0;
};

/// Apply one update to a document snapshot. `pool` must be the pool the
/// document's surrogates point into (fragment text is interned there).
Result<SplicedDoc> ApplyNodeUpdate(const Document& base, StringPool* pool,
                                   const NodeUpdate& u);

/// The result of a database-level update.
struct UpdateResult {
  /// The fragment id of the new snapshot now bound to the name.
  FragId frag = 0;
  bool structural = true;
  Pre nodes_before = 0;
  Pre nodes_after = 0;
};

/// Apply one update to the document bound to `name`: splice a new
/// snapshot off the current one and rebind the name to it (the old
/// FragId stays readable for in-flight queries — the store's usual
/// snapshot isolation). Updaters serialize on the database's update
/// lock, so concurrent ApplyUpdate calls never splice off the same base
/// and updates are never lost; queries are never blocked.
///
/// Version bookkeeping: a structural update bumps the name's structure
/// and content versions, a content-only update bumps just the content
/// version — the query cache repairs (instead of evicts) value-free
/// entries across content-only bumps (see engine::QueryCache).
///
/// Fails with NotSupported when updates are disabled (PF_UPDATES=0).
Result<UpdateResult> ApplyUpdate(Database* db, const std::string& name,
                                 const NodeUpdate& u);

/// Process default for the update path: PF_UPDATES env var, on unless
/// set to "0" (read once).
bool UpdatesEnabled();

/// Test seam overriding UpdatesEnabled(): 0 = disabled, 1 = enabled,
/// -1 = back to the process default.
void SetUpdatesEnabledForTest(int enabled);

}  // namespace pathfinder::xml

#endif  // PATHFINDER_XML_UPDATE_H_

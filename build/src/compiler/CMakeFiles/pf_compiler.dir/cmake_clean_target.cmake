file(REMOVE_RECURSE
  "libpf_compiler.a"
)

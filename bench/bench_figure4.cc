// Reproduces paper Figure 4: Pathfinder scalability. Execution times of
// the 20 XMark queries across instance sizes, normalized to the
// second-smallest instance (the paper normalizes to the 110 MB one).
//
// Expected shape: near-linear scaling (normalized time ~ sf ratio) for
// all queries except Q11/Q12, whose theta-join output grows
// quadratically (paper Sec. 3.4: "any XQuery implementation will face
// this complexity").

#include <cstdio>
#include <vector>

#include "api/pathfinder.h"
#include "bench/bench_util.h"
#include "xmark/queries.h"

namespace pathfinder::bench {
namespace {

int Main() {
  std::vector<double> sfs = ScaleFactors();
  if (sfs.size() < 2) {
    std::printf("need at least two scale factors\n");
    return 1;
  }
  size_t norm_idx = 1;  // second-smallest, like the paper's 110 MB

  std::printf("Figure 4 reproduction: Pathfinder execution times "
              "normalized to sf=%g\n\n", sfs[norm_idx]);
  std::printf("%-4s", "Q");
  for (double sf : sfs) {
    char head[32];
    std::snprintf(head, sizeof(head), "sf=%g", sf);
    std::printf(" %10s", head);
  }
  std::printf("   note\n");

  for (const auto& q : xmark::XMarkQueries()) {
    std::vector<double> times;
    for (double sf : sfs) {
      xml::Database* db = XMarkDb(sf);
      Pathfinder pf(db);
      QueryOptions o;
      o.context_doc = "auction.xml";
      // Repeat runs must re-execute, not hit the cross-query cache.
      o.plan_cache = 0;
      o.subplan_cache = 0;
      times.push_back(BestOfMs(2, [&] {
        auto r = pf.Run(q.text, o);
        if (!r.ok()) {
          std::fprintf(stderr, "Q%d failed: %s\n", q.number,
                       r.status().ToString().c_str());
          std::exit(1);
        }
      }));
    }
    double norm = times[norm_idx];
    std::printf("%-4d", q.number);
    for (double t : times) {
      std::printf(" %10s", FmtFactor(t / norm).c_str());
    }
    std::printf("   %s\n",
                (q.number == 11 || q.number == 12)
                    ? "quadratic theta-join output (expected)"
                    : "");
    std::fflush(stdout);
  }

  double sf_ratio = sfs.back() / sfs[norm_idx];
  std::printf(
      "\nLinear scaling corresponds to a last-column factor of ~%.0f "
      "(the sf ratio); constant-time queries sit near 1.\n", sf_ratio);
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main() { return pathfinder::bench::Main(); }

#include <gtest/gtest.h>

#include "bat/item_ops.h"
#include "bat/kernel.h"
#include "bat/table.h"

namespace pathfinder::bat {
namespace {

ColumnPtr IntCol(std::vector<int64_t> v) {
  auto c = Column::MakeInt();
  c->ints() = std::move(v);
  return c;
}

ColumnPtr ItemCol(std::vector<Item> v) {
  auto c = Column::MakeItem();
  c->items() = std::move(v);
  return c;
}

ColumnPtr BoolCol(std::vector<uint8_t> v) {
  auto c = Column::MakeBool();
  c->bools() = std::move(v);
  return c;
}

// --- Item ------------------------------------------------------------

TEST(ItemTest, PackUnpackRoundTrip) {
  EXPECT_EQ(Item::Int(-17).AsInt(), -17);
  EXPECT_EQ(Item::Dbl(2.5).AsDbl(), 2.5);
  EXPECT_EQ(Item::Str(9).AsStr(), 9u);
  EXPECT_TRUE(Item::Bool(true).AsBool());
  EXPECT_FALSE(Item::Bool(false).AsBool());
  Item n = Item::Node(3, 77);
  EXPECT_EQ(n.NodeFrag(), 3u);
  EXPECT_EQ(n.NodePre(), 77u);
  EXPECT_TRUE(n.IsNode());
  EXPECT_TRUE(Item::Attr(1, 2).IsNode());
  EXPECT_FALSE(Item::Int(1).IsNode());
}

TEST(ItemTest, DocumentOrderViaRaw) {
  // (frag, pre) ordering == raw ordering.
  EXPECT_LT(Item::Node(0, 5).raw, Item::Node(0, 6).raw);
  EXPECT_LT(Item::Node(0, 99999).raw, Item::Node(1, 0).raw);
}

TEST(ItemTest, RepresentationEquality) {
  EXPECT_EQ(Item::Int(5), Item::Int(5));
  EXPECT_FALSE(Item::Int(5) == Item::Dbl(5.0));  // representation!
  EXPECT_FALSE(Item::Node(0, 1) == Item::Attr(0, 1));
}

// --- item_ops ----------------------------------------------------------

class ItemOpsTest : public ::testing::Test {
 protected:
  StringPool pool_;
  Item S(const char* s) { return Item::Str(pool_.Intern(s)); }
  Item U(const char* s) { return Item::Untyped(pool_.Intern(s)); }
};

TEST_F(ItemOpsTest, ToDouble) {
  EXPECT_EQ(*ItemToDouble(Item::Int(4), pool_), 4.0);
  EXPECT_EQ(*ItemToDouble(Item::Dbl(2.5), pool_), 2.5);
  EXPECT_EQ(*ItemToDouble(U(" 42.5 "), pool_), 42.5);
  EXPECT_FALSE(ItemToDouble(U("abc"), pool_).ok());
  EXPECT_FALSE(ItemToDouble(Item::Node(0, 0), pool_).ok());
}

TEST_F(ItemOpsTest, ToString) {
  EXPECT_EQ(pool_.Get(*ItemToString(Item::Int(-3), &pool_)), "-3");
  EXPECT_EQ(pool_.Get(*ItemToString(Item::Dbl(2.0), &pool_)), "2");
  EXPECT_EQ(pool_.Get(*ItemToString(Item::Dbl(2.5), &pool_)), "2.5");
  EXPECT_EQ(pool_.Get(*ItemToString(Item::Bool(true), &pool_)), "true");
  EXPECT_EQ(pool_.Get(*ItemToString(S("x"), &pool_)), "x");
}

TEST_F(ItemOpsTest, ToBool) {
  EXPECT_TRUE(*ItemToBool(Item::Int(1), pool_));
  EXPECT_FALSE(*ItemToBool(Item::Int(0), pool_));
  EXPECT_FALSE(*ItemToBool(S(""), pool_));
  EXPECT_TRUE(*ItemToBool(S("x"), pool_));
  EXPECT_TRUE(*ItemToBool(Item::Node(0, 0), pool_));  // nodes truthy
}

TEST_F(ItemOpsTest, CompareNumericPromotion) {
  EXPECT_EQ(*ItemCompareValue(Item::Int(2), Item::Dbl(2.0), pool_), 0);
  EXPECT_LT(*ItemCompareValue(Item::Int(2), Item::Dbl(2.5), pool_), 0);
  EXPECT_EQ(*ItemCompareValue(U("7"), Item::Int(7), pool_), 0);
}

TEST_F(ItemOpsTest, CompareStrings) {
  EXPECT_LT(*ItemCompareValue(S("abc"), S("abd"), pool_), 0);
  EXPECT_EQ(*ItemCompareValue(S("abc"), U("abc"), pool_), 0);
}

TEST_F(ItemOpsTest, NumericLookingStringsCompareNumerically) {
  // Documented deviation: both-parseable string-likes compare as
  // numbers, so "10" > "9".
  EXPECT_GT(*ItemCompareValue(U("10"), U("9"), pool_), 0);
  EXPECT_EQ(*ItemCompareValue(S("2.0"), U("2"), pool_), 0);
  // Non-numeric strings stay lexicographic: "10x" < "9x".
  EXPECT_LT(*ItemCompareValue(S("10x"), S("9x"), pool_), 0);
}

TEST_F(ItemOpsTest, CompareNodesIsTypeError) {
  EXPECT_FALSE(ItemCompareValue(Item::Node(0, 1), S("x"), pool_).ok());
}

TEST_F(ItemOpsTest, ItemOrderRanksKindClasses) {
  // bool < number < string < node
  EXPECT_LT(ItemOrder(Item::Bool(true), Item::Int(-100), pool_), 0);
  EXPECT_LT(ItemOrder(Item::Int(999), S("a"), pool_), 0);
  EXPECT_LT(ItemOrder(S("zzz"), Item::Node(0, 0), pool_), 0);
  EXPECT_EQ(ItemOrder(Item::Int(3), Item::Dbl(3.0), pool_), 0);
}

// --- kernel ------------------------------------------------------------

class KernelTest : public ::testing::Test {
 protected:
  StringPool pool_;
};

TEST_F(KernelTest, FilterAndGather) {
  Table t;
  t.AddCol("a", IntCol({10, 20, 30, 40}));
  t.AddCol("p", BoolCol({1, 0, 1, 0}));
  IdxVec idx = FilterIndices(*t.col(1));
  ASSERT_EQ(idx, (IdxVec{0, 2}));
  Table f = GatherTable(t, idx);
  EXPECT_EQ(f.rows(), 2u);
  EXPECT_EQ(f.col(0)->ints(), (std::vector<int64_t>{10, 30}));
}

TEST_F(KernelTest, HashJoinPreservesLeftMajorOrder) {
  IdxVec li, ri;
  ASSERT_TRUE(HashJoinIndices(*IntCol({1, 2, 1}), *IntCol({1, 3, 1}),
                              pool_, &li, &ri)
                  .ok());
  // left row 0 matches right rows 0,2; left row 2 matches 0,2.
  EXPECT_EQ(li, (IdxVec{0, 0, 2, 2}));
  EXPECT_EQ(ri, (IdxVec{0, 2, 0, 2}));
}

TEST_F(KernelTest, HashJoinItemsCanonicalizesNumbers) {
  IdxVec li, ri;
  Item u42 = Item::Untyped(pool_.Intern("42"));
  ASSERT_TRUE(HashJoinIndices(*ItemCol({Item::Int(42)}), *ItemCol({u42}),
                              pool_, &li, &ri)
                  .ok());
  EXPECT_EQ(li.size(), 1u);
}

TEST_F(KernelTest, HashJoinItemsStrings) {
  IdxVec li, ri;
  Item a = Item::Str(pool_.Intern("person0"));
  Item b = Item::Untyped(pool_.Intern("person0"));
  Item c = Item::Untyped(pool_.Intern("person1"));
  ASSERT_TRUE(
      HashJoinIndices(*ItemCol({a}), *ItemCol({c, b}), pool_, &li, &ri)
          .ok());
  EXPECT_EQ(li, (IdxVec{0}));
  EXPECT_EQ(ri, (IdxVec{1}));
}

TEST_F(KernelTest, ThetaJoinNumeric) {
  IdxVec li, ri;
  ASSERT_TRUE(ThetaJoinIndices(*ItemCol({Item::Int(5), Item::Int(1)}),
                               *ItemCol({Item::Dbl(3.0)}), CmpOp::kGt,
                               pool_, &li, &ri)
                  .ok());
  EXPECT_EQ(li, (IdxVec{0}));
}

TEST_F(KernelTest, ThetaJoinStringFallback) {
  IdxVec li, ri;
  Item a = Item::Str(pool_.Intern("abc"));
  Item b = Item::Str(pool_.Intern("abd"));
  ASSERT_TRUE(ThetaJoinIndices(*ItemCol({a}), *ItemCol({b}), CmpOp::kLt,
                               pool_, &li, &ri)
                  .ok());
  EXPECT_EQ(li.size(), 1u);
}

TEST_F(KernelTest, SortPermStableAndOrdered) {
  Table t;
  t.AddCol("k", IntCol({3, 1, 3, 2}));
  t.AddCol("v", IntCol({0, 1, 2, 3}));
  auto perm = SortPerm(t, {"k"}, pool_);
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (IdxVec{1, 3, 0, 2}));  // stable: row 0 before row 2
}

TEST_F(KernelTest, SortPermDescending) {
  Table t;
  t.AddCol("k", IntCol({1, 3, 2}));
  auto perm = SortPerm(t, {"k"}, pool_, {1});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (IdxVec{1, 2, 0}));
}

TEST_F(KernelTest, SortPermAlreadySortedFastPathIsCorrect) {
  Table t;
  t.AddCol("k", IntCol({1, 1, 2, 5}));
  auto perm = SortPerm(t, {"k"}, pool_);
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (IdxVec{0, 1, 2, 3}));
}

TEST_F(KernelTest, DistinctKeepsFirstOccurrence) {
  Table t;
  t.AddCol("k", IntCol({1, 2, 1, 3, 2}));
  auto idx = DistinctIndices(t, {"k"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IdxVec{0, 1, 3}));
}

TEST_F(KernelTest, DistinctOnAllColumns) {
  Table t;
  t.AddCol("a", IntCol({1, 1, 1}));
  t.AddCol("b", IntCol({1, 2, 1}));
  auto idx = DistinctIndices(t, {});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IdxVec{0, 1}));
}

TEST_F(KernelTest, MarkGlobalNumbering) {
  Table t;
  t.AddCol("k", IntCol({5, 5, 7}));
  auto col = Mark(t, {}, {}, pool_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints(), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(KernelTest, MarkPartitionedNumbering) {
  Table t;
  t.AddCol("part", IntCol({1, 2, 1, 2, 1}));
  auto col = Mark(t, {"part"}, {}, pool_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints(), (std::vector<int64_t>{1, 1, 2, 2, 3}));
}

TEST_F(KernelTest, MarkOrderedWithinPartition) {
  Table t;
  t.AddCol("part", IntCol({1, 1, 1}));
  t.AddCol("key", IntCol({30, 10, 20}));
  auto col = Mark(t, {"part"}, {"key"}, pool_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints(), (std::vector<int64_t>{3, 1, 2}));
}

TEST_F(KernelTest, MarkDescendingOrder) {
  Table t;
  t.AddCol("part", IntCol({1, 1, 1}));
  t.AddCol("key", IntCol({30, 10, 20}));
  auto col = Mark(t, {"part"}, {"key"}, pool_, {1});
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints(), (std::vector<int64_t>{1, 3, 2}));
}

TEST_F(KernelTest, DifferenceAntiJoin) {
  Table a, b;
  a.AddCol("k", IntCol({1, 2, 3, 4}));
  b.AddCol("k", IntCol({2, 4, 9}));
  auto idx = DifferenceIndices(a, b, {"k"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IdxVec{0, 2}));
}

TEST_F(KernelTest, UnionAllMatchesByName) {
  Table a, b;
  a.AddCol("x", IntCol({1}));
  a.AddCol("y", IntCol({2}));
  b.AddCol("y", IntCol({4}));  // different order
  b.AddCol("x", IntCol({3}));
  auto u = UnionAll(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->GetCol("x").value()->ints(), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(u->GetCol("y").value()->ints(), (std::vector<int64_t>{2, 4}));
}

TEST_F(KernelTest, UnionAllRejectsMissingColumn) {
  Table a, b;
  a.AddCol("x", IntCol({1}));
  b.AddCol("z", IntCol({2}));
  EXPECT_FALSE(UnionAll(a, b).ok());
}

TEST_F(KernelTest, GroupAggCount) {
  Table t;
  t.AddCol("g", IntCol({1, 2, 1, 1}));
  auto r = GroupAgg(t, "g", "", AggKind::kCount, pool_, "g", "n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetCol("g").value()->ints(), (std::vector<int64_t>{1, 2}));
  auto items = r->GetCol("n").value()->items();
  EXPECT_EQ(items[0].AsInt(), 3);
  EXPECT_EQ(items[1].AsInt(), 1);
}

TEST_F(KernelTest, GroupAggSumStaysIntegerWhenAllInt) {
  Table t;
  t.AddCol("g", IntCol({1, 1}));
  t.AddCol("v", ItemCol({Item::Int(2), Item::Int(3)}));
  auto r = GroupAgg(t, "g", "v", AggKind::kSum, pool_, "g", "s");
  ASSERT_TRUE(r.ok());
  Item s = r->GetCol("s").value()->items()[0];
  EXPECT_EQ(s.kind, ItemKind::kInt);
  EXPECT_EQ(s.AsInt(), 5);
}

TEST_F(KernelTest, GroupAggSumPromotesOnDouble) {
  Table t;
  t.AddCol("g", IntCol({1, 1}));
  t.AddCol("v", ItemCol({Item::Int(2), Item::Dbl(0.5)}));
  auto r = GroupAgg(t, "g", "v", AggKind::kSum, pool_, "g", "s");
  ASSERT_TRUE(r.ok());
  Item s = r->GetCol("s").value()->items()[0];
  EXPECT_EQ(s.kind, ItemKind::kDbl);
  EXPECT_EQ(s.AsDbl(), 2.5);
}

TEST_F(KernelTest, GroupAggMaxMinAvg) {
  Table t;
  t.AddCol("g", IntCol({7, 7, 7}));
  t.AddCol("v",
           ItemCol({Item::Int(3), Item::Int(9), Item::Int(6)}));
  auto mx = GroupAgg(t, "g", "v", AggKind::kMax, pool_, "g", "m");
  EXPECT_EQ(mx->GetCol("m").value()->items()[0].AsInt(), 9);
  auto mn = GroupAgg(t, "g", "v", AggKind::kMin, pool_, "g", "m");
  EXPECT_EQ(mn->GetCol("m").value()->items()[0].AsInt(), 3);
  auto av = GroupAgg(t, "g", "v", AggKind::kAvg, pool_, "g", "m");
  EXPECT_EQ(av->GetCol("m").value()->items()[0].AsDbl(), 6.0);
}

TEST_F(KernelTest, GroupAggStringsViaUntypedPromotion) {
  Table t;
  t.AddCol("g", IntCol({1}));
  t.AddCol("v", ItemCol({Item::Untyped(pool_.Intern("2.5"))}));
  auto r = GroupAgg(t, "g", "v", AggKind::kSum, pool_, "g", "s");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetCol("s").value()->items()[0].AsDbl(), 2.5);
}

// Parameterized sweep: Mark is dense 1..n per partition for any mix.
class MarkDensityTest : public ::testing::TestWithParam<int> {};

TEST_P(MarkDensityTest, DenseRanks) {
  StringPool pool;
  int n = GetParam();
  Table t;
  std::vector<int64_t> parts;
  for (int i = 0; i < n; ++i) parts.push_back(i % 3);
  t.AddCol("p", IntCol(parts));
  auto col = Mark(t, {"p"}, {}, pool);
  ASSERT_TRUE(col.ok());
  std::map<int64_t, std::vector<int64_t>> per_part;
  for (int i = 0; i < n; ++i) {
    per_part[parts[static_cast<size_t>(i)]].push_back(
        (*col)->ints()[static_cast<size_t>(i)]);
  }
  for (auto& [p, ranks] : per_part) {
    std::sort(ranks.begin(), ranks.end());
    for (size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i], static_cast<int64_t>(i + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MarkDensityTest,
                         ::testing::Values(0, 1, 2, 10, 100, 1000));

}  // namespace
}  // namespace pathfinder::bat


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bat/column.cc" "src/bat/CMakeFiles/pf_bat.dir/column.cc.o" "gcc" "src/bat/CMakeFiles/pf_bat.dir/column.cc.o.d"
  "/root/repo/src/bat/item_ops.cc" "src/bat/CMakeFiles/pf_bat.dir/item_ops.cc.o" "gcc" "src/bat/CMakeFiles/pf_bat.dir/item_ops.cc.o.d"
  "/root/repo/src/bat/kernel.cc" "src/bat/CMakeFiles/pf_bat.dir/kernel.cc.o" "gcc" "src/bat/CMakeFiles/pf_bat.dir/kernel.cc.o.d"
  "/root/repo/src/bat/table.cc" "src/bat/CMakeFiles/pf_bat.dir/table.cc.o" "gcc" "src/bat/CMakeFiles/pf_bat.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "baseline/dom.h"

#include <algorithm>

namespace pathfinder::baseline {

using accel::Axis;
using accel::NodeTest;
using xml::NodeKind;
using xml::Pre;

Dom::Dom(const xml::Document& doc) {
  Pre n = doc.num_nodes();
  nodes_.resize(n);
  std::vector<DomNode*> stack;
  for (Pre v = 0; v < n; ++v) {
    DomNode& node = nodes_[v];
    node.kind = doc.kind(v);
    node.name = doc.prop(v);
    node.value = doc.value(v);
    node.pre = v;
    while (!stack.empty() &&
           stack.back()->pre + doc.size(stack.back()->pre) < v) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      node.parent = stack.back();
      if (node.kind == NodeKind::kAttr) {
        stack.back()->attrs.push_back(&node);
      } else {
        stack.back()->children.push_back(&node);
      }
    }
    if (node.kind == NodeKind::kDoc || node.kind == NodeKind::kElem) {
      stack.push_back(&node);
    }
  }
}

bool DomMatches(const DomNode& n, Axis axis, const NodeTest& test) {
  if (axis == Axis::kAttribute) {
    if (n.kind != NodeKind::kAttr) return false;
    switch (test.kind) {
      case NodeTest::Kind::kAnyKind:
      case NodeTest::Kind::kElement:
        return true;
      case NodeTest::Kind::kName:
        return n.name == test.name;
      default:
        return false;
    }
  }
  if (n.kind == NodeKind::kAttr) return false;
  switch (test.kind) {
    case NodeTest::Kind::kAnyKind:
      return true;
    case NodeTest::Kind::kElement:
      return n.kind == NodeKind::kElem;
    case NodeTest::Kind::kText:
      return n.kind == NodeKind::kText;
    case NodeTest::Kind::kComment:
      return n.kind == NodeKind::kComment;
    case NodeTest::Kind::kPi:
      return n.kind == NodeKind::kPi;
    case NodeTest::Kind::kName:
      return n.kind == NodeKind::kElem && n.name == test.name;
  }
  return false;
}

namespace {

void EmitDescendants(DomNode* n, Axis axis, const NodeTest& test,
                     std::vector<DomNode*>* out) {
  for (DomNode* c : n->children) {
    if (DomMatches(*c, axis, test)) out->push_back(c);
    EmitDescendants(c, axis, test, out);
  }
}

/// Emit a whole subtree (self + descendants) in document order.
void EmitSubtree(DomNode* n, Axis axis, const NodeTest& test,
                 std::vector<DomNode*>* out) {
  if (DomMatches(*n, axis, test)) out->push_back(n);
  EmitDescendants(n, axis, test, out);
}

}  // namespace

void DomStep(DomNode* ctx, Axis axis, const NodeTest& test,
             std::vector<DomNode*>* out) {
  switch (axis) {
    case Axis::kSelf:
      if (ctx->kind == NodeKind::kAttr) {
        if (test.kind == NodeTest::Kind::kAnyKind) out->push_back(ctx);
      } else if (DomMatches(*ctx, axis, test)) {
        out->push_back(ctx);
      }
      return;
    case Axis::kAttribute:
      for (DomNode* a : ctx->attrs) {
        if (DomMatches(*a, axis, test)) out->push_back(a);
      }
      return;
    case Axis::kChild:
      for (DomNode* c : ctx->children) {
        if (DomMatches(*c, axis, test)) out->push_back(c);
      }
      return;
    case Axis::kDescendant:
      EmitDescendants(ctx, axis, test, out);
      return;
    case Axis::kDescendantOrSelf:
      EmitSubtree(ctx, axis, test, out);
      return;
    case Axis::kParent:
      if (ctx->parent && DomMatches(*ctx->parent, axis, test)) {
        out->push_back(ctx->parent);
      }
      return;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      std::vector<DomNode*> chain;
      if (axis == Axis::kAncestorOrSelf && DomMatches(*ctx, axis, test)) {
        chain.push_back(ctx);
      }
      for (DomNode* a = ctx->parent; a != nullptr; a = a->parent) {
        if (DomMatches(*a, axis, test)) chain.push_back(a);
      }
      out->insert(out->end(), chain.rbegin(), chain.rend());
      return;
    }
    case Axis::kFollowingSibling: {
      if (ctx->kind == NodeKind::kAttr || !ctx->parent) return;
      const auto& sibs = ctx->parent->children;
      auto it = std::find(sibs.begin(), sibs.end(), ctx);
      if (it == sibs.end()) return;
      for (++it; it != sibs.end(); ++it) {
        if (DomMatches(**it, axis, test)) out->push_back(*it);
      }
      return;
    }
    case Axis::kPrecedingSibling: {
      if (ctx->kind == NodeKind::kAttr || !ctx->parent) return;
      for (DomNode* s : ctx->parent->children) {
        if (s == ctx) break;
        if (DomMatches(*s, axis, test)) out->push_back(s);
      }
      return;
    }
    case Axis::kFollowing: {
      // Everything after this subtree: for each ancestor, the subtrees
      // of its later siblings.
      DomNode* cur = ctx->kind == NodeKind::kAttr ? ctx->parent : ctx;
      while (cur && cur->parent) {
        const auto& sibs = cur->parent->children;
        auto it = std::find(sibs.begin(), sibs.end(), cur);
        if (it != sibs.end()) {
          for (++it; it != sibs.end(); ++it) {
            EmitSubtree(*it, axis, test, out);
          }
        }
        cur = cur->parent;
      }
      return;
    }
    case Axis::kPreceding: {
      // Subtrees of earlier siblings of each ancestor-or-self, emitted
      // root-side first to keep document order.
      std::vector<DomNode*> line;
      for (DomNode* a = ctx->kind == NodeKind::kAttr ? ctx->parent : ctx;
           a != nullptr; a = a->parent) {
        line.push_back(a);
      }
      for (auto it = line.rbegin(); it != line.rend(); ++it) {
        DomNode* a = *it;
        if (!a->parent) continue;
        for (DomNode* s : a->parent->children) {
          if (s == a) break;
          EmitSubtree(s, axis, test, out);
        }
      }
      return;
    }
  }
}

std::string DomStringValue(const DomNode* n, const StringPool& pool) {
  switch (n->kind) {
    case NodeKind::kAttr:
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kPi:
      return std::string(pool.Get(n->value));
    default: {
      std::string out;
      for (const DomNode* c : n->children) {
        if (c->kind == NodeKind::kText) {
          out += pool.Get(c->value);
        } else if (c->kind == NodeKind::kElem) {
          out += DomStringValue(c, pool);
        }
      }
      return out;
    }
  }
}

}  // namespace pathfinder::baseline

#ifndef PATHFINDER_SERVE_JSON_H_
#define PATHFINDER_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"

namespace pathfinder::serve {

/// Minimal JSON document model for the pf_serve line protocol: every
/// request and response is one JSON object per line. The parser is a
/// strict recursive-descent reader with a hard nesting cap so
/// adversarial input (the protocol fuzzer's garbage frames) can never
/// crash or recurse unboundedly — malformed bytes produce a ParseError
/// Status, nothing else.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elems;                            // kArray

  /// First member with this key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  /// Typed accessors with defaults for absent/mistyped values.
  std::string_view AsString(std::string_view dflt = "") const {
    return kind == Kind::kString ? std::string_view(str) : dflt;
  }
  double AsNumber(double dflt = 0.0) const {
    return kind == Kind::kNumber ? num : dflt;
  }
  int64_t AsInt(int64_t dflt = 0) const {
    return kind == Kind::kNumber ? static_cast<int64_t>(num) : dflt;
  }
  bool AsBool(bool dflt = false) const {
    return kind == Kind::kBool ? b : dflt;
  }
};

/// Parse exactly one JSON value spanning the whole input (trailing
/// whitespace allowed). ParseError on anything else.
Result<JsonValue> ParseJson(std::string_view s);

/// Append `s` to `out` as a quoted JSON string (RFC 8259 escaping;
/// control bytes become \u00XX).
void AppendJsonString(std::string* out, std::string_view s);

/// The quoted/escaped form of `s`.
std::string JsonQuote(std::string_view s);

}  // namespace pathfinder::serve

#endif  // PATHFINDER_SERVE_JSON_H_

file(REMOVE_RECURSE
  "CMakeFiles/bench_staircase.dir/bench_staircase.cc.o"
  "CMakeFiles/bench_staircase.dir/bench_staircase.cc.o.d"
  "bench_staircase"
  "bench_staircase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staircase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

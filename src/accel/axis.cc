#include "accel/axis.h"

namespace pathfinder::accel {

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

bool AxisIsForward(Axis a) {
  switch (a) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
      return false;
    default:
      return true;
  }
}

std::string NodeTest::ToString(const StringPool& pool) const {
  switch (kind) {
    case Kind::kAnyKind:
      return "node()";
    case Kind::kElement:
      return "*";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return "processing-instruction()";
    case Kind::kName:
      return std::string(pool.Get(name));
  }
  return "?";
}

bool MatchesTest(const xml::Document& doc, xml::Pre v, Axis axis,
                 const NodeTest& test) {
  xml::NodeKind k = doc.kind(v);
  if (axis == Axis::kAttribute) {
    if (k != xml::NodeKind::kAttr) return false;
    switch (test.kind) {
      case NodeTest::Kind::kAnyKind:
      case NodeTest::Kind::kElement:  // attribute::* selects attributes
        return true;
      case NodeTest::Kind::kName:
        return doc.prop(v) == test.name;
      default:
        return false;
    }
  }
  if (k == xml::NodeKind::kAttr) return false;
  switch (test.kind) {
    case NodeTest::Kind::kAnyKind:
      return true;
    case NodeTest::Kind::kElement:
      return k == xml::NodeKind::kElem;
    case NodeTest::Kind::kText:
      return k == xml::NodeKind::kText;
    case NodeTest::Kind::kComment:
      return k == xml::NodeKind::kComment;
    case NodeTest::Kind::kPi:
      return k == xml::NodeKind::kPi;
    case NodeTest::Kind::kName:
      return k == xml::NodeKind::kElem && doc.prop(v) == test.name;
  }
  return false;
}

}  // namespace pathfinder::accel

#include "base/string_pool.h"

#include <cassert>

namespace pathfinder {

StringPool::StringPool()
    : blocks_(new std::atomic<const std::string*>[kMaxBlocks]) {
  for (size_t b = 0; b < kMaxBlocks; ++b) {
    blocks_[b].store(nullptr, std::memory_order_relaxed);
  }
}

StringPool::~StringPool() {
  for (size_t b = 0; b < kMaxBlocks; ++b) {
    delete[] blocks_[b].load(std::memory_order_relaxed);
  }
}

StrId StringPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  size_t id = size_.load(std::memory_order_relaxed);
  size_t b = id >> kBlockBits;
  assert(b < kMaxBlocks && "StringPool capacity exceeded");
  // const_cast: slots are only mutated here, under mu_, before their id
  // is published; readers see them as const.
  auto* block =
      const_cast<std::string*>(blocks_[b].load(std::memory_order_relaxed));
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    blocks_[b].store(block, std::memory_order_release);
  }
  std::string& slot = block[id & kBlockMask];
  slot.assign(s.data(), s.size());
  payload_bytes_ += s.size();
  index_.emplace(std::string_view(slot), static_cast<StrId>(id));
  // Publish the id only after the slot holds its final contents.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<StrId>(id);
}

bool StringPool::Find(std::string_view s, StrId* id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it == index_.end()) return false;
  *id = it->second;
  return true;
}

size_t StringPool::payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return payload_bytes_;
}

}  // namespace pathfinder

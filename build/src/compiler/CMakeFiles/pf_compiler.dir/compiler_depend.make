# Empty compiler generated dependencies file for pf_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/api_smoke_test.dir/api/api_smoke_test.cc.o"
  "CMakeFiles/api_smoke_test.dir/api/api_smoke_test.cc.o.d"
  "api_smoke_test"
  "api_smoke_test.pdb"
  "api_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

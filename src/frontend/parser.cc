#include "frontend/parser.h"

#include <cctype>

#include "frontend/lexer.h"
#include "xml/parser.h"

namespace pathfinder::frontend {

namespace {

/// Strip the "fn:" prefix from built-in function names; other prefixes
/// (local:, fs:, xs:) are kept and matched literally.
std::string CanonicalFunName(const std::string& name) {
  if (name.rfind("fn:", 0) == 0) return name.substr(3);
  return name;
}

class Parser {
 public:
  explicit Parser(std::string_view query) : lex_(query) {}

  Result<Module> ParseModule() {
    PF_RETURN_NOT_OK(lex_.Advance());
    Module mod;
    while (IsKw("declare")) {
      PF_RETURN_NOT_OK(lex_.Advance());
      if (!IsKw("function")) {
        return lex_.Error("only 'declare function' is supported");
      }
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(Function f, ParseFunctionDecl());
      mod.functions.push_back(std::move(f));
    }
    PF_ASSIGN_OR_RETURN(mod.body, ParseExpr());
    if (lex_.Cur().kind != Tok::kEof) {
      return lex_.Error("unexpected trailing input ('" +
                        std::string(TokName(lex_.Cur().kind)) + "')");
    }
    return mod;
  }

 private:
  // --- token helpers ---------------------------------------------------

  bool Is(Tok t) const { return lex_.Cur().kind == t; }
  bool IsKw(std::string_view kw) const {
    return lex_.Cur().kind == Tok::kName && lex_.Cur().text == kw;
  }

  Status Expect(Tok t, const std::string& what) {
    if (!Is(t)) {
      return lex_.Error("expected " + what + ", found '" +
                        std::string(TokName(lex_.Cur().kind)) + "'");
    }
    return lex_.Advance();
  }

  Status ExpectKw(std::string_view kw) {
    if (!IsKw(kw)) {
      return lex_.Error("expected '" + std::string(kw) + "'");
    }
    return lex_.Advance();
  }

  /// Peek at the token after the current one.
  Result<Token> PeekNext() {
    Lexer saved = lex_;
    PF_RETURN_NOT_OK(lex_.Advance());
    Token t = lex_.Cur();
    lex_ = saved;
    return t;
  }

  Result<std::string> ParseVarName() {
    PF_RETURN_NOT_OK(Expect(Tok::kDollar, "'$'"));
    if (!Is(Tok::kName)) return lex_.Error("expected variable name");
    std::string name = lex_.Cur().text;
    PF_RETURN_NOT_OK(lex_.Advance());
    return name;
  }

  ExprPtr New(ExprKind k, std::vector<ExprPtr> children = {}) {
    ExprPtr e = MakeExpr(k, std::move(children));
    e->line = lex_.Cur().line;
    return e;
  }

  // --- prolog ----------------------------------------------------------

  Result<Function> ParseFunctionDecl() {
    if (!Is(Tok::kName)) return lex_.Error("expected function name");
    Function f;
    f.name = lex_.Cur().text;
    PF_RETURN_NOT_OK(lex_.Advance());
    PF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    if (!Is(Tok::kRParen)) {
      for (;;) {
        PF_ASSIGN_OR_RETURN(std::string p, ParseVarName());
        // Optional "as <type>" annotations are accepted and ignored
        // (the engine is dynamically typed).
        if (IsKw("as")) {
          PF_RETURN_NOT_OK(lex_.Advance());
          PF_RETURN_NOT_OK(SkipSequenceType());
        }
        f.params.push_back(std::move(p));
        if (!Is(Tok::kComma)) break;
        PF_RETURN_NOT_OK(lex_.Advance());
      }
    }
    PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    if (IsKw("as")) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_RETURN_NOT_OK(SkipSequenceType());
    }
    PF_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{'"));
    PF_ASSIGN_OR_RETURN(f.body, ParseExpr());
    PF_RETURN_NOT_OK(Expect(Tok::kRBrace, "'}'"));
    PF_RETURN_NOT_OK(Expect(Tok::kSemicolon, "';' after declaration"));
    return f;
  }

  /// Skip a SequenceType annotation: name optionally followed by "()"
  /// and an occurrence indicator (? * +).
  Status SkipSequenceType() {
    if (!Is(Tok::kName)) return lex_.Error("expected type name");
    PF_RETURN_NOT_OK(lex_.Advance());
    if (Is(Tok::kLParen)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      if (Is(Tok::kName)) PF_RETURN_NOT_OK(lex_.Advance());
      PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    }
    if (Is(Tok::kQuestion) || Is(Tok::kStar) || Is(Tok::kPlus)) {
      PF_RETURN_NOT_OK(lex_.Advance());
    }
    return Status::OK();
  }

  // --- expressions -----------------------------------------------------

  Result<ExprPtr> ParseExpr() {
    PF_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!Is(Tok::kComma)) return first;
    ExprPtr seq = New(ExprKind::kSequence, {first});
    while (Is(Tok::kComma)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(next);
    }
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    if ((IsKw("for") || IsKw("let")) && NextIs(Tok::kDollar)) {
      return ParseFlwor();
    }
    if (IsKw("if") && NextIs(Tok::kLParen)) return ParseIf();
    if (IsKw("typeswitch") && NextIs(Tok::kLParen)) return ParseTypeswitch();
    if ((IsKw("some") || IsKw("every")) && NextIs(Tok::kDollar)) {
      return ParseQuantified(IsKw("some"));
    }
    return ParseOr();
  }

  bool NextIs(Tok t) {
    auto nt = PeekNext();
    return nt.ok() && nt->kind == t;
  }

  Result<ExprPtr> ParseFlwor() {
    ExprPtr flwor = New(ExprKind::kFlwor);
    for (;;) {
      if (IsKw("for") && NextIs(Tok::kDollar)) {
        PF_RETURN_NOT_OK(lex_.Advance());
        for (;;) {
          ForLetClause c;
          c.is_let = false;
          PF_ASSIGN_OR_RETURN(c.var, ParseVarName());
          if (IsKw("at")) {
            PF_RETURN_NOT_OK(lex_.Advance());
            PF_ASSIGN_OR_RETURN(c.pos_var, ParseVarName());
          }
          if (IsKw("as")) {
            PF_RETURN_NOT_OK(lex_.Advance());
            PF_RETURN_NOT_OK(SkipSequenceType());
          }
          PF_RETURN_NOT_OK(ExpectKw("in"));
          PF_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          flwor->clauses.push_back(std::move(c));
          if (!Is(Tok::kComma)) break;
          PF_RETURN_NOT_OK(lex_.Advance());
        }
        continue;
      }
      if (IsKw("let") && NextIs(Tok::kDollar)) {
        PF_RETURN_NOT_OK(lex_.Advance());
        for (;;) {
          ForLetClause c;
          c.is_let = true;
          PF_ASSIGN_OR_RETURN(c.var, ParseVarName());
          if (IsKw("as")) {
            PF_RETURN_NOT_OK(lex_.Advance());
            PF_RETURN_NOT_OK(SkipSequenceType());
          }
          PF_RETURN_NOT_OK(Expect(Tok::kColonEq, "':='"));
          PF_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          flwor->clauses.push_back(std::move(c));
          if (!Is(Tok::kComma)) break;
          PF_RETURN_NOT_OK(lex_.Advance());
        }
        continue;
      }
      break;
    }
    if (flwor->clauses.empty()) {
      return lex_.Error("FLWOR needs at least one for/let clause");
    }
    if (IsKw("where")) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(flwor->where, ParseExprSingle());
    }
    if (IsKw("order")) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_RETURN_NOT_OK(ExpectKw("by"));
      for (;;) {
        OrderKey k;
        PF_ASSIGN_OR_RETURN(k.key, ParseExprSingle());
        if (IsKw("ascending")) {
          PF_RETURN_NOT_OK(lex_.Advance());
        } else if (IsKw("descending")) {
          k.ascending = false;
          PF_RETURN_NOT_OK(lex_.Advance());
        }
        if (IsKw("empty")) {  // "empty greatest/least": accepted, ignored
          PF_RETURN_NOT_OK(lex_.Advance());
          PF_RETURN_NOT_OK(lex_.Advance());
        }
        flwor->order_keys.push_back(std::move(k));
        if (!Is(Tok::kComma)) break;
        PF_RETURN_NOT_OK(lex_.Advance());
      }
    }
    PF_RETURN_NOT_OK(ExpectKw("return"));
    PF_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    flwor->children.push_back(ret);
    return flwor;
  }

  Result<ExprPtr> ParseIf() {
    PF_RETURN_NOT_OK(lex_.Advance());  // if
    PF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    PF_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    PF_RETURN_NOT_OK(ExpectKw("then"));
    PF_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    PF_RETURN_NOT_OK(ExpectKw("else"));
    PF_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    return New(ExprKind::kIf, {cond, then_e, else_e});
  }

  Result<ExprPtr> ParseTypeswitch() {
    PF_RETURN_NOT_OK(lex_.Advance());  // typeswitch
    PF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    PF_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    ExprPtr ts = New(ExprKind::kTypeswitch, {operand});
    bool saw_default = false;
    while (IsKw("case") || IsKw("default")) {
      TypeCase tc;
      bool is_default = IsKw("default");
      PF_RETURN_NOT_OK(lex_.Advance());
      if (Is(Tok::kDollar)) {
        PF_ASSIGN_OR_RETURN(tc.var, ParseVarName());
        if (!is_default) PF_RETURN_NOT_OK(ExpectKw("as"));
      }
      if (!is_default) {
        PF_RETURN_NOT_OK(ParseCaseType(&tc));
      } else {
        tc.type = TypeCase::Type::kDefault;
        saw_default = true;
      }
      PF_RETURN_NOT_OK(ExpectKw("return"));
      PF_ASSIGN_OR_RETURN(tc.body, ParseExprSingle());
      ts->cases.push_back(std::move(tc));
      if (is_default) break;
    }
    if (!saw_default) {
      return lex_.Error("typeswitch requires a default clause");
    }
    return ts;
  }

  Status ParseCaseType(TypeCase* tc) {
    if (!Is(Tok::kName)) return lex_.Error("expected type in case clause");
    std::string name = lex_.Cur().text;
    PF_RETURN_NOT_OK(lex_.Advance());
    if (Is(Tok::kLParen)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      if (Is(Tok::kName)) {
        tc->elem_name = lex_.Cur().text;
        PF_RETURN_NOT_OK(lex_.Advance());
      }
      PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
      if (name == "element") {
        tc->type = TypeCase::Type::kElement;
      } else if (name == "attribute") {
        tc->type = TypeCase::Type::kAttribute;
      } else if (name == "text") {
        tc->type = TypeCase::Type::kText;
      } else if (name == "node") {
        tc->type = TypeCase::Type::kNode;
      } else {
        return lex_.Error("unsupported kind test '" + name + "'");
      }
    } else {
      if (name == "xs:integer" || name == "xs:int" || name == "xs:long") {
        tc->type = TypeCase::Type::kInteger;
      } else if (name == "xs:double" || name == "xs:decimal" ||
                 name == "xs:float") {
        tc->type = TypeCase::Type::kDouble;
      } else if (name == "xs:string" || name == "xs:untypedAtomic") {
        tc->type = TypeCase::Type::kString;
      } else if (name == "xs:boolean") {
        tc->type = TypeCase::Type::kBoolean;
      } else {
        return lex_.Error("unsupported case type '" + name + "'");
      }
    }
    // Occurrence indicator on the case type.
    if (Is(Tok::kQuestion) || Is(Tok::kStar) || Is(Tok::kPlus)) {
      PF_RETURN_NOT_OK(lex_.Advance());
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseQuantified(bool some) {
    PF_RETURN_NOT_OK(lex_.Advance());  // some/every
    // Only a single binding is supported (nested quantifiers express the
    // general case).
    ExprPtr q = New(some ? ExprKind::kSome : ExprKind::kEvery);
    PF_ASSIGN_OR_RETURN(q->sval, ParseVarName());
    PF_RETURN_NOT_OK(ExpectKw("in"));
    PF_ASSIGN_OR_RETURN(ExprPtr domain, ParseExprSingle());
    PF_RETURN_NOT_OK(ExpectKw("satisfies"));
    PF_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSingle());
    q->children = {domain, pred};
    return q;
  }

  Result<ExprPtr> ParseBinOpChain(
      Result<ExprPtr> (Parser::*next)(),
      const std::vector<std::pair<std::string, BinOp>>& kws) {
    PF_ASSIGN_OR_RETURN(ExprPtr lhs, (this->*next)());
    for (;;) {
      bool matched = false;
      for (const auto& [kw, op] : kws) {
        if (IsKw(kw)) {
          PF_RETURN_NOT_OK(lex_.Advance());
          PF_ASSIGN_OR_RETURN(ExprPtr rhs, (this->*next)());
          ExprPtr e = New(ExprKind::kBinOp, {lhs, rhs});
          e->op = op;
          lhs = e;
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<ExprPtr> ParseOr() {
    return ParseBinOpChain(&Parser::ParseAnd, {{"or", BinOp::kOr}});
  }

  Result<ExprPtr> ParseAnd() {
    return ParseBinOpChain(&Parser::ParseComparison,
                           {{"and", BinOp::kAnd}});
  }

  Result<ExprPtr> ParseComparison() {
    PF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinOp op;
    bool found = true;
    switch (lex_.Cur().kind) {
      case Tok::kEq:
        op = BinOp::kGenEq;
        break;
      case Tok::kNe:
        op = BinOp::kGenNe;
        break;
      case Tok::kLt:
        op = BinOp::kGenLt;
        break;
      case Tok::kLe:
        op = BinOp::kGenLe;
        break;
      case Tok::kGt:
        op = BinOp::kGenGt;
        break;
      case Tok::kGe:
        op = BinOp::kGenGe;
        break;
      case Tok::kLtLt:
        op = BinOp::kBefore;
        break;
      case Tok::kGtGt:
        op = BinOp::kAfter;
        break;
      case Tok::kName: {
        const std::string& t = lex_.Cur().text;
        if (t == "eq") {
          op = BinOp::kValEq;
        } else if (t == "ne") {
          op = BinOp::kValNe;
        } else if (t == "lt") {
          op = BinOp::kValLt;
        } else if (t == "le") {
          op = BinOp::kValLe;
        } else if (t == "gt") {
          op = BinOp::kValGt;
        } else if (t == "ge") {
          op = BinOp::kValGe;
        } else if (t == "is") {
          op = BinOp::kIs;
        } else {
          found = false;
          op = BinOp::kOr;
        }
        break;
      }
      default:
        found = false;
        op = BinOp::kOr;
        break;
    }
    if (!found) return lhs;
    PF_RETURN_NOT_OK(lex_.Advance());
    PF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    ExprPtr e = New(ExprKind::kBinOp, {lhs, rhs});
    e->op = op;
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    PF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Is(Tok::kPlus) || Is(Tok::kMinus)) {
      BinOp op = Is(Tok::kPlus) ? BinOp::kAdd : BinOp::kSub;
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      ExprPtr e = New(ExprKind::kBinOp, {lhs, rhs});
      e->op = op;
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    PF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (Is(Tok::kStar)) {
        op = BinOp::kMul;
      } else if (IsKw("div")) {
        op = BinOp::kDiv;
      } else if (IsKw("idiv")) {
        op = BinOp::kIdiv;
      } else if (IsKw("mod")) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      ExprPtr e = New(ExprKind::kBinOp, {lhs, rhs});
      e->op = op;
      lhs = e;
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Is(Tok::kMinus)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return New(ExprKind::kUnaryMinus, {operand});
    }
    if (Is(Tok::kPlus)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      return ParseUnary();
    }
    return ParseUnionExpr();
  }

  Result<ExprPtr> ParseUnionExpr() {
    PF_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePath());
    while (Is(Tok::kPipe) || IsKw("union")) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePath());
      ExprPtr e = New(ExprKind::kBinOp, {lhs, rhs});
      e->op = BinOp::kUnion;
      lhs = e;
    }
    return lhs;
  }

  // --- paths -----------------------------------------------------------

  Result<ExprPtr> ParsePath() {
    ExprPtr ctx;
    if (Is(Tok::kSlash)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      ctx = New(ExprKind::kRootCtx);
      if (!StartsStep()) return ctx;  // lone "/"
      PF_ASSIGN_OR_RETURN(ctx, ParseStepExpr(ctx));
    } else if (Is(Tok::kSlashSlash)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      ExprPtr root = New(ExprKind::kRootCtx);
      ExprPtr ds = New(ExprKind::kAxisStep, {root});
      ds->axis = accel::Axis::kDescendantOrSelf;
      ds->test.kind = StepTest::Kind::kAnyKind;
      PF_ASSIGN_OR_RETURN(ctx, ParseStepExpr(ds));
    } else {
      PF_ASSIGN_OR_RETURN(ctx, ParseStepExpr(nullptr));
    }
    for (;;) {
      if (Is(Tok::kSlash)) {
        PF_RETURN_NOT_OK(lex_.Advance());
        PF_ASSIGN_OR_RETURN(ctx, ParseStepExpr(ctx));
      } else if (Is(Tok::kSlashSlash)) {
        PF_RETURN_NOT_OK(lex_.Advance());
        ExprPtr ds = New(ExprKind::kAxisStep, {ctx});
        ds->axis = accel::Axis::kDescendantOrSelf;
        ds->test.kind = StepTest::Kind::kAnyKind;
        PF_ASSIGN_OR_RETURN(ctx, ParseStepExpr(ds));
      } else {
        return ctx;
      }
    }
  }

  /// Can the current token begin a path step?
  bool StartsStep() {
    switch (lex_.Cur().kind) {
      case Tok::kName:
      case Tok::kAt:
      case Tok::kDot:
      case Tok::kDotDot:
      case Tok::kStar:
        return true;
      default:
        return false;
    }
  }

  /// Is the current token the start of a computed constructor
  /// (`element name {`, `element {`, `text {`)? Those must win over a
  /// name-test reading of "element"/"text".
  bool StartsComputedConstructor() {
    if (!Is(Tok::kName)) return false;
    const std::string& n = lex_.Cur().text;
    if (n == "text") return NextIs(Tok::kLBrace);
    if (n != "element") return false;
    if (NextIs(Tok::kLBrace)) return true;
    // element NAME { ... } needs two tokens of lookahead.
    Lexer saved = lex_;
    bool yes = false;
    if (lex_.Advance().ok() && lex_.Cur().kind == Tok::kName &&
        lex_.Advance().ok() && lex_.Cur().kind == Tok::kLBrace) {
      yes = true;
    }
    lex_ = saved;
    return yes;
  }

  /// Parse one step. `ctx == nullptr` means this is the first step of a
  /// relative path: primary expressions are allowed there.
  Result<ExprPtr> ParseStepExpr(ExprPtr ctx) {
    // Axis-qualified step: name::test.
    if (Is(Tok::kName) && NextIs(Tok::kColonColon)) {
      PF_ASSIGN_OR_RETURN(accel::Axis axis, ParseAxisName(lex_.Cur().text));
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_RETURN_NOT_OK(lex_.Advance());  // ::
      return ParseStepTail(ctx, axis);
    }
    if (Is(Tok::kAt)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      return ParseStepTail(ctx, accel::Axis::kAttribute);
    }
    if (Is(Tok::kDotDot)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      ExprPtr e = New(ExprKind::kAxisStep,
                      {ctx ? ctx : New(ExprKind::kContextItem)});
      e->axis = accel::Axis::kParent;
      e->test.kind = StepTest::Kind::kAnyKind;
      return ParsePredicates(e);
    }
    // Name test / kind test (child axis) — but a name followed by '(' is
    // a function call or kind test, and for the first step arbitrary
    // primaries are allowed.
    bool kind_test = false;
    if (Is(Tok::kName) && NextIs(Tok::kLParen)) {
      const std::string& t = lex_.Cur().text;
      kind_test = (t == "node" || t == "text" || t == "comment" ||
                   t == "processing-instruction");
    }
    if (((Is(Tok::kName) && !NextIs(Tok::kLParen)) || Is(Tok::kStar) ||
         kind_test) &&
        !StartsComputedConstructor()) {
      return ParseStepTail(ctx, accel::Axis::kChild);
    }
    // Primary expression step.
    PF_ASSIGN_OR_RETURN(ExprPtr prim, ParsePrimary());
    if (ctx) {
      return lex_.Error(
          "primary expression cannot follow '/' in a path");
    }
    // "(path)[p]" filters the whole sequence, unlike "path[p]" whose
    // predicate counts per context node. A parenthesized step therefore
    // must not expose its kAxisStep node to the predicate attachment:
    // wrap it so the normalizer applies sequence-filter semantics.
    if (prim->kind == ExprKind::kAxisStep && Is(Tok::kLBracket)) {
      prim = New(ExprKind::kSequence, {prim});
    }
    return ParsePredicates(prim);
  }

  Result<accel::Axis> ParseAxisName(const std::string& name) {
    if (name == "child") return accel::Axis::kChild;
    if (name == "descendant") return accel::Axis::kDescendant;
    if (name == "descendant-or-self") return accel::Axis::kDescendantOrSelf;
    if (name == "self") return accel::Axis::kSelf;
    if (name == "parent") return accel::Axis::kParent;
    if (name == "ancestor") return accel::Axis::kAncestor;
    if (name == "ancestor-or-self") return accel::Axis::kAncestorOrSelf;
    if (name == "following") return accel::Axis::kFollowing;
    if (name == "preceding") return accel::Axis::kPreceding;
    if (name == "following-sibling") return accel::Axis::kFollowingSibling;
    if (name == "preceding-sibling") return accel::Axis::kPrecedingSibling;
    if (name == "attribute") return accel::Axis::kAttribute;
    return lex_.Error("unknown axis '" + name + "'");
  }

  Result<ExprPtr> ParseStepTail(ExprPtr ctx, accel::Axis axis) {
    ExprPtr e =
        New(ExprKind::kAxisStep, {ctx ? ctx : New(ExprKind::kContextItem)});
    e->axis = axis;
    if (Is(Tok::kStar)) {
      e->test.kind = StepTest::Kind::kElement;
      PF_RETURN_NOT_OK(lex_.Advance());
    } else if (Is(Tok::kName)) {
      std::string name = lex_.Cur().text;
      if (NextIs(Tok::kLParen)) {
        PF_RETURN_NOT_OK(lex_.Advance());
        PF_RETURN_NOT_OK(lex_.Advance());  // (
        if (name == "node") {
          e->test.kind = StepTest::Kind::kAnyKind;
        } else if (name == "text") {
          e->test.kind = StepTest::Kind::kText;
        } else if (name == "comment") {
          e->test.kind = StepTest::Kind::kComment;
        } else if (name == "processing-instruction") {
          e->test.kind = StepTest::Kind::kPi;
          if (Is(Tok::kName) || Is(Tok::kStr)) {
            PF_RETURN_NOT_OK(lex_.Advance());  // PI target ignored
          }
        } else if (name == "element") {
          e->test.kind = StepTest::Kind::kElement;
          if (Is(Tok::kName)) {
            e->test.kind = StepTest::Kind::kName;
            e->test.name = lex_.Cur().text;
            PF_RETURN_NOT_OK(lex_.Advance());
          }
        } else {
          return lex_.Error("unknown kind test '" + name + "'");
        }
        PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
      } else {
        e->test.kind = StepTest::Kind::kName;
        e->test.name = name;
        PF_RETURN_NOT_OK(lex_.Advance());
      }
    } else {
      return lex_.Error("expected node test");
    }
    return ParsePredicates(e);
  }

  Result<ExprPtr> ParsePredicates(ExprPtr e) {
    while (Is(Tok::kLBracket)) {
      PF_RETURN_NOT_OK(lex_.Advance());
      PF_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      PF_RETURN_NOT_OK(Expect(Tok::kRBracket, "']'"));
      e->preds.push_back(pred);
    }
    return e;
  }

  // --- primaries -------------------------------------------------------

  Result<ExprPtr> ParsePrimary() {
    switch (lex_.Cur().kind) {
      case Tok::kInt: {
        ExprPtr e = New(ExprKind::kIntLit);
        e->ival = lex_.Cur().ival;
        PF_RETURN_NOT_OK(lex_.Advance());
        return e;
      }
      case Tok::kDbl: {
        ExprPtr e = New(ExprKind::kDblLit);
        e->dval = lex_.Cur().dval;
        PF_RETURN_NOT_OK(lex_.Advance());
        return e;
      }
      case Tok::kStr: {
        ExprPtr e = New(ExprKind::kStrLit);
        e->sval = lex_.Cur().text;
        PF_RETURN_NOT_OK(lex_.Advance());
        return e;
      }
      case Tok::kDollar: {
        ExprPtr e = New(ExprKind::kVar);
        PF_ASSIGN_OR_RETURN(e->sval, ParseVarName());
        return e;
      }
      case Tok::kLParen: {
        PF_RETURN_NOT_OK(lex_.Advance());
        if (Is(Tok::kRParen)) {
          PF_RETURN_NOT_OK(lex_.Advance());
          return New(ExprKind::kEmpty);
        }
        PF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
        return e;
      }
      case Tok::kDot: {
        PF_RETURN_NOT_OK(lex_.Advance());
        return New(ExprKind::kContextItem);
      }
      case Tok::kDirectElemStart:
        return ParseDirectElem();
      case Tok::kName: {
        const std::string& name = lex_.Cur().text;
        // Computed constructors.
        if (name == "element") {
          auto nt = PeekNext();
          if (nt.ok() && (nt->kind == Tok::kLBrace ||
                          nt->kind == Tok::kName)) {
            return ParseComputedElem();
          }
        }
        if (name == "text") {
          auto nt = PeekNext();
          if (nt.ok() && nt->kind == Tok::kLBrace) {
            return ParseComputedText();
          }
        }
        if (NextIs(Tok::kLParen)) return ParseFunctionCall();
        return lex_.Error("unexpected name '" + name + "'");
      }
      default:
        return lex_.Error("unexpected token '" +
                          std::string(TokName(lex_.Cur().kind)) + "'");
    }
  }

  Result<ExprPtr> ParseFunctionCall() {
    ExprPtr e = New(ExprKind::kFunCall);
    e->sval = CanonicalFunName(lex_.Cur().text);
    PF_RETURN_NOT_OK(lex_.Advance());
    PF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    if (!Is(Tok::kRParen)) {
      for (;;) {
        PF_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
        e->children.push_back(arg);
        if (!Is(Tok::kComma)) break;
        PF_RETURN_NOT_OK(lex_.Advance());
      }
    }
    PF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    return e;
  }

  Result<ExprPtr> ParseComputedElem() {
    PF_RETURN_NOT_OK(lex_.Advance());  // element
    ExprPtr name_expr;
    if (Is(Tok::kName)) {
      name_expr = New(ExprKind::kStrLit);
      name_expr->sval = lex_.Cur().text;
      PF_RETURN_NOT_OK(lex_.Advance());
    } else {
      PF_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{'"));
      PF_ASSIGN_OR_RETURN(name_expr, ParseExpr());
      PF_RETURN_NOT_OK(Expect(Tok::kRBrace, "'}'"));
    }
    PF_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{'"));
    ExprPtr e = New(ExprKind::kElemConstr, {name_expr});
    if (!Is(Tok::kRBrace)) {
      PF_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      e->children.push_back(content);
    }
    PF_RETURN_NOT_OK(Expect(Tok::kRBrace, "'}'"));
    return e;
  }

  Result<ExprPtr> ParseComputedText() {
    PF_RETURN_NOT_OK(lex_.Advance());  // text
    PF_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{'"));
    PF_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
    PF_RETURN_NOT_OK(Expect(Tok::kRBrace, "'}'"));
    return New(ExprKind::kTextConstr, {content});
  }

  // --- direct constructors (raw scanning) -------------------------------

  static bool RawNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool RawNameChar(char c) {
    return RawNameStart(c) ||
           std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '.' || c == ':';
  }

  Result<std::string> RawReadName(size_t* p) {
    if (!RawNameStart(lex_.RawPeek(*p))) {
      return lex_.Error("expected name in direct constructor");
    }
    size_t start = *p;
    while (RawNameChar(lex_.RawPeek(*p))) ++*p;
    return std::string(lex_.RawSlice(start, *p));
  }

  void RawSkipWs(size_t* p) {
    while (std::isspace(static_cast<unsigned char>(lex_.RawPeek(*p)))) {
      ++*p;
    }
  }

  /// Parse `{ Expr }` starting at offset `*p` (which points at '{').
  /// Afterwards `*p` points just past the matching '}'.
  Result<ExprPtr> RawEnclosedExpr(size_t* p) {
    PF_RETURN_NOT_OK(lex_.SeekTo(*p));  // lexes '{'
    PF_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{'"));
    PF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Is(Tok::kRBrace)) return lex_.Error("expected '}'");
    *p = lex_.Cur().end;
    return e;
  }

  /// cur_ token is kDirectElemStart: '<' directly followed by a name.
  /// Raw-scan the whole constructor, then resume token mode after it.
  Result<ExprPtr> ParseDirectElem() {
    size_t p = lex_.Cur().end;  // offset of the tag name
    PF_ASSIGN_OR_RETURN(ExprPtr elem, ParseDirectElemAt(&p));
    PF_RETURN_NOT_OK(lex_.SeekTo(p));
    return elem;
  }

  Result<ExprPtr> ParseDirectElemAt(size_t* p) {
    PF_ASSIGN_OR_RETURN(std::string tag, RawReadName(p));
    ExprPtr name_expr = MakeExpr(ExprKind::kStrLit);
    name_expr->sval = tag;
    ExprPtr elem = MakeExpr(ExprKind::kElemConstr, {name_expr});

    // Attributes.
    for (;;) {
      RawSkipWs(p);
      char c = lex_.RawPeek(*p);
      if (c == '/' || c == '>' || c == '\0') break;
      PF_ASSIGN_OR_RETURN(std::string aname, RawReadName(p));
      RawSkipWs(p);
      if (lex_.RawPeek(*p) != '=') {
        return lex_.Error("expected '=' in attribute");
      }
      ++*p;
      RawSkipWs(p);
      char quote = lex_.RawPeek(*p);
      if (quote != '"' && quote != '\'') {
        return lex_.Error("attribute value must be quoted");
      }
      ++*p;
      ExprPtr attr = MakeExpr(ExprKind::kAttrConstr);
      attr->sval = aname;
      std::string lit;
      auto flush_lit = [&]() -> Status {
        if (lit.empty()) return Status::OK();
        PF_ASSIGN_OR_RETURN(std::string decoded, xml::DecodeEntities(lit));
        ExprPtr part = MakeExpr(ExprKind::kStrLit);
        part->sval = decoded;
        attr->children.push_back(part);
        lit.clear();
        return Status::OK();
      };
      for (;;) {
        char d = lex_.RawPeek(*p);
        if (d == '\0') return lex_.Error("unterminated attribute value");
        if (d == quote) {
          if (lex_.RawPeek(*p + 1) == quote) {  // doubled quote
            lit += quote;
            *p += 2;
            continue;
          }
          ++*p;
          break;
        }
        if (d == '{') {
          if (lex_.RawPeek(*p + 1) == '{') {
            lit += '{';
            *p += 2;
            continue;
          }
          PF_RETURN_NOT_OK(flush_lit());
          PF_ASSIGN_OR_RETURN(ExprPtr e, RawEnclosedExpr(p));
          attr->children.push_back(e);
          continue;
        }
        if (d == '}') {
          if (lex_.RawPeek(*p + 1) == '}') {
            lit += '}';
            *p += 2;
            continue;
          }
          return lex_.Error("lone '}' in attribute value");
        }
        lit += d;
        ++*p;
      }
      PF_RETURN_NOT_OK(flush_lit());
      elem->children.push_back(attr);
    }

    if (lex_.RawPeek(*p) == '/') {
      if (lex_.RawPeek(*p + 1) != '>') {
        return lex_.Error("expected '/>'");
      }
      *p += 2;
      return elem;
    }
    if (lex_.RawPeek(*p) != '>') return lex_.Error("expected '>'");
    ++*p;

    // Content.
    std::string lit;
    auto flush_text = [&]() -> Status {
      if (lit.empty()) return Status::OK();
      // Boundary whitespace (whitespace-only runs between tags and
      // enclosed expressions) is stripped, per XQuery defaults.
      bool all_ws = true;
      for (char c : lit) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_ws = false;
          break;
        }
      }
      if (!all_ws) {
        PF_ASSIGN_OR_RETURN(std::string decoded, xml::DecodeEntities(lit));
        ExprPtr part = MakeExpr(ExprKind::kStrLit);
        part->sval = decoded;
        elem->children.push_back(part);
      }
      lit.clear();
      return Status::OK();
    };

    for (;;) {
      char c = lex_.RawPeek(*p);
      if (c == '\0') return lex_.Error("unterminated element <" + tag + ">");
      if (c == '{') {
        if (lex_.RawPeek(*p + 1) == '{') {
          lit += '{';
          *p += 2;
          continue;
        }
        PF_RETURN_NOT_OK(flush_text());
        PF_ASSIGN_OR_RETURN(ExprPtr e, RawEnclosedExpr(p));
        elem->children.push_back(e);
        continue;
      }
      if (c == '}') {
        if (lex_.RawPeek(*p + 1) == '}') {
          lit += '}';
          *p += 2;
          continue;
        }
        return lex_.Error("lone '}' in element content");
      }
      if (c == '<') {
        if (lex_.RawPeek(*p + 1) == '/') {
          PF_RETURN_NOT_OK(flush_text());
          *p += 2;
          PF_ASSIGN_OR_RETURN(std::string close, RawReadName(p));
          if (close != tag) {
            return lex_.Error("mismatched end tag </" + close + ">");
          }
          RawSkipWs(p);
          if (lex_.RawPeek(*p) != '>') return lex_.Error("expected '>'");
          ++*p;
          return elem;
        }
        if (lex_.RawSlice(*p, std::min(*p + 4, lex_.InputSize())) ==
            "<!--") {
          PF_RETURN_NOT_OK(flush_text());
          *p += 4;
          while (!lex_.RawAtEnd(*p) &&
                 lex_.RawSlice(*p, std::min(*p + 3, lex_.InputSize())) !=
                     "-->") {
            ++*p;
          }
          if (lex_.RawAtEnd(*p)) {
            return lex_.Error("unterminated comment");
          }
          *p += 3;
          continue;
        }
        if (RawNameStart(lex_.RawPeek(*p + 1))) {
          PF_RETURN_NOT_OK(flush_text());
          ++*p;
          PF_ASSIGN_OR_RETURN(ExprPtr child, ParseDirectElemAt(p));
          elem->children.push_back(child);
          continue;
        }
        return lex_.Error("unexpected '<' in element content");
      }
      lit += c;
      ++*p;
    }
  }

  Lexer lex_;
};

}  // namespace

Result<Module> ParseQuery(std::string_view query) {
  Parser parser(query);
  return parser.ParseModule();
}

}  // namespace pathfinder::frontend

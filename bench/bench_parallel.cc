// Thread-scaling sweep for the morsel-parallel kernel and staircase
// join: each workload runs at 1/2/4/8 threads and reports wall-clock
// plus speedup over the single-thread (exact legacy) path. Results are
// checked for byte-identity against the serial run before timing — a
// workload whose parallel output diverges aborts the bench.
//
// Emits a machine-readable BENCH_parallel.json next to the report so CI
// and plots can pick the numbers up.
//
// Workloads:
//   join-int     2M x 1M int-key hash join (build+probe+gather)
//   sort         1M-row two-key stable sort permutation
//   groupagg     2M-row grouped double sum
//   scj-desc     staircase descendant scan, 1 root context (XMark)
//   scj-spread   staircase descendant scan, 4096 spread contexts
//   xmark-q8/q9  end-to-end XMark join queries through the API

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/step.h"
#include "api/pathfinder.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "bat/kernel.h"
#include "bench/bench_util.h"
#include "xmark/queries.h"

namespace pathfinder::bench {
namespace {

using bat::Column;
using bat::ColumnPtr;
using bat::IdxVec;
using bat::Table;
using xml::Pre;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Row {
  std::string workload;
  int threads;
  double ms;
  double speedup;
};

std::vector<Row> g_rows;

struct PipeRow {
  int query;
  int threads;
  double ms_materialized;
  double ms_pipelined;
  double speedup;
};

std::vector<PipeRow> g_pipe_rows;

// Run `fn(tp)` at every thread count; returns false on a mismatch
// reported by the caller-supplied check.
void Sweep(const std::string& name,
           const std::function<void(ThreadPool*)>& fn) {
  double base_ms = 0;
  std::printf("%-12s", name.c_str());
  for (int t : kThreadCounts) {
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* tp = nullptr;
    if (t > 1) {
      owned = std::make_unique<ThreadPool>(t);
      tp = owned.get();
    }
    double ms = BestOfMs(3, [&] { fn(tp); });
    if (t == 1) base_ms = ms;
    double speedup = ms > 0 ? base_ms / ms : 1.0;
    g_rows.push_back({name, t, ms, speedup});
    std::printf(" %10s %5.2fx", FmtMs(ms).c_str(), speedup);
  }
  std::printf("\n");
  std::fflush(stdout);
}

ColumnPtr RandInts(size_t n, int64_t hi, uint64_t seed) {
  auto c = Column::MakeInt(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) c->ints().push_back(rng.Range(0, hi));
  return c;
}

int Main() {
  std::printf("Thread scaling (morsel-parallel kernel + staircase join)\n");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-12s", "workload");
  for (int t : kThreadCounts) std::printf("    t=%-2d    speedup", t);
  std::printf("\n");

  // --- kernel: hash join -------------------------------------------------
  {
    ColumnPtr l = RandInts(2'000'000, 200'000, 1);
    ColumnPtr r = RandInts(1'000'000, 200'000, 2);
    StringPool pool;
    IdxVec sl, sr;
    if (!bat::HashJoinIndices(*l, *r, pool, &sl, &sr, nullptr).ok()) {
      return 1;
    }
    ThreadPool check(3);
    IdxVec cl, cr;
    if (!bat::HashJoinIndices(*l, *r, pool, &cl, &cr, &check).ok() ||
        cl != sl || cr != sr) {
      std::fprintf(stderr, "join-int: parallel result diverges\n");
      return 1;
    }
    Sweep("join-int", [&](ThreadPool* tp) {
      IdxVec li, ri;
      (void)bat::HashJoinIndices(*l, *r, pool, &li, &ri, tp);
      ColumnPtr g = bat::Gather(*l, li, tp);
    });
  }

  // --- kernel: sort ------------------------------------------------------
  {
    Table t;
    t.AddCol("a", RandInts(1'000'000, 500, 3));
    t.AddCol("b", RandInts(1'000'000, 1'000'000, 4));
    StringPool pool;
    auto serial = bat::SortPerm(t, {"a", "b"}, pool, {}, nullptr);
    ThreadPool check(3);
    auto par = bat::SortPerm(t, {"a", "b"}, pool, {}, &check);
    if (!serial.ok() || !par.ok() || *serial != *par) {
      std::fprintf(stderr, "sort: parallel result diverges\n");
      return 1;
    }
    Sweep("sort", [&](ThreadPool* tp) {
      (void)bat::SortPerm(t, {"a", "b"}, pool, {}, tp);
    });
  }

  // --- kernel: grouped aggregation ---------------------------------------
  {
    Table t;
    t.AddCol("g", RandInts(2'000'000, 999, 5));
    auto vals = Column::MakeItem(2'000'000);
    Rng rng(6);
    for (size_t i = 0; i < 2'000'000; ++i) {
      vals->items().push_back(Item::Dbl(rng.NextDouble()));
    }
    t.AddCol("v", vals);
    StringPool pool;
    auto serial = bat::GroupAgg(t, "g", "v", bat::AggKind::kSum, pool, "g",
                                "s", nullptr);
    ThreadPool check(3);
    auto par = bat::GroupAgg(t, "g", "v", bat::AggKind::kSum, pool, "g",
                             "s", &check);
    if (!serial.ok() || !par.ok() ||
        par->col(1)->items() != serial->col(1)->items()) {
      std::fprintf(stderr, "groupagg: parallel result diverges\n");
      return 1;
    }
    Sweep("groupagg", [&](ThreadPool* tp) {
      (void)bat::GroupAgg(t, "g", "v", bat::AggKind::kSum, pool, "g", "s",
                          tp);
    });
  }

  // --- staircase join ----------------------------------------------------
  {
    double sf = ScaleFactors().back();
    xml::Database* db = XMarkDb(sf);
    const xml::Document& doc = db->doc(0);
    auto scj_case = [&](const std::vector<Pre>& contexts,
                        const char* name) {
      std::vector<Pre> serial_out;
      accel::StaircaseJoin(doc, contexts, accel::Axis::kDescendant,
                           accel::NodeTest::Element(), &serial_out, nullptr,
                           nullptr);
      ThreadPool check(3);
      std::vector<Pre> par_out;
      accel::StaircaseJoin(doc, contexts, accel::Axis::kDescendant,
                           accel::NodeTest::Element(), &par_out, nullptr,
                           &check);
      if (par_out != serial_out) {
        std::fprintf(stderr, "%s: parallel result diverges\n", name);
        std::exit(1);
      }
      Sweep(name, [&](ThreadPool* tp) {
        std::vector<Pre> out;
        accel::StaircaseJoin(doc, contexts, accel::Axis::kDescendant,
                             accel::NodeTest::Element(), &out, nullptr, tp);
      });
    };
    scj_case({1}, "scj-desc");
    std::vector<Pre> spread;
    Pre step = std::max<Pre>(1, doc.num_nodes() / 4096);
    for (Pre v = 1; v < doc.num_nodes() && spread.size() < 4096;
         v += step) {
      Pre u = v;
      while (u < doc.num_nodes() && doc.IsAttr(u)) ++u;
      if (u < doc.num_nodes() && (spread.empty() || spread.back() < u)) {
        spread.push_back(u);
      }
    }
    scj_case(spread, "scj-spread");

    // --- end-to-end XMark join queries -----------------------------------
    Pathfinder pf(db);
    for (int qn : {8, 9}) {
      const auto& q = xmark::GetXMarkQuery(qn);
      char name[32];
      std::snprintf(name, sizeof(name), "xmark-q%d", qn);
      Sweep(name, [&](ThreadPool* tp) {
        QueryOptions opts;
        opts.context_doc = "auction.xml";
        // Repeat runs must re-execute, not hit the cross-query cache.
        opts.plan_cache = 0;
        opts.subplan_cache = 0;
        // tp is built per thread count by Sweep; the API takes a count.
        opts.num_threads = tp == nullptr ? 1 : tp->num_threads();
        auto r = pf.Run(q.text, opts);
        if (!r.ok()) {
          std::fprintf(stderr, "Q%d: %s\n", qn,
                       r.status().ToString().c_str());
          std::exit(1);
        }
      });
    }
  }

  // --- pipelined vs. materialized execution ------------------------------
  // Every XMark query, fused-fragment execution against one BAT per
  // operator, at 1/2/4 threads. Results are checked byte-identical
  // before timing.
  {
    double sf = ScaleFactors().back();
    xml::Database* db = XMarkDb(sf);
    Pathfinder pf(db);
    auto run = [&](const char* text, int pipeline, int threads) {
      QueryOptions opts;
      opts.context_doc = "auction.xml";
      // Repeat runs must re-execute, not hit the cross-query cache.
      opts.plan_cache = 0;
      opts.subplan_cache = 0;
      opts.pipeline = pipeline;
      opts.num_threads = threads;
      return pf.Run(text, opts);
    };
    constexpr int kPipeThreads[] = {1, 2, 4};
    std::printf("\nPipelined vs. materialized execution (XMark)\n");
    std::printf("%-10s", "query");
    for (int t : kPipeThreads) {
      std::printf("  t=%d mat      pipe   speedup", t);
    }
    std::printf("\n");
    for (const auto& q : xmark::XMarkQueries()) {
      auto base = run(q.text, /*pipeline=*/0, /*threads=*/1);
      auto base_s = base.ok() ? base->Serialize()
                              : Result<std::string>(base.status());
      if (!base_s.ok()) {
        std::fprintf(stderr, "Q%d: %s\n", q.number,
                     base_s.status().ToString().c_str());
        return 1;
      }
      for (int t : kPipeThreads) {
        auto p = run(q.text, /*pipeline=*/1, t);
        auto ps = p.ok() ? p->Serialize() : Result<std::string>(p.status());
        if (!ps.ok() || *ps != *base_s) {
          std::fprintf(stderr, "Q%d: pipelined result diverges at t=%d\n",
                       q.number, t);
          return 1;
        }
      }
      std::printf("xmark-q%-3d", q.number);
      for (int t : kPipeThreads) {
        double mat = BestOfMs(3, [&] { (void)run(q.text, 0, t); });
        double pipe = BestOfMs(3, [&] { (void)run(q.text, 1, t); });
        double sp = pipe > 0 ? mat / pipe : 1.0;
        g_pipe_rows.push_back({q.number, t, mat, pipe, sp});
        std::printf(" %9s %9s %6.2fx", FmtMs(mat).c_str(),
                    FmtMs(pipe).c_str(), sp);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  // --- JSON report -------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < g_rows.size(); ++i) {
      const Row& r = g_rows[i];
      std::fprintf(f,
                   "  {\"workload\": \"%s\", \"threads\": %d, "
                   "\"ms\": %.3f, \"speedup\": %.3f}%s\n",
                   r.workload.c_str(), r.threads, r.ms, r.speedup,
                   i + 1 < g_rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_parallel.json (%zu rows)\n", g_rows.size());
  }
  f = std::fopen("BENCH_pipeline.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < g_pipe_rows.size(); ++i) {
      const PipeRow& r = g_pipe_rows[i];
      std::fprintf(f,
                   "  {\"query\": %d, \"threads\": %d, "
                   "\"ms_materialized\": %.3f, \"ms_pipelined\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   r.query, r.threads, r.ms_materialized, r.ms_pipelined,
                   r.speedup, i + 1 < g_pipe_rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote BENCH_pipeline.json (%zu rows)\n",
                g_pipe_rows.size());
  }
  std::printf(
      "\nSpeedups are relative to t=1, which runs the exact serial legacy "
      "code paths. On a single-core machine all rows stay near 1x — the "
      "morsel decomposition adds only ordered-merge overhead.\n");
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main() { return pathfinder::bench::Main(); }

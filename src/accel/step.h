#ifndef PATHFINDER_ACCEL_STEP_H_
#define PATHFINDER_ACCEL_STEP_H_

#include <vector>

#include "accel/axis.h"
#include "base/thread_pool.h"
#include "xml/document.h"

namespace pathfinder::accel {

/// Naive single-context axis step: evaluate `axis::test` from context
/// node `v` by region selection over the pre|size|level encoding (the
/// "tree-unaware RDBMS" strategy the paper improves on). Results are
/// appended to `out` in document order.
///
/// This is the correctness oracle for the staircase join and the
/// ablation baseline of bench_staircase.
void NaiveStep(const xml::Document& doc, xml::Pre v, Axis axis,
               const NodeTest& test, std::vector<xml::Pre>* out);

/// Counters reported by the staircase join (ablation bench E6).
struct StaircaseStats {
  size_t contexts_in = 0;
  size_t contexts_pruned = 0;  // removed by the pruning phase
  size_t nodes_scanned = 0;    // encoding rows touched
  size_t results = 0;
  /// Path-summary consumption (PF_PATHSUM). `path_partitions_pruned`
  /// counts summary path partitions a name-test scan never fanned out
  /// to (the non-matching element paths, once per pruned staircase
  /// call); `structural_answers` counts step evaluations answered
  /// entirely from the summary's partitions (kPathScan groups) without
  /// touching the encoding. Both are computed in the serial planning
  /// phase, so they are identical at every thread count.
  size_t path_partitions_pruned = 0;
  size_t structural_answers = 0;

  void Reset() { *this = StaircaseStats{}; }

  /// Accumulate counters from another evaluation (used to fold
  /// per-group stats back together when Step groups run in parallel).
  void Merge(const StaircaseStats& o) {
    contexts_in += o.contexts_in;
    contexts_pruned += o.contexts_pruned;
    nodes_scanned += o.nodes_scanned;
    results += o.results;
    path_partitions_pruned += o.path_partitions_pruned;
    structural_answers += o.structural_answers;
  }
};

/// Staircase join (paper [7], Sec. 2 "XPath axes"): evaluate one axis
/// step for a whole *sequence* of context nodes in a single pass.
///
/// `contexts` must be duplicate-free and sorted by pre (document order);
/// the result is duplicate-free and in document order — i.e. the
/// operator has the fs:distinct-doc-order postcondition built in, which
/// is why the compiler can drop explicit sort/dedup steps after it.
///
/// Tree-awareness exploited:
///  * pruning: context nodes covered by another context are dropped
///    before scanning (descendant/ancestor/self variants),
///  * partitioning: the remaining contexts partition the pre axis, so
///    each encoding row is inspected at most once,
///  * skipping: subtrees that cannot contain results are jumped over
///    via the size column.
///
/// With a ThreadPool the scan phase runs morsel-parallel: the
/// partitioning property above means the pruned contexts' scan ranges
/// are disjoint and ascending, so range chunks can be evaluated
/// independently and concatenated in chunk order without any re-sort —
/// results and stats are identical to the serial evaluation at every
/// thread count. Pruning itself stays serial (it is a linear pass over
/// the context sequence, tiny next to the scans).
/// With `summary` (the document's path summary, see xml/path_summary.h)
/// the name-test variants of the region-scanning axes — descendant,
/// descendant-or-self, following, preceding — skip the encoding scan
/// entirely: the candidate set is read from the tag's path partitions
/// (binary-searched to the scan range and merged in document order), so
/// only rows that can match are ever touched. Results and their order
/// are identical with and without a summary; only `nodes_scanned`
/// drops to the candidate count and `path_partitions_pruned` reports
/// the partitions skipped.
void StaircaseJoin(const xml::Document& doc,
                   const std::vector<xml::Pre>& contexts, Axis axis,
                   const NodeTest& test, std::vector<xml::Pre>* out,
                   StaircaseStats* stats = nullptr,
                   ThreadPool* tp = nullptr,
                   const xml::PathSummary* summary = nullptr);

}  // namespace pathfinder::accel

#endif  // PATHFINDER_ACCEL_STEP_H_

// Pipelined-vs-materialized differential harness.
//
// The fused executor (PF_PIPELINE / QueryOptions::pipeline) promises
// byte-identical serialized results to the op-at-a-time executor at
// every thread count. This suite locks that down three ways:
//
//   1. Every XMark query, pipeline on vs. off, at 1/2/7 threads.
//   2. One explicit-axis query per staircase axis, same matrix.
//   3. Operator coverage: every fusable OpKind that appears in the
//      optimized XMark plans must actually execute under the fused
//      path, and no pipeline-breaking kind may ever be fused.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "accel/axis.h"
#include "algebra/op.h"
#include "api/pathfinder.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace pathfinder {
namespace {

// Shared XMark instance: small enough for a per-test matrix of six
// full runs, large enough that morsel chunking and join fan-out are
// exercised (a few thousand nodes).
xml::Database* Db() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    auto doc = xmark::GenerateXMark(0.002, 42, d->pool());
    if (!doc.ok()) {
      ADD_FAILURE() << "XMark generation failed: "
                    << doc.status().ToString();
      return d;
    }
    d->AddDocument("auction.xml", std::move(*doc));
    return d;
  }();
  return db;
}

// Runs `query` and serializes; errors fold into the returned string so
// the comparison below also pins down failure behavior.
std::string RunConfig(const std::string& query, int pipeline, int threads) {
  Pathfinder pf(Db());
  QueryOptions opts;
  opts.context_doc = "auction.xml";
  opts.pipeline = pipeline;
  opts.num_threads = threads;
  auto r = pf.Run(query, opts);
  if (!r.ok()) return "<error: " + r.status().ToString() + ">";
  auto s = r->Serialize();
  if (!s.ok()) return "<error: " + s.status().ToString() + ">";
  return *s;
}

void ExpectAllConfigsIdentical(const std::string& query) {
  // Baseline: materialized, serial — the exact pre-pipeline code path.
  const std::string base = RunConfig(query, /*pipeline=*/0, /*threads=*/1);
  ASSERT_EQ(base.find("<error"), std::string::npos) << base;
  for (int threads : {1, 2, 7}) {
    EXPECT_EQ(RunConfig(query, /*pipeline=*/1, threads), base)
        << "pipelined diverged at threads=" << threads;
    EXPECT_EQ(RunConfig(query, /*pipeline=*/0, threads), base)
        << "materialized diverged at threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// 1. XMark queries.

class XMarkPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(XMarkPipelineTest, PipelinedMatchesMaterialized) {
  const xmark::XMarkQuery& q = xmark::GetXMarkQuery(GetParam());
  ExpectAllConfigsIdentical(q.text);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, XMarkPipelineTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// 2. Staircase axes.

struct AxisCase {
  accel::Axis axis;
  const char* query;
};

// One explicit-axis query per staircase axis, phrased against the
// XMark schema so every axis produces a non-trivial result.
const AxisCase kAxisCases[] = {
    {accel::Axis::kChild, "/site/child::*"},
    {accel::Axis::kDescendant, "/site/regions/descendant::item"},
    {accel::Axis::kDescendantOrSelf,
     "/site/open_auctions/descendant-or-self::*"},
    {accel::Axis::kSelf, "//item/self::item/@id"},
    {accel::Axis::kParent, "//name/parent::*/@id"},
    {accel::Axis::kAncestor, "//bidder/ancestor::open_auction/@id"},
    {accel::Axis::kAncestorOrSelf, "//bidder/ancestor-or-self::*/@id"},
    {accel::Axis::kFollowing, "//categories/following::name"},
    {accel::Axis::kPreceding, "//closed_auctions/preceding::name"},
    {accel::Axis::kFollowingSibling, "//bidder/following-sibling::*"},
    {accel::Axis::kPrecedingSibling, "//bidder/preceding-sibling::*"},
    {accel::Axis::kAttribute, "//item/attribute::id"},
};

class AxisPipelineTest : public ::testing::TestWithParam<AxisCase> {};

TEST_P(AxisPipelineTest, PipelinedMatchesMaterialized) {
  ExpectAllConfigsIdentical(GetParam().query);
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, AxisPipelineTest, ::testing::ValuesIn(kAxisCases),
    [](const ::testing::TestParamInfo<AxisCase>& info) {
      std::string n = accel::AxisName(info.param.axis);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// The table above must stay in sync with the axis enum: one case per
// staircase axis, no axis forgotten.
TEST(AxisPipelineTest, CoversEveryAxis) {
  constexpr size_t kAxisCount =
      static_cast<size_t>(accel::Axis::kAttribute) + 1;
  std::array<bool, kAxisCount> covered{};
  for (const AxisCase& c : kAxisCases)
    covered[static_cast<size_t>(c.axis)] = true;
  for (size_t a = 0; a < kAxisCount; ++a)
    EXPECT_TRUE(covered[a]) << "no differential query for axis "
                            << accel::AxisName(static_cast<accel::Axis>(a));
}

// ---------------------------------------------------------------------------
// 3. Operator coverage under the fused path.

TEST(PipelineOperatorCoverage, FusableKindsFireBreakersNever) {
  Pathfinder pf(Db());
  std::array<int64_t, algebra::kOpKindCount> fused{};
  std::array<bool, algebra::kOpKindCount> reachable{};
  int64_t fragments = 0;

  for (const xmark::XMarkQuery& q : xmark::XMarkQueries()) {
    QueryOptions opts;
    opts.context_doc = "auction.xml";
    opts.pipeline = 1;
    auto r = pf.Run(q.text, opts);
    ASSERT_TRUE(r.ok()) << "XMark Q" << q.number << ": "
                        << r.status().ToString();
    for (algebra::Op* op : algebra::TopoOrder(r->plan_opt))
      reachable[static_cast<size_t>(op->kind)] = true;
    for (size_t k = 0; k < fused.size(); ++k)
      fused[k] += r->pipe_stats.by_kind[k];
    fragments += r->pipe_stats.fragments;
  }

  // The pipelined path must actually run — a silent fallback to
  // op-at-a-time execution would make every differential test above
  // vacuous.
  EXPECT_GT(fragments, 0);

  for (size_t k = 0; k < algebra::kOpKindCount; ++k) {
    auto kind = static_cast<algebra::OpKind>(k);
    const char* name = algebra::OpKindName(kind);
    if (algebra::IsPipelineMapOp(kind) || algebra::IsPipelineJoinOp(kind)) {
      if (reachable[k]) {
        EXPECT_GT(fused[k], 0)
            << name << " appears in optimized XMark plans but never "
            << "executed under the fused path";
      }
    } else {
      EXPECT_EQ(fused[k], 0)
          << name << " is a pipeline breaker but was fused";
    }
  }
}

}  // namespace
}  // namespace pathfinder

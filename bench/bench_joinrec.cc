// Ablation E7 (paper Sec. 1: "A join recognition logic in our
// compiler [...] allow for effective optimizations"): the value-join
// XMark queries with the compiler's join recognition enabled vs
// disabled. Without it, the inner for-loop's iteration scope is the
// cross product of the outer loop and the (loop-invariant) domain, and
// the comparison filters it afterwards — the quadratic plan the paper's
// unoptimized compilation would produce.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/pathfinder.h"
#include "bench/bench_util.h"
#include "xmark/queries.h"

namespace pathfinder::bench {
namespace {

int Main() {
  std::printf("Join recognition ablation (XMark join queries)\n\n");
  std::printf("%-10s %-4s %12s %12s %9s %6s\n", "sf", "Q", "with", "without",
              "speedup", "joins");

  for (double sf : ScaleFactors()) {
    xml::Database* db = XMarkDb(sf);
    Pathfinder pf(db);
    for (int qn : {5, 8, 9, 10, 11, 12}) {
      const auto& q = xmark::GetXMarkQuery(qn);
      QueryOptions on;
      on.context_doc = "auction.xml";
      // Repeat runs must re-execute, not hit the cross-query cache.
      on.plan_cache = 0;
      on.subplan_cache = 0;
      int joins = 0;
      double with_ms = BestOfMs(2, [&] {
        auto r = pf.Run(q.text, on);
        if (!r.ok()) {
          std::fprintf(stderr, "Q%d: %s\n", qn,
                       r.status().ToString().c_str());
          std::exit(1);
        }
        joins = r->compile_stats.joins_recognized;
      });
      QueryOptions off = on;
      off.join_recognition = false;
      double without_ms = TimeMs([&] {
        auto r = pf.Run(q.text, off);
        if (!r.ok()) {
          std::fprintf(stderr, "Q%d (off): %s\n", qn,
                       r.status().ToString().c_str());
          std::exit(1);
        }
      });
      std::printf("%-10g %-4d %12s %12s %8.1fx %6d\n", sf, qn,
                  FmtMs(with_ms).c_str(), FmtMs(without_ms).c_str(),
                  without_ms / with_ms, joins);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n'joins' = comparisons the compiler turned into value-based "
      "equi/theta joins. The speedup grows with scale: the recognized "
      "plan never materializes the crossed iteration scope.\n");
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main() { return pathfinder::bench::Main(); }

#ifndef PATHFINDER_XML_PARSER_H_
#define PATHFINDER_XML_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "base/string_pool.h"
#include "xml/document.h"

namespace pathfinder::xml {

/// Parse an XML document and shred it into the pre|size|level encoding
/// in one pass (no intermediate DOM).
///
/// Supported: elements, attributes (quoted with ' or "), character data,
/// CDATA sections, comments, processing instructions, an optional XML
/// declaration/doctype (skipped), the five predefined entities and
/// numeric character references. Namespaces are treated lexically
/// (prefixed names are plain names), matching what the XMark workload
/// needs. DTD-defined entities are not supported.
Result<Document> ParseXml(std::string_view input, StringPool* pool);

/// Decode the predefined entities (&lt; &gt; &amp; &quot; &apos;) and
/// numeric character references in `raw`. Shared by the XML parser and
/// the XQuery direct-constructor scanner.
Result<std::string> DecodeEntities(std::string_view raw);

}  // namespace pathfinder::xml

#endif  // PATHFINDER_XML_PARSER_H_

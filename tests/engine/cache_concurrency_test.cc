#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/pathfinder.h"
#include "xml/database.h"

namespace pathfinder {
namespace {

/// Hammer one shared Pathfinder (one shared QueryCache) from many
/// threads with a query mix and a budget small enough that insertion,
/// lookup, and eviction race constantly. Every thread checks every
/// answer against a precomputed expectation; the test also runs under
/// the TSan CI job, which is what actually validates the locking.
TEST(CacheConcurrencyTest, SharedCacheServesRacingThreadsCorrectly) {
  xml::Database db;
  auto load = db.LoadXml("shop.xml", R"(
<shop>
  <dept name="fruit">
    <item sku="a1" price="3">apple</item>
    <item sku="a2" price="7">pear<note>ripe</note></item>
  </dept>
  <dept name="tools">
    <item sku="t1" price="30">hammer</item>
    <item sku="t2" price="3">nail</item>
  </dept>
  <orders><order ref="a1" qty="2"/><order ref="t2" qty="500"/></orders>
</shop>)");
  ASSERT_TRUE(load.ok()) << load.status().ToString();

  const std::vector<std::string> queries = {
      "count(//item)",
      "sum(//item/@price)",
      "for $i in //item where $i/@price > 2 return string($i/@sku)",
      "//dept[@name = \"fruit\"]/item/@sku",
      "count(//item[contains(@sku, \"a\")])",
      "(count(//order), sum(//order/@qty))",
      "for $d in //dept order by $d/@name return count($d/item)",
      "string((//item)[1])",
  };

  Pathfinder pf(&db);
  // Precompute expectations with the cache cold but enabled — the
  // worker threads below must reproduce these bytes whether they hit
  // the plan cache, the subplan cache, or recompute after an eviction.
  QueryOptions o;
  o.context_doc = "shop.xml";
  o.plan_cache = 1;
  o.subplan_cache = 1;
  // Sized so eviction is certain but admission is too: the eight plan
  // entries total ~380 KiB against a 256 KiB plan section (= ¼ of the
  // budget), so the LRU must cycle, while the largest single entry
  // (~77 KiB) always fits.
  o.cache_budget_bytes = 1 << 20;
  std::vector<std::string> expected;
  for (const auto& q : queries) {
    auto r = pf.Run(q, o);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    auto s = r->Serialize();
    ASSERT_TRUE(s.ok()) << q;
    expected.push_back(*s);
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Stagger the starting query per thread so different threads
        // insert and evict different entries at the same instant.
        size_t qi = static_cast<size_t>(t + i) % queries.size();
        QueryOptions wo;
        wo.context_doc = "shop.xml";
        wo.plan_cache = 1;
        wo.subplan_cache = 1;
        auto r = pf.Run(queries[qi], wo);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        auto s = r->Serialize();
        if (!s.ok() || *s != expected[qi]) ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  engine::CacheStats st = pf.cache()->Stats();
  // The working set exceeds the budget, so the racing inserts must
  // have cycled the LRU — and resident bytes must respect the budget.
  EXPECT_GT(st.plan.evictions, 0);
  EXPECT_LE(static_cast<int64_t>(st.plan.bytes + st.subplan.bytes),
            int64_t{1} << 20);

  // Deterministic hit check (the racing phase can legitimately thrash
  // an undersized LRU to a 0% hit rate): with the threads quiesced,
  // back-to-back runs of the same query must hit the entry the first
  // run just (re)inserted.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto miss = pf.Run(queries[qi], o);
    ASSERT_TRUE(miss.ok()) << queries[qi];
    auto hit = pf.Run(queries[qi], o);
    ASSERT_TRUE(hit.ok()) << queries[qi];
    EXPECT_TRUE(hit->plan_cache_hit) << queries[qi];
    auto s = hit->Serialize();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, expected[qi]) << queries[qi];
  }
}

/// Document registrations racing cached lookups: one churner thread
/// re-registers "churn.xml" in a loop while eight workers query both a
/// stable document (whose bytes must never change — its entries stay
/// warm across every generation bump) and the churning document (whose
/// answer must always correspond to a consistent registered snapshot,
/// never a stale cache entry from before the version the worker
/// observed). Runs under the TSan CI job.
TEST(CacheConcurrencyTest, RegistrationsRacingLookupsServeNoStaleBytes) {
  xml::Database db;
  ASSERT_TRUE(db.LoadXml("shop.xml", R"(
<shop>
  <item sku="a1" price="3"/><item sku="a2" price="7"/>
  <item sku="t1" price="30"/><item sku="t2" price="3"/>
</shop>)")
                  .ok());
  auto churn_doc = [](int version) {
    std::string s = "<r>";
    for (int i = 0; i < 8; ++i) {
      s += "<x v=\"" + std::to_string(version) + "\"/>";
    }
    s += "</r>";
    return s;
  };
  ASSERT_TRUE(db.LoadXml("churn.xml", churn_doc(0)).ok());

  Pathfinder pf(&db);
  QueryOptions shop_o;
  shop_o.context_doc = "shop.xml";
  shop_o.plan_cache = 1;
  shop_o.subplan_cache = 1;
  shop_o.cache_budget_bytes = 8 << 20;  // pin against ambient PF_CACHE_MB
  shop_o.cache_min_cost_us = 0;         // tiny docs: admit every candidate
  QueryOptions churn_o = shop_o;
  churn_o.context_doc = "churn.xml";

  const std::string shop_q = "sum(//item/@price)";
  const std::string churn_q = "sum(//x/@v)";
  std::string shop_expected;
  {
    auto r = pf.Run(shop_q, shop_o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto s = r->Serialize();
    ASSERT_TRUE(s.ok());
    shop_expected = *s;
  }

  // Monotonic published-version window: a worker reads `lo` before its
  // churn query and `hi` after. A correct answer is 8*v for some
  // registered v in [lo, hi] — anything else is a stale or torn read.
  std::atomic<int> published{0};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread churner([&] {
    for (int v = 1; v < 60; ++v) {
      auto r = db.LoadXml("churn.xml", churn_doc(v));
      if (!r.ok()) {
        ++failures;
        break;
      }
      published.store(v, std::memory_order_release);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      int iter = 0;
      while (!stop.load(std::memory_order_acquire) || iter == 0) {
        ++iter;
        // Stable document: byte-identical forever.
        auto rs = pf.Run(shop_q, shop_o);
        if (!rs.ok()) {
          ++failures;
          continue;
        }
        auto ss = rs->Serialize();
        if (!ss.ok() || *ss != shop_expected) ++failures;

        // Churning document: the answer must be one of the versions
        // registered inside this query's observation window.
        if (t % 2 == 0) {
          int lo = published.load(std::memory_order_acquire);
          auto rc = pf.Run(churn_q, churn_o);
          int hi = published.load(std::memory_order_acquire);
          if (!rc.ok()) {
            ++failures;
            continue;
          }
          auto sc = rc->Serialize();
          if (!sc.ok()) {
            ++failures;
            continue;
          }
          // The worker may race a registration already parsed but not
          // yet published when `hi` was read: allow one version beyond.
          bool valid = false;
          for (int v = lo; v <= hi + 1; ++v) {
            if (*sc == std::to_string(8 * v)) valid = true;
          }
          if (!valid) ++failures;
        }
      }
    });
  }
  churner.join();
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: the stable document's entries must still be warm — no
  // churn registration may have invalidated them.
  auto warm = pf.Run(shop_q, shop_o);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_GT(warm->subplan_cache_hits, 0);
  auto ws = warm->Serialize();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(*ws, shop_expected);
}

}  // namespace
}  // namespace pathfinder

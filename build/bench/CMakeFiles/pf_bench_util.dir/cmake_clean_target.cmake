file(REMOVE_RECURSE
  "libpf_bench_util.a"
)

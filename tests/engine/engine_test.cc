#include <gtest/gtest.h>

#include "algebra/op.h"
#include "engine/executor.h"
#include "engine/node_build.h"
#include "xml/serializer.h"

namespace pathfinder::engine {
namespace {

namespace alg = pathfinder::algebra;
using alg::OpPtr;
using bat::ColType;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.LoadXml("t.xml", "<r><a>1</a><b x=\"7\">2</b><a>3</a></r>");
    ASSERT_TRUE(r.ok());
    ctx_ = std::make_unique<QueryContext>(&db_);
  }

  bat::Table Run(const OpPtr& plan) {
    auto t = Execute(plan, ctx_.get());
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : bat::Table{};
  }

  OpPtr Lit(std::vector<std::vector<Item>> rows) {
    return alg::LitTable({"iter", "pos", "item"},
                         {ColType::kInt, ColType::kInt, ColType::kItem},
                         std::move(rows));
  }

  Item Str(const char* s) { return Item::Str(db_.pool()->Intern(s)); }

  xml::Database db_;
  std::unique_ptr<QueryContext> ctx_;
};

TEST_F(EngineTest, LitTableAndAttach) {
  OpPtr plan = alg::Attach(Lit({{Item::Int(1), Item::Int(1), Item::Int(5)}}),
                           "extra", ColType::kBool, Item::Bool(true));
  bat::Table t = Run(plan);
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.GetCol("extra").value()->bools()[0], 1);
}

TEST_F(EngineTest, SelectFun2) {
  OpPtr lit = Lit({{Item::Int(1), Item::Int(1), Item::Int(5)},
                   {Item::Int(1), Item::Int(2), Item::Int(9)}});
  OpPtr threshold =
      alg::Attach(lit, "lim", ColType::kItem, Item::Int(6));
  OpPtr cmp = alg::MapFun2(threshold, alg::Fun2::kCmpGt, "item", "lim", "b");
  bat::Table t = Run(alg::Select(cmp, "b"));
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.GetCol("item").value()->items()[0].AsInt(), 9);
}

TEST_F(EngineTest, StepDescendantFromRoot) {
  OpPtr ctxt = alg::LitTable(
      {"iter", "item"}, {ColType::kInt, ColType::kItem},
      {{Item::Int(1), Item::Node(0, 0)}});
  OpPtr step = alg::Step(ctxt, accel::Axis::kDescendant,
                         accel::NodeTest::Name(db_.pool()->Intern("a")));
  bat::Table t = Run(step);
  ASSERT_EQ(t.rows(), 2u);
  // scj output is iter-grouped in document order.
  EXPECT_LT(t.GetCol("item").value()->items()[0].NodePre(),
            t.GetCol("item").value()->items()[1].NodePre());
}

TEST_F(EngineTest, StepOnAtomicIsTypeError) {
  OpPtr ctxt = alg::LitTable({"iter", "item"},
                             {ColType::kInt, ColType::kItem},
                             {{Item::Int(1), Item::Int(42)}});
  OpPtr step =
      alg::Step(ctxt, accel::Axis::kChild, accel::NodeTest::AnyKind());
  auto r = Execute(step, ctx_.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, StepStaircaseVsNaiveAgree) {
  OpPtr ctxt = alg::LitTable(
      {"iter", "item"}, {ColType::kInt, ColType::kItem},
      {{Item::Int(1), Item::Node(0, 1)},
       {Item::Int(2), Item::Node(0, 0)}});
  OpPtr step = alg::Step(ctxt, accel::Axis::kDescendant,
                         accel::NodeTest::AnyKind());
  QueryContext c1(&db_), c2(&db_);
  c2.use_staircase = false;
  auto t1 = Execute(step, &c1);
  auto t2 = Execute(step, &c2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(t1->rows(), t2->rows());
  for (size_t i = 0; i < t1->rows(); ++i) {
    EXPECT_EQ(t1->GetCol("item").value()->items()[i],
              t2->GetCol("item").value()->items()[i]);
  }
  EXPECT_GT(c1.scj_stats.results, 0u);
  EXPECT_EQ(c2.scj_stats.results, 0u);  // naive path records no scj stats
}

TEST_F(EngineTest, DocRootResolvesByName) {
  OpPtr names = Lit({{Item::Int(1), Item::Int(1), Str("t.xml")}});
  bat::Table t = Run(alg::DocRoot(names));
  ASSERT_EQ(t.rows(), 1u);
  Item root = t.GetCol("item").value()->items()[0];
  EXPECT_EQ(root.NodeFrag(), 0u);
  EXPECT_EQ(root.NodePre(), 0u);
}

TEST_F(EngineTest, DocRootUnknownNameFails) {
  OpPtr names = Lit({{Item::Int(1), Item::Int(1), Str("nope.xml")}});
  EXPECT_FALSE(Execute(alg::DocRoot(names), ctx_.get()).ok());
}

TEST_F(EngineTest, ElementConstructionCopiesAndMerges) {
  // <out>atomic 5 and node <a>1</a></out>
  OpPtr name = Lit({{Item::Int(1), Item::Int(1), Str("out")}});
  OpPtr content = Lit({{Item::Int(1), Item::Int(1), Item::Int(5)},
                       {Item::Int(1), Item::Int(2), Str("x")},
                       {Item::Int(1), Item::Int(3), Item::Node(0, 2)}});
  bat::Table t = Run(alg::ElemConstr(name, content));
  ASSERT_EQ(t.rows(), 1u);
  Item node = t.GetCol("item").value()->items()[0];
  EXPECT_TRUE(node.IsNode());
  std::string xml = xml::SerializeSubtree(ctx_->doc(node.NodeFrag()),
                                          node.NodePre(), *db_.pool());
  EXPECT_EQ(xml, "<out>5 x<a>1</a></out>");
}

TEST_F(EngineTest, ElementConstructionHoistsAttributes) {
  OpPtr name = Lit({{Item::Int(1), Item::Int(1), Str("e")}});
  // Attribute built by an AttrConstr subplan.
  OpPtr attr_content = Lit({{Item::Int(1), Item::Int(1), Str("v")}});
  OpPtr attr = alg::AttrConstr(attr_content, "k");
  OpPtr attr_ipi = alg::Project(
      alg::Attach(attr, "pos", ColType::kInt, Item::Int(1)),
      {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}});
  bat::Table t = Run(alg::ElemConstr(name, attr_ipi));
  Item node = t.GetCol("item").value()->items()[0];
  std::string xml = xml::SerializeSubtree(ctx_->doc(node.NodeFrag()),
                                          node.NodePre(), *db_.pool());
  EXPECT_EQ(xml, "<e k=\"v\"/>");
}

TEST_F(EngineTest, TextConstructionJoinsWithSpaces) {
  OpPtr content = Lit({{Item::Int(1), Item::Int(1), Str("a")},
                       {Item::Int(1), Item::Int(2), Str("b")}});
  bat::Table t = Run(alg::TextConstr(content));
  Item node = t.GetCol("item").value()->items()[0];
  EXPECT_EQ(NodeStringValue(*ctx_, node), "a b");
}

TEST_F(EngineTest, Fun1DataAtomizesNodes) {
  OpPtr nodes = Lit({{Item::Int(1), Item::Int(1), Item::Node(0, 2)}});
  bat::Table t = Run(alg::MapFun1(nodes, alg::Fun1::kData, "item", "d"));
  Item d = t.GetCol("d").value()->items()[0];
  EXPECT_EQ(d.kind, ItemKind::kUntyped);
  EXPECT_EQ(db_.pool()->Get(d.AsStr()), "1");
}

TEST_F(EngineTest, Fun2DivByZeroIsError) {
  OpPtr lit = Lit({{Item::Int(1), Item::Int(1), Item::Int(1)}});
  OpPtr z = alg::Attach(lit, "zero", ColType::kItem, Item::Int(0));
  auto r = Execute(alg::MapFun2(z, alg::Fun2::kDiv, "item", "zero", "q"),
                   ctx_.get());
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, ArithmeticIntPreservation) {
  OpPtr lit = Lit({{Item::Int(1), Item::Int(1), Item::Int(7)}});
  OpPtr v = alg::Attach(lit, "three", ColType::kItem, Item::Int(3));
  bat::Table mul =
      Run(alg::MapFun2(v, alg::Fun2::kMul, "item", "three", "p"));
  EXPECT_EQ(mul.GetCol("p").value()->items()[0].kind, ItemKind::kInt);
  bat::Table div =
      Run(alg::MapFun2(v, alg::Fun2::kDiv, "item", "three", "q"));
  EXPECT_EQ(div.GetCol("q").value()->items()[0].kind, ItemKind::kDbl);
  bat::Table idiv =
      Run(alg::MapFun2(v, alg::Fun2::kIdiv, "item", "three", "r"));
  EXPECT_EQ(idiv.GetCol("r").value()->items()[0].AsInt(), 2);
  bat::Table mod =
      Run(alg::MapFun2(v, alg::Fun2::kMod, "item", "three", "s"));
  EXPECT_EQ(mod.GetCol("s").value()->items()[0].AsInt(), 1);
}

TEST_F(EngineTest, SerializeSortsByIterPos) {
  OpPtr lit = Lit({{Item::Int(2), Item::Int(1), Item::Int(30)},
                   {Item::Int(1), Item::Int(2), Item::Int(20)},
                   {Item::Int(1), Item::Int(1), Item::Int(10)}});
  bat::Table t = Run(alg::Serialize(lit));
  auto items = t.GetCol("item").value()->items();
  EXPECT_EQ(items[0].AsInt(), 10);
  EXPECT_EQ(items[1].AsInt(), 20);
  EXPECT_EQ(items[2].AsInt(), 30);
}

TEST_F(EngineTest, SharedSubplanEvaluatedOnce) {
  // A fragment-constructing subplan shared by two parents must run once:
  // otherwise two fragments appear.
  OpPtr name = Lit({{Item::Int(1), Item::Int(1), Str("n")}});
  OpPtr elem = alg::ElemConstr(name, alg::EmptySeq());
  OpPtr with_pos = alg::Attach(elem, "pos", ColType::kInt, Item::Int(1));
  OpPtr ipi = alg::Project(
      with_pos, {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}});
  OpPtr ord0 = alg::Attach(ipi, "ord", ColType::kInt, Item::Int(0));
  OpPtr ord1 = alg::Attach(ipi, "ord", ColType::kInt, Item::Int(1));
  Run(alg::DisjointUnion(ord0, ord1));
  EXPECT_EQ(ctx_->num_constructed(), 1u);
}

// --- node_build ----------------------------------------------------------

TEST_F(EngineTest, BuildTextAndAttributeFragments) {
  Item t = BuildText(ctx_.get(), "hello");
  EXPECT_EQ(NodeStringValue(*ctx_, t), "hello");
  Item a = BuildAttribute(ctx_.get(), "k", "v");
  EXPECT_EQ(a.kind, ItemKind::kAttr);
  EXPECT_EQ(NodeStringValue(*ctx_, a), "v");
}

TEST_F(EngineTest, BuildElementDeepCopiesSubtree) {
  std::vector<Item> content = {Item::Node(0, 4)};  // <b x="7">2</b>
  Item e = BuildElement(ctx_.get(), "wrap", content).value();
  std::string xml = xml::SerializeSubtree(ctx_->doc(e.NodeFrag()),
                                          e.NodePre(), *db_.pool());
  EXPECT_EQ(xml, "<wrap><b x=\"7\">2</b></wrap>");
}

TEST_F(EngineTest, CopySubtreeOfDocumentNodeCopiesChildren) {
  xml::TreeBuilder b(db_.pool());
  b.StartElem("holder");
  CopySubtree(db_.doc(0), 0, &b);
  b.EndElem();
  auto doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(xml::SerializeSubtree(*doc, 1, *db_.pool()),
            "<holder><r><a>1</a><b x=\"7\">2</b><a>3</a></r></holder>");
}

}  // namespace
}  // namespace pathfinder::engine

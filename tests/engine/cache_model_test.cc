// Randomized model checking of engine::QueryCache.
//
// A naive reference model (plain lists and maps, no budgets shared with
// the real implementation) re-implements the cache's documented
// semantics: plan-section LRU, subplan cost-density eviction with the
// admission floor, per-document invalidation split by structure vs
// content version (document updates), in-place repair of value-free
// subplan entries across content-only updates, alias repair and budget
// shrinking. A seeded driver runs random operation sequences — plan and
// subplan traffic interleaved with document registrations, structural
// updates and content-only updates — against both, and demands
// identical observable state after every single operation:
// hit/miss/eviction/invalidation/repair counters, the MRU-ordered
// resident subplan section, the full resident plan key set, and deep
// equality of every served subplan table (a repaired entry's node items
// must reference exactly the updated snapshot's fragment id, bit for
// bit).

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/hash.h"
#include "algebra/op.h"
#include "base/rng.h"
#include "bat/column.h"
#include "bat/table.h"
#include "engine/cache.h"
#include "xml/database.h"

namespace pathfinder {
namespace {

namespace alg = pathfinder::algebra;
using engine::CacheStats;
using engine::PlanCacheEntry;
using engine::PlanEntryPtr;
using engine::QueryCache;

constexpr int kNumSubs = 24;     // distinct cacheable subtrees
constexpr int kNumDocs = 4;      // document-name universe
constexpr int kNumGroups = 8;    // canonical-core groups
constexpr int kNumRaw = 16;      // raw query spellings (2 per group)
constexpr int kOpsPerSeed = 400;
constexpr int kSeeds = 60;

std::string DocName(int d) { return "doc" + std::to_string(d) + ".xml"; }

// The driver's stand-in for xml::Database's per-name bookkeeping.
struct DriverDoc {
  uint64_t structure = 0;
  uint64_t content = 0;
  uint32_t frag = 0;
};

// --- reference model ------------------------------------------------------

struct ModelPlanEntry {
  std::vector<std::string> keys;
  size_t bytes = 0;
  std::vector<std::string> deps;
  bool unknown = false;
};

struct ModelSubEntry {
  int idx = -1;  // which universe subtree (identity stand-in)
  uint64_t hash = 0;
  size_t bytes = 0;
  int64_t cost_ns = 0;
  std::vector<std::string> docs;
  bool unknown = false;
  bool value_free = false;
  // Expected item column of the cached table — remapped in place when
  // the entry is repaired, so a later lookup can be checked deep.
  std::vector<Item> items;
};

bool LowerDensity(int64_t a_cost, size_t a_bytes, int64_t b_cost,
                  size_t b_bytes) {
  return static_cast<unsigned __int128>(a_cost) * b_bytes <
         static_cast<unsigned __int128>(b_cost) * a_bytes;
}

bool DepsHit(const std::vector<std::string>& deps, bool unknown,
             const std::unordered_set<std::string>& changed) {
  if (unknown) return true;
  for (const auto& d : deps) {
    if (changed.count(d)) return true;
  }
  return false;
}

struct Model {
  struct DocSync {
    uint64_t structure = 0;
    uint64_t content = 0;
    uint32_t frag = 0;
  };

  size_t budget;
  int64_t min_cost_ns;
  bool gen_seen = false;
  uint64_t gen = 0;
  std::map<std::string, DocSync> versions;

  std::list<ModelPlanEntry> plan;  // front = most recent
  std::list<ModelSubEntry> sub;    // front = most recent

  int64_t plan_hits = 0, plan_misses = 0, plan_evictions = 0;
  int64_t sub_hits = 0, sub_misses = 0, sub_evictions = 0;
  int64_t invalidations = 0, per_doc_invalidations = 0, admission_rejects = 0;
  int64_t subplan_repairs = 0;

  size_t PlanBudget() const { return budget / 4; }
  size_t SubBudget() const { return budget - budget / 4; }

  size_t PlanBytes() const {
    size_t b = 0;
    for (const auto& e : plan) b += e.bytes;
    return b;
  }
  size_t SubBytes() const {
    size_t b = 0;
    for (const auto& e : sub) b += e.bytes;
    return b;
  }

  std::list<ModelPlanEntry>::iterator FindPlan(const std::string& key) {
    for (auto it = plan.begin(); it != plan.end(); ++it) {
      for (const auto& k : it->keys) {
        if (k == key) return it;
      }
    }
    return plan.end();
  }

  void EvictPlan(size_t needed) {
    while (!plan.empty() && PlanBytes() + needed > PlanBudget()) {
      plan.pop_back();
      plan_evictions++;
    }
  }

  void EvictSub(size_t needed) {
    while (!sub.empty() && SubBytes() + needed > SubBudget()) {
      auto victim = std::prev(sub.end());
      for (auto it = std::prev(sub.end()); it != sub.begin();) {
        --it;
        if (LowerDensity(it->cost_ns, it->bytes, victim->cost_ns,
                         victim->bytes)) {
          victim = it;
        }
      }
      sub.erase(victim);
      sub_evictions++;
    }
  }

  // Mirrors QueryCache::BeginQuery + InvalidateDocsLocked: names whose
  // structure version moved (or that appeared/disappeared) invalidate;
  // names with only a content move repair value-free entries when
  // `repair` is on and invalidate otherwise.
  void BeginQuery(uint64_t g,
                  const std::vector<xml::Database::DocVersion>& docs,
                  bool repair) {
    if (gen_seen && gen != g) {
      invalidations++;
      std::unordered_set<std::string> structural, content;
      std::map<uint32_t, uint32_t> remap;
      for (const auto& d : docs) {
        auto it = versions.find(d.name);
        if (it == versions.end() || it->second.structure != d.structure) {
          structural.insert(d.name);
        } else if (it->second.content != d.content) {
          if (repair) {
            content.insert(d.name);
            remap[it->second.frag] = d.frag;
          } else {
            structural.insert(d.name);
          }
        }
      }
      for (const auto& [name, v] : versions) {
        bool present = false;
        for (const auto& d : docs) {
          if (d.name == name) {
            present = true;
            break;
          }
        }
        if (!present) structural.insert(name);
      }
      if (!structural.empty()) {
        for (auto it = plan.begin(); it != plan.end();) {
          if (DepsHit(it->deps, it->unknown, structural)) {
            it = plan.erase(it);
            per_doc_invalidations++;
          } else {
            ++it;
          }
        }
      }
      if (!structural.empty() || !content.empty()) {
        for (auto it = sub.begin(); it != sub.end();) {
          bool drop = DepsHit(it->docs, it->unknown, structural);
          bool chit = !drop && DepsHit(it->docs, it->unknown, content);
          if (chit && it->value_free && !it->unknown) {
            for (Item& item : it->items) {
              if (!item.IsNode()) continue;
              auto rit = remap.find(item.NodeFrag());
              if (rit == remap.end()) continue;
              item = item.kind == ItemKind::kAttr
                         ? Item::Attr(rit->second, item.NodePre())
                         : Item::Node(rit->second, item.NodePre());
            }
            subplan_repairs++;
            ++it;
          } else if (drop || chit) {
            it = sub.erase(it);
            per_doc_invalidations++;
          } else {
            ++it;
          }
        }
      }
    }
    if (!gen_seen || gen != g) {
      versions.clear();
      for (const auto& d : docs) {
        versions[d.name] = DocSync{d.structure, d.content, d.frag};
      }
    }
    gen = g;
    gen_seen = true;
  }

  // Mirrors LookupPlan. Returns whether the key hit.
  bool LookupPlan(const std::string& key) {
    auto it = FindPlan(key);
    if (it == plan.end()) {
      plan_misses++;
      return false;
    }
    plan_hits++;
    plan.splice(plan.begin(), plan, it);
    return true;
  }

  // Mirrors AliasPlan for a just-hit (front) entry.
  void AliasFront(const std::string& key) {
    if (FindPlan(key) != plan.end()) return;
    plan.front().keys.push_back(key);
    plan.front().bytes += key.size();
  }

  // Mirrors InsertPlan for absent raw/core keys.
  void InsertPlan(const std::string& raw, const std::string& core,
                  size_t base_bytes, std::vector<std::string> deps,
                  bool unknown) {
    ModelPlanEntry e;
    e.keys = {raw, core};
    e.bytes = base_bytes + raw.size() + core.size();
    e.deps = std::move(deps);
    e.unknown = unknown;
    if (e.bytes > PlanBudget()) return;  // never fits: not resident
    EvictPlan(e.bytes);
    plan.push_front(std::move(e));
  }

  // Mirrors LookupSubplan; on hit, the returned entry (now at the
  // front) carries the expected table items for the deep check.
  const ModelSubEntry* LookupSub(int idx) {
    for (auto it = sub.begin(); it != sub.end(); ++it) {
      if (it->idx == idx) {
        sub.splice(sub.begin(), sub, it);
        sub_hits++;
        return &sub.front();
      }
    }
    sub_misses++;
    return nullptr;
  }

  // Mirrors InsertSubplan. Returns the admission verdict.
  bool InsertSub(int idx, uint64_t hash, size_t bytes, int64_t cost_ns,
                 std::vector<std::string> docs, bool unknown, bool value_free,
                 std::vector<Item> items, uint64_t db_generation) {
    if (gen_seen && db_generation != gen) return true;  // stale publisher
    for (const auto& e : sub) {
      if (e.idx == idx) return true;  // duplicate: silent no-op
    }
    if (min_cost_ns > 0 && cost_ns < min_cost_ns) {
      admission_rejects++;
      return false;
    }
    ModelSubEntry e;
    e.idx = idx;
    e.hash = hash;
    e.bytes = bytes;
    e.cost_ns = cost_ns;
    e.docs = std::move(docs);
    e.unknown = unknown;
    e.value_free = value_free;
    e.items = std::move(items);
    if (e.bytes > SubBudget()) return true;  // would never fit
    EvictSub(e.bytes);
    sub.push_front(std::move(e));
    return true;
  }

  void SetBudget(size_t b) {
    budget = b;
    EvictPlan(0);
    EvictSub(0);
  }

  void Clear() {
    plan.clear();
    sub.clear();
  }

  std::vector<std::string> SortedPlanKeys() const {
    std::vector<std::string> keys;
    for (const auto& e : plan) {
      keys.insert(keys.end(), e.keys.begin(), e.keys.end());
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};

// --- driver ---------------------------------------------------------------

// The fixed universe one seed runs against: distinct subtrees (with
// hashes, docs, value-free flags) plus deterministic per-group plan
// entry shapes, so model and cache see byte-identical inputs even when
// an entry is re-inserted after eviction. Result *tables* are built at
// insert time (MakeSubTable): their node items reference the fragment
// currently bound to the dependency documents, which is exactly what a
// real executor would cache — and what invalidation must repair.
struct Universe {
  std::vector<alg::OpPtr> subs;

  Universe() {
    for (int i = 0; i < kNumSubs; ++i) {
      alg::OpPtr op =
          alg::Attach(alg::EmptySeq(), "c", bat::ColType::kInt, Item::Int(i));
      op->cache_cand = true;
      op->cache_hash = alg::StructuralHash(op);
      op->cache_docs = SubDocs(i);
      op->cache_docs_unknown = SubUnknown(i);
      op->cache_value_free = SubValueFree(i);
      subs.push_back(op);
    }
  }

  static std::vector<std::string> SubDocs(int i) {
    if (SubUnknown(i)) return {};
    std::vector<std::string> d = {DocName(i % kNumDocs)};
    if (i % 5 == 0) {
      std::string extra = DocName((i + 1) % kNumDocs);
      if (extra != d[0]) d.push_back(extra);
    }
    std::sort(d.begin(), d.end());
    return d;
  }
  static bool SubUnknown(int i) { return i % 11 == 3; }
  // Mix of repairable (structure-only) and value-reading subtrees.
  static bool SubValueFree(int i) { return i % 3 != 0; }
  static size_t SubRows(int i) {
    return static_cast<size_t>((i * 37) % 512) + 1;
  }

  static std::string RawKey(int r) { return "r:q" + std::to_string(r); }
  static std::string CoreKey(int r) {
    return "c:group" + std::to_string(r % kNumGroups);
  }
  static size_t GroupBaseBytes(int r) {
    return 200 + static_cast<size_t>(r % kNumGroups) * 150;
  }
  static std::vector<std::string> GroupDeps(int r) {
    if (GroupUnknown(r)) return {};
    return {DocName((r % kNumGroups) % kNumDocs)};
  }
  static bool GroupUnknown(int r) { return r % kNumGroups == 5; }
};

// The table a query evaluating sub `i` would materialize right now:
// an int payload column plus an item column mixing element references,
// attribute references (both bound to the dependency documents'
// *current* frags) and atomics. Exact-capacity columns keep AllocBytes
// deterministic across re-inserts, so the byte accounting the model
// mirrors never drifts.
bat::Table MakeSubTable(int i, const std::map<std::string, DriverDoc>& store) {
  size_t rows = Universe::SubRows(i);
  auto ints = bat::Column::MakeInt(rows);
  for (size_t r = 0; r < rows; ++r) ints->ints().push_back(i);
  auto items = bat::Column::MakeItem(rows);
  std::vector<std::string> docs = Universe::SubDocs(i);
  for (size_t r = 0; r < rows; ++r) {
    if (docs.empty() || r % 3 == 2) {
      items->items().push_back(Item::Int(static_cast<int64_t>(r)));
      continue;
    }
    uint32_t frag = store.at(docs[r % docs.size()]).frag;
    uint32_t pre = static_cast<uint32_t>(r);
    items->items().push_back(r % 4 == 0 ? Item::Attr(frag, pre)
                                        : Item::Node(frag, pre));
  }
  bat::Table t;
  t.AddCol("x", std::move(ints));
  t.AddCol("it", std::move(items));
  return t;
}

void CheckAgainstModel(const QueryCache& cache, const Model& m) {
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.plan.hits, m.plan_hits);
  EXPECT_EQ(s.plan.misses, m.plan_misses);
  EXPECT_EQ(s.plan.evictions, m.plan_evictions);
  EXPECT_EQ(s.plan.entries, static_cast<int64_t>(m.plan.size()));
  EXPECT_EQ(s.plan.bytes, static_cast<int64_t>(m.PlanBytes()));
  EXPECT_EQ(s.subplan.hits, m.sub_hits);
  EXPECT_EQ(s.subplan.misses, m.sub_misses);
  EXPECT_EQ(s.subplan.evictions, m.sub_evictions);
  EXPECT_EQ(s.subplan.entries, static_cast<int64_t>(m.sub.size()));
  EXPECT_EQ(s.subplan.bytes, static_cast<int64_t>(m.SubBytes()));
  EXPECT_EQ(s.invalidations, m.invalidations);
  EXPECT_EQ(s.per_doc_invalidations, m.per_doc_invalidations);
  EXPECT_EQ(s.admission_rejects, m.admission_rejects);
  EXPECT_EQ(s.subplan_repairs, m.subplan_repairs);
  EXPECT_EQ(s.budget_bytes, static_cast<int64_t>(m.budget));
  EXPECT_EQ(s.min_cost_us, m.min_cost_ns / 1000);

  // Resident subplan section, most recent first, entry for entry.
  // Repair must keep an entry's byte charge: fresh same-capacity
  // columns replace the remapped ones.
  ASSERT_EQ(s.subplan_entries.size(), m.sub.size());
  size_t i = 0;
  for (const ModelSubEntry& e : m.sub) {
    EXPECT_EQ(s.subplan_entries[i].hash, e.hash) << "entry " << i;
    EXPECT_EQ(s.subplan_entries[i].bytes, static_cast<int64_t>(e.bytes))
        << "entry " << i;
    EXPECT_EQ(s.subplan_entries[i].cost_us, e.cost_ns / 1000)
        << "entry " << i;
    ++i;
  }

  EXPECT_EQ(cache.ResidentPlanKeysForTest(), m.SortedPlanKeys());
}

void RunSeed(uint64_t seed, const Universe& u) {
  Rng rng(seed);

  // Budget small enough that evictions actually happen (sub tables run
  // up to ~8 KB each), floor pinned explicitly so the ambient
  // PF_CACHE_MIN_COST_US can't skew the run.
  size_t budget = 1u << (14 + rng.Below(3));  // 16/32/64 KB
  int64_t min_cost_us = 50;
  QueryCache cache(budget);
  cache.SetMinCostUs(min_cost_us);

  Model m;
  m.budget = budget;
  m.min_cost_ns = min_cost_us * 1000;

  // Driver-side document store: per-name structure/content versions and
  // bound frag under one monotonic generation, exactly like
  // xml::Database with updates applied.
  uint64_t gen = 0;
  uint32_t next_frag = 0;
  std::map<std::string, DriverDoc> store;
  for (int d = 0; d < kNumDocs; ++d) {
    ++gen;
    store[DocName(d)] = DriverDoc{gen, gen, next_frag++};
  }
  auto version_vec = [&] {
    std::vector<xml::Database::DocVersion> v;
    v.reserve(store.size());
    for (const auto& [name, d] : store) {
      v.push_back(xml::Database::DocVersion{name, d.structure, d.content,
                                            d.frag});
    }
    return v;
  };
  auto sync = [&](bool repair) {
    cache.BeginQuery(gen, version_vec(), repair);
    m.BeginQuery(gen, version_vec(), repair);
  };
  auto pick_doc = [&]() -> DriverDoc& {
    return store[DocName(static_cast<int>(rng.Below(kNumDocs)))];
  };

  sync(true);
  CheckAgainstModel(cache, m);

  for (int op = 0; op < kOpsPerSeed; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    switch (rng.Below(10)) {
      case 0: {  // plan-cache query: lookup -> alias-repair -> insert
        int r = static_cast<int>(rng.Below(kNumRaw));
        std::string raw = Universe::RawKey(r);
        std::string core = Universe::CoreKey(r);
        PlanEntryPtr e = cache.LookupPlan(raw);
        bool mhit = m.LookupPlan(raw);
        ASSERT_EQ(e != nullptr, mhit);
        if (!e) {
          PlanEntryPtr via_core = cache.LookupPlan(core);
          bool mcore = m.LookupPlan(core);
          ASSERT_EQ(via_core != nullptr, mcore);
          if (via_core) {
            cache.AliasPlan(raw, via_core);
            m.AliasFront(raw);
          } else {
            PlanCacheEntry pe;
            pe.bytes = Universe::GroupBaseBytes(r);
            pe.doc_deps = Universe::GroupDeps(r);
            pe.doc_deps_unknown = Universe::GroupUnknown(r);
            cache.InsertPlan(raw, core, std::move(pe));
            m.InsertPlan(raw, core, Universe::GroupBaseBytes(r),
                         Universe::GroupDeps(r), Universe::GroupUnknown(r));
          }
        }
        break;
      }
      case 1:
      case 2: {  // subplan lookup, deep-checked against the model
        int i = static_cast<int>(rng.Below(kNumSubs));
        bat::Table out;
        bool hit = cache.LookupSubplan(*u.subs[i], &out);
        const ModelSubEntry* me = m.LookupSub(i);
        ASSERT_EQ(hit, me != nullptr);
        if (hit) {
          ASSERT_EQ(out.rows(), me->items.size());
          int ci = out.FindCol("it");
          ASSERT_GE(ci, 0);
          // Deep equality: a surviving (possibly repaired) entry must
          // serve exactly the items the model predicts — repaired node
          // references point at the updated snapshot's frag.
          EXPECT_TRUE(out.col(static_cast<size_t>(ci))->items() == me->items)
              << "served table diverges for sub " << i;
        }
        break;
      }
      case 3:
      case 4: {  // subplan insert with a random measured cost
        int i = static_cast<int>(rng.Below(kNumSubs));
        int64_t cost_ns = static_cast<int64_t>(rng.Below(300)) * 1000;
        // Occasionally publish from a stale generation — a query that
        // began before a racing registration; must be a silent no-op.
        uint64_t g = rng.Chance(0.1) ? gen - 1 : gen;
        bat::Table t = MakeSubTable(i, store);
        size_t bytes = t.AllocBytes() + alg::ApproxPlanBytes(u.subs[i]);
        std::vector<Item> items = t.col(1)->items();
        bool adm = cache.InsertSubplan(u.subs[i], t, cost_ns, g);
        bool madm = m.InsertSub(i, u.subs[i]->cache_hash, bytes, cost_ns,
                                Universe::SubDocs(i), Universe::SubUnknown(i),
                                Universe::SubValueFree(i), std::move(items),
                                g);
        ASSERT_EQ(adm, madm);
        break;
      }
      case 5: {  // (re-)register one or two documents, then sync
        int n = rng.Chance(0.25) ? 2 : 1;
        for (int k = 0; k < n; ++k) {
          DriverDoc& d = pick_doc();
          d.structure = d.content = ++gen;
          d.frag = next_frag++;
        }
        sync(rng.Chance(0.5));
        break;
      }
      case 6: {  // no-change sync (fast path) or floor change
        if (rng.Chance(0.5)) {
          sync(rng.Chance(0.5));
        } else {
          int64_t us = static_cast<int64_t>(rng.Below(3)) * 50;  // 0/50/100
          cache.SetMinCostUs(us);
          m.min_cost_ns = us * 1000;
        }
        break;
      }
      case 7: {  // budget churn (shrink evicts immediately) or clear
        if (rng.Chance(0.15)) {
          cache.Clear();
          m.Clear();
        } else {
          size_t b = 1u << (13 + rng.Below(4));  // 8..64 KB
          cache.SetBudget(b);
          m.SetBudget(b);
        }
        break;
      }
      case 8: {  // content-only update (leaf replace-value), then sync.
        // Mostly with repair on — value-free entries must survive with
        // their frags re-pointed — and sometimes with repair off, where
        // the content move invalidates like a structural one.
        DriverDoc& d = pick_doc();
        d.content = ++gen;
        d.frag = next_frag++;
        sync(rng.Chance(0.75));
        break;
      }
      case 9: {  // structural update (insert/delete), then sync: always
                 // invalidates dependents, repair flag irrelevant.
        DriverDoc& d = pick_doc();
        d.structure = d.content = ++gen;
        d.frag = next_frag++;
        sync(rng.Chance(0.5));
        break;
      }
    }
    CheckAgainstModel(cache, m);
    if (::testing::Test::HasFailure()) return;  // first divergence only
  }
}

TEST(CacheModelTest, MatchesReferenceModelAcrossSeeds) {
  Universe u;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunSeed(seed, u);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "model divergence at seed " << seed;
  }
}

}  // namespace
}  // namespace pathfinder

file(REMOVE_RECURSE
  "libpf_xmark.a"
)

// Reproduces paper Section 3.1 (storage overhead): size of the
// relational encoding (pre|size|level|kind|prop|value columns plus the
// unique property-string pool) relative to the serialized XML document.
//
// The paper reports 147% at 11 MB falling to 125% at 110 MB, and notes
// that growing text-duplication pushes it below 100% for larger
// instances — the effect of surrogate sharing. The absolute ratio
// depends on the word-list substitution (DESIGN.md), but the trend
// (ratio falls as the instance grows) must reproduce.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace pathfinder::bench {
namespace {

int Main() {
  std::printf("Section 3.1 reproduction: storage overhead of the "
              "relational encoding\n\n");
  std::printf("%10s %12s %14s %14s %14s %9s\n", "sf", "XML bytes",
              "encoding", "pool payload", "total", "ratio");
  for (double sf : ScaleFactors()) {
    xml::Database* db = XMarkDb(sf);
    size_t xml_bytes = XMarkXmlBytes(sf);
    size_t enc = db->EncodingBytes();
    size_t pool = db->PoolPayloadBytes();
    size_t total = enc + pool;
    std::printf("%10g %12zu %14zu %14zu %14zu %8.1f%%\n", sf, xml_bytes,
                enc, pool, total,
                100.0 * static_cast<double>(total) /
                    static_cast<double>(xml_bytes));
  }
  std::printf(
      "\nThe ratio falls with scale: the structural columns grow "
      "linearly with the node count while the property pool grows "
      "sublinearly (identical tags/texts share one surrogate — the "
      "paper's surrogate sharing).\n");
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main() { return pathfinder::bench::Main(); }

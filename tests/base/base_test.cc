#include <gtest/gtest.h>

#include <set>
#include <string>

#include "base/result.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/string_pool.h"

namespace pathfinder {
namespace {

// --- Status ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::ParseError("x").code(),
      Status::TypeError("x").code(),       Status::NotSupported("x").code(),
      Status::NotFound("x").code(),        Status::Internal("x").code(),
      Status::Timeout("x").code(),         Status::Cancelled("x").code(),
      Status::ResourceExhausted("x").code(),
  };
  EXPECT_EQ(codes.size(), 9u);
}

// --- error taxonomy (the pf_serve wire protocol's typed errors) -------

TEST(ErrorTaxonomyTest, EveryCodeMapsToExactlyOneClass) {
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kOk), ErrorClass::kOk);
  // Everything a client wrote wrong collapses to kInvalidQuery...
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kInvalidArgument),
            ErrorClass::kInvalidQuery);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kParseError),
            ErrorClass::kInvalidQuery);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kTypeError),
            ErrorClass::kInvalidQuery);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kNotSupported),
            ErrorClass::kInvalidQuery);
  // ...while the operationally distinct codes keep their own class.
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kNotFound), ErrorClass::kNotFound);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kTimeout), ErrorClass::kTimeout);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kCancelled),
            ErrorClass::kCancelled);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kResourceExhausted),
            ErrorClass::kResourceExhausted);
  EXPECT_EQ(ClassifyStatusCode(StatusCode::kInternal), ErrorClass::kInternal);
}

TEST(ErrorTaxonomyTest, ClassNamesAreStableWireTokens) {
  EXPECT_STREQ(ErrorClassName(ErrorClass::kOk), "ok");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kInvalidQuery), "invalid_query");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kNotFound), "not_found");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kTimeout), "timeout");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kCancelled), "cancelled");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kInternal), "internal");
}

TEST(ErrorTaxonomyTest, StatusCodeIdsAreUniqueSnakeCase) {
  std::set<std::string> ids;
  for (StatusCode c : {StatusCode::kOk, StatusCode::kInvalidArgument,
                       StatusCode::kParseError, StatusCode::kTypeError,
                       StatusCode::kNotSupported, StatusCode::kNotFound,
                       StatusCode::kInternal, StatusCode::kTimeout,
                       StatusCode::kCancelled,
                       StatusCode::kResourceExhausted}) {
    std::string id = StatusCodeId(c);
    for (char ch : id) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << id;
    }
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(ErrorTaxonomyTest, StatusExposesItsClass) {
  EXPECT_EQ(Status::OK().error_class(), ErrorClass::kOk);
  EXPECT_EQ(Status::ParseError("x").error_class(), ErrorClass::kInvalidQuery);
  EXPECT_EQ(Status::Timeout("x").error_class(), ErrorClass::kTimeout);
  EXPECT_EQ(Status::Cancelled("x").error_class(), ErrorClass::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").error_class(),
            ErrorClass::kResourceExhausted);
}

Status FailsAtTwo(int x) {
  if (x == 2) return Status::InvalidArgument("two");
  return Status::OK();
}

Status Chain(int x) {
  PF_RETURN_NOT_OK(FailsAtTwo(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(2).ok());
  EXPECT_EQ(Chain(2).code(), StatusCode::kInvalidArgument);
}

// --- Result ----------------------------------------------------------

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PF_ASSIGN_OR_RETURN(int h, Half(x));
  PF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorRoundTrip) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(12), 3);
  EXPECT_FALSE(Quarter(6).ok());   // 3 is odd at the second step
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- StringPool ------------------------------------------------------

TEST(StringPoolTest, InternDeduplicates) {
  StringPool pool;
  StrId a = pool.Intern("hello");
  StrId b = pool.Intern("world");
  StrId c = pool.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.Get(b), "world");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPoolTest, PayloadBytesCountsUniquePayloadOnly) {
  StringPool pool;
  pool.Intern("abcd");
  pool.Intern("abcd");
  pool.Intern("xy");
  EXPECT_EQ(pool.payload_bytes(), 6u);
}

TEST(StringPoolTest, FindDoesNotIntern) {
  StringPool pool;
  StrId id;
  EXPECT_FALSE(pool.Find("nope", &id));
  StrId a = pool.Intern("yep");
  ASSERT_TRUE(pool.Find("yep", &id));
  EXPECT_EQ(id, a);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, StableViewsUnderGrowth) {
  // Regression: string_view keys must stay valid when the pool grows
  // (SSO strings in a vector would move).
  StringPool pool;
  std::vector<std::pair<StrId, std::string>> entries;
  for (int i = 0; i < 10000; ++i) {
    std::string s = "key" + std::to_string(i);
    entries.emplace_back(pool.Intern(s), s);
  }
  for (const auto& [id, s] : entries) {
    EXPECT_EQ(pool.Get(id), s);
    EXPECT_EQ(pool.Intern(s), id) << s;
  }
}

TEST(StringPoolTest, EmptyStringIsInternable) {
  StringPool pool;
  StrId e = pool.Intern("");
  EXPECT_EQ(pool.Get(e), "");
  EXPECT_EQ(pool.Intern(""), e);
}

// --- Rng -------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.Next(), 0u);
}

}  // namespace
}  // namespace pathfinder

// Randomized model checking of engine::QueryCache.
//
// A naive reference model (plain lists and maps, no budgets shared with
// the real implementation) re-implements the cache's documented
// semantics: plan-section LRU, subplan cost-density eviction with the
// admission floor, per-document invalidation, alias repair and budget
// shrinking. A seeded driver runs random operation sequences against
// both and demands identical observable state after every single
// operation — hit/miss/eviction/invalidation counters, the MRU-ordered
// resident subplan section, and the full resident plan key set.

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/hash.h"
#include "algebra/op.h"
#include "base/rng.h"
#include "bat/column.h"
#include "bat/table.h"
#include "engine/cache.h"

namespace pathfinder {
namespace {

namespace alg = pathfinder::algebra;
using engine::CacheStats;
using engine::PlanCacheEntry;
using engine::PlanEntryPtr;
using engine::QueryCache;

constexpr int kNumSubs = 24;     // distinct cacheable subtrees
constexpr int kNumDocs = 4;      // document-name universe
constexpr int kNumGroups = 8;    // canonical-core groups
constexpr int kNumRaw = 16;      // raw query spellings (2 per group)
constexpr int kOpsPerSeed = 400;
constexpr int kSeeds = 60;

std::string DocName(int d) { return "doc" + std::to_string(d) + ".xml"; }

// --- reference model ------------------------------------------------------

struct ModelPlanEntry {
  std::vector<std::string> keys;
  size_t bytes = 0;
  std::vector<std::string> deps;
  bool unknown = false;
};

struct ModelSubEntry {
  int idx = -1;  // which universe subtree (identity stand-in)
  uint64_t hash = 0;
  size_t bytes = 0;
  int64_t cost_ns = 0;
  std::vector<std::string> docs;
  bool unknown = false;
};

bool LowerDensity(int64_t a_cost, size_t a_bytes, int64_t b_cost,
                  size_t b_bytes) {
  return static_cast<unsigned __int128>(a_cost) * b_bytes <
         static_cast<unsigned __int128>(b_cost) * a_bytes;
}

bool DepsHit(const std::vector<std::string>& deps, bool unknown,
             const std::unordered_set<std::string>& changed) {
  if (unknown) return true;
  for (const auto& d : deps) {
    if (changed.count(d)) return true;
  }
  return false;
}

struct Model {
  size_t budget;
  int64_t min_cost_ns;
  bool gen_seen = false;
  uint64_t gen = 0;
  std::map<std::string, uint64_t> versions;

  std::list<ModelPlanEntry> plan;  // front = most recent
  std::list<ModelSubEntry> sub;    // front = most recent

  int64_t plan_hits = 0, plan_misses = 0, plan_evictions = 0;
  int64_t sub_hits = 0, sub_misses = 0, sub_evictions = 0;
  int64_t invalidations = 0, per_doc_invalidations = 0, admission_rejects = 0;

  size_t PlanBudget() const { return budget / 4; }
  size_t SubBudget() const { return budget - budget / 4; }

  size_t PlanBytes() const {
    size_t b = 0;
    for (const auto& e : plan) b += e.bytes;
    return b;
  }
  size_t SubBytes() const {
    size_t b = 0;
    for (const auto& e : sub) b += e.bytes;
    return b;
  }

  std::list<ModelPlanEntry>::iterator FindPlan(const std::string& key) {
    for (auto it = plan.begin(); it != plan.end(); ++it) {
      for (const auto& k : it->keys) {
        if (k == key) return it;
      }
    }
    return plan.end();
  }

  void EvictPlan(size_t needed) {
    while (!plan.empty() && PlanBytes() + needed > PlanBudget()) {
      plan.pop_back();
      plan_evictions++;
    }
  }

  void EvictSub(size_t needed) {
    while (!sub.empty() && SubBytes() + needed > SubBudget()) {
      auto victim = std::prev(sub.end());
      for (auto it = std::prev(sub.end()); it != sub.begin();) {
        --it;
        if (LowerDensity(it->cost_ns, it->bytes, victim->cost_ns,
                         victim->bytes)) {
          victim = it;
        }
      }
      sub.erase(victim);
      sub_evictions++;
    }
  }

  // Mirrors QueryCache::BeginQuery + InvalidateDocsLocked.
  void BeginQuery(uint64_t g,
                  const std::vector<std::pair<std::string, uint64_t>>& docs) {
    if (gen_seen && gen != g) {
      invalidations++;
      std::unordered_set<std::string> changed;
      for (const auto& [name, v] : docs) {
        auto it = versions.find(name);
        if (it == versions.end() || it->second != v) changed.insert(name);
      }
      if (!changed.empty()) {
        for (auto it = plan.begin(); it != plan.end();) {
          if (DepsHit(it->deps, it->unknown, changed)) {
            it = plan.erase(it);
            per_doc_invalidations++;
          } else {
            ++it;
          }
        }
        for (auto it = sub.begin(); it != sub.end();) {
          if (DepsHit(it->docs, it->unknown, changed)) {
            it = sub.erase(it);
            per_doc_invalidations++;
          } else {
            ++it;
          }
        }
      }
    }
    if (!gen_seen || gen != g) {
      versions.clear();
      for (const auto& [name, v] : docs) versions[name] = v;
    }
    gen = g;
    gen_seen = true;
  }

  // Mirrors LookupPlan. Returns whether the key hit.
  bool LookupPlan(const std::string& key) {
    auto it = FindPlan(key);
    if (it == plan.end()) {
      plan_misses++;
      return false;
    }
    plan_hits++;
    plan.splice(plan.begin(), plan, it);
    return true;
  }

  // Mirrors AliasPlan for a just-hit (front) entry.
  void AliasFront(const std::string& key) {
    if (FindPlan(key) != plan.end()) return;
    plan.front().keys.push_back(key);
    plan.front().bytes += key.size();
  }

  // Mirrors InsertPlan for absent raw/core keys.
  void InsertPlan(const std::string& raw, const std::string& core,
                  size_t base_bytes, std::vector<std::string> deps,
                  bool unknown) {
    ModelPlanEntry e;
    e.keys = {raw, core};
    e.bytes = base_bytes + raw.size() + core.size();
    e.deps = std::move(deps);
    e.unknown = unknown;
    if (e.bytes > PlanBudget()) return;  // never fits: not resident
    EvictPlan(e.bytes);
    plan.push_front(std::move(e));
  }

  // Mirrors LookupSubplan.
  bool LookupSub(int idx) {
    for (auto it = sub.begin(); it != sub.end(); ++it) {
      if (it->idx == idx) {
        sub.splice(sub.begin(), sub, it);
        sub_hits++;
        return true;
      }
    }
    sub_misses++;
    return false;
  }

  // Mirrors InsertSubplan. Returns the admission verdict.
  bool InsertSub(int idx, uint64_t hash, size_t bytes, int64_t cost_ns,
                 std::vector<std::string> docs, bool unknown,
                 uint64_t db_generation) {
    if (gen_seen && db_generation != gen) return true;  // stale publisher
    for (const auto& e : sub) {
      if (e.idx == idx) return true;  // duplicate: silent no-op
    }
    if (min_cost_ns > 0 && cost_ns < min_cost_ns) {
      admission_rejects++;
      return false;
    }
    ModelSubEntry e;
    e.idx = idx;
    e.hash = hash;
    e.bytes = bytes;
    e.cost_ns = cost_ns;
    e.docs = std::move(docs);
    e.unknown = unknown;
    if (e.bytes > SubBudget()) return true;  // would never fit
    EvictSub(e.bytes);
    sub.push_front(std::move(e));
    return true;
  }

  void SetBudget(size_t b) {
    budget = b;
    EvictPlan(0);
    EvictSub(0);
  }

  void Clear() {
    plan.clear();
    sub.clear();
  }

  std::vector<std::string> SortedPlanKeys() const {
    std::vector<std::string> keys;
    for (const auto& e : plan) {
      keys.insert(keys.end(), e.keys.begin(), e.keys.end());
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};

// --- driver ---------------------------------------------------------------

// The fixed universe one seed runs against: distinct subtrees (with
// hashes, docs and result tables) plus deterministic per-group plan
// entry shapes, so model and cache see byte-identical inputs even when
// an entry is re-inserted after eviction.
struct Universe {
  std::vector<alg::OpPtr> subs;
  std::vector<bat::Table> tables;
  std::vector<size_t> sub_bytes;

  Universe() {
    for (int i = 0; i < kNumSubs; ++i) {
      alg::OpPtr op =
          alg::Attach(alg::EmptySeq(), "c", bat::ColType::kInt, Item::Int(i));
      op->cache_cand = true;
      op->cache_hash = alg::StructuralHash(op);
      op->cache_docs = SubDocs(i);
      op->cache_docs_unknown = SubUnknown(i);
      subs.push_back(op);

      auto col = bat::Column::MakeInt();
      size_t rows = static_cast<size_t>((i * 37) % 512) + 1;
      for (size_t r = 0; r < rows; ++r) col->ints().push_back(i);
      bat::Table t;
      t.AddCol("x", std::move(col));
      sub_bytes.push_back(t.AllocBytes() + alg::ApproxPlanBytes(op));
      tables.push_back(std::move(t));
    }
  }

  static std::vector<std::string> SubDocs(int i) {
    if (SubUnknown(i)) return {};
    std::vector<std::string> d = {DocName(i % kNumDocs)};
    if (i % 5 == 0) {
      std::string extra = DocName((i + 1) % kNumDocs);
      if (extra != d[0]) d.push_back(extra);
    }
    std::sort(d.begin(), d.end());
    return d;
  }
  static bool SubUnknown(int i) { return i % 11 == 3; }

  static std::string RawKey(int r) { return "r:q" + std::to_string(r); }
  static std::string CoreKey(int r) {
    return "c:group" + std::to_string(r % kNumGroups);
  }
  static size_t GroupBaseBytes(int r) {
    return 200 + static_cast<size_t>(r % kNumGroups) * 150;
  }
  static std::vector<std::string> GroupDeps(int r) {
    if (GroupUnknown(r)) return {};
    return {DocName((r % kNumGroups) % kNumDocs)};
  }
  static bool GroupUnknown(int r) { return r % kNumGroups == 5; }
};

void CheckAgainstModel(const QueryCache& cache, const Model& m,
                       const Universe& u) {
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.plan.hits, m.plan_hits);
  EXPECT_EQ(s.plan.misses, m.plan_misses);
  EXPECT_EQ(s.plan.evictions, m.plan_evictions);
  EXPECT_EQ(s.plan.entries, static_cast<int64_t>(m.plan.size()));
  EXPECT_EQ(s.plan.bytes, static_cast<int64_t>(m.PlanBytes()));
  EXPECT_EQ(s.subplan.hits, m.sub_hits);
  EXPECT_EQ(s.subplan.misses, m.sub_misses);
  EXPECT_EQ(s.subplan.evictions, m.sub_evictions);
  EXPECT_EQ(s.subplan.entries, static_cast<int64_t>(m.sub.size()));
  EXPECT_EQ(s.subplan.bytes, static_cast<int64_t>(m.SubBytes()));
  EXPECT_EQ(s.invalidations, m.invalidations);
  EXPECT_EQ(s.per_doc_invalidations, m.per_doc_invalidations);
  EXPECT_EQ(s.admission_rejects, m.admission_rejects);
  EXPECT_EQ(s.budget_bytes, static_cast<int64_t>(m.budget));
  EXPECT_EQ(s.min_cost_us, m.min_cost_ns / 1000);

  // Resident subplan section, most recent first, entry for entry.
  ASSERT_EQ(s.subplan_entries.size(), m.sub.size());
  size_t i = 0;
  for (const ModelSubEntry& e : m.sub) {
    EXPECT_EQ(s.subplan_entries[i].hash, e.hash) << "entry " << i;
    EXPECT_EQ(s.subplan_entries[i].bytes, static_cast<int64_t>(e.bytes))
        << "entry " << i;
    EXPECT_EQ(s.subplan_entries[i].cost_us, e.cost_ns / 1000)
        << "entry " << i;
    ++i;
  }

  EXPECT_EQ(cache.ResidentPlanKeysForTest(), m.SortedPlanKeys());
  (void)u;
}

void RunSeed(uint64_t seed, const Universe& u) {
  Rng rng(seed);

  // Budget small enough that evictions actually happen (sub tables run
  // up to ~4 KB each), floor pinned explicitly so the ambient
  // PF_CACHE_MIN_COST_US can't skew the run.
  size_t budget = 1u << (14 + rng.Below(3));  // 16/32/64 KB
  int64_t min_cost_us = 50;
  QueryCache cache(budget);
  cache.SetMinCostUs(min_cost_us);

  Model m;
  m.budget = budget;
  m.min_cost_ns = min_cost_us * 1000;

  // Driver-side document store: per-name versions under one monotonic
  // generation, exactly like xml::Database.
  uint64_t gen = 0;
  std::map<std::string, uint64_t> versions;
  for (int d = 0; d < kNumDocs; ++d) versions[DocName(d)] = ++gen;
  auto version_vec = [&] {
    std::vector<std::pair<std::string, uint64_t>> v(versions.begin(),
                                                    versions.end());
    return v;
  };

  cache.BeginQuery(gen, version_vec());
  m.BeginQuery(gen, version_vec());
  CheckAgainstModel(cache, m, u);

  for (int op = 0; op < kOpsPerSeed; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    switch (rng.Below(8)) {
      case 0: {  // plan-cache query: lookup -> alias-repair -> insert
        int r = static_cast<int>(rng.Below(kNumRaw));
        std::string raw = Universe::RawKey(r);
        std::string core = Universe::CoreKey(r);
        PlanEntryPtr e = cache.LookupPlan(raw);
        bool mhit = m.LookupPlan(raw);
        ASSERT_EQ(e != nullptr, mhit);
        if (!e) {
          PlanEntryPtr via_core = cache.LookupPlan(core);
          bool mcore = m.LookupPlan(core);
          ASSERT_EQ(via_core != nullptr, mcore);
          if (via_core) {
            cache.AliasPlan(raw, via_core);
            m.AliasFront(raw);
          } else {
            PlanCacheEntry pe;
            pe.bytes = Universe::GroupBaseBytes(r);
            pe.doc_deps = Universe::GroupDeps(r);
            pe.doc_deps_unknown = Universe::GroupUnknown(r);
            cache.InsertPlan(raw, core, std::move(pe));
            m.InsertPlan(raw, core, Universe::GroupBaseBytes(r),
                         Universe::GroupDeps(r), Universe::GroupUnknown(r));
          }
        }
        break;
      }
      case 1:
      case 2: {  // subplan lookup
        int i = static_cast<int>(rng.Below(kNumSubs));
        bat::Table out;
        bool hit = cache.LookupSubplan(*u.subs[i], &out);
        bool mhit = m.LookupSub(i);
        ASSERT_EQ(hit, mhit);
        if (hit) {
          EXPECT_EQ(out.rows(), u.tables[i].rows());
        }
        break;
      }
      case 3:
      case 4: {  // subplan insert with a random measured cost
        int i = static_cast<int>(rng.Below(kNumSubs));
        int64_t cost_ns = static_cast<int64_t>(rng.Below(300)) * 1000;
        // Occasionally publish from a stale generation — a query that
        // began before a racing registration; must be a silent no-op.
        uint64_t g = rng.Chance(0.1) ? gen - 1 : gen;
        bool adm = cache.InsertSubplan(u.subs[i], u.tables[i], cost_ns, g);
        bool madm = m.InsertSub(i, u.subs[i]->cache_hash, u.sub_bytes[i],
                                cost_ns, Universe::SubDocs(i),
                                Universe::SubUnknown(i), g);
        ASSERT_EQ(adm, madm);
        break;
      }
      case 5: {  // (re-)register one or two documents, then sync
        int n = rng.Chance(0.25) ? 2 : 1;
        for (int k = 0; k < n; ++k) {
          versions[DocName(static_cast<int>(rng.Below(kNumDocs)))] = ++gen;
        }
        cache.BeginQuery(gen, version_vec());
        m.BeginQuery(gen, version_vec());
        break;
      }
      case 6: {  // no-change sync (fast path) or floor change
        if (rng.Chance(0.5)) {
          cache.BeginQuery(gen, version_vec());
          m.BeginQuery(gen, version_vec());
        } else {
          int64_t us = static_cast<int64_t>(rng.Below(3)) * 50;  // 0/50/100
          cache.SetMinCostUs(us);
          m.min_cost_ns = us * 1000;
        }
        break;
      }
      case 7: {  // budget churn (shrink evicts immediately) or clear
        if (rng.Chance(0.15)) {
          cache.Clear();
          m.Clear();
        } else {
          size_t b = 1u << (13 + rng.Below(4));  // 8..64 KB
          cache.SetBudget(b);
          m.SetBudget(b);
        }
        break;
      }
    }
    CheckAgainstModel(cache, m, u);
    if (::testing::Test::HasFailure()) return;  // first divergence only
  }
}

TEST(CacheModelTest, MatchesReferenceModelAcrossSeeds) {
  Universe u;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunSeed(seed, u);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "model divergence at seed " << seed;
  }
}

}  // namespace
}  // namespace pathfinder

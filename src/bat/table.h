#ifndef PATHFINDER_BAT_TABLE_H_
#define PATHFINDER_BAT_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "bat/column.h"

namespace pathfinder::bat {

/// An in-memory relation: named columns of equal length.
///
/// All algebra operators consume and produce Tables. Columns are shared
/// (copy-on-write by convention: a column reachable from a Table is never
/// mutated), so projection and renaming are O(#columns).
class Table {
 public:
  Table() = default;

  /// Number of rows (0 for the empty schema-only table).
  size_t rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }

  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t i) const { return names_[i]; }
  const ColumnPtr& col(size_t i) const { return cols_[i]; }

  /// Index of column `name`, or -1.
  int FindCol(std::string_view name) const;
  bool HasCol(std::string_view name) const { return FindCol(name) >= 0; }

  /// Column by name; Status error if absent (kInternal — schema mismatch
  /// is a plan bug, not user input).
  Result<ColumnPtr> GetCol(std::string_view name) const;

  /// Append a column. The first column fixes the row count; subsequent
  /// columns must match it (checked by assert).
  void AddCol(std::string name, ColumnPtr col);

  /// Replace the column at index i (same length).
  void SetCol(size_t i, ColumnPtr col) { cols_[i] = std::move(col); }

  /// Rows with columns in `names` order rendered for debugging/tests.
  std::string ToString(const StringPool* pool = nullptr,
                       size_t max_rows = 64) const;

  /// Sum of column payload bytes.
  size_t ByteSize() const;

  /// Allocated bytes (column capacities + name strings) — resident
  /// footprint of a cached result. Shared columns are counted once per
  /// Table; the cache accepts the overestimate for shared ColumnPtrs.
  size_t AllocBytes() const;

 private:
  std::vector<std::string> names_;
  std::vector<ColumnPtr> cols_;
  size_t rows_ = 0;
  bool has_rows_set_ = false;
};

}  // namespace pathfinder::bat

#endif  // PATHFINDER_BAT_TABLE_H_

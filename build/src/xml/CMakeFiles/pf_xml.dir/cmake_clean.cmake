file(REMOVE_RECURSE
  "CMakeFiles/pf_xml.dir/database.cc.o"
  "CMakeFiles/pf_xml.dir/database.cc.o.d"
  "CMakeFiles/pf_xml.dir/document.cc.o"
  "CMakeFiles/pf_xml.dir/document.cc.o.d"
  "CMakeFiles/pf_xml.dir/parser.cc.o"
  "CMakeFiles/pf_xml.dir/parser.cc.o.d"
  "CMakeFiles/pf_xml.dir/serializer.cc.o"
  "CMakeFiles/pf_xml.dir/serializer.cc.o.d"
  "CMakeFiles/pf_xml.dir/tree_builder.cc.o"
  "CMakeFiles/pf_xml.dir/tree_builder.cc.o.d"
  "libpf_xml.a"
  "libpf_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

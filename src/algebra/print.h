#ifndef PATHFINDER_ALGEBRA_PRINT_H_
#define PATHFINDER_ALGEBRA_PRINT_H_

#include <functional>
#include <string>

#include "algebra/op.h"
#include "base/string_pool.h"

namespace pathfinder::algebra {

/// One-line description of a single operator (kind + parameters),
/// e.g. "rownum pos1:<iter>/pos" or "scjoin descendant::item".
std::string OpLabel(const Op& op, const StringPool& pool);

/// Indented text rendering of the plan DAG. Shared subplans are printed
/// once and referenced as "^<id>" afterwards (plans are DAGs, paper
/// Sec. 2).
std::string PlanToText(const OpPtr& root, const StringPool& pool);

/// Per-operator annotation hook for PlanToTextAnnotated: returns extra
/// text appended to the operator's line (empty = no annotation). Used
/// by the execution profiler to render timings/row counts next to each
/// plan node.
using OpAnnotator = std::function<std::string(const Op&)>;

/// PlanToText with a per-operator annotation appended to each line.
std::string PlanToTextAnnotated(const OpPtr& root, const StringPool& pool,
                                const OpAnnotator& annot);

/// Graphviz dot rendering (the demo's "graphical output of relational
/// query plans", paper Sec. 4 / Fig. 5).
std::string PlanToDot(const OpPtr& root, const StringPool& pool);

}  // namespace pathfinder::algebra

#endif  // PATHFINDER_ALGEBRA_PRINT_H_

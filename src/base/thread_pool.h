#ifndef PATHFINDER_BASE_THREAD_POOL_H_
#define PATHFINDER_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"

namespace pathfinder {

/// Fixed-size worker pool running morsel-wise ParallelFor loops over
/// row ranges (the execution backbone of the parallel BAT kernel and
/// the parallel staircase join).
///
/// Determinism contract: ParallelFor splits [0, n) into chunks of
/// `grain` rows. Chunk boundaries are a function of (n, grain) ONLY —
/// never of the pool size or of runtime scheduling — so a caller that
/// keys all shared state on the chunk index and merges per-chunk
/// results in chunk order computes the same bytes at every thread
/// count. Every kernel operator built on this class follows that rule.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers; the thread calling ParallelFor
  /// always participates as the remaining worker.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// fn(chunk, lo, hi): chunk index and the half-open row range it
  /// covers. fn runs concurrently for different chunks.
  using ChunkFn = std::function<void(size_t chunk, size_t lo, size_t hi)>;
  using ChunkStatusFn =
      std::function<Status(size_t chunk, size_t lo, size_t hi)>;

  /// Runs fn over every chunk of [0, n) and blocks until all chunks
  /// finished. Every chunk runs even if an earlier one threw; the
  /// exception of the lowest-index throwing chunk is rethrown in the
  /// caller afterwards. A nested call from inside a worker (including
  /// the participating caller thread) runs inline — sequentially, same
  /// chunk structure — instead of deadlocking on the pool.
  void ParallelFor(size_t n, size_t grain, const ChunkFn& fn);

  /// Status-returning variant: runs every chunk and returns the non-OK
  /// status of the lowest chunk index (or OK).
  Status ParallelForStatus(size_t n, size_t grain, const ChunkStatusFn& fn);

  /// Number of chunks ParallelFor uses for a range of n rows.
  static size_t NumChunks(size_t n, size_t grain) {
    if (grain == 0) grain = 1;
    return n == 0 ? 0 : (n - 1) / grain + 1;
  }

  /// Process-wide pool sized by DefaultNumThreads(). Returns nullptr
  /// when that size is 1: callers treat nullptr as "run serially on
  /// this thread" (the exact legacy code path).
  static ThreadPool* Default();

  /// PF_THREADS if set and >= 1, else std::thread::hardware_concurrency.
  static int DefaultNumThreads();

 private:
  // Per-ParallelFor state, shared_ptr-held so a worker that wakes late
  // (after the job completed and a new one was posted) still reads a
  // consistent, immutable snapshot and simply finds no chunk to claim.
  struct Job {
    const ChunkFn* fn = nullptr;
    size_t n = 0;
    size_t grain = 0;
    size_t chunks = 0;
    std::atomic<size_t> next{0};
    size_t done = 0;  // guarded by pool mu_
    std::vector<std::exception_ptr> errs;
  };

  void WorkerLoop();
  void RunChunks(Job* job);
  static void RunSerial(size_t n, size_t grain, size_t chunks,
                        const ChunkFn& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: job posted / stop
  std::condition_variable done_cv_;  // caller: all chunks finished
  bool stop_ = false;
  uint64_t job_seq_ = 0;  // bumped when a job is posted
  std::shared_ptr<Job> job_;

  std::mutex submit_mu_;  // serializes external ParallelFor callers
};

/// Dispatch helpers used by all kernel call sites: run on `pool` when
/// non-null, inline (same chunk structure, sequential) when null, so
/// the computation is identical at every thread count including 1.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const ThreadPool::ChunkFn& fn);
Status ParallelForStatus(ThreadPool* pool, size_t n, size_t grain,
                         const ThreadPool::ChunkStatusFn& fn);

}  // namespace pathfinder

#endif  // PATHFINDER_BASE_THREAD_POOL_H_

#include "algebra/schema.h"

#include <sstream>

namespace pathfinder::algebra {

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i) os << " | ";
    os << cols[i].first << ":" << bat::ColTypeName(cols[i].second);
  }
  return os.str();
}

namespace {

Status Fail(const Op& op, const std::string& msg) {
  return Status::Internal(std::string(OpKindName(op.kind)) + " (op " +
                          std::to_string(op.id) + "): " + msg);
}

Result<bat::ColType> ColOf(const Op& op, const Schema& s,
                           const std::string& name) {
  int i = s.Find(name);
  if (i < 0) return Fail(op, "unknown column '" + name + "'");
  return s.cols[static_cast<size_t>(i)].second;
}

Status RequireSeqCols(const Op& op, const Schema& s, bool need_pos) {
  PF_ASSIGN_OR_RETURN(bat::ColType it, ColOf(op, s, "iter"));
  if (it != bat::ColType::kInt) return Fail(op, "iter must be int");
  PF_ASSIGN_OR_RETURN(bat::ColType im, ColOf(op, s, "item"));
  if (im != bat::ColType::kItem) return Fail(op, "item must be item");
  if (need_pos) {
    PF_ASSIGN_OR_RETURN(bat::ColType p, ColOf(op, s, "pos"));
    if (p != bat::ColType::kInt) return Fail(op, "pos must be int");
  }
  return Status::OK();
}

Result<Schema> InferOne(const Op& op, const std::vector<const Schema*>& cs) {
  auto require_children = [&](size_t n) -> Status {
    if (cs.size() != n) {
      return Fail(op, "expected " + std::to_string(n) + " children, got " +
                          std::to_string(cs.size()));
    }
    return Status::OK();
  };

  switch (op.kind) {
    case OpKind::kLitTable: {
      PF_RETURN_NOT_OK(require_children(0));
      if (op.names.size() != op.types.size()) {
        return Fail(op, "names/types size mismatch");
      }
      for (const auto& row : op.rows) {
        if (row.size() != op.names.size()) {
          return Fail(op, "row width mismatch");
        }
      }
      Schema s;
      for (size_t i = 0; i < op.names.size(); ++i) {
        if (s.Has(op.names[i])) {
          return Fail(op, "duplicate column '" + op.names[i] + "'");
        }
        s.cols.emplace_back(op.names[i], op.types[i]);
      }
      return s;
    }
    case OpKind::kProject: {
      PF_RETURN_NOT_OK(require_children(1));
      Schema s;
      for (const auto& [nw, old] : op.proj) {
        PF_ASSIGN_OR_RETURN(bat::ColType t, ColOf(op, *cs[0], old));
        if (s.Has(nw)) return Fail(op, "duplicate output column '" + nw + "'");
        s.cols.emplace_back(nw, t);
      }
      return s;
    }
    case OpKind::kAttach: {
      PF_RETURN_NOT_OK(require_children(1));
      if (cs[0]->Has(op.out)) {
        return Fail(op, "attached column '" + op.out + "' already exists");
      }
      Schema s = *cs[0];
      s.cols.emplace_back(op.out, op.types.at(0));
      return s;
    }
    case OpKind::kSelect: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_ASSIGN_OR_RETURN(bat::ColType t, ColOf(op, *cs[0], op.col));
      if (t != bat::ColType::kBool) {
        return Fail(op, "selection predicate must be bool");
      }
      return *cs[0];
    }
    case OpKind::kDisjointUnion: {
      PF_RETURN_NOT_OK(require_children(2));
      if (cs[0]->cols.size() != cs[1]->cols.size()) {
        return Fail(op, "schema width mismatch");
      }
      for (const auto& [name, type] : cs[0]->cols) {
        PF_ASSIGN_OR_RETURN(bat::ColType t2, ColOf(op, *cs[1], name));
        if (t2 != type) {
          return Fail(op, "column '" + name + "' type mismatch");
        }
      }
      return *cs[0];
    }
    case OpKind::kDifference: {
      PF_RETURN_NOT_OK(require_children(2));
      const auto& keys = op.keys;
      if (keys.empty()) return Fail(op, "difference needs key columns");
      for (const auto& k : keys) {
        PF_ASSIGN_OR_RETURN(bat::ColType ta, ColOf(op, *cs[0], k));
        PF_ASSIGN_OR_RETURN(bat::ColType tb, ColOf(op, *cs[1], k));
        if (ta != tb) return Fail(op, "key '" + k + "' type mismatch");
      }
      return *cs[0];
    }
    case OpKind::kDistinct: {
      PF_RETURN_NOT_OK(require_children(1));
      for (const auto& k : op.keys) {
        PF_RETURN_NOT_OK(ColOf(op, *cs[0], k).status());
      }
      return *cs[0];
    }
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin: {
      PF_RETURN_NOT_OK(require_children(2));
      PF_ASSIGN_OR_RETURN(bat::ColType ta, ColOf(op, *cs[0], op.col));
      PF_ASSIGN_OR_RETURN(bat::ColType tb, ColOf(op, *cs[1], op.col2));
      if (op.kind == OpKind::kEquiJoin && ta != tb) {
        return Fail(op, "join key type mismatch");
      }
      Schema s = *cs[0];
      for (const auto& [name, type] : cs[1]->cols) {
        if (s.Has(name)) {
          return Fail(op, "join sides share column '" + name + "'");
        }
        s.cols.emplace_back(name, type);
      }
      return s;
    }
    case OpKind::kCross: {
      PF_RETURN_NOT_OK(require_children(2));
      Schema s = *cs[0];
      for (const auto& [name, type] : cs[1]->cols) {
        if (s.Has(name)) {
          return Fail(op, "cross sides share column '" + name + "'");
        }
        s.cols.emplace_back(name, type);
      }
      return s;
    }
    case OpKind::kRowNum: {
      PF_RETURN_NOT_OK(require_children(1));
      if (!op.order_desc.empty() &&
          op.order_desc.size() != op.order.size()) {
        return Fail(op, "order_desc size mismatch");
      }
      for (const auto& k : op.part) {
        PF_RETURN_NOT_OK(ColOf(op, *cs[0], k).status());
      }
      for (const auto& k : op.order) {
        PF_RETURN_NOT_OK(ColOf(op, *cs[0], k).status());
      }
      if (cs[0]->Has(op.out)) {
        return Fail(op, "rownum column '" + op.out + "' already exists");
      }
      Schema s = *cs[0];
      s.cols.emplace_back(op.out, bat::ColType::kInt);
      return s;
    }
    case OpKind::kStep: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/false));
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kPathScan: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/false));
      if (op.path.empty()) return Fail(op, "pathscan with empty chain");
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kDocRoot: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/false));
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kElemConstr: {
      PF_RETURN_NOT_OK(require_children(2));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/false));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[1], /*need_pos=*/true));
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kTextConstr: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/false));
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kStrJoin: {
      PF_RETURN_NOT_OK(require_children(2));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/true));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[1], /*need_pos=*/false));
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kAttrConstr: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/true));
      if (op.out.empty()) return Fail(op, "attribute name missing");
      Schema s;
      s.cols.emplace_back("iter", bat::ColType::kInt);
      s.cols.emplace_back("item", bat::ColType::kItem);
      return s;
    }
    case OpKind::kFun1: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_ASSIGN_OR_RETURN(bat::ColType tin, ColOf(op, *cs[0], op.col));
      bat::ColType expect_in, tout;
      switch (op.fun1) {
        case Fun1::kNot:
          expect_in = bat::ColType::kBool;
          tout = bat::ColType::kBool;
          break;
        case Fun1::kBoolToItem:
          expect_in = bat::ColType::kBool;
          tout = bat::ColType::kItem;
          break;
        case Fun1::kItemToBool:
        case Fun1::kIsElement:
        case Fun1::kIsAttribute:
        case Fun1::kIsText:
        case Fun1::kIsNode:
        case Fun1::kIsInt:
        case Fun1::kIsDouble:
        case Fun1::kIsString:
        case Fun1::kIsBool:
          expect_in = bat::ColType::kItem;
          tout = bat::ColType::kBool;
          break;
        case Fun1::kIntToItem:
          expect_in = bat::ColType::kInt;
          tout = bat::ColType::kItem;
          break;
        default:
          expect_in = bat::ColType::kItem;
          tout = bat::ColType::kItem;
          break;
      }
      if (tin != expect_in) return Fail(op, "fun1 input type mismatch");
      if (cs[0]->Has(op.out)) {
        return Fail(op, "fun1 output '" + op.out + "' already exists");
      }
      Schema s = *cs[0];
      s.cols.emplace_back(op.out, tout);
      return s;
    }
    case OpKind::kFun2: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_ASSIGN_OR_RETURN(bat::ColType t1, ColOf(op, *cs[0], op.col));
      PF_ASSIGN_OR_RETURN(bat::ColType t2, ColOf(op, *cs[0], op.col2));
      bat::ColType expect, tout;
      switch (op.fun2) {
        case Fun2::kAnd:
        case Fun2::kOr:
          expect = bat::ColType::kBool;
          tout = bat::ColType::kBool;
          break;
        case Fun2::kAdd:
        case Fun2::kSub:
        case Fun2::kMul:
        case Fun2::kDiv:
        case Fun2::kIdiv:
        case Fun2::kMod:
        case Fun2::kConcat:
        case Fun2::kSubstrFrom:
        case Fun2::kSubstrLen:
          expect = bat::ColType::kItem;
          tout = bat::ColType::kItem;
          break;
        default:
          expect = bat::ColType::kItem;
          tout = bat::ColType::kBool;
          break;
      }
      if (t1 != expect || t2 != expect) {
        return Fail(op, "fun2 input type mismatch");
      }
      if (cs[0]->Has(op.out)) {
        return Fail(op, "fun2 output '" + op.out + "' already exists");
      }
      Schema s = *cs[0];
      s.cols.emplace_back(op.out, tout);
      return s;
    }
    case OpKind::kAggr: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_ASSIGN_OR_RETURN(bat::ColType tp, ColOf(op, *cs[0], op.col));
      if (tp != bat::ColType::kInt) {
        return Fail(op, "aggregate partition column must be int");
      }
      if (!op.col2.empty()) {
        PF_ASSIGN_OR_RETURN(bat::ColType tv, ColOf(op, *cs[0], op.col2));
        if (tv != bat::ColType::kItem) {
          return Fail(op, "aggregate value column must be item");
        }
      } else if (op.agg != bat::AggKind::kCount) {
        return Fail(op, "only count may omit the value column");
      }
      Schema s;
      s.cols.emplace_back(op.col, bat::ColType::kInt);
      s.cols.emplace_back(op.out, bat::ColType::kItem);
      return s;
    }
    case OpKind::kSort: {
      PF_RETURN_NOT_OK(require_children(1));
      if (op.order.empty()) return Fail(op, "sort needs order columns");
      if (!op.order_desc.empty() &&
          op.order_desc.size() != op.order.size()) {
        return Fail(op, "order_desc size mismatch");
      }
      for (const auto& k : op.order) {
        PF_RETURN_NOT_OK(ColOf(op, *cs[0], k).status());
      }
      return *cs[0];
    }
    case OpKind::kRank: {
      PF_RETURN_NOT_OK(require_children(1));
      if (op.out.empty()) return Fail(op, "rank output column missing");
      if (cs[0]->Has(op.out)) {
        return Fail(op, "rank column '" + op.out + "' already exists");
      }
      Schema s = *cs[0];
      s.cols.emplace_back(op.out, bat::ColType::kInt);
      return s;
    }
    case OpKind::kSerialize: {
      PF_RETURN_NOT_OK(require_children(1));
      PF_RETURN_NOT_OK(RequireSeqCols(op, *cs[0], /*need_pos=*/true));
      return *cs[0];
    }
  }
  return Fail(op, "unknown operator kind");
}

}  // namespace

Result<Schema> InferSchemas(
    const OpPtr& root, std::unordered_map<const Op*, Schema>* schemas) {
  std::unordered_map<const Op*, Schema> local;
  auto& memo = schemas ? *schemas : local;
  std::vector<Op*> order = TopoOrder(root);
  for (Op* op : order) {
    std::vector<const Schema*> cs;
    cs.reserve(op->children.size());
    for (const auto& c : op->children) {
      auto it = memo.find(c.get());
      if (it == memo.end()) {
        return Status::Internal("topo order broken in InferSchemas");
      }
      cs.push_back(&it->second);
    }
    PF_ASSIGN_OR_RETURN(Schema s, InferOne(*op, cs));
    memo.emplace(op, std::move(s));
  }
  return memo.at(root.get());
}

Status ValidatePlan(const OpPtr& root) {
  return InferSchemas(root).status();
}

}  // namespace pathfinder::algebra

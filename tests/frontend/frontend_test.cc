#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/normalize.h"
#include "frontend/parser.h"

namespace pathfinder::frontend {
namespace {

// --- Lexer -----------------------------------------------------------

std::vector<Tok> LexAll(std::string_view s) {
  Lexer lex(s);
  std::vector<Tok> out;
  EXPECT_TRUE(lex.Advance().ok());
  while (lex.Cur().kind != Tok::kEof) {
    out.push_back(lex.Cur().kind);
    EXPECT_TRUE(lex.Advance().ok());
  }
  return out;
}

TEST(LexerTest, BasicTokens) {
  EXPECT_EQ(LexAll("$x := 1"),
            (std::vector<Tok>{Tok::kDollar, Tok::kName, Tok::kColonEq,
                              Tok::kInt}));
  EXPECT_EQ(LexAll("a//b"),
            (std::vector<Tok>{Tok::kName, Tok::kSlashSlash, Tok::kName}));
  EXPECT_EQ(LexAll("child::a"),
            (std::vector<Tok>{Tok::kName, Tok::kColonColon, Tok::kName}));
}

TEST(LexerTest, NumbersAndStrings) {
  Lexer lex("42 3.5 1e3 \"he\"\"llo\" 'wo''rld'");
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().kind, Tok::kInt);
  EXPECT_EQ(lex.Cur().ival, 42);
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().kind, Tok::kDbl);
  EXPECT_EQ(lex.Cur().dval, 3.5);
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().kind, Tok::kDbl);
  EXPECT_EQ(lex.Cur().dval, 1000.0);
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().kind, Tok::kStr);
  EXPECT_EQ(lex.Cur().text, "he\"llo");
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().text, "wo'rld");
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(LexAll("< <= > >= << >> = !="),
            (std::vector<Tok>{Tok::kLt, Tok::kLe, Tok::kGt, Tok::kGe,
                              Tok::kLtLt, Tok::kGtGt, Tok::kEq, Tok::kNe}));
}

TEST(LexerTest, DirectElemStartRequiresAdjacentName) {
  EXPECT_EQ(LexAll("<a"),
            (std::vector<Tok>{Tok::kDirectElemStart, Tok::kName}));
  EXPECT_EQ(LexAll("1 < 2"),
            (std::vector<Tok>{Tok::kInt, Tok::kLt, Tok::kInt}));
}

TEST(LexerTest, NestedComments) {
  EXPECT_EQ(LexAll("1 (: outer (: inner :) still :) 2"),
            (std::vector<Tok>{Tok::kInt, Tok::kInt}));
}

TEST(LexerTest, PrefixedNames) {
  Lexer lex("local:fun fs:ddo");
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().text, "local:fun");
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.Cur().text, "fs:ddo");
}

TEST(LexerTest, Errors) {
  Lexer lex("\"unterminated");
  EXPECT_FALSE(lex.Advance().ok());
  Lexer lex2("#");
  EXPECT_FALSE(lex2.Advance().ok());
}

// --- Parser ----------------------------------------------------------

ExprPtr Parse(const std::string& q) {
  auto mod = ParseQuery(q);
  EXPECT_TRUE(mod.ok()) << mod.status().ToString() << " for: " << q;
  return mod.ok() ? mod->body : nullptr;
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Parse("42")->kind, ExprKind::kIntLit);
  EXPECT_EQ(Parse("4.5")->kind, ExprKind::kDblLit);
  EXPECT_EQ(Parse("\"x\"")->kind, ExprKind::kStrLit);
  EXPECT_EQ(Parse("()")->kind, ExprKind::kEmpty);
}

TEST(ParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  ExprPtr e = Parse("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBinOp);
  EXPECT_EQ(e->op, BinOp::kAdd);
  EXPECT_EQ(e->children[1]->op, BinOp::kMul);
  // comparison binds looser than arithmetic
  ExprPtr c = Parse("1 + 1 = 2");
  EXPECT_EQ(c->op, BinOp::kGenEq);
  // and binds tighter than or
  ExprPtr b = Parse("1 or 2 and 3");
  EXPECT_EQ(b->op, BinOp::kOr);
  EXPECT_EQ(b->children[1]->op, BinOp::kAnd);
}

TEST(ParserTest, ValueVsGeneralComparison) {
  EXPECT_EQ(Parse("1 eq 2")->op, BinOp::kValEq);
  EXPECT_EQ(Parse("1 = 2")->op, BinOp::kGenEq);
  EXPECT_EQ(Parse("$a is $b")->op, BinOp::kIs);
  EXPECT_EQ(Parse("$a << $b")->op, BinOp::kBefore);
}

TEST(ParserTest, PathAbbreviations) {
  ExprPtr e = Parse("$v/a//b/@c/../text()");
  ASSERT_EQ(e->kind, ExprKind::kAxisStep);
  EXPECT_EQ(e->test.kind, StepTest::Kind::kText);
  ExprPtr up = e->children[0];
  EXPECT_EQ(up->axis, accel::Axis::kParent);
  ExprPtr attr = up->children[0];
  EXPECT_EQ(attr->axis, accel::Axis::kAttribute);
  EXPECT_EQ(attr->test.name, "c");
}

TEST(ParserTest, ExplicitAxes) {
  ExprPtr e = Parse("$v/ancestor-or-self::x");
  EXPECT_EQ(e->axis, accel::Axis::kAncestorOrSelf);
  e = Parse("$v/following-sibling::*");
  EXPECT_EQ(e->axis, accel::Axis::kFollowingSibling);
  EXPECT_EQ(e->test.kind, StepTest::Kind::kElement);
}

TEST(ParserTest, Predicates) {
  ExprPtr e = Parse("$v/item[3][@id = \"x\"]");
  ASSERT_EQ(e->preds.size(), 2u);
  EXPECT_EQ(e->preds[0]->kind, ExprKind::kIntLit);
  EXPECT_EQ(e->preds[1]->op, BinOp::kGenEq);
}

TEST(ParserTest, FlworFull) {
  ExprPtr e = Parse(
      "for $a at $i in (1,2), $b in (3,4) let $c := $a "
      "where $a < $b order by $c descending, $b return $a");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  ASSERT_EQ(e->clauses.size(), 3u);
  EXPECT_FALSE(e->clauses[0].is_let);
  EXPECT_EQ(e->clauses[0].pos_var, "i");
  EXPECT_TRUE(e->clauses[2].is_let);
  ASSERT_TRUE(e->where != nullptr);
  ASSERT_EQ(e->order_keys.size(), 2u);
  EXPECT_FALSE(e->order_keys[0].ascending);
  EXPECT_TRUE(e->order_keys[1].ascending);
}

TEST(ParserTest, IfTypeswitchQuantified) {
  EXPECT_EQ(Parse("if (1) then 2 else 3")->kind, ExprKind::kIf);
  ExprPtr ts = Parse(
      "typeswitch (5) case xs:integer return 1 "
      "case $e as element() return 2 default return 3");
  ASSERT_EQ(ts->kind, ExprKind::kTypeswitch);
  ASSERT_EQ(ts->cases.size(), 3u);
  EXPECT_EQ(ts->cases[1].var, "e");
  EXPECT_EQ(Parse("some $x in (1,2) satisfies $x = 2")->kind,
            ExprKind::kSome);
  EXPECT_EQ(Parse("every $x in (1,2) satisfies $x > 0")->kind,
            ExprKind::kEvery);
}

TEST(ParserTest, DirectConstructors) {
  ExprPtr e = Parse(R"(<a x="1" y="{ 1+1 }">text{ $v }<b/></a>)");
  ASSERT_EQ(e->kind, ExprKind::kElemConstr);
  // name, @x, @y, "text", $v, <b/>
  ASSERT_EQ(e->children.size(), 6u);
  EXPECT_EQ(e->children[0]->sval, "a");
  EXPECT_EQ(e->children[1]->kind, ExprKind::kAttrConstr);
  EXPECT_EQ(e->children[2]->kind, ExprKind::kAttrConstr);
  EXPECT_EQ(e->children[2]->children[0]->op, BinOp::kAdd);
  EXPECT_EQ(e->children[3]->kind, ExprKind::kStrLit);
  EXPECT_EQ(e->children[3]->sval, "text");
  EXPECT_EQ(e->children[4]->kind, ExprKind::kVar);
  EXPECT_EQ(e->children[5]->kind, ExprKind::kElemConstr);
}

TEST(ParserTest, DirectConstructorEscapes) {
  ExprPtr e = Parse(R"(<a>{{literal}} &amp; more</a>)");
  ASSERT_EQ(e->children.size(), 2u);
  EXPECT_EQ(e->children[1]->sval, "{literal} & more");
}

TEST(ParserTest, ComputedConstructors) {
  ExprPtr e = Parse("element foo { 1, 2 }");
  ASSERT_EQ(e->kind, ExprKind::kElemConstr);
  EXPECT_EQ(e->children[0]->sval, "foo");
  ExprPtr t = Parse("text { \"x\" }");
  EXPECT_EQ(t->kind, ExprKind::kTextConstr);
  ExprPtr dyn = Parse("element { \"nm\" } { () }");
  EXPECT_EQ(dyn->children[0]->kind, ExprKind::kStrLit);
}

TEST(ParserTest, FunctionDeclarations) {
  auto mod = ParseQuery(
      "declare function local:f($a, $b as xs:integer) as xs:integer "
      "{ $a + $b }; local:f(1, 2)");
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  ASSERT_EQ(mod->functions.size(), 1u);
  EXPECT_EQ(mod->functions[0].name, "local:f");
  EXPECT_EQ(mod->functions[0].params,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(mod->body->kind, ExprKind::kFunCall);
}

TEST(ParserTest, FnPrefixStripped) {
  EXPECT_EQ(Parse("fn:count(())")->sval, "count");
  EXPECT_EQ(Parse("count(())")->sval, "count");
}

TEST(ParserTest, UnionOperator) {
  ExprPtr e = Parse("$a/x | $a/y");
  EXPECT_EQ(e->op, BinOp::kUnion);
}

TEST(ParserTest, ParseErrors) {
  EXPECT_FALSE(ParseQuery("for $x in").ok());
  EXPECT_FALSE(ParseQuery("1 +").ok());
  EXPECT_FALSE(ParseQuery("<a>").ok());
  EXPECT_FALSE(ParseQuery("<a></b>").ok());
  EXPECT_FALSE(ParseQuery("if (1) then 2").ok());
  EXPECT_FALSE(ParseQuery("$").ok());
  EXPECT_FALSE(ParseQuery("1 2").ok());
  EXPECT_FALSE(ParseQuery("typeswitch (1) case xs:integer return 1").ok());
}

// --- Normalizer ------------------------------------------------------

ExprPtr Norm(const std::string& q, const std::string& ctx_doc = "") {
  auto mod = ParseQuery(q);
  EXPECT_TRUE(mod.ok()) << mod.status().ToString();
  NormalizeOptions opts;
  opts.context_doc = ctx_doc;
  auto core = Normalize(*mod, opts);
  EXPECT_TRUE(core.ok()) << core.status().ToString() << " for: " << q;
  return core.ok() ? *core : nullptr;
}

void CheckCoreInvariants(const ExprPtr& e) {
  ASSERT_TRUE(e != nullptr);
  // Core must not contain surface-only constructs.
  EXPECT_NE(e->kind, ExprKind::kContextItem);
  EXPECT_NE(e->kind, ExprKind::kRootCtx);
  EXPECT_NE(e->kind, ExprKind::kSome);
  EXPECT_NE(e->kind, ExprKind::kEvery);
  EXPECT_TRUE(e->preds.empty());
  if (e->kind == ExprKind::kAxisStep) {
    EXPECT_EQ(e->children[0]->kind, ExprKind::kVar);
  }
  if (e->kind == ExprKind::kBinOp) {
    EXPECT_NE(e->op, BinOp::kUnion);
  }
  for (const auto& c : e->children) CheckCoreInvariants(c);
  for (const auto& cl : e->clauses) CheckCoreInvariants(cl.expr);
  if (e->where) CheckCoreInvariants(e->where);
  for (const auto& k : e->order_keys) CheckCoreInvariants(k.key);
  for (const auto& tc : e->cases) CheckCoreInvariants(tc.body);
}

TEST(NormalizeTest, CoreInvariantsHold) {
  const char* queries[] = {
      "for $x in (1,2)[position() = 1] return $x + 1",
      "doc(\"d\")/a/b[2]/c[@id = \"k\"]",
      "some $x in (1,2) satisfies $x = 1",
      "($a1, $a2)[last()]",
      "//x | //y",
      "declare function local:f($v) { $v + 1 }; local:f(2)",
  };
  for (const char* q : queries) {
    std::string query(q);
    // Provide $a1/$a2 bindings via a wrapping flwor where needed.
    if (query.find("$a1") != std::string::npos) {
      query = "for $a1 in 1, $a2 in 2 return " + query;
    }
    SCOPED_TRACE(query);
    CheckCoreInvariants(Norm(query, "ctx.xml"));
  }
}

TEST(NormalizeTest, VariablesAlphaRenamed) {
  ExprPtr e = Norm("for $x in (1,2) return for $x in (3,4) return $x");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  const std::string outer = e->clauses[0].var;
  ExprPtr inner = e->children[0];
  ASSERT_EQ(inner->kind, ExprKind::kFlwor);
  const std::string shadow = inner->clauses[0].var;
  EXPECT_NE(outer, shadow);
  EXPECT_EQ(inner->children[0]->sval, shadow);  // $x refers to inner
}

TEST(NormalizeTest, UndefinedVariableRejected) {
  auto mod = ParseQuery("$nope");
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(Normalize(*mod, {}).ok());
}

TEST(NormalizeTest, RecursiveFunctionRejected) {
  auto mod = ParseQuery(
      "declare function local:f($n) { local:f($n) }; local:f(1)");
  ASSERT_TRUE(mod.ok());
  auto core = Normalize(*mod, {});
  ASSERT_FALSE(core.ok());
  EXPECT_EQ(core.status().code(), StatusCode::kNotSupported);
}

TEST(NormalizeTest, UnknownFunctionRejected) {
  auto mod = ParseQuery("mystery(1)");
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(Normalize(*mod, {}).ok());
}

TEST(NormalizeTest, AbsolutePathNeedsContext) {
  auto mod = ParseQuery("/a");
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(Normalize(*mod, {}).ok());
  NormalizeOptions opts;
  opts.context_doc = "d.xml";
  EXPECT_TRUE(Normalize(*mod, opts).ok());
}

TEST(NormalizeTest, PositionOutsidePredicateRejected) {
  auto mod = ParseQuery("position()");
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(Normalize(*mod, {}).ok());
}

TEST(NormalizeTest, SlashSlashBecomesDescendant) {
  // //item with no predicates must normalize to a descendant step, not
  // desc-or-self::node()/child::item.
  ExprPtr e = Norm("//item", "d.xml");
  // shape: Ddo(Flwor(for $dot in doc(...) return descendant::item($dot)))
  ASSERT_EQ(e->kind, ExprKind::kDdo);
  ExprPtr fl = e->children[0];
  ASSERT_EQ(fl->kind, ExprKind::kFlwor);
  ExprPtr step = fl->children[0];
  ASSERT_EQ(step->kind, ExprKind::kAxisStep);
  EXPECT_EQ(step->axis, accel::Axis::kDescendant);
  EXPECT_EQ(step->test.name, "item");
}

TEST(NormalizeTest, BuiltinArityChecked) {
  auto mod = ParseQuery("count(1, 2)");
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(Normalize(*mod, {}).ok());
}

TEST(NormalizeTest, IsBuiltinFunction) {
  EXPECT_TRUE(IsBuiltinFunction("count", 1));
  EXPECT_FALSE(IsBuiltinFunction("count", 2));
  EXPECT_TRUE(IsBuiltinFunction("concat", 3));
  EXPECT_FALSE(IsBuiltinFunction("no-such-fn", 1));
}

}  // namespace
}  // namespace pathfinder::frontend

#include <gtest/gtest.h>

#include "api/pathfinder.h"
#include "engine/node_build.h"
#include "runtime/serialize.h"
#include "xml/database.h"

namespace pathfinder::runtime {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.LoadXml("d.xml", "<r><a k=\"v\">hi</a><b/></r>").ok());
    ctx_ = std::make_unique<engine::QueryContext>(&db_);
  }

  Item Str(const char* s) { return Item::Str(db_.pool()->Intern(s)); }

  xml::Database db_;
  std::unique_ptr<engine::QueryContext> ctx_;
};

TEST_F(SerializeTest, AtomicsJoinWithSpaces) {
  std::vector<Item> items = {Item::Int(1), Item::Dbl(2.5), Str("x"),
                             Item::Bool(true)};
  EXPECT_EQ(*SerializeSequence(*ctx_, items), "1 2.5 x true");
}

TEST_F(SerializeTest, NodesSerializeAsXml) {
  std::vector<Item> items = {Item::Node(0, 2)};  // <a k="v">hi</a>
  EXPECT_EQ(*SerializeSequence(*ctx_, items), "<a k=\"v\">hi</a>");
}

TEST_F(SerializeTest, NoSpaceAroundNodes) {
  std::vector<Item> items = {Item::Int(1), Item::Node(0, 5),
                             Item::Int(2)};  // <b/>
  EXPECT_EQ(*SerializeSequence(*ctx_, items), "1<b/>2");
}

TEST_F(SerializeTest, AttributeItemsUseDiagnosticForm) {
  std::vector<Item> items = {Item::Attr(0, 3)};  // k="v"
  EXPECT_EQ(*SerializeSequence(*ctx_, items), "k=\"v\"");
}

TEST_F(SerializeTest, ConstructedFragmentsSerialize) {
  Item text = engine::BuildText(ctx_.get(), "payload");
  Item attr = engine::BuildAttribute(ctx_.get(), "n", "1");
  Item elem =
      engine::BuildElement(ctx_.get(), "e", {attr, text, Item::Int(7)})
          .value();
  EXPECT_EQ(*SerializeItem(*ctx_, elem), "<e n=\"1\">payload7</e>");
}

TEST_F(SerializeTest, EmptySequenceIsEmptyString) {
  EXPECT_EQ(*SerializeSequence(*ctx_, {}), "");
}

TEST_F(SerializeTest, TableToSequenceExtractsItems) {
  bat::Table t;
  auto iter = bat::Column::MakeInt();
  iter->ints() = {1, 1};
  auto pos = bat::Column::MakeInt();
  pos->ints() = {1, 2};
  auto item = bat::Column::MakeItem();
  item->items() = {Item::Int(10), Item::Int(20)};
  t.AddCol("iter", iter);
  t.AddCol("pos", pos);
  t.AddCol("item", item);
  auto seq = TableToSequence(t);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq->size(), 2u);
  EXPECT_EQ((*seq)[0].AsInt(), 10);
}

TEST_F(SerializeTest, QueryResultKeepsFragmentsAlive) {
  // Constructed nodes in the result must stay valid after Run returns
  // (the ctx travels inside QueryResult).
  Pathfinder pf(&db_);
  QueryOptions o;
  o.context_doc = "d.xml";
  auto r = pf.Run("<wrap>{ //a/text() }</wrap>", o);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->items.size(), 1u);
  EXPECT_EQ(*r->Serialize(), "<wrap>hi</wrap>");
  EXPECT_GE(r->ctx->num_constructed(), 1u);
}

}  // namespace
}  // namespace pathfinder::runtime

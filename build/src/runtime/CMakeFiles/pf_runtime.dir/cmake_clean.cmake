file(REMOVE_RECURSE
  "CMakeFiles/pf_runtime.dir/serialize.cc.o"
  "CMakeFiles/pf_runtime.dir/serialize.cc.o.d"
  "libpf_runtime.a"
  "libpf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "xml/tree_builder.h"

#include <cassert>

namespace pathfinder::xml {

TreeBuilder::TreeBuilder(StringPool* pool) : pool_(pool) {
  // Pre 0 is always the document node.
  Emit(NodeKind::kDoc, 0, 0);
  stack_.push_back(0);
}

Pre TreeBuilder::Emit(NodeKind kind, StrId prop, StrId value) {
  Pre pre = static_cast<Pre>(doc_.size_.size());
  doc_.size_.push_back(0);
  // stack_ holds the doc node plus all open elements, so the level of a
  // newly emitted node (a child of the innermost open node) is exactly
  // stack_.size(); the doc node itself is emitted before stack_ is seeded.
  doc_.level_.push_back(static_cast<uint16_t>(stack_.size()));
  doc_.kind_.push_back(static_cast<uint8_t>(kind));
  doc_.prop_.push_back(prop);
  doc_.value_.push_back(value);
  return pre;
}

void TreeBuilder::StartElem(std::string_view tag) {
  Pre pre = Emit(NodeKind::kElem, pool_->Intern(tag), 0);
  stack_.push_back(pre);
  in_start_tag_ = true;
}

void TreeBuilder::Attr(std::string_view name, std::string_view value) {
  assert(in_start_tag_ && "Attr outside a start tag");
  Emit(NodeKind::kAttr, pool_->Intern(name), pool_->Intern(value));
}

void TreeBuilder::Text(std::string_view content) {
  in_start_tag_ = false;
  // Empty text nodes are legal (XQuery text {} constructors build them);
  // parsers avoid emitting them by not calling Text for empty runs.
  Emit(NodeKind::kText, 0, pool_->Intern(content));
}

void TreeBuilder::Comment(std::string_view content) {
  in_start_tag_ = false;
  Emit(NodeKind::kComment, 0, pool_->Intern(content));
}

void TreeBuilder::Pi(std::string_view target, std::string_view content) {
  in_start_tag_ = false;
  Emit(NodeKind::kPi, pool_->Intern(target), pool_->Intern(content));
}

void TreeBuilder::EndElem() {
  assert(stack_.size() > 1 && "EndElem without open element");
  Pre open = stack_.back();
  stack_.pop_back();
  doc_.size_[open] = static_cast<Pre>(doc_.size_.size()) - open - 1;
  in_start_tag_ = false;
}

Result<Document> TreeBuilder::Finish() && {
  if (stack_.size() != 1) {
    return Status::InvalidArgument("unclosed elements at end of document");
  }
  if (doc_.size_.size() < 2) {
    return Status::InvalidArgument("document has no content");
  }
  doc_.size_[0] = static_cast<Pre>(doc_.size_.size()) - 1;
  return std::move(doc_);
}

}  // namespace pathfinder::xml

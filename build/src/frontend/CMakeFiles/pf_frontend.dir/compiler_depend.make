# Empty compiler generated dependencies file for pf_frontend.
# This may be replaced when dependencies are built.

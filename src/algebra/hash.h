#ifndef PATHFINDER_ALGEBRA_HASH_H_
#define PATHFINDER_ALGEBRA_HASH_H_

#include <cstdint>
#include <unordered_map>

#include "algebra/op.h"

namespace pathfinder::algebra {

/// Structural hashing and equality over algebra plan DAGs.
///
/// Two subtrees hash (and compare) equal exactly when they denote the
/// same computation: same operator kinds, same parameters, same child
/// structure. Node identity (`Op::id`, pointers) and execution
/// annotations (`pipe_frag`, cache marks) never participate, so the
/// hash of a subtree is stable across plans, queries and rebuilds of
/// the same query — it can key cross-query caches.
///
/// Canonical ordering folds parameter orderings that provably cannot
/// change the operator's result:
///  * commutative Fun2 operators (+, *, eq, ne, and, or) treat
///    (col, col2) as an unordered pair,
///  * Distinct / Difference key lists are compared as sets,
///  * RowNum partition key lists are compared as sets (grouping is
///    order-insensitive; *order* keys stay ordered).
/// Constant cells (LitTable rows, Attach values) compare by Item
/// representation equality — exact bits, so e.g. 1 and 1.0 stay
/// distinct.

/// Hash of one node's local parameters (children excluded).
uint64_t LocalParamsHash(const Op& op);

/// Equality of two nodes' local parameters under canonical ordering.
bool LocalParamsEqual(const Op& a, const Op& b);

/// Combine a node's local hash with its children's subtree hashes.
uint64_t CombineChildHash(uint64_t h, uint64_t child_hash);

/// Subtree hash of every node under `root` (children-before-parents;
/// shared nodes hashed once).
void StructuralHashes(const OpPtr& root,
                      std::unordered_map<const Op*, uint64_t>* out);

/// Subtree hash of `root` alone.
uint64_t StructuralHash(const OpPtr& root);

/// Deep structural equality of two subtrees. DAG-aware: already-proven
/// pairs are memoized, so comparing heavily shared plans stays linear.
bool StructurallyEqual(const Op& a, const Op& b);

/// Rough retained-bytes estimate of the DAG under `root` (node structs
/// plus string/vector payloads) for cache budget accounting.
size_t ApproxPlanBytes(const OpPtr& root);

}  // namespace pathfinder::algebra

#endif  // PATHFINDER_ALGEBRA_HASH_H_

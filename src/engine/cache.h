#ifndef PATHFINDER_ENGINE_CACHE_H_
#define PATHFINDER_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/op.h"
#include "base/string_pool.h"
#include "bat/table.h"
#include "compiler/compile.h"
#include "frontend/ast.h"
#include "opt/optimize.h"
#include "opt/pipeline.h"
#include "xml/database.h"

namespace pathfinder::engine {

/// Counters of one cache section (exposed in profiler text/JSON).
/// `entries`/`bytes` describe current residency and are maintained by
/// every mutation path (insert, eviction, invalidation, clear), so a
/// snapshot taken anywhere is consistent — never negative, never stale.
struct CacheSectionStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;  ///< budget-pressure evictions only
  int64_t entries = 0;    ///< resident entries
  int64_t bytes = 0;      ///< resident bytes
};

/// Cost/size of one resident subplan entry (MRU-first in snapshots).
struct SubplanEntryCost {
  uint64_t hash = 0;
  int64_t bytes = 0;
  int64_t cost_us = 0;  ///< measured evaluation wall time of the subtree
};

struct CacheStats {
  CacheSectionStats plan;
  CacheSectionStats subplan;
  /// Generation-change events processed by BeginQuery (each one may
  /// drop any number of entries — see per_doc_invalidations).
  int64_t invalidations = 0;
  /// Entries dropped because a document they depend on was
  /// (re)registered. Entries for untouched documents survive.
  int64_t per_doc_invalidations = 0;
  /// Subplan candidates refused by the cost-based admission floor.
  int64_t admission_rejects = 0;
  /// Subplan entries *repaired* across a content-only document update
  /// instead of evicted: the entry was value-free (its result depends
  /// on document structure only), so its cached node items were
  /// re-pointed at the updated snapshot's fragment id.
  int64_t subplan_repairs = 0;
  int64_t budget_bytes = 0;
  int64_t min_cost_us = 0;
  /// Per-entry cost/size of the resident subplan section, MRU-first
  /// (cost-density eviction is decided from exactly these numbers).
  std::vector<SubplanEntryCost> subplan_entries;
};

/// Everything the api layer needs to skip the frontend/compile/optimize
/// pipeline on a repeated query. `plan_opt` is fully annotated
/// (pipelines + cache candidates) and is executed as-is — cached plans
/// are never re-annotated, so concurrent executions of the same entry
/// cannot race on plan-node annotation fields.
struct PlanCacheEntry {
  frontend::ExprPtr core;
  algebra::OpPtr plan;      ///< compiled, pre-optimization
  algebra::OpPtr plan_opt;  ///< optimized + pipeline/cache annotated
  compiler::CompileStats compile_stats;
  opt::OptimizeStats opt_stats;
  opt::PipelineStats pipeline_stats;
  size_t bytes = 0;
  /// Every map key aliasing this entry ("r:"-prefixed raw query texts
  /// plus the one "c:" canonical-core key) — erased together on evict.
  std::vector<std::string> keys;
  /// Documents the plan may read (root annotation of `plan_opt`, see
  /// AnnotateCacheCandidates). The entry is dropped when any of them
  /// is re-registered; `doc_deps_unknown` entries drop on any change.
  std::vector<std::string> doc_deps;
  bool doc_deps_unknown = false;
};

using PlanEntryPtr = std::shared_ptr<const PlanCacheEntry>;

/// Cross-query cache: optimized plans keyed by query text, and
/// materialized subplan results keyed by structural plan hash.
///
/// One instance lives inside api::Pathfinder and is shared by every
/// query it runs; all methods are thread-safe (single internal mutex —
/// the guarded work is map lookups and shallow Table copies, never
/// operator evaluation). Byte budget: the plan section may use at most
/// a quarter of the total, the subplan section the rest.
///
/// Eviction: the plan section is plain LRU. The subplan section evicts
/// by lowest cost density first (measured evaluation nanoseconds per
/// resident byte; ties fall back to least recently used), so cheap
/// scans cannot displace expensive join results; admission additionally
/// requires an entry's measured cost to clear `min_cost_us` (the
/// PF_CACHE_MIN_COST_US floor, 0 = admit everything).
///
/// Invalidation is per document: BeginQuery diffs the store's per-name
/// registration versions against the last ones it saw and drops exactly
/// the entries whose dependency set intersects the changed names (plus
/// entries with unresolvable dependencies). Entries over untouched
/// documents stay warm across registrations.
class QueryCache {
 public:
  explicit QueryCache(size_t budget_bytes);
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Sync with the store: on a generation change, drop the entries
  /// whose document dependencies intersect the names whose version
  /// changed since the last sync (new, re-registered, removed, or
  /// structurally updated). Names that took only a *content* move
  /// (leaf replace-value; pre ranks bit-identical) are handled more
  /// gently when `repair` is true: plan entries survive untouched, and
  /// value-free subplan entries are repaired in place by re-pointing
  /// their cached node items from the name's old fragment id to the new
  /// one — only value-reading subplans drop. With `repair` false a
  /// content move invalidates like a structural one.
  /// Call once per query, before any lookup, with a fresh
  /// Database::Versions() snapshot (`doc_versions` = its `docs`).
  void BeginQuery(uint64_t db_generation,
                  const std::vector<xml::Database::DocVersion>& doc_versions,
                  bool repair);

  /// Plan lookup by exact ("r:" raw) or canonical ("c:" core) key.
  /// nullptr on miss. A raw-key miss followed by a core-key hit should
  /// be repaired with AliasPlan so the next lookup hits tier 1.
  PlanEntryPtr LookupPlan(const std::string& key);

  /// Register an extra key for an existing entry (tier-2 repair).
  void AliasPlan(const std::string& key, const PlanEntryPtr& entry);

  /// Insert a freshly built plan under both its keys. If a concurrent
  /// query inserted the same raw key first, the resident entry wins and
  /// is returned (insert-if-absent).
  PlanEntryPtr InsertPlan(const std::string& raw_key,
                          const std::string& core_key, PlanCacheEntry entry);

  /// Materialized result of a cache-candidate subtree (`op.cache_hash`
  /// must be set). On hit, `out` receives a shallow copy (columns are
  /// shared and immutable). Counts a hit or miss.
  bool LookupSubplan(const algebra::Op& op, bat::Table* out);

  /// Store a candidate's materialized result; `cost_ns` is the measured
  /// wall time evaluating the subtree (the admission currency).
  /// `subtree` keeps the plan nodes alive for the deep
  /// structural-equality check on later lookups and carries the
  /// document dependencies (Op::cache_docs). `db_generation` must be
  /// the generation the inserting query synced at (BeginQuery): if the
  /// store moved on since, the result may be stale and the insert is a
  /// silent no-op — this closes the race where a slow query publishes
  /// a pre-registration result after the invalidation sweep ran.
  /// Returns false iff the entry was refused by the cost floor;
  /// duplicates, stale generations and entries that could never fit
  /// are silent no-ops returning true.
  bool InsertSubplan(const algebra::OpPtr& subtree, const bat::Table& t,
                     int64_t cost_ns, uint64_t db_generation);

  CacheStats Stats() const;
  void Clear();

  void SetBudget(size_t bytes);
  size_t budget() const;

  /// Admission floor for the subplan section, in microseconds of
  /// measured evaluation time. 0 admits every candidate.
  void SetMinCostUs(int64_t us);
  int64_t min_cost_us() const;

  /// Sorted multimap keys of the resident plan section (aliases
  /// included) — the model-checking test's residency oracle; does not
  /// touch hit/miss counters or recency.
  std::vector<std::string> ResidentPlanKeysForTest() const;

 private:
  struct SubEntry {
    uint64_t hash = 0;
    algebra::OpPtr subtree;
    bat::Table table;
    size_t bytes = 0;
    int64_t cost_ns = 0;
    // Document dependencies, copied from the subtree root's annotation
    // at insert (the shared plan may be evicted later; the entry's
    // invalidation must not depend on it).
    std::vector<std::string> docs;
    bool docs_unknown = false;
    // Copied from Op::cache_value_free: the result is a function of
    // document structure only, so the entry survives content-only
    // updates via fragment-id repair (see BeginQuery).
    bool value_free = false;
  };

  using PlanLru = std::list<PlanEntryPtr>;
  using SubLru = std::list<SubEntry>;

  size_t PlanBudgetLocked() const { return budget_ / 4; }
  size_t SubBudgetLocked() const { return budget_ - budget_ / 4; }
  void EvictPlanLocked(size_t needed);
  void EvictSubLocked(size_t needed);
  void EraseSubLocked(SubLru::iterator it);
  void InvalidateDocsLocked(
      const std::vector<xml::Database::DocVersion>& doc_versions, bool repair);
  void ClearLocked();

  mutable std::mutex mu_;
  size_t budget_;
  int64_t min_cost_ns_;
  uint64_t generation_ = 0;
  bool generation_seen_ = false;
  /// Per-name structure/content versions and the bound fragment id as
  /// of the last BeginQuery sync (the frag is the repair source: every
  /// resident entry's node items reference it, by the InsertSubplan
  /// stale-generation guard).
  struct DocSync {
    uint64_t structure = 0;
    uint64_t content = 0;
    xml::FragId frag = 0;
  };
  std::unordered_map<std::string, DocSync> doc_versions_;

  PlanLru plan_lru_;  // front = most recent
  std::unordered_map<std::string, PlanLru::iterator> plan_map_;

  SubLru sub_lru_;  // front = most recent
  std::unordered_map<uint64_t, std::vector<SubLru::iterator>> sub_map_;

  CacheStats stats_;
};

/// Mark the subtrees of `root` whose materialized results the executor
/// may exchange with a QueryCache: pure (constructor-free) subtrees
/// that touch a document (contain a Step or DocRoot) and are maximal —
/// their parent is impure or absent — plus every pure Step node (axis
/// steps are the expensive, highly reusable building block, worth
/// caching even mid-chain). Sets Op::cache_cand / Op::cache_hash, and
/// records each candidate's (and the root's) document dependencies in
/// Op::cache_docs / Op::cache_docs_unknown — fn:doc name constants are
/// resolved through `pool`. Also computes Op::cache_value_free
/// bottom-up: true iff no operator in the subtree can read a node's
/// *value* (atomization/string functions, aggregates, theta-join
/// compares, serialization), making the cached result repairable across
/// content-only updates. Call only on freshly built plans (never on
/// plans already published to the cache — annotation would race with
/// concurrent executors).
void AnnotateCacheCandidates(const algebra::OpPtr& root,
                             const StringPool& pool);

/// Process-wide default cache budget: PF_CACHE_MB megabytes (read
/// once); unset = 64 MB, "0" = caching off.
size_t CacheDefaultBudgetBytes();

/// Process-wide default admission floor: PF_CACHE_MIN_COST_US
/// microseconds (read once); unset = 100, "0" = admit everything.
int64_t CacheDefaultMinCostUs();

/// Process-wide default for repairing value-free subplan entries across
/// content-only document updates: PF_CACHE_REPAIR (read once); on
/// unless "0".
bool CacheRepairDefault();

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_CACHE_H_

#ifndef PATHFINDER_API_PATHFINDER_H_
#define PATHFINDER_API_PATHFINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "accel/step.h"
#include "algebra/op.h"
#include "base/result.h"
#include "compiler/compile.h"
#include "engine/cache.h"
#include "engine/query_context.h"
#include "frontend/ast.h"
#include "opt/optimize.h"
#include "opt/pipeline.h"
#include "xml/database.h"

namespace pathfinder {

/// Per-query knobs (defaults reproduce the paper's configuration).
struct QueryOptions {
  /// Document a leading "/" refers to (fn:doc(...) otherwise).
  std::string context_doc;
  /// Compiler join recognition (ablation E7).
  bool join_recognition = true;
  /// Peephole plan optimization (E5).
  bool optimize = true;
  /// Staircase join vs naive region selection for steps (ablation E6).
  bool use_staircase = true;
  /// Worker threads for morsel-parallel operator evaluation. 0 = the
  /// process default (PF_THREADS env var, else hardware concurrency);
  /// 1 = the exact serial code paths. Results are identical at every
  /// setting.
  int num_threads = 0;
  /// Pipelined execution: fuse chains of row-local operators (σ, π,
  /// attach, ~ maps, join probes) into single morsel-driven passes so
  /// intermediate BATs are never materialized. -1 = the process
  /// default (PF_PIPELINE env var; on unless set to "0"), 0 = off
  /// (materialize every operator), 1 = on. Results are identical
  /// either way.
  int pipeline = -1;
  /// Per-operator execution profiling: wall time, row/byte counts and
  /// morsel counts for every plan operator. -1 = the process default
  /// (PF_PROFILE env var; OFF unless set to a value other than "0"),
  /// 0 = off, 1 = on. When off, the executor performs no timer calls.
  int profile = -1;
  /// CSE/DAG-ification after the peephole passes (merges structurally
  /// identical subtrees into shared nodes). Only meaningful with
  /// `optimize`. -1 = the process default (PF_CSE env var; on unless
  /// "0"), 0 = off, 1 = on. Results are identical either way.
  int cse = -1;
  /// Join-graph pass after the peephole passes: stats-backed removal of
  /// redundant distincts, join-cluster isolation, select pushdown and
  /// cost-based join reordering driven by shred-time document
  /// statistics. Only meaningful with `optimize`. -1 = the process
  /// default (PF_JOINOPT env var; on unless "0"), 0 = off, 1 = on.
  /// Results are byte-identical either way (reordered clusters restore
  /// the original row order through rank columns).
  int join_opt = -1;
  /// Path-summary consumption: collapse purely structural step chains
  /// into summary-answered kPathScan operators (with `optimize`),
  /// prune staircase-join scans to the matching tag partitions, and
  /// use exact path-level selectivities in the cost model. -1 = the
  /// process default (PF_PATHSUM env var; on unless "0"), 0 = off,
  /// 1 = on. Results are byte-identical either way.
  int path_summary = -1;
  /// Cross-query plan cache: repeated query texts (or texts normalizing
  /// to the same Core) skip parse/normalize/compile/optimize and reuse
  /// the annotated plan. -1 = on whenever the cache budget is nonzero
  /// (PF_CACHE_MB, default 64 MB; "0" disables), 0 = off, 1 = on
  /// (still requires a nonzero budget). Results are identical.
  int plan_cache = -1;
  /// Cross-query subplan-result cache: materialized results of pure
  /// document-derived subtrees (axis steps etc.) are reused across
  /// queries against the unchanged database. Same -1/0/1 convention and
  /// budget gate as `plan_cache`. Results are identical.
  int subplan_cache = -1;
  /// Incremental cache repair across content-only document updates
  /// (xml::ApplyUpdate leaf replace-value): plan entries survive, and
  /// value-free subplan entries are repaired in place instead of
  /// evicted (see engine::QueryCache::BeginQuery). -1 = the process
  /// default (PF_CACHE_REPAIR env var; on unless "0"), 0 = treat every
  /// update as structural (evict), 1 = on. Results are identical
  /// either way.
  int cache_repair = -1;
  /// Override the shared cache byte budget for this Pathfinder before
  /// running (-1 = leave as is; 0 = drop everything and disable).
  /// Evicts immediately if lowered.
  int64_t cache_budget_bytes = -1;
  /// Override the subplan-cache admission floor (microseconds of
  /// measured evaluation time a candidate must cost to be admitted).
  /// -1 = leave as is (process default: PF_CACHE_MIN_COST_US, unset =
  /// 100); 0 = admit every candidate.
  int64_t cache_min_cost_us = -1;
  /// Partitioned-kernel tuning. All three are RESULT-NEUTRAL speed
  /// knobs: partition counts and morsel grains only shift work between
  /// chunks whose merges are order-exact, so result bytes never depend
  /// on them. -1 = the process default (PF_RADIX_BITS /
  /// PF_MORSEL_ROWS / PF_SORT_CHUNK_ROWS env vars, see
  /// bat::KernelTuning).
  /// log2 of the radix-join / group-agg partition count, clamped to
  /// [1, 12].
  int radix_bits = -1;
  /// Morsel grain (rows) for filters, joins and fused pipeline
  /// fragments, clamped to [64, 2^20].
  int64_t morsel_rows = -1;
  /// Initial sorted-run length and merge-split grain of the parallel
  /// merge sort, clamped to [256, 2^22].
  int64_t sort_chunk_rows = -1;
  /// Wall-time budget for this query in milliseconds (-1 = none). The
  /// executor polls a deadline at its cooperative checkpoints (operator
  /// boundaries, fused morsels) and aborts with StatusCode::kTimeout /
  /// ErrorClass::kTimeout once it expires.
  int64_t timeout_ms = -1;
  /// Budget for materialized operator outputs in bytes (-1 = none).
  /// Exceeding it aborts with StatusCode::kResourceExhausted.
  int64_t mem_limit_bytes = -1;
  /// Externally owned cancellation token (nullptr = none). Fire
  /// token->Cancel() from any thread to abort the running query with
  /// StatusCode::kCancelled; a timeout_ms deadline is armed on this
  /// token when both are set. Must outlive the Run() call.
  engine::CancelToken* cancel_token = nullptr;
  /// Test seam: called at every executor operator checkpoint with the
  /// operator and the query's cancel token (see engine::OpProbe).
  /// Empty = no calls on the hot path.
  engine::OpProbe op_probe;
};

/// A completed query: the result sequence plus every intermediate stage
/// for inspection (the demo's "under the hood" hooks, paper Sec. 4).
struct QueryResult {
  std::vector<Item> items;

  frontend::ExprPtr core;        // normalized XQuery Core
  algebra::OpPtr plan;           // compiled plan (before optimization)
  algebra::OpPtr plan_opt;       // executed plan
  compiler::CompileStats compile_stats;
  opt::OptimizeStats opt_stats;
  accel::StaircaseStats scj_stats;
  opt::PipelineStats pipeline_stats;       // fragment annotation counters
  engine::PipelineExecStats pipe_stats;    // fused execution counters

  /// Per-operator execution profile (QueryOptions::profile / PF_PROFILE);
  /// null when profiling was off.
  engine::OperatorProfilePtr profile;

  /// Plan served from the cross-query plan cache (frontend + compiler +
  /// optimizer were skipped entirely).
  bool plan_cache_hit = false;
  /// Subplan-result cache traffic of this query alone.
  int64_t subplan_cache_hits = 0;
  int64_t subplan_cache_misses = 0;
  /// Candidate results this query offered the cache: admitted vs
  /// refused by the cost-based admission floor.
  int64_t subplan_cache_admitted = 0;
  int64_t subplan_cache_rejects = 0;
  /// Snapshot of the shared cache's cumulative counters, taken after
  /// this query (zero-valued when caching was off).
  engine::CacheStats cache_stats;

  /// Owns fragments constructed during evaluation; `items` referencing
  /// constructed nodes stay valid while this lives.
  std::unique_ptr<engine::QueryContext> ctx;

  /// Serialize the result sequence to XML/text.
  Result<std::string> Serialize() const;

  /// The executed plan with each operator's profile rendered inline,
  /// headed by optimizer and cache counter summary lines ("" when
  /// profiling was off).
  std::string ProfileText() const;

  /// The profile as one JSON object: {"opt_stats": {...}, "cache":
  /// {...}, "plan": <operator tree>} ("" when profiling was off).
  std::string ProfileJson() const;
};

/// Facade over the full stack: parse -> normalize -> loop-lift ->
/// optimize -> execute on the column store -> serialize.
class Pathfinder {
 public:
  explicit Pathfinder(xml::Database* db)
      : db_(db),
        cache_(std::make_shared<engine::QueryCache>(
            engine::CacheDefaultBudgetBytes())) {}

  /// Parse and normalize only (the demo's Core output).
  Result<frontend::ExprPtr> Translate(const std::string& query,
                                      const QueryOptions& opts = {}) const;

  /// Compile a normalized core expression to an (unoptimized) plan.
  Result<algebra::OpPtr> CompilePlan(const frontend::ExprPtr& core,
                                     const QueryOptions& opts = {},
                                     compiler::CompileStats* stats =
                                         nullptr) const;

  /// End-to-end evaluation.
  Result<QueryResult> Run(const std::string& query,
                          const QueryOptions& opts = {}) const;

  xml::Database* db() const { return db_; }

  /// The cross-query cache shared by every query this instance runs
  /// (inspect its Stats() in tests/benches; internally synchronized).
  engine::QueryCache* cache() const { return cache_.get(); }

 private:
  xml::Database* db_;
  std::shared_ptr<engine::QueryCache> cache_;
};

}  // namespace pathfinder

#endif  // PATHFINDER_API_PATHFINDER_H_

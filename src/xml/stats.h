#ifndef PATHFINDER_XML_STATS_H_
#define PATHFINDER_XML_STATS_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/string_pool.h"

namespace pathfinder::xml {

class Document;

/// Shred-time document statistics: tag/level histograms plus the
/// structural uniqueness facts the cost-based join optimizer needs
/// (cardinality estimation and key inference over loop-lifted plans).
///
/// Computed once per document inside Database::AddDocument, before the
/// document is published, and immutable afterwards — the optimizer
/// reads them wait-free through Document::stats(). All string-valued
/// dimensions are keyed by StrId surrogates of the shared StringPool,
/// so identical tags/values across documents share keys.
struct DocStats {
  uint64_t total_nodes = 0;

  /// Node counts per NodeKind (index by static_cast<size_t>).
  std::array<uint64_t, 6> kind_counts{};

  /// Nodes per tree level (index = level).
  std::vector<uint64_t> level_counts;

  struct TagStats {
    /// Elements carrying this tag.
    uint64_t count = 0;
    /// Sum of subtree sizes (size(v) + 1) over those elements — the
    /// staircase-join selectivity handle from the pre/size encoding.
    uint64_t subtree_nodes = 0;
    /// Max direct text-node children over those elements (1 means
    /// `child::text()` below this tag yields at most one node).
    uint32_t max_text_children = 0;
    /// Distinct direct text-child contents (value surrogates).
    uint64_t distinct_text_values = 0;
  };
  /// Per element-tag surrogate.
  std::unordered_map<StrId, TagStats> tags;

  struct AttrStats {
    /// Attribute nodes carrying this name.
    uint64_t count = 0;
    /// Distinct attribute values (value surrogates).
    uint64_t distinct_values = 0;
    /// Max attributes of this name on one owner element (1 for
    /// well-formed XML; measured, not assumed, so `attribute::name`
    /// uniqueness never depends on parser leniency).
    uint32_t max_per_owner = 0;
  };
  /// Per attribute-name surrogate.
  std::unordered_map<StrId, AttrStats> attrs;

  /// Max child-element fan-out per (parent tag, child tag): key
  /// EdgeKey(P, C) maps to the max number of C-tagged element children
  /// any single P-tagged parent (or the document node, P = kDocParent)
  /// has. A value of 1 proves `child::C` preserves per-context
  /// uniqueness under P.
  std::unordered_map<uint64_t, uint32_t> max_children;

  /// Pseudo parent-tag for the document node in max_children keys
  /// (element tags are pool surrogates and never equal this).
  static constexpr StrId kDocParent = 0xFFFFFFFFu;

  static uint64_t EdgeKey(StrId parent, StrId child) {
    return (static_cast<uint64_t>(parent) << 32) | child;
  }

  uint64_t TagCount(StrId tag) const {
    auto it = tags.find(tag);
    return it == tags.end() ? 0 : it->second.count;
  }
  uint64_t AttrCount(StrId name) const {
    auto it = attrs.find(name);
    return it == attrs.end() ? 0 : it->second.count;
  }

  /// Max C-children per parent over *all* parent tags (including the
  /// document node). 0 = tag absent, 1 = `child::C` is per-context
  /// unique everywhere in this document.
  uint32_t MaxChildrenAnyParent(StrId child_tag) const;

  /// Max direct text children any element of this document has.
  uint32_t MaxTextChildrenAnyTag() const;
};

/// One pass over the pre|size|level encoding (O(nodes), stack of open
/// elements driven by the level column).
DocStats ComputeDocStats(const Document& doc);

}  // namespace pathfinder::xml

#endif  // PATHFINDER_XML_STATS_H_

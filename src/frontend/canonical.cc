#include "frontend/canonical.h"

#include <cstdint>
#include <cstring>

namespace pathfinder::frontend {

namespace {

// Grammar (self-delimiting, so distinct trees cannot collide):
//   expr     := '(' kind fields { expr } ')' | '_'        ('_' = null)
//   string   := 's' LEN ':' BYTES
//   integers := decimal, doubles := hex of the IEEE bit pattern.
// Field order is fixed per kind-independent layout below.

void PutStr(const std::string& s, std::string* out) {
  *out += 's';
  *out += std::to_string(s.size());
  *out += ':';
  *out += s;
}

void PutDbl(double d, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  *out += buf;
}

void Put(const ExprPtr& e, std::string* out) {
  if (!e) {
    *out += '_';
    return;
  }
  *out += '(';
  *out += std::to_string(static_cast<int>(e->kind));
  *out += ' ';
  *out += std::to_string(e->ival);
  *out += ' ';
  PutDbl(e->dval, out);
  *out += ' ';
  PutStr(e->sval, out);
  *out += ' ';
  *out += std::to_string(static_cast<int>(e->op));
  *out += ' ';
  *out += std::to_string(static_cast<int>(e->axis));
  *out += ' ';
  *out += std::to_string(static_cast<int>(e->test.kind));
  PutStr(e->test.name, out);
  *out += 'p';
  *out += std::to_string(e->preds.size());
  for (const auto& p : e->preds) Put(p, out);
  *out += 'c';
  *out += std::to_string(e->clauses.size());
  for (const auto& c : e->clauses) {
    *out += c.is_let ? 'L' : 'F';
    PutStr(c.var, out);
    PutStr(c.pos_var, out);
    Put(c.expr, out);
  }
  *out += 'w';
  Put(e->where, out);
  *out += 'o';
  *out += std::to_string(e->order_keys.size());
  for (const auto& k : e->order_keys) {
    *out += k.ascending ? 'a' : 'd';
    Put(k.key, out);
  }
  *out += 't';
  *out += std::to_string(e->cases.size());
  for (const auto& c : e->cases) {
    *out += std::to_string(static_cast<int>(c.type));
    PutStr(c.elem_name, out);
    PutStr(c.var, out);
    Put(c.body, out);
  }
  *out += 'k';
  *out += std::to_string(e->children.size());
  for (const auto& c : e->children) Put(c, out);
  *out += ')';
}

}  // namespace

std::string CanonicalCoreText(const ExprPtr& e) {
  std::string out;
  out.reserve(256);
  Put(e, &out);
  return out;
}

}  // namespace pathfinder::frontend

// Byte-identity and correctness suite for the partitioned parallel
// kernels: the radix hash join, the merge-path parallel sort and the
// partitioned GroupAgg combine must be invisible implementation
// details — every (thread count × tuning) combination has to produce
// the serial reference bytes, including the awkward inputs: empty
// sides, all-duplicate keys (one chain holds every build row) and
// Zipf/single-partition skew (one partition holds almost everything).
// The int-key join is additionally anchored against a naive
// nested-loop reference, so the serial path itself is checked against
// first principles, not just against yesterday's serial path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "bat/kernel.h"
#include "bat/table.h"

namespace pathfinder::bat {
namespace {

class PartitionedKernelsTest : public ::testing::Test {
 protected:
  // 1/2/4/7 worker threads; nullptr (the serial inline path) is the
  // reference every pool is compared against.
  std::vector<ThreadPool*> Pools() {
    return {&pool1_, &pool2_, &pool4_, &pool7_};
  }

  // Tunings swept on top of the thread counts. All must be
  // result-neutral: radix_bits=1 forces two fat partitions (skew
  // path), 12 forces 4096 mostly-empty ones, morsel_rows=64 maximizes
  // chunk-merge traffic, sort_chunk_rows=256 maximizes merge levels.
  std::vector<KernelTuning> Tunings() {
    std::vector<KernelTuning> ts(4);
    ts[1].radix_bits = 1;
    ts[2].radix_bits = 12;
    ts[2].morsel_rows = 64;
    ts[3].morsel_rows = 256;
    ts[3].sort_chunk_rows = 256;
    return ts;
  }

  ColumnPtr IntCol(const std::vector<int64_t>& v) {
    auto c = Column::MakeInt(v.size());
    for (int64_t x : v) c->ints().push_back(x);
    return c;
  }

  ColumnPtr RandInts(size_t n, int64_t lo, int64_t hi, uint64_t seed) {
    auto c = Column::MakeInt(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) c->ints().push_back(rng.Range(lo, hi));
    return c;
  }

  ColumnPtr ZipfInts(size_t n, uint64_t universe, double s, uint64_t seed) {
    auto c = Column::MakeInt(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      c->ints().push_back(static_cast<int64_t>(rng.Zipf(universe, s)));
    }
    return c;
  }

  ColumnPtr RandItems(size_t n, uint64_t seed) {
    auto c = Column::MakeItem(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Below(4)) {
        case 0:
          c->items().push_back(Item::Int(rng.Range(-40, 40)));
          break;
        case 1:
          c->items().push_back(Item::Dbl(rng.Range(-40, 40) * 0.5));
          break;
        case 2:
          c->items().push_back(
              Item::Str(pool_.Intern("s" + std::to_string(rng.Below(30)))));
          break;
        default:
          c->items().push_back(Item::Untyped(
              pool_.Intern(std::to_string(rng.Range(-40, 40)))));
          break;
      }
    }
    return c;
  }

  // First-principles reference: left-major nested loop over int keys.
  static void NaiveIntJoin(const Column& l, const Column& r, IdxVec* li,
                           IdxVec* ri) {
    for (size_t i = 0; i < l.ints().size(); ++i) {
      for (size_t j = 0; j < r.ints().size(); ++j) {
        if (l.ints()[i] == r.ints()[j]) {
          li->push_back(static_cast<RowIdx>(i));
          ri->push_back(static_cast<RowIdx>(j));
        }
      }
    }
  }

  void ExpectJoinMatchesSerial(const Column& l, const Column& r) {
    IdxVec sl, sr;
    ASSERT_TRUE(HashJoinIndices(l, r, pool_, &sl, &sr, nullptr).ok());
    for (ThreadPool* tp : Pools()) {
      for (const KernelTuning& kt : Tunings()) {
        IdxVec pl, pr;
        ASSERT_TRUE(HashJoinIndices(l, r, pool_, &pl, &pr, tp, kt).ok());
        EXPECT_EQ(pl, sl);
        EXPECT_EQ(pr, sr);
      }
    }
  }

  StringPool pool_;
  ThreadPool pool1_{1};
  ThreadPool pool2_{2};
  ThreadPool pool4_{4};
  ThreadPool pool7_{7};
};

TEST_F(PartitionedKernelsTest, RadixJoinMatchesNaiveReference) {
  // Sizes past the morsel threshold, so even the tp == nullptr call
  // below exercises the radix partition/build/probe phases — the
  // nested loop checks them against first principles.
  ColumnPtr l = RandInts(9000, 0, 400, 11);
  ColumnPtr r = RandInts(5000, 0, 400, 12);
  IdxVec nl_, nr_;
  NaiveIntJoin(*l, *r, &nl_, &nr_);
  ASSERT_GT(nl_.size(), 0u);
  IdxVec sl, sr;
  ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
  EXPECT_EQ(sl, nl_);
  EXPECT_EQ(sr, nr_);
  ExpectJoinMatchesSerial(*l, *r);
}

TEST_F(PartitionedKernelsTest, RadixJoinEmptyInputs) {
  ColumnPtr big = RandInts(20000, 0, 100, 21);
  ColumnPtr empty = IntCol({});
  for (auto [l, r] : {std::pair<Column*, Column*>{big.get(), empty.get()},
                      {empty.get(), big.get()},
                      {empty.get(), empty.get()}}) {
    IdxVec sl, sr;
    ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
    EXPECT_TRUE(sl.empty());
    EXPECT_TRUE(sr.empty());
    ExpectJoinMatchesSerial(*l, *r);
  }
}

TEST_F(PartitionedKernelsTest, RadixJoinAllDuplicateKeys) {
  // Every build row lands in ONE partition, ONE slot, ONE chain; each
  // probe hit replays the entire chain, whose order must be the
  // ascending build-row order. Sizes keep the pair count (n*m) sane
  // while still engaging the radix path on one side.
  {
    ColumnPtr l = IntCol(std::vector<int64_t>(8192, 7));
    ColumnPtr r = IntCol(std::vector<int64_t>(64, 7));
    IdxVec sl, sr;
    ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
    ASSERT_EQ(sl.size(), 8192u * 64u);
    // Left-major, right ascending within each left row.
    for (size_t k = 0; k < sl.size(); ++k) {
      ASSERT_EQ(sl[k], k / 64);
      ASSERT_EQ(sr[k], k % 64);
    }
    ExpectJoinMatchesSerial(*l, *r);
  }
  {
    // Large build side: one 8192-row chain probed by 64 rows.
    ColumnPtr l = IntCol(std::vector<int64_t>(64, 7));
    ColumnPtr r = IntCol(std::vector<int64_t>(8192, 7));
    IdxVec sl, sr;
    ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
    ASSERT_EQ(sl.size(), 64u * 8192u);
    for (size_t k = 0; k < sl.size(); ++k) {
      ASSERT_EQ(sl[k], k / 8192);
      ASSERT_EQ(sr[k], k % 8192);
    }
    ExpectJoinMatchesSerial(*l, *r);
  }
}

TEST_F(PartitionedKernelsTest, RadixJoinZipfSkew) {
  // Zipf keys: the hottest key (and with radix_bits=1 the hottest
  // partition) dominates — the imbalance path must stay byte-exact.
  ColumnPtr l = ZipfInts(9000, 2000, 1.1, 31);
  ColumnPtr r = ZipfInts(5000, 2000, 1.1, 32);
  ExpectJoinMatchesSerial(*l, *r);
}

TEST_F(PartitionedKernelsTest, RadixJoinStrAndItemKeys) {
  auto ls = Column::MakeStr(20000);
  auto rs = Column::MakeStr(9000);
  Rng rng(41);
  for (size_t i = 0; i < 20000; ++i) {
    ls->strs().push_back(static_cast<StrId>(rng.Below(250)));
  }
  for (size_t i = 0; i < 9000; ++i) {
    rs->strs().push_back(static_cast<StrId>(rng.Below(250)));
  }
  ExpectJoinMatchesSerial(*ls, *rs);
  ColumnPtr li = RandItems(20000, 42);
  ColumnPtr ri = RandItems(9000, 43);
  // Item keys canonicalize before hashing (ints join doubles, untyped
  // atomics their parsed value) — the radix path must preserve that.
  IdxVec sl, sr;
  ASSERT_TRUE(HashJoinIndices(*li, *ri, pool_, &sl, &sr, nullptr).ok());
  EXPECT_GT(sl.size(), 0u);
  ExpectJoinMatchesSerial(*li, *ri);
}

TEST_F(PartitionedKernelsTest, JoinPhaseTimingsFill) {
  ColumnPtr l = RandInts(60000, 0, 3000, 51);
  ColumnPtr r = RandInts(40000, 0, 3000, 52);
  KernelPhases ph;
  IdxVec li, ri;
  ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &li, &ri, &pool2_,
                              KernelTuning::Default(), &ph)
                  .ok());
  EXPECT_GT(ph.partition_ns + ph.build_ns + ph.probe_ns, 0);
  EXPECT_GE(ph.partition_ns, 0);
  EXPECT_GE(ph.build_ns, 0);
  EXPECT_GE(ph.probe_ns, 0);
  // Passing a phases sink must not change the result.
  IdxVec li2, ri2;
  ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &li2, &ri2, &pool2_).ok());
  EXPECT_EQ(li, li2);
  EXPECT_EQ(ri, ri2);
}

TEST_F(PartitionedKernelsTest, MergeSortMatchesSerialStableSort) {
  // Few distinct keys => long tie runs; the merge-path splits must
  // take ties from the lower run exactly like std::merge, or the
  // stable permutation breaks.
  Table t;
  t.AddCol("k", RandInts(60000, 0, 25, 61));
  t.AddCol("k2", RandItems(60000, 62));
  for (auto [keys, desc] :
       std::vector<std::pair<std::vector<std::string>,
                             std::vector<uint8_t>>>{
           {{"k"}, {}}, {{"k", "k2"}, {}}, {{"k"}, {1}}, {{"k", "k2"},
                                                          {1, 0}}}) {
    auto serial = SortPerm(t, keys, pool_, desc, nullptr);
    ASSERT_TRUE(serial.ok());
    for (ThreadPool* tp : Pools()) {
      for (const KernelTuning& kt : Tunings()) {
        auto par = SortPerm(t, keys, pool_, desc, tp, kt);
        ASSERT_TRUE(par.ok());
        EXPECT_EQ(*par, *serial);
      }
    }
  }
}

TEST_F(PartitionedKernelsTest, MergeSortSkewAndPhases) {
  // Reverse-sorted input with heavy duplication: every merge moves
  // every element, and the sorted pre-check can never short-circuit.
  Table t;
  auto c = Column::MakeInt(50000);
  for (size_t i = 0; i < 50000; ++i) {
    c->ints().push_back(static_cast<int64_t>((50000 - i) / 100));
  }
  t.AddCol("k", c);
  auto serial = SortPerm(t, {"k"}, pool_, {}, nullptr);
  ASSERT_TRUE(serial.ok());
  KernelTuning kt;
  kt.sort_chunk_rows = 256;  // many merge levels
  KernelPhases ph;
  auto par = SortPerm(t, {"k"}, pool_, {}, &pool4_, kt, &ph);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*par, *serial);
  EXPECT_GT(ph.partition_ns + ph.merge_ns, 0);
}

TEST_F(PartitionedKernelsTest, GroupAggPartitionedCombineBitExact) {
  // Zipf groups: one combine partition carries nearly all groups (and
  // the hottest group nearly all rows). Doubles in the mix pin the FP
  // association: values must match by representation at every thread
  // count and tuning.
  Table t;
  t.AddCol("g", ZipfInts(40000, 500, 1.2, 71));
  auto vals = Column::MakeItem(40000);
  Rng rng(72);
  for (size_t i = 0; i < 40000; ++i) {
    if (rng.Chance(0.5)) {
      vals->items().push_back(Item::Int(rng.Range(-100, 100)));
    } else {
      vals->items().push_back(Item::Dbl(rng.NextDouble() * 100.0));
    }
  }
  t.AddCol("v", vals);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMax, AggKind::kMin}) {
    auto serial = GroupAgg(t, "g", "v", kind, pool_, "g", "out", nullptr);
    ASSERT_TRUE(serial.ok());
    for (ThreadPool* tp : Pools()) {
      for (const KernelTuning& kt : Tunings()) {
        auto par = GroupAgg(t, "g", "v", kind, pool_, "g", "out", tp, kt);
        ASSERT_TRUE(par.ok());
        EXPECT_EQ(par->col(0)->ints(), serial->col(0)->ints());
        EXPECT_EQ(par->col(1)->items(), serial->col(1)->items());
      }
    }
  }
}

TEST_F(PartitionedKernelsTest, GroupAggSingleGroupAndPhases) {
  // Every row in one group = one partition does all combine work.
  Table t;
  t.AddCol("g", IntCol(std::vector<int64_t>(30000, 42)));
  auto vals = Column::MakeItem(30000);
  Rng rng(81);
  for (size_t i = 0; i < 30000; ++i) {
    vals->items().push_back(Item::Dbl(rng.NextDouble()));
  }
  t.AddCol("v", vals);
  auto serial = GroupAgg(t, "g", "v", AggKind::kSum, pool_, "g", "s",
                         nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->col(0)->ints().size(), 1u);
  KernelPhases ph;
  for (ThreadPool* tp : Pools()) {
    auto par = GroupAgg(t, "g", "v", AggKind::kSum, pool_, "g", "s", tp,
                        KernelTuning::Default(), &ph);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(par->col(0)->ints(), serial->col(0)->ints());
    EXPECT_EQ(par->col(1)->items(), serial->col(1)->items());
  }
  EXPECT_GT(ph.partition_ns + ph.merge_ns, 0);
}

TEST_F(PartitionedKernelsTest, FilterBranchFreeScatter) {
  // All-false, all-true, sparse and alternating predicates through the
  // branch-free cursor loops, at a tiny morsel grain so chunk-boundary
  // handoff is exercised thousands of times.
  Rng rng(91);
  for (double density : {0.0, 1.0, 0.03, 0.5}) {
    auto pred = Column::MakeBool(30000);
    for (size_t i = 0; i < 30000; ++i) {
      pred->bools().push_back(density == 0.5 ? (i & 1) != 0
                                             : rng.Chance(density) ? 1 : 0);
    }
    IdxVec serial = FilterIndices(*pred, nullptr);
    for (ThreadPool* tp : Pools()) {
      for (const KernelTuning& kt : Tunings()) {
        EXPECT_EQ(FilterIndices(*pred, tp, kt), serial);
      }
    }
    // FilterGather scatters values with the same loop.
    Table t;
    t.AddCol("i", RandInts(30000, -1000, 1000, 92));
    t.AddCol("it", RandItems(30000, 93));
    Table sref = FilterGather(t, *pred, nullptr);
    for (ThreadPool* tp : Pools()) {
      KernelTuning kt;
      kt.morsel_rows = 64;
      Table par = FilterGather(t, *pred, tp, kt);
      ASSERT_EQ(par.num_cols(), sref.num_cols());
      EXPECT_EQ(par.col(0)->ints(), sref.col(0)->ints());
      EXPECT_EQ(par.col(1)->items(), sref.col(1)->items());
    }
  }
}

}  // namespace
}  // namespace pathfinder::bat

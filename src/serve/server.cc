#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "xml/update.h"

namespace pathfinder::serve {

namespace {

int64_t EnvInt(const char* name, int64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return dflt;
  return static_cast<int64_t>(parsed);
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// send() chunk size; the on_write fault hook fires once per chunk, so
/// close-at-byte injections resolve to this granularity.
constexpr size_t kWriteChunk = 4096;

}  // namespace

Server::Options Server::Options::FromEnv() {
  Options o;
  o.max_inflight =
      static_cast<int>(std::max<int64_t>(1, EnvInt("PF_SERVE_MAX_INFLIGHT", 4)));
  o.queue_depth =
      static_cast<int>(std::max<int64_t>(0, EnvInt("PF_SERVE_QUEUE", 64)));
  o.timeout_ms = std::max<int64_t>(0, EnvInt("PF_SERVE_TIMEOUT_MS", 0));
  o.mem_mb = std::max<int64_t>(0, EnvInt("PF_SERVE_MEM_MB", 0));
  o.max_line_bytes = static_cast<size_t>(std::max<int64_t>(
                         1, EnvInt("PF_SERVE_MAX_LINE_MB", 32)))
                     << 20;
  return o;
}

/// Per-connection state. The fd is owned here and closed by the
/// destructor (never earlier): workers may still hold the session via
/// their Job while the reader thread exits, and `dead` under write_mu
/// keeps them from touching a shut-down socket.
struct Server::Session {
  uint64_t id = 0;
  int fd = -1;

  std::mutex write_mu;        // guards dead, bytes_written, and fd sends
  bool dead = false;          // no further writes; results are discarded
  int64_t bytes_written = 0;  // cumulative, for close-at-byte injection

  std::mutex inflight_mu;
  std::unordered_map<std::string, std::shared_ptr<engine::CancelToken>>
      inflight;  // query id -> its cancel token, while queued/executing

  ~Session() {
    if (fd >= 0) ::close(fd);
  }

  /// Stop writes and wake any blocked socket call. Idempotent.
  void MarkDead() {
    std::lock_guard<std::mutex> lock(write_mu);
    if (dead) return;
    dead = true;
    ::shutdown(fd, SHUT_RDWR);
  }
};

struct Server::Job {
  std::shared_ptr<Session> session;
  std::string id;     // query/update id (client-chosen)
  std::string query;  // XQuery text
  std::string doc;    // context document / update target document
  std::shared_ptr<engine::CancelToken> token;
  // Update jobs carry the decoded node update instead of a query; they
  // ride the same queue so admission, cancellation-while-queued and
  // drain-on-shutdown behave identically.
  bool is_update = false;
  xml::NodeUpdate update;
};

Server::Server(xml::Database* db, Options opts)
    : db_(db), opts_(std::move(opts)), pf_(db) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  workers_.reserve(static_cast<size_t>(opts_.max_inflight));
  for (int i = 0; i < opts_.max_inflight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Stop admitting: new connections are turned away, new queries and
  //    registrations get a typed shutting_down error.
  draining_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain: every already-admitted query runs to completion and its
  //    response is flushed before any connection is torn down.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 3. Tear down sessions: wake blocked readers, join them, release.
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
    threads.swap(session_threads_);
  }
  for (auto& s : sessions) s->MarkDead();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

ServerStats Server::Stats() const {
  ServerStats st;
  st.connections = connections_.load();
  st.live_sessions = live_sessions_.load();
  st.requests = requests_.load();
  st.protocol_errors = protocol_errors_.load();
  st.registers = registers_.load();
  st.queries = queries_.load();
  st.updates = updates_.load();
  st.updates_applied = updates_applied_.load();
  st.completed = completed_.load();
  st.cancelled = cancelled_.load();
  st.timeouts = timeouts_.load();
  st.mem_rejects = mem_rejects_.load();
  st.busy_rejects = busy_rejects_.load();
  st.failed = failed_.load();
  st.disconnects = disconnects_.load();
  st.plan_cache_hits = plan_cache_hits_.load();
  st.subplan_cache_hits = subplan_cache_hits_.load();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    st.queued = static_cast<int64_t>(queue_.size());
    st.inflight = inflight_;
  }
  return st;
}

void Server::AcceptLoop() {
  uint64_t next_id = 1;
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down: Shutdown() is in progress
    }
    if (draining_.load()) {
      ::close(fd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->id = next_id++;
    s->fd = fd;
    connections_.fetch_add(1);
    live_sessions_.fetch_add(1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.push_back(s);
    session_threads_.emplace_back([this, s] { SessionLoop(s); });
  }
}

void Server::SessionLoop(std::shared_ptr<Session> s) {
  const ServeTestHooks* hooks = opts_.hooks;
  std::string buf;
  char tmp[16384];
  bool fatal = false;
  while (!fatal) {
    if (hooks != nullptr && hooks->before_read) hooks->before_read(s->id);
    ssize_t n = ::recv(s->fd, tmp, sizeof(tmp), 0);
    if (n <= 0) break;  // EOF, error, or MarkDead()'s shutdown()
    buf.append(tmp, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buf.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.size() > opts_.max_line_bytes) {
        requests_.fetch_add(1);
        protocol_errors_.fetch_add(1);
        WriteLine(*s, ErrorResponse("", kErrProtocol, "frame too large"));
        fatal = true;
        break;
      }
      HandleLine(s, line);
      start = nl + 1;
    }
    buf.erase(0, start);
    if (!fatal && buf.size() > opts_.max_line_bytes) {
      // A frame exceeded the cap without ever ending: unrecoverable,
      // since resynchronizing on the stream is impossible.
      requests_.fetch_add(1);
      protocol_errors_.fetch_add(1);
      WriteLine(*s, ErrorResponse("", kErrProtocol, "frame too large"));
      fatal = true;
    }
  }

  s->MarkDead();
  // The client is gone: abort its in-flight queries so their slots free
  // up immediately. Workers discard results written to a dead session.
  {
    std::lock_guard<std::mutex> lock(s->inflight_mu);
    for (auto& [id, token] : s->inflight) token->Cancel();
  }
  live_sessions_.fetch_sub(1);
  disconnects_.fetch_add(1);
  if (hooks != nullptr && hooks->on_disconnect) hooks->on_disconnect(s->id);
}

void Server::HandleLine(const std::shared_ptr<Session>& s,
                        std::string_view line) {
  requests_.fetch_add(1);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    protocol_errors_.fetch_add(1);
    WriteLine(*s, ErrorResponse("", kErrProtocol, parsed.status().message()));
    return;  // malformed frames don't kill the connection
  }
  Request& req = parsed.value();
  switch (req.verb) {
    case Verb::kPing:
      WriteLine(*s, PongResponse());
      return;
    case Verb::kRegister: {
      if (draining_.load()) {
        WriteLine(*s, ErrorResponse("", kErrShuttingDown,
                                    "server is shutting down"));
        return;
      }
      Result<xml::FragId> r = db_->LoadXml(req.name, req.xml);
      if (!r.ok()) {
        failed_.fetch_add(1);
        WriteLine(*s, ErrorResponse("", WireErrorName(r.status()),
                                    r.status().message()));
        return;
      }
      registers_.fetch_add(1);
      WriteLine(*s, RegisterResponse(req.name));
      return;
    }
    case Verb::kQuery:
    case Verb::kUpdate:
      HandleQuery(s, std::move(req));
      return;
    case Verb::kCancel: {
      std::shared_ptr<engine::CancelToken> token;
      {
        std::lock_guard<std::mutex> lock(s->inflight_mu);
        auto it = s->inflight.find(req.id);
        if (it != s->inflight.end()) token = it->second;
      }
      // Reply BEFORE firing: WriteLine serializes on the session's
      // write mutex and the query can only abort after the token
      // fires, so the cancel acknowledgement always precedes the
      // cancelled query's response on the wire — a deterministic order
      // the fault tests rely on.
      WriteLine(*s, CancelResponse(req.id, token != nullptr));
      if (token != nullptr) token->Cancel();
      return;
    }
    case Verb::kStats: {
      ServerStats st = Stats();
      std::string out = R"({"ok":true,"op":"stats")";
      auto field = [&out](const char* k, int64_t v) {
        out += ",\"";
        out += k;
        out += "\":";
        out += std::to_string(v);
      };
      field("connections", st.connections);
      field("live_sessions", st.live_sessions);
      field("requests", st.requests);
      field("protocol_errors", st.protocol_errors);
      field("registers", st.registers);
      field("queries", st.queries);
      field("updates", st.updates);
      field("updates_applied", st.updates_applied);
      field("queued", st.queued);
      field("inflight", st.inflight);
      field("completed", st.completed);
      field("cancelled", st.cancelled);
      field("timeouts", st.timeouts);
      field("mem_rejects", st.mem_rejects);
      field("busy_rejects", st.busy_rejects);
      field("failed", st.failed);
      field("disconnects", st.disconnects);
      field("plan_cache_hits", st.plan_cache_hits);
      field("subplan_cache_hits", st.subplan_cache_hits);
      out += '}';
      WriteLine(*s, out);
      return;
    }
  }
}

void Server::HandleQuery(const std::shared_ptr<Session>& s, Request req) {
  const bool is_update = req.verb == Verb::kUpdate;
  (is_update ? updates_ : queries_).fetch_add(1);
  if (draining_.load()) {
    WriteLine(*s, ErrorResponse(req.id, kErrShuttingDown,
                                "server is shutting down"));
    return;
  }
  Job job;
  job.session = s;
  job.id = std::move(req.id);
  job.query = std::move(req.query);
  job.doc = std::move(req.doc);
  job.token = std::make_shared<engine::CancelToken>();
  if (is_update) {
    job.is_update = true;
    job.update.kind = req.action == "insert"
                          ? xml::NodeUpdate::Kind::kInsertChild
                          : req.action == "delete"
                                ? xml::NodeUpdate::Kind::kDelete
                                : xml::NodeUpdate::Kind::kReplaceValue;
    job.update.target = static_cast<xml::Pre>(req.target);
    job.update.position = static_cast<int32_t>(req.position);
    job.update.xml = std::move(req.xml);
    job.update.value = std::move(req.value);
  }
  {
    std::lock_guard<std::mutex> lock(s->inflight_mu);
    if (!s->inflight.emplace(job.id, job.token).second) {
      protocol_errors_.fetch_add(1);
      WriteLine(*s, ErrorResponse(job.id, kErrProtocol,
                                  "duplicate in-flight query id"));
      return;
    }
  }
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (static_cast<int>(queue_.size()) < opts_.queue_depth) {
      queue_.push_back(std::move(job));
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_one();
    return;
  }
  busy_rejects_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(s->inflight_mu);
    s->inflight.erase(job.id);
  }
  WriteLine(*s, ErrorResponse(job.id, kErrBusy, "admission queue full"));
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }
    std::string error_token;
    std::string response = RunJob(job, &error_token);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --inflight_;
      if (queue_.empty() && inflight_ == 0) drain_cv_.notify_all();
    }
    // The gauge drops before the response goes out: a client that has
    // read its response and then asks for stats deterministically sees
    // this query gone from `inflight`. Shutdown joins workers before
    // killing sessions, so draining still flushes this write.
    WriteLine(*job.session, response);
    if (opts_.hooks != nullptr && opts_.hooks->on_query_done) {
      opts_.hooks->on_query_done(job.session->id, job.id, error_token);
    }
  }
}

std::string Server::RunJob(Job& job, std::string* error_token) {
  const ServeTestHooks* hooks = opts_.hooks;
  std::string response;

  // A query cancelled while still queued never starts executing.
  Status pre = job.token->Check();
  Status final_status = Status::OK();
  QueryResponseInfo info;
  std::string result_text;
  if (!pre.ok()) {
    final_status = pre;
  } else if (job.is_update) {
    // Updates serialize on the database's update lock; queries on other
    // workers keep reading the pre-update snapshot and are never
    // blocked. The shared engine's cache syncs (repairing value-free
    // entries across content-only updates) at its next BeginQuery.
    Result<xml::UpdateResult> r = xml::ApplyUpdate(db_, job.doc, job.update);
    if (r.ok()) {
      updates_applied_.fetch_add(1);
      response = UpdateResponse(job.id, job.doc, r.value().structural,
                                r.value().nodes_before,
                                r.value().nodes_after);
      std::lock_guard<std::mutex> lock(job.session->inflight_mu);
      job.session->inflight.erase(job.id);
      return response;
    }
    final_status = r.status();
  } else {
    QueryOptions qo = opts_.query_options;
    qo.context_doc = job.doc;
    qo.cancel_token = job.token.get();
    if (opts_.timeout_ms > 0) qo.timeout_ms = opts_.timeout_ms;
    if (opts_.mem_mb > 0) qo.mem_limit_bytes = opts_.mem_mb << 20;
    if (hooks != nullptr && hooks->at_operator) qo.op_probe = hooks->at_operator;

    double t0 = NowMs();
    Result<QueryResult> r = pf_.Run(job.query, qo);
    info.wall_ms = NowMs() - t0;
    if (r.ok()) {
      Result<std::string> text = r.value().Serialize();
      if (text.ok()) {
        result_text = std::move(text.value());
        info.plan_cache_hit = r.value().plan_cache_hit;
        info.subplan_cache_hits = r.value().subplan_cache_hits;
      } else {
        final_status = text.status();
      }
    } else {
      final_status = r.status();
    }
  }

  if (final_status.ok()) {
    completed_.fetch_add(1);
    if (info.plan_cache_hit) plan_cache_hits_.fetch_add(1);
    subplan_cache_hits_.fetch_add(info.subplan_cache_hits);
    response = QueryResponse(job.id, result_text, info);
  } else {
    switch (final_status.error_class()) {
      case ErrorClass::kCancelled:
        cancelled_.fetch_add(1);
        break;
      case ErrorClass::kTimeout:
        timeouts_.fetch_add(1);
        break;
      case ErrorClass::kResourceExhausted:
        mem_rejects_.fetch_add(1);
        break;
      default:
        failed_.fetch_add(1);
        break;
    }
    *error_token = WireErrorName(final_status);
    response = ErrorResponse(job.id, *error_token, final_status.message());
  }

  // Retire the id BEFORE the response goes out: once a client has read
  // a query's response, a cancel for that id deterministically answers
  // found:false.
  {
    std::lock_guard<std::mutex> lock(job.session->inflight_mu);
    job.session->inflight.erase(job.id);
  }
  return response;
}

void Server::WriteLine(Session& s, std::string_view line) {
  const ServeTestHooks* hooks = opts_.hooks;
  std::lock_guard<std::mutex> lock(s.write_mu);
  if (s.dead) return;  // client gone: discard the result
  std::string framed(line);
  framed += '\n';
  size_t off = 0;
  while (off < framed.size()) {
    size_t chunk = std::min(kWriteChunk, framed.size() - off);
    if (hooks != nullptr && hooks->on_write) {
      switch (hooks->on_write(s.id, s.bytes_written)) {
        case ServeTestHooks::WriteFault::kNone:
          break;
        case ServeTestHooks::WriteFault::kDrop:
          s.bytes_written += static_cast<int64_t>(chunk);
          off += chunk;
          continue;  // swallow this chunk, keep going
        case ServeTestHooks::WriteFault::kClose:
          s.dead = true;
          ::shutdown(s.fd, SHUT_RDWR);
          return;
      }
    }
    ssize_t n = ::send(s.fd, framed.data() + off, chunk, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      s.dead = true;
      ::shutdown(s.fd, SHUT_RDWR);
      return;
    }
    s.bytes_written += n;
    off += static_cast<size_t>(n);
  }
}

}  // namespace pathfinder::serve

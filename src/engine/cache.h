#ifndef PATHFINDER_ENGINE_CACHE_H_
#define PATHFINDER_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/op.h"
#include "bat/table.h"
#include "compiler/compile.h"
#include "frontend/ast.h"
#include "opt/optimize.h"
#include "opt/pipeline.h"

namespace pathfinder::engine {

/// Counters of one cache section (exposed in profiler text/JSON).
struct CacheSectionStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;  ///< resident entries (snapshot)
  int64_t bytes = 0;    ///< resident bytes (snapshot)
};

struct CacheStats {
  CacheSectionStats plan;
  CacheSectionStats subplan;
  int64_t invalidations = 0;  ///< whole-cache clears on db generation change
  int64_t budget_bytes = 0;
};

/// Everything the api layer needs to skip the frontend/compile/optimize
/// pipeline on a repeated query. `plan_opt` is fully annotated
/// (pipelines + cache candidates) and is executed as-is — cached plans
/// are never re-annotated, so concurrent executions of the same entry
/// cannot race on plan-node annotation fields.
struct PlanCacheEntry {
  frontend::ExprPtr core;
  algebra::OpPtr plan;      ///< compiled, pre-optimization
  algebra::OpPtr plan_opt;  ///< optimized + pipeline/cache annotated
  compiler::CompileStats compile_stats;
  opt::OptimizeStats opt_stats;
  opt::PipelineStats pipeline_stats;
  size_t bytes = 0;
  /// Every map key aliasing this entry ("r:"-prefixed raw query texts
  /// plus the one "c:" canonical-core key) — erased together on evict.
  std::vector<std::string> keys;
};

using PlanEntryPtr = std::shared_ptr<const PlanCacheEntry>;

/// Cross-query cache: optimized plans keyed by query text, and
/// materialized subplan results keyed by structural plan hash.
///
/// One instance lives inside api::Pathfinder and is shared by every
/// query it runs; all methods are thread-safe (single internal mutex —
/// the guarded work is map lookups and shallow Table copies, never
/// operator evaluation). Byte budget: the plan section may use at most
/// a quarter of the total, the subplan section the rest; least recently
/// used entries are evicted when an insert overflows a section. Entries
/// are dropped wholesale when the database generation changes (document
/// (re)registration invalidates everything derived from documents).
class QueryCache {
 public:
  explicit QueryCache(size_t budget_bytes) : budget_(budget_bytes) {}
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Sync with the store: on a generation change, drop everything.
  /// Call once per query, before any lookup.
  void BeginQuery(uint64_t db_generation);

  /// Plan lookup by exact ("r:" raw) or canonical ("c:" core) key.
  /// nullptr on miss. A raw-key miss followed by a core-key hit should
  /// be repaired with AliasPlan so the next lookup hits tier 1.
  PlanEntryPtr LookupPlan(const std::string& key);

  /// Register an extra key for an existing entry (tier-2 repair).
  void AliasPlan(const std::string& key, const PlanEntryPtr& entry);

  /// Insert a freshly built plan under both its keys. If a concurrent
  /// query inserted the same raw key first, the resident entry wins and
  /// is returned (insert-if-absent).
  PlanEntryPtr InsertPlan(const std::string& raw_key,
                          const std::string& core_key, PlanCacheEntry entry);

  /// Materialized result of a cache-candidate subtree (`op.cache_hash`
  /// must be set). On hit, `out` receives a shallow copy (columns are
  /// shared and immutable). Counts a hit or miss.
  bool LookupSubplan(const algebra::Op& op, bat::Table* out);

  /// Store a candidate's materialized result. `subtree` keeps the plan
  /// nodes alive for the deep structural-equality check on later
  /// lookups. No-op if an equal entry is already resident or the table
  /// alone overflows the section budget.
  void InsertSubplan(const algebra::OpPtr& subtree, const bat::Table& t);

  CacheStats Stats() const;
  void Clear();

  void SetBudget(size_t bytes);
  size_t budget() const;

 private:
  struct SubEntry {
    uint64_t hash = 0;
    algebra::OpPtr subtree;
    bat::Table table;
    size_t bytes = 0;
  };

  using PlanLru = std::list<PlanEntryPtr>;
  using SubLru = std::list<SubEntry>;

  size_t PlanBudgetLocked() const { return budget_ / 4; }
  size_t SubBudgetLocked() const { return budget_ - budget_ / 4; }
  void EvictPlanLocked(size_t needed);
  void EvictSubLocked(size_t needed);
  void ClearLocked();

  mutable std::mutex mu_;
  size_t budget_;
  uint64_t generation_ = 0;
  bool generation_seen_ = false;

  PlanLru plan_lru_;  // front = most recent
  std::unordered_map<std::string, PlanLru::iterator> plan_map_;
  size_t plan_bytes_ = 0;

  SubLru sub_lru_;  // front = most recent
  std::unordered_map<uint64_t, std::vector<SubLru::iterator>> sub_map_;
  size_t sub_bytes_ = 0;

  CacheStats stats_;
};

/// Mark the subtrees of `root` whose materialized results the executor
/// may exchange with a QueryCache: pure (constructor-free) subtrees
/// that touch a document (contain a Step or DocRoot) and are maximal —
/// their parent is impure or absent — plus every pure Step node (axis
/// steps are the expensive, highly reusable building block, worth
/// caching even mid-chain). Sets Op::cache_cand / Op::cache_hash;
/// call only on freshly built plans (never on plans already published
/// to the cache — annotation would race with concurrent executors).
void AnnotateCacheCandidates(const algebra::OpPtr& root);

/// Process-wide default cache budget: PF_CACHE_MB megabytes (read
/// once); unset = 64 MB, "0" = caching off.
size_t CacheDefaultBudgetBytes();

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_CACHE_H_

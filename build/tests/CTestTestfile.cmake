# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/bat_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/accel_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/xmark_test[1]_include.cmake")
include("/root/repo/build/tests/api_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/random_query_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")

#include <gtest/gtest.h>

#include "baseline/dom.h"
#include "baseline/interp.h"
#include "xml/parser.h"

namespace pathfinder::baseline {
namespace {

TEST(DomTest, StructureMirrorsEncoding) {
  StringPool pool;
  auto doc =
      xml::ParseXml(R"(<a><b id="1">t</b><c/></a>)", &pool).value();
  Dom dom(doc);
  ASSERT_EQ(dom.size(), doc.num_nodes());
  const DomNode* root = dom.node(0);
  EXPECT_EQ(root->kind, xml::NodeKind::kDoc);
  ASSERT_EQ(root->children.size(), 1u);
  const DomNode* a = root->children[0];
  EXPECT_EQ(pool.Get(a->name), "a");
  ASSERT_EQ(a->children.size(), 2u);
  const DomNode* b = a->children[0];
  EXPECT_EQ(b->attrs.size(), 1u);
  EXPECT_EQ(pool.Get(b->attrs[0]->name), "id");
  EXPECT_EQ(b->children.size(), 1u);
  EXPECT_EQ(b->children[0]->kind, xml::NodeKind::kText);
  EXPECT_EQ(b->parent, a);
  EXPECT_EQ(a->parent, root);
}

TEST(DomTest, StringValue) {
  StringPool pool;
  auto doc = xml::ParseXml("<a>x<b>y</b>z</a>", &pool).value();
  Dom dom(doc);
  EXPECT_EQ(DomStringValue(dom.node(1), pool), "xyz");
}

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadXml("b.xml",
                            "<lib><book y=\"1994\">A</book>"
                            "<book y=\"2000\">B</book></lib>")
                    .ok());
  }

  std::string Run(const std::string& q) {
    Baseline bl(&db_);
    BaselineOptions o;
    o.context_doc = "b.xml";
    auto r = bl.Run(q, o);
    if (!r.ok()) return "<error: " + r.status().ToString() + ">";
    auto s = r->Serialize();
    return s.ok() ? *s : "<serialize error>";
  }

  xml::Database db_;
};

TEST_F(BaselineTest, BasicEvaluation) {
  EXPECT_EQ(Run("1 + 2"), "3");
  EXPECT_EQ(Run("count(//book)"), "2");
  EXPECT_EQ(Run("//book[@y = \"2000\"]/text()"), "B");
  // Adjacent text-node items serialize without separators (spaces are
  // only inserted between atomic values).
  EXPECT_EQ(Run("for $b in //book order by data($b/@y) descending "
                "return $b/text()"),
            "BA");
}

TEST_F(BaselineTest, NestedLoopSemantics) {
  EXPECT_EQ(Run("for $a in (1,2), $b in (10,20) return $a + $b"),
            "11 21 12 22");
}

TEST_F(BaselineTest, ConstructedNodesNavigable) {
  EXPECT_EQ(Run("count(<x><y/><y/></x>/y)"), "2");
  EXPECT_EQ(Run("string(<x>a<y>b</y></x>)"), "ab");
}

TEST_F(BaselineTest, RecursionStillRejectedByNormalizer) {
  // Both engines share the normalizer: recursion is diagnosed before
  // interpretation.
  std::string out =
      Run("declare function local:f($n) { local:f($n) }; local:f(1)");
  EXPECT_NE(out.find("<error"), std::string::npos);
}

TEST_F(BaselineTest, ErrorsPropagate) {
  EXPECT_NE(Run("1 div 0").find("<error"), std::string::npos);
  EXPECT_NE(Run("doc(\"missing.xml\")").find("<error"),
            std::string::npos);
}

}  // namespace
}  // namespace pathfinder::baseline

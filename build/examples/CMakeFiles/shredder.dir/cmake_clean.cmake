file(REMOVE_RECURSE
  "CMakeFiles/shredder.dir/shredder.cpp.o"
  "CMakeFiles/shredder.dir/shredder.cpp.o.d"
  "shredder"
  "shredder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shredder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

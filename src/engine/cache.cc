#include "engine/cache.h"

#include <cstdlib>
#include <string_view>
#include <utility>

#include "algebra/hash.h"

namespace pathfinder::engine {

namespace alg = pathfinder::algebra;

// --- QueryCache -----------------------------------------------------------

void QueryCache::BeginQuery(uint64_t db_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_seen_ && generation_ != db_generation) {
    ClearLocked();
    stats_.invalidations++;
  }
  generation_ = db_generation;
  generation_seen_ = true;
}

PlanEntryPtr QueryCache::LookupPlan(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plan_map_.find(key);
  if (it == plan_map_.end()) {
    stats_.plan.misses++;
    return nullptr;
  }
  stats_.plan.hits++;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  return *it->second;
}

void QueryCache::AliasPlan(const std::string& key, const PlanEntryPtr& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_map_.count(key)) return;
  // Locate the resident list node via one of the entry's known keys; if
  // the entry was evicted between lookup and alias, do nothing.
  for (const auto& k : entry->keys) {
    auto it = plan_map_.find(k);
    if (it == plan_map_.end() || *it->second != entry) continue;
    plan_map_.emplace(key, it->second);
    const_cast<PlanCacheEntry*>(entry.get())->keys.push_back(key);
    plan_bytes_ += key.size();
    return;
  }
}

PlanEntryPtr QueryCache::InsertPlan(const std::string& raw_key,
                                    const std::string& core_key,
                                    PlanCacheEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Insert-if-absent: a concurrent query may have published the same
  // plan first; the resident entry wins (all executors then share one
  // annotated DAG).
  if (auto it = plan_map_.find(raw_key); it != plan_map_.end()) {
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return *it->second;
  }
  if (auto it = plan_map_.find(core_key); it != plan_map_.end()) {
    PlanEntryPtr resident = *it->second;
    plan_map_.emplace(raw_key, it->second);
    const_cast<PlanCacheEntry*>(resident.get())->keys.push_back(raw_key);
    plan_bytes_ += raw_key.size();
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return resident;
  }
  entry.keys = {raw_key};
  if (core_key != raw_key) entry.keys.push_back(core_key);
  entry.bytes += raw_key.size() + core_key.size();
  auto shared = std::make_shared<const PlanCacheEntry>(std::move(entry));
  if (shared->bytes > PlanBudgetLocked()) return shared;  // never fits
  EvictPlanLocked(shared->bytes);
  plan_lru_.push_front(shared);
  for (const auto& k : shared->keys) plan_map_.emplace(k, plan_lru_.begin());
  plan_bytes_ += shared->bytes;
  return shared;
}

void QueryCache::EvictPlanLocked(size_t needed) {
  while (!plan_lru_.empty() && plan_bytes_ + needed > PlanBudgetLocked()) {
    const PlanEntryPtr& victim = plan_lru_.back();
    for (const auto& k : victim->keys) plan_map_.erase(k);
    plan_bytes_ -= victim->bytes;
    plan_lru_.pop_back();
    stats_.plan.evictions++;
  }
}

bool QueryCache::LookupSubplan(const algebra::Op& op, bat::Table* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_map_.find(op.cache_hash);
  if (it != sub_map_.end()) {
    for (SubLru::iterator e : it->second) {
      // Hash match is a candidate only: confirm with the deep
      // structural check before serving (collisions must never swap
      // one query's subtree for another's).
      if (alg::StructurallyEqual(*e->subtree, op)) {
        sub_lru_.splice(sub_lru_.begin(), sub_lru_, e);
        *out = e->table;  // shallow: columns shared, immutable
        stats_.subplan.hits++;
        return true;
      }
    }
  }
  stats_.subplan.misses++;
  return false;
}

void QueryCache::InsertSubplan(const algebra::OpPtr& subtree,
                               const bat::Table& t) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hash = subtree->cache_hash;
  auto it = sub_map_.find(hash);
  if (it != sub_map_.end()) {
    for (SubLru::iterator e : it->second) {
      if (alg::StructurallyEqual(*e->subtree, *subtree)) return;  // raced
    }
  }
  SubEntry entry;
  entry.hash = hash;
  entry.subtree = subtree;
  entry.table = t;
  entry.bytes = t.AllocBytes() + alg::ApproxPlanBytes(subtree);
  if (entry.bytes > SubBudgetLocked()) return;  // would never fit
  EvictSubLocked(entry.bytes);
  sub_bytes_ += entry.bytes;
  sub_lru_.push_front(std::move(entry));
  sub_map_[hash].push_back(sub_lru_.begin());
}

void QueryCache::EvictSubLocked(size_t needed) {
  while (!sub_lru_.empty() && sub_bytes_ + needed > SubBudgetLocked()) {
    const SubEntry& victim = sub_lru_.back();
    auto& bucket = sub_map_[victim.hash];
    for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
      if (&**bit == &victim) {
        bucket.erase(bit);
        break;
      }
    }
    if (bucket.empty()) sub_map_.erase(victim.hash);
    sub_bytes_ -= victim.bytes;
    sub_lru_.pop_back();
    stats_.subplan.evictions++;
  }
}

CacheStats QueryCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.plan.entries = static_cast<int64_t>(plan_lru_.size());
  s.plan.bytes = static_cast<int64_t>(plan_bytes_);
  s.subplan.entries = static_cast<int64_t>(sub_lru_.size());
  s.subplan.bytes = static_cast<int64_t>(sub_bytes_);
  s.budget_bytes = static_cast<int64_t>(budget_);
  return s;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void QueryCache::ClearLocked() {
  // Resident state goes; cumulative hit/miss/eviction counters stay.
  plan_map_.clear();
  plan_lru_.clear();
  plan_bytes_ = 0;
  sub_map_.clear();
  sub_lru_.clear();
  sub_bytes_ = 0;
}

void QueryCache::SetBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  EvictPlanLocked(0);
  EvictSubLocked(0);
}

size_t QueryCache::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

// --- candidate annotation -------------------------------------------------

namespace {

/// Operators whose results depend on per-query state: node construction
/// allocates fragment ids from the query's FragmentStore, so identical
/// subtrees yield different (correct) items on every run.
bool IsImpure(alg::OpKind k) {
  return k == alg::OpKind::kElemConstr || k == alg::OpKind::kTextConstr ||
         k == alg::OpKind::kAttrConstr;
}

}  // namespace

void AnnotateCacheCandidates(const algebra::OpPtr& root) {
  std::vector<alg::Op*> order = alg::TopoOrder(root);
  std::unordered_map<const alg::Op*, bool> pure, has_doc;
  for (alg::Op* op : order) {
    bool p = !IsImpure(op->kind);
    bool d = op->kind == alg::OpKind::kStep ||
             op->kind == alg::OpKind::kDocRoot;
    for (const auto& c : op->children) {
      p = p && pure.at(c.get());
      d = d || has_doc.at(c.get());
    }
    pure[op] = p;
    has_doc[op] = d;
    op->cache_cand = false;
    op->cache_hash = 0;
  }
  // Candidates: maximal pure document-derived subtrees (pure child of
  // an impure parent, or a pure root), plus every pure Step — axis
  // steps are the expensive, highly reusable unit, worth a cache entry
  // even in the middle of a larger pure region.
  auto mark = [&](alg::Op* op) {
    op->cache_cand = pure.at(op) && has_doc.at(op);
  };
  for (alg::Op* op : order) {
    if (op->kind == alg::OpKind::kStep) mark(op);
    if (!pure.at(op)) {
      for (const auto& c : op->children) mark(c.get());
    }
  }
  mark(root.get());
  std::unordered_map<const alg::Op*, uint64_t> hashes;
  alg::StructuralHashes(root, &hashes);
  for (alg::Op* op : order) {
    if (op->cache_cand) op->cache_hash = hashes.at(op);
  }
}

size_t CacheDefaultBudgetBytes() {
  static const size_t kBytes = [] {
    const char* e = std::getenv("PF_CACHE_MB");
    if (e == nullptr || *e == '\0') return size_t{64} << 20;
    long mb = std::strtol(e, nullptr, 10);
    if (mb <= 0) return size_t{0};
    return static_cast<size_t>(mb) << 20;
  }();
  return kBytes;
}

}  // namespace pathfinder::engine

# Empty dependencies file for pf_algebra.
# This may be replaced when dependencies are built.

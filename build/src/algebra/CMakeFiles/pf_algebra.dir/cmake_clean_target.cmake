file(REMOVE_RECURSE
  "libpf_algebra.a"
)

#ifndef PATHFINDER_BAT_ITEM_H_
#define PATHFINDER_BAT_ITEM_H_

#include <bit>
#include <cstdint>
#include <functional>

#include "base/string_pool.h"

namespace pathfinder {

/// Dynamic kind of an XQuery item stored in a polymorphic `item` column.
///
/// The paper implements the polymorphic item column via MonetDB's
/// mposjoin over per-kind containers; we use a tagged 128-bit value with
/// string payloads interned in a StringPool, which gives the same
/// columnar access pattern.
enum class ItemKind : uint8_t {
  kNode = 0,     // reference to a node: (fragment id, pre rank)
  kAttr = 1,     // reference to an attribute node (same payload as kNode)
  kInt = 2,      // xs:integer
  kDbl = 3,      // xs:double / xs:decimal
  kStr = 4,      // xs:string
  kUntyped = 5,  // xs:untypedAtomic (result of fn:data on nodes)
  kBool = 6,     // xs:boolean
};

/// A single XQuery item: tag + 64 payload bits.
///
/// Trivially copyable; equality is *representation* equality (used for
/// hashing/joins), not XQuery value comparison — see item_ops.h for the
/// latter.
struct Item {
  ItemKind kind;
  uint64_t raw;

  static Item Int(int64_t v) {
    return Item{ItemKind::kInt, static_cast<uint64_t>(v)};
  }
  static Item Dbl(double v) {
    return Item{ItemKind::kDbl, std::bit_cast<uint64_t>(v)};
  }
  static Item Str(StrId s) { return Item{ItemKind::kStr, s}; }
  static Item Untyped(StrId s) { return Item{ItemKind::kUntyped, s}; }
  static Item Bool(bool b) {
    return Item{ItemKind::kBool, static_cast<uint64_t>(b)};
  }
  static Item Node(uint32_t frag, uint32_t pre) {
    return Item{ItemKind::kNode,
                (static_cast<uint64_t>(frag) << 32) | pre};
  }
  static Item Attr(uint32_t frag, uint32_t pre) {
    return Item{ItemKind::kAttr,
                (static_cast<uint64_t>(frag) << 32) | pre};
  }

  int64_t AsInt() const { return static_cast<int64_t>(raw); }
  double AsDbl() const { return std::bit_cast<double>(raw); }
  StrId AsStr() const { return static_cast<StrId>(raw); }
  bool AsBool() const { return raw != 0; }
  uint32_t NodeFrag() const { return static_cast<uint32_t>(raw >> 32); }
  uint32_t NodePre() const { return static_cast<uint32_t>(raw); }

  bool IsNode() const {
    return kind == ItemKind::kNode || kind == ItemKind::kAttr;
  }
  bool IsNumeric() const {
    return kind == ItemKind::kInt || kind == ItemKind::kDbl;
  }
  bool IsStringLike() const {
    return kind == ItemKind::kStr || kind == ItemKind::kUntyped;
  }

  friend bool operator==(const Item& a, const Item& b) {
    return a.kind == b.kind && a.raw == b.raw;
  }
};

struct ItemHash {
  size_t operator()(const Item& it) const {
    uint64_t h = it.raw * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(it.kind) * 0xBF58476D1CE4E5B9ull;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

}  // namespace pathfinder

#endif  // PATHFINDER_BAT_ITEM_H_

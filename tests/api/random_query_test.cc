#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "api/pathfinder.h"
#include "base/rng.h"
#include "baseline/interp.h"
#include "xml/database.h"
#include "xml/update.h"

namespace pathfinder {
namespace {

/// Random-query differential fuzzing: generate syntactically valid
/// queries from a grammar covering the supported dialect, run them on
/// the relational engine (several knob configurations) and the
/// navigational baseline, and require byte-identical serialization.
///
/// The generator only produces value expressions whose semantics are
/// defined in our dialect (e.g. comparisons between atomizable
/// operands), so every generated query must succeed on both engines.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Query() {
    depth_ = 0;
    vars_ = {};
    return SeqExpr();
  }

 private:
  std::string Pick(const std::vector<std::string>& opts) {
    return opts[rng_.Below(opts.size())];
  }

  std::string FreshVar() {
    std::string v = "v" + std::to_string(var_counter_++);
    vars_.push_back(v);
    return v;
  }

  /// A path producing element nodes of the fixture document.
  std::string NodePath() {
    // Occasionally stack extra value predicates on a base path: each
    // predicate compiles to its own select (plus attach/fun maps), so
    // these produce the deep σ→map chains the pipelined executor fuses.
    if (rng_.Chance(0.3)) return DeepNodePath();
    return Pick({
        "//item",
        "//dept",
        "/shop/dept/item",
        "//item[@price > 4]",
        "//order",
        "(//item)[2]",
        "//dept[1]/item",
        "//item/following-sibling::*",
        "//note/ancestor::dept",
    });
  }

  /// A multi-predicate path: base step plus 1..3 value predicates,
  /// optionally continued by a trailing step. Predicates compare
  /// against attributes that may be absent on some elements — a
  /// comparison with the empty sequence is false, which both engines
  /// must agree on.
  std::string DeepNodePath() {
    std::string p = Pick({"//item", "/shop/dept/item", "//dept/item"});
    size_t preds = rng_.Range(1, 3);
    for (size_t i = 0; i < preds; ++i) {
      p += Pick({
          "[@price > 2]",
          "[@price < 50]",
          "[@price >= 3]",
          "[contains(@sku, \"a\")]",
          "[contains(@sku, \"t\")]",
          "[contains(string(.), \"a\")]",
          "[exists(@sku)]",
          "[not(@price = 30)]",
      });
    }
    if (rng_.Chance(0.4)) p += Pick({"/@sku", "/@price", "/note"});
    return p;
  }

  /// An expression producing numbers (possibly a sequence).
  std::string NumExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"1", "2", "7", "41", "3.5", "0"});
    } else {
      switch (rng_.Below(7)) {
        case 0:
          out = "(" + NumExpr() + " + " + NumExpr() + ")";
          break;
        case 1:
          out = "(" + NumExpr() + " * " + NumExpr() + ")";
          break;
        case 2:
          out = "count(" + NodePath() + ")";
          break;
        case 3:
          out = "sum(" + NodePath() + "/@price)";
          break;
        case 4:
          out = "string-length(" + StrExpr() + ")";
          break;
        case 5:
          if (!vars_.empty()) {
            out = "count($" + Pick(vars_) + ")";
            break;
          }
          [[fallthrough]];
        default:
          out = Pick({"1", "2", "7", "41", "3.5", "0"});
          break;
      }
    }
    --depth_;
    return out;
  }

  std::string StrExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"\"a\"", "\"gold\"", "\"\""});
    } else {
      switch (rng_.Below(4)) {
        case 0:
          out = "string((" + NodePath() + ")[1])";
          break;
        case 1:
          out = "concat(" + StrExpr() + ", " + StrExpr() + ")";
          break;
        case 2:
          out = "string(" + NumExpr() + ")";
          break;
        default:
          out = Pick({"\"a\"", "\"ham\"", "\"x\""});
          break;
      }
    }
    --depth_;
    return out;
  }

  std::string BoolExpr() {
    ++depth_;
    std::string out;
    if (depth_ > 3) {
      out = Pick({"true()", "false()"});
    } else {
      switch (rng_.Below(6)) {
        case 0:
          out = "(" + NumExpr() + " " + Pick({"<", "<=", "=", ">", ">="}) +
                " " + NumExpr() + ")";
          break;
        case 1:
          out = "contains(" + StrExpr() + ", " + StrExpr() + ")";
          break;
        case 2:
          out = "empty(" + NodePath() + ")";
          break;
        case 3:
          out = "(" + BoolExpr() + " " + Pick({"and", "or"}) + " " +
                BoolExpr() + ")";
          break;
        case 4:
          out = "not(" + BoolExpr() + ")";
          break;
        default:
          out = "exists(" + NodePath() + ")";
          break;
      }
    }
    --depth_;
    return out;
  }

  /// Any single expression.
  std::string Single() {
    ++depth_;
    std::string out;
    switch (depth_ > 3 ? rng_.Below(3) : rng_.Below(8)) {
      case 0:
        out = NumExpr();
        break;
      case 1:
        out = StrExpr();
        break;
      case 2:
        out = BoolExpr();
        break;
      case 3:
        out = Flwor();
        break;
      case 4:
        out = "if (" + BoolExpr() + ") then " + Single() + " else " +
              Single();
        break;
      case 5:
        out = NodePath();
        break;
      case 6:
        out = "<w n=\"{ " + NumExpr() + " }\">{ " + Single() + " }</w>";
        break;
      default:
        out = "data((" + NodePath() + ")[1]/@sku)";
        break;
    }
    --depth_;
    return out;
  }

  /// A two-generator FLWOR whose where clause equi-joins the two
  /// bindings on attribute values — the value-join shape the join-graph
  /// pass (PF_JOINOPT) isolates, with optional extra conjuncts that
  /// compile to post-join selects (pushdown fodder).
  std::string JoinFlwor() {
    size_t vars_before = vars_.size();
    std::string a = FreshVar();
    std::string b = FreshVar();
    std::string q = "for $" + a + " in " +
                    Pick({"//item", "/shop/dept/item"}) + " for $" + b +
                    " in //order where $" + b + "/@ref = $" + a + "/@sku";
    if (rng_.Chance(0.5)) {
      q += " and $" + a + "/@price " + Pick({">", "<", ">=", "="}) + " " +
           Pick({"2", "5", "30"});
    }
    if (rng_.Chance(0.3)) q += " and $" + b + "/@qty > 1";
    q += " return ";
    q += Pick({"$" + a + "/@sku", "$" + b + "/@qty",
               "($" + a + "/@price, $" + b + "/@qty)",
               "<j>{ $" + a + "/text() }</j>"});
    vars_.resize(vars_before);
    return q;
  }

  std::string Flwor() {
    // A fifth of all FLWORs are explicit two-generator value joins.
    if (depth_ <= 2 && rng_.Chance(0.2)) return JoinFlwor();
    size_t vars_before = vars_.size();
    // The domain is generated BEFORE the variable becomes visible.
    std::string domain = rng_.Chance(0.5)
                             ? NodePath()
                             : "(" + NumExpr() + ", " + NumExpr() + ")";
    std::string v = FreshVar();
    std::string q = "for $" + v + " in " + domain + " ";
    if (rng_.Chance(0.4)) {
      std::string init = Single();  // before the binding is visible
      std::string lv = FreshVar();
      q += "let $" + lv + " := " + init + " ";
    }
    if (rng_.Chance(0.5)) {
      // Sometimes a multi-conjunct where clause: each conjunct becomes
      // its own select over the loop relation, extending the fusable
      // chain.
      std::string cond = BoolExpr();
      size_t extra = rng_.Chance(0.4) ? rng_.Range(1, 2) : 0;
      for (size_t i = 0; i < extra; ++i) cond += " and " + BoolExpr();
      q += "where " + cond + " ";
    }
    if (rng_.Chance(0.3)) {
      q += "order by " + NumExpr() + (rng_.Chance(0.5) ? " descending" : "") +
           " ";
    }
    q += "return " + Single();
    vars_.resize(vars_before);  // out of scope after the FLWOR
    return q;
  }

  std::string SeqExpr() {
    int n = static_cast<int>(rng_.Range(1, 2));
    std::string q;
    for (int i = 0; i < n; ++i) {
      if (i) q += ", ";
      q += Single();
    }
    return n > 1 ? "(" + q + ")" : q;
  }

  Rng rng_;
  int depth_ = 0;
  int var_counter_ = 0;
  std::vector<std::string> vars_;
};

constexpr const char* kShopXml = R"(
<shop>
  <dept name="fruit">
    <item sku="a1" price="3">apple</item>
    <item sku="a2" price="7">pear<note>ripe</note></item>
  </dept>
  <dept name="tools">
    <item sku="t1" price="30">hammer</item>
    <item sku="t2" price="3">nail</item>
  </dept>
  <orders><order ref="a1" qty="2"/><order ref="t2" qty="500"/></orders>
</shop>)";

xml::Database* ShopDb() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    auto r = d->LoadXml("shop.xml", kShopXml);
    EXPECT_TRUE(r.ok());
    return d;
  }();
  return db;
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static xml::Database* db() { return ShopDb(); }
};

TEST_P(RandomQueryTest, EnginesAgreeOnGeneratedQueries) {
  QueryGen gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    std::string q = gen.Query();
    SCOPED_TRACE(q);

    baseline::Baseline bl(db());
    baseline::BaselineOptions bo;
    bo.context_doc = "shop.xml";
    auto br = bl.Run(q, bo);
    ASSERT_TRUE(br.ok()) << br.status().ToString();
    auto bs = br->Serialize();
    ASSERT_TRUE(bs.ok());

    Pathfinder pf(db());
    // Masks 0-2 toggle compiler knobs (mask 0 runs the process-default
    // pipeline setting); 3 forces materialized, 4 forces pipelined with
    // two worker threads — the pipelined-vs-materialized differential
    // over the whole random dialect. Masks 5-6 re-run representative
    // configurations with profiling on: collection must never perturb
    // results, and the profile tree must materialize. Masks 7-9 sweep
    // the cache/CSE knobs: 7 disables CSE, 8 forces both caches on with
    // a budget small enough to churn (all masks share this Pathfinder,
    // so 8 is served against a cache warmed by earlier masks), 9 pins
    // both caches off. Masks 10-11 pin the join-graph pass off and on
    // (overriding the PF_JOINOPT process default): the cost-based join
    // orderer must be invisible in every serialized byte.
    for (int mask = 0; mask < 12; ++mask) {
      QueryOptions o;
      o.context_doc = "shop.xml";
      o.join_recognition = mask != 1;
      o.optimize = mask != 2;
      if (mask == 3) o.pipeline = 0;
      if (mask == 4) {
        o.pipeline = 1;
        o.num_threads = 2;
      }
      o.profile = mask >= 5 && mask < 7 ? 1 : 0;  // pin ambient PF_PROFILE
      if (mask == 6) {
        o.pipeline = 1;
        o.num_threads = 2;
      }
      if (mask == 7) o.cse = 0;
      if (mask == 8) {
        o.plan_cache = 1;
        o.subplan_cache = 1;
        o.cache_budget_bytes = 1 << 20;
      }
      if (mask == 9) {
        o.plan_cache = 0;
        o.subplan_cache = 0;
      }
      if (mask >= 10) {
        o.join_opt = mask - 10;
        o.plan_cache = 0;  // force both variants through the optimizer
      }
      auto pr = pf.Run(q, o);
      ASSERT_TRUE(pr.ok()) << pr.status().ToString() << " mask=" << mask;
      auto ps = pr->Serialize();
      ASSERT_TRUE(ps.ok());
      ASSERT_EQ(*ps, *bs) << "mask=" << mask;
      if (mask >= 5 && mask < 7) {
        ASSERT_NE(pr->profile, nullptr) << "mask=" << mask;
        EXPECT_FALSE(pr->ProfileJson().empty()) << "mask=" << mask;
      } else {
        EXPECT_EQ(pr->profile, nullptr) << "mask=" << mask;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range<uint64_t>(1, 46));

// Zipf-skewed fixture for the partitioned kernels: item skus and order
// refs are drawn from Zipf laws, so one join key (and with radix_bits
// forced to 1, one radix partition) carries a large fraction of all
// rows, and one dept holds most items so one combine partition does
// nearly all GroupAgg work. The doc is sized past the kernels'
// parallel thresholds (9000 items) so that, with the tuning knobs
// forced small, the partition-imbalance paths actually run — this
// suite is in the TSan CI lane precisely so those paths execute under
// the race detector.
xml::Database* SkewDb() {
  static xml::Database* db = [] {
    auto* d = new xml::Database();
    Rng rng(20260809);
    std::vector<std::string> dept_items(40);
    for (int i = 0; i < 9000; ++i) {
      uint64_t dept = rng.Zipf(40, 1.2);
      uint64_t sku = rng.Zipf(300, 1.1);
      uint64_t price = rng.Zipf(20, 1.3) + 1;
      dept_items[dept] += "<item sku=\"s" + std::to_string(sku) +
                          "\" price=\"" + std::to_string(price) + "\"/>";
    }
    std::string x = "<skew><catalog>";
    for (int dept = 0; dept < 40; ++dept) {
      x += "<dept n=\"d" + std::to_string(dept) + "\">" + dept_items[dept] +
           "</dept>";
    }
    x += "</catalog><orders>";
    for (int i = 0; i < 120; ++i) {
      x += "<order ref=\"s" + std::to_string(rng.Zipf(300, 1.1)) +
           "\" qty=\"" + std::to_string(rng.Range(1, 9)) + "\"/>";
    }
    x += "</orders></skew>";
    auto r = d->LoadXml("skew.xml", x);
    EXPECT_TRUE(r.ok());
    return d;
  }();
  return db;
}

TEST(ZipfSkew, PartitionImbalanceByteIdentical) {
  // The queries drive each partitioned kernel through the skewed data:
  // an equi-join on the Zipf sku key, a grouped sum whose hot dept
  // dominates one combine partition, a sort of the hot dept (long tie
  // runs from the Zipf prices), and a skew-selectivity filter.
  const char* kQueries[] = {
      // where-clause form so join recognition fires: the engine runs a
      // radix hash join on the Zipf sku key (the baseline stays a
      // navigational nested loop, which bounds the order count above).
      "sum(for $o in //order return count(for $i in //item "
      "where $i/@sku = $o/@ref return $i))",
      "for $d in //dept return sum($d/item/@price)",
      "for $i in //dept[1]/item order by $i/@price + 0 descending "
      "return string($i/@sku)",
      "count(//item[@price > 3])",
  };
  // Tuning sweeps: radix_bits=1 funnels the hot key's partition-mate
  // keys into one of TWO partitions; radix_bits=12 leaves most of 4096
  // partitions empty; tiny morsel/run grains maximize cross-chunk
  // merge traffic. All must serialize byte-identically to the
  // navigational baseline.
  struct Cfg {
    int threads, pipeline, radix_bits;
    int64_t morsel, sort_chunk;
  };
  const Cfg kCfgs[] = {
      {1, -1, -1, -1, -1},
      {2, 1, 1, 64, 256},
      {2, 0, 12, 64, 256},
      {4, 1, 6, 256, 512},
  };
  baseline::Baseline bl(SkewDb());
  baseline::BaselineOptions bo;
  bo.context_doc = "skew.xml";
  Pathfinder pf(SkewDb());
  for (const char* q : kQueries) {
    SCOPED_TRACE(q);
    auto br = bl.Run(q, bo);
    ASSERT_TRUE(br.ok()) << br.status().ToString();
    auto bs = br->Serialize();
    ASSERT_TRUE(bs.ok());
    for (const Cfg& c : kCfgs) {
      QueryOptions o;
      o.context_doc = "skew.xml";
      o.num_threads = c.threads;
      o.pipeline = c.pipeline;
      o.radix_bits = c.radix_bits;
      o.morsel_rows = c.morsel;
      o.sort_chunk_rows = c.sort_chunk;
      o.profile = 0;
      // Caches off: every config must actually execute the partitioned
      // kernels, not replay the first config's cached result.
      o.plan_cache = 0;
      o.subplan_cache = 0;
      auto pr = pf.Run(q, o);
      ASSERT_TRUE(pr.ok()) << pr.status().ToString()
                           << " threads=" << c.threads;
      auto ps = pr->Serialize();
      ASSERT_TRUE(ps.ok());
      ASSERT_EQ(*ps, *bs) << "threads=" << c.threads
                          << " radix_bits=" << c.radix_bits;
    }
  }
}

// ------------------------------------------------------- update churn --

// Interleave random node updates with generated queries on a private
// database: the incrementally-maintained structures (shred-time stats,
// path summary partitions, repaired query cache) must stay
// byte-identical to the navigational baseline, which recomputes from
// the raw columns on every run. The Pathfinder instance persists
// across rounds so its plan and subplan caches live through every
// mutation — a stale entry surviving an epoch bump, or a bad repair of
// a value-free entry, shows up as a serialization diff.
class UpdateChurnTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Pin the update path on through the test seam, so the suite holds
  // under an ambient PF_UPDATES=0 CI lane too.
  void SetUp() override { xml::SetUpdatesEnabledForTest(1); }
  void TearDown() override { xml::SetUpdatesEnabledForTest(-1); }
};

TEST_P(UpdateChurnTest, EnginesAgreeAcrossChurn) {
  xml::Database db;  // private: churn must not leak into other tests
  ASSERT_TRUE(db.LoadXml("shop.xml", kShopXml).ok());
  Pathfinder pf(&db);
  QueryGen gen(GetParam() * 977 + 1);
  Rng rng(GetParam());
  const char* kFragments[] = {
      "<item sku=\"u1\" price=\"5\">thing</item>",
      "<note>restock</note>",
      "<order ref=\"a2\" qty=\"4\"/>",
      "<dept name=\"misc\"><item sku=\"m1\" price=\"2\">bolt</item></dept>",
  };
  for (int round = 0; round < 8; ++round) {
    // One random mutation per round; picks the update layer would
    // reject (or that would wipe the whole document) are re-rolled.
    bool applied = false;
    for (int attempt = 0; attempt < 64 && !applied; ++attempt) {
      auto frag = db.FindDocument("shop.xml");
      ASSERT_TRUE(frag.ok());
      const xml::Document& cur = db.doc(*frag);
      xml::NodeUpdate u;
      u.target = static_cast<xml::Pre>(1 + rng.Below(cur.num_nodes() - 1));
      switch (rng.Below(3)) {
        case 0:
          u.kind = xml::NodeUpdate::Kind::kInsertChild;
          u.position =
              rng.Chance(0.5) ? -1 : static_cast<int32_t>(rng.Below(4));
          u.xml = kFragments[rng.Below(std::size(kFragments))];
          break;
        case 1:
          u.kind = xml::NodeUpdate::Kind::kDelete;
          break;
        default:
          u.kind = xml::NodeUpdate::Kind::kReplaceValue;
          // Numeric, so @price/@qty arithmetic in generated queries
          // keeps type-checking on both engines.
          u.value = std::to_string(round + 2);
          break;
      }
      if (u.target == 1 && u.kind != xml::NodeUpdate::Kind::kInsertChild) {
        continue;  // keep the root element and its content alive
      }
      if (u.kind == xml::NodeUpdate::Kind::kInsertChild &&
          cur.kind(u.target) != xml::NodeKind::kElem) {
        continue;
      }
      auto r = xml::ApplyUpdate(&db, "shop.xml", u);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      applied = true;
    }
    ASSERT_TRUE(applied) << "no valid mutation found in round " << round;

    for (int i = 0; i < 3; ++i) {
      std::string q = gen.Query();
      SCOPED_TRACE("round " + std::to_string(round) + ": " + q);
      baseline::Baseline bl(&db);
      baseline::BaselineOptions bo;
      bo.context_doc = "shop.xml";
      auto br = bl.Run(q, bo);
      ASSERT_TRUE(br.ok()) << br.status().ToString();
      auto bs = br->Serialize();
      ASSERT_TRUE(bs.ok());
      // Mask 0 runs the process defaults. Mask 1 pins both caches on
      // with repair enabled (content-only churn repairs value-free
      // entries in place); mask 2 pins repair off, so every churn
      // falls back to the epoch bump. Mask 3 runs cache-free with two
      // worker threads.
      for (int mask = 0; mask < 4; ++mask) {
        QueryOptions o;
        o.context_doc = "shop.xml";
        if (mask == 1 || mask == 2) {
          o.plan_cache = 1;
          o.subplan_cache = 1;
          o.cache_repair = mask == 1 ? 1 : 0;
        }
        if (mask == 3) {
          o.plan_cache = 0;
          o.subplan_cache = 0;
          o.num_threads = 2;
        }
        auto pr = pf.Run(q, o);
        ASSERT_TRUE(pr.ok()) << pr.status().ToString() << " mask=" << mask;
        auto ps = pr->Serialize();
        ASSERT_TRUE(ps.ok());
        ASSERT_EQ(*ps, *bs) << "mask=" << mask;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateChurnTest,
                         ::testing::Range<uint64_t>(1, 13));

// Multi-predicate paths must compile to fragments the executor fuses
// as chains of length >= 3 — the generator rules above exist to hit
// this shape, so pin it down on handcrafted instances.
TEST(DeepChainFusion, HandcraftedChainsFuse) {
  Pathfinder pf(ShopDb());
  QueryOptions o;
  o.context_doc = "shop.xml";
  o.pipeline = 1;
  const char* kDeep[] = {
      "//item[@price > 2][@price < 50][contains(@sku, \"a\")]",
      "for $v in //item where $v/@price > 2 and contains($v/@sku, \"t\") "
      "return $v/@sku",
  };
  for (const char* q : kDeep) {
    auto r = pf.Run(q, o);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    EXPECT_GT(r->pipe_stats.fragments, 0) << q;
    EXPECT_GE(r->pipe_stats.max_chain, 3) << q;
  }
}

}  // namespace
}  // namespace pathfinder

// Plan viewer — the demo's "look under the hood" (paper Sec. 4):
// shows every compilation stage of a query: normalized XQuery Core,
// the loop-lifted relational plan, the peephole-optimized plan, and a
// Graphviz rendering.
//
//   ./plan_viewer                          # the paper's Figure 5 query
//   ./plan_viewer 'for $x in (1,2) return <v>{ $x }</v>'
//   ./plan_viewer --dot '//item' > plan.dot

#include <cstdio>
#include <cstring>
#include <string>

#include "algebra/print.h"
#include "api/pathfinder.h"
#include "frontend/ast.h"
#include "opt/optimize.h"
#include "xmark/generator.h"

int main(int argc, char** argv) {
  using namespace pathfinder;

  bool dot_only = false;
  std::string query = "for $v in (10,20) return $v + 100";  // paper Fig. 5
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot_only = true;
    } else {
      query = argv[i];
    }
  }

  // A small XMark instance backs doc()/"/" references.
  xml::Database db;
  auto doc = xmark::GenerateXMark(0.001, 42, db.pool());
  if (!doc.ok()) return 1;
  db.AddDocument("auction.xml", std::move(*doc));

  Pathfinder pf(&db);
  QueryOptions opts;
  opts.context_doc = "auction.xml";

  auto core = pf.Translate(query, opts);
  if (!core.ok()) {
    std::fprintf(stderr, "%s\n", core.status().ToString().c_str());
    return 1;
  }
  compiler::CompileStats cstats;
  auto plan = pf.CompilePlan(*core, opts, &cstats);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  opt::OptimizeStats ostats;
  auto optimized = opt::Optimize(*plan, &ostats);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }

  if (dot_only) {
    std::printf("%s", algebra::PlanToDot(*optimized, *db.pool()).c_str());
    return 0;
  }

  std::printf("==== query ====\n%s\n\n", query.c_str());
  std::printf("==== XQuery Core (normalized) ====\n%s\n",
              frontend::ExprToString(*core).c_str());
  std::printf("==== loop-lifted relational plan (%zu operators"
              ", %d joins recognized) ====\n%s\n",
              algebra::CountOps(*plan), cstats.joins_recognized,
              algebra::PlanToText(*plan, *db.pool()).c_str());
  std::printf("==== after peephole optimization (%zu -> %zu) ====\n%s\n",
              ostats.ops_before, ostats.ops_after,
              algebra::PlanToText(*optimized, *db.pool()).c_str());

  auto result = pf.Run(query, opts);
  if (result.ok()) {
    auto s = result->Serialize();
    std::printf("==== result (%zu items) ====\n%s\n", result->items.size(),
                s.ok() ? s->c_str() : "?");
  } else {
    std::printf("==== execution failed: %s ====\n",
                result.status().ToString().c_str());
  }
  return 0;
}

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/step.h"
#include "base/rng.h"
#include "baseline/dom.h"
#include "xml/parser.h"
#include "xml/tree_builder.h"

namespace pathfinder::accel {
namespace {

using xml::Document;
using xml::Pre;

constexpr Axis kAllAxes[] = {
    Axis::kChild,          Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kSelf,
    Axis::kParent,         Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kPreceding,      Axis::kFollowingSibling,
    Axis::kPrecedingSibling, Axis::kAttribute,
};

class FixtureDoc : public ::testing::Test {
 protected:
  void SetUp() override {
    // <a><b id="1"><c/><d>t</d></b><b id="2"><c/></b><e/></a>
    auto d = xml::ParseXml(
        R"(<a><b id="1"><c/><d>t</d></b><b id="2"><c/></b><e/></a>)",
        &pool_);
    ASSERT_TRUE(d.ok());
    doc_ = std::make_unique<Document>(std::move(*d));
    // pres: 0 doc, 1 a, 2 b, 3 @id, 4 c, 5 d, 6 t, 7 b, 8 @id, 9 c, 10 e
  }

  std::vector<Pre> Step(Pre v, Axis axis, const NodeTest& test) {
    std::vector<Pre> out;
    NaiveStep(*doc_, v, axis, test, &out);
    return out;
  }

  StringPool pool_;
  std::unique_ptr<Document> doc_;
};

TEST_F(FixtureDoc, ChildAxis) {
  EXPECT_EQ(Step(1, Axis::kChild, NodeTest::AnyKind()),
            (std::vector<Pre>{2, 7, 10}));
  EXPECT_EQ(Step(1, Axis::kChild, NodeTest::Name(pool_.Intern("b"))),
            (std::vector<Pre>{2, 7}));
  EXPECT_EQ(Step(2, Axis::kChild, NodeTest::AnyKind()),
            (std::vector<Pre>{4, 5}));  // attribute excluded
}

TEST_F(FixtureDoc, DescendantAxis) {
  EXPECT_EQ(Step(1, Axis::kDescendant, NodeTest::Name(pool_.Intern("c"))),
            (std::vector<Pre>{4, 9}));
  EXPECT_EQ(Step(2, Axis::kDescendant, NodeTest::Text()),
            (std::vector<Pre>{6}));
}

TEST_F(FixtureDoc, AttributeAxis) {
  EXPECT_EQ(Step(2, Axis::kAttribute, NodeTest::AnyKind()),
            (std::vector<Pre>{3}));
  EXPECT_EQ(Step(2, Axis::kAttribute, NodeTest::Name(pool_.Intern("id"))),
            (std::vector<Pre>{3}));
  EXPECT_EQ(Step(2, Axis::kAttribute, NodeTest::Name(pool_.Intern("no"))),
            (std::vector<Pre>{}));
  EXPECT_EQ(Step(1, Axis::kAttribute, NodeTest::AnyKind()),
            (std::vector<Pre>{}));
}

TEST_F(FixtureDoc, ParentAncestor) {
  EXPECT_EQ(Step(4, Axis::kParent, NodeTest::AnyKind()),
            (std::vector<Pre>{2}));
  EXPECT_EQ(Step(6, Axis::kAncestor, NodeTest::Element()),
            (std::vector<Pre>{1, 2, 5}));
  EXPECT_EQ(Step(6, Axis::kAncestorOrSelf, NodeTest::AnyKind()),
            (std::vector<Pre>{0, 1, 2, 5, 6}));
}

TEST_F(FixtureDoc, FollowingPreceding) {
  // following(c at 4): d, t, b, @? (attrs excluded), c, e
  EXPECT_EQ(Step(4, Axis::kFollowing, NodeTest::Element()),
            (std::vector<Pre>{5, 7, 9, 10}));
  // preceding(e at 10): everything before, minus ancestors, no attrs.
  EXPECT_EQ(Step(10, Axis::kPreceding, NodeTest::Element()),
            (std::vector<Pre>{2, 4, 5, 7, 9}));
}

TEST_F(FixtureDoc, Siblings) {
  EXPECT_EQ(Step(7, Axis::kFollowingSibling, NodeTest::AnyKind()),
            (std::vector<Pre>{10}));
  EXPECT_EQ(Step(7, Axis::kPrecedingSibling, NodeTest::AnyKind()),
            (std::vector<Pre>{2}));
  EXPECT_EQ(Step(4, Axis::kFollowingSibling, NodeTest::AnyKind()),
            (std::vector<Pre>{5}));
}

TEST_F(FixtureDoc, SelfAxis) {
  EXPECT_EQ(Step(2, Axis::kSelf, NodeTest::Name(pool_.Intern("b"))),
            (std::vector<Pre>{2}));
  EXPECT_EQ(Step(2, Axis::kSelf, NodeTest::Name(pool_.Intern("c"))),
            (std::vector<Pre>{}));
  EXPECT_EQ(Step(6, Axis::kSelf, NodeTest::Text()),
            (std::vector<Pre>{6}));
}

TEST_F(FixtureDoc, StaircasePruningCountsDescendant) {
  // Contexts {b(2), c(4)}: c is inside b's subtree and must be pruned.
  StaircaseStats stats;
  std::vector<Pre> out;
  StaircaseJoin(*doc_, {2, 4}, Axis::kDescendant, NodeTest::AnyKind(),
                &out, &stats);
  EXPECT_EQ(stats.contexts_pruned, 1u);
  // Attributes are not on the descendant axis.
  EXPECT_EQ(out, (std::vector<Pre>{4, 5, 6}));
}

TEST_F(FixtureDoc, StaircaseFollowingSingleScan) {
  StaircaseStats stats;
  std::vector<Pre> out;
  StaircaseJoin(*doc_, {2, 7}, Axis::kFollowing, NodeTest::Element(),
                &out, &stats);
  // union of following sets == following of the earliest-ending context
  EXPECT_EQ(out, (std::vector<Pre>{7, 9, 10}));
  EXPECT_EQ(stats.contexts_pruned, 1u);
}

// ---------------------------------------------------------------------
// Property: StaircaseJoin == per-context NaiveStep + sort/unique
//           == pointer-DOM navigation, on random trees, for all axes
//           and random context sets.

struct PropertyCase {
  uint64_t seed;
  Axis axis;
};

class StepEquivalenceTest
    : public ::testing::TestWithParam<PropertyCase> {};

void BuildRandom(Rng* rng, xml::TreeBuilder* b, int depth) {
  int kids = static_cast<int>(rng->Range(0, depth > 4 ? 1 : 4));
  for (int i = 0; i < kids; ++i) {
    switch (rng->Below(5)) {
      case 0:
        b->Text("x");
        break;
      case 1:
        b->Comment("c");
        break;
      default: {
        b->StartElem("e" + std::to_string(rng->Below(4)));
        int attrs = static_cast<int>(rng->Range(0, 2));
        for (int a = 0; a < attrs; ++a) {
          b->Attr("k" + std::to_string(a), "v");
        }
        BuildRandom(rng, b, depth + 1);
        b->EndElem();
        break;
      }
    }
  }
}

TEST_P(StepEquivalenceTest, ThreeWayAgreement) {
  const auto& param = GetParam();
  StringPool pool;
  Rng rng(param.seed);
  xml::TreeBuilder builder(&pool);
  builder.StartElem("root");
  BuildRandom(&rng, &builder, 0);
  builder.EndElem();
  Document doc = std::move(builder).Finish().value();
  std::string err;
  ASSERT_TRUE(doc.Validate(&err)) << err;

  baseline::Dom dom(doc);

  // Random node tests to sweep.
  std::vector<NodeTest> tests = {
      NodeTest::AnyKind(), NodeTest::Element(), NodeTest::Text(),
      NodeTest::Name(pool.Intern("e1")),
      NodeTest::Name(pool.Intern("k0")),
  };

  for (const NodeTest& test : tests) {
    // Random sorted duplicate-free context set (non-attr nodes; steps
    // from attributes are exercised separately).
    std::vector<Pre> contexts;
    for (Pre v = 0; v < doc.num_nodes(); ++v) {
      if (doc.IsAttr(v)) continue;
      if (rng.Chance(0.3)) contexts.push_back(v);
    }
    if (contexts.empty()) contexts.push_back(0);

    std::vector<Pre> staircase;
    StaircaseJoin(doc, contexts, param.axis, test, &staircase);

    std::vector<Pre> naive;
    for (Pre c : contexts) NaiveStep(doc, c, param.axis, test, &naive);
    std::sort(naive.begin(), naive.end());
    naive.erase(std::unique(naive.begin(), naive.end()), naive.end());

    std::vector<Pre> via_dom;
    {
      std::vector<baseline::DomNode*> nodes;
      for (Pre c : contexts) {
        baseline::DomStep(dom.node(c), param.axis, test, &nodes);
      }
      for (auto* n : nodes) via_dom.push_back(n->pre);
      std::sort(via_dom.begin(), via_dom.end());
      via_dom.erase(std::unique(via_dom.begin(), via_dom.end()),
                    via_dom.end());
    }

    EXPECT_EQ(staircase, naive)
        << "axis=" << AxisName(param.axis) << " test "
        << test.ToString(pool) << " seed=" << param.seed;
    EXPECT_EQ(staircase, via_dom)
        << "axis=" << AxisName(param.axis) << " (DOM) seed=" << param.seed;

    // Staircase output must be sorted and duplicate-free.
    EXPECT_TRUE(std::is_sorted(staircase.begin(), staircase.end()));
    EXPECT_TRUE(std::adjacent_find(staircase.begin(), staircase.end()) ==
                staircase.end());
  }
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (Axis axis : kAllAxes) {
      cases.push_back({seed, axis});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, StepEquivalenceTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = std::string(AxisName(info.param.axis)) + "_s" +
                         std::to_string(info.param.seed);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Steps from attribute contexts (parent/ancestor/self).
TEST(AttributeContextTest, ParentOfAttribute) {
  StringPool pool;
  auto doc = xml::ParseXml(R"(<a><b id="7"/></a>)", &pool).value();
  std::vector<Pre> out;
  NaiveStep(doc, 3, Axis::kParent, NodeTest::AnyKind(), &out);
  EXPECT_EQ(out, (std::vector<Pre>{2}));
  out.clear();
  NaiveStep(doc, 3, Axis::kSelf, NodeTest::AnyKind(), &out);
  EXPECT_EQ(out, (std::vector<Pre>{3}));
  out.clear();
  NaiveStep(doc, 3, Axis::kFollowingSibling, NodeTest::AnyKind(), &out);
  EXPECT_TRUE(out.empty());  // attributes have no siblings
}

TEST(AxisMetaTest, NamesAndDirections) {
  EXPECT_STREQ(AxisName(Axis::kDescendant), "descendant");
  EXPECT_TRUE(AxisIsForward(Axis::kChild));
  EXPECT_FALSE(AxisIsForward(Axis::kAncestor));
  EXPECT_FALSE(AxisIsForward(Axis::kPreceding));
  EXPECT_TRUE(AxisIsForward(Axis::kAttribute));
}

}  // namespace
}  // namespace pathfinder::accel

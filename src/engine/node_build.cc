#include "engine/node_build.h"

#include "bat/item_ops.h"

namespace pathfinder::engine {

using xml::Document;
using xml::NodeKind;
using xml::Pre;
using xml::TreeBuilder;

namespace {

/// Copy the subtree of `src` rooted at `v` into `builder`, reading
/// names/contents through `pool` (the shared database pool, so the
/// Intern calls inside the builder are cheap id lookups).
void CopyRec(const Document& src, Pre v, const StringPool& pool,
             TreeBuilder* builder) {
  switch (src.kind(v)) {
    case NodeKind::kDoc: {
      // Document nodes are transparent: copy their children.
      Pre end = v + src.size(v);
      Pre w = v + 1;
      while (w <= end) {
        CopyRec(src, w, pool, builder);
        w += src.size(w) + 1;
      }
      return;
    }
    case NodeKind::kElem: {
      builder->StartElem(pool.Get(src.prop(v)));
      Pre end = v + src.size(v);
      Pre w = v + 1;
      while (w <= end) {
        CopyRec(src, w, pool, builder);
        w += src.size(w) + 1;
      }
      builder->EndElem();
      return;
    }
    case NodeKind::kAttr:
      builder->Attr(pool.Get(src.prop(v)), pool.Get(src.value(v)));
      return;
    case NodeKind::kText:
      builder->Text(pool.Get(src.value(v)));
      return;
    case NodeKind::kComment:
      builder->Comment(pool.Get(src.value(v)));
      return;
    case NodeKind::kPi:
      builder->Pi(pool.Get(src.prop(v)), pool.Get(src.value(v)));
      return;
  }
}

}  // namespace

void CopySubtree(const Document& src, Pre v, TreeBuilder* builder) {
  CopyRec(src, v, *builder->pool(), builder);
}

Result<Item> BuildElement(QueryContext* ctx, const std::string& name,
                          const std::vector<Item>& items) {
  const StringPool& pool = *ctx->pool();
  TreeBuilder b(ctx->pool());
  b.StartElem(name);

  // Attributes first (attribute items are hoisted regardless of their
  // position in the content sequence).
  for (const Item& it : items) {
    if (it.kind != ItemKind::kAttr) continue;
    const Document& d = ctx->doc(it.NodeFrag());
    Pre v = it.NodePre();
    b.Attr(pool.Get(d.prop(v)), pool.Get(d.value(v)));
  }

  std::string atomic_run;
  bool have_atomic = false;
  auto flush_atomics = [&]() {
    if (have_atomic) {
      b.Text(atomic_run);
      atomic_run.clear();
      have_atomic = false;
    }
  };

  for (const Item& it : items) {
    if (it.kind == ItemKind::kAttr) continue;
    if (it.kind == ItemKind::kNode) {
      flush_atomics();
      CopyRec(ctx->doc(it.NodeFrag()), it.NodePre(), pool, &b);
      continue;
    }
    // Atomic: adjacent atomics join with a single space into one text
    // node (XQuery content construction rules).
    PF_ASSIGN_OR_RETURN(StrId s, bat::ItemToString(it, ctx->pool()));
    if (have_atomic) atomic_run += ' ';
    atomic_run += ctx->pool()->Get(s);
    have_atomic = true;
  }
  flush_atomics();

  b.EndElem();
  PF_ASSIGN_OR_RETURN(Document doc, std::move(b).Finish());
  xml::FragId frag = ctx->AddFragment(std::move(doc));
  return Item::Node(frag, 1);  // the element sits at pre 1
}

Item BuildText(QueryContext* ctx, const std::string& content) {
  TreeBuilder b(ctx->pool());
  // A wrapper element keeps the TreeBuilder invariants; the text node
  // itself is at pre 2 and is what the item references.
  b.StartElem("fs:text-wrapper");
  b.Text(content);
  b.EndElem();
  Document doc = std::move(b).Finish().value();
  xml::FragId frag = ctx->AddFragment(std::move(doc));
  return Item::Node(frag, 2);
}

Item BuildAttribute(QueryContext* ctx, const std::string& name,
                    const std::string& value) {
  TreeBuilder b(ctx->pool());
  b.StartElem("fs:attr-wrapper");
  b.Attr(name, value);
  b.EndElem();
  Document doc = std::move(b).Finish().value();
  xml::FragId frag = ctx->AddFragment(std::move(doc));
  return Item::Attr(frag, 2);
}

std::string NodeStringValue(const QueryContext& ctx, const Item& node) {
  const Document& d = ctx.doc(node.NodeFrag());
  return d.StringValue(node.NodePre(), ctx.pool());
}

}  // namespace pathfinder::engine

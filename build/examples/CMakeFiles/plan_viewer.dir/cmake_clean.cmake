file(REMOVE_RECURSE
  "CMakeFiles/plan_viewer.dir/plan_viewer.cpp.o"
  "CMakeFiles/plan_viewer.dir/plan_viewer.cpp.o.d"
  "plan_viewer"
  "plan_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "opt/cost.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "opt/optimize.h"
#include "xml/database.h"
#include "xml/document.h"
#include "xml/stats.h"

namespace pathfinder::opt {

using algebra::Op;
using algebra::OpKind;

namespace {

constexpr double kRowFloor = 0.05;

double KnownNdv(const OpEstimate& e, const std::string& col) {
  auto it = e.ndv.find(col);
  return it == e.ndv.end() ? -1.0 : it->second;
}

/// Axes the path summary can resolve exactly (xml/path_summary.h).
bool StructuralStepAxis(accel::Axis a) {
  return a == accel::Axis::kChild || a == accel::Axis::kDescendant ||
         a == accel::Axis::kDescendantOrSelf || a == accel::Axis::kSelf ||
         a == accel::Axis::kAttribute;
}

xml::PathSummary::StepAxis SumAxis(accel::Axis a) {
  switch (a) {
    case accel::Axis::kDescendant:
      return xml::PathSummary::StepAxis::kDescendant;
    case accel::Axis::kDescendantOrSelf:
      return xml::PathSummary::StepAxis::kDescendantOrSelf;
    case accel::Axis::kSelf:
      return xml::PathSummary::StepAxis::kSelf;
    case accel::Axis::kAttribute:
      return xml::PathSummary::StepAxis::kAttribute;
    default:
      return xml::PathSummary::StepAxis::kChild;
  }
}

xml::PathSummary::StepTest SumTest(accel::NodeTest::Kind k) {
  switch (k) {
    case accel::NodeTest::Kind::kName:
      return xml::PathSummary::StepTest::kName;
    case accel::NodeTest::Kind::kElement:
      return xml::PathSummary::StepTest::kElement;
    default:
      return xml::PathSummary::StepTest::kAnyNode;
  }
}

}  // namespace

double CardinalityEstimator::Clamp(double rows) {
  return std::max(rows, kRowFloor);
}

double CardinalityEstimator::EquiJoinRows(const OpEstimate& l,
                                          const std::string& lcol,
                                          const OpEstimate& r,
                                          const std::string& rcol) {
  double ln = KnownNdv(l, lcol);
  double rn = KnownNdv(r, rcol);
  double denom;
  if (ln > 0 && rn > 0) {
    denom = std::max(ln, rn);
  } else if (ln > 0 || rn > 0) {
    denom = std::max(ln, rn);
  } else {
    denom = std::sqrt(std::max(l.rows, r.rows));
  }
  denom = std::max(denom, 1.0);
  return Clamp(l.rows * r.rows / denom);
}

double CardinalityEstimator::ThetaJoinRows(double lrows, double rrows) {
  return Clamp(lrows * rrows / 3.0);
}

CardinalityEstimator::CardinalityEstimator(const xml::Database* db,
                                           int use_path_summary) {
  if (db == nullptr) return;
  bool use_paths =
      use_path_summary < 0 ? PathSumDefault() : use_path_summary != 0;
  size_t n = db->num_documents();
  for (size_t i = 0; i < n; ++i) {
    if (use_paths) {
      auto sp = db->doc(static_cast<xml::FragId>(i)).shared_summary();
      if (sp != nullptr) summaries_.push_back(std::move(sp));
    }
    const xml::DocStats* s = db->doc(static_cast<xml::FragId>(i)).stats();
    if (s == nullptr) continue;
    store_.docs += 1;
    store_.total_nodes += static_cast<double>(s->total_nodes);
    store_.elems += static_cast<double>(
        s->kind_counts[static_cast<size_t>(xml::NodeKind::kElem)]);
    store_.texts += static_cast<double>(
        s->kind_counts[static_cast<size_t>(xml::NodeKind::kText)]);
    for (const auto& [tag, ts] : s->tags) {
      store_.tag_count[tag] += static_cast<double>(ts.count);
      store_.tag_text_ndv[tag] += static_cast<double>(ts.distinct_text_values);
      store_.tag_subtree[tag] += static_cast<double>(ts.subtree_nodes);
      auto& tm = store_.tag_text_max[tag];
      tm = std::max(tm, static_cast<double>(ts.max_text_children));
    }
    for (const auto& [name, as] : s->attrs) {
      store_.attr_count[name] += static_cast<double>(as.count);
      store_.attr_ndv[name] += static_cast<double>(as.distinct_values);
      auto& am = store_.attr_max_owner[name];
      am = std::max(am, static_cast<double>(as.max_per_owner));
    }
    for (const auto& [key, mx] : s->max_children) {
      auto& em = store_.edge_max[key];
      em = std::max(em, static_cast<double>(mx));
    }
  }
}

const OpEstimate& CardinalityEstimator::Estimate(const Op* op) {
  auto it = memo_.find(op);
  if (it != memo_.end()) return it->second;
  OpEstimate e = Compute(op);
  e.rows = Clamp(e.rows);
  for (auto& [col, n] : e.ndv) n = std::min(n, e.rows);
  return memo_.emplace(op, std::move(e)).first->second;
}

OpEstimate CardinalityEstimator::Compute(const Op* op) {
  auto child = [&](size_t i) -> const OpEstimate& {
    return Estimate(op->children[i].get());
  };
  OpEstimate e;
  switch (op->kind) {
    case OpKind::kLitTable: {
      e.rows = static_cast<double>(op->rows.size());
      for (size_t c = 0; c < op->names.size(); ++c) {
        std::set<std::pair<uint8_t, uint64_t>> vals;
        for (const auto& row : op->rows) {
          vals.emplace(static_cast<uint8_t>(row[c].kind), row[c].raw);
        }
        e.ndv[op->names[c]] = static_cast<double>(vals.size());
      }
      return e;
    }
    case OpKind::kProject: {
      const OpEstimate& c = child(0);
      e.rows = c.rows;
      for (const auto& [nw, old] : op->proj) {
        if (double n = KnownNdv(c, old); n > 0) e.ndv[nw] = n;
        if (auto t = c.tag.find(old); t != c.tag.end()) e.tag[nw] = t->second;
        if (auto p = c.paths.find(old); p != c.paths.end()) {
          e.paths[nw] = p->second;
        }
      }
      return e;
    }
    case OpKind::kAttach: {
      e = child(0);
      e.ndv[op->out] = 1.0;
      return e;
    }
    case OpKind::kSelect: {
      e = child(0);
      e.rows = Clamp(e.rows * 0.5);
      return e;
    }
    case OpKind::kDisjointUnion: {
      const OpEstimate& a = child(0);
      const OpEstimate& b = child(1);
      e.rows = a.rows + b.rows;
      for (const auto& [col, n] : a.ndv) {
        if (double m = KnownNdv(b, col); m > 0) e.ndv[col] = n + m;
      }
      return e;
    }
    case OpKind::kDifference: {
      e = child(0);
      child(1);  // memoize the subtrahend too
      e.rows = Clamp(e.rows * 0.5);
      return e;
    }
    case OpKind::kDistinct: {
      const OpEstimate& c = child(0);
      double prod = 1.0;
      for (const auto& k : op->keys) {
        double n = KnownNdv(c, k);
        prod *= n > 0 ? n : std::sqrt(std::max(c.rows, 1.0));
      }
      e = c;
      e.rows = Clamp(std::min(c.rows, prod));
      return e;
    }
    case OpKind::kEquiJoin: {
      const OpEstimate& l = child(0);
      const OpEstimate& r = child(1);
      e.rows = EquiJoinRows(l, op->col, r, op->col2);
      e.ndv = l.ndv;
      e.ndv.insert(r.ndv.begin(), r.ndv.end());
      e.tag = l.tag;
      e.tag.insert(r.tag.begin(), r.tag.end());
      e.paths = l.paths;
      e.paths.insert(r.paths.begin(), r.paths.end());
      return e;
    }
    case OpKind::kThetaJoin:
    case OpKind::kCross: {
      const OpEstimate& l = child(0);
      const OpEstimate& r = child(1);
      e.rows = op->kind == OpKind::kCross ? l.rows * r.rows
                                          : ThetaJoinRows(l.rows, r.rows);
      e.ndv = l.ndv;
      e.ndv.insert(r.ndv.begin(), r.ndv.end());
      e.tag = l.tag;
      e.tag.insert(r.tag.begin(), r.tag.end());
      e.paths = l.paths;
      e.paths.insert(r.paths.begin(), r.paths.end());
      return e;
    }
    case OpKind::kRowNum:
    case OpKind::kRank: {
      e = child(0);
      e.ndv[op->out] = e.rows;
      return e;
    }
    case OpKind::kSort:
    case OpKind::kSerialize:
      return child(0);
    case OpKind::kStep: {
      const OpEstimate& c = child(0);
      bool have = store_.total_nodes > 0;

      // Population of nodes matching the test.
      double cnt;
      double value_ndv = -1.0;  // distinct *values*, when measurable
      bool sets_tag = false;
      switch (op->test.kind) {
        case accel::NodeTest::Kind::kName:
          if (op->axis == accel::Axis::kAttribute) {
            cnt = store_.AttrCount(op->test.name);
            if (auto a = store_.attr_ndv.find(op->test.name);
                a != store_.attr_ndv.end()) {
              value_ndv = a->second;
            }
          } else {
            cnt = store_.TagCount(op->test.name);
            sets_tag = true;
          }
          break;
        case accel::NodeTest::Kind::kText:
          cnt = store_.texts;
          if (auto t = c.tag.find("item"); t != c.tag.end()) {
            if (auto v = store_.tag_text_ndv.find(t->second);
                v != store_.tag_text_ndv.end()) {
              value_ndv = v->second;
            }
          }
          break;
        case accel::NodeTest::Kind::kElement:
          cnt = store_.elems;
          break;
        case accel::NodeTest::Kind::kAnyKind:
          cnt = store_.total_nodes;
          break;
        default:  // comments / PIs: rare
          cnt = std::max(1.0, store_.total_nodes * 0.001);
          break;
      }

      // Tag provenance of the context items: when the input column is
      // known to hold P-tagged elements (or document roots), fan-outs
      // become per-P ratios capped by the measured structural maxima,
      // instead of store-wide averages. This is what keeps the deep
      // root-to-leaf step chains of loop-lifted plans from collapsing
      // to the row floor: child::site from the document node is 1 per
      // doc, not count(site)/count(elements).
      double parent_pop = -1.0;
      StrId ptag = 0;
      if (auto t = c.tag.find("item"); t != c.tag.end()) {
        ptag = t->second;
        parent_pop = ptag == xml::DocStats::kDocParent
                         ? store_.docs
                         : store_.TagCount(ptag);
      }
      auto avg_subtree = [&]() -> double {
        if (ptag == xml::DocStats::kDocParent) {
          return store_.total_nodes / std::max(store_.docs, 1.0);
        }
        auto it = store_.tag_subtree.find(ptag);
        return it == store_.tag_subtree.end()
                   ? -1.0
                   : it->second / std::max(parent_pop, 1.0);
      };

      // Per-context fan-out by axis.
      double share = have ? cnt / std::max(store_.total_nodes, 1.0) : 0.5;
      double f;
      switch (op->axis) {
        case accel::Axis::kSelf:
          f = share;
          break;
        case accel::Axis::kParent:
          f = op->test.kind == accel::NodeTest::Kind::kName
                  ? std::min(1.0, 16.0 * share)
                  : 1.0;
          break;
        case accel::Axis::kChild:
        case accel::Axis::kAttribute:
          f = have ? cnt / std::max(store_.elems, 1.0) : 2.0;
          if (have && parent_pop > 0) {
            double fp = cnt / parent_pop;
            double cap = -1.0;
            if (op->axis == accel::Axis::kAttribute) {
              auto it = store_.attr_max_owner.find(op->test.name);
              cap = it == store_.attr_max_owner.end() ? 0.0 : it->second;
            } else if (op->test.kind == accel::NodeTest::Kind::kName) {
              auto it = store_.edge_max.find(
                  xml::DocStats::EdgeKey(ptag, op->test.name));
              cap = it == store_.edge_max.end() ? 0.0 : it->second;
            } else if (op->test.kind == accel::NodeTest::Kind::kText) {
              auto it = store_.tag_text_max.find(ptag);
              cap = it == store_.tag_text_max.end() ? 0.0 : it->second;
            } else if (double s = avg_subtree(); s > 0) {
              cap = s;  // elements/nodes: bounded by the subtree size
            }
            if (cap >= 0) fp = std::min(fp, cap);
            f = fp;
          }
          break;
        case accel::Axis::kDescendant:
        case accel::Axis::kDescendantOrSelf:
          // Loop-lifted descendant steps overwhelmingly run from the
          // document root(s): fan-out is the whole matching population.
          f = have ? cnt / std::max(store_.docs, 1.0) : 8.0;
          if (have && parent_pop > 0) {
            double fp = cnt / parent_pop;
            if (double s = avg_subtree(); s > 0) fp = std::min(fp, s);
            f = fp;
          }
          break;
        case accel::Axis::kAncestor:
        case accel::Axis::kAncestorOrSelf:
          f = op->test.kind == accel::NodeTest::Kind::kName
                  ? std::min(4.0, 64.0 * share)
                  : 4.0;
          break;
        default:  // siblings, following, preceding
          f = have ? std::max(1.0, cnt / std::max(store_.elems, 1.0)) : 2.0;
          break;
      }
      // Path-summary refinement (PF_PATHSUM): when the context items
      // carry path provenance and the step is structural, the fan-out
      // is the *exact* path-level count ratio — distinct labeled paths
      // replace the tag-count heuristics above (a `child::item` from
      // africa-path elements no longer shares its estimate with the
      // five other region subtrees).
      const PathProv* prov = nullptr;
      if (!summaries_.empty()) {
        if (auto p = c.paths.find("item"); p != c.paths.end()) {
          prov = &p->second;
        }
      }
      double exact_pop = -1.0;
      bool prov_exact =
          StructuralStepAxis(op->axis) &&
          (op->test.kind == accel::NodeTest::Kind::kName ||
           op->test.kind == accel::NodeTest::Kind::kElement ||
           (op->axis == accel::Axis::kAttribute &&
            op->test.kind == accel::NodeTest::Kind::kAnyKind));
      if (prov != nullptr && prov_exact) {
        double in_cnt = 0.0;
        double out_cnt = 0.0;
        PathProv out_prov;
        for (const auto& [sum, pset] : *prov) {
          in_cnt += static_cast<double>(sum->CountOf(pset));
          std::vector<int32_t> out_set;
          sum->ResolveStep(SumAxis(op->axis), SumTest(op->test.kind),
                           op->test.name, pset, &out_set);
          out_cnt += static_cast<double>(sum->CountOf(out_set));
          out_prov.emplace_back(sum, std::move(out_set));
        }
        if (in_cnt > 0) {
          f = out_cnt / in_cnt;
          exact_pop = out_cnt;
        }
        e.paths["item"] = std::move(out_prov);
      } else if (prov != nullptr && op->axis == accel::Axis::kChild &&
                 op->test.kind == accel::NodeTest::Kind::kText) {
        // child::text(): the summary records direct text children per
        // path, so this fan-out is exact too (no path provenance out —
        // text nodes have no summary paths).
        double in_cnt = 0.0;
        double out_cnt = 0.0;
        for (const auto& [sum, pset] : *prov) {
          in_cnt += static_cast<double>(sum->CountOf(pset));
          out_cnt += static_cast<double>(sum->TextCountOf(pset));
        }
        if (in_cnt > 0) {
          f = out_cnt / in_cnt;
          exact_pop = out_cnt;
        }
      }
      e.rows = Clamp(c.rows * std::max(f, 0.001));
      if (double n = KnownNdv(c, "iter"); n > 0) e.ndv["iter"] = n;
      double item_ndv = value_ndv > 0 ? value_ndv
                        : exact_pop >= 0 ? std::max(exact_pop, 1.0)
                        : have           ? std::max(cnt, 1.0)
                                         : e.rows;
      e.ndv["item"] = item_ndv;
      if (sets_tag) e.tag["item"] = op->test.name;
      return e;
    }
    case OpKind::kDocRoot: {
      const OpEstimate& c = child(0);
      e.rows = c.rows;
      if (double n = KnownNdv(c, "iter"); n > 0) e.ndv["iter"] = n;
      e.ndv["item"] = std::max(store_.docs, 1.0);
      e.tag["item"] = xml::DocStats::kDocParent;
      if (!summaries_.empty()) {
        PathProv prov;
        for (const auto& s : summaries_) {
          prov.emplace_back(s.get(), std::vector<int32_t>{0});
        }
        e.paths["item"] = std::move(prov);
      }
      return e;
    }
    case OpKind::kPathScan: {
      const OpEstimate& c = child(0);
      if (double n = KnownNdv(c, "iter"); n > 0) e.ndv["iter"] = n;
      const algebra::PathStep& last = op->path.back();
      // Distinct *values*, when measurable: a chain ending in an
      // attribute step yields attribute values downstream (joins and
      // distincts care about value NDV, not node count), exactly like
      // the kStep case above.
      double value_ndv = -1.0;
      if (last.axis == accel::Axis::kAttribute &&
          last.test.kind == accel::NodeTest::Kind::kName) {
        if (auto a = store_.attr_ndv.find(last.test.name);
            a != store_.attr_ndv.end()) {
          value_ndv = a->second;
        }
      }
      double f = -1.0;
      if (!summaries_.empty()) {
        if (auto p = c.paths.find("item"); p != c.paths.end()) {
          // Resolve the whole chain per summary: output rows are exact
          // (the operator is *defined* as this resolution).
          double in_cnt = 0.0;
          double out_cnt = 0.0;
          PathProv out_prov;
          for (const auto& [sum, pset] : p->second) {
            in_cnt += static_cast<double>(sum->CountOf(pset));
            std::vector<int32_t> cur = pset;
            std::vector<int32_t> next;
            for (const algebra::PathStep& s : op->path) {
              sum->ResolveStep(SumAxis(s.axis), SumTest(s.test.kind),
                               s.test.name, cur, &next);
              cur.swap(next);
            }
            out_cnt += static_cast<double>(sum->CountOf(cur));
            out_prov.emplace_back(sum, std::move(cur));
          }
          if (in_cnt > 0) {
            f = out_cnt / in_cnt;
            e.ndv["item"] =
                value_ndv > 0 ? value_ndv : std::max(out_cnt, 1.0);
          }
          e.paths["item"] = std::move(out_prov);
        }
      }
      if (f < 0) {
        // No provenance (summaries off or absent): fall back to the
        // final test's store-wide population per document, like a
        // root-anchored descendant step.
        double cnt;
        if (last.test.kind == accel::NodeTest::Kind::kName) {
          cnt = last.axis == accel::Axis::kAttribute
                    ? store_.AttrCount(last.test.name)
                    : store_.TagCount(last.test.name);
        } else {
          cnt = store_.elems;
        }
        f = cnt / std::max(store_.docs, 1.0);
        if (store_.total_nodes > 0) {
          e.ndv["item"] =
              value_ndv > 0 ? value_ndv : std::max(cnt, 1.0);
        }
      }
      e.rows = Clamp(c.rows * std::max(f, 0.001));
      if (e.ndv.find("item") == e.ndv.end()) e.ndv["item"] = e.rows;
      if (last.test.kind == accel::NodeTest::Kind::kName &&
          last.axis != accel::Axis::kAttribute) {
        e.tag["item"] = last.test.name;
      }
      return e;
    }
    case OpKind::kElemConstr: {
      const OpEstimate& c = child(0);
      child(1);
      e.rows = c.rows;
      if (double n = KnownNdv(c, "iter"); n > 0) e.ndv["iter"] = n;
      e.ndv["item"] = e.rows;  // fresh nodes
      return e;
    }
    case OpKind::kTextConstr:
    case OpKind::kAttrConstr:
    case OpKind::kStrJoin: {
      const OpEstimate& c = child(0);
      if (op->children.size() > 1) child(1);
      double iters = KnownNdv(c, "iter");
      e.rows = iters > 0 ? std::min(iters, c.rows) : Clamp(c.rows * 0.3);
      e.ndv["iter"] = e.rows;
      e.ndv["item"] = e.rows;
      return e;
    }
    case OpKind::kFun1: {
      e = child(0);
      e.ndv.erase(op->out);
      e.tag.erase(op->out);
      e.paths.erase(op->out);
      // Atomization and casts are value-preserving maps: the output
      // inherits the input column's value distribution.
      if (op->fun1 == algebra::Fun1::kData ||
          op->fun1 == algebra::Fun1::kStringFn ||
          op->fun1 == algebra::Fun1::kNumberFn) {
        if (double n = KnownNdv(e, op->col); n > 0) e.ndv[op->out] = n;
      }
      return e;
    }
    case OpKind::kFun2: {
      e = child(0);
      e.ndv.erase(op->out);
      e.tag.erase(op->out);
      e.paths.erase(op->out);
      return e;
    }
    case OpKind::kAggr: {
      const OpEstimate& c = child(0);
      double groups = KnownNdv(c, op->col);
      e.rows = groups > 0 ? std::min(groups, c.rows)
                          : Clamp(std::sqrt(std::max(c.rows, 1.0)));
      e.ndv[op->col] = e.rows;
      return e;
    }
  }
  return e;
}

std::unordered_map<int, double> EstimatePlanCards(const algebra::OpPtr& root,
                                                  const xml::Database* db,
                                                  int use_path_summary) {
  CardinalityEstimator est(db, use_path_summary);
  std::unordered_map<int, double> out;
  for (Op* op : algebra::TopoOrder(root)) {
    out[op->id] = est.Estimate(op).rows;
  }
  return out;
}

}  // namespace pathfinder::opt

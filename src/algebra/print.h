#ifndef PATHFINDER_ALGEBRA_PRINT_H_
#define PATHFINDER_ALGEBRA_PRINT_H_

#include <string>

#include "algebra/op.h"
#include "base/string_pool.h"

namespace pathfinder::algebra {

/// One-line description of a single operator (kind + parameters),
/// e.g. "rownum pos1:<iter>/pos" or "scjoin descendant::item".
std::string OpLabel(const Op& op, const StringPool& pool);

/// Indented text rendering of the plan DAG. Shared subplans are printed
/// once and referenced as "^<id>" afterwards (plans are DAGs, paper
/// Sec. 2).
std::string PlanToText(const OpPtr& root, const StringPool& pool);

/// Graphviz dot rendering (the demo's "graphical output of relational
/// query plans", paper Sec. 4 / Fig. 5).
std::string PlanToDot(const OpPtr& root, const StringPool& pool);

}  // namespace pathfinder::algebra

#endif  // PATHFINDER_ALGEBRA_PRINT_H_

#ifndef PATHFINDER_XMARK_QUERIES_H_
#define PATHFINDER_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace pathfinder::xmark {

/// One XMark benchmark query (paper [10]), expressed in the dialect of
/// paper Table 2. Leading "/" refers to the query's context document
/// (set QueryOptions/BaselineOptions::context_doc to the XMark doc).
struct XMarkQuery {
  int number;          // 1..20
  const char* title;   // short description from the XMark suite
  const char* text;    // query text
};

/// All 20 queries, in order.
const std::vector<XMarkQuery>& XMarkQueries();

/// Query by number (1-based); terminates on out-of-range.
const XMarkQuery& GetXMarkQuery(int number);

}  // namespace pathfinder::xmark

#endif  // PATHFINDER_XMARK_QUERIES_H_

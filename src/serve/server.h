#ifndef PATHFINDER_SERVE_SERVER_H_
#define PATHFINDER_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/pathfinder.h"
#include "serve/hooks.h"
#include "serve/protocol.h"
#include "xml/database.h"

namespace pathfinder::serve {

/// Cumulative server counters (a consistent-enough snapshot of atomics;
/// also exposed on the wire by the "stats" verb).
struct ServerStats {
  int64_t connections = 0;      // accepted TCP connections, ever
  int64_t live_sessions = 0;    // currently connected
  int64_t requests = 0;         // frames parsed or rejected
  int64_t protocol_errors = 0;  // malformed/oversized frames
  int64_t registers = 0;        // successful document registrations
  int64_t queries = 0;          // query frames admitted or rejected
  int64_t updates = 0;          // update frames admitted or rejected
  int64_t updates_applied = 0;  // updates that produced a new snapshot
  int64_t queued = 0;           // waiting in the admission queue (gauge)
  int64_t inflight = 0;         // executing right now (gauge)
  int64_t completed = 0;        // query responses with ok=true
  int64_t cancelled = 0;        // queries ended by cancellation
  int64_t timeouts = 0;         // queries ended by the wall-time budget
  int64_t mem_rejects = 0;      // queries ended by the memory budget
  int64_t busy_rejects = 0;     // admission-queue overflow replies
  int64_t failed = 0;           // other error responses (invalid_query, ...)
  int64_t disconnects = 0;      // sessions that ended
  int64_t plan_cache_hits = 0;  // across all completed queries
  int64_t subplan_cache_hits = 0;
};

/// A long-lived multi-client query server in front of api::Pathfinder:
/// newline-delimited JSON over TCP (see protocol.h), one reader thread
/// per connection, a bounded admission queue feeding `max_inflight`
/// executor workers (each of which runs morsel-parallel kernels on the
/// shared process thread pool), per-query wall-time and memory budgets
/// enforced through engine::CancelToken checkpoints, client-initiated
/// cancellation, and graceful drain: Shutdown() stops accepting work,
/// lets everything already admitted finish, then closes every
/// connection and joins every thread.
///
/// All clients share one xml::Database and one Pathfinder (hence one
/// cross-query plan/subplan cache — the cross-client hit rate it was
/// built for).
class Server {
 public:
  struct Options {
    /// TCP port to listen on (loopback). 0 = ephemeral; read the
    /// bound port from port() after Start().
    int port = 0;
    /// Concurrent-query cap: number of executor workers.
    int max_inflight = 4;
    /// Admission-queue depth beyond the inflight workers; a query
    /// arriving with the queue full gets a typed "busy" error.
    int queue_depth = 64;
    /// Per-query wall-time budget in ms (0 = unlimited).
    int64_t timeout_ms = 0;
    /// Per-query materialized-bytes budget in MiB (0 = unlimited).
    int64_t mem_mb = 0;
    /// Frame cap per request/response line.
    size_t max_line_bytes = kDefaultMaxLineBytes;
    /// Base options applied to every query (context_doc and the wire
    /// fields are overridden per request; timeout/mem/token/probe are
    /// owned by the server).
    QueryOptions query_options;
    /// Fault-injection seams (tests); not owned, may be nullptr.
    const ServeTestHooks* hooks = nullptr;

    /// Defaults overridden by PF_SERVE_MAX_INFLIGHT, PF_SERVE_QUEUE,
    /// PF_SERVE_TIMEOUT_MS, PF_SERVE_MEM_MB, PF_SERVE_MAX_LINE_MB.
    static Options FromEnv();
  };

  /// The database is shared and externally owned; registrations from
  /// any client are visible to all (and to direct API users).
  Server(xml::Database* db, Options opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop + worker pool.
  Status Start();

  /// Graceful drain: reject new connections and queries, finish the
  /// admitted ones, flush their responses, close every session, join
  /// every thread. Idempotent; also run by the destructor.
  void Shutdown();

  /// The bound TCP port (after Start()).
  int port() const { return port_; }

  ServerStats Stats() const;

  /// The shared engine (its cache() exposes cross-client hit counters).
  Pathfinder* engine() { return &pf_; }

 private:
  struct Session;
  struct Job;

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<Session> s);
  void WorkerLoop();
  void HandleLine(const std::shared_ptr<Session>& s, std::string_view line);
  // Admits a query OR update frame to the shared job queue (both honor
  // the same inflight-id, busy and drain rules).
  void HandleQuery(const std::shared_ptr<Session>& s, Request req);
  // Executes the query and retires its id; returns the response line to
  // write (the caller writes it after dropping the inflight gauge, so a
  // client that has read a response observes inflight already down).
  std::string RunJob(Job& job, std::string* error_token);
  void WriteLine(Session& s, std::string_view line);

  xml::Database* db_;
  Options opts_;
  Pathfinder pf_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // workers: job available / stop
  std::condition_variable drain_cv_;  // Shutdown: queue empty, inflight 0
  std::deque<Job> queue_;
  int64_t inflight_ = 0;     // guarded by queue_mu_
  bool workers_stop_ = false;  // guarded by queue_mu_

  // Counters (atomics so stats reads never block the data path).
  std::atomic<int64_t> connections_{0}, live_sessions_{0}, requests_{0},
      protocol_errors_{0}, registers_{0}, queries_{0}, updates_{0},
      updates_applied_{0}, completed_{0}, cancelled_{0}, timeouts_{0},
      mem_rejects_{0}, busy_rejects_{0}, failed_{0}, disconnects_{0},
      plan_cache_hits_{0}, subplan_cache_hits_{0};
};

}  // namespace pathfinder::serve

#endif  // PATHFINDER_SERVE_SERVER_H_

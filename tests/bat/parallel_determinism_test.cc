// Byte-identity of every parallelized kernel operator across thread
// counts: the morsel decomposition and ordered merges must make the
// pool an invisible implementation detail. Inputs are sized past the
// parallel-engagement thresholds so the chunked code paths actually
// run, and include the order-sensitive cases the loop-lifting
// compilation scheme relies on (hash-join left-major pair order, sort
// and Mark stability, GroupAgg first-appearance group order).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "bat/kernel.h"
#include "bat/table.h"

namespace pathfinder::bat {
namespace {

constexpr size_t kRows = 30000;

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  std::vector<ThreadPool*> Pools() { return {&pool2_, &pool7_}; }

  ColumnPtr RandInts(size_t n, int64_t lo, int64_t hi, uint64_t seed) {
    auto c = Column::MakeInt(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) c->ints().push_back(rng.Range(lo, hi));
    return c;
  }

  ColumnPtr RandItems(size_t n, uint64_t seed) {
    auto c = Column::MakeItem(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Below(4)) {
        case 0:
          c->items().push_back(Item::Int(rng.Range(-50, 50)));
          break;
        case 1:
          c->items().push_back(Item::Dbl(rng.Range(-50, 50) * 0.5));
          break;
        case 2:
          c->items().push_back(Item::Str(
              pool_.Intern("s" + std::to_string(rng.Below(40)))));
          break;
        default:
          c->items().push_back(Item::Untyped(
              pool_.Intern(std::to_string(rng.Range(-50, 50)))));
          break;
      }
    }
    return c;
  }

  StringPool pool_;
  ThreadPool pool2_{2};
  ThreadPool pool7_{7};
};

TEST_F(ParallelDeterminismTest, FilterIndices) {
  auto pred = Column::MakeBool(kRows);
  Rng rng(11);
  for (size_t i = 0; i < kRows; ++i) {
    pred->bools().push_back(rng.Chance(0.3) ? 1 : 0);
  }
  IdxVec serial = FilterIndices(*pred, nullptr);
  for (ThreadPool* tp : Pools()) {
    EXPECT_EQ(FilterIndices(*pred, tp), serial);
  }
}

TEST_F(ParallelDeterminismTest, GatherAllColumnTypes) {
  Rng rng(12);
  IdxVec idx(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    idx[i] = static_cast<RowIdx>(rng.Below(kRows));
  }
  Table t;
  t.AddCol("i", RandInts(kRows, -1000, 1000, 13));
  t.AddCol("it", RandItems(kRows, 14));
  auto d = Column::MakeDbl(kRows);
  auto s = Column::MakeStr(kRows);
  auto b = Column::MakeBool(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    d->dbls().push_back(rng.NextDouble());
    s->strs().push_back(static_cast<StrId>(rng.Below(100)));
    b->bools().push_back(rng.Chance(0.5) ? 1 : 0);
  }
  t.AddCol("d", d);
  t.AddCol("s", s);
  t.AddCol("b", b);

  Table serial = GatherTable(t, idx, nullptr);
  for (ThreadPool* tp : Pools()) {
    Table par = GatherTable(t, idx, tp);
    ASSERT_EQ(par.num_cols(), serial.num_cols());
    EXPECT_EQ(par.col(0)->ints(), serial.col(0)->ints());
    EXPECT_EQ(par.col(1)->items(), serial.col(1)->items());
    EXPECT_EQ(par.col(2)->dbls(), serial.col(2)->dbls());
    EXPECT_EQ(par.col(3)->strs(), serial.col(3)->strs());
    EXPECT_EQ(par.col(4)->bools(), serial.col(4)->bools());
  }
}

TEST_F(ParallelDeterminismTest, HashJoinIntKeysLeftMajorOrder) {
  // Skewed duplicate keys: per-key right row lists have many entries,
  // so any build-order slip would reorder pairs.
  ColumnPtr l = RandInts(20000, 0, 200, 21);
  ColumnPtr r = RandInts(15000, 0, 200, 22);
  IdxVec sl, sr;
  ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
  // Left-major order: left indices non-decreasing, right rows ascending
  // within one left row (= serial insertion order of the build).
  for (size_t k = 1; k < sl.size(); ++k) {
    ASSERT_GE(sl[k], sl[k - 1]);
    if (sl[k] == sl[k - 1]) ASSERT_GT(sr[k], sr[k - 1]);
  }
  for (ThreadPool* tp : Pools()) {
    IdxVec pl, pr;
    ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &pl, &pr, tp).ok());
    EXPECT_EQ(pl, sl);
    EXPECT_EQ(pr, sr);
  }
}

TEST_F(ParallelDeterminismTest, HashJoinStrAndItemKeys) {
  auto ls = Column::MakeStr(20000);
  auto rs = Column::MakeStr(9000);
  Rng rng(31);
  for (size_t i = 0; i < 20000; ++i) {
    ls->strs().push_back(static_cast<StrId>(rng.Below(300)));
  }
  for (size_t i = 0; i < 9000; ++i) {
    rs->strs().push_back(static_cast<StrId>(rng.Below(300)));
  }
  ColumnPtr li_c = RandItems(20000, 32);
  ColumnPtr ri_c = RandItems(9000, 33);
  for (auto [l, r] : {std::pair<Column*, Column*>{ls.get(), rs.get()},
                      {li_c.get(), ri_c.get()}}) {
    IdxVec sl, sr;
    ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &sl, &sr, nullptr).ok());
    EXPECT_GT(sl.size(), 0u);
    for (ThreadPool* tp : Pools()) {
      IdxVec pl, pr;
      ASSERT_TRUE(HashJoinIndices(*l, *r, pool_, &pl, &pr, tp).ok());
      EXPECT_EQ(pl, sl);
      EXPECT_EQ(pr, sr);
    }
  }
}

TEST_F(ParallelDeterminismTest, ThetaJoinNumericAndItemFallback) {
  ColumnPtr l = RandInts(2000, 0, 5000, 41);
  ColumnPtr r = RandInts(1500, 0, 5000, 42);
  for (CmpOp op : {CmpOp::kLt, CmpOp::kGe, CmpOp::kNe}) {
    IdxVec sl, sr;
    ASSERT_TRUE(
        ThetaJoinIndices(*l, *r, op, pool_, &sl, &sr, nullptr).ok());
    for (ThreadPool* tp : Pools()) {
      IdxVec pl, pr;
      ASSERT_TRUE(ThetaJoinIndices(*l, *r, op, pool_, &pl, &pr, tp).ok());
      EXPECT_EQ(pl, sl);
      EXPECT_EQ(pr, sr);
    }
  }
  // Non-numeric item keys take the generic value-comparison fallback.
  auto mkstrs = [&](size_t n, uint64_t seed) {
    auto c = Column::MakeItem(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      c->items().push_back(
          Item::Str(pool_.Intern("k" + std::to_string(rng.Below(60)))));
    }
    return c;
  };
  ColumnPtr la = mkstrs(1500, 43);
  ColumnPtr ra = mkstrs(300, 44);
  IdxVec sl, sr;
  ASSERT_TRUE(
      ThetaJoinIndices(*la, *ra, CmpOp::kLt, pool_, &sl, &sr, nullptr).ok());
  EXPECT_GT(sl.size(), 0u);
  for (ThreadPool* tp : Pools()) {
    IdxVec pl, pr;
    ASSERT_TRUE(
        ThetaJoinIndices(*la, *ra, CmpOp::kLt, pool_, &pl, &pr, tp).ok());
    EXPECT_EQ(pl, sl);
    EXPECT_EQ(pr, sr);
  }
}

TEST_F(ParallelDeterminismTest, SortPermStability) {
  // Few distinct keys => long runs of ties; the parallel merge must
  // reproduce the serial stable permutation, not just *a* sorted one.
  Table t;
  t.AddCol("k", RandInts(kRows, 0, 20, 51));
  t.AddCol("k2", RandItems(kRows, 52));
  for (auto keys : std::vector<std::vector<std::string>>{
           {"k"}, {"k", "k2"}}) {
    auto serial = SortPerm(t, keys, pool_, {}, nullptr);
    ASSERT_TRUE(serial.ok());
    for (ThreadPool* tp : Pools()) {
      auto par = SortPerm(t, keys, pool_, {}, tp);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(*par, *serial);
    }
  }
  // Descending keys too (exercises the desc flip through the merges).
  auto serial = SortPerm(t, {"k"}, pool_, {1}, nullptr);
  ASSERT_TRUE(serial.ok());
  for (ThreadPool* tp : Pools()) {
    auto par = SortPerm(t, {"k"}, pool_, {1}, tp);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(*par, *serial);
  }
}

TEST_F(ParallelDeterminismTest, MarkStability) {
  Table t;
  t.AddCol("p", RandInts(kRows, 0, 15, 61));
  t.AddCol("o", RandInts(kRows, 0, 8, 62));
  auto serial = Mark(t, {"p"}, {"o"}, pool_, {}, nullptr);
  ASSERT_TRUE(serial.ok());
  for (ThreadPool* tp : Pools()) {
    auto par = Mark(t, {"p"}, {"o"}, pool_, {}, tp);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ((*par)->ints(), (*serial)->ints());
  }
}

TEST_F(ParallelDeterminismTest, GroupAggAllKindsBitExact) {
  // Above the size threshold the morsel-wise partial aggregation runs
  // at EVERY thread count (including serial), so double sums associate
  // identically — compare Items by representation, not by value.
  Table t;
  t.AddCol("g", RandInts(20000, 0, 99, 71));
  auto vals = Column::MakeItem(20000);
  Rng rng(72);
  for (size_t i = 0; i < 20000; ++i) {
    if (rng.Chance(0.5)) {
      vals->items().push_back(Item::Int(rng.Range(-100, 100)));
    } else {
      vals->items().push_back(Item::Dbl(rng.NextDouble() * 100.0));
    }
  }
  t.AddCol("v", vals);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMax, AggKind::kMin}) {
    auto serial = GroupAgg(t, "g", "v", kind, pool_, "g", "out", nullptr);
    ASSERT_TRUE(serial.ok());
    for (ThreadPool* tp : Pools()) {
      auto par = GroupAgg(t, "g", "v", kind, pool_, "g", "out", tp);
      ASSERT_TRUE(par.ok());
      // First-appearance group order and bit-exact aggregate values.
      EXPECT_EQ(par->col(0)->ints(), serial->col(0)->ints());
      EXPECT_EQ(par->col(1)->items(), serial->col(1)->items());
    }
  }
}

}  // namespace
}  // namespace pathfinder::bat

# Empty compiler generated dependencies file for pf_api.
# This may be replaced when dependencies are built.

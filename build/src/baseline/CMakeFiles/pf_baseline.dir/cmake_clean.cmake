file(REMOVE_RECURSE
  "CMakeFiles/pf_baseline.dir/dom.cc.o"
  "CMakeFiles/pf_baseline.dir/dom.cc.o.d"
  "CMakeFiles/pf_baseline.dir/interp.cc.o"
  "CMakeFiles/pf_baseline.dir/interp.cc.o.d"
  "libpf_baseline.a"
  "libpf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

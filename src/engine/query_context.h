#ifndef PATHFINDER_ENGINE_QUERY_CONTEXT_H_
#define PATHFINDER_ENGINE_QUERY_CONTEXT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "accel/step.h"
#include "algebra/op.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "bat/kernel.h"
#include "engine/profile.h"
#include "xml/database.h"

namespace pathfinder::engine {

class QueryCache;

/// Cooperative cancellation + wall-time deadline, shared between a
/// query's owner (a server session, a watchdog, a test) and the
/// executor's checkpoints. The owner fires `Cancel()`/`Timeout()` from
/// any thread; the executor polls `Check()` at operator boundaries and
/// inside morsel loops and aborts the query with the corresponding
/// Status. Fires at most once — the first reason wins, so a cancel
/// racing an expiring deadline yields exactly one of the two errors.
///
/// The live fast path is one relaxed atomic load (plus a steady_clock
/// read per checkpoint when a deadline is armed).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { Fire(kCancelled); }
  void Timeout() { Fire(kTimeout); }

  /// Arm (or move) the wall-time deadline; Check() fires Timeout once
  /// steady_clock passes it.
  void SetDeadline(std::chrono::steady_clock::time_point t) {
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     t.time_since_epoch())
                     .count();
    deadline_ns_.store(ns == 0 ? 1 : ns, std::memory_order_relaxed);
  }

  bool fired() const { return state_.load(std::memory_order_relaxed) != 0; }

  /// OK while live; Cancelled/Timeout after the token fired (also
  /// fires the deadline if it expired).
  Status Check() {
    uint8_t s = state_.load(std::memory_order_relaxed);
    if (s == 0) {
      int64_t d = deadline_ns_.load(std::memory_order_relaxed);
      if (d == 0) return Status::OK();
      int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
      if (now < d) return Status::OK();
      Fire(kTimeout);
      s = state_.load(std::memory_order_relaxed);
    }
    return s == kCancelled
               ? Status::Cancelled("query cancelled")
               : Status::Timeout("query wall-time budget exceeded");
  }

 private:
  static constexpr uint8_t kCancelled = 1;
  static constexpr uint8_t kTimeout = 2;

  void Fire(uint8_t reason) {
    uint8_t expected = 0;
    state_.compare_exchange_strong(expected, reason,
                                   std::memory_order_relaxed);
  }

  std::atomic<uint8_t> state_{0};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock ns; 0 = unarmed
};

/// Test/observability seam: called at every executor operator
/// checkpoint with the operator about to be evaluated and the query's
/// cancel token (nullptr when none). Fault-injection tests use it to
/// fire cancellation or timeouts at a deterministic plan position.
using OpProbe =
    std::function<void(const algebra::Op& op, CancelToken* token)>;

/// Counters for the pipelined (fused fragment) execution path.
struct PipelineExecStats {
  int64_t fragments = 0;  ///< fused fragments executed
  int64_t fused_ops = 0;  ///< operators evaluated inside fused passes
  int64_t max_chain = 0;  ///< longest executed fragment (member count)
  /// Fused evaluations per operator kind, indexed by OpKind. An entry
  /// stays 0 for any kind that never ran under the fused path (the
  /// operator-coverage test keys off this).
  std::array<int64_t, algebra::kOpKindCount> by_kind{};

  void Merge(const PipelineExecStats& o) {
    fragments += o.fragments;
    fused_ops += o.fused_ops;
    max_chain = max_chain > o.max_chain ? max_chain : o.max_chain;
    for (size_t k = 0; k < by_kind.size(); ++k) by_kind[k] += o.by_kind[k];
  }
};

/// Per-query runtime state: resolves fragment ids (persistent documents
/// first, then fragments constructed by ε/τ during this query) and
/// collects execution statistics.
///
/// Node items carry (FragId, pre); ids below db->num_documents() are
/// persistent, the rest index constructed_.
class QueryContext {
 public:
  explicit QueryContext(xml::Database* db) : db_(db) {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  xml::Database* db() { return db_; }
  StringPool* pool() { return db_->pool(); }
  const StringPool& pool() const {
    return static_cast<const xml::Database&>(*db_).pool();
  }

  const xml::Document& doc(xml::FragId id) const {
    size_t n = db_->num_documents();
    if (id < n) return db_->doc(id);
    return *constructed_[id - n];
  }

  bool ValidFrag(xml::FragId id) const {
    return id < db_->num_documents() + constructed_.size();
  }

  xml::FragId AddFragment(xml::Document d) {
    constructed_.push_back(std::make_unique<xml::Document>(std::move(d)));
    return static_cast<xml::FragId>(db_->num_documents() +
                                    constructed_.size() - 1);
  }

  size_t num_constructed() const { return constructed_.size(); }

  /// Worker pool for morsel-parallel operator evaluation; nullptr means
  /// the serial code paths. Defaults to the process-wide pool (sized by
  /// PF_THREADS, falling back to the hardware concurrency).
  ThreadPool* thread_pool() const { return thread_pool_; }

  /// Override the parallelism degree for this query. n <= 0 restores
  /// the process default, n == 1 forces the serial paths, n > 1 uses a
  /// dedicated pool owned by this context.
  void SetNumThreads(int n) {
    if (n <= 0) {
      owned_pool_.reset();
      thread_pool_ = ThreadPool::Default();
    } else if (n == 1) {
      owned_pool_.reset();
      thread_pool_ = nullptr;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(n);
      thread_pool_ = owned_pool_.get();
    }
  }

  /// Partitioned-kernel tuning (radix bits, morsel grain, sort run
  /// length) used for every kernel call and for sizing fused pipeline
  /// morsels. Every setting is result-neutral — it shifts work between
  /// partitions/chunks whose merges are order-exact — so overriding it
  /// per query can never change result bytes. Defaults to the
  /// env-derived process default; stored pre-clamped.
  bat::KernelTuning tuning = bat::KernelTuning::Default();

  /// Ablation switch (bench E6): evaluate Step operators with per-node
  /// naive region selection instead of the staircase join.
  bool use_staircase = true;

  /// Consume the documents' path summaries at execution time: staircase
  /// joins prune their scans to the matching tag partitions, and
  /// kPathScan operators are answered directly from the summary. Off by
  /// default; api::Pathfinder sets it from QueryOptions/PF_PATHSUM.
  /// Result bytes are identical either way.
  bool path_summary = false;

  /// Execute annotated pipeline fragments as fused morsel passes
  /// instead of one materialized BAT per operator. Off by default: the
  /// executor only honors fragments when the plan was annotated (see
  /// opt::AnnotatePipelines), which api::Pathfinder does whenever it
  /// turns this on.
  bool pipeline = false;

  /// Collect a per-operator execution profile (wall time, row counts,
  /// morsel counts, output bytes). Off by default; when off the
  /// executor's hot path performs no timer calls at all.
  bool profile = false;

  /// The profile tree, filled by the executor when `profile` is on.
  OperatorProfilePtr profile_result;

  /// Aggregated staircase join counters for this query.
  accel::StaircaseStats scj_stats;

  /// Fused-pipeline execution counters for this query.
  PipelineExecStats pipe_stats;

  /// Cooperative cancellation/deadline for this query, or nullptr. The
  /// executor checks it at operator boundaries and per fused morsel;
  /// when it fires, Execute returns the token's Cancelled/Timeout
  /// status. Owned externally (typically by a server session).
  CancelToken* cancel_token = nullptr;

  /// Token used when the API owner asked for a deadline but supplied no
  /// token of its own (see api::QueryOptions::timeout_ms).
  CancelToken owned_cancel_token;

  /// Memory budget for materialized operator outputs (bytes; 0 = off).
  /// The executor charges each materialized table's byte size and
  /// aborts with ResourceExhausted once the sum exceeds the budget —
  /// an approximation of peak usage (memoized tables live for the
  /// query), enforced at the same checkpoints as cancellation.
  int64_t mem_limit_bytes = 0;

  /// Executor checkpoint probe (tests); empty = no calls.
  OpProbe op_probe;

  /// Cross-query subplan-result cache (see engine/cache.h), or nullptr
  /// when subplan caching is off for this query. The executor consults
  /// it at annotated cache candidates (Op::cache_cand) and publishes
  /// freshly materialized candidate results back.
  QueryCache* result_cache = nullptr;
  /// Database generation this query's BeginQuery synced at; stamped on
  /// every InsertSubplan so the cache can drop publishes from queries
  /// that started before a racing document registration.
  uint64_t cache_generation = 0;

  /// Per-query subplan cache traffic (the cache's own counters are
  /// cumulative across queries).
  int64_t subplan_cache_hits = 0;
  int64_t subplan_cache_misses = 0;
  /// Candidate results this query offered the cache, split by the
  /// admission verdict (rejects = refused by the cost floor).
  int64_t subplan_cache_admitted = 0;
  int64_t subplan_cache_rejects = 0;

 private:
  xml::Database* db_;
  std::vector<std::unique_ptr<xml::Document>> constructed_;
  ThreadPool* thread_pool_ = ThreadPool::Default();
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_QUERY_CONTEXT_H_

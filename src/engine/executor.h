#ifndef PATHFINDER_ENGINE_EXECUTOR_H_
#define PATHFINDER_ENGINE_EXECUTOR_H_

#include "algebra/op.h"
#include "base/result.h"
#include "bat/table.h"
#include "engine/query_context.h"

namespace pathfinder::engine {

/// Evaluate an algebra plan DAG bottom-up on the column-store kernel.
/// Shared subplans are evaluated exactly once (memoized per Op node).
///
/// The root is normally a Serialize operator; its result is the query's
/// (iter, pos, item) sequence encoding sorted by (iter, pos), ready for
/// the runtime serializer.
Result<bat::Table> Execute(const algebra::OpPtr& root, QueryContext* ctx);

/// Process-wide default for pipelined execution: the PF_PIPELINE
/// environment variable, read once. Unset or any value but "0" = on.
bool PipelineDefault();

}  // namespace pathfinder::engine

#endif  // PATHFINDER_ENGINE_EXECUTOR_H_

#include "algebra/hash.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pathfinder::algebra {

namespace {

constexpr uint64_t kSeed = 0x853C49E6748FEA9Bull;

uint64_t Mix(uint64_t h, uint64_t v) {
  v *= 0x9E3779B97F4A7C15ull;
  v ^= v >> 32;
  v *= 0xBF58476D1CE4E5B9ull;
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashStr(std::string_view s) {
  // FNV-1a 64.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t HashItem(const Item& it) {
  return Mix(static_cast<uint64_t>(it.kind), it.raw);
}

/// Fun2 operators whose operands may swap without changing any result
/// bit: integer +/* wrap symmetrically, IEEE double +/* are commutative
/// (the engine only ever produces the canonical quiet NaN), eq/ne are
/// symmetric value comparisons, and/or are boolean.
bool IsCommutativeFun2(Fun2 f) {
  switch (f) {
    case Fun2::kAdd:
    case Fun2::kMul:
    case Fun2::kCmpEq:
    case Fun2::kCmpNe:
    case Fun2::kAnd:
    case Fun2::kOr:
      return true;
    default:
      return false;
  }
}

/// Does this kind compare its (col, col2) pair unordered?
bool UnorderedColPair(const Op& op) {
  return op.kind == OpKind::kFun2 && IsCommutativeFun2(op.fun2);
}

/// Does this kind treat `keys` as a set?
bool UnorderedKeys(OpKind k) {
  return k == OpKind::kDistinct || k == OpKind::kDifference;
}

std::vector<std::string> Sorted(const std::vector<std::string>& v) {
  std::vector<std::string> s = v;
  std::sort(s.begin(), s.end());
  return s;
}

}  // namespace

uint64_t LocalParamsHash(const Op& op) {
  uint64_t h = Mix(kSeed, static_cast<uint64_t>(op.kind));
  h = Mix(h, op.proj.size());
  for (const auto& [nw, old] : op.proj) {
    h = Mix(h, HashStr(nw));
    h = Mix(h, HashStr(old));
  }
  if (UnorderedColPair(op)) {
    // Order-insensitive combination of the operand pair.
    h = Mix(h, HashStr(op.col) + HashStr(op.col2));
  } else {
    h = Mix(h, HashStr(op.col));
    h = Mix(h, HashStr(op.col2));
  }
  h = Mix(h, HashStr(op.out));
  if (op.kind == OpKind::kRowNum) {
    for (const auto& p : Sorted(op.part)) h = Mix(h, HashStr(p));
  } else {
    for (const auto& p : op.part) h = Mix(h, HashStr(p));
  }
  for (const auto& o : op.order) h = Mix(h, HashStr(o));
  for (uint8_t d : op.order_desc) h = Mix(h, d);
  if (UnorderedKeys(op.kind)) {
    for (const auto& k : Sorted(op.keys)) h = Mix(h, HashStr(k));
  } else {
    for (const auto& k : op.keys) h = Mix(h, HashStr(k));
  }
  h = Mix(h, static_cast<uint64_t>(op.axis));
  h = Mix(h, static_cast<uint64_t>(op.test.kind));
  h = Mix(h, op.test.name);
  h = Mix(h, op.path.size());
  for (const PathStep& s : op.path) {
    h = Mix(h, static_cast<uint64_t>(s.axis));
    h = Mix(h, static_cast<uint64_t>(s.test.kind));
    h = Mix(h, s.test.name);
  }
  h = Mix(h, static_cast<uint64_t>(op.fun1));
  h = Mix(h, static_cast<uint64_t>(op.fun2));
  h = Mix(h, static_cast<uint64_t>(op.cmp));
  h = Mix(h, static_cast<uint64_t>(op.agg));
  for (const auto& n : op.names) h = Mix(h, HashStr(n));
  for (auto t : op.types) h = Mix(h, static_cast<uint64_t>(t));
  h = Mix(h, op.rows.size());
  for (const auto& row : op.rows) {
    for (const Item& cell : row) h = Mix(h, HashItem(cell));
  }
  h = Mix(h, HashItem(op.attach_val));
  return h;
}

bool LocalParamsEqual(const Op& a, const Op& b) {
  if (a.kind != b.kind) return false;
  if (a.proj != b.proj) return false;
  if (UnorderedColPair(a)) {
    if (a.fun2 != b.fun2) return false;
    bool straight = a.col == b.col && a.col2 == b.col2;
    bool swapped = a.col == b.col2 && a.col2 == b.col;
    if (!straight && !swapped) return false;
  } else {
    if (a.col != b.col || a.col2 != b.col2) return false;
  }
  if (a.out != b.out) return false;
  if (a.kind == OpKind::kRowNum) {
    if (Sorted(a.part) != Sorted(b.part)) return false;
  } else {
    if (a.part != b.part) return false;
  }
  if (a.order != b.order || a.order_desc != b.order_desc) return false;
  if (UnorderedKeys(a.kind)) {
    if (Sorted(a.keys) != Sorted(b.keys)) return false;
  } else {
    if (a.keys != b.keys) return false;
  }
  if (a.axis != b.axis || a.test.kind != b.test.kind ||
      a.test.name != b.test.name) {
    return false;
  }
  if (a.path.size() != b.path.size()) return false;
  for (size_t i = 0; i < a.path.size(); ++i) {
    if (a.path[i].axis != b.path[i].axis ||
        a.path[i].test.kind != b.path[i].test.kind ||
        a.path[i].test.name != b.path[i].test.name) {
      return false;
    }
  }
  if (a.fun1 != b.fun1 || a.fun2 != b.fun2 || a.cmp != b.cmp ||
      a.agg != b.agg) {
    return false;
  }
  if (a.names != b.names || a.types != b.types) return false;
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!(a.rows[r][c] == b.rows[r][c])) return false;
    }
  }
  return a.attach_val == b.attach_val;
}

uint64_t CombineChildHash(uint64_t h, uint64_t child_hash) {
  return Mix(h, child_hash);
}

void StructuralHashes(const OpPtr& root,
                      std::unordered_map<const Op*, uint64_t>* out) {
  for (Op* op : TopoOrder(root)) {
    uint64_t h = LocalParamsHash(*op);
    for (const auto& c : op->children) {
      h = CombineChildHash(h, out->at(c.get()));
    }
    (*out)[op] = h;
  }
}

uint64_t StructuralHash(const OpPtr& root) {
  std::unordered_map<const Op*, uint64_t> hashes;
  StructuralHashes(root, &hashes);
  return hashes.at(root.get());
}

namespace {

struct PairHash {
  size_t operator()(const std::pair<const Op*, const Op*>& p) const {
    return Mix(reinterpret_cast<uintptr_t>(p.first),
               reinterpret_cast<uintptr_t>(p.second));
  }
};

bool EqualRec(
    const Op& a, const Op& b,
    std::unordered_map<std::pair<const Op*, const Op*>, bool, PairHash>*
        memo) {
  if (&a == &b) return true;
  auto key = std::make_pair(&a, &b);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  // Optimistically assume equal while descending: plans are DAGs (no
  // cycles), so the provisional entry is only ever read by sibling
  // paths that reached the same pair through shared nodes.
  (*memo)[key] = true;
  bool eq = LocalParamsEqual(a, b) && a.children.size() == b.children.size();
  for (size_t i = 0; eq && i < a.children.size(); ++i) {
    eq = EqualRec(*a.children[i], *b.children[i], memo);
  }
  (*memo)[key] = eq;
  return eq;
}

}  // namespace

bool StructurallyEqual(const Op& a, const Op& b) {
  std::unordered_map<std::pair<const Op*, const Op*>, bool, PairHash> memo;
  return EqualRec(a, b, &memo);
}

size_t ApproxPlanBytes(const OpPtr& root) {
  size_t total = 0;
  for (const Op* op : TopoOrder(root)) {
    total += sizeof(Op);
    for (const auto& [nw, old] : op->proj) {
      total += nw.capacity() + old.capacity();
    }
    total += op->col.capacity() + op->col2.capacity() + op->out.capacity();
    for (const auto& s : op->part) total += s.capacity() + sizeof(s);
    for (const auto& s : op->order) total += s.capacity() + sizeof(s);
    for (const auto& s : op->keys) total += s.capacity() + sizeof(s);
    total += op->order_desc.capacity();
    for (const auto& s : op->names) total += s.capacity() + sizeof(s);
    total += op->types.capacity() * sizeof(bat::ColType);
    total += op->path.capacity() * sizeof(PathStep);
    for (const auto& row : op->rows) total += row.capacity() * sizeof(Item);
    total += op->children.capacity() * sizeof(OpPtr);
  }
  return total;
}

}  // namespace pathfinder::algebra

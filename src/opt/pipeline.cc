#include "opt/pipeline.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace pathfinder::opt {

namespace alg = pathfinder::algebra;
using alg::Op;
using alg::OpKind;

Status AnnotatePipelines(const algebra::OpPtr& root, PipelineStats* stats) {
  std::vector<Op*> order = alg::TopoOrder(root);

  // Consumer edge counts. An op consumed by more than one parent (or
  // twice by the same parent) must materialize: its other consumers
  // read the BAT.
  std::unordered_map<const Op*, int> consumers;
  for (Op* op : order) {
    op->pipe_frag = -1;
    op->pipe_tail = false;
    for (const auto& c : op->children) consumers[c.get()]++;
  }

  // Bottom-up (TopoOrder is children-before-parents): each fusable op
  // either extends its child's open chain or starts a new one. The
  // current chain end is always the op marked pipe_tail.
  int next_id = 0;
  for (Op* op : order) {
    if (alg::IsPipelineJoinOp(op->kind)) {
      // Joins head a fragment: probe emits (l,r) row pairs that flow
      // into any fused parents; both inputs stay materialized.
      op->pipe_frag = next_id++;
      op->pipe_tail = true;
      continue;
    }
    if (!alg::IsPipelineMapOp(op->kind)) continue;
    Op* child = op->children[0].get();
    if (child->pipe_frag >= 0 && child->pipe_tail &&
        consumers[child] == 1) {
      // Extend: the child's intermediate result is never materialized.
      op->pipe_frag = child->pipe_frag;
      child->pipe_tail = false;
    } else {
      op->pipe_frag = next_id++;
    }
    op->pipe_tail = true;
  }

  // Fragment sizes.
  std::unordered_map<int, int> frag_len;
  for (Op* op : order) {
    if (op->pipe_frag >= 0) frag_len[op->pipe_frag]++;
  }

  // Demote singleton map fragments without a fused kernel: a lone
  // π/attach/~ gains nothing over the legacy path. Lone σ keeps
  // FilterGather, lone joins keep the probe+gather kernels.
  for (Op* op : order) {
    if (op->pipe_frag < 0 || frag_len[op->pipe_frag] != 1) continue;
    if (op->kind == OpKind::kSelect || alg::IsPipelineJoinOp(op->kind)) {
      continue;
    }
    frag_len.erase(op->pipe_frag);
    op->pipe_frag = -1;
    op->pipe_tail = false;
  }

  if (stats != nullptr) {
    *stats = PipelineStats{};
    stats->fragments = static_cast<int>(frag_len.size());
    for (const auto& [id, len] : frag_len) {
      stats->fused_ops += len;
      stats->longest_chain = std::max(stats->longest_chain, len);
    }
  }
  return Status::OK();
}

}  // namespace pathfinder::opt

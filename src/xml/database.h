#ifndef PATHFINDER_XML_DATABASE_H_
#define PATHFINDER_XML_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/string_pool.h"
#include "xml/document.h"

namespace pathfinder::xml {

/// Id of a document fragment. Persistent documents get dense ids
/// starting at 0; fragments constructed during query evaluation are
/// appended after them (see engine::FragmentStore).
using FragId = uint32_t;

/// The persistent store: loaded documents plus the shared property
/// StringPool (the paper's property BATs).
///
/// Thread safety: registrations may race query evaluation. Documents
/// live in a two-level directory of fixed-size slot chunks (the
/// StringPool pattern): a published id's chunk pointer and slot are
/// written before the id escapes, and neither ever moves afterwards,
/// so `doc`/`doc_name` are wait-free for any id obtained from a
/// completed registration. `AddDocument`, `FindDocument`, and
/// `Versions` serialize on an internal mutex. Re-registering a name
/// appends a fresh document and rebinds the name; the old FragId stays
/// readable, so queries already in flight keep a consistent snapshot.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Register a document under `name` (the fn:doc argument).
  FragId AddDocument(const std::string& name, Document doc);

  /// Parse and register.
  Result<FragId> LoadXml(const std::string& name, std::string_view xml);

  Result<FragId> FindDocument(const std::string& name) const;

  size_t num_documents() const {
    return count_.load(std::memory_order_acquire);
  }
  const Document& doc(FragId id) const { return *slot(id)->doc; }
  const std::string& doc_name(FragId id) const { return slot(id)->name; }

  StringPool* pool() { return &pool_; }
  const StringPool& pool() const { return pool_; }

  /// Storage accounting (Sec. 3.1): encoding columns + unique property
  /// payload bytes.
  size_t EncodingBytes() const;
  size_t PoolPayloadBytes() const { return pool_.payload_bytes(); }

  /// Monotonic content version, bumped on every document
  /// (re)registration. Caches compare generations to detect that the
  /// store changed at all (see engine::QueryCache).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Per-name versions: for every currently bound document name, the
  /// value `generation()` had right after the event that last changed
  /// it, split by what the event could have perturbed:
  ///  * `structure` moves on (re)registration and on structural updates
  ///    (inserts/deletes/element replace-value) — anything that can
  ///    renumber pres or change sizes/levels/kinds/props;
  ///  * `content` moves on every event that `structure` moves on, plus
  ///    content-only updates (leaf replace-value), which perturb the
  ///    value column but keep every pre rank bit-identical.
  /// Caches evict entries on a structure move but can *repair*
  /// value-free entries across a pure content move by re-pointing
  /// cached node items from `frag` to the new snapshot's frag (see
  /// engine::QueryCache).
  struct DocVersion {
    std::string name;
    uint64_t structure = 0;
    uint64_t content = 0;
    FragId frag = 0;  ///< snapshot currently bound to the name
  };
  struct DocVersions {
    uint64_t generation = 0;
    std::vector<DocVersion> docs;
  };
  DocVersions Versions() const;

  /// Publish `doc` as the new snapshot of `name` after a node-level
  /// update (xml/update.h drives this): same append-and-rebind as
  /// AddDocument, but a content-only update bumps just the name's
  /// content version so caches can repair instead of evict. Stats and
  /// summary must already be attached (the updater repairs them
  /// incrementally); missing ones are computed from scratch.
  FragId PublishUpdate(const std::string& name, Document doc,
                       bool structural);

  /// Updaters (xml/update.h ApplyUpdate) hold this lock across their
  /// whole read-splice-publish cycle so concurrent updates serialize
  /// instead of splicing off the same base and losing one of them.
  /// Queries and plain registrations never take it.
  std::unique_lock<std::mutex> LockForUpdate() {
    return std::unique_lock<std::mutex>(update_mu_);
  }

 private:
  struct Slot {
    std::unique_ptr<Document> doc;
    std::string name;
  };

  struct NameVersion {
    uint64_t structure = 0;
    uint64_t content = 0;
  };

  FragId PublishLocked(const std::string& name, Document doc,
                       bool bump_structure);

  static constexpr size_t kChunkBits = 8;  // 256 documents per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 12;  // 2^20 documents

  Slot* slot(FragId id) const {
    Slot* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return &chunk[id & kChunkMask];
  }

  StringPool pool_;
  std::atomic<uint64_t> generation_{0};

  // Directory of lazily-allocated slot chunks. Fixed-size so readers
  // index it without synchronizing on growth.
  std::unique_ptr<std::atomic<Slot*>[]> chunks_;
  std::atomic<size_t> count_{0};

  mutable std::mutex mu_;
  std::mutex update_mu_;  // serializes updaters; see LockForUpdate()
  std::unordered_map<std::string, FragId> by_name_;       // guarded by mu_
  std::unordered_map<std::string, NameVersion> versions_;  // guarded by mu_
};

}  // namespace pathfinder::xml

#endif  // PATHFINDER_XML_DATABASE_H_

#include "serve/protocol.h"

#include <cstdio>

namespace pathfinder::serve {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("frame: " + what);
}

Result<std::string> RequiredString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Malformed(std::string("missing field '") + key + "'");
  }
  if (v->kind != JsonValue::Kind::kString) {
    return Malformed(std::string("field '") + key + "' must be a string");
  }
  return v->str;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  PF_ASSIGN_OR_RETURN(JsonValue v, ParseJson(line));
  if (v.kind != JsonValue::Kind::kObject) {
    return Malformed("request must be a JSON object");
  }
  PF_ASSIGN_OR_RETURN(std::string op, RequiredString(v, "op"));
  Request req;
  if (op == "ping") {
    req.verb = Verb::kPing;
  } else if (op == "register") {
    req.verb = Verb::kRegister;
    PF_ASSIGN_OR_RETURN(req.name, RequiredString(v, "name"));
    PF_ASSIGN_OR_RETURN(req.xml, RequiredString(v, "xml"));
    if (req.name.empty()) return Malformed("empty document name");
  } else if (op == "query") {
    req.verb = Verb::kQuery;
    PF_ASSIGN_OR_RETURN(req.id, RequiredString(v, "id"));
    PF_ASSIGN_OR_RETURN(req.query, RequiredString(v, "q"));
    if (req.id.empty()) return Malformed("empty query id");
    if (const JsonValue* d = v.Find("doc")) {
      if (d->kind != JsonValue::Kind::kString) {
        return Malformed("field 'doc' must be a string");
      }
      req.doc = d->str;
    }
  } else if (op == "update") {
    req.verb = Verb::kUpdate;
    PF_ASSIGN_OR_RETURN(req.id, RequiredString(v, "id"));
    PF_ASSIGN_OR_RETURN(req.doc, RequiredString(v, "doc"));
    PF_ASSIGN_OR_RETURN(req.action, RequiredString(v, "action"));
    if (req.id.empty()) return Malformed("empty update id");
    if (req.doc.empty()) return Malformed("empty document name");
    const JsonValue* t = v.Find("target");
    if (t == nullptr || t->kind != JsonValue::Kind::kNumber ||
        t->num < 0 || t->num > 4294967295.0) {
      return Malformed("field 'target' must be a pre rank (uint32)");
    }
    req.target = t->AsInt();
    if (const JsonValue* p = v.Find("position")) {
      if (p->kind != JsonValue::Kind::kNumber) {
        return Malformed("field 'position' must be a number");
      }
      req.position = p->AsInt();
    }
    if (req.action == "insert") {
      PF_ASSIGN_OR_RETURN(req.xml, RequiredString(v, "xml"));
    } else if (req.action == "replace") {
      if (const JsonValue* val = v.Find("value")) {
        if (val->kind != JsonValue::Kind::kString) {
          return Malformed("field 'value' must be a string");
        }
        req.value = val->str;
      }
    } else if (req.action != "delete") {
      return Malformed("unknown update action '" + req.action + "'");
    }
  } else if (op == "cancel") {
    req.verb = Verb::kCancel;
    PF_ASSIGN_OR_RETURN(req.id, RequiredString(v, "id"));
    if (req.id.empty()) return Malformed("empty query id");
  } else if (op == "stats") {
    req.verb = Verb::kStats;
  } else {
    return Malformed("unknown verb '" + op + "'");
  }
  return req;
}

const char* WireErrorName(const Status& status) {
  return ErrorClassName(status.error_class());
}

std::string PongResponse() { return R"({"ok":true,"op":"pong"})"; }

std::string RegisterResponse(std::string_view name) {
  std::string out = R"({"ok":true,"op":"register","name":)";
  AppendJsonString(&out, name);
  out += '}';
  return out;
}

std::string QueryResponse(std::string_view id, std::string_view result,
                          const QueryResponseInfo& info) {
  std::string out = R"({"ok":true,"id":)";
  AppendJsonString(&out, id);
  out += ",\"result\":";
  AppendJsonString(&out, result);
  out += ",\"plan_cache_hit\":";
  out += info.plan_cache_hit ? "true" : "false";
  out += ",\"subplan_cache_hits\":";
  out += std::to_string(info.subplan_cache_hits);
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", info.wall_ms);
  out += ",\"ms\":";
  out += ms;
  out += '}';
  return out;
}

std::string UpdateResponse(std::string_view id, std::string_view doc,
                           bool structural, uint32_t nodes_before,
                           uint32_t nodes_after) {
  std::string out = R"({"ok":true,"op":"update","id":)";
  AppendJsonString(&out, id);
  out += ",\"doc\":";
  AppendJsonString(&out, doc);
  out += ",\"structural\":";
  out += structural ? "true" : "false";
  out += ",\"nodes_before\":";
  out += std::to_string(nodes_before);
  out += ",\"nodes_after\":";
  out += std::to_string(nodes_after);
  out += '}';
  return out;
}

std::string CancelResponse(std::string_view id, bool found) {
  std::string out = R"({"ok":true,"op":"cancel","id":)";
  AppendJsonString(&out, id);
  out += ",\"found\":";
  out += found ? "true" : "false";
  out += '}';
  return out;
}

std::string ErrorResponse(std::string_view id, std::string_view error,
                          std::string_view message) {
  std::string out = R"({"ok":false,)";
  if (!id.empty()) {
    out += "\"id\":";
    AppendJsonString(&out, id);
    out += ',';
  }
  out += "\"error\":";
  AppendJsonString(&out, error);
  out += ",\"message\":";
  AppendJsonString(&out, message);
  out += '}';
  return out;
}

}  // namespace pathfinder::serve

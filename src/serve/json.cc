#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pathfinder::serve {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  Result<JsonValue> ParseDocument() {
    SkipWs();
    JsonValue v;
    PF_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing bytes after JSON value");
    }
    return v;
  }

 private:
  Status Err(const char* what) const {
    return Status::ParseError(std::string("json: ") + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatWord(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (EatWord("true")) {
          out->kind = JsonValue::Kind::kBool;
          out->b = true;
          return Status::OK();
        }
        return Err("bad literal");
      case 'f':
        if (EatWord("false")) {
          out->kind = JsonValue::Kind::kBool;
          out->b = false;
          return Status::OK();
        }
        return Err("bad literal");
      case 'n':
        if (EatWord("null")) {
          out->kind = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Err("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Eat('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return Err("expected key");
      std::string key;
      PF_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Eat(':')) return Err("expected ':'");
      SkipWs();
      JsonValue v;
      PF_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Eat(']')) return Status::OK();
    for (;;) {
      SkipWs();
      JsonValue v;
      PF_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->elems.push_back(std::move(v));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::OK();
      return Err("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("bad \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    for (;;) {
      if (pos_ >= s_.size()) return Err("unterminated string");
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Err("raw control byte in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= s_.size()) return Err("truncated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          PF_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              return Err("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            PF_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Err("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Err("bad escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Eat('-')) {
    }
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      return Err("bad value");
    }
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (Eat('.')) {
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        return Err("bad number");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        return Err("bad exponent");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    std::string text(s_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->num = std::strtod(text.c_str(), nullptr);
    if (!std::isfinite(out->num)) return Err("non-finite number");
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view s) {
  return Parser(s).ParseDocument();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(&out, s);
  return out;
}

}  // namespace pathfinder::serve


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel/accel_test.cc" "tests/CMakeFiles/accel_test.dir/accel/accel_test.cc.o" "gcc" "tests/CMakeFiles/accel_test.dir/accel/accel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/pf_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/pf_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pf_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/pf_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/pf_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/bat/CMakeFiles/pf_bat.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pf_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/pf_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/pf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

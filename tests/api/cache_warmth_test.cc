// Cross-document cache warmth: re-registering one document must leave
// cache entries for *other* documents warm (per-document invalidation),
// while entries for the changed document go stale immediately — and
// every answer must stay byte-identical to a cache-off run, at every
// thread count.

#include <gtest/gtest.h>

#include <string>

#include "api/pathfinder.h"
#include "xml/database.h"

namespace pathfinder {
namespace {

// A document of n <x v="..."/> elements: big enough that its axis steps
// are real work, small enough that the test stays instant.
std::string MakeDoc(int n, int base) {
  std::string s = "<r>";
  for (int i = 0; i < n; ++i) {
    s += "<x v=\"" + std::to_string(base + i) + "\"/>";
  }
  s += "</r>";
  return s;
}

QueryOptions CachedOpts(const std::string& context_doc) {
  QueryOptions o;
  o.context_doc = context_doc;
  o.plan_cache = 1;
  o.subplan_cache = 1;
  o.cache_budget_bytes = 64 << 20;  // pin against ambient PF_CACHE_MB
  o.cache_min_cost_us = 0;          // tiny docs: admit every candidate
  return o;
}

std::string RunFresh(xml::Database* db, const std::string& context_doc,
                     const char* q) {
  Pathfinder pf(db);
  QueryOptions o;
  o.context_doc = context_doc;
  o.plan_cache = 0;
  o.subplan_cache = 0;
  auto r = pf.Run(q, o);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "<error>";
  auto s = r->Serialize();
  EXPECT_TRUE(s.ok());
  return s.ok() ? *s : "<serialize error>";
}

TEST(CacheWarmthTest, UnrelatedRegistrationKeepsOtherDocumentWarm) {
  xml::Database db;
  ASSERT_TRUE(db.LoadXml("a.xml", MakeDoc(200, 1)).ok());
  ASSERT_TRUE(db.LoadXml("b.xml", MakeDoc(100, 1000)).ok());
  Pathfinder pf(&db);
  const char* q = "sum(//x/@v)";
  const std::string expect_a = RunFresh(&db, "a.xml", q);
  const std::string expect_b = RunFresh(&db, "b.xml", q);

  // Warm both documents' entries (second run proves they are servable).
  for (const char* doc : {"a.xml", "b.xml"}) {
    auto cold = pf.Run(q, CachedOpts(doc));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = pf.Run(q, CachedOpts(doc));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_TRUE(warm->plan_cache_hit) << doc;
    EXPECT_GT(warm->subplan_cache_hits, 0) << doc;
  }

  // Re-register B. A's plan AND subplan entries must still hit, with
  // byte-identical output; B's entries must be gone and B's next run
  // must see the new content.
  ASSERT_TRUE(db.LoadXml("b.xml", MakeDoc(100, 5000)).ok());
  auto a = pf.Run(q, CachedOpts("a.xml"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->plan_cache_hit);
  EXPECT_GT(a->subplan_cache_hits, 0);
  EXPECT_EQ(a->subplan_cache_misses, 0);
  auto as = a->Serialize();
  ASSERT_TRUE(as.ok());
  EXPECT_EQ(*as, expect_a);
  EXPECT_GE(a->cache_stats.per_doc_invalidations, 1);

  auto b = pf.Run(q, CachedOpts("b.xml"));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_FALSE(b->plan_cache_hit);
  auto bs = b->Serialize();
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(*bs, RunFresh(&db, "b.xml", q));
  EXPECT_NE(*bs, expect_b);  // the content really changed

  // And the reverse direction: B (just re-warmed) survives a
  // re-registration of A.
  auto bwarm = pf.Run(q, CachedOpts("b.xml"));
  ASSERT_TRUE(bwarm.ok());
  EXPECT_TRUE(bwarm->plan_cache_hit);
  const std::string expect_b2 = RunFresh(&db, "b.xml", q);
  ASSERT_TRUE(db.LoadXml("a.xml", MakeDoc(200, 7000)).ok());
  auto b2 = pf.Run(q, CachedOpts("b.xml"));
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();
  EXPECT_TRUE(b2->plan_cache_hit);
  EXPECT_GT(b2->subplan_cache_hits, 0);
  auto b2s = b2->Serialize();
  ASSERT_TRUE(b2s.ok());
  EXPECT_EQ(*b2s, expect_b2);
  auto a2 = pf.Run(q, CachedOpts("a.xml"));
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a2->plan_cache_hit);
  auto a2s = a2->Serialize();
  ASSERT_TRUE(a2s.ok());
  EXPECT_EQ(*a2s, RunFresh(&db, "a.xml", q));
}

TEST(CacheWarmthTest, ByteIdenticalAcrossThreadsAndCacheUnderChurn) {
  // The acceptance sweep: doc-A answers under continuous unrelated
  // churn must be byte-identical at 1/2/7 threads, cache on and off.
  xml::Database db;
  ASSERT_TRUE(db.LoadXml("a.xml", MakeDoc(300, 1)).ok());
  ASSERT_TRUE(db.LoadXml("churn.xml", MakeDoc(10, 0)).ok());
  Pathfinder pf(&db);
  const char* q = "count(//x[@v > 100])";
  const std::string expected = RunFresh(&db, "a.xml", q);
  int round = 0;
  for (int threads : {1, 2, 7}) {
    for (int cache_on : {1, 0}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cache=" + std::to_string(cache_on));
      // Unrelated churn between every run.
      ASSERT_TRUE(db.LoadXml("churn.xml", MakeDoc(10, ++round)).ok());
      QueryOptions o = CachedOpts("a.xml");
      o.plan_cache = cache_on;
      o.subplan_cache = cache_on;
      o.num_threads = threads;
      auto r = pf.Run(q, o);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      auto s = r->Serialize();
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(*s, expected);
    }
  }
  // Across all that churn, the cached rounds after the first must have
  // been served warm: churn.xml registrations never touched a.xml.
  engine::CacheStats st = pf.cache()->Stats();
  EXPECT_GT(st.plan.hits, 0);
  EXPECT_GT(st.subplan.hits, 0);
  EXPECT_EQ(st.per_doc_invalidations, 0);
}

}  // namespace
}  // namespace pathfinder

#include "bat/column.h"

namespace pathfinder::bat {

const char* ColTypeName(ColType t) {
  switch (t) {
    case ColType::kInt:
      return "int";
    case ColType::kDbl:
      return "dbl";
    case ColType::kStr:
      return "str";
    case ColType::kBool:
      return "bool";
    case ColType::kItem:
      return "item";
  }
  return "?";
}

std::shared_ptr<Column> Column::MakeInt(size_t reserve) {
  auto c = std::make_shared<Column>(ColType::kInt);
  c->ints_.reserve(reserve);
  return c;
}
std::shared_ptr<Column> Column::MakeDbl(size_t reserve) {
  auto c = std::make_shared<Column>(ColType::kDbl);
  c->dbls_.reserve(reserve);
  return c;
}
std::shared_ptr<Column> Column::MakeStr(size_t reserve) {
  auto c = std::make_shared<Column>(ColType::kStr);
  c->strs_.reserve(reserve);
  return c;
}
std::shared_ptr<Column> Column::MakeBool(size_t reserve) {
  auto c = std::make_shared<Column>(ColType::kBool);
  c->bools_.reserve(reserve);
  return c;
}
std::shared_ptr<Column> Column::MakeItem(size_t reserve) {
  auto c = std::make_shared<Column>(ColType::kItem);
  c->items_.reserve(reserve);
  return c;
}

std::shared_ptr<Column> Column::ConstInt(size_t n, int64_t v) {
  auto c = MakeInt(n);
  c->ints_.assign(n, v);
  return c;
}
std::shared_ptr<Column> Column::ConstItem(size_t n, Item v) {
  auto c = MakeItem(n);
  c->items_.assign(n, v);
  return c;
}
std::shared_ptr<Column> Column::ConstBool(size_t n, bool v) {
  auto c = MakeBool(n);
  c->bools_.assign(n, v ? 1 : 0);
  return c;
}

size_t Column::size() const {
  switch (type_) {
    case ColType::kInt:
      return ints_.size();
    case ColType::kDbl:
      return dbls_.size();
    case ColType::kStr:
      return strs_.size();
    case ColType::kBool:
      return bools_.size();
    case ColType::kItem:
      return items_.size();
  }
  return 0;
}

size_t Column::ByteSize() const {
  switch (type_) {
    case ColType::kInt:
      return ints_.size() * sizeof(int64_t);
    case ColType::kDbl:
      return dbls_.size() * sizeof(double);
    case ColType::kStr:
      return strs_.size() * sizeof(StrId);
    case ColType::kBool:
      return bools_.size() * sizeof(uint8_t);
    case ColType::kItem:
      return items_.size() * sizeof(Item);
  }
  return 0;
}

size_t Column::AllocBytes() const {
  return sizeof(Column) + ints_.capacity() * sizeof(int64_t) +
         dbls_.capacity() * sizeof(double) + strs_.capacity() * sizeof(StrId) +
         bools_.capacity() * sizeof(uint8_t) +
         items_.capacity() * sizeof(Item);
}

}  // namespace pathfinder::bat

// pf_serve: the Pathfinder query server.
//
//   pf_serve --port 7077
//
// speaks newline-delimited JSON (see serve/protocol.h); try it with nc:
//
//   $ nc localhost 7077
//   {"op":"register","name":"d.xml","xml":"<a><b>1</b><b>2</b></a>"}
//   {"op":"query","id":"q1","q":"count(/a/b)","doc":"d.xml"}
//
// Knobs come from the environment: PF_SERVE_MAX_INFLIGHT, PF_SERVE_QUEUE,
// PF_SERVE_TIMEOUT_MS, PF_SERVE_MEM_MB, PF_SERVE_MAX_LINE_MB (plus the
// engine-wide PF_THREADS, PF_CACHE_MB, ...). SIGTERM/SIGINT drain
// gracefully: in-flight queries finish, their responses flush, and the
// process exits 0.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 1;
  // Async-signal-safe wake of the main thread; best effort.
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using pathfinder::serve::Server;

  Server::Options opts = Server::Options::FromEnv();
  opts.port = 7077;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opts.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: pf_serve [--port N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  pathfinder::xml::Database db;
  Server server(&db, opts);
  pathfinder::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "pf_serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("pf_serve: listening on 127.0.0.1:%d (max_inflight=%d queue=%d"
              " timeout_ms=%lld mem_mb=%lld)\n",
              server.port(), opts.max_inflight, opts.queue_depth,
              static_cast<long long>(opts.timeout_ms),
              static_cast<long long>(opts.mem_mb));
  std::fflush(stdout);

  // Park until a signal arrives, then drain.
  pollfd p{g_signal_pipe[0], POLLIN, 0};
  while (poll(&p, 1, -1) < 0 && errno == EINTR) {
  }
  std::printf("pf_serve: draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  std::printf("pf_serve: drained, bye\n");
  return 0;
}

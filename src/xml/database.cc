#include "xml/database.h"

#include <cassert>

#include "xml/parser.h"
#include "xml/path_summary.h"
#include "xml/stats.h"

namespace pathfinder::xml {

Database::Database()
    : chunks_(new std::atomic<Slot*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

Database::~Database() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

FragId Database::AddDocument(const std::string& name, Document doc) {
  // Shred-time statistics: computed before the slot is published, so
  // every reader that can see the document sees its stats (the cost
  // model and key inference rely on their immutability).
  if (doc.stats() == nullptr) doc.set_stats(ComputeDocStats(doc));
  // Path summary + partitioned node index: built unconditionally (it is
  // a few percent of the encoding) so per-query PF_PATHSUM gating only
  // switches *consumption*, never storage — on/off runs read the same
  // immutable document.
  if (doc.summary() == nullptr) doc.set_summary(BuildPathSummary(doc));
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked(name, std::move(doc), /*bump_structure=*/true);
}

FragId Database::PublishUpdate(const std::string& name, Document doc,
                               bool structural) {
  // The updater repaired stats/summary incrementally; compute from
  // scratch only if it didn't attach them (defensive — never the
  // ApplyUpdate path).
  if (doc.stats() == nullptr) doc.set_stats(ComputeDocStats(doc));
  if (doc.summary() == nullptr) doc.set_summary(BuildPathSummary(doc));
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked(name, std::move(doc), structural);
}

FragId Database::PublishLocked(const std::string& name, Document doc,
                               bool bump_structure) {
  size_t n = count_.load(std::memory_order_relaxed);
  assert(n < kMaxChunks * kChunkSize && "document capacity exceeded");
  size_t ci = n >> kChunkBits;
  Slot* chunk = chunks_[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Slot[kChunkSize];
    chunks_[ci].store(chunk, std::memory_order_release);
  }
  Slot& s = chunk[n & kChunkMask];
  s.doc = std::make_unique<Document>(std::move(doc));
  s.name = name;
  FragId id = static_cast<FragId>(n);
  uint64_t gen = generation_.load(std::memory_order_relaxed) + 1;
  by_name_[name] = id;
  NameVersion& nv = versions_[name];
  // A name never seen before always takes a structure bump, whatever
  // the caller claimed — there is no prior snapshot to repair against.
  if (bump_structure || nv.structure == 0) nv.structure = gen;
  nv.content = gen;
  // Publish the slot before the count (readers index by acquire-loaded
  // count) and the count before the generation (a cache that observes
  // the new generation must be able to resolve the new binding).
  count_.store(n + 1, std::memory_order_release);
  generation_.store(gen, std::memory_order_release);
  return id;
}

Result<FragId> Database::LoadXml(const std::string& name,
                                 std::string_view xml) {
  // Parse outside the registration lock: the StringPool is internally
  // synchronized, so shredding can overlap running queries.
  PF_ASSIGN_OR_RETURN(Document doc, ParseXml(xml, &pool_));
  return AddDocument(name, std::move(doc));
}

Result<FragId> Database::FindDocument(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second;
}

size_t Database::EncodingBytes() const {
  size_t total = 0;
  size_t n = num_documents();
  for (size_t i = 0; i < n; ++i) {
    total += slot(static_cast<FragId>(i))->doc->EncodingBytes();
  }
  return total;
}

Database::DocVersions Database::Versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  DocVersions v;
  v.generation = generation_.load(std::memory_order_relaxed);
  v.docs.reserve(versions_.size());
  for (const auto& [name, nv] : versions_) {
    DocVersion d;
    d.name = name;
    d.structure = nv.structure;
    d.content = nv.content;
    auto it = by_name_.find(name);
    d.frag = it == by_name_.end() ? 0 : it->second;
    v.docs.push_back(std::move(d));
  }
  return v;
}

}  // namespace pathfinder::xml

# Empty compiler generated dependencies file for pf_engine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pf_api.dir/pathfinder.cc.o"
  "CMakeFiles/pf_api.dir/pathfinder.cc.o.d"
  "libpf_api.a"
  "libpf_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Update-churn benchmark: incremental maintenance vs full re-shred.
//
// A generated XMark instance takes a long stream of random node
// updates (child inserts, subtree deletes, value replacements). Each
// update runs twice:
//
//   * incremental — xml::ApplyUpdate splices the pre|size|level
//     columns and repairs the shred-time stats and path summary in
//     place (the engine's maintenance path);
//   * re-shred    — the post-update serialization is parsed and
//     shredded from scratch into a fresh database (parse + encode +
//     full stats + full path summary), the way a store without
//     incremental maintenance would have to refresh the document.
//
// The re-shredded snapshot is the oracle: its serialization must be
// byte-identical to the incremental snapshot's, and a panel of
// structural queries (answered through the maintained path summary)
// must serialize byte-identically on both databases. Emits
// BENCH_update.json and gates the maintenance-path speedup.
//
//   --smoke   tiny scale factor and a short op stream, gate >= 2x —
//             the CI gate. The full run uses sf 0.05 and gates >= 10x
//             (the acceptance target).

#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "api/pathfinder.h"
#include "base/rng.h"
#include "bench/bench_util.h"
#include "xmark/generator.h"
#include "xml/database.h"
#include "xml/serializer.h"
#include "xml/update.h"

namespace pathfinder::bench {
namespace {

constexpr const char* kDocName = "auction.xml";

// Structural shapes the path summary answers (wrong partition repair
// shows up here), plus a value lookup that mixes in the value columns.
constexpr const char* kOracleQueries[] = {
    "count(//item)",
    "count(//open_auction/bidder)",
    "//site/regions/*[1]/item[1]/name",
    "count(//person[exists(@id)])",
};

constexpr const char* kFragments[] = {
    "<item id=\"churn\"><name>widget</name>"
    "<description><text>plain</text></description></item>",
    "<keyword>churn</keyword>",
    "<annotation><description><text>note <emph>hot</emph></text>"
    "</description></annotation>",
    "<watch open_auction=\"open_auction0\"/>",
};

struct OpCounts {
  int inserts = 0;
  int deletes = 0;
  int replaces = 0;
};

// One random valid update against the current snapshot. Mirrors the
// model suite's generator: element targets for inserts, non-root
// targets for deletes, numeric replacement values.
xml::NodeUpdate NextOp(const xml::Document& cur, Rng* rng, int round,
                       OpCounts* counts) {
  for (;;) {
    xml::NodeUpdate u;
    u.target =
        static_cast<xml::Pre>(1 + rng->Below(cur.num_nodes() - 1));
    switch (rng->Below(3)) {
      case 0:
        if (cur.kind(u.target) != xml::NodeKind::kElem) continue;
        u.kind = xml::NodeUpdate::Kind::kInsertChild;
        u.position =
            rng->Chance(0.5) ? -1 : static_cast<int32_t>(rng->Below(4));
        u.xml = kFragments[rng->Below(std::size(kFragments))];
        ++counts->inserts;
        return u;
      case 1:
        if (u.target == 1) continue;  // the root element stays
        u.kind = xml::NodeUpdate::Kind::kDelete;
        ++counts->deletes;
        return u;
      default:
        if (u.target == 1) continue;  // don't wipe the whole document
        u.kind = xml::NodeUpdate::Kind::kReplaceValue;
        u.value = std::to_string(round) + ".5";
        ++counts->replaces;
        return u;
    }
  }
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double sf = smoke ? 0.002 : 0.05;
  const int rounds = smoke ? 30 : 100;
  const int check_every = smoke ? 5 : 20;
  const double gate = smoke ? 2.0 : 10.0;

  xml::Database db;
  {
    auto doc = xmark::GenerateXMark(sf, 42, db.pool());
    if (!doc.ok()) {
      std::fprintf(stderr, "generate: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    db.AddDocument(kDocName, std::move(doc.value()));
  }
  {
    auto frag = db.FindDocument(kDocName);
    std::printf("Update churn: incremental vs re-shred (XMark, sf=%g, "
                "%u nodes, %d ops)\n",
                sf, db.doc(*frag).num_nodes(), rounds);
  }

  Rng rng(7);
  OpCounts counts;
  double incremental_ms = 0;
  double reshred_ms = 0;
  int checks = 0;
  for (int round = 0; round < rounds; ++round) {
    auto frag = db.FindDocument(kDocName);
    xml::NodeUpdate u = NextOp(db.doc(*frag), &rng, round, &counts);

    Result<xml::UpdateResult> applied = Status::Internal("unset");
    incremental_ms +=
        TimeMs([&] { applied = xml::ApplyUpdate(&db, kDocName, u); });
    if (!applied.ok()) {
      std::fprintf(stderr, "round %d: %s\n", round,
                   applied.status().ToString().c_str());
      return 1;
    }

    // Re-shred oracle: rebuild the post-update snapshot from its
    // serialization in a fresh database (the serialization itself is
    // harness work, not timed).
    const xml::Document& inc = db.doc(applied->frag);
    std::string bytes = xml::SerializeDocument(inc, *db.pool());
    xml::Database oracle;
    Result<xml::FragId> refrag = Status::Internal("unset");
    reshred_ms += TimeMs([&] { refrag = oracle.LoadXml(kDocName, bytes); });
    if (!refrag.ok()) {
      std::fprintf(stderr, "round %d reshred: %s\n", round,
                   refrag.status().ToString().c_str());
      return 1;
    }

    if (round % check_every == 0 || round + 1 == rounds) {
      ++checks;
      // Byte-identity of the documents themselves...
      std::string oracle_bytes =
          xml::SerializeDocument(oracle.doc(*refrag), *oracle.pool());
      if (bytes != oracle_bytes) {
        std::fprintf(stderr,
                     "round %d: incremental snapshot diverges from "
                     "re-shred oracle\n",
                     round);
        return 1;
      }
      // ...and of query results answered through the *maintained*
      // stats and path summary vs the freshly built ones.
      Pathfinder inc_pf(&db);
      Pathfinder ora_pf(&oracle);
      for (const char* q : kOracleQueries) {
        QueryOptions o;
        o.context_doc = kDocName;
        auto ir = inc_pf.Run(q, o);
        auto orr = ora_pf.Run(q, o);
        if (!ir.ok() || !orr.ok()) {
          std::fprintf(stderr, "round %d: oracle query failed: %s\n", round,
                       (!ir.ok() ? ir : orr).status().ToString().c_str());
          return 1;
        }
        auto is = ir->Serialize();
        auto os = orr->Serialize();
        if (!is.ok() || !os.ok() || *is != *os) {
          std::fprintf(stderr,
                       "round %d: query '%s' diverges between maintained "
                       "and re-shredded snapshots\n",
                       round, q);
          return 1;
        }
      }
    }
  }

  double speedup = incremental_ms > 0 ? reshred_ms / incremental_ms : 0;
  std::printf("%-14s %10s   per-op %s\n", "incremental",
              FmtMs(incremental_ms).c_str(),
              FmtMs(incremental_ms / rounds).c_str());
  std::printf("%-14s %10s   per-op %s\n", "re-shred",
              FmtMs(reshred_ms).c_str(), FmtMs(reshred_ms / rounds).c_str());
  std::printf("maintenance-path speedup: %sx (gate >= %gx)\n",
              FmtFactor(speedup).c_str(), gate);
  std::printf("%d inserts, %d deletes, %d replaces; %d oracle checks, "
              "all byte-identical\n",
              counts.inserts, counts.deletes, counts.replaces, checks);

  const char* path = "BENCH_update.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      f,
      "{\"sf\": %g, \"ops\": %d, \"inserts\": %d, \"deletes\": %d,\n"
      " \"replaces\": %d, \"oracle_checks\": %d,\n"
      " \"incremental_ms\": %.3f, \"reshred_ms\": %.3f,\n"
      " \"speedup\": %.2f, \"gate\": %g}\n",
      sf, rounds, counts.inserts, counts.deletes, counts.replaces, checks,
      incremental_ms, reshred_ms, speedup, gate);
  std::fclose(f);
  std::printf("wrote %s\n", path);

  f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot re-read %s\n", path);
    return 1;
  }
  std::string contents;
  char buf[1 << 12];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(f);
  if (!ValidJsonDocument(contents)) {
    std::fprintf(stderr, "%s: emitted JSON does not parse\n", path);
    return 1;
  }

  if (speedup < gate) {
    std::fprintf(stderr, "maintenance-path speedup below %gx gate\n", gate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pathfinder::bench

int main(int argc, char** argv) {
  return pathfinder::bench::Main(argc, argv);
}
